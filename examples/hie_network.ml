(* The paper's motivating scenario: a Healthcare Information Exchange.

   Hospitals hold patient records; a celebrity patient wants strong privacy
   (a paparazzo must not learn which clinic she visited), while average
   patients accept moderate noise.  An emergency-room doctor, duly
   authorized, must still find every record.

   Run with: dune exec examples/hie_network.exe *)

open Eppi_locator

(* Five named hospitals plus a long tail of clinics: the noise providers an
   obscured row hides among. *)
let named = [| "General"; "St. Mary"; "Women's Health Center"; "County"; "University" |]

let hospitals =
  Array.append named (Array.init 35 (fun i -> Printf.sprintf "Clinic #%d" (i + 1)))

let () =
  print_endline "=== Healthcare Information Exchange demo ===\n";
  let t = Locator.create ~providers:(Array.length hospitals) ~owners:3 in

  (* Patient 0: "the celebrity" - visited the Women's Health Center and
     wants attacker confidence bounded by 0.1. *)
  Locator.delegate t ~owner:0 ~epsilon:0.9 ~provider:2 ~body:"confidential consultation";
  (* Patient 1: average person with a medical history across two hospitals. *)
  Locator.delegate t ~owner:1 ~epsilon:0.4 ~provider:0 ~body:"annual checkup 2025";
  Locator.delegate t ~owner:1 ~epsilon:0.4 ~provider:3 ~body:"broken arm 2024";
  (* Patient 2: doesn't care about privacy at all. *)
  Locator.delegate t ~owner:2 ~epsilon:0.0 ~provider:4 ~body:"flu shot";

  (* The network constructs the index collectively; no hospital reveals its
     patient list to the others (see examples/mpc_demo.ml for the secure
     protocol itself - here we use the centralized reference constructor,
     which produces a distribution-identical index). *)
  Locator.construct_ppi ~seed:11 t ~policy:(Eppi.Policy.Chernoff 0.9);

  print_endline "Locator-service view after ConstructPPI:";
  for owner = 0 to 2 do
    let candidates =
      match Locator.query_ppi_result t ~owner with
      | Ok providers -> providers
      | Error Locator.No_index -> assert false (* construct_ppi just ran *)
    in
    let shown = List.filteri (fun i _ -> i < 6) candidates in
    Printf.printf "  patient %d (eps=%.2f): QueryPPI -> %d providers [%s%s]\n" owner
      (Locator.epsilon_of t ~owner)
      (List.length candidates)
      (String.concat "; " (List.map (fun p -> hospitals.(p)) shown))
      (if List.length candidates > 6 then "; ..." else "")
  done;

  print_endline "\n--- Emergency: unconscious patient 1 arrives at University ---";
  (* The ER doctor is granted access by patient 1's hospitals (in practice
     via break-glass policies). *)
  Locator.grant t ~provider:0 ~searcher:"er-doctor" ~owner:1;
  Locator.grant t ~provider:3 ~searcher:"er-doctor" ~owner:1;
  let outcome = Locator.search t ~searcher:"er-doctor" ~owner:1 in
  Printf.printf "er-doctor search: contacted %d providers, %d denied, %d without records\n"
    outcome.contacted outcome.denied outcome.wasted;
  List.iter
    (fun (p, records) ->
      List.iter
        (fun (r : Locator.record) -> Printf.printf "  found at %s: %s\n" hospitals.(p) r.body)
        records)
    outcome.records;

  print_endline "\n--- Paparazzo attacks the celebrity's row ---";
  let membership = Locator.membership t in
  let index = Option.get (Locator.index t) in
  let published = Eppi.Index.matrix index in
  let confidence = Eppi.Attack.primary_confidence ~membership ~published ~owner:0 in
  Printf.printf
    "attacker confidence that a listed provider really treated patient 0: %.3f\n" confidence;
  Printf.printf "patient 0 requested confidence <= %.3f -> %s\n" (1.0 -. 0.9)
    (if confidence <= 0.1 +. 1e-9 then "GUARANTEE HELD"
     else "guarantee missed on this draw (Chernoff holds with prob >= 0.9)");

  print_endline "\n--- Unauthorized searcher ---";
  let nosy = Locator.search t ~searcher:"tabloid" ~owner:0 in
  Printf.printf "tabloid search: %d records found, %d access denials\n"
    (List.length nosy.records) nosy.denied
