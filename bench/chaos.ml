(* Chaos harness: the fault-tolerant construction under injected faults.

   Three campaigns, each asserting the robustness contract rather than just
   timing it (a chaos run that silently produced a wrong index would be
   worse than a crash):

   + {b loss sweep} — construction at increasing drop rates.  Every
     completed run must be bit-identical to the lossless baseline (the
     reliability sublayer masks loss; protocol randomness is pre-split so
     retransmissions consume no protocol state), and a second run with the
     same fault seed must reproduce the first exactly.
   + {b provider crash} — a provider fail-stops mid-SecSumShare.  The
     outcome must be [Degraded], excluding exactly that provider, and every
     surviving owner's published row must still satisfy its ε guarantee
     over the survivor set: common/mixed rows published everywhere, other
     rows' β matching the policy recomputed for m', and recall intact.
   + {b coordinator crash} — a CountBelow coordinator dies mid-MPC; same
     contract, exercised through the reliable GMW transport.

   Writes BENCH_chaos.json.

   Environment knobs: CHAOS_N (identities, default 60), CHAOS_M (providers,
   default 12), CHAOS_DROPS (comma list of drop rates, default
   0.02,0.05,0.1), CHAOS_SEED (fault seed, default 2014). *)

open Eppi_prelude
module Construct = Eppi_protocol.Construct
module Simnet = Eppi_simnet.Simnet

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try int_of_string (String.trim s) with _ -> default)
  | None -> default

let drop_rates () =
  match Sys.getenv_opt "CHAOS_DROPS" with
  | None -> [ 0.02; 0.05; 0.1 ]
  | Some s ->
      String.split_on_char ',' s
      |> List.filter_map (fun tok -> float_of_string_opt (String.trim tok))
      |> List.filter (fun d -> d >= 0.0 && d < 1.0)

let drop_plan ~seed drop =
  {
    Simnet.no_faults with
    fault_seed = seed;
    default_link = { Simnet.perfect_link with drop };
  }

(* The ε contract over whatever provider set the run ended with: common and
   mixed identities are published by everyone, the rest at the policy's β
   for the survivor count; recall must be intact either way. *)
let check_epsilon_invariant ~what (r : Construct.result) (rep : Construct.fault_report)
    ~membership ~epsilons ~policy =
  let n = Array.length epsilons in
  let m' = List.length rep.survivors in
  let sub = Bitmatrix.create ~rows:n ~cols:m' in
  List.iteri
    (fun k p ->
      for j = 0 to n - 1 do
        if Bitmatrix.get membership ~row:j ~col:p then Bitmatrix.set sub ~row:j ~col:k true
      done)
    rep.survivors;
  Array.iteri
    (fun j epsilon ->
      let f = Bitmatrix.row_count sub j in
      let sigma = float_of_int f /. float_of_int m' in
      if r.common.(j) || r.mixed.(j) then begin
        if r.betas.(j) <> 1.0 then
          failwith (Printf.sprintf "%s: identity %d common/mixed but beta <> 1" what j);
        if Eppi.Index.query_count r.index ~owner:j <> m' then
          failwith
            (Printf.sprintf "%s: identity %d common/mixed but not published at all %d" what j m')
      end
      else begin
        let expected = Eppi.Policy.beta policy ~sigma ~epsilon ~m:m' in
        if Float.abs (r.betas.(j) -. expected) > 1e-9 then
          failwith
            (Printf.sprintf "%s: identity %d beta %.6f, policy says %.6f for m'=%d" what j
               r.betas.(j) expected m')
      end;
      if not (Eppi.Index.recall_ok ~membership:sub r.index ~owner:j) then
        failwith (Printf.sprintf "%s: identity %d lost a true positive" what j))
    epsilons

let run () =
  let n = getenv_int "CHAOS_N" 60 in
  let m = getenv_int "CHAOS_M" 12 in
  let seed = getenv_int "CHAOS_SEED" 2014 in
  Bench_util.heading
    (Printf.sprintf "Chaos: fault-tolerant construction (n=%d identities, m=%d providers)" n m);
  let rng = Rng.create 4242 in
  let freqs = Array.init n (fun j -> 1 + (j mod m)) in
  let membership = Bench_util.matrix_of_frequencies rng ~m ~freqs in
  let epsilons = Array.init n (fun j -> 0.2 +. (0.6 *. float_of_int (j mod 5) /. 4.0)) in
  let policy = Eppi.Policy.Chernoff 0.9 in
  let construct ?sss_plan ?mpc_plan () =
    Construct.run_ft ?sss_plan ?mpc_plan (Rng.create 99) ~membership ~epsilons ~policy
  in
  let complete what = function
    | Construct.Complete (r, rep) -> (r, rep)
    | Construct.Degraded (_, rep) ->
        failwith
          (Printf.sprintf "%s: degraded (excluded %s) where loss alone must be masked" what
             (String.concat "," (List.map string_of_int rep.excluded)))
    | Construct.Failed (reason, _) -> failwith (Printf.sprintf "%s: failed: %s" what reason)
  in
  let degraded what = function
    | Construct.Degraded (r, rep) -> (r, rep)
    | Construct.Complete _ -> failwith (Printf.sprintf "%s: crash went undetected" what)
    | Construct.Failed (reason, _) -> failwith (Printf.sprintf "%s: failed: %s" what reason)
  in

  (* Campaign 1: loss sweep, bit-identity against the lossless baseline. *)
  let baseline, _ = complete "baseline" (construct ()) in
  Bench_util.note "lossless baseline: lambda=%.3f" baseline.lambda;
  let sweep =
    List.map
      (fun drop ->
        let what = Printf.sprintf "drop %.2f" drop in
        let plan = drop_plan ~seed drop in
        let r, rep = complete what (construct ~sss_plan:plan ~mpc_plan:plan ()) in
        if r.betas <> baseline.betas then failwith (what ^ ": betas diverged from lossless");
        if not (Bitmatrix.equal (Eppi.Index.matrix r.index) (Eppi.Index.matrix baseline.index))
        then failwith (what ^ ": published index diverged from lossless");
        let r2, rep2 = complete what (construct ~sss_plan:plan ~mpc_plan:plan ()) in
        if
          not (Bitmatrix.equal (Eppi.Index.matrix r2.index) (Eppi.Index.matrix r.index))
          || rep2.sss_retransmissions <> rep.sss_retransmissions
          || rep2.mpc_retransmissions <> rep.mpc_retransmissions
        then failwith (what ^ ": same fault seed did not reproduce the run");
        Bench_util.note
          "%s: bit-identical to lossless (retransmissions sss=%d mpc=%d, duplicates=%d)" what
          rep.sss_retransmissions rep.mpc_retransmissions rep.duplicates;
        (drop, rep))
      (drop_rates ())
  in

  (* Campaign 2: a provider fail-stops mid-SecSumShare, under loss. *)
  let victim = m - 2 in
  let crash_plan =
    { (drop_plan ~seed 0.02) with crashes = [ (0.0, victim) ] }
  in
  let r_crash, rep_crash = degraded "provider crash" (construct ~sss_plan:crash_plan ()) in
  if rep_crash.excluded <> [ victim ] then
    failwith
      (Printf.sprintf "provider crash: excluded [%s], wanted [%d]"
         (String.concat ";" (List.map string_of_int rep_crash.excluded))
         victim);
  check_epsilon_invariant ~what:"provider crash" r_crash rep_crash ~membership ~epsilons ~policy;
  Bench_util.note "provider %d crashed: Degraded, %d attempts, epsilon contract holds over %d survivors"
    victim rep_crash.attempts
    (List.length rep_crash.survivors);

  (* Campaign 3: a CountBelow coordinator dies mid-MPC. *)
  let mpc_crash = { Simnet.no_faults with fault_seed = seed; crashes = [ (0.002, 1) ] } in
  let r_mpc, rep_mpc = degraded "coordinator crash" (construct ~mpc_plan:mpc_crash ()) in
  if rep_mpc.excluded <> [ 1 ] then failwith "coordinator crash: wrong exclusion";
  check_epsilon_invariant ~what:"coordinator crash" r_mpc rep_mpc ~membership ~epsilons ~policy;
  Bench_util.note "coordinator 1 crashed mid-MPC: Degraded, %d attempts, epsilon contract holds"
    rep_mpc.attempts;

  let out = open_out "BENCH_chaos.json" in
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"chaos\",\n";
  Buffer.add_string b (Printf.sprintf "  \"n_identities\": %d,\n" n);
  Buffer.add_string b (Printf.sprintf "  \"m_providers\": %d,\n" m);
  Buffer.add_string b (Printf.sprintf "  \"fault_seed\": %d,\n" seed);
  Buffer.add_string b "  \"loss_sweep\": [\n";
  List.iteri
    (fun i (drop, (rep : Construct.fault_report)) ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"drop\": %.3f, \"bit_identical\": true, \"sss_retransmissions\": %d, \
            \"mpc_retransmissions\": %d, \"duplicates\": %d, \"retried_rounds\": %d }%s\n"
           drop rep.sss_retransmissions rep.mpc_retransmissions rep.duplicates
           rep.retried_rounds
           (if i = List.length sweep - 1 then "" else ",")))
    sweep;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"provider_crash\": { \"victim\": %d, \"outcome\": \"degraded\", \"attempts\": %d, \
        \"survivors\": %d, \"epsilon_contract\": true },\n"
       victim rep_crash.attempts
       (List.length rep_crash.survivors));
  Buffer.add_string b
    (Printf.sprintf
       "  \"coordinator_crash\": { \"victim\": 1, \"outcome\": \"degraded\", \"attempts\": %d, \
        \"epsilon_contract\": true }\n"
       rep_mpc.attempts);
  Buffer.add_string b "}\n";
  output_string out (Buffer.contents b);
  close_out out;
  Bench_util.note "wrote BENCH_chaos.json"
