(* Network front-end bench: drive the real socket path — daemon in one
   domain, clients in this one — and measure (1) replay throughput as a
   function of pipeline depth and (2) the latency of a hot-swap republish
   while pipelined query load keeps flowing.  Writes BENCH_net.json.

   Correctness is asserted along the way: every replay conserves requests
   (served + unknown + shed = requests), the response volume matches the
   ground truth of the generation served, and every republish returns the
   next generation in sequence.

   Environment knobs: NET_N (owners, default 2000), NET_M (providers,
   default 1024), NET_QUERIES (replay size, default 50000), NET_DEPTHS
   (comma list, default 1,4,16,64), NET_SWAPS (republish count under load,
   default 30). *)

open Eppi_prelude
open Eppi_net
module Serve = Eppi_serve.Serve
module Workload = Eppi_serve.Workload

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try int_of_string (String.trim s) with _ -> default)
  | None -> default

let depths () =
  match Sys.getenv_opt "NET_DEPTHS" with
  | None -> [ 1; 4; 16; 64 ]
  | Some s ->
      String.split_on_char ',' s
      |> List.filter_map (fun tok -> int_of_string_opt (String.trim tok))
      |> List.filter (fun d -> d >= 1)

(* Nearest-rank percentile over a sorted array of seconds. *)
let percentile sorted q =
  let len = Array.length sorted in
  sorted.(max 0 (min (len - 1) (int_of_float (Float.round (q *. float_of_int (len - 1))))))

let run () =
  let n = getenv_int "NET_N" 2000 in
  let m = getenv_int "NET_M" 1024 in
  let queries = getenv_int "NET_QUERIES" 50_000 in
  let swaps = max 1 (getenv_int "NET_SWAPS" 30) in
  Bench_util.heading
    (Printf.sprintf
       "Network front-end: pipeline depth sweep + hot-swap latency (n=%d owners, m=%d \
        providers, %d queries)"
       n m queries);
  let rng = Rng.create 2026 in
  let freqs = Array.init n (fun j -> 1 + (j mod 8)) in
  let membership = Bench_util.matrix_of_frequencies rng ~m ~freqs in
  let epsilons = Array.init n (fun j -> 0.2 +. (0.6 *. float_of_int (j mod 5) /. 4.0)) in
  let build seed policy =
    (Eppi.Construct.run (Rng.create seed) ~membership ~epsilons ~policy).index
  in
  let index1 = build 7 (Eppi.Policy.Chernoff 0.9) in
  let index2 = build 8 Eppi.Policy.Basic in
  let csv1 = Eppi.Index.to_csv index1 and csv2 = Eppi.Index.to_csv index2 in
  let workload = Workload.zipf (Rng.create 11) ~n ~count:queries in
  let truth_len = Array.init n (fun owner -> Eppi.Index.query_count index1 ~owner) in
  let expect_listed =
    Array.fold_left (fun acc owner -> acc + truth_len.(owner)) 0 workload
  in
  (* The daemon: sharded engine in its own domain, this domain is the client. *)
  let path = Printf.sprintf "/tmp/eppi-net-bench-%d.sock" (Unix.getpid ()) in
  let addr = Addr.Unix_socket path in
  let engine = Serve.create ~config:{ Serve.default_config with shards = 4 } index1 in
  let server = Server.create engine in
  let listener = Server.listen addr in
  let daemon = Domain.spawn (fun () -> Server.run server listener) in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* Depth sweep: same workload, one connection per depth. *)
      let depth_runs =
        List.map
          (fun depth ->
            let client = Client.connect ~retries:100 addr in
            let summary =
              Fun.protect
                ~finally:(fun () -> Client.close client)
                (fun () -> Replay.run ~depth client workload)
            in
            if summary.served + summary.unknown + summary.shed <> queries then
              failwith "net: replay lost requests";
            if summary.served <> queries then failwith "net: replay shed or missed requests";
            if summary.providers_listed <> expect_listed then
              failwith "net: response volume diverged from Index.query";
            if summary.first_generation <> 1 || summary.last_generation <> 1 then
              failwith "net: unexpected generation during the depth sweep";
            let qps = float_of_int queries /. summary.wall_seconds in
            Bench_util.note "depth %3d: %.3f s (%.0f q/s)" depth summary.wall_seconds qps;
            (depth, summary.wall_seconds, qps))
          (depths ())
      in
      (* Hot-swap latency under load: a second domain keeps pipelined
         queries in flight while this one times republish round-trips,
         alternating between the two indexes. *)
      let stop = Atomic.make false in
      let load =
        Domain.spawn (fun () ->
            let client = Client.connect ~retries:100 addr in
            let rng = Rng.create 5 in
            let replies = ref 0 in
            while not (Atomic.get stop) do
              let frames = List.init 32 (fun _ -> Wire.Query { owner = Rng.int rng n }) in
              List.iter
                (function
                  | Wire.Reply _ -> incr replies
                  | other -> Client.unexpected "load query" other)
                (Client.pipeline client frames)
            done;
            Client.close client;
            !replies)
      in
      let admin = Client.connect ~retries:100 addr in
      let swap_seconds =
        Array.init swaps (fun i ->
            let csv = if i mod 2 = 0 then csv2 else csv1 in
            let t0 = Clock.seconds () in
            (match Client.republish admin ~index_csv:csv with
            | Ok generation when generation = i + 2 -> ()
            | Ok generation -> failwith (Printf.sprintf "net: swap %d installed generation %d" i generation)
            | Error msg -> failwith ("net: republish failed: " ^ msg));
            Clock.seconds () -. t0)
      in
      Atomic.set stop true;
      let load_replies = Domain.join load in
      if load_replies = 0 then failwith "net: load domain made no progress";
      let final_generation = Serve.generation engine in
      if final_generation <> swaps + 1 then failwith "net: final generation off";
      let stats = Client.stats_json admin in
      Client.shutdown admin;
      Client.close admin;
      Domain.join daemon;
      Array.sort compare swap_seconds;
      let p50 = percentile swap_seconds 0.50
      and p99 = percentile swap_seconds 0.99
      and worst = swap_seconds.(Array.length swap_seconds - 1) in
      Bench_util.note
        "hot swap under load: %d republishes, p50 %.2g s, p99 %.2g s, worst %.2g s (%d \
         concurrent replies)"
        swaps p50 p99 worst load_replies;
      (* JSON out. *)
      let b = Buffer.create 1024 in
      Buffer.add_string b "{\n";
      Buffer.add_string b "  \"bench\": \"net\",\n";
      Buffer.add_string b (Printf.sprintf "  \"n_owners\": %d,\n" n);
      Buffer.add_string b (Printf.sprintf "  \"m_providers\": %d,\n" m);
      Buffer.add_string b (Printf.sprintf "  \"queries\": %d,\n" queries);
      Buffer.add_string b "  \"depth_runs\": [\n";
      List.iteri
        (fun i (depth, seconds, qps) ->
          Buffer.add_string b
            (Printf.sprintf "    { \"depth\": %d, \"seconds\": %.6f, \"qps\": %.0f }%s\n" depth
               seconds qps
               (if i = List.length depth_runs - 1 then "" else ",")))
        depth_runs;
      Buffer.add_string b "  ],\n";
      Buffer.add_string b
        (Printf.sprintf
           "  \"swap\": { \"count\": %d, \"p50_s\": %.9f, \"p99_s\": %.9f, \"worst_s\": %.9f, \
            \"final_generation\": %d, \"concurrent_replies\": %d },\n"
           swaps p50 p99 worst final_generation load_replies);
      Buffer.add_string b (Printf.sprintf "  \"metrics\": %s\n" (String.trim stats));
      Buffer.add_string b "}\n";
      let out = open_out "BENCH_net.json" in
      output_string out (Buffer.contents b);
      close_out out;
      Bench_util.note "wrote BENCH_net.json")
