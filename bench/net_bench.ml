(* Network front-end bench: drive the real socket path — daemon in one
   domain, clients in this one — and measure (1) replay throughput as a
   function of pipeline depth, (2) throughput as a function of the
   daemon's worker-domain count at a fixed depth, and (3) the latency of
   hot-swap republishes (binary codec vs the legacy CSV payload) while
   pipelined query load keeps flowing.  Writes BENCH_net.json.

   Correctness is asserted along the way: every replay conserves requests
   (served + unknown + shed = requests), the response volume matches the
   ground truth of the generation served, a fixed query slice must come
   back bit-identical (same generation tags, same rows) from every
   domain count, the binary republish payload must undercut the CSV one
   by at least 8x on the full-size index, and every republish returns
   the next generation in sequence.

   Throughput *scaling* across domain counts is recorded, not asserted:
   the JSON carries a "cores" field and CI gates the >= 2x expectation on
   machines with enough cores (a single-core box cannot exhibit parallel
   speedup, only the absence of a regression).

   A replication scenario follows the single-daemon sweeps: NET_REPLICAS
   daemons serve the same index as a replica set, a cluster republish
   fans the second index out to all of them (asserted converged within
   the round), then Zipf traffic at a fixed offered load runs against
   the cluster while one replica is killed mid-run.  Asserted: at least
   one failover happened, the error rate after the failover settles is
   zero, and after a post-kill cluster republish every surviving replica
   reports the same generation within one fan-out round.  Recorded:
   baseline vs kill-window p99, failover latency, generation-convergence
   lag.

   Environment knobs: NET_N (owners, default 2000), NET_M (providers,
   default 1024), NET_QUERIES (replay size, default 50000), NET_DEPTHS
   (comma list, default 1,4,16,64), NET_DOMAINS (comma list, default
   1,2,4,8), NET_SWAPS (republish count under load, default 30),
   NET_REPLICAS (replica count, default 3, min 2), NET_REPL_QUERIES
   (replication-scenario traffic, default min(NET_QUERIES, 6000)),
   NET_REPL_QPS (offered load, default 2000). *)

open Eppi_prelude
open Eppi_net
module Serve = Eppi_serve.Serve
module Workload = Eppi_serve.Workload

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try int_of_string (String.trim s) with _ -> default)
  | None -> default

let getenv_int_list name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s ->
      String.split_on_char ',' s
      |> List.filter_map (fun tok -> int_of_string_opt (String.trim tok))
      |> List.filter (fun d -> d >= 1)

let depths () = getenv_int_list "NET_DEPTHS" [ 1; 4; 16; 64 ]
let domain_counts () = getenv_int_list "NET_DOMAINS" [ 1; 2; 4; 8 ]

(* Nearest-rank percentile over a sorted array of seconds. *)
let percentile sorted q =
  let len = Array.length sorted in
  sorted.(max 0 (min (len - 1) (int_of_float (Float.round (q *. float_of_int (len - 1))))))

let sorted_stats seconds =
  let s = Array.copy seconds in
  Array.sort compare s;
  (percentile s 0.50, percentile s 0.99, s.(Array.length s - 1))

let run () =
  let n = getenv_int "NET_N" 2000 in
  let m = getenv_int "NET_M" 1024 in
  let queries = getenv_int "NET_QUERIES" 50_000 in
  let swaps = max 1 (getenv_int "NET_SWAPS" 30) in
  let cores = Domain.recommended_domain_count () in
  Bench_util.heading
    (Printf.sprintf
       "Network front-end: pipeline/domain sweeps + hot-swap latency (n=%d owners, m=%d \
        providers, %d queries, %d cores)"
       n m queries cores);
  let rng = Rng.create 2026 in
  let freqs = Array.init n (fun j -> 1 + (j mod 8)) in
  let membership = Bench_util.matrix_of_frequencies rng ~m ~freqs in
  let epsilons = Array.init n (fun j -> 0.2 +. (0.6 *. float_of_int (j mod 5) /. 4.0)) in
  let build seed policy =
    (Eppi.Construct.run (Rng.create seed) ~membership ~epsilons ~policy).index
  in
  let index1 = build 7 (Eppi.Policy.Chernoff 0.9) in
  let index2 = build 8 Eppi.Policy.Basic in
  let csv1 = Eppi.Index.to_csv index1 and csv2 = Eppi.Index.to_csv index2 in
  let workload = Workload.zipf (Rng.create 11) ~n ~count:queries in
  let truth_len = Array.init n (fun owner -> Eppi.Index.query_count index1 ~owner) in
  let expect_listed =
    Array.fold_left (fun acc owner -> acc + truth_len.(owner)) 0 workload
  in
  (* A fixed slice of owners whose (generation, reply) pairs must come
     back identical from every daemon configuration. *)
  let identity_slice = Array.init (min n 200) (fun i -> i * 37 mod n) in
  let path = Printf.sprintf "/tmp/eppi-net-bench-%d.sock" (Unix.getpid ()) in
  let addr = Addr.Unix_socket path in
  (* Start a daemon over [index1] with [workers] domains, run [f], then
     shut it down and join. *)
  let with_daemon ~workers f =
    let engine = Serve.create ~config:{ Serve.default_config with shards = 4 } index1 in
    let server = Server.create ~config:{ Server.default_config with workers } engine in
    let listener = Server.listen addr in
    let daemon = Domain.spawn (fun () -> Server.run server listener) in
    Fun.protect
      ~finally:(fun () ->
        (try
           let c = Client.connect addr in
           (try Client.shutdown c with _ -> ());
           Client.close c
         with _ -> ());
        Domain.join daemon;
        try Sys.remove path with Sys_error _ -> ())
      (fun () -> f engine)
  in
  let replay_checked ~depth client =
    let summary = Replay.run ~depth client workload in
    if summary.served + summary.unknown + summary.shed <> queries then
      failwith "net: replay lost requests";
    if summary.served <> queries then failwith "net: replay shed or missed requests";
    if summary.providers_listed <> expect_listed then
      failwith "net: response volume diverged from Index.query";
    if summary.first_generation <> 1 || summary.last_generation <> 1 then
      failwith "net: unexpected generation during a sweep";
    summary
  in
  (* ---- pipeline depth sweep (single-domain daemon, the PR 4 shape) ---- *)
  let depth_runs =
    with_daemon ~workers:1 (fun _engine ->
        List.map
          (fun depth ->
            let client = Client.connect ~retries:100 addr in
            let summary =
              Fun.protect
                ~finally:(fun () -> Client.close client)
                (fun () -> replay_checked ~depth client)
            in
            let qps = float_of_int queries /. summary.wall_seconds in
            Bench_util.note "depth %3d: %.3f s (%.0f q/s)" depth summary.wall_seconds qps;
            (depth, summary.wall_seconds, qps))
          (depths ()))
  in
  (* ---- worker-domain sweep at fixed depth 16 ---- *)
  let reference_slice = ref None in
  let domain_runs =
    List.map
      (fun workers ->
        with_daemon ~workers (fun _engine ->
            let client = Client.connect ~retries:100 addr in
            Fun.protect
              ~finally:(fun () -> Client.close client)
              (fun () ->
                let summary = replay_checked ~depth:16 client in
                let slice =
                  Array.map (fun owner -> Client.query client ~owner) identity_slice
                in
                (match !reference_slice with
                | None -> reference_slice := Some slice
                | Some reference ->
                    if slice <> reference then
                      failwith
                        (Printf.sprintf
                           "net: replies at %d domains diverge from the 1-domain run" workers));
                let qps = float_of_int queries /. summary.wall_seconds in
                Bench_util.note "domains %2d: %.3f s (%.0f q/s)" workers summary.wall_seconds qps;
                (workers, summary.wall_seconds, qps))))
      (domain_counts ())
  in
  (* ---- republish payload sizes ---- *)
  let binary2 = Index_codec.encode index2 in
  let csv_bytes = String.length csv2 and binary_bytes = String.length binary2 in
  let payload_ratio = float_of_int csv_bytes /. float_of_int binary_bytes in
  Bench_util.note "republish payload: csv %d bytes, binary %d bytes (%.1fx smaller)" csv_bytes
    binary_bytes payload_ratio;
  if n >= 1000 && m >= 512 && payload_ratio < 8.0 then
    failwith
      (Printf.sprintf "net: binary payload only %.1fx smaller than CSV (need >= 8x)"
         payload_ratio);
  (* ---- hot-swap latency under load: binary codec vs CSV baseline ----
     One 4-domain daemon, one load domain keeping 32-deep pipelined
     queries in flight, admin connection timing republish round-trips
     alternating between the two indexes.  CSV parses a full-size index
     per swap, so its baseline runs fewer iterations. *)
  let csv_swaps = min swaps 10 in
  let swap_stats =
    with_daemon ~workers:4 (fun engine ->
        let stop = Atomic.make false in
        let load =
          Domain.spawn (fun () ->
              let client = Client.connect ~retries:100 addr in
              let rng = Rng.create 5 in
              let replies = ref 0 in
              while not (Atomic.get stop) do
                let frames = List.init 32 (fun _ -> Wire.Query { owner = Rng.int rng n }) in
                List.iter
                  (function
                    | Wire.Reply _ -> incr replies
                    | other -> Client.unexpected "load query" other)
                  (Client.pipeline client frames)
              done;
              Client.close client;
              !replies)
        in
        let admin = Client.connect ~retries:100 addr in
        let expected_generation = ref 1 in
        let time_swap send =
          incr expected_generation;
          let t0 = Clock.seconds () in
          (match send () with
          | Ok generation when generation = !expected_generation -> ()
          | Ok generation ->
              failwith
                (Printf.sprintf "net: swap installed generation %d, expected %d" generation
                   !expected_generation)
          | Error msg -> failwith ("net: republish failed: " ^ msg));
          Clock.seconds () -. t0
        in
        let csv_seconds =
          Array.init csv_swaps (fun i ->
              let csv = if i mod 2 = 0 then csv2 else csv1 in
              time_swap (fun () -> Client.republish admin ~index_csv:csv))
        in
        let binary_seconds =
          Array.init swaps (fun i ->
              let index = if i mod 2 = 0 then index2 else index1 in
              time_swap (fun () -> Client.republish_index admin index))
        in
        Atomic.set stop true;
        let load_replies = Domain.join load in
        if load_replies = 0 then failwith "net: load domain made no progress";
        let final_generation = Serve.generation engine in
        if final_generation <> csv_swaps + swaps + 1 then failwith "net: final generation off";
        let stats = Client.stats_json admin in
        Client.shutdown admin;
        Client.close admin;
        let csv_p50, csv_p99, csv_worst = sorted_stats csv_seconds in
        let p50, p99, worst = sorted_stats binary_seconds in
        Bench_util.note
          "hot swap under load (4 domains): binary p50 %.2g s, p99 %.2g s, worst %.2g s over \
           %d swaps; csv p50 %.2g s, p99 %.2g s over %d swaps (%d concurrent replies)"
          p50 p99 worst swaps csv_p50 csv_p99 csv_swaps load_replies;
        ( (p50, p99, worst),
          (csv_p50, csv_p99, csv_worst),
          final_generation,
          load_replies,
          stats ))
  in
  let (p50, p99, worst), (csv_p50, csv_p99, csv_worst), final_generation, load_replies, stats =
    swap_stats
  in
  (* ---- replication: availability under replica kill ----
     NET_REPLICAS daemons over [index1] form a static replica set.  A
     cluster republish fans [index2] out (generation 1 -> 2 everywhere,
     converged within the round), then a failover-aware cluster client
     drives Zipf windows at a fixed offered load; replica 0 is killed
     mid-run.  The client is expected to fail over without surfacing
     errors once the failover settles; a second cluster republish with
     the dead replica still listed must succeed on the survivors and
     leave them generation-converged within that one round. *)
  let replicas = max 2 (getenv_int "NET_REPLICAS" 3) in
  let repl_queries = max 1 (getenv_int "NET_REPL_QUERIES" (min queries 6000)) in
  let repl_qps =
    match Sys.getenv_opt "NET_REPL_QPS" with
    | Some s -> ( try Float.max 1.0 (float_of_string (String.trim s)) with _ -> 2000.0)
    | None -> 2000.0
  in
  let repl_depth = 32 in
  let repl_paths =
    List.init replicas (fun i ->
        Printf.sprintf "/tmp/eppi-net-repl-%d-%d.sock" (Unix.getpid ()) i)
  in
  let repl_addrs = List.map (fun p -> Addr.Unix_socket p) repl_paths in
  let repl_set = Eppi_cluster.Replica_set.of_addrs repl_addrs in
  let peer_strings = List.map Addr.to_string repl_addrs in
  let repl_daemons =
    List.map
      (fun addr ->
        let engine = Serve.create ~config:{ Serve.default_config with shards = 4 } index1 in
        let server =
          Server.create
            ~config:{ Server.default_config with workers = 1; peers = peer_strings }
            engine
        in
        let listener = Server.listen addr in
        Domain.spawn (fun () -> Server.run server listener))
      repl_addrs
  in
  let shutdown_replica addr =
    (* No connect retries: the listeners were bound before the domains
       spawned, so a live replica accepts immediately and a dead one
       (the killed socket is gone) fails fast instead of stalling. *)
    try
      let c = Client.connect addr in
      (try Client.shutdown c with _ -> ());
      Client.close c
    with _ -> ()
  in
  let replication =
    Fun.protect
      ~finally:(fun () ->
        List.iter shutdown_replica repl_addrs;
        List.iter Domain.join repl_daemons;
        List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) repl_paths)
      (fun () ->
        (* Initial fan-out: everyone applies index2, generation 1 -> 2. *)
        let initial = Eppi_cluster.Fanout.republish repl_set index2 in
        if initial.succeeded <> replicas then
          failwith
            (Printf.sprintf "net: initial fan-out reached %d/%d replicas" initial.succeeded
               replicas);
        if initial.generation <> Some 2 then
          failwith "net: initial fan-out generations diverge";
        let initial_converged =
          Eppi_cluster.Fanout.converged (Eppi_cluster.Fanout.status repl_set) = Some 2
        in
        if not initial_converged then
          failwith "net: replicas not generation-converged within the initial fan-out round";
        Bench_util.note "replication: %d replicas converged at generation 2 in %.3f s" replicas
          initial.wall_seconds;
        (* Offered-load traffic with a mid-run kill.  Least-inflight with
           sequential windows concentrates traffic on replica 0 — which
           guarantees the kill hits the replica actually serving. *)
        let cluster =
          Eppi_cluster.Client.create ~policy:Eppi_cluster.Client.Least_inflight ~cooldown:0.5
            ~seed:31 repl_set
        in
        let windows = max 1 (repl_queries / repl_depth) in
        let kill_at = windows / 2 in
        let window_gap = float_of_int repl_depth /. repl_qps in
        let results = Array.make windows (0.0, 0.0, false) in
        let errors_total = ref 0 in
        let t_kill = ref 0.0 in
        let t0 = Clock.seconds () in
        for k = 0 to windows - 1 do
          if k = kill_at then begin
            shutdown_replica (List.hd repl_addrs);
            t_kill := Clock.seconds () -. t0
          end;
          let target = t0 +. (float_of_int k *. window_gap) in
          let now = Clock.seconds () in
          if target > now then Unix.sleepf (target -. now);
          let base = k * repl_depth in
          let batch =
            List.init repl_depth (fun j ->
                Wire.Query { owner = workload.((base + j) mod queries) })
          in
          let t_start = Clock.seconds () in
          let ok =
            match Eppi_cluster.Client.pipeline cluster batch with
            | responses ->
                List.iter
                  (function
                    | Wire.Reply _ -> ()
                    | other -> Client.unexpected "replication query" other)
                  responses;
                true
            | exception _ ->
                incr errors_total;
                false
          in
          results.(k) <- (Clock.seconds () -. t0, Clock.seconds () -. t_start, ok)
        done;
        let cstats = Eppi_cluster.Client.stats cluster in
        Eppi_cluster.Client.close cluster;
        if cstats.failovers < 1 then failwith "net: replica kill produced no failover";
        let settle = !t_kill +. 1.0 in
        let errors_after_settle =
          Array.fold_left
            (fun acc (t_end, _, ok) -> if (not ok) && t_end > settle then acc + 1 else acc)
            0 results
        in
        if errors_after_settle > 0 then
          failwith
            (Printf.sprintf "net: %d windows still erroring after failover settled"
               errors_after_settle);
        let lat_of f =
          match
            Array.to_list results
            |> List.filter_map (fun (t_end, lat, ok) -> if ok && f t_end then Some lat else None)
          with
          | [] -> None
          | lats ->
              let sorted = Array.of_list lats in
              Array.sort compare sorted;
              Some (percentile sorted 0.99)
        in
        let p99_baseline = Option.value ~default:0.0 (lat_of (fun t -> t < !t_kill)) in
        let p99_kill_window =
          match lat_of (fun t -> t >= !t_kill && t <= settle) with
          | Some p -> p
          | None ->
              (* Sparse run: fall back to the first completed window after
                 the kill — the one that paid the failover. *)
              Option.value ~default:0.0 (lat_of (fun t -> t >= !t_kill))
        in
        let failover_latency =
          List.fold_left Float.max 0.0 cstats.failover_seconds
        in
        Bench_util.note
          "replication kill: %d windows, %d errors (%d after settle), %d failovers, failover \
           latency %.4f s, p99 baseline %.2g s vs kill window %.2g s"
          windows !errors_total errors_after_settle cstats.failovers failover_latency
          p99_baseline p99_kill_window;
        (* Cluster republish with the dead replica still listed: the
           survivors must install generation 3 and agree within this one
           fan-out round. *)
        let second = Eppi_cluster.Fanout.republish ~retries:1 repl_set index1 in
        if second.succeeded <> replicas - 1 || second.failed <> 1 then
          failwith
            (Printf.sprintf "net: post-kill fan-out reached %d/%d replicas (want %d)"
               second.succeeded replicas (replicas - 1));
        if second.generation <> Some 3 then failwith "net: survivor generations diverge";
        let survivors = Eppi_cluster.Replica_set.of_addrs (List.tl repl_addrs) in
        let converged_within_round =
          Eppi_cluster.Fanout.converged (Eppi_cluster.Fanout.status survivors) = Some 3
        in
        if not converged_within_round then
          failwith "net: survivors not generation-converged within one fan-out round";
        Bench_util.note
          "replication republish around dead replica: %d/%d survivors at generation 3, \
           convergence lag %.3f s"
          second.succeeded replicas second.wall_seconds;
        ( (initial.succeeded, initial.failed, initial.wall_seconds, initial_converged),
          (!t_kill, !errors_total, errors_after_settle, p99_baseline, p99_kill_window,
           cstats.failovers, failover_latency),
          (second.succeeded, second.failed, second.wall_seconds, converged_within_round),
          windows ))
  in
  let ( (init_ok, init_fail, init_wall, init_conv),
        (kill_at_s, errs, errs_settled, p99_base, p99_kill, failovers, failover_s),
        (cr_ok, cr_fail, cr_wall, cr_conv),
        repl_windows ) =
    replication
  in
  (* JSON out. *)
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"net\",\n";
  Buffer.add_string b (Printf.sprintf "  \"n_owners\": %d,\n" n);
  Buffer.add_string b (Printf.sprintf "  \"m_providers\": %d,\n" m);
  Buffer.add_string b (Printf.sprintf "  \"queries\": %d,\n" queries);
  Buffer.add_string b (Printf.sprintf "  \"cores\": %d,\n" cores);
  Buffer.add_string b "  \"depth_runs\": [\n";
  List.iteri
    (fun i (depth, seconds, qps) ->
      Buffer.add_string b
        (Printf.sprintf "    { \"depth\": %d, \"seconds\": %.6f, \"qps\": %.0f }%s\n" depth
           seconds qps
           (if i = List.length depth_runs - 1 then "" else ",")))
    depth_runs;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"domain_runs\": [\n";
  List.iteri
    (fun i (domains, seconds, qps) ->
      Buffer.add_string b
        (Printf.sprintf "    { \"domains\": %d, \"seconds\": %.6f, \"qps\": %.0f }%s\n" domains
           seconds qps
           (if i = List.length domain_runs - 1 then "" else ",")))
    domain_runs;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"payload\": { \"csv_bytes\": %d, \"binary_bytes\": %d, \"ratio\": %.2f },\n" csv_bytes
       binary_bytes payload_ratio);
  Buffer.add_string b
    (Printf.sprintf
       "  \"swap\": { \"count\": %d, \"p50_s\": %.9f, \"p99_s\": %.9f, \"worst_s\": %.9f, \
        \"final_generation\": %d, \"concurrent_replies\": %d },\n"
       swaps p50 p99 worst final_generation load_replies);
  Buffer.add_string b
    (Printf.sprintf
       "  \"swap_csv\": { \"count\": %d, \"p50_s\": %.9f, \"p99_s\": %.9f, \"worst_s\": %.9f },\n"
       csv_swaps csv_p50 csv_p99 csv_worst);
  Buffer.add_string b
    (Printf.sprintf
       "  \"replication\": {\n\
       \    \"replicas\": %d, \"queries\": %d, \"windows\": %d, \"depth\": %d, \
        \"offered_qps\": %.0f,\n\
       \    \"initial_republish\": { \"succeeded\": %d, \"failed\": %d, \"wall_s\": %.6f, \
        \"converged_within_round\": %b },\n\
       \    \"kill\": { \"at_s\": %.6f, \"errors_total\": %d, \"errors_after_settle\": %d, \
        \"p99_baseline_s\": %.9f, \"p99_kill_window_s\": %.9f, \"failovers\": %d, \
        \"failover_latency_s\": %.9f },\n\
       \    \"cluster_republish\": { \"succeeded\": %d, \"failed\": %d, \"wall_s\": %.6f, \
        \"converged_within_round\": %b, \"convergence_lag_s\": %.6f }\n\
       \  },\n"
       replicas repl_queries repl_windows repl_depth repl_qps init_ok init_fail init_wall
       init_conv kill_at_s errs errs_settled p99_base p99_kill failovers failover_s cr_ok
       cr_fail cr_wall cr_conv cr_wall);
  Buffer.add_string b (Printf.sprintf "  \"metrics\": %s\n" (String.trim stats));
  Buffer.add_string b "}\n";
  let out = open_out "BENCH_net.json" in
  output_string out (Buffer.contents b);
  close_out out;
  Bench_util.note "wrote BENCH_net.json"
