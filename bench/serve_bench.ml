(* Online serving bench: replay a Zipf workload against the published index
   three ways — naive Index.query row scans, the compiled postings store
   (cache off), and the full engine (cache on) — then sweep domain counts
   and exercise admission control.  Writes BENCH_serve.json.

   Timed phases consume results as they are produced (Serve.replay and a
   consuming naive loop) rather than retaining 200k posting lists: holding
   every result live charges the *caller's* retention to whichever phase
   runs next, which once made the postings store read slower than the row
   scan it beats 8x.  Each phase is preceded by Gc.compact so no phase
   pays for a predecessor's garbage.  Correctness is re-checked untimed:
   a per-owner sweep against Index.query over the whole id space, plus an
   aggregate response-volume identity per timed phase.

   Environment knobs: SERVE_N (owners, default 2000), SERVE_M (providers,
   default 4096), SERVE_QUERIES (default 200000), SERVE_DOMAINS (comma
   list, default 1,2,4), SERVE_TELEMETRY_QUERIES (per-round requests of
   the telemetry-overhead gate, default 20000), SERVE_TELEMETRY_DOMAINS
   (its worker-domain count, default 4). *)

open Eppi_prelude
open Eppi_serve

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try int_of_string (String.trim s) with _ -> default)
  | None -> default

let domain_counts () =
  match Sys.getenv_opt "SERVE_DOMAINS" with
  | None -> [ 1; 2; 4 ]
  | Some s ->
      String.split_on_char ',' s
      |> List.filter_map (fun tok -> int_of_string_opt (String.trim tok))
      |> List.filter (fun d -> d >= 1)

let wall f =
  Gc.compact ();
  let t0 = Clock.seconds () in
  let result = f () in
  (Clock.seconds () -. t0, result)

let engine_config ~shards ~cache ~admission =
  {
    Serve.default_config with
    shards;
    cache_capacity = cache;
    negative_capacity = (if cache = 0 then 0 else 1024);
    admission;
  }

let run () =
  let n = getenv_int "SERVE_N" 2000 in
  let m = getenv_int "SERVE_M" 4096 in
  let queries = getenv_int "SERVE_QUERIES" 200_000 in
  Bench_util.heading
    (Printf.sprintf "Online serving: postings + cache + shards (n=%d owners, m=%d providers, %d queries)"
       n m queries);
  let rng = Rng.create 2026 in
  let freqs = Array.init n (fun j -> 1 + (j mod 8)) in
  let membership = Bench_util.matrix_of_frequencies rng ~m ~freqs in
  let epsilons = Array.init n (fun j -> 0.2 +. (0.6 *. float_of_int (j mod 5) /. 4.0)) in
  let r =
    Eppi.Construct.run (Rng.create 7) ~membership ~epsilons ~policy:(Eppi.Policy.Chernoff 0.9)
  in
  let index = r.index in
  let workload = Workload.zipf (Rng.create 11) ~n ~count:queries in
  (* Per-owner ground truth (n lists — small, unlike one list per request)
     and the total response volume of the workload, both untimed. *)
  let truth = Array.init n (fun owner -> Eppi.Index.query index ~owner) in
  let truth_len = Array.map List.length truth in
  let expect_listed =
    Array.fold_left (fun acc owner -> acc + truth_len.(owner)) 0 workload
  in
  (* Untimed per-owner sweep over the whole id space: first query misses the
     cache, the second must hit it; both must equal Index.query exactly. *)
  let check_engine label engine =
    for owner = 0 to n - 1 do
      for _pass = 0 to 1 do
        match Serve.query engine ~owner with
        | Serve.Providers providers ->
            if providers <> truth.(owner) then
              failwith
                (Printf.sprintf "serve: %s diverged from Index.query at owner %d" label owner)
        | _ -> failwith (Printf.sprintf "serve: %s did not serve owner %d" label owner)
      done
    done;
    (match Serve.query engine ~owner:(n + 1) with
    | Serve.Unknown_owner -> ()
    | _ -> failwith (Printf.sprintf "serve: %s served an out-of-range owner" label))
  in
  let check_tally label (tally : Serve.tally) =
    if tally.served <> queries then
      failwith (Printf.sprintf "serve: %s served %d of %d" label tally.served queries);
    if tally.providers_listed <> expect_listed then
      failwith (Printf.sprintf "serve: %s response volume diverged from Index.query" label)
  in
  (* Naive replay: one Index.query row scan per request, result consumed. *)
  let naive_seconds, naive_listed =
    wall (fun () ->
        Array.fold_left
          (fun acc owner -> acc + List.length (Eppi.Index.query index ~owner))
          0 workload)
  in
  if naive_listed <> expect_listed then failwith "serve: naive replay volume diverged";
  Bench_util.note "naive Index.query replay: %.3f s (%.0f q/s)" naive_seconds
    (float_of_int queries /. naive_seconds);
  (* Postings store, cache off: the raw read-path speedup. *)
  let postings_engine = Serve.create ~config:(engine_config ~shards:1 ~cache:0 ~admission:None) index in
  let postings_seconds, tally = wall (fun () -> Serve.replay postings_engine workload) in
  check_tally "postings" tally;
  Bench_util.note "postings store (cache off): %.3f s (%.0f q/s, x%.1f vs naive)"
    postings_seconds
    (float_of_int queries /. postings_seconds)
    (naive_seconds /. postings_seconds);
  check_engine "postings" postings_engine;
  (* Full engine, cache on. *)
  let cached_engine =
    Serve.create ~config:(engine_config ~shards:1 ~cache:4096 ~admission:None) index
  in
  let cache_seconds, tally = wall (fun () -> Serve.replay cached_engine workload) in
  check_tally "cached" tally;
  let snap = Serve.metrics cached_engine in
  let hit_rate = Metrics.hit_rate snap in
  check_engine "cached" cached_engine;
  Bench_util.note "engine (cache on): %.3f s (%.0f q/s, x%.1f vs naive), hit rate %.3f"
    cache_seconds
    (float_of_int queries /. cache_seconds)
    (naive_seconds /. cache_seconds) hit_rate;
  Bench_util.note "latency (sampled): p50 %.2g s, p95 %.2g s, p99 %.2g s (%d samples)"
    snap.p50 snap.p95 snap.p99 snap.latency_count;
  (* Shard the engine across domains. *)
  let domain_runs =
    List.map
      (fun domains ->
        let engine =
          Serve.create ~config:(engine_config ~shards:domains ~cache:4096 ~admission:None) index
        in
        let _, tally =
          wall (fun () ->
              if domains = 1 then Serve.replay engine workload
              else Pool.with_pool ~size:domains (fun pool -> Serve.replay ~pool engine workload))
        in
        check_tally (Printf.sprintf "%d-domain" domains) tally;
        (* The engine's own dispatch time — excludes domain spawn cost. *)
        let seconds = tally.tally_wall_seconds in
        let qps = float_of_int queries /. seconds in
        Bench_util.note "%d domain%s: %.3f s (%.0f q/s)" domains
          (if domains = 1 then " " else "s")
          seconds qps;
        (domains, seconds, qps))
      (domain_counts ())
  in
  (* Admission control: a token bucket that cannot keep up and a queue
     shorter than the per-shard batch; every shed must be reported. *)
  let admission =
    {
      Admission.rate = 100_000.0;
      burst = max 1 (queries / 40);
      queue_capacity = max 1 (queries / 8);
    }
  in
  let shed_engine =
    Serve.create ~config:(engine_config ~shards:4 ~cache:4096 ~admission:(Some admission)) index
  in
  let shed_report = Serve.run shed_engine workload in
  let shed_snap = Serve.metrics shed_engine in
  let served_replies =
    Array.fold_left
      (fun acc reply -> match reply with Serve.Providers _ -> acc + 1 | _ -> acc)
      0 shed_report.replies
  in
  if shed_snap.queries <> queries then failwith "serve: admission lost requests";
  if
    shed_snap.served + shed_snap.unknown + shed_snap.shed_rate + shed_snap.shed_queue
    <> queries
  then failwith "serve: shed accounting does not add up";
  if served_replies <> shed_snap.served then
    failwith "serve: reply array disagrees with metrics";
  if shed_snap.shed_queue = 0 then failwith "serve: expected queue shedding";
  Bench_util.note "admission: served %d, shed %d by rate limit, %d by queue bound"
    shed_snap.served shed_snap.shed_rate shed_snap.shed_queue;
  (* Trace overhead: serving is instrumented (lib/obs spans per shard
     batch), and the disabled path must stay free — one atomic load per
     batch, no allocation.  Measure a warm best-of-3 replay twice with
     tracing off (baseline, then again) and require the re-measurement to
     stay within 2% plus a 20 ms noise floor; then, unless an outer
     [--trace] already owns the trace session, measure once with tracing
     enabled for reference. *)
  let trace_engine =
    Serve.create ~config:(engine_config ~shards:1 ~cache:4096 ~admission:None) index
  in
  let _warm = Serve.replay trace_engine workload in
  let best_of_3 label =
    Gc.compact ();
    let best = ref infinity in
    for _ = 1 to 3 do
      let tally = Serve.replay trace_engine workload in
      check_tally label tally;
      if tally.tally_wall_seconds < !best then best := tally.tally_wall_seconds
    done;
    !best
  in
  let no_trace_baseline = best_of_3 "trace-baseline" in
  let disabled_seconds = best_of_3 "trace-disabled" in
  if disabled_seconds > (1.02 *. no_trace_baseline) +. 0.02 then
    failwith
      (Printf.sprintf
         "serve: disabled tracing costs too much: %.6f s vs %.6f s baseline (limit 2%% + 20 ms)"
         disabled_seconds no_trace_baseline);
  let enabled_seconds =
    if Eppi_obs.Trace.enabled () then None
    else begin
      Eppi_obs.Trace.enable ();
      let s = best_of_3 "trace-enabled" in
      Eppi_obs.Trace.disable ();
      Eppi_obs.Trace.reset ();
      Some s
    end
  in
  Bench_util.note "trace overhead: baseline %.3f s, disabled %.3f s (+%.2f%%), enabled %s"
    no_trace_baseline disabled_seconds
    (100.0 *. ((disabled_seconds /. no_trace_baseline) -. 1.0))
    (match enabled_seconds with
    | Some s -> Printf.sprintf "%.3f s" s
    | None -> "outer --trace active, skipped");
  (* Always-on stage telemetry must be invisible at the client: run a
     real multicore daemon twice — telemetry off, then on (the config
     knob exists for exactly this measurement) — and compare the
     client-observed per-request p50 over a Unix socket.  Best-of-3
     medians; the gate allows 2% plus a 10 µs floor (a socket RTT's p50
     sits in the tens of µs, where scheduler noise dwarfs percentages). *)
  let telemetry_queries = getenv_int "SERVE_TELEMETRY_QUERIES" 20_000 in
  let telemetry_domains = getenv_int "SERVE_TELEMETRY_DOMAINS" 4 in
  let daemon_p50 ~telemetry =
    let path =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "eppi-serve-bench-%d-%b.sock" (Unix.getpid ()) telemetry)
    in
    let addr = Eppi_net.Addr.Unix_socket path in
    let engine =
      Serve.create ~config:(engine_config ~shards:telemetry_domains ~cache:4096 ~admission:None)
        index
    in
    let server =
      Eppi_net.Server.create
        ~config:
          { Eppi_net.Server.default_config with workers = telemetry_domains; telemetry }
        engine
    in
    let listener = Eppi_net.Server.listen addr in
    let daemon = Domain.spawn (fun () -> Eppi_net.Server.run server listener) in
    Fun.protect
      ~finally:(fun () ->
        (try
           let c = Eppi_net.Client.connect addr in
           (try Eppi_net.Client.shutdown c with _ -> ());
           Eppi_net.Client.close c
         with _ -> ());
        Domain.join daemon;
        try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        let c = Eppi_net.Client.connect ~trace_context:false addr in
        Fun.protect
          ~finally:(fun () -> Eppi_net.Client.close c)
          (fun () ->
            for i = 0 to 999 do
              ignore (Eppi_net.Client.query c ~owner:workload.(i mod Array.length workload))
            done;
            let samples = Array.make telemetry_queries 0.0 in
            let best = ref infinity in
            for _round = 1 to 3 do
              Gc.compact ();
              for i = 0 to telemetry_queries - 1 do
                let owner = workload.(i mod Array.length workload) in
                let t0 = Clock.monotonic_ns () in
                ignore (Eppi_net.Client.query c ~owner);
                samples.(i) <- float_of_int (Clock.monotonic_ns () - t0) /. 1e9
              done;
              let p50 = Stats.quantile samples 0.5 in
              if p50 < !best then best := p50
            done;
            !best))
  in
  let telemetry_off_p50 = daemon_p50 ~telemetry:false in
  let telemetry_on_p50 = daemon_p50 ~telemetry:true in
  if telemetry_on_p50 > (1.02 *. telemetry_off_p50) +. 0.000_010 then
    failwith
      (Printf.sprintf
         "serve: stage telemetry costs too much: p50 %.9f s on vs %.9f s off at %d domains \
          (limit 2%% + 10 us)"
         telemetry_on_p50 telemetry_off_p50 telemetry_domains);
  Bench_util.note "telemetry overhead: p50 %.1f us off, %.1f us on (%+.2f%%) at %d domains"
    (telemetry_off_p50 *. 1e6) (telemetry_on_p50 *. 1e6)
    (100.0 *. ((telemetry_on_p50 /. telemetry_off_p50) -. 1.0))
    telemetry_domains;
  (* JSON out. *)
  let seconds_at d =
    List.find_map (fun (d', s, _) -> if d' = d then Some s else None) domain_runs
  in
  let speedup num den =
    match (num, den) with Some a, Some b when b > 0.0 -> Printf.sprintf "%.4f" (a /. b) | _ -> "null"
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"serve\",\n";
  Buffer.add_string b (Printf.sprintf "  \"n_owners\": %d,\n" n);
  Buffer.add_string b (Printf.sprintf "  \"m_providers\": %d,\n" m);
  Buffer.add_string b (Printf.sprintf "  \"queries\": %d,\n" queries);
  Buffer.add_string b
    (Printf.sprintf "  \"recommended_domain_count\": %d,\n" (Domain.recommended_domain_count ()));
  Buffer.add_string b (Printf.sprintf "  \"naive_seconds\": %.6f,\n" naive_seconds);
  Buffer.add_string b (Printf.sprintf "  \"postings_seconds\": %.6f,\n" postings_seconds);
  Buffer.add_string b (Printf.sprintf "  \"cache_seconds\": %.6f,\n" cache_seconds);
  Buffer.add_string b
    (Printf.sprintf "  \"speedup_postings_vs_naive\": %.4f,\n" (naive_seconds /. postings_seconds));
  Buffer.add_string b
    (Printf.sprintf "  \"speedup_cache_vs_naive\": %.4f,\n" (naive_seconds /. cache_seconds));
  Buffer.add_string b (Printf.sprintf "  \"cache_hit_rate\": %.4f,\n" hit_rate);
  Buffer.add_string b
    (Printf.sprintf "  \"latency_s\": { \"count\": %d, \"mean\": %.9f, \"p50\": %.9f, \"p95\": %.9f, \"p99\": %.9f },\n"
       snap.latency_count snap.latency_mean snap.p50 snap.p95 snap.p99);
  Buffer.add_string b "  \"domain_runs\": [\n";
  List.iteri
    (fun i (d, s, qps) ->
      Buffer.add_string b
        (Printf.sprintf "    { \"domains\": %d, \"seconds\": %.6f, \"qps\": %.0f }%s\n" d s qps
           (if i = List.length domain_runs - 1 then "" else ",")))
    domain_runs;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf "  \"speedup_4_domains_vs_1_domain\": %s,\n"
       (speedup (seconds_at 1) (seconds_at 4)));
  Buffer.add_string b
    (Printf.sprintf
       "  \"admission\": { \"queries\": %d, \"served\": %d, \"shed_rate\": %d, \"shed_queue\": %d },\n"
       shed_snap.queries shed_snap.served shed_snap.shed_rate shed_snap.shed_queue);
  Buffer.add_string b
    (Printf.sprintf
       "  \"trace\": { \"no_trace_baseline_seconds\": %.6f, \"disabled_seconds\": %.6f, \
        \"enabled_seconds\": %s, \"disabled_overhead_ok\": true },\n"
       no_trace_baseline disabled_seconds
       (match enabled_seconds with Some s -> Printf.sprintf "%.6f" s | None -> "null"));
  Buffer.add_string b
    (Printf.sprintf
       "  \"telemetry\": { \"domains\": %d, \"queries\": %d, \"off_p50_s\": %.9f, \
        \"on_p50_s\": %.9f, \"overhead_ok\": true },\n"
       telemetry_domains telemetry_queries telemetry_off_p50 telemetry_on_p50);
  Buffer.add_string b (Printf.sprintf "  \"metrics\": %s\n" (Metrics.to_json snap));
  Buffer.add_string b "}\n";
  let out = open_out "BENCH_serve.json" in
  output_string out (Buffer.contents b);
  close_out out;
  Bench_util.note "wrote BENCH_serve.json"
