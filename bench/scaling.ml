(* Multicore construction scaling: wall-clock time of the full distributed
   construction (SecSumShare + CountBelow + release + publication) at
   1/2/4/8 domains, against the pre-shard monolithic single-domain path.

   Unlike the fig4/fig5/fig6 targets, which report *simulated* protocol
   seconds from the cost model, this target measures the harness's own
   wall-clock time — the thing the multicore pipeline actually improves —
   and writes BENCH_construct.json so successive PRs can track the
   trajectory.

   Environment knobs: SCALING_N (identities, default 2000), SCALING_M
   (providers, default 8), SCALING_DOMAINS (comma list, default 1,2,4,8). *)

open Eppi_prelude

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try int_of_string (String.trim s) with _ -> default)
  | None -> default

let domain_counts () =
  match Sys.getenv_opt "SCALING_DOMAINS" with
  | None -> [ 1; 2; 4; 8 ]
  | Some s ->
      String.split_on_char ',' s
      |> List.filter_map (fun tok -> int_of_string_opt (String.trim tok))
      |> List.filter (fun d -> d >= 1)

let wall f =
  let t0 = Clock.seconds () in
  let result = f () in
  (Clock.seconds () -. t0, result)

let run () =
  let n = getenv_int "SCALING_N" 2000 in
  let m = getenv_int "SCALING_M" 8 in
  Bench_util.heading
    (Printf.sprintf "Construction scaling: wall time vs domains (n=%d identities, m=%d providers)"
       n m);
  let rng = Rng.create 4242 in
  let freqs = Array.init n (fun j -> 1 + (j mod m)) in
  let membership = Bench_util.matrix_of_frequencies rng ~m ~freqs in
  let epsilons = Array.init n (fun j -> 0.2 +. (0.6 *. float_of_int (j mod 5) /. 4.0)) in
  let policy = Eppi.Policy.Chernoff 0.9 in
  let construct ?pool ?strategy () =
    Eppi_protocol.Construct.run ?pool ?strategy (Rng.create 99) ~membership ~epsilons ~policy
  in
  (* Pre-shard reference: one monolithic circuit, sequential interpreter. *)
  let mono_time, mono = wall (fun () -> construct ~strategy:`Monolithic ()) in
  Bench_util.note "monolithic (pre-shard) 1 domain: %.3f s" mono_time;
  let runs =
    List.map
      (fun domains ->
        let seconds, r =
          if domains = 1 then wall (fun () -> construct ())
          else
            Pool.with_pool ~size:domains (fun pool -> wall (fun () -> construct ~pool ()))
        in
        (* The determinism contract, re-checked on the bench path. *)
        if r.betas <> mono.betas || r.common <> mono.common then
          failwith "scaling: construction output diverged across domain counts";
        Bench_util.note "sharded %d domain%s: %.3f s (x%.2f vs monolithic)" domains
          (if domains = 1 then " " else "s")
          seconds (mono_time /. seconds);
        (domains, seconds))
      (domain_counts ())
  in
  let seconds_at d = List.assoc_opt d runs in
  let speedup num den =
    match (num, den) with Some a, Some b when b > 0.0 -> a /. b | _ -> Float.nan
  in
  let s1 = seconds_at 1 and s4 = seconds_at 4 in
  (match (s1, s4) with
  | Some s1, Some s4 ->
      Bench_util.note "4-domain speedup: x%.2f vs 1 domain, x%.2f vs monolithic" (s1 /. s4)
        (mono_time /. s4)
  | _ -> ());
  let out = open_out "BENCH_construct.json" in
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"construct-scaling\",\n";
  Buffer.add_string b (Printf.sprintf "  \"n_identities\": %d,\n" n);
  Buffer.add_string b (Printf.sprintf "  \"m_providers\": %d,\n" m);
  Buffer.add_string b
    (Printf.sprintf "  \"recommended_domain_count\": %d,\n" (Domain.recommended_domain_count ()));
  Buffer.add_string b (Printf.sprintf "  \"monolithic_seconds\": %.6f,\n" mono_time);
  Buffer.add_string b "  \"sharded_runs\": [\n";
  List.iteri
    (fun i (d, s) ->
      Buffer.add_string b
        (Printf.sprintf "    { \"domains\": %d, \"seconds\": %.6f }%s\n" d s
           (if i = List.length runs - 1 then "" else ",")))
    runs;
  Buffer.add_string b "  ],\n";
  (* null, not nan, when the domain list lacks a 1 or 4 entry: nan is not JSON. *)
  let json_float x = if Float.is_nan x then "null" else Printf.sprintf "%.4f" x in
  Buffer.add_string b
    (Printf.sprintf "  \"speedup_4_domains_vs_1_domain\": %s,\n" (json_float (speedup s1 s4)));
  Buffer.add_string b
    (Printf.sprintf "  \"speedup_4_domains_vs_monolithic\": %s\n"
       (json_float (speedup (Some mono_time) s4)));
  Buffer.add_string b "}\n";
  output_string out (Buffer.contents b);
  close_out out;
  Bench_util.note "wrote BENCH_construct.json"
