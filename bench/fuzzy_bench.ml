(* Approximate-identity (fuzzy) serving bench: build the resolver over a
   synthetic roster, replay typo/variant probe workloads at several noise
   rates, and measure recall@k against the planted truth, exact-vs-fuzzy
   latency, and the candidate-set-size distribution.  Also scans every
   encoded fuzzy request frame for plaintext demographic bytes — the wire
   invariant docs/FUZZY.md argues for — and re-checks the <2%
   disabled-tracing overhead on the fuzzy path.  Writes BENCH_fuzzy.json.

   Environment knobs: FUZZY_N (owners, default 2000), FUZZY_M (providers,
   default 1024), FUZZY_QUERIES (default 2000), FUZZY_K (default 10). *)

open Eppi_prelude
open Eppi_serve
module Demographic = Eppi_linkage.Demographic
module Probe = Eppi_fuzzy.Probe
module Resolver = Eppi_fuzzy.Resolver
module Roster = Eppi_fuzzy.Roster

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try int_of_string (String.trim s) with _ -> default)
  | None -> default

let percentile sorted q =
  let len = Array.length sorted in
  if len = 0 then 0.0
  else sorted.(min (len - 1) (int_of_float (float_of_int len *. q)))

let scale_noise f =
  let d = Demographic.default_noise in
  {
    Demographic.typo_rate = Float.min 1.0 (d.typo_rate *. f);
    dob_error_rate = Float.min 1.0 (d.dob_error_rate *. f);
    zip_error_rate = Float.min 1.0 (d.zip_error_rate *. f);
  }

(* The plaintext bytes of a record that must never appear in its frame:
   name fields, the zip digits and the dob rendered every way the probe
   pipeline ever renders it. *)
let plaintexts (r : Demographic.t) =
  let y, m, d = r.dob in
  [ r.first; r.last; r.zip; Probe.dob_string (y, m, d) ]
  |> List.filter (fun s -> String.length s >= 3)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  nn > 0 && at 0

let run () =
  let n = getenv_int "FUZZY_N" 2000 in
  let m = getenv_int "FUZZY_M" 1024 in
  let queries = getenv_int "FUZZY_QUERIES" 2000 in
  let k = getenv_int "FUZZY_K" 10 in
  let linkage_seed = 0xE991 in
  Bench_util.heading
    (Printf.sprintf "Fuzzy resolution: recall@%d and latency (n=%d owners, m=%d providers, %d queries)"
       k n m queries);
  let rng = Rng.create 2026 in
  let freqs = Array.init n (fun j -> 1 + (j mod 8)) in
  let membership = Bench_util.matrix_of_frequencies rng ~m ~freqs in
  let epsilons = Array.init n (fun j -> 0.2 +. (0.6 *. float_of_int (j mod 5) /. 4.0)) in
  let r =
    Eppi.Construct.run (Rng.create 7) ~membership ~epsilons ~policy:(Eppi.Policy.Chernoff 0.9)
  in
  let index = r.index in
  let roster = Roster.generate (Rng.create 31) ~n in
  let config = Resolver.default_config ~seed:linkage_seed in
  let build_seconds, resolver =
    let t0 = Clock.seconds () in
    let resolver = Resolver.build config roster in
    (Clock.seconds () -. t0, resolver)
  in
  Bench_util.note "resolver: %d signatures built in %.3f s" (Resolver.entries resolver)
    build_seconds;
  let engine = Serve.create ~resolver index in
  (* Ground truth for candidate rows, untimed. *)
  let truth_rows = Array.init n (fun owner -> Eppi.Index.query index ~owner) in
  (* One workload per noise rate; probes are encoded up front so the timed
     loop measures resolution, not Bloom encoding. *)
  let noise_runs =
    List.map
      (fun factor ->
        let noise = scale_noise factor in
        let workload =
          Workload.fuzzy ~noise (Rng.create (1000 + int_of_float (factor *. 10.)))
            ~roster ~count:queries
        in
        let probes =
          Array.map (fun (_, observed) -> Probe.of_demographic config.params observed) workload
        in
        (* Wire invariant: no plaintext demographic bytes in any frame. *)
        Array.iteri
          (fun i probe ->
            let truth, observed = workload.(i) in
            let frame =
              Eppi_net.Wire.frame_to_string
                (Eppi_net.Wire.Request (Eppi_net.Wire.Query_fuzzy { probe; k }))
            in
            List.iter
              (fun text ->
                if contains_substring frame text then
                  failwith
                    (Printf.sprintf
                       "fuzzy: frame for owner %d leaks plaintext %S (noise x%.1f)" truth text
                       factor))
              (plaintexts observed @ plaintexts roster.(truth)))
          probes;
        let hits = ref 0 and empty = ref 0 in
        let candidate_sizes = Array.make (Array.length probes) 0 in
        let latencies = Array.make (Array.length probes) 0.0 in
        Gc.compact ();
        Array.iteri
          (fun i probe ->
            let truth, _ = workload.(i) in
            let t0 = Clock.seconds () in
            let _gen, reply = Serve.query_fuzzy ~k engine probe in
            latencies.(i) <- Clock.seconds () -. t0;
            match reply with
            | Serve.Candidates candidates ->
                candidate_sizes.(i) <- List.length candidates;
                if candidates = [] then incr empty;
                if List.exists (fun (c : Serve.candidate) -> c.owner = truth) candidates then begin
                  incr hits;
                  (* Candidate rows must match the published index exactly. *)
                  let c =
                    List.find (fun (c : Serve.candidate) -> c.owner = truth) candidates
                  in
                  if c.providers <> truth_rows.(truth) then
                    failwith "fuzzy: candidate row diverged from Index.query"
                end
            | _ -> failwith "fuzzy: engine rejected a well-formed probe")
          probes;
        let recall = float_of_int !hits /. float_of_int queries in
        Array.sort compare latencies;
        let sizes_sorted = Array.copy candidate_sizes in
        Array.sort compare sizes_sorted;
        let mean_size =
          float_of_int (Array.fold_left ( + ) 0 candidate_sizes) /. float_of_int queries
        in
        Bench_util.note
          "noise x%.1f: recall@%d %.4f, empty %d, candidates mean %.2f max %d, p50 %.2g s p99 %.2g s"
          factor k recall !empty mean_size
          sizes_sorted.(Array.length sizes_sorted - 1)
          (percentile latencies 0.5) (percentile latencies 0.99);
        (factor, recall, !empty, mean_size, sizes_sorted, latencies))
      [ 0.0; 1.0; 2.0 ]
  in
  (* The acceptance gate: recall@k at the default noise rate. *)
  let default_recall =
    List.find_map (fun (f, r, _, _, _, _) -> if f = 1.0 then Some r else None) noise_runs
    |> Option.get
  in
  if default_recall < 0.9 then
    failwith
      (Printf.sprintf "fuzzy: recall@%d %.4f under default noise is below the 0.9 gate" k
         default_recall);
  (* Exact-path latency on the same engine for the side-by-side. *)
  let exact_workload = Workload.zipf (Rng.create 17) ~n ~count:queries in
  let exact_latencies = Array.make queries 0.0 in
  Gc.compact ();
  Array.iteri
    (fun i owner ->
      let t0 = Clock.seconds () in
      (match Serve.query engine ~owner with
      | Serve.Providers _ -> ()
      | _ -> failwith "fuzzy: exact query failed");
      exact_latencies.(i) <- Clock.seconds () -. t0)
    exact_workload;
  Array.sort compare exact_latencies;
  Bench_util.note "exact queries on the same engine: p50 %.2g s, p99 %.2g s"
    (percentile exact_latencies 0.5)
    (percentile exact_latencies 0.99);
  (* Disabled-tracing overhead on the fuzzy path: best-of-3 resolve sweeps
     measured twice with tracing off must agree within 2% + 20 ms. *)
  let _, _, _, _, _, _ = List.nth noise_runs 1 in
  let trace_workload =
    Workload.fuzzy ~noise:(scale_noise 1.0) (Rng.create 1010) ~roster ~count:queries
  in
  let trace_probes =
    Array.map (fun (_, observed) -> Probe.of_demographic config.params observed) trace_workload
  in
  let sweep () =
    Array.iter (fun probe -> ignore (Serve.query_fuzzy ~k engine probe)) trace_probes
  in
  sweep ();
  let best_of_3 () =
    Gc.compact ();
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Clock.seconds () in
      sweep ();
      let dt = Clock.seconds () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let no_trace_baseline = best_of_3 () in
  let disabled_seconds = best_of_3 () in
  if disabled_seconds > (1.02 *. no_trace_baseline) +. 0.02 then
    failwith
      (Printf.sprintf
         "fuzzy: disabled tracing costs too much: %.6f s vs %.6f s baseline (limit 2%% + 20 ms)"
         disabled_seconds no_trace_baseline);
  let enabled_seconds =
    if Eppi_obs.Trace.enabled () then None
    else begin
      Eppi_obs.Trace.enable ();
      let s = best_of_3 () in
      Eppi_obs.Trace.disable ();
      Eppi_obs.Trace.reset ();
      Some s
    end
  in
  Bench_util.note "trace overhead: baseline %.3f s, disabled %.3f s (+%.2f%%), enabled %s"
    no_trace_baseline disabled_seconds
    (100.0 *. ((disabled_seconds /. no_trace_baseline) -. 1.0))
    (match enabled_seconds with
    | Some s -> Printf.sprintf "%.3f s" s
    | None -> "outer --trace active, skipped");
  let snap = Serve.metrics engine in
  if
    snap.fuzzy_queries
    <> snap.fuzzy_resolved + snap.fuzzy_empty + snap.fuzzy_rejected + snap.fuzzy_shed
  then failwith "fuzzy: metrics conservation law violated";
  (* JSON out. *)
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"fuzzy\",\n";
  Buffer.add_string b (Printf.sprintf "  \"n_owners\": %d,\n" n);
  Buffer.add_string b (Printf.sprintf "  \"m_providers\": %d,\n" m);
  Buffer.add_string b (Printf.sprintf "  \"queries\": %d,\n" queries);
  Buffer.add_string b (Printf.sprintf "  \"k\": %d,\n" k);
  Buffer.add_string b (Printf.sprintf "  \"resolver_build_seconds\": %.6f,\n" build_seconds);
  Buffer.add_string b (Printf.sprintf "  \"no_plaintext_in_frames\": true,\n");
  Buffer.add_string b "  \"noise_runs\": [\n";
  List.iteri
    (fun i (factor, recall, empty, mean_size, sizes_sorted, latencies) ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"noise_factor\": %.1f, \"recall_at_k\": %.4f, \"empty\": %d, \
            \"candidates\": { \"mean\": %.4f, \"p50\": %d, \"p90\": %d, \"max\": %d }, \
            \"latency_s\": { \"p50\": %.9f, \"p99\": %.9f } }%s\n"
           factor recall empty mean_size
           (int_of_float (percentile (Array.map float_of_int sizes_sorted) 0.5))
           (int_of_float (percentile (Array.map float_of_int sizes_sorted) 0.9))
           sizes_sorted.(Array.length sizes_sorted - 1)
           (percentile latencies 0.5) (percentile latencies 0.99)
           (if i = List.length noise_runs - 1 then "" else ",")))
    noise_runs;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf "  \"recall_at_k_default_noise\": %.4f,\n" default_recall);
  Buffer.add_string b
    (Printf.sprintf
       "  \"exact_latency_s\": { \"p50\": %.9f, \"p99\": %.9f },\n"
       (percentile exact_latencies 0.5)
       (percentile exact_latencies 0.99));
  Buffer.add_string b
    (Printf.sprintf
       "  \"trace\": { \"no_trace_baseline_seconds\": %.6f, \"disabled_seconds\": %.6f, \
        \"enabled_seconds\": %s, \"disabled_overhead_ok\": true },\n"
       no_trace_baseline disabled_seconds
       (match enabled_seconds with Some s -> Printf.sprintf "%.6f" s | None -> "null"));
  Buffer.add_string b (Printf.sprintf "  \"metrics\": %s\n" (Metrics.to_json snap));
  Buffer.add_string b "}\n";
  let out = open_out "BENCH_fuzzy.json" in
  output_string out (Buffer.contents b);
  close_out out;
  Bench_util.note "wrote BENCH_fuzzy.json"
