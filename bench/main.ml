(* The experiment harness: regenerates every table and figure of the
   paper's evaluation section, plus the tech-report search-cost experiment,
   two ablations and a bechamel micro-benchmark suite.

   Run everything:       dune exec bench/main.exe
   Run a single target:  dune exec bench/main.exe -- fig4a fig6c micro

   Pass [--trace FILE] anywhere in the argument list to record every
   instrumented span of the selected targets into a Chrome trace-event
   file (open in Perfetto or chrome://tracing); a summary table is
   printed to stderr.  See docs/OBSERVABILITY.md. *)

let targets : (string * (unit -> unit)) list =
  [
    ("fig4a", Fig4.fig4a);
    ("fig4b", Fig4.fig4b);
    ("fig5a", Fig5.fig5a);
    ("fig5b", Fig5.fig5b);
    ("fig6a", Fig6.fig6a);
    ("fig6b", Fig6.fig6b);
    ("fig6c", Fig6.fig6c);
    ("table2", Table2.run);
    ("search_cost", Search_cost.run);
    ("ablation_mixing", Ablations.ablation_mixing);
    ("ablation_collusion", Ablations.ablation_collusion);
    ("ablation_rebuild", Ablations.ablation_rebuild);
    ("ablation_colluders", Ablations.ablation_colluders);
    ("anonymity", Extensions.anonymity);
    ("backends", Extensions.backends);
    ("micro", Micro.run);
    ("scaling", Scaling.run);
    ("serve", Serve_bench.run);
    ("net", Net_bench.run);
    ("fuzzy", Fuzzy_bench.run);
    ("chaos", Chaos.run);
  ]

(* Strip [--trace FILE] out of argv; the rest are target names. *)
let rec split_trace = function
  | [] -> (None, [])
  | "--trace" :: file :: rest ->
      let _, names = split_trace rest in
      (Some file, names)
  | [ "--trace" ] ->
      prerr_endline "--trace needs a file argument";
      exit 2
  | name :: rest ->
      let trace, names = split_trace rest in
      (trace, name :: names)

let () =
  let trace, requested = split_trace (List.tl (Array.to_list Sys.argv)) in
  let to_run =
    match requested with
    | [] -> targets
    | names ->
        List.map
          (fun name ->
            match List.assoc_opt name targets with
            | Some f -> (name, f)
            | None ->
                Printf.eprintf "unknown target %S; available: %s\n" name
                  (String.concat ", " (List.map fst targets));
                exit 2)
          names
  in
  print_endline "e-PPI experiment harness (ICDCS'14 reproduction)";
  print_endline "see EXPERIMENTS.md for the paper-vs-measured discussion";
  match trace with
  | None -> List.iter (fun (_, f) -> f ()) to_run
  | Some file ->
      Eppi_obs.Trace.enable ();
      let finish () =
        Eppi_obs.Trace.disable ();
        Eppi_obs.Chrome.write file;
        Eppi_obs.Summary.print Format.err_formatter
          (Eppi_obs.Summary.compute (Eppi_obs.Trace.tracks ()));
        Printf.eprintf "trace written to %s\n" file
      in
      Fun.protect ~finally:finish (fun () ->
          List.iter (fun (_, f) -> f ()) to_run)
