(* eppi: the command-line interface to the library.

   Subcommands:
     generate   synthesize an information-network dataset (CSV)
     construct  build an e-PPI over a dataset (centralized or secure path)
     query      look up owners in a local index file or a running daemon
     serve      replay a workload in-process, or run the persistent daemon
     republish  hot-swap a running daemon's index
     stats      metrics snapshot of a running daemon (JSON, --watch for deltas)
     top        live request-stage telemetry of a running daemon
     shutdown   gracefully stop a running daemon
     evaluate   success ratio and attack confidences of an index
     inspect    dataset statistics

   Example session:
     eppi generate --providers 2000 --owners 500 -o net.csv
     eppi construct -d net.csv --policy chernoff --gamma 0.9 -o index.csv
     eppi query -i index.csv --owner 42
     eppi serve -i index.csv --listen /tmp/eppi.sock &
     eppi query --connect /tmp/eppi.sock --owner 42 --owner 7
     eppi republish --connect /tmp/eppi.sock -i index2.csv
     eppi shutdown --connect /tmp/eppi.sock
     eppi evaluate -d net.csv -i index.csv *)

open Cmdliner
open Eppi_prelude

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_output path content =
  match path with
  | None -> print_string content
  | Some path ->
      let oc = open_out_bin path in
      Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc content)

(* ---- common args ---- *)

let seed_arg =
  let doc = "Seed for all randomness (deterministic output)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"INT" ~doc)

let dataset_arg =
  let doc = "Dataset CSV produced by $(b,eppi generate)." in
  Arg.(required & opt (some file) None & info [ "d"; "dataset" ] ~docv:"FILE" ~doc)

let index_arg =
  let doc = "Published-index CSV produced by $(b,eppi construct)." in
  Arg.(required & opt (some file) None & info [ "i"; "index" ] ~docv:"FILE" ~doc)

let output_arg =
  let doc = "Write to $(docv) instead of standard output." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let linkage_seed_arg =
  let doc =
    "Shared linkage secret keying the fuzzy resolver's Bloom encodings and blocking hashes.  \
     Daemon and clients must agree on it; there is deliberately no default — a well-known seed \
     would let anyone replay dictionary probes (docs/FUZZY.md)."
  in
  Arg.(value & opt (some int) None & info [ "linkage-seed" ] ~docv:"INT" ~doc)

let trace_arg =
  let doc =
    "Record a trace of the run and write it to $(docv) as Chrome trace-event JSON \
     (loadable in Perfetto or chrome://tracing: one track per domain, spans with GC \
     deltas, counter tracks for the pool workers).  A per-phase summary table is \
     printed to standard error.  See docs/OBSERVABILITY.md."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* Run [f] under a tracing session when [--trace FILE] was given: the
   Chrome export and the summary table are emitted even if [f] raises, so
   a crashed run still leaves its trace behind. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some file ->
      Eppi_obs.Trace.enable ();
      let finish () =
        Eppi_obs.Trace.disable ();
        Eppi_obs.Chrome.write file;
        Eppi_obs.Summary.print Format.err_formatter
          (Eppi_obs.Summary.compute (Eppi_obs.Trace.tracks ()));
        Printf.eprintf "trace written to %s\n" file
      in
      Fun.protect ~finally:finish f

let policy_term =
  let policy_name =
    let doc = "Beta policy: $(b,basic), $(b,inc-exp) or $(b,chernoff)." in
    Arg.(value & opt string "chernoff" & info [ "policy" ] ~docv:"NAME" ~doc)
  in
  let delta =
    let doc = "Delta for the inc-exp policy." in
    Arg.(value & opt float 0.02 & info [ "delta" ] ~docv:"FLOAT" ~doc)
  in
  let gamma =
    let doc = "Target success ratio for the chernoff policy." in
    Arg.(value & opt float 0.9 & info [ "gamma" ] ~docv:"FLOAT" ~doc)
  in
  let build name delta gamma =
    match name with
    | "basic" -> Ok Eppi.Policy.Basic
    | "inc-exp" -> Ok (Eppi.Policy.Inc_exp delta)
    | "chernoff" -> Ok (Eppi.Policy.Chernoff gamma)
    | other -> Error (Printf.sprintf "unknown policy %S" other)
  in
  Term.(term_result' (const build $ policy_name $ delta $ gamma))

(* ---- generate ---- *)

let generate_cmd =
  let providers =
    Arg.(value & opt int 2500 & info [ "providers" ] ~docv:"INT" ~doc:"Provider count m.")
  in
  let owners =
    Arg.(value & opt int 1000 & info [ "owners" ] ~docv:"INT" ~doc:"Owner/identity count n.")
  in
  let common_fraction =
    Arg.(
      value
      & opt float 0.0
      & info [ "common-fraction" ] ~docv:"FLOAT"
          ~doc:"Fraction of owners planted as common (near-ubiquitous) identities.")
  in
  let epsilon =
    Arg.(
      value
      & opt (some float) None
      & info [ "epsilon" ] ~docv:"FLOAT"
          ~doc:"Constant privacy degree for every owner (default: uniform random).")
  in
  let roster =
    Arg.(
      value
      & opt (some string) None
      & info [ "roster" ] ~docv:"FILE"
          ~doc:
            "Also write a demographic roster CSV: one identity per owner id, the ground truth \
             the serving daemon's fuzzy resolver is built from ($(b,eppi serve --roster)).")
  in
  let run seed providers owners common_fraction epsilon output roster =
    let rng = Rng.create seed in
    let profile = { Eppi_dataset.Dataset.default_profile with common_fraction } in
    let dataset = Eppi_dataset.Dataset.generate ~profile rng ~providers ~owners in
    let dataset =
      match epsilon with
      | Some e -> Eppi_dataset.Dataset.constant_epsilons dataset e
      | None -> Eppi_dataset.Dataset.uniform_epsilons rng dataset
    in
    write_output output (Eppi_dataset.Dataset.to_csv dataset);
    (match roster with
    | None -> ()
    | Some path ->
        let people = Eppi_fuzzy.Roster.generate rng ~n:owners in
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (Eppi_fuzzy.Roster.to_csv people));
        Printf.eprintf "roster: %d identities written to %s\n" owners path);
    Printf.eprintf "%s\n" (Eppi_dataset.Dataset.stats_summary dataset)
  in
  let term =
    Term.(
      const run $ seed_arg $ providers $ owners $ common_fraction $ epsilon $ output_arg $ roster)
  in
  Cmd.v (Cmd.info "generate" ~doc:"Synthesize an information-network dataset") term

(* ---- construct ---- *)

let construct_cmd =
  let secure =
    Arg.(
      value & flag
      & info [ "secure" ]
          ~doc:
            "Run the distributed secure construction (SecSumShare + MPC over a simulated \
             network) instead of the centralized reference path.  Prints protocol metrics.")
  in
  let c_arg =
    Arg.(value & opt int 3 & info [ "c" ] ~docv:"INT" ~doc:"Coordinator count (secure path).")
  in
  let domains_arg =
    Arg.(
      value
      & opt int 0
      & info [ "domains" ] ~docv:"INT"
          ~doc:
            "Domain-pool size for the secure construction's sharded MPC stage: 1 forces the \
             sequential fallback, 0 (default) uses the runtime's recommended domain count.  \
             The constructed index is identical at every setting (see docs/PERF.md).")
  in
  let drop_arg =
    Arg.(
      value
      & opt float 0.0
      & info [ "drop" ] ~docv:"RATE"
          ~doc:
            "Secure path only: per-message drop probability injected on every simulated \
             link.  A nonzero rate engages the fault-tolerant construction \
             (reliability sublayer + failure detector); the output stays bit-identical \
             to the fault-free run.  See docs/ROBUSTNESS.md.")
  in
  let crash_arg =
    Arg.(
      value
      & opt_all (pair ~sep:':' float int) []
      & info [ "crash" ] ~docv:"TIME:PROVIDER"
          ~doc:
            "Secure path only: fail-stop the given provider at the given simulated time \
             (repeatable).  The construction degrades gracefully, excluding the dead \
             provider and recomputing every guarantee over the survivors.")
  in
  let run seed dataset_path policy secure c domains drop crashes trace output =
    let dataset = Eppi_dataset.Dataset.of_csv (read_file dataset_path) in
    let rng = Rng.create seed in
    let faulty = drop > 0.0 || crashes <> [] in
    if faulty && not secure then begin
      Printf.eprintf "--drop/--crash need --secure\n";
      exit 2
    end;
    let index =
      with_trace trace @@ fun () ->
      if secure && faulty then begin
        let open Eppi_simnet in
        let plan =
          {
            Simnet.no_faults with
            fault_seed = seed;
            default_link = { Simnet.perfect_link with drop };
            crashes;
          }
        in
        match
          Eppi_protocol.Construct.run_ft ~sss_plan:plan ~mpc_plan:plan ~c rng
            ~membership:dataset.membership ~epsilons:dataset.epsilons ~policy
        with
        | Failed (reason, rep) ->
            Printf.eprintf "construction failed after %d attempts: %s\n" rep.attempts reason;
            exit 1
        | (Complete (r, rep) | Degraded (r, rep)) as outcome ->
            let verdict =
              match outcome with
              | Eppi_protocol.Construct.Degraded _ -> "degraded"
              | _ -> "complete"
            in
            Printf.eprintf
              "secure construction (%s): %d/%d providers, %d attempts, %d+%d \
               retransmissions, %d duplicates suppressed, lambda=%.4f\n"
              verdict
              (List.length rep.survivors)
              (Eppi_prelude.Bitmatrix.cols dataset.membership)
              rep.attempts rep.sss_retransmissions rep.mpc_retransmissions rep.duplicates
              r.lambda;
            if rep.excluded <> [] then
              Printf.eprintf "excluded dead providers: %s\n"
                (String.concat ", " (List.map string_of_int rep.excluded));
            r.index
      end
      else if secure then begin
        let size = if domains <= 0 then None else Some domains in
        let r =
          Eppi_prelude.Pool.with_pool ?size (fun pool ->
              Eppi_protocol.Construct.run ~pool ~c rng ~membership:dataset.membership
                ~epsilons:dataset.epsilons ~policy)
        in
        Printf.eprintf
          "secure construction: %.4fs simulated (secsumshare %.4fs + mpc %.4fs), %d \
           messages, %d bytes, circuit %d gates, lambda=%.4f\n"
          r.metrics.total_time r.metrics.secsumshare_time r.metrics.mpc_time
          r.metrics.messages r.metrics.bytes r.metrics.circuit_stats.size r.lambda;
        r.index
      end
      else begin
        let r =
          Eppi.Construct.run rng ~membership:dataset.membership ~epsilons:dataset.epsilons
            ~policy
        in
        let commons =
          Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 r.common
        in
        Printf.eprintf "constructed: %d common identities, lambda=%.4f, xi=%.2f\n" commons
          r.lambda r.xi;
        r.index
      end
    in
    write_output output (Eppi.Index.to_csv index)
  in
  let term =
    Term.(
      const run $ seed_arg $ dataset_arg $ policy_term $ secure $ c_arg $ domains_arg
      $ drop_arg $ crash_arg $ trace_arg $ output_arg)
  in
  Cmd.v (Cmd.info "construct" ~doc:"Build an e-PPI over a dataset") term

(* ---- query ---- *)

let connect_opt_arg =
  let doc =
    "Address of a running $(b,eppi serve --listen) daemon: a Unix-socket path or $(i,HOST:PORT).  \
     A comma-separated list ($(i,A,B,C)) addresses a replica set: queries fail over to another \
     replica when one dies."
  in
  Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"ADDR" ~doc)

(* Connect (tolerating a daemon that is still starting up), run [f], close.
   Reconnects transparently if the daemon restarts mid-session; a request
   that gets no answer for 30 s is reported instead of hanging forever. *)
let with_client addr f =
  let client =
    Eppi_net.Client.connect ~retries:100 ~reconnect:true ~request_timeout:30.0
      (Eppi_net.Addr.of_string addr)
  in
  Fun.protect ~finally:(fun () -> Eppi_net.Client.close client) (fun () -> f client)

(* A comma in an address argument selects the cluster path: A,B,C is a
   replica set, a single address keeps the plain client. *)
let is_cluster addr = String.contains addr ','

let replica_set_of_string ~what addrs =
  match Eppi_cluster.Replica_set.parse addrs with
  | Ok set -> set
  | Error msg ->
      Printf.eprintf "%s: bad replica set %S: %s\n" what addrs msg;
      exit 2

let with_cluster ~what addrs f =
  let set = replica_set_of_string ~what addrs in
  let client = Eppi_cluster.Client.create ~request_timeout:30.0 set in
  Fun.protect ~finally:(fun () -> Eppi_cluster.Client.close client) (fun () -> f client)

let query_cmd =
  let owners =
    Arg.(
      value & opt_all int []
      & info [ "owner" ] ~docv:"INT" ~doc:"Owner identity (repeatable: one reply line each).")
  in
  let index_path =
    let doc = "Published-index CSV produced by $(b,eppi construct) (local mode)." in
    Arg.(value & opt (some file) None & info [ "i"; "index" ] ~docv:"FILE" ~doc)
  in
  let replay_log =
    let doc =
      "With $(b,--connect): replay a request log (CSV or JSONL, see docs/SERVE.md) through the \
       daemon as pipelined queries and print a JSON summary instead of per-owner replies."
    in
    Arg.(value & opt (some file) None & info [ "replay-log" ] ~docv:"FILE" ~doc)
  in
  let depth =
    Arg.(
      value & opt int 32
      & info [ "depth" ] ~docv:"INT" ~doc:"Pipeline depth for $(b,--replay-log).")
  in
  let print_reply = function
    | Eppi_serve.Serve.Providers providers ->
        Printf.printf "%s\n" (String.concat "," (List.map string_of_int providers))
    | Eppi_serve.Serve.Unknown_owner -> print_endline "unknown"
    | Eppi_serve.Serve.Shed_rate_limit | Eppi_serve.Serve.Shed_queue_full -> print_endline "shed"
  in
  let usage_error msg =
    Printf.eprintf "query: %s\n" msg;
    exit 2
  in
  let parse_dob s =
    if s = "" then (0, 0, 0)
    else
      match String.split_on_char '-' s with
      | [ y; m; d ] -> (
          match (int_of_string_opt y, int_of_string_opt m, int_of_string_opt d) with
          | Some y, Some m, Some d when y > 0 && m >= 1 && m <= 12 && d >= 1 && d <= 31 ->
              (y, m, d)
          | _ -> usage_error (Printf.sprintf "bad --dob %S (want YYYY-MM-DD)" s))
      | _ -> usage_error (Printf.sprintf "bad --dob %S (want YYYY-MM-DD)" s)
  in
  let run_fuzzy addr ~linkage_seed ~first ~last ~dob ~zip ~k =
    let seed =
      match linkage_seed with
      | Some s -> s
      | None -> usage_error "--fuzzy requires --linkage-seed (the daemon's shared secret)"
    in
    if first = "" && last = "" && dob = "" && zip = "" then
      usage_error "--fuzzy needs at least one of --first/--last/--dob/--zip";
    let record : Eppi_linkage.Demographic.t =
      {
        first = String.lowercase_ascii first;
        last = String.lowercase_ascii last;
        dob = parse_dob dob;
        zip;
        gender = Eppi_linkage.Demographic.Other (* not encoded in probes *);
      }
    in
    let config = Eppi_fuzzy.Resolver.default_config ~seed in
    (* Encoding happens here, client-side: only the Bloom filters and
       keyed blocking hashes leave this process. *)
    let probe = Eppi_fuzzy.Probe.of_demographic config.params record in
    let _generation, result = with_client addr (fun c -> Eppi_net.Client.query_fuzzy ~k c probe) in
    match (result : Eppi_serve.Serve.fuzzy_reply) with
    | Candidates [] ->
        Printf.eprintf "no match above threshold\n";
        exit 1
    | Candidates candidates ->
        List.iter
          (fun (cand : Eppi_serve.Serve.candidate) ->
            Printf.printf "%d %.4f %s\n" cand.owner cand.score
              (String.concat "," (List.map string_of_int cand.providers)))
          candidates
    | No_resolver ->
        Printf.eprintf "daemon has no fuzzy resolver (start it with --roster)\n";
        exit 1
    | Probe_mismatch ->
        Printf.eprintf "probe geometry rejected: linkage parameters disagree with the daemon\n";
        exit 1
    | Fuzzy_shed ->
        Printf.eprintf "shed\n";
        exit 1
  in
  let run index_path connect owners replay_log depth fuzzy first last dob zip k linkage_seed =
    if fuzzy then begin
      if owners <> [] then usage_error "--fuzzy excludes --owner";
      if replay_log <> None then usage_error "--fuzzy excludes --replay-log";
      if k < 1 then usage_error "--k must be positive";
      match (index_path, connect) with
      | None, Some addr -> run_fuzzy addr ~linkage_seed ~first ~last ~dob ~zip ~k
      | _ -> usage_error "--fuzzy needs --connect (fuzzy resolution lives in the daemon)"
    end
    else if first <> "" || last <> "" || dob <> "" || zip <> "" then
      usage_error "--first/--last/--dob/--zip need --fuzzy"
    else
    match (index_path, connect) with
    | Some _, Some _ | None, None -> usage_error "give exactly one of --index or --connect"
    | Some path, None ->
        if replay_log <> None then usage_error "--replay-log needs --connect";
        if owners = [] then usage_error "--owner required";
        let index = Eppi.Index.of_csv (read_file path) in
        List.iter
          (fun owner ->
            if owner < 0 || owner >= Eppi.Index.owners index then begin
              Printf.eprintf "owner %d out of range [0, %d)\n" owner (Eppi.Index.owners index);
              exit 1
            end;
            print_reply (Eppi_serve.Serve.Providers (Eppi.Index.query index ~owner)))
          owners
    | None, Some addr when is_cluster addr -> (
        (* Replica set: same commands, failover-aware transport. *)
        match replay_log with
        | Some log ->
            if owners <> [] then usage_error "--replay-log excludes --owner";
            let workload = Eppi_net.Replay.load log in
            let s =
              with_cluster ~what:"query" addr (fun cluster ->
                  Eppi_cluster.Client.replay ~depth cluster workload)
            in
            Printf.printf
              "{\"requests\": %d, \"served\": %d, \"unknown\": %d, \"shed\": %d, \
               \"providers_listed\": %d, \"failovers\": %d, \"wall_seconds\": %.6f, \
               \"qps\": %.0f}\n"
              s.requests s.served s.unknown s.shed s.providers_listed s.failovers s.wall_seconds
              (float_of_int s.requests /. Float.max 1e-9 s.wall_seconds)
        | None ->
            if owners = [] then usage_error "--owner required";
            let requests = List.map (fun owner -> Eppi_net.Wire.Query { owner }) owners in
            with_cluster ~what:"query" addr (fun cluster ->
                List.iter
                  (function
                    | Eppi_net.Wire.Reply { reply; _ } -> print_reply reply
                    | other -> Eppi_net.Client.unexpected "query" other)
                  (Eppi_cluster.Client.pipeline cluster requests)))
    | None, Some addr -> (
        match replay_log with
        | Some log ->
            if owners <> [] then usage_error "--replay-log excludes --owner";
            let workload = Eppi_net.Replay.load log in
            let s = with_client addr (fun client -> Eppi_net.Replay.run ~depth client workload) in
            Printf.printf
              "{\"requests\": %d, \"served\": %d, \"unknown\": %d, \"shed\": %d, \
               \"providers_listed\": %d, \"first_generation\": %d, \"last_generation\": %d, \
               \"wall_seconds\": %.6f, \"qps\": %.0f}\n"
              s.requests s.served s.unknown s.shed s.providers_listed s.first_generation
              s.last_generation s.wall_seconds
              (float_of_int s.requests /. Float.max 1e-9 s.wall_seconds)
        | None ->
            if owners = [] then usage_error "--owner required";
            let requests = List.map (fun owner -> Eppi_net.Wire.Query { owner }) owners in
            with_client addr (fun client ->
                List.iter
                  (function
                    | Eppi_net.Wire.Reply { reply; _ } -> print_reply reply
                    | other -> Eppi_net.Client.unexpected "query" other)
                  (Eppi_net.Client.pipeline client requests)))
  in
  let fuzzy =
    let doc =
      "Approximate-identity lookup: resolve the demographics given with \
       $(b,--first)/$(b,--last)/$(b,--dob)/$(b,--zip) against the daemon's roster, then print \
       one line per candidate: owner id, match score, provider list.  Demographics are \
       Bloom-encoded locally under $(b,--linkage-seed); plaintext never crosses the wire."
    in
    Arg.(value & flag & info [ "fuzzy" ] ~doc)
  in
  let first =
    Arg.(value & opt string "" & info [ "first" ] ~docv:"NAME" ~doc:"First name (fuzzy probe).")
  in
  let last =
    Arg.(value & opt string "" & info [ "last" ] ~docv:"NAME" ~doc:"Last name (fuzzy probe).")
  in
  let dob =
    Arg.(
      value & opt string ""
      & info [ "dob" ] ~docv:"YYYY-MM-DD" ~doc:"Date of birth (fuzzy probe).")
  in
  let zip =
    Arg.(value & opt string "" & info [ "zip" ] ~docv:"ZIP" ~doc:"Zip code (fuzzy probe).")
  in
  let k =
    Arg.(
      value & opt int 10 & info [ "k" ] ~docv:"INT" ~doc:"Candidate limit for $(b,--fuzzy).")
  in
  let term =
    Term.(
      const run $ index_path $ connect_opt_arg $ owners $ replay_log $ depth $ fuzzy $ first
      $ last $ dob $ zip $ k $ linkage_seed_arg)
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "QueryPPI: list candidate providers for an owner, from a local index file or a running \
          daemon")
    term

(* ---- evaluate ---- *)

let evaluate_cmd =
  let run seed dataset_path index_path =
    let dataset = Eppi_dataset.Dataset.of_csv (read_file dataset_path) in
    let index = Eppi.Index.of_csv (read_file index_path) in
    let membership = dataset.membership in
    let published = Eppi.Index.matrix index in
    let ratio =
      Eppi.Metrics.success_ratio ~membership ~published ~epsilons:dataset.epsilons
    in
    Printf.printf "owners: %d  providers: %d\n" dataset.owners dataset.providers;
    Printf.printf "success ratio (fp_j >= eps_j): %.4f\n" ratio;
    let worst = ref 0.0 and total = ref 0.0 in
    for j = 0 to dataset.owners - 1 do
      let conf = Eppi.Attack.primary_confidence ~membership ~published ~owner:j in
      worst := Float.max !worst conf;
      total := !total +. conf
    done;
    Printf.printf "primary attack confidence: mean %.4f, worst %.4f\n"
      (!total /. float_of_int dataset.owners)
      !worst;
    let rng = Rng.create seed in
    let sampled = Rng.sample_without_replacement rng ~k:(min 5 dataset.owners) ~n:dataset.owners in
    Array.iter
      (fun j ->
        Printf.printf
          "  owner %d: eps=%.2f freq=%d published=%d fp=%.3f recall=%b\n" j
          dataset.epsilons.(j)
          (Eppi_prelude.Bitmatrix.row_count membership j)
          (Eppi.Index.query_count index ~owner:j)
          (Eppi.Metrics.false_positive_rate ~membership ~published ~owner:j)
          (Eppi.Index.recall_ok ~membership index ~owner:j))
      sampled
  in
  let term = Term.(const run $ seed_arg $ dataset_arg $ index_arg) in
  Cmd.v
    (Cmd.info "evaluate" ~doc:"Measure privacy metrics of a published index against its dataset")
    term

(* ---- attack ---- *)

let attack_cmd =
  let colluders =
    Arg.(
      value & opt int 0
      & info [ "colluders" ] ~docv:"INT"
          ~doc:"Number of colluding providers (chosen at random) for the collusion analysis.")
  in
  let sigma_threshold =
    Arg.(
      value & opt float 0.5
      & info [ "sigma-threshold" ] ~docv:"FLOAT"
          ~doc:"Frequency fraction above which an identity counts as common.")
  in
  let run seed dataset_path index_path colluders sigma_threshold =
    let dataset = Eppi_dataset.Dataset.of_csv (read_file dataset_path) in
    let index = Eppi.Index.of_csv (read_file index_path) in
    let membership = dataset.membership in
    let published = Eppi.Index.matrix index in
    let rng = Rng.create seed in
    (* Primary attack over all owners. *)
    let confidences =
      Array.init dataset.owners (fun j ->
          Eppi.Attack.primary_confidence ~membership ~published ~owner:j)
    in
    let s = Stats.summary confidences in
    Format.printf "primary attack confidence: %a@." Stats.pp_summary s;
    (* Common-identity attack. *)
    let common =
      Eppi.Attack.common_identity_attack ~membership ~published ~sigma_threshold
    in
    Printf.printf
      "common-identity attack (sigma' = %.2f): %d suspects, %d truly common, confidence %.4f\n"
      sigma_threshold (List.length common.suspected) common.truly_common common.confidence;
    (* Collusion refinement on the worst owner. *)
    if colluders > 0 then begin
      let worst = ref 0 in
      Array.iteri (fun j c -> if c > confidences.(!worst) then worst := j) confidences;
      let chosen =
        Array.to_list (Rng.sample_without_replacement rng ~k:colluders ~n:dataset.providers)
      in
      Printf.printf
        "with %d random colluders, confidence against the most exposed owner (%d): %.4f\n"
        colluders !worst
        (Eppi.Attack.colluding_confidence ~membership ~published ~owner:!worst
           ~colluders:chosen)
    end
  in
  let term = Term.(const run $ seed_arg $ dataset_arg $ index_arg $ colluders $ sigma_threshold) in
  Cmd.v (Cmd.info "attack" ~doc:"Run the threat-model attacks against a published index") term

(* ---- link ---- *)

let link_cmd =
  let persons =
    Arg.(value & opt int 200 & info [ "persons" ] ~docv:"INT" ~doc:"Ground-truth patients.")
  in
  let providers =
    Arg.(value & opt int 20 & info [ "providers" ] ~docv:"INT" ~doc:"Hospitals.")
  in
  let bloom =
    Arg.(
      value & flag
      & info [ "bloom" ]
          ~doc:"Use privacy-preserving Bloom-filter field encodings instead of plaintext.")
  in
  let run seed persons providers bloom output =
    let rng = Rng.create seed in
    let registrations =
      Eppi_linkage.Demographic.population rng ~persons ~providers ~max_registrations:4
    in
    let config =
      if bloom then
        {
          Eppi_linkage.Linkage.mode =
            Eppi_linkage.Linkage.Bloom { Eppi_linkage.Bloom.default_params with bits = 256 };
          match_threshold = 0.82;
        }
      else Eppi_linkage.Linkage.default_config
    in
    let linked = Eppi_linkage.Linkage.link config registrations in
    let quality = Eppi_linkage.Linkage.evaluate linked registrations in
    Printf.eprintf
      "%d registrations -> %d entities (truth %d); precision %.3f recall %.3f f1 %.3f\n"
      (Array.length registrations) linked.entities persons quality.precision quality.recall
      quality.f1;
    (* Emit a dataset CSV so the result chains into `eppi construct`. *)
    let membership = Eppi_linkage.Linkage.to_membership linked registrations ~providers in
    let dataset =
      {
        Eppi_dataset.Dataset.providers;
        owners = linked.entities;
        membership;
        epsilons = Array.make linked.entities 0.5;
      }
    in
    write_output output (Eppi_dataset.Dataset.to_csv dataset)
  in
  let term = Term.(const run $ seed_arg $ persons $ providers $ bloom $ output_arg) in
  Cmd.v
    (Cmd.info "link"
       ~doc:
         "Generate a messy multi-provider patient population, link it (optionally \
          privacy-preservingly), and emit the linked dataset for `construct`")
    term

(* ---- serve ---- *)

let serve_cmd =
  let queries =
    Arg.(value & opt int 100_000 & info [ "queries" ] ~docv:"INT" ~doc:"Workload size to replay.")
  in
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"INT" ~doc:"Independent shard states.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"INT"
          ~doc:
            "Engine-calling domains: worker domains for the daemon ($(b,--listen)), the \
             domain-pool size for in-process replay.  1 serves inline on a single domain.")
  in
  let cache =
    Arg.(
      value & opt int 4096
      & info [ "cache" ] ~docv:"INT" ~doc:"Result-cache capacity per shard; 0 disables caching.")
  in
  let zipf_exponent =
    Arg.(
      value & opt float 1.1
      & info [ "zipf" ] ~docv:"FLOAT" ~doc:"Zipf exponent of the synthetic workload.")
  in
  let unknown_fraction =
    Arg.(
      value & opt float 0.0
      & info [ "unknown-fraction" ] ~docv:"FLOAT"
          ~doc:"Fraction of requests targeting unknown owner ids (negative-cache traffic).")
  in
  let rate =
    Arg.(
      value & opt (some float) None
      & info [ "rate" ] ~docv:"FLOAT"
          ~doc:
            "Enable admission control: token-bucket refill rate per shard (requests/s).  \
             Off by default.")
  in
  let burst =
    Arg.(
      value & opt int 1000
      & info [ "burst" ] ~docv:"INT" ~doc:"Token-bucket burst capacity (with $(b,--rate)).")
  in
  let queue =
    Arg.(
      value & opt int 100_000
      & info [ "queue" ] ~docv:"INT" ~doc:"Bounded per-shard queue (with $(b,--rate)).")
  in
  let listen =
    let doc =
      "Run as a persistent daemon on $(docv) (a Unix-socket path or $(i,HOST:PORT)) instead of \
       replaying a synthetic workload.  Serves until an $(b,eppi shutdown) frame arrives; \
       $(b,eppi republish) hot-swaps the index without a restart."
    in
    Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"ADDR" ~doc)
  in
  let stdio =
    let doc =
      "Run the daemon over standard input/output (inetd-style framing) instead of a socket."
    in
    Arg.(value & flag & info [ "stdio" ] ~doc)
  in
  let peers =
    let doc =
      "Comma-separated replica set this daemon belongs to (with $(b,--listen)).  Descriptive, \
       not connective: the daemon never dials its peers, it only echoes the set in \
       cluster-status replies so clients and $(b,eppi top) can discover the other replicas \
       from any one member."
    in
    Arg.(value & opt (some string) None & info [ "peers" ] ~docv:"ADDRS" ~doc)
  in
  let replay_log =
    let doc =
      "Replay this request log (CSV or JSONL, see docs/SERVE.md) instead of the synthetic Zipf \
       workload (in-process replay mode only)."
    in
    Arg.(value & opt (some file) None & info [ "replay-log" ] ~docv:"FILE" ~doc)
  in
  let roster =
    let doc =
      "Roster CSV ($(b,eppi generate --roster)) naming each owner id's demographics.  Builds \
       the approximate-identity resolver, enabling $(b,eppi query --fuzzy) against the daemon.  \
       Requires $(b,--linkage-seed)."
    in
    Arg.(value & opt (some file) None & info [ "roster" ] ~docv:"FILE" ~doc)
  in
  let run seed index_path queries shards domains cache zipf_exponent unknown_fraction rate burst
      queue listen stdio peers replay_log roster linkage_seed trace =
    let index = Eppi.Index.of_csv (read_file index_path) in
    let n = Eppi.Index.owners index in
    let admission =
      Option.map (fun rate -> { Eppi_serve.Admission.rate; burst; queue_capacity = queue }) rate
    in
    let config =
      { Eppi_serve.Serve.default_config with shards; cache_capacity = cache; admission }
    in
    let resolver =
      match (roster, linkage_seed) with
      | None, _ -> None
      | Some _, None ->
          Printf.eprintf
            "serve: --roster requires --linkage-seed (the shared linkage secret; never a \
             built-in default on a network path)\n";
          exit 2
      | Some path, Some seed ->
          let people = Eppi_fuzzy.Roster.of_csv (read_file path) in
          if Array.length people <> n then begin
            Printf.eprintf "serve: roster names %d identities but the index has %d owners\n"
              (Array.length people) n;
            exit 2
          end;
          Printf.eprintf "roster: %d identities, fuzzy resolver enabled\n" (Array.length people);
          Some (Eppi_fuzzy.Resolver.build (Eppi_fuzzy.Resolver.default_config ~seed) people)
    in
    let engine = Eppi_serve.Serve.create ~config ?resolver index in
    let postings = Eppi_serve.Serve.postings engine in
    Printf.eprintf "index: %d owners, %d providers; postings store %d bytes\n" n
      (Eppi.Index.providers index)
      (Eppi_serve.Postings.memory_bytes postings);
    match (listen, stdio) with
    | Some _, true ->
        Printf.eprintf "serve: --listen and --stdio are mutually exclusive\n";
        exit 2
    | Some addr, false ->
        let peer_list =
          match peers with
          | None -> []
          | Some addrs ->
              (* Validate eagerly — a typo should fail startup, not every
                 later Cluster_status consumer — but store the strings
                 verbatim, as the operator wrote them. *)
              ignore (replica_set_of_string ~what:"serve" addrs);
              String.split_on_char ',' addrs |> List.map String.trim
        in
        let config =
          { Eppi_net.Server.default_config with workers = max 1 domains; peers = peer_list }
        in
        let server = Eppi_net.Server.create ~config engine in
        Printf.eprintf "listening on %s (%d shards, %d worker domains, generation %d%s)\n" addr
          shards config.workers
          (Eppi_serve.Serve.generation engine)
          (if peer_list = [] then ""
           else Printf.sprintf ", replica set of %d" (List.length peer_list));
        with_trace trace (fun () -> Eppi_net.Server.serve server (Eppi_net.Addr.of_string addr));
        Printf.eprintf "daemon stopped; final metrics:\n";
        print_endline (Eppi_serve.Metrics.to_json (Eppi_serve.Serve.metrics engine))
    | None, true ->
        let server = Eppi_net.Server.create engine in
        with_trace trace (fun () -> Eppi_net.Server.run_stdio server)
    | None, false ->
        let workload =
          match replay_log with
          | Some log -> Eppi_net.Replay.load log
          | None ->
              Eppi_serve.Workload.zipf ~exponent:zipf_exponent ~unknown_fraction
                (Rng.create seed) ~n ~count:queries
        in
        let queries = Array.length workload in
        let tally =
          with_trace trace @@ fun () ->
          if domains > 1 then
            Eppi_prelude.Pool.with_pool ~size:domains (fun pool ->
                Eppi_serve.Serve.replay ~pool engine workload)
          else Eppi_serve.Serve.replay engine workload
        in
        Printf.eprintf
          "replayed %d queries in %.4f s (%.0f q/s): %d served, %d unknown, %d shed (rate), %d \
           shed (queue)\n"
          queries tally.tally_wall_seconds
          (float_of_int queries /. tally.tally_wall_seconds)
          tally.served tally.unknown tally.shed_rate tally.shed_queue;
        print_endline (Eppi_serve.Metrics.to_json (Eppi_serve.Serve.metrics engine))
  in
  let term =
    Term.(
      const run $ seed_arg $ index_arg $ queries $ shards $ domains $ cache $ zipf_exponent
      $ unknown_fraction $ rate $ burst $ queue $ listen $ stdio $ peers $ replay_log $ roster
      $ linkage_seed_arg $ trace_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Compile a published index into the read-optimized serving engine and either replay a \
          workload in-process (default) or serve it as a persistent daemon ($(b,--listen), \
          $(b,--stdio))")
    term

(* ---- republish / stats / shutdown: daemon administration ---- *)

let connect_required_arg =
  let doc =
    "Address of a running $(b,eppi serve --listen) daemon: a Unix-socket path or $(i,HOST:PORT)."
  in
  Arg.(required & opt (some string) None & info [ "connect" ] ~docv:"ADDR" ~doc)

let republish_cmd =
  let csv_arg =
    let doc =
      "Ship the index as the legacy CSV payload instead of the compact binary codec — for \
       daemons that predate the binary republish frame.  Single-daemon mode only."
    in
    Arg.(value & flag & info [ "csv" ] ~doc)
  in
  let cluster_arg =
    let doc =
      "Fan the republish out to a comma-separated replica set instead of one daemon: the index \
       is encoded once and pushed to every replica concurrently, transient failures retry with \
       jittered backoff, and the per-replica outcome is reported — a dead replica never blocks \
       the others."
    in
    Arg.(value & opt (some string) None & info [ "cluster" ] ~docv:"ADDRS" ~doc)
  in
  let require_arg =
    let doc =
      "With $(b,--cluster): exit non-zero unless at least $(docv) replicas installed the index \
       (default: all of them)."
    in
    Arg.(value & opt (some int) None & info [ "require" ] ~docv:"K" ~doc)
  in
  let usage_error msg =
    Printf.eprintf "republish: %s\n" msg;
    exit 2
  in
  let run_cluster addrs index_path require =
    let set = replica_set_of_string ~what:"republish" addrs in
    let index =
      match Eppi.Index.of_csv (read_file index_path) with
      | index -> index
      | exception Failure msg ->
          Printf.eprintf "republish: bad index: %s\n" msg;
          exit 1
    in
    let report = Eppi_cluster.Fanout.republish set index in
    List.iter
      (fun (r : Eppi_cluster.Fanout.replica_result) ->
        match r.outcome with
        | Ok generation ->
            Printf.printf "%s: generation %d (%d attempt%s, %.3fs)\n"
              (Eppi_net.Addr.to_string r.addr) generation r.attempts
              (if r.attempts = 1 then "" else "s")
              r.seconds
        | Error msg ->
            Printf.printf "%s: failed after %d attempt%s: %s\n"
              (Eppi_net.Addr.to_string r.addr) r.attempts
              (if r.attempts = 1 then "" else "s")
              msg)
      report.results;
    Printf.printf "republished %d/%d replicas%s in %.3fs\n" report.succeeded
      (Eppi_cluster.Replica_set.size set)
      (match report.generation with
      | Some g -> Printf.sprintf " at generation %d" g
      | None -> "")
      report.wall_seconds;
    let require = Option.value ~default:(Eppi_cluster.Replica_set.size set) require in
    if report.succeeded < require then exit 1
  in
  let run connect index_path csv cluster require =
    match (connect, cluster) with
    | Some _, Some _ | None, None -> usage_error "give exactly one of --connect or --cluster"
    | None, Some addrs ->
        if csv then usage_error "--csv is single-daemon only (fan-out ships the binary codec)";
        run_cluster addrs index_path require
    | Some addr, None -> (
        if require <> None then usage_error "--require needs --cluster";
        if is_cluster addr then usage_error "use --cluster (not --connect) for a replica set";
        let index_csv = read_file index_path in
        with_client addr (fun client ->
            let result =
              if csv then Eppi_net.Client.republish client ~index_csv
              else
                match Eppi.Index.of_csv index_csv with
                | index -> Eppi_net.Client.republish_index client index
                | exception Failure msg -> Error msg
            in
            match result with
            | Ok generation -> Printf.printf "generation %d\n" generation
            | Error msg ->
                Printf.eprintf "republish rejected: %s\n" msg;
                exit 1))
  in
  let term =
    Term.(const run $ connect_opt_arg $ index_arg $ csv_arg $ cluster_arg $ require_arg)
  in
  Cmd.v
    (Cmd.info "republish"
       ~doc:
         "Hot-swap the index of a running daemon: queries keep flowing, the new generation \
          takes effect atomically, per-shard caches invalidate.  The index travels as the \
          compact binary codec unless $(b,--csv) asks for the legacy payload.  \
          $(b,--cluster A,B,C) fans the swap out to a whole replica set")
    term

(* Seconds → a human-sized unit.  Telemetry spans ns..s; a fixed unit
   would drown either end in zeros. *)
let fmt_duration s =
  if s <= 0.0 then "-"
  else if s < 1e-6 then Printf.sprintf "%.0fns" (s *. 1e9)
  else if s < 1e-3 then Printf.sprintf "%.1fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.2fs" s

(* One `stats --watch` line: per-interval counter deltas with rates, plus
   the point-in-time fields that don't diff (generation, percentiles). *)
let stats_delta_line ~dt ?prev cur =
  let get v k = Option.value ~default:0 (Json.find_int v [ k ]) in
  let getf v k = Option.value ~default:0.0 (Json.find_num v [ k ]) in
  let d k = get cur k - match prev with Some p -> get p k | None -> 0 in
  let rate k = float_of_int (d k) /. dt in
  Printf.sprintf
    "queries %6d (%8.1f/s)  served %6d  hits %6d  shed %4d  fuzzy %5d  audits %4d  gen %d  \
     swaps %d  p50 %s  p99 %s"
    (d "queries") (rate "queries") (d "served") (d "cache_hits")
    (d "shed_rate" + d "shed_queue")
    (d "fuzzy_queries") (d "audits") (get cur "generation") (get cur "swaps")
    (fmt_duration (getf cur "p50"))
    (fmt_duration (getf cur "p99"))

let stats_cmd =
  let watch_arg =
    let doc =
      "Refresh every $(docv) seconds, printing one line of per-interval counter deltas (with \
       rates) per refresh instead of a one-shot snapshot.  The first line is the delta from \
       zero, i.e. the daemon's lifetime totals.  Interrupt with Ctrl-C."
    in
    Arg.(value & opt (some float) None & info [ "watch" ] ~docv:"SECS" ~doc)
  in
  let json_arg =
    let doc =
      "Print the raw JSON snapshot on every refresh instead of the delta line — for scripting.  \
       Without $(b,--watch) this is already the default output."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let iterations_arg =
    let doc = "With $(b,--watch): stop after $(docv) refreshes (0 = run until interrupted)." in
    Arg.(value & opt int 0 & info [ "iterations" ] ~docv:"N" ~doc)
  in
  let run addr watch json iterations =
    with_client addr (fun client ->
        match watch with
        | None -> print_endline (Eppi_net.Client.stats_json client)
        | Some interval ->
            let interval = if interval <= 0.0 then 1.0 else interval in
            let prev = ref None in
            (* Absolute-deadline cadence: the time spent fetching and
               printing no longer drifts the schedule. *)
            Eppi_prelude.Clock.periodic ~sleep:Unix.sleepf ~interval
              ?iterations:(if iterations <= 0 then None else Some iterations)
              (fun _tick ->
                let raw = Eppi_net.Client.stats_json client in
                (if json then print_endline raw
                 else
                   match Json.parse raw with
                   | Error e -> Printf.eprintf "stats: unparseable reply: %s\n" e
                   | Ok cur ->
                       print_endline (stats_delta_line ~dt:interval ?prev:!prev cur);
                       prev := Some cur);
                flush stdout;
                true))
  in
  let term = Term.(const run $ connect_required_arg $ watch_arg $ json_arg $ iterations_arg) in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Print a running daemon's metrics snapshot (JSON, one line), or watch it live: \
          $(b,--watch SECS) prints per-interval counter deltas, $(b,--json) keeps the raw \
          snapshot for scripting")
    term

(* ---- top: live request-stage telemetry ---- *)

(* Render one Telemetry reply ({!Eppi_net.Telemetry.to_json}) as the
   `eppi top` screen: window rates per request class, the six-stage
   latency decomposition with its conservation check, worker counters,
   and the slow-request ring. *)
let render_top v =
  let b = Buffer.create 1024 in
  let geti path = Option.value ~default:0 (Json.find_int v path) in
  let getf path = Option.value ~default:0.0 (Json.find_num v path) in
  let getb path = match Json.find v path with Some (Json.Bool x) -> x | _ -> false in
  Printf.bprintf b
    "eppi top — %d requests  gen %d  swaps %d  telemetry %s  trace %s (dropped %d)\n"
    (geti [ "requests" ]) (geti [ "generation" ]) (geti [ "swaps" ])
    (if getb [ "telemetry_enabled" ] then "on" else "off")
    (if getb [ "trace"; "enabled" ] then "on" else "off")
    (geti [ "trace"; "dropped" ]);
  Printf.bprintf b "\nwindow (last %.0fs)   count      rate      p50      p99\n"
    (getf [ "window"; "span_s" ]);
  List.iter
    (fun cls ->
      let path k = [ "window"; cls; k ] in
      let count = geti (path "count") in
      if count > 0 || cls = "query" then
        Printf.bprintf b "  %-11s %9d %7.1f/s %8s %8s\n" cls count
          (getf (path "rate"))
          (fmt_duration (getf (path "p50_s")))
          (fmt_duration (getf (path "p99_s"))))
    [ "query"; "batch"; "fuzzy"; "audit"; "republish"; "admin" ];
  Printf.bprintf b "\nstage           count       sum      mean      p50      p99\n";
  List.iter
    (fun st ->
      let path k = [ "stages"; st; k ] in
      Printf.bprintf b "  %-11s %7d %9s %9s %8s %8s\n" st (geti (path "count"))
        (fmt_duration (float_of_int (geti (path "sum_ns")) /. 1e9))
        (fmt_duration (getf (path "mean_s")))
        (fmt_duration (getf (path "p50_s")))
        (fmt_duration (getf (path "p99_s"))))
    [ "decode"; "dispatch"; "queue"; "execute"; "reorder"; "flush" ];
  let stage_sum = geti [ "conservation"; "stage_sum_ns" ] in
  let total = geti [ "conservation"; "total_ns" ] in
  Printf.bprintf b "  %-11s %7d %9s%s\n" "= total"
    (geti [ "stages"; "total"; "count" ])
    (fmt_duration (float_of_int total /. 1e9))
    (if getb [ "conservation"; "exact" ] then "  (conservation: exact)"
     else Printf.sprintf "  (conservation: off by %dns)" (total - stage_sum));
  (match Json.find v [ "workers" ] with
  | Some (Json.List (_ :: _ as ws)) ->
      Buffer.add_string b "\nworker   queue      busy    served\n";
      List.iter
        (fun w ->
          let g k = Option.value ~default:0 (Json.find_int w [ k ]) in
          Printf.bprintf b "  %-6d %5d %9s %9d\n" (g "id") (g "queue_depth")
            (fmt_duration (float_of_int (g "busy_us") /. 1e6))
            (g "served"))
        ws
  | _ -> ());
  (match Json.find v [ "slow" ] with
  | Some (Json.List (_ :: _ as ss)) ->
      Buffer.add_string b
        "\nslowest       total   decode dispatch    queue  execute  reorder    flush\n";
      List.iteri
        (fun i w ->
          if i < 8 then begin
            let g k = Option.value ~default:0 (Json.find_int w [ k ]) in
            let f k = fmt_duration (float_of_int (g k) /. 1e9) in
            Printf.bprintf b "  %-9s %7s %8s %8s %8s %8s %8s %8s\n"
              (Option.value ~default:"?" (Json.find_str w [ "kind" ]))
              (f "total_ns") (f "decode_ns") (f "dispatch_ns") (f "queue_ns") (f "execute_ns")
              (f "reorder_ns") (f "flush_ns")
          end)
        ss
  | _ -> ());
  Buffer.contents b

(* Probe one replica for the cluster top view: generation/swaps from
   Cluster_status plus lifetime query count and p99 from the stats
   snapshot, on one short-lived connection.  A dead replica is a row, not
   an error. *)
let probe_replica addr =
  match Eppi_net.Client.connect ~retries:0 ~request_timeout:5.0 addr with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | client -> (
      match
        Fun.protect
          ~finally:(fun () -> Eppi_net.Client.close client)
          (fun () -> (Eppi_net.Client.cluster_status client, Eppi_net.Client.stats_json client))
      with
      | probe -> Ok probe
      | exception Eppi_net.Client.Protocol_error msg -> Error msg
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

let render_cluster_top set =
  let probes =
    List.map (fun addr -> (addr, probe_replica addr)) (Eppi_cluster.Replica_set.addrs set)
  in
  let generations =
    List.map
      (function
        | _, Ok ((s : Eppi_net.Wire.cluster_status), _) -> Some s.generation | _, Error _ -> None)
      probes
  in
  let converged =
    match generations with
    | Some g :: rest when List.for_all (Option.equal Int.equal (Some g)) rest -> Some g
    | _ -> None
  in
  let b = Buffer.create 512 in
  Printf.bprintf b "eppi top — cluster of %d  %s\n\n" (List.length probes)
    (match converged with
    | Some g -> Printf.sprintf "converged at generation %d" g
    | None -> "NOT converged");
  Printf.bprintf b "replica                           gen  swaps   queries      p99\n";
  List.iter
    (fun (addr, probe) ->
      let name = Eppi_net.Addr.to_string addr in
      match probe with
      | Error msg -> Printf.bprintf b "  %-30s down: %s\n" name msg
      | Ok ((s : Eppi_net.Wire.cluster_status), stats_raw) ->
          let queries, p99 =
            match Json.parse stats_raw with
            | Ok v ->
                ( Option.value ~default:0 (Json.find_int v [ "queries" ]),
                  Option.value ~default:0.0 (Json.find_num v [ "p99" ]) )
            | Error _ -> (0, 0.0)
          in
          Printf.bprintf b "  %-30s %4d %6d %9d %8s\n" name s.generation s.swaps queries
            (fmt_duration p99))
    probes;
  Buffer.contents b

let cluster_top_json set =
  let b = Buffer.create 512 in
  Buffer.add_char b '[';
  List.iteri
    (fun i (addr, probe) ->
      if i > 0 then Buffer.add_string b ", ";
      let name = String.concat "\\\"" (String.split_on_char '"' (Eppi_net.Addr.to_string addr)) in
      match probe with
      | Error msg ->
          let msg = String.concat "\\\"" (String.split_on_char '"' msg) in
          Printf.bprintf b "{\"addr\": \"%s\", \"up\": false, \"error\": \"%s\"}" name msg
      | Ok ((s : Eppi_net.Wire.cluster_status), _) ->
          Printf.bprintf b
            "{\"addr\": \"%s\", \"up\": true, \"generation\": %d, \"swaps\": %d, \"peers\": %d}"
            name s.generation s.swaps (List.length s.peers))
    (List.map (fun addr -> (addr, probe_replica addr)) (Eppi_cluster.Replica_set.addrs set));
  Buffer.add_char b ']';
  Buffer.contents b

let top_cmd =
  let interval_arg =
    let doc = "Seconds between refreshes." in
    Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"SECS" ~doc)
  in
  let once_arg =
    let doc = "Render one snapshot and exit instead of refreshing." in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let json_arg =
    let doc = "Print the raw telemetry JSON once and exit — for scripting (implies $(b,--once))." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let iterations_arg =
    let doc = "Stop after $(docv) refreshes (0 = run until interrupted)." in
    Arg.(value & opt int 0 & info [ "iterations" ] ~docv:"N" ~doc)
  in
  let watch ~interval ~iterations one =
    (* Clear + home per refresh: a live top-style screen without a TUI
       dep.  Absolute-deadline cadence — probe time does not drift it. *)
    Eppi_prelude.Clock.periodic ~sleep:Unix.sleepf ~interval
      ?iterations:(if iterations <= 0 then None else Some iterations)
      (fun _tick ->
        print_string "\027[2J\027[H";
        one ();
        flush stdout;
        true)
  in
  let run addr interval once json iterations =
    let interval = if interval <= 0.0 then 1.0 else interval in
    if is_cluster addr then begin
      (* Replica set: one aggregated row per replica, probed per refresh
         over short-lived connections so a dead replica shows as "down"
         instead of wedging the screen. *)
      let set = replica_set_of_string ~what:"top" addr in
      let one () =
        if json then print_endline (cluster_top_json set)
        else print_string (render_cluster_top set)
      in
      if once || json then one () else watch ~interval ~iterations one
    end
    else
      with_client addr (fun client ->
          let one () =
            let raw = Eppi_net.Client.telemetry_json client in
            if json then print_endline raw
            else
              match Json.parse raw with
              | Error e ->
                  Printf.eprintf "top: unparseable reply: %s\n" e;
                  exit 1
              | Ok v -> print_string (render_top v)
          in
          if once || json then one () else watch ~interval ~iterations one)
  in
  let term =
    Term.(const run $ connect_required_arg $ interval_arg $ once_arg $ json_arg $ iterations_arg)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Watch a running daemon's live telemetry: rolling-window p50/p99/throughput per \
          request class, the decode/dispatch/queue/execute/reorder/flush stage decomposition \
          with its conservation check, per-worker queue depth and busy time, and the \
          slowest-request ring.  $(b,--json) dumps the raw snapshot for scripting.  With a \
          comma-separated replica set ($(b,--connect A,B,C)): one row per replica — \
          generation, swaps, query count, p99 — plus a convergence verdict")
    term

let shutdown_cmd =
  let run addr =
    with_client addr (fun client -> Eppi_net.Client.shutdown client);
    Printf.eprintf "daemon stopped\n"
  in
  let term = Term.(const run $ connect_required_arg) in
  Cmd.v (Cmd.info "shutdown" ~doc:"Gracefully stop a running daemon") term

(* ---- inspect ---- *)

let inspect_cmd =
  let run dataset_path =
    let dataset = Eppi_dataset.Dataset.of_csv (read_file dataset_path) in
    print_endline (Eppi_dataset.Dataset.stats_summary dataset)
  in
  let term = Term.(const run $ dataset_arg) in
  Cmd.v (Cmd.info "inspect" ~doc:"Print dataset statistics") term

let () =
  let doc = "e-PPI: locator service with personalized privacy preservation" in
  let info = Cmd.info "eppi" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd;
            construct_cmd;
            query_cmd;
            serve_cmd;
            republish_cmd;
            stats_cmd;
            top_cmd;
            shutdown_cmd;
            evaluate_cmd;
            attack_cmd;
            link_cmd;
            inspect_cmd;
          ]))
