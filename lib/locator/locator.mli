(** The record locator service — the application the paper builds ε-PPI for
    (Section I and II-A).

    Providers (hospitals) hold private records delegated by owners
    (patients); a third-party locator server hosts the published ε-PPI.  The
    four operations of the system model:

    - [delegate]: an owner hands a record to a provider together with her
      privacy degree ε;
    - [construct_ppi]: the network builds the index (here through the
      centralized reference constructor; the distributed protocol in
      lib/protocol produces a distribution-identical index);
    - [query_ppi]: phase one of a search — the obscured provider list;
    - [auth_search]: phase two — contact each listed provider, pass its
      access control, and search locally.

    The search-cost accounting (providers contacted, authorizations denied,
    wasted contacts at false-positive providers) backs the search-overhead
    experiment the paper defers to its technical report. *)

type record = {
  owner : int;
  body : string;
}

type t

val create : providers:int -> owners:int -> t
(** An empty network; owners default to ε = 0.5. *)

val provider_count : t -> int
val owner_count : t -> int

val delegate : t -> owner:int -> epsilon:float -> provider:int -> body:string -> unit
(** Store a record and (re)set the owner's privacy degree.  Indexes built
    before a delegation do not see it — call {!construct_ppi} again.
    @raise Invalid_argument on bad ids or ε outside [0, 1]. *)

val grant : t -> provider:int -> searcher:string -> owner:int -> unit
(** Authorize [searcher] to search [owner]'s records at [provider]. *)

val set_provider_sensitivity : t -> provider:int -> floor:float -> unit
(** Mark a provider as sensitive (the introduction's women's-health-center
    example): during publication every owner's bit at this provider flips
    with probability at least [floor], regardless of the owner's own ε —
    the provider-personalized extension of
    {!Eppi.Publish.publish_matrix_with_floors}.
    @raise Invalid_argument on a bad id or a floor outside [0, 1]. *)

val construct_ppi : ?seed:int -> t -> policy:Eppi.Policy.t -> unit
(** Build (or rebuild) the ε-PPI over the current delegations. *)

val epsilon_of : t -> owner:int -> float
val membership : t -> Eppi_prelude.Bitmatrix.t
(** The true owner-major membership matrix (test/analysis use — a real
    deployment never ships this). *)

val index : t -> Eppi.Index.t option
(** The published index, once constructed. *)

type query_error = No_index  (** ConstructPPI has not run yet. *)

val query_ppi_result : t -> owner:int -> (int list, query_error) result
(** QueryPPI with a typed failure — the variant the serving path consumes.
    @raise Invalid_argument on a bad owner id. *)

val serve_engine :
  ?config:Eppi_serve.Serve.config -> t -> (Eppi_serve.Serve.t, query_error) result
(** Compile the published index into an online serving engine
    ({!Eppi_serve.Serve}): the locator's QueryPPI at service scale. *)

type search_outcome = {
  records : (int * record list) list;  (** (provider, matching records). *)
  contacted : int;  (** Providers reached in phase two. *)
  denied : int;  (** Contacts rejected by access control. *)
  wasted : int;  (** Authorized contacts that held no matching record. *)
}

val auth_search : t -> searcher:string -> owner:int -> providers:int list -> search_outcome
(** Phase two against an explicit provider list. *)

val search : t -> searcher:string -> owner:int -> search_outcome
(** The full two-phase procedure: {!query_ppi_result} then {!auth_search}.
    Truthful publication guarantees every authorized true-positive provider
    is found (recall tested). *)
