open Eppi_prelude

type record = {
  owner : int;
  body : string;
}

type provider_state = {
  records : (int, record list) Hashtbl.t;  (* owner -> records *)
  grants : (string * int, unit) Hashtbl.t;  (* (searcher, owner) -> authorized *)
}

type t = {
  providers : provider_state array;
  owners : int;
  epsilons : float array;
  floors : float array;  (* per-provider sensitivity floor *)
  mutable index : Eppi.Index.t option;
}

let create ~providers ~owners =
  if providers <= 0 || owners <= 0 then invalid_arg "Locator.create: empty network";
  {
    providers =
      Array.init providers (fun _ ->
          { records = Hashtbl.create 8; grants = Hashtbl.create 8 });
    owners;
    epsilons = Array.make owners 0.5;
    floors = Array.make providers 0.0;
    index = None;
  }

let provider_count t = Array.length t.providers
let owner_count t = t.owners

let check_provider t p =
  if p < 0 || p >= provider_count t then invalid_arg "Locator: unknown provider"

let check_owner t o = if o < 0 || o >= t.owners then invalid_arg "Locator: unknown owner"

let delegate t ~owner ~epsilon ~provider ~body =
  check_provider t provider;
  check_owner t owner;
  if epsilon < 0.0 || epsilon > 1.0 then invalid_arg "Locator.delegate: epsilon out of [0, 1]";
  let state = t.providers.(provider) in
  let existing = Option.value ~default:[] (Hashtbl.find_opt state.records owner) in
  Hashtbl.replace state.records owner ({ owner; body } :: existing);
  t.epsilons.(owner) <- epsilon;
  (* Delegation implies the owner may search for her own records here. *)
  Hashtbl.replace state.grants (Printf.sprintf "owner:%d" owner, owner) ()

let grant t ~provider ~searcher ~owner =
  check_provider t provider;
  check_owner t owner;
  Hashtbl.replace t.providers.(provider).grants (searcher, owner) ()

let set_provider_sensitivity t ~provider ~floor =
  check_provider t provider;
  if floor < 0.0 || floor > 1.0 then
    invalid_arg "Locator.set_provider_sensitivity: floor out of [0, 1]";
  t.floors.(provider) <- floor

let membership t =
  let matrix = Bitmatrix.create ~rows:t.owners ~cols:(provider_count t) in
  Array.iteri
    (fun p state ->
      Hashtbl.iter (fun owner _ -> Bitmatrix.set matrix ~row:owner ~col:p true) state.records)
    t.providers;
  matrix

let construct_ppi ?(seed = 42) t ~policy =
  let rng = Rng.create seed in
  let provider_floors =
    if Array.exists (fun f -> f > 0.0) t.floors then Some t.floors else None
  in
  let result =
    Eppi.Construct.run ?provider_floors rng ~membership:(membership t) ~epsilons:t.epsilons
      ~policy
  in
  t.index <- Some result.index

let epsilon_of t ~owner =
  check_owner t owner;
  t.epsilons.(owner)

let index t = t.index

type query_error = No_index

let query_ppi_result t ~owner =
  check_owner t owner;
  match t.index with
  | None -> Error No_index
  | Some index -> Ok (Eppi.Index.query index ~owner)

let serve_engine ?config t =
  match t.index with
  | None -> Error No_index
  | Some index -> Ok (Eppi_serve.Serve.create ?config index)

type search_outcome = {
  records : (int * record list) list;
  contacted : int;
  denied : int;
  wasted : int;
}

let auth_search t ~searcher ~owner ~providers =
  check_owner t owner;
  let contacted = ref 0 and denied = ref 0 and wasted = ref 0 in
  let found = ref [] in
  List.iter
    (fun p ->
      check_provider t p;
      incr contacted;
      let state = t.providers.(p) in
      if not (Hashtbl.mem state.grants (searcher, owner)) then incr denied
      else begin
        match Hashtbl.find_opt state.records owner with
        | Some (_ :: _ as records) -> found := (p, List.rev records) :: !found
        | Some [] | None -> incr wasted
      end)
    providers;
  { records = List.rev !found; contacted = !contacted; denied = !denied; wasted = !wasted }

let search t ~searcher ~owner =
  match query_ppi_result t ~owner with
  | Ok providers -> auth_search t ~searcher ~owner ~providers
  | Error No_index -> failwith "Locator.search: no index constructed yet"
