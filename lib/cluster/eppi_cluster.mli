(** Replicated locator cluster: republish fan-out and client failover.

    The availability story of the ε-PPI locator is deliberately simple:
    the index is read-only between republishes, so N daemons serving the
    same generation are interchangeable and need no consensus protocol.
    Replication is therefore two independent halves:

    - {b coordinator side} ({!Fanout}): one process pushes the same
      {!Eppi_net.Index_codec} payload to every replica, retries transient
      failures per replica with jittered backoff, and reports partial
      success honestly — a dead replica does not block the others, it
      just shows up as [Error] in the report.  Convergence is checked
      observationally: after a fan-out round, every reachable replica's
      [Cluster_status] reports the same generation.
    - {b client side} ({!Client}): a thin wrapper over N
      {!Eppi_net.Client}s with per-endpoint health, a pluggable pick
      policy, and transparent failover — a window of pipelined queries
      whose replica dies mid-flight is re-issued in full on another
      replica (at-least-once, like single-client reconnect).

    Consistency caveat, stated rather than hidden: a replica's generation
    is a {e republish counter}, incremented once per applied swap — not a
    CAS-max of a coordinator-supplied value.  Convergence of the counter
    means every replica applied the same {e number} of rounds; with a
    single coordinator pushing the same payload each round (the supported
    topology) that implies identical content.  A retried round that was
    actually applied twice skews the counter without skewing content; two
    concurrent coordinators can disagree on content while agreeing on the
    counter.  Run one coordinator. *)

module Addr = Eppi_net.Addr
module Wire = Eppi_net.Wire

(** {1 Replica sets} *)

module Replica_set : sig
  type t
  (** A static, ordered, duplicate-free list of replica addresses.  Order
      matters: round-robin and tie-breaks follow it. *)

  val of_addrs : Addr.t list -> t
  (** @raise Invalid_argument on an empty list or a duplicate address. *)

  val parse : string -> (t, string) result
  (** Parse a comma-separated address list ([a.sock,host:9001,:9002]),
      trimming whitespace around each element.  Every element goes
      through {!Addr.parse}; the error message names the offending
      element. *)

  val of_string : string -> t
  (** {!parse}, raising [Invalid_argument] on rejection — for call sites
      that validated earlier. *)

  val addrs : t -> Addr.t list

  val size : t -> int

  val to_string : t -> string
  (** Canonical comma-separated form ({!parse}'s inverse up to
      whitespace and loopback spelling). *)
end

(** {1 Coordinator-side republish fan-out} *)

module Fanout : sig
  type replica_result = {
    addr : Addr.t;
    outcome : (int, string) result;
        (** [Ok generation] the replica installed; [Error message] after
            retries were exhausted or the replica rejected the payload. *)
    attempts : int;  (** Connect/send attempts made (>= 1). *)
    seconds : float;  (** Wall time spent on this replica, retries included. *)
  }

  type report = {
    results : replica_result list;  (** In replica-set order. *)
    succeeded : int;
    failed : int;
    generation : int option;
        (** The generation every successful replica reports, when they
            all agree; [None] on zero successes or disagreement (replicas
            that missed earlier rounds). *)
    wall_seconds : float;
        (** Whole-round wall time — the slowest replica, since replicas
            are pushed concurrently. *)
  }

  val republish :
    ?retries:int ->
    ?retry_delay:float ->
    ?request_timeout:float ->
    ?seed:int ->
    Replica_set.t ->
    Eppi.Index.t ->
    report
  (** Push [index] to every replica concurrently (one domain per
      replica), as a single {!Eppi_net.Index_codec} payload encoded once
      and shared.  Per replica: transient failures — connect refusal,
      timeout, connection loss — retry up to [retries] (default 3) more
      times with jittered exponential backoff starting at [retry_delay]
      (default 0.05 s, see {!Eppi_net.Client.backoff_delay}); a
      [Server_error] or a mis-typed reply is fatal immediately (retrying
      a rejected payload cannot help).  [request_timeout] (default 30 s)
      bounds each attempt.  [seed] makes the backoff jitter
      deterministic for tests.  Never raises on replica failure — that
      is what [report.failed] is for. *)

  val status :
    ?request_timeout:float ->
    Replica_set.t ->
    (Addr.t * (Wire.cluster_status, string) result) list
  (** One [Cluster_status] probe per replica, in set order; unreachable
      replicas report [Error] rather than raising. *)

  val converged : (Addr.t * (Wire.cluster_status, string) result) list -> int option
  (** [Some generation] when {e every} probed replica answered and all
      report that generation — the post-fan-out convergence check.
      [None] on any error or disagreement (or an empty list). *)
end

(** {1 Client-side failover} *)

module Client : sig
  type policy =
    | Round_robin  (** Rotate through healthy replicas per window. *)
    | Least_inflight
        (** Pick the healthy replica with the fewest unanswered
            requests; ties break to the lowest index. *)

  exception No_replica of string
  (** Every replica is down or cooling down — the cluster-level analogue
      of {!Eppi_net.Client.Connection_lost}. *)

  exception Stale_generation of { newest : int; got : int }
  (** Read-consistency guard: {!query} answered from a replica whose
      generation is behind the newest this client has ever observed —
      i.e. the reply could predate a republish the client already saw
      take effect elsewhere.  The lagging replica is put on a short
      cooldown; retrying the query lands on a fresher one. *)

  type t

  val create :
    ?policy:policy ->
    ?request_timeout:float ->
    ?cooldown:float ->
    ?seed:int ->
    Replica_set.t ->
    t
  (** Build a cluster client; connections are dialed lazily, per replica,
      on first use.  [policy] defaults to [Round_robin].
      [request_timeout] (default 30 s) bounds each request on the
      underlying clients.  A replica marked down is not retried until a
      jittered [cooldown] (default 1 s) elapses; [seed] makes the jitter
      deterministic. *)

  val select : policy -> rr:int -> (bool * int) array -> int option
  (** The pick function, exposed pure for table-driven tests:
      [slots.(i) = (selectable, inflight)].  [Round_robin] returns the
      first selectable index at or after [rr] (mod length);
      [Least_inflight] the selectable index with minimal inflight,
      lowest index on ties.  [None] when nothing is selectable. *)

  val pipeline : t -> Wire.request list -> Wire.response list
  (** Issue one window of pipelined requests on a replica chosen by the
      policy.  If the replica fails mid-window (connection loss, framing
      error), it is marked down and the {e whole window} is re-issued on
      another replica — at-least-once semantics, same contract as
      single-client reconnect.  Observes generations in the replies to
      advance the staleness floor, but never raises {!Stale_generation}
      itself (raw windows may legitimately mix replicas across calls).
      @raise No_replica when every replica has been tried and marked
      down. *)

  val query : t -> owner:int -> int * Eppi_serve.Serve.reply
  (** One QueryPPI with the read-consistency guard: @raise
      Stale_generation when the answering replica's generation is behind
      the newest observed.  @raise No_replica as {!pipeline}. *)

  type summary = {
    requests : int;
    served : int;
    unknown : int;
    shed : int;
    providers_listed : int;
    failovers : int;  (** Failovers that occurred during the replay. *)
    wall_seconds : float;
  }

  type stats = {
    dispatched : int array;  (** Per replica, replica-set order. *)
    answered : int array;
    failures : int array;  (** Times each replica was marked down. *)
    failovers : int;
        (** Windows that succeeded on a fallback replica after a
            detected failure. *)
    failover_seconds : float list;
        (** Failure-detection → first-success latency per failover,
            newest first. *)
    max_generation : int;  (** The staleness floor; -1 before any reply. *)
  }

  val stats : t -> stats

  val replay : ?depth:int -> t -> int array -> summary
  (** Drive a workload ({!Eppi_serve.Workload} array) through the
      cluster as windows of [depth] (default 32) pipelined queries —
      {!Eppi_net.Replay.run}, but failover-aware.  Conservation holds:
      [served + unknown + shed = requests].
      @raise No_replica when the whole cluster dies mid-replay. *)

  val close : t -> unit
  (** Close every underlying connection.  Idempotent. *)
end
