module Addr = Eppi_net.Addr
module Wire = Eppi_net.Wire
module Net_client = Eppi_net.Client
module Index_codec = Eppi_net.Index_codec
module Rng = Eppi_prelude.Rng
module Clock = Eppi_prelude.Clock

module Replica_set = struct
  type t = { members : Addr.t list }

  let of_addrs members =
    if members = [] then invalid_arg "Replica_set: empty replica set";
    let seen = Hashtbl.create 8 in
    List.iter
      (fun a ->
        let key = Addr.to_string a in
        if Hashtbl.mem seen key then
          invalid_arg (Printf.sprintf "Replica_set: duplicate replica %s" key);
        Hashtbl.add seen key ())
      members;
    { members }

  let parse s =
    let parts = String.split_on_char ',' s |> List.map String.trim in
    match
      List.map
        (fun part ->
          match Addr.parse part with
          | Ok a -> a
          | Error e ->
              failwith (Printf.sprintf "%s in %S" (Addr.parse_error_to_string e) part))
        parts
    with
    | members -> ( try Ok (of_addrs members) with Invalid_argument msg -> Error msg)
    | exception Failure msg -> Error msg

  let of_string s =
    match parse s with
    | Ok t -> t
    | Error msg -> invalid_arg (Printf.sprintf "Replica_set.of_string: %s" msg)

  let addrs t = t.members
  let size t = List.length t.members
  let to_string t = String.concat "," (List.map Addr.to_string t.members)
end

module Fanout = struct
  type replica_result = {
    addr : Addr.t;
    outcome : (int, string) result;
    attempts : int;
    seconds : float;
  }

  type report = {
    results : replica_result list;
    succeeded : int;
    failed : int;
    generation : int option;
    wall_seconds : float;
  }

  (* One republish attempt against one replica: connect fresh (no
     reconnect — retry policy lives here, where it can distinguish
     transient from fatal), push the shared payload, classify. *)
  let attempt_once ~request_timeout addr data =
    match Net_client.connect ~retries:0 ~reconnect:false ~request_timeout addr with
    | exception Unix.Unix_error (e, _, _) -> Error (`Transient (Unix.error_message e))
    | client -> (
        match
          Fun.protect
            ~finally:(fun () -> Net_client.close client)
            (fun () -> Net_client.call_result client (Wire.Republish_binary { data }))
        with
        | Ok (Wire.Republished { generation }) -> Ok generation
        | Ok (Wire.Server_error msg) -> Error (`Fatal ("server rejected republish: " ^ msg))
        | Ok _ -> Error (`Fatal "unexpected reply to republish")
        | Error Net_client.Timed_out -> Error (`Transient "request timed out")
        | Error (Net_client.Connection_lost msg) -> Error (`Transient ("connection lost: " ^ msg))
        | exception Net_client.Protocol_error msg -> Error (`Transient msg)
        | exception Unix.Unix_error (e, _, _) -> Error (`Transient (Unix.error_message e)))

  let push_replica ~retries ~retry_delay ~request_timeout ~rng addr data =
    let t0 = Clock.seconds () in
    let finish outcome attempts =
      { addr; outcome; attempts; seconds = Clock.seconds () -. t0 }
    in
    let rec go k =
      match attempt_once ~request_timeout addr data with
      | Ok generation -> finish (Ok generation) k
      | Error (`Fatal msg) -> finish (Error msg) k
      | Error (`Transient msg) ->
          if k > retries then finish (Error msg) k
          else begin
            Unix.sleepf
              (Net_client.backoff_delay ~base:retry_delay ~attempt:k ~u:(Rng.float rng 1.0));
            go (k + 1)
          end
    in
    go 1

  let republish ?(retries = 3) ?(retry_delay = 0.05) ?(request_timeout = 30.0) ?(seed = 0x5e7)
      set index =
    if retries < 0 then invalid_arg "Fanout.republish: negative retries";
    let data = Index_codec.encode index in
    let t0 = Clock.seconds () in
    let rng = Rng.create seed in
    (* One domain per replica; each carries its own split of the jitter
       stream, so the fan-out is concurrent yet deterministic under a
       fixed seed. *)
    let domains =
      List.map
        (fun addr ->
          let rng = Rng.split rng in
          Domain.spawn (fun () ->
              push_replica ~retries ~retry_delay ~request_timeout ~rng addr data))
        (Replica_set.addrs set)
    in
    let results = List.map Domain.join domains in
    let succeeded = List.length (List.filter (fun r -> Result.is_ok r.outcome) results) in
    let generation =
      match List.filter_map (fun r -> Result.to_option r.outcome) results with
      | [] -> None
      | g :: rest -> if List.for_all (Int.equal g) rest then Some g else None
    in
    {
      results;
      succeeded;
      failed = List.length results - succeeded;
      generation;
      wall_seconds = Clock.seconds () -. t0;
    }

  let status ?(request_timeout = 30.0) set =
    List.map
      (fun addr ->
        let probe () =
          match Net_client.connect ~retries:0 ~reconnect:false ~request_timeout addr with
          | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
          | client -> (
              match
                Fun.protect
                  ~finally:(fun () -> Net_client.close client)
                  (fun () -> Net_client.cluster_status client)
              with
              | status -> Ok status
              | exception Net_client.Protocol_error msg -> Error msg
              | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
        in
        (addr, probe ()))
      (Replica_set.addrs set)

  let converged statuses =
    match statuses with
    | [] -> None
    | _ -> (
        match
          List.map
            (function
              | _, Ok (s : Wire.cluster_status) -> Some s.generation
              | _, Error _ -> None)
            statuses
        with
        | Some g :: rest when List.for_all (Option.equal Int.equal (Some g)) rest -> Some g
        | _ -> None)
end

module Client = struct
  type policy = Round_robin | Least_inflight

  exception No_replica of string
  exception Stale_generation of { newest : int; got : int }

  type endpoint = {
    e_addr : Addr.t;
    mutable conn : Net_client.t option;
    mutable healthy : bool;
    mutable down_until : float;  (* monotonic seconds; cooldown gate when unhealthy *)
    mutable dispatched : int;
    mutable answered : int;
    mutable failures : int;
  }

  type t = {
    endpoints : endpoint array;
    policy : policy;
    request_timeout : float;
    cooldown : float;
    rng : Rng.t;
    mutable rr : int;
    mutable failovers : int;
    mutable failover_seconds : float list;
    mutable max_generation : int;
    mutable fail_start : float option;  (* set at outage detection, cleared at first success *)
  }

  let create ?(policy = Round_robin) ?(request_timeout = 30.0) ?(cooldown = 1.0) ?(seed = 0xc1)
      set =
    if cooldown < 0.0 then invalid_arg "Cluster.Client: negative cooldown";
    let endpoints =
      Replica_set.addrs set
      |> List.map (fun e_addr ->
             {
               e_addr;
               conn = None;
               healthy = true;
               down_until = 0.0;
               dispatched = 0;
               answered = 0;
               failures = 0;
             })
      |> Array.of_list
    in
    {
      endpoints;
      policy;
      request_timeout;
      cooldown;
      rng = Rng.create seed;
      rr = 0;
      failovers = 0;
      failover_seconds = [];
      max_generation = -1;
      fail_start = None;
    }

  let select policy ~rr slots =
    let n = Array.length slots in
    if n = 0 then None
    else
      match policy with
      | Round_robin ->
          let rec go k =
            if k >= n then None
            else
              let i = (((rr mod n) + n) mod n + k) mod n in
              if fst slots.(i) then Some i else go (k + 1)
          in
          go 0
      | Least_inflight ->
          let best = ref None in
          Array.iteri
            (fun i (ok, inflight) ->
              if ok then
                match !best with
                | None -> best := Some i
                | Some j -> if inflight < snd slots.(j) then best := Some i)
            slots;
          !best

  let inflight e = e.dispatched - e.answered
  let selectable e now = e.healthy || now >= e.down_until

  let close_conn e =
    (match e.conn with
    | Some c -> ( try Net_client.close c with _ -> ())
    | None -> ());
    e.conn <- None

  let mark_down t e now =
    close_conn e;
    e.healthy <- false;
    e.failures <- e.failures + 1;
    (* The dead socket's unanswered requests are being re-issued elsewhere;
       they no longer count against this endpoint's load. *)
    e.answered <- e.dispatched;
    e.down_until <- now +. (t.cooldown *. (0.5 +. (0.5 *. Rng.float t.rng 1.0)));
    if t.fail_start = None then t.fail_start <- Some now

  let ensure_conn t e =
    match e.conn with
    | Some c -> c
    | None ->
        let c =
          Net_client.connect ~retries:0 ~reconnect:false ~request_timeout:t.request_timeout
            e.e_addr
        in
        e.conn <- Some c;
        c

  let observe_generation t (response : Wire.response) =
    let g =
      match response with
      | Reply { generation; _ }
      | Batch_reply { generation; _ }
      | Audit_reply { generation; _ }
      | Republished { generation }
      | Fuzzy_reply { generation; _ }
      | Cluster_status_reply { generation; _ } ->
          generation
      | Stats_json _ | Pong | Shutting_down | Server_error _ | Telemetry_json _ -> -1
    in
    if g > t.max_generation then t.max_generation <- g

  (* Issue one window, failing over until it lands or every endpoint has
     been tried this call.  Returns the answering endpoint's index so the
     typed wrappers can penalize a stale replica. *)
  let issue t requests =
    let count = List.length requests in
    let rec try_next excluded =
      let now = Clock.seconds () in
      let slots =
        Array.map
          (fun e -> ((not (List.memq e excluded)) && selectable e now, inflight e))
          t.endpoints
      in
      match select t.policy ~rr:t.rr slots with
      | None -> raise (No_replica "every replica is down or cooling down")
      | Some i -> (
          t.rr <- i + 1;
          let e = t.endpoints.(i) in
          match
            let c = ensure_conn t e in
            e.dispatched <- e.dispatched + count;
            let responses = Net_client.pipeline c requests in
            e.answered <- e.answered + count;
            responses
          with
          | responses ->
              e.healthy <- true;
              (match t.fail_start with
              | Some t_fail ->
                  t.failovers <- t.failovers + 1;
                  t.failover_seconds <- (Clock.seconds () -. t_fail) :: t.failover_seconds;
                  t.fail_start <- None
              | None -> ());
              List.iter (observe_generation t) responses;
              (i, responses)
          | exception (Net_client.Protocol_error _ | Unix.Unix_error _) ->
              mark_down t e (Clock.seconds ());
              try_next (e :: excluded))
    in
    try_next []

  let pipeline t requests = snd (issue t requests)

  let query t ~owner =
    let i, responses = issue t [ Wire.Query { owner } ] in
    match responses with
    | [ Wire.Reply { generation; reply } ] ->
        if generation < t.max_generation then begin
          (* Penalize the laggard: cool it down (connection kept — the
             replica is alive, just behind) so the retry lands fresher. *)
          let e = t.endpoints.(i) in
          e.healthy <- false;
          e.down_until <- Clock.seconds () +. (t.cooldown *. (0.5 +. (0.5 *. Rng.float t.rng 1.0)));
          raise (Stale_generation { newest = t.max_generation; got = generation })
        end;
        (generation, reply)
    | [ other ] -> Net_client.unexpected "query" other
    | _ -> raise (Net_client.Protocol_error "cluster query: response count mismatch")

  type summary = {
    requests : int;
    served : int;
    unknown : int;
    shed : int;
    providers_listed : int;
    failovers : int;
    wall_seconds : float;
  }

  type stats = {
    dispatched : int array;
    answered : int array;
    failures : int array;
    failovers : int;
    failover_seconds : float list;
    max_generation : int;
  }

  let stats t =
    {
      dispatched = Array.map (fun (e : endpoint) -> e.dispatched) t.endpoints;
      answered = Array.map (fun (e : endpoint) -> e.answered) t.endpoints;
      failures = Array.map (fun (e : endpoint) -> e.failures) t.endpoints;
      failovers = t.failovers;
      failover_seconds = t.failover_seconds;
      max_generation = t.max_generation;
    }

  let replay ?(depth = 32) (t : t) workload =
    if depth < 1 then invalid_arg "Cluster.replay: non-positive depth";
    let t0 = Clock.seconds () in
    let failovers0 = t.failovers in
    let requests = Array.length workload in
    let served = ref 0 and unknown = ref 0 and shed = ref 0 and providers = ref 0 in
    let pos = ref 0 in
    while !pos < requests do
      let window = min depth (requests - !pos) in
      let batch =
        List.init window (fun k -> Wire.Query { owner = workload.(!pos + k) })
      in
      List.iter
        (fun response ->
          match (response : Wire.response) with
          | Reply { reply = Providers ps; _ } ->
              incr served;
              providers := !providers + List.length ps
          | Reply { reply = Unknown_owner; _ } -> incr unknown
          | Reply { reply = Shed_rate_limit | Shed_queue_full; _ } -> incr shed
          | other -> Net_client.unexpected "replay query" other)
        (pipeline t batch);
      pos := !pos + window
    done;
    {
      requests;
      served = !served;
      unknown = !unknown;
      shed = !shed;
      providers_listed = !providers;
      failovers = t.failovers - failovers0;
      wall_seconds = Clock.seconds () -. t0;
    }

  let close t = Array.iter close_conn t.endpoints
end
