open Eppi_prelude
open Eppi_linkage

type config = {
  params : Bloom.params;
  match_threshold : float;
  min_scan : int;
}

let default_config ~seed =
  { params = Bloom.keyed ~seed (); match_threshold = 0.6; min_scan = 64 }

type t = {
  config : config;
  signatures : Probe.t array;
  buckets : (int, int list) Hashtbl.t;
}

let build config roster =
  if config.match_threshold < 0.0 || config.match_threshold > 1.0 then
    invalid_arg "Resolver.build: threshold out of [0, 1]";
  if config.min_scan < 0 then invalid_arg "Resolver.build: negative padding floor";
  if config.params.bits <= 0 || config.params.hashes <= 0 then
    invalid_arg "Resolver.build: bad filter parameters";
  let signatures = Array.map (Probe.of_demographic config.params) roster in
  let buckets = Hashtbl.create (max 16 (2 * Array.length roster)) in
  Array.iteri
    (fun owner (s : Probe.t) ->
      Array.iter
        (fun key ->
          let members = Option.value ~default:[] (Hashtbl.find_opt buckets key) in
          Hashtbl.replace buckets key (owner :: members))
        s.keys)
    signatures;
  { config; signatures; buckets }

let config t = t.config
let entries t = Array.length t.signatures

let compatible t (p : Probe.t) =
  p.bits = t.config.params.bits && p.hashes = t.config.params.hashes

let dice a b =
  let ca = Bitvec.count a and cb = Bitvec.count b in
  if ca = 0 && cb = 0 then 1.0
  else 2.0 *. float_of_int (Bitvec.count (Bitvec.inter a b)) /. float_of_int (ca + cb)

(* Field weights mirror Linkage.field_score with gender dropped (it is
   not encoded) and its share redistributed: names 50%, dob 30%, zip 20%.
   Weights renormalize over the probe's non-empty filters so a partial
   probe is scored on what it actually states. *)
let weights = [| 0.25; 0.25; 0.30; 0.20 |]

let fields (p : Probe.t) = [| p.first; p.last; p.dob; p.zip |]

let score probe signature =
  let pf = fields probe and sf = fields signature in
  let acc = ref 0.0 and total = ref 0.0 in
  Array.iteri
    (fun i f ->
      if Bitvec.count f > 0 then begin
        total := !total +. weights.(i);
        acc := !acc +. (weights.(i) *. dice f sf.(i))
      end)
    pf;
  if !total = 0.0 then 0.0
  else
    (* Quantize to 1e-4 so the score survives the wire's basis-point
       encoding bit-exactly. *)
    Float.round (!acc /. !total *. 10000.) /. 10000.

type resolved = {
  owner : int;
  score : float;
}

type outcome = {
  candidates : resolved list;
  scanned : int;
  buckets_hit : int;
}

let resolve t (probe : Probe.t) ~k =
  if k <= 0 then invalid_arg "Resolver.resolve: k must be positive";
  if not (compatible t probe) then invalid_arg "Resolver.resolve: incompatible probe geometry";
  let n = Array.length t.signatures in
  if n = 0 then { candidates = []; scanned = 0; buckets_hit = 0 }
  else begin
    let seen = Bytes.make n '\000' in
    let members = ref [] and count = ref 0 and buckets_hit = ref 0 in
    let add owner =
      if owner >= 0 && owner < n && Bytes.get seen owner = '\000' then begin
        Bytes.set seen owner '\001';
        members := owner :: !members;
        incr count
      end
    in
    Array.iter
      (fun key ->
        match Hashtbl.find_opt t.buckets key with
        | Some owners ->
            incr buckets_hit;
            List.iter add owners
        | None -> ())
      probe.keys;
    (* Candidate-set padding: always score at least [min_scan] signatures,
       topping the bucket harvest up with decoys drawn deterministically
       from the probe hash, so scan size (and its timing) does not reveal
       how rare the probed name is. *)
    let target = min t.config.min_scan n in
    if !count < target then begin
      let rng = Rng.create (Probe.routing_hash probe) in
      while !count < target do
        add (Rng.int rng n)
      done
    end;
    let scored =
      List.filter_map
        (fun owner ->
          let s = score probe t.signatures.(owner) in
          if s >= t.config.match_threshold then Some { owner; score = s } else None)
        !members
    in
    let sorted =
      List.sort
        (fun a b -> if a.score <> b.score then compare b.score a.score else compare a.owner b.owner)
        scored
    in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: tl -> x :: take (k - 1) tl
    in
    { candidates = take k sorted; scanned = !count; buckets_hit = !buckets_hit }
  end
