(** The demographic roster the daemon compiles its resolver from: one
    canonical record per owner id (array index = owner id = index row).

    The CSV form is what [eppi generate --roster] writes and
    [eppi serve --roster] reads:
    {v
    owner,first,last,dob,zip,gender
    0,james,smith,1943-06-12,12345,f
    v}
    Owner ids must be the sequential row positions — the roster is a
    dense owner-indexed table, not a sparse mapping. *)

open Eppi_linkage

val generate : Eppi_prelude.Rng.t -> n:int -> Demographic.t array
(** [n] random persons (deterministic in the rng), owner id = index. *)

val to_csv : Demographic.t array -> string

val of_csv : string -> Demographic.t array
(** @raise Failure on malformed input: wrong field count, non-sequential
    owner ids, an unparsable date of birth, or an unknown gender code. *)
