open Eppi_linkage

let generate rng ~n =
  if n < 0 then invalid_arg "Roster.generate: negative size";
  let people = ref [] in
  for _ = 1 to n do
    people := Demographic.random_person rng :: !people
  done;
  Array.of_list (List.rev !people)

let gender_code = function
  | Demographic.Female -> "f"
  | Demographic.Male -> "m"
  | Demographic.Other -> "o"

let header = "owner,first,last,dob,zip,gender"

let to_csv roster =
  let b = Buffer.create (32 + (Array.length roster * 40)) in
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  Array.iteri
    (fun owner (r : Demographic.t) ->
      let y, m, d = r.dob in
      Buffer.add_string b
        (Printf.sprintf "%d,%s,%s,%04d-%02d-%02d,%s,%s\n" owner r.first r.last y m d r.zip
           (gender_code r.gender)))
    roster;
  Buffer.contents b

let fail lineno what = failwith (Printf.sprintf "Roster: line %d: %s" lineno what)

let parse_dob lineno s =
  match String.split_on_char '-' s with
  | [ y; m; d ] -> (
      match (int_of_string_opt y, int_of_string_opt m, int_of_string_opt d) with
      | Some y, Some m, Some d
        when y >= 0 && y <= 9999 && m >= 0 && m <= 12 && d >= 0 && d <= 31 ->
          (y, m, d)
      | _ -> fail lineno (Printf.sprintf "bad date of birth %S" s))
  | _ -> fail lineno (Printf.sprintf "bad date of birth %S" s)

let parse_gender lineno = function
  | "f" -> Demographic.Female
  | "m" -> Demographic.Male
  | "o" -> Demographic.Other
  | g -> fail lineno (Printf.sprintf "unknown gender code %S" g)

let of_csv text =
  let rows = ref [] in
  let expected = ref 0 in
  let lineno = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun raw ->
         incr lineno;
         let line = String.trim raw in
         if line <> "" && line <> header then
           match String.split_on_char ',' line with
           | [ owner; first; last; dob; zip; gender ] ->
               (match int_of_string_opt (String.trim owner) with
               | Some o when o = !expected -> ()
               | Some o -> fail !lineno (Printf.sprintf "owner %d, expected %d" o !expected)
               | None -> fail !lineno (Printf.sprintf "bad owner id %S" owner));
               incr expected;
               rows :=
                 {
                   Demographic.first = String.trim first;
                   last = String.trim last;
                   dob = parse_dob !lineno (String.trim dob);
                   zip = String.trim zip;
                   gender = parse_gender !lineno (String.trim gender);
                 }
                 :: !rows
           | fields ->
               fail !lineno (Printf.sprintf "%d fields, expected 6" (List.length fields)));
  Array.of_list (List.rev !rows)
