(** A keyed, Bloom-encoded demographic probe — the only form in which a
    fuzzy query ever leaves the client.

    The probe carries four per-field Bloom filters (bigram encodings of
    first name, last name, date of birth and ZIP) plus keyed blocking
    hashes derived from the Soundex of the last name and the birth year —
    the same blocking keys {!Eppi_linkage.Linkage} uses offline.  All
    hashing is keyed by the linkage secret ([params.seed]); the secret
    itself never appears in the probe, only the filter geometry
    ([bits], [hashes]) does, so a wire capture cannot be dictionary-tested
    without the seed.  See docs/FUZZY.md for the full privacy argument.

    Empty fields (an empty name or ZIP, a [(0, 0, 0)] date of birth)
    encode as empty filters and contribute no blocking key; the resolver
    renormalizes its field weights over the non-empty filters, so partial
    probes degrade gracefully instead of dragging every score down. *)

open Eppi_prelude

type t = {
  keys : int array;  (** Keyed blocking hashes (32-bit), possibly empty. *)
  bits : int;  (** Filter geometry shared by the four fields. *)
  hashes : int;
  first : Bitvec.t;
  last : Bitvec.t;
  dob : Bitvec.t;
  zip : Bitvec.t;
}

val of_demographic : Eppi_linkage.Bloom.params -> Eppi_linkage.Demographic.t -> t
(** Encode a (possibly partial) demographic record under the given keyed
    parameters.  Gender is deliberately not encoded — it is too coarse to
    help resolution and would leak a protected attribute.
    @raise Invalid_argument on non-positive [bits] or [hashes]. *)

val keyed_hash : int -> string -> int
(** [keyed_hash seed s]: the 32-bit blocking-key hash of [s] under the
    linkage secret [seed] (exposed for the resolver's bucket builder). *)

val dob_string : int * int * int -> string
(** ["yyyymmdd"], or [""] for the unknown date [(0, 0, 0)]. *)

val routing_hash : t -> int
(** Deterministic non-negative hash of the probe used to pick the shard
    (and hence worker domain) a fuzzy request is pinned to.  A pure
    function of the probe's keys and filters, so the client, the daemon
    mux and the engine all agree. *)
