open Eppi_prelude
open Eppi_linkage

type t = {
  keys : int array;
  bits : int;
  hashes : int;
  first : Bitvec.t;
  last : Bitvec.t;
  dob : Bitvec.t;
  zip : Bitvec.t;
}

(* Same (seed, string) -> splitmix derivation as Bloom.positions, folded
   to 32 bits so a key costs at most five varint bytes on the wire.
   Collisions only merge blocking buckets (extra candidates to score),
   never lose one. *)
let keyed_hash seed s =
  let h = ref (Int64.of_int seed) in
  String.iter (fun c -> h := Int64.add (Int64.mul !h 131L) (Int64.of_int (Char.code c))) s;
  Int64.to_int (Rng.bits64 (Rng.create (Int64.to_int !h))) land 0xFFFF_FFFF

let dob_string (y, m, d) =
  if y = 0 && m = 0 && d = 0 then "" else Printf.sprintf "%04d%02d%02d" y m d

let filter (params : Bloom.params) field =
  if field = "" then Bitvec.create params.bits
  else Bloom.to_bitvec (Bloom.encode params field)

(* Soundex-of-last-name and birth-year buckets, mirroring Linkage's
   offline blocking; either key alone recovers a candidate, so one
   corrupted field does not lose the match. *)
let blocking_keys (params : Bloom.params) (r : Demographic.t) =
  let keys = ref [] in
  let y, _, _ = r.dob in
  if y > 0 then keys := keyed_hash params.seed ("y:" ^ string_of_int y) :: !keys;
  if r.last <> "" then keys := keyed_hash params.seed ("s:" ^ Text.soundex r.last) :: !keys;
  Array.of_list !keys

let of_demographic (params : Bloom.params) (r : Demographic.t) =
  if params.bits <= 0 || params.hashes <= 0 then
    invalid_arg "Probe.of_demographic: bad parameters";
  {
    keys = blocking_keys params r;
    bits = params.bits;
    hashes = params.hashes;
    first = filter params r.first;
    last = filter params r.last;
    dob = filter params (dob_string r.dob);
    zip = filter params r.zip;
  }

let routing_hash t =
  let mix acc v = ((acc * 1_000_003) lxor v) land max_int in
  let h = Array.fold_left mix t.bits t.keys in
  (* Fold a filter fingerprint in so keyless probes still spread. *)
  let h = mix h (Bitvec.count t.first lsl 12) in
  let h = mix h (Bitvec.count t.dob lsl 6) in
  mix h (Bitvec.count t.zip)
