(** The online approximate-identity resolver: blocking buckets over
    Bloom-encoded demographic signatures, compiled from a roster and
    published alongside the postings store.

    Resolution is a bucket scan: the probe's blocking keys select
    candidate owners (union over keys, so one corrupted field does not
    lose the match), the candidate set is padded to [min_scan] with
    deterministic decoys, every candidate signature is Dice-scored
    against the probe, and the top-[k] candidates at or above
    [match_threshold] come back in descending score order.

    The structure is immutable after {!build} and safe to read from any
    domain; the serving engine swaps it atomically with the postings on
    republish. *)

open Eppi_linkage

type config = {
  params : Bloom.params;
      (** Keyed filter parameters — [params.seed] is the linkage secret
          shared between daemon and clients ({!Bloom.keyed}); probes built
          under a different secret score as noise and resolve nothing. *)
  match_threshold : float;  (** Minimum score a candidate must reach. *)
  min_scan : int;
      (** Candidate-set padding floor: every resolve scores at least this
          many signatures (decoys drawn deterministically from the probe
          hash), so scan size does not reveal how common the probed name
          is.  See docs/FUZZY.md. *)
}

val default_config : seed:int -> config
(** 256-bit 4-hash filters under the given secret, threshold 0.6,
    padding floor 64. *)

type t

val build : config -> Demographic.t array -> t
(** Compile the roster (owner id = array index) into signatures and
    blocking buckets.  @raise Invalid_argument on a threshold outside
    [0, 1], a negative padding floor, or bad filter parameters. *)

val config : t -> config
val entries : t -> int

val compatible : t -> Probe.t -> bool
(** Whether the probe's filter geometry matches the resolver's — scoring
    filters built under different [bits]/[hashes] would be meaningless. *)

type resolved = {
  owner : int;
  score : float;  (** Weighted Dice in [0, 1], quantized to 1e-4. *)
}

type outcome = {
  candidates : resolved list;  (** Top-k, descending score, owner asc on ties. *)
  scanned : int;  (** Signatures scored, padding included. *)
  buckets_hit : int;  (** Blocking buckets that existed for the probe's keys. *)
}

val resolve : t -> Probe.t -> k:int -> outcome
(** @raise Invalid_argument on [k <= 0] or an incompatible probe (callers
    on a network path must check {!compatible} first and answer a typed
    error instead). *)
