open Eppi_prelude

type params = {
  bits : int;
  hashes : int;
  seed : int;
}

let default_params = { bits = 128; hashes = 4; seed = 7 }
let keyed ~seed ?(bits = 256) ?(hashes = 4) () = { bits; hashes; seed }

type t = { params : params; filter : Bitvec.t }

(* Keyed positions for a bigram: derive [hashes] indexes from a splitmix
   stream seeded by (seed, bigram). *)
let positions params gram =
  let h = ref (Int64.of_int params.seed) in
  String.iter (fun c -> h := Int64.add (Int64.mul !h 131L) (Int64.of_int (Char.code c))) gram;
  let rng = Rng.create (Int64.to_int !h) in
  List.init params.hashes (fun _ -> Rng.int rng params.bits)

let encode params field =
  if params.bits <= 0 || params.hashes <= 0 then invalid_arg "Bloom.encode: bad parameters";
  let filter = Bitvec.create params.bits in
  List.iter (fun gram -> List.iter (Bitvec.set filter) (positions params gram)) (Text.bigrams field);
  { params; filter }

let dice a b =
  if a.params <> b.params then invalid_arg "Bloom.dice: incompatible parameters";
  let ca = Bitvec.count a.filter and cb = Bitvec.count b.filter in
  if ca = 0 && cb = 0 then 1.0
  else begin
    let common = Bitvec.count (Bitvec.inter a.filter b.filter) in
    2.0 *. float_of_int common /. float_of_int (ca + cb)
  end

let bit_count t = Bitvec.count t.filter
let to_bitvec t = Bitvec.copy t.filter
