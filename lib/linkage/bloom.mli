(** Bloom-filter field encodings for privacy-preserving record linkage.

    The technique behind the PRL systems the paper cites ([40], [41], via
    Schnell et al.): a provider encodes each demographic field as a Bloom
    filter of its character bigrams and shares only the filter.  The Dice
    coefficient of two filters approximates the Dice coefficient of the
    underlying bigram sets, so match scores can be computed without
    exchanging plaintext demographics; the filter hides the field value
    (many preimages per filter), though it is famously not
    information-theoretically private — which is exactly why the cited
    works combine it with hardening.  We implement the standard scheme with
    [k] seeded hash functions over [bits] positions. *)

type params = {
  bits : int;  (** Filter length (e.g. 128). *)
  hashes : int;  (** k (e.g. 4). *)
  seed : int;  (** Shared keyed-hash seed (the linkage secret). *)
}

val default_params : params
(** 128 bits, 4 hashes, seed 7.  The fixed well-known seed is fine for
    offline experiments and tests, where both sides are the same process
    — it must never key filters that cross a trust boundary.  Anything on
    a network path (the fuzzy-resolution daemon and its clients) takes
    the linkage secret explicitly: build parameters with {!keyed} and a
    seed supplied at configuration time (CLI [--linkage-seed]). *)

val keyed : seed:int -> ?bits:int -> ?hashes:int -> unit -> params
(** Serving-grade parameters under an explicit linkage secret: 256 bits
    and 4 hashes unless overridden.  There is deliberately no default for
    [seed]. *)

type t

val encode : params -> string -> t
(** Encode a field's bigrams. *)

val dice : t -> t -> float
(** Dice coefficient of the set bits, in [0, 1]; 1.0 for two empty
    filters.  @raise Invalid_argument on incompatible parameters. *)

val bit_count : t -> int
val to_bitvec : t -> Eppi_prelude.Bitvec.t
