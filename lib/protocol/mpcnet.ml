open Eppi_prelude
open Eppi_circuit
module Simnet = Eppi_simnet.Simnet
module Cost = Eppi_mpc.Cost

type msg =
  | Opens of { layer : int; ds : bool array; es : bool array }
  | Outs of bool array

type result = {
  outputs : bool array;
  rounds : int;
  net : Simnet.metrics;
}

(* XOR-share a bit among p parties. *)
let share_bit rng ~p v =
  let shares = Array.init p (fun i -> if i < p - 1 then Rng.bool rng else false) in
  let parity = Array.fold_left ( <> ) false shares in
  shares.(p - 1) <- parity <> v;
  shares

let bits_size n = (n + 7) / 8

(* --- Dealer phase (offline): input shares and Beaver triples.  Shared by
   both engines; the rng draw order here is load-bearing (bit-identical
   outputs across transports depend on it). --- *)
let deal rng circuit ~inputs ~p =
  let gates = Circuit.gates circuit in
  let n_wires = Array.length gates in
  let input_shares = Array.init p (fun _ -> Array.make n_wires false) in
  let sa = Array.init p (fun _ -> Array.make n_wires false) in
  let sb = Array.init p (fun _ -> Array.make n_wires false) in
  let sc = Array.init p (fun _ -> Array.make n_wires false) in
  Array.iteri
    (fun w gate ->
      match gate with
      | Circuit.Input { party; index } ->
          if party >= Array.length inputs || index >= Array.length inputs.(party) then
            invalid_arg "Mpcnet.execute: missing input bit";
          let shares = share_bit rng ~p inputs.(party).(index) in
          Array.iteri (fun i s -> input_shares.(i).(w) <- s) shares
      | And _ ->
          let ta = Rng.bool rng and tb = Rng.bool rng in
          let dealt_a = share_bit rng ~p ta in
          let dealt_b = share_bit rng ~p tb in
          let dealt_c = share_bit rng ~p (ta && tb) in
          for i = 0 to p - 1 do
            sa.(i).(w) <- dealt_a.(i);
            sb.(i).(w) <- dealt_b.(i);
            sc.(i).(w) <- dealt_c.(i)
          done
      | Const _ | Not _ | Xor _ -> ())
    gates;
  (input_shares, sa, sb, sc)

let execute ?config rng circuit ~inputs =
  let p = Circuit.num_parties circuit in
  if p < 2 then invalid_arg "Mpcnet.execute: need at least 2 parties";
  let gates = Circuit.gates circuit in
  let n_wires = Array.length gates in
  let layers = Circuit.and_layers circuit in
  let n_layers = Array.length layers in
  let outputs_w = Circuit.outputs circuit in
  let input_shares, sa, sb, sc = deal rng circuit ~inputs ~p in
  (* --- Online phase over the network. --- *)
  let net = Simnet.create ?config ~nodes:p () in
  let shares = Array.init p (fun _ -> Array.make n_wires false) in
  let computed = Array.init p (fun _ -> Array.make n_wires false) in
  (* Opened d/e values, agreed by all parties once a layer completes; they
     are public, so a single global table is faithful. *)
  let opened_d = Array.make n_wires false in
  let opened_e = Array.make n_wires false in
  (* Per-party, per-layer accumulators. *)
  let d_acc = Array.init p (fun _ -> Array.map (fun ws -> Array.make (Array.length ws) false) layers) in
  let e_acc = Array.init p (fun _ -> Array.map (fun ws -> Array.make (Array.length ws) false) layers) in
  let opens_count = Array.make_matrix p n_layers 0 in
  let out_acc = Array.init p (fun _ -> Array.make (Array.length outputs_w) false) in
  let outs_count = Array.make p 0 in
  let final_outputs = ref None in
  let rounds = ref (if n_layers = 0 then 1 else n_layers + 1) in
  let params = Cost.default_params in
  (* Memoized local evaluation: And wires must already be finalized. *)
  let rec eval i w =
    if not computed.(i).(w) then begin
      (match gates.(w) with
      | Circuit.Input _ -> shares.(i).(w) <- input_shares.(i).(w)
      | Const b -> shares.(i).(w) <- (i = 0 && b)
      | Not a ->
          eval i a;
          shares.(i).(w) <- (if i = 0 then not shares.(i).(a) else shares.(i).(a))
      | Xor (a, b) ->
          eval i a;
          eval i b;
          shares.(i).(w) <- shares.(i).(a) <> shares.(i).(b)
      | And _ -> failwith "Mpcnet: AND wire evaluated before its layer opened");
      computed.(i).(w) <- true
    end
  in
  let send_outputs sim i =
    let my = Array.map (fun w -> eval i w; shares.(i).(w)) outputs_w in
    (* Include own contribution. *)
    Array.iteri (fun k v -> out_acc.(i).(k) <- out_acc.(i).(k) <> v) my;
    outs_count.(i) <- outs_count.(i) + 1;
    Simnet.work sim i (params.cpu_per_gate *. float_of_int (Array.length outputs_w));
    Simnet.broadcast sim ~src:i ~size:(bits_size (Array.length outputs_w) + 16) (Outs my)
  in
  let rec start_layer sim i l =
    if l >= n_layers then send_outputs sim i
    else begin
      let wires = layers.(l) in
      Simnet.work sim i (params.crypto_per_and *. float_of_int (Array.length wires));
      let ds =
        Array.map
          (fun w ->
            match gates.(w) with
            | Circuit.And (a, _) ->
                eval i a;
                shares.(i).(a) <> sa.(i).(w)
            | _ -> assert false)
          wires
      in
      let es =
        Array.map
          (fun w ->
            match gates.(w) with
            | Circuit.And (_, b) ->
                eval i b;
                shares.(i).(b) <> sb.(i).(w)
            | _ -> assert false)
          wires
      in
      absorb sim i l ds es;
      Simnet.broadcast sim ~src:i
        ~size:(2 * bits_size (Array.length wires) + 16)
        (Opens { layer = l; ds; es })
    end
  (* Fold a (possibly own) contribution into the layer accumulators; when
     all p contributions are in, finalize the layer's AND gates. *)
  and absorb sim i l ds es =
    Array.iteri (fun k v -> d_acc.(i).(l).(k) <- d_acc.(i).(l).(k) <> v) ds;
    Array.iteri (fun k v -> e_acc.(i).(l).(k) <- e_acc.(i).(l).(k) <> v) es;
    opens_count.(i).(l) <- opens_count.(i).(l) + 1;
    if opens_count.(i).(l) = p then begin
      Array.iteri
        (fun k w ->
          (* The opened values are identical at every party; record them
             once (they're public). *)
          opened_d.(w) <- d_acc.(i).(l).(k);
          opened_e.(w) <- e_acc.(i).(l).(k);
          let d = opened_d.(w) and e = opened_e.(w) in
          shares.(i).(w) <-
            sc.(i).(w)
            <> (d && sb.(i).(w))
            <> (e && sa.(i).(w))
            <> (i = 0 && d && e);
          computed.(i).(w) <- true)
        layers.(l);
      start_layer sim i (l + 1)
    end
  in
  for i = 0 to p - 1 do
    Simnet.on_receive net i (fun sim ~src:_ msg ->
        match msg with
        | Opens { layer; ds; es } -> absorb sim i layer ds es
        | Outs contribution ->
            Array.iteri (fun k v -> out_acc.(i).(k) <- out_acc.(i).(k) <> v) contribution;
            outs_count.(i) <- outs_count.(i) + 1;
            if outs_count.(i) = p && i = 0 then final_outputs := Some (Array.copy out_acc.(i)));
    Simnet.at net ~delay:0.0 i (fun sim -> start_layer sim i 0)
  done;
  Simnet.run net;
  match !final_outputs with
  | None ->
      if Array.length outputs_w = 0 then
        { outputs = [||]; rounds = !rounds; net = Simnet.metrics net }
      else failwith "Mpcnet.execute: protocol did not complete (lossy network?)"
  | Some outputs -> { outputs; rounds = !rounds; net = Simnet.metrics net }

(* --- Reliable transport: stop-and-repeat with acks, exponential backoff,
   and per-round deadlines feeding a timeout failure detector. --- *)

type reliability = {
  rto : float;
  backoff : float;
  max_rto : float;
  max_retries : int;
  round_deadline : float;
}

let default_reliability =
  { rto = 0.005; backoff = 2.0; max_rto = 0.08; max_retries = 12; round_deadline = 0.25 }

type packet =
  | Data of { seq : int; round : int; payload : msg }
  | Ack of { seq : int }

type outcome = Outputs of bool array | Parties_failed of int list

type reliable_result = {
  outcome : outcome;
  rounds : int;
  retransmissions : int;
  duplicates : int;
  retried_rounds : int;
  suspects : int list;
  protocol_time : float;
  net : Simnet.metrics;
}

let ack_size = 16

let execute_reliable ?config ?plan ?(reliability = default_reliability) rng circuit
    ~inputs =
  let r = reliability in
  let p = Circuit.num_parties circuit in
  if p < 2 then invalid_arg "Mpcnet.execute_reliable: need at least 2 parties";
  let gates = Circuit.gates circuit in
  let n_wires = Array.length gates in
  let layers = Circuit.and_layers circuit in
  let n_layers = Array.length layers in
  let outputs_w = Circuit.outputs circuit in
  (* Dealer draws happen before the network exists: message-level faults
     cannot shift them, so outputs are a pure function of (rng, inputs). *)
  let input_shares, sa, sb, sc = deal rng circuit ~inputs ~p in
  let net = Simnet.create ?config ?plan ~nodes:p () in
  let shares = Array.init p (fun _ -> Array.make n_wires false) in
  let computed = Array.init p (fun _ -> Array.make n_wires false) in
  let opened_d = Array.make n_wires false in
  let opened_e = Array.make n_wires false in
  let d_acc = Array.init p (fun _ -> Array.map (fun ws -> Array.make (Array.length ws) false) layers) in
  let e_acc = Array.init p (fun _ -> Array.map (fun ws -> Array.make (Array.length ws) false) layers) in
  let opens_count = Array.make_matrix p n_layers 0 in
  let out_acc = Array.init p (fun _ -> Array.make (Array.length outputs_w) false) in
  let outs_count = Array.make p 0 in
  (* Who has contributed what, per receiver: the failure detector blames
     exactly the parties whose contribution is still missing at a deadline. *)
  let got_open = Array.init p (fun _ -> Array.make_matrix n_layers p false) in
  let got_out = Array.make_matrix p p false in
  let final_outputs = ref None in
  let rounds = ref (if n_layers = 0 then 1 else n_layers + 1) in
  let params = Cost.default_params in
  let seq_ctr = Array.make_matrix p p 0 in
  let acked = Hashtbl.create 256 in
  let seen = Hashtbl.create 256 in
  let suspects = Hashtbl.create 8 in
  let retried = Hashtbl.create 8 in
  let retransmissions = ref 0 in
  let duplicates = ref 0 in
  let last_progress = ref 0.0 in
  let finish_time = ref 0.0 in
  let send_reliable sim ~src ~dst ~size ~round payload =
    let seq = seq_ctr.(src).(dst) in
    seq_ctr.(src).(dst) <- seq + 1;
    let key = (src, dst, seq) in
    let pkt = Data { seq; round; payload } in
    Simnet.send sim ~src ~dst ~size pkt;
    let rec arm attempt rto =
      Simnet.at sim ~delay:rto src (fun sim ->
          if (not (Hashtbl.mem acked key)) && !final_outputs = None then
            if attempt < r.max_retries then begin
              incr retransmissions;
              Hashtbl.replace retried round ();
              Simnet.send sim ~src ~dst ~size pkt;
              arm (attempt + 1) (Float.min (rto *. r.backoff) r.max_rto)
            end
            else
              (* Ack never came despite max_retries copies: declare dst dead. *)
              Hashtbl.replace suspects dst ())
    in
    arm 0 r.rto
  in
  let broadcast_reliable sim ~src ~size ~round payload =
    for dst = 0 to p - 1 do
      if dst <> src then send_reliable sim ~src ~dst ~size ~round payload
    done
  in
  let rec eval i w =
    if not computed.(i).(w) then begin
      (match gates.(w) with
      | Circuit.Input _ -> shares.(i).(w) <- input_shares.(i).(w)
      | Const b -> shares.(i).(w) <- (i = 0 && b)
      | Not a ->
          eval i a;
          shares.(i).(w) <- (if i = 0 then not shares.(i).(a) else shares.(i).(a))
      | Xor (a, b) ->
          eval i a;
          eval i b;
          shares.(i).(w) <- shares.(i).(a) <> shares.(i).(b)
      | And _ -> failwith "Mpcnet: AND wire evaluated before its layer opened");
      computed.(i).(w) <- true
    end
  in
  let out_round = n_layers in
  let send_outputs sim i =
    let my = Array.map (fun w -> eval i w; shares.(i).(w)) outputs_w in
    Array.iteri (fun k v -> out_acc.(i).(k) <- out_acc.(i).(k) <> v) my;
    outs_count.(i) <- outs_count.(i) + 1;
    got_out.(i).(i) <- true;
    (* Under retransmission skew party 0 can be the last to contribute its
       own output share: completion must be checked here too. *)
    if outs_count.(i) = p && i = 0 then begin
      final_outputs := Some (Array.copy out_acc.(i));
      finish_time := Simnet.now sim
    end;
    Simnet.work sim i (params.cpu_per_gate *. float_of_int (Array.length outputs_w));
    broadcast_reliable sim ~src:i
      ~size:(bits_size (Array.length outputs_w) + 16)
      ~round:out_round (Outs my);
    Simnet.at sim ~delay:r.round_deadline i (fun _sim ->
        if !final_outputs = None && outs_count.(i) < p then
          for j = 0 to p - 1 do
            if (not got_out.(i).(j)) && j <> i then Hashtbl.replace suspects j ()
          done)
  in
  let rec start_layer sim i l =
    if l >= n_layers then send_outputs sim i
    else begin
      let wires = layers.(l) in
      Simnet.work sim i (params.crypto_per_and *. float_of_int (Array.length wires));
      let ds =
        Array.map
          (fun w ->
            match gates.(w) with
            | Circuit.And (a, _) ->
                eval i a;
                shares.(i).(a) <> sa.(i).(w)
            | _ -> assert false)
          wires
      in
      let es =
        Array.map
          (fun w ->
            match gates.(w) with
            | Circuit.And (_, b) ->
                eval i b;
                shares.(i).(b) <> sb.(i).(w)
            | _ -> assert false)
          wires
      in
      got_open.(i).(l).(i) <- true;
      absorb sim i l ds es;
      broadcast_reliable sim ~src:i
        ~size:(2 * bits_size (Array.length wires) + 16)
        ~round:l
        (Opens { layer = l; ds; es });
      Simnet.at sim ~delay:r.round_deadline i (fun _sim ->
          if !final_outputs = None && opens_count.(i).(l) < p then
            for j = 0 to p - 1 do
              if (not got_open.(i).(l).(j)) && j <> i then Hashtbl.replace suspects j ()
            done)
    end
  and absorb sim i l ds es =
    Array.iteri (fun k v -> d_acc.(i).(l).(k) <- d_acc.(i).(l).(k) <> v) ds;
    Array.iteri (fun k v -> e_acc.(i).(l).(k) <- e_acc.(i).(l).(k) <> v) es;
    opens_count.(i).(l) <- opens_count.(i).(l) + 1;
    if opens_count.(i).(l) = p then begin
      Array.iteri
        (fun k w ->
          opened_d.(w) <- d_acc.(i).(l).(k);
          opened_e.(w) <- e_acc.(i).(l).(k);
          let d = opened_d.(w) and e = opened_e.(w) in
          shares.(i).(w) <-
            sc.(i).(w)
            <> (d && sb.(i).(w))
            <> (e && sa.(i).(w))
            <> (i = 0 && d && e);
          computed.(i).(w) <- true)
        layers.(l);
      start_layer sim i (l + 1)
    end
  in
  for i = 0 to p - 1 do
    Simnet.on_receive net i (fun sim ~src pkt ->
        match pkt with
        | Ack { seq } -> Hashtbl.replace acked (i, src, seq) ()
        | Data { seq; round = _; payload } ->
            (* Always re-ack: the previous ack may have been lost. *)
            Simnet.send sim ~src:i ~dst:src ~size:ack_size (Ack { seq });
            if Hashtbl.mem seen (i, src, seq) then incr duplicates
            else begin
              Hashtbl.replace seen (i, src, seq) ();
              if Simnet.now sim > !last_progress then last_progress := Simnet.now sim;
              match payload with
              | Opens { layer; ds; es } ->
                  got_open.(i).(layer).(src) <- true;
                  absorb sim i layer ds es
              | Outs contribution ->
                  got_out.(i).(src) <- true;
                  Array.iteri
                    (fun k v -> out_acc.(i).(k) <- out_acc.(i).(k) <> v)
                    contribution;
                  outs_count.(i) <- outs_count.(i) + 1;
                  if outs_count.(i) = p && i = 0 then begin
                    final_outputs := Some (Array.copy out_acc.(i));
                    finish_time := Simnet.now sim
                  end
            end);
    Simnet.at net ~delay:0.0 i (fun sim -> start_layer sim i 0)
  done;
  Simnet.run net;
  let suspect_list = List.sort_uniq compare (Hashtbl.fold (fun k () acc -> k :: acc) suspects []) in
  let finish outcome protocol_time =
    {
      outcome;
      rounds = !rounds;
      retransmissions = !retransmissions;
      duplicates = !duplicates;
      retried_rounds = Hashtbl.length retried;
      suspects = suspect_list;
      protocol_time;
      net = Simnet.metrics net;
    }
  in
  match !final_outputs with
  | Some outputs -> finish (Outputs outputs) !finish_time
  | None when Array.length outputs_w = 0 -> finish (Outputs [||]) !last_progress
  | None -> finish (Parties_failed suspect_list) !last_progress
