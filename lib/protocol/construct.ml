open Eppi_prelude
module Simnet = Eppi_simnet.Simnet
module Circuit = Eppi_circuit.Circuit
module Cost = Eppi_mpc.Cost
module Gmw = Eppi_mpc.Gmw
module Trace = Eppi_obs.Trace

type metrics = {
  secsumshare_time : float;
  mpc_time : float;
  publication_time : float;
  total_time : float;
  messages : int;
  bytes : int;
  circuit_stats : Circuit.stats;
  mpc_comm : Gmw.comm_stats;
}

type result = {
  index : Eppi.Index.t;
  betas : float array;
  common : bool array;
  mixed : bool array;
  lambda : float;
  xi : float;
  metrics : metrics;
}

let modulus_for m = Modarith.modulus (Modarith.next_prime (m + 1))

(* Publication is a local scan of each provider's n bits. *)
let publication_cost ~n = 2e-8 *. float_of_int n

let run ?config ?reliability ?network ?transport ?pool ?strategy ?(c = 3)
    ?(mixing = Eppi.Mixing.Bernoulli) rng ~membership ~epsilons ~policy =
  let n = Bitmatrix.rows membership in
  let m = Bitmatrix.cols membership in
  if Array.length epsilons <> n then invalid_arg "Protocol.Construct.run: epsilons length mismatch";
  let q = modulus_for m in
  (* Each phase draws from its own child stream: how many draws one phase
     makes (which varies with the CountBelow strategy and circuit shapes)
     can never perturb the next phase, so the construction output is
     bit-identical across strategies and domain counts. *)
  let rng_sss = Rng.split rng in
  let rng_mpc = Rng.split rng in
  let rng_release = Rng.split rng in
  let rng_publish = Rng.split rng in
  let the_pool = match pool with Some p -> p | None -> Pool.sequential in
  (* Per-domain pool accounting across the MPC stage: a zero sample opens
     each worker's counter track, the closing sample carries the busy
     delta — one counter track per pool domain in the exported trace. *)
  let pool_before =
    if Trace.enabled () then begin
      let b = Pool.stats the_pool in
      Array.iteri
        (fun i _ ->
          Trace.counter (Printf.sprintf "pool/worker-%d" i) [ ("busy_us", 0); ("jobs", 0) ])
        b;
      Some b
    end
    else None
  in
  Trace.begin_span "phase.beta";
  (* Providers' private inputs: their own membership column, one bit per
     identity. *)
  let inputs =
    Array.init m (fun i ->
        Array.init n (fun j -> if Bitmatrix.get membership ~row:j ~col:i then 1 else 0))
  in
  let sss = Secsumshare.run ?config ?reliability rng_sss ~inputs ~c ~q in
  let thresholds =
    Array.map (fun epsilon -> Countbelow.integer_threshold ~policy ~epsilon ~m) epsilons
  in
  let cb =
    Countbelow.run ?network ?transport ~pool:the_pool ?strategy rng_mpc
      ~shares:sss.coordinator_shares ~q ~thresholds
  in
  Trace.end_span "phase.beta"
    ~args:
      [
        ("messages", sss.net.messages_sent + cb.comm.messages);
        ("bytes", sss.net.bytes_sent + cb.comm.bytes);
        ("sim_us", int_of_float ((sss.net.completion_time +. cb.time) *. 1e6));
      ];
  (match pool_before with
  | None -> ()
  | Some before ->
      let after = Pool.stats the_pool in
      Array.iteri
        (fun i (b : Pool.worker_stat) ->
          let a = after.(i) in
          Trace.counter (Printf.sprintf "pool/worker-%d" i)
            [ ("busy_us", (a.busy_ns - b.busy_ns) / 1000); ("jobs", a.jobs - b.jobs) ])
        before);
  (* Release phase (public computation at a designated coordinator):
     xi, lambda, mixing draws, final betas. *)
  Trace.begin_span "phase.mixing";
  let xi =
    let acc = ref 0.0 in
    Array.iteri (fun j is_common -> if is_common then acc := Float.max !acc epsilons.(j)) cb.common;
    Float.min !acc 0.999
  in
  let lambda = Eppi.Mixing.lambda ~xi ~n_common:cb.n_common ~n_total:n in
  let mixed = Array.make n false in
  let candidates =
    Array.of_list (List.filteri (fun j _ -> not cb.common.(j)) (List.init n Fun.id))
  in
  let decoys = Eppi.Mixing.select_decoys rng_release ~mode:mixing ~lambda ~candidates in
  Array.iteri (fun slot j -> if decoys.(slot) then mixed.(j) <- true) candidates;
  let betas =
    Array.init n (fun j ->
        if cb.common.(j) || mixed.(j) then 1.0
        else begin
          match cb.frequencies.(j) with
          | None -> 1.0 (* unreachable: non-common identities carry a frequency *)
          | Some f ->
              Eppi.Policy.beta policy
                ~sigma:(float_of_int f /. float_of_int m)
                ~epsilon:epsilons.(j) ~m
        end)
  in
  let n_mixed = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mixed in
  Trace.end_span "phase.mixing" ~args:[ ("n_common", cb.n_common); ("decoys", n_mixed) ];
  (* Phase 2: local randomized publication at every provider. *)
  Trace.begin_span "phase.publish";
  let published = Eppi.Publish.publish_matrix rng_publish ~betas membership in
  let index = Eppi.Index.of_matrix published in
  Trace.end_span "phase.publish" ~args:[ ("owners", n); ("providers", m) ];
  let publication_time = publication_cost ~n in
  let sss_messages_bytes = (sss.net.messages_sent, sss.net.bytes_sent) in
  let metrics =
    {
      secsumshare_time = sss.net.completion_time;
      mpc_time = cb.time;
      publication_time;
      total_time = sss.net.completion_time +. cb.time +. publication_time;
      messages = fst sss_messages_bytes + cb.comm.messages;
      bytes = snd sss_messages_bytes + cb.comm.bytes;
      circuit_stats = cb.circuit_stats;
      mpc_comm = cb.comm;
    }
  in
  { index; betas; common = cb.common; mixed; lambda; xi; metrics }

let beta_phase_time_estimate ?(network = Cost.lan) ~m ~identities ~c () =
  if m < c || c < 2 then invalid_arg "beta_phase_time_estimate: need m >= c >= 2";
  (* SecSumShare: constant rounds; each provider sends c-1 share messages
     plus one super-share, so the per-provider latency path is short and the
     dominant term is serialization of the n-residue vectors. *)
  let message_bytes = float_of_int ((4 * identities) + 16) in
  let per_provider_traffic = float_of_int c *. message_bytes in
  let sss_time =
    (3.0 *. network.latency)
    +. (per_provider_traffic /. network.bandwidth)
    +. (2e-8 *. float_of_int (identities * c) *. 2.0)
  in
  (* CountBelow among c parties, circuit scaled per identity. *)
  let q = Modarith.to_int (modulus_for m) in
  let thresholds = Array.make identities ((q - 1) / 2) in
  let compiled = Eppi_sfdl.Compile.compile_source (Eppi_sfdl.Programs.count_below ~c ~q ~thresholds) in
  let stats = Circuit.stats compiled.circuit in
  let outputs = Array.length (Circuit.outputs compiled.circuit) in
  sss_time +. Cost.estimate ~network ~parties:c ~outputs stats
