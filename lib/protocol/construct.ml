open Eppi_prelude
module Simnet = Eppi_simnet.Simnet
module Circuit = Eppi_circuit.Circuit
module Cost = Eppi_mpc.Cost
module Gmw = Eppi_mpc.Gmw
module Trace = Eppi_obs.Trace

type metrics = {
  secsumshare_time : float;
  mpc_time : float;
  publication_time : float;
  total_time : float;
  messages : int;
  bytes : int;
  circuit_stats : Circuit.stats;
  mpc_comm : Gmw.comm_stats;
}

type result = {
  index : Eppi.Index.t;
  betas : float array;
  common : bool array;
  mixed : bool array;
  lambda : float;
  xi : float;
  metrics : metrics;
}

let modulus_for m = Modarith.modulus (Modarith.next_prime (m + 1))

(* Publication is a local scan of each provider's n bits. *)
let publication_cost ~n = 2e-8 *. float_of_int n

(* Release phase (public computation at a designated coordinator) followed
   by local randomized publication.  Shared by [run] and [run_ft]; the rng
   draw order here is load-bearing for bit-identical replays. *)
let release_and_publish ~rng_release ~rng_publish ~mixing ~policy ~epsilons ~membership ~m
    ~(cb : Countbelow.result) =
  let n = Bitmatrix.rows membership in
  Trace.begin_span "phase.mixing";
  let xi =
    let acc = ref 0.0 in
    Array.iteri (fun j is_common -> if is_common then acc := Float.max !acc epsilons.(j)) cb.common;
    Float.min !acc 0.999
  in
  let lambda = Eppi.Mixing.lambda ~xi ~n_common:cb.n_common ~n_total:n in
  let mixed = Array.make n false in
  let candidates =
    Array.of_list (List.filteri (fun j _ -> not cb.common.(j)) (List.init n Fun.id))
  in
  let decoys = Eppi.Mixing.select_decoys rng_release ~mode:mixing ~lambda ~candidates in
  Array.iteri (fun slot j -> if decoys.(slot) then mixed.(j) <- true) candidates;
  let betas =
    Array.init n (fun j ->
        if cb.common.(j) || mixed.(j) then 1.0
        else begin
          match cb.frequencies.(j) with
          | None -> 1.0 (* unreachable: non-common identities carry a frequency *)
          | Some f ->
              Eppi.Policy.beta policy
                ~sigma:(float_of_int f /. float_of_int m)
                ~epsilon:epsilons.(j) ~m
        end)
  in
  let n_mixed = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mixed in
  Trace.end_span "phase.mixing" ~args:[ ("n_common", cb.n_common); ("decoys", n_mixed) ];
  (* Phase 2: local randomized publication at every provider. *)
  Trace.begin_span "phase.publish";
  let published = Eppi.Publish.publish_matrix rng_publish ~betas membership in
  let index = Eppi.Index.of_matrix published in
  Trace.end_span "phase.publish" ~args:[ ("owners", n); ("providers", m) ];
  (index, betas, mixed, lambda, xi)

let run ?config ?reliability ?network ?transport ?pool ?strategy ?(c = 3)
    ?(mixing = Eppi.Mixing.Bernoulli) rng ~membership ~epsilons ~policy =
  let n = Bitmatrix.rows membership in
  let m = Bitmatrix.cols membership in
  if Array.length epsilons <> n then invalid_arg "Protocol.Construct.run: epsilons length mismatch";
  let q = modulus_for m in
  (* Each phase draws from its own child stream: how many draws one phase
     makes (which varies with the CountBelow strategy and circuit shapes)
     can never perturb the next phase, so the construction output is
     bit-identical across strategies and domain counts. *)
  let rng_sss = Rng.split rng in
  let rng_mpc = Rng.split rng in
  let rng_release = Rng.split rng in
  let rng_publish = Rng.split rng in
  let the_pool = match pool with Some p -> p | None -> Pool.sequential in
  (* Per-domain pool accounting across the MPC stage: a zero sample opens
     each worker's counter track, the closing sample carries the busy
     delta — one counter track per pool domain in the exported trace. *)
  let pool_before =
    if Trace.enabled () then begin
      let b = Pool.stats the_pool in
      Array.iteri
        (fun i _ ->
          Trace.counter (Printf.sprintf "pool/worker-%d" i) [ ("busy_us", 0); ("jobs", 0) ])
        b;
      Some b
    end
    else None
  in
  Trace.begin_span "phase.beta";
  (* Providers' private inputs: their own membership column, one bit per
     identity. *)
  let inputs =
    Array.init m (fun i ->
        Array.init n (fun j -> if Bitmatrix.get membership ~row:j ~col:i then 1 else 0))
  in
  let sss = Secsumshare.run ?config ?reliability rng_sss ~inputs ~c ~q in
  let thresholds =
    Array.map (fun epsilon -> Countbelow.integer_threshold ~policy ~epsilon ~m) epsilons
  in
  let cb =
    Countbelow.run ?network ?transport ~pool:the_pool ?strategy rng_mpc
      ~shares:sss.coordinator_shares ~q ~thresholds
  in
  Trace.end_span "phase.beta"
    ~args:
      [
        ("messages", sss.net.messages_sent + cb.comm.messages);
        ("bytes", sss.net.bytes_sent + cb.comm.bytes);
        ("sim_us", int_of_float ((sss.net.completion_time +. cb.time) *. 1e6));
      ];
  (match pool_before with
  | None -> ()
  | Some before ->
      let after = Pool.stats the_pool in
      Array.iteri
        (fun i (b : Pool.worker_stat) ->
          let a = after.(i) in
          Trace.counter (Printf.sprintf "pool/worker-%d" i)
            [ ("busy_us", (a.busy_ns - b.busy_ns) / 1000); ("jobs", a.jobs - b.jobs) ])
        before);
  let index, betas, mixed, lambda, xi =
    release_and_publish ~rng_release ~rng_publish ~mixing ~policy ~epsilons ~membership ~m
      ~cb
  in
  let publication_time = publication_cost ~n in
  let sss_messages_bytes = (sss.net.messages_sent, sss.net.bytes_sent) in
  let metrics =
    {
      secsumshare_time = sss.net.completion_time;
      mpc_time = cb.time;
      publication_time;
      total_time = sss.net.completion_time +. cb.time +. publication_time;
      messages = fst sss_messages_bytes + cb.comm.messages;
      bytes = snd sss_messages_bytes + cb.comm.bytes;
      circuit_stats = cb.circuit_stats;
      mpc_comm = cb.comm;
    }
  in
  { index; betas; common = cb.common; mixed; lambda; xi; metrics }

(* ---------- fault-tolerant construction ---------- *)

type fault_report = {
  excluded : int list;
  survivors : int list;
  attempts : int;
  sss_retransmissions : int;
  mpc_retransmissions : int;
  duplicates : int;
  retried_rounds : int;
}

type outcome =
  | Complete of result * fault_report
  | Degraded of result * fault_report
  | Failed of string * fault_report

(* Project a fault plan expressed in original provider ids onto the id space
   of an attempt's net: survivors (in increasing original id order) become
   nodes 0..m'-1, and entries touching excluded providers — or providers
   beyond the net's node count, for the c-coordinator MPC net — vanish. *)
let remap_plan (plan : Simnet.fault_plan) ~survivors ~nodes =
  let tbl = Hashtbl.create 16 in
  List.iteri (fun k p -> Hashtbl.replace tbl p k) survivors;
  let map p =
    match Hashtbl.find_opt tbl p with Some k when k < nodes -> Some k | _ -> None
  in
  {
    plan with
    Simnet.links =
      List.filter_map
        (fun ((s, d), lf) ->
          match (map s, map d) with Some s, Some d -> Some ((s, d), lf) | _ -> None)
        plan.Simnet.links;
    crashes =
      List.filter_map (fun (t, p) -> Option.map (fun p -> (t, p)) (map p)) plan.Simnet.crashes;
    partitions =
      List.map
        (fun pt -> { pt with Simnet.islands = List.map (List.filter_map map) pt.Simnet.islands })
        plan.Simnet.partitions;
    slow = List.filter_map (fun (p, f) -> Option.map (fun p -> (p, f)) (map p)) plan.Simnet.slow;
  }

(* Survivor-column view of the membership matrix. *)
let submatrix membership survivors =
  let n = Bitmatrix.rows membership in
  let sub = Bitmatrix.create ~rows:n ~cols:(List.length survivors) in
  List.iteri
    (fun k p ->
      for j = 0 to n - 1 do
        if Bitmatrix.get membership ~row:j ~col:p then Bitmatrix.set sub ~row:j ~col:k true
      done)
    survivors;
  sub

let run_ft ?config ?sss_plan ?mpc_plan ?reliability ?mpc_reliability ?deadline
    ?(max_attempts = 3) ?network ?pool ?strategy ?(c = 3)
    ?(mixing = Eppi.Mixing.Bernoulli) rng ~membership ~epsilons ~policy =
  let n = Bitmatrix.rows membership in
  let m = Bitmatrix.cols membership in
  if Array.length epsilons <> n then
    invalid_arg "Protocol.Construct.run_ft: epsilons length mismatch";
  let the_pool = match pool with Some p -> p | None -> Pool.sequential in
  let sss_retrans = ref 0 in
  let mpc_retrans = ref 0 in
  let duplicates = ref 0 in
  let retried_rounds = ref 0 in
  let all = List.init m Fun.id in
  let report ~survivors ~attempts =
    {
      excluded = List.filter (fun p -> not (List.mem p survivors)) all;
      survivors;
      attempts;
      sss_retransmissions = !sss_retrans;
      mpc_retransmissions = !mpc_retrans;
      duplicates = !duplicates;
      retried_rounds = !retried_rounds;
    }
  in
  let rec attempt k survivors =
    let m' = List.length survivors in
    if k > max_attempts then
      Failed
        ( Printf.sprintf "gave up after %d attempts" max_attempts,
          report ~survivors ~attempts:(k - 1) )
    else if m' < c then
      Failed
        ( Printf.sprintf "only %d providers survive, need at least c = %d" m' c,
          report ~survivors ~attempts:(k - 1) )
    else begin
      Trace.begin_span "construct.attempt";
      (* Fresh child streams per attempt: a retry is a brand-new protocol
         run over the survivor set, deterministic in (rng, attempt number). *)
      let arng = Rng.split rng in
      let rng_sss = Rng.split arng in
      let rng_mpc = Rng.split arng in
      let rng_release = Rng.split arng in
      let rng_publish = Rng.split arng in
      let q = modulus_for m' in
      let sub = submatrix membership survivors in
      let inputs =
        Array.init m' (fun i ->
            Array.init n (fun j -> if Bitmatrix.get sub ~row:j ~col:i then 1 else 0))
      in
      Trace.begin_span "phase.beta";
      let sss_plan' = Option.map (remap_plan ~survivors ~nodes:m') sss_plan in
      let sss = Secsumshare.run_ft ?config ?plan:sss_plan' ?reliability ?deadline rng_sss ~inputs ~c ~q in
      sss_retrans := !sss_retrans + sss.report.retransmissions;
      duplicates := !duplicates + sss.report.duplicates;
      let finish_attempt exclude =
        Trace.end_span "phase.beta" ~args:[ ("excluded", List.length exclude) ];
        Trace.end_span "construct.attempt"
          ~args:[ ("attempt", k); ("providers", m'); ("excluded", List.length exclude) ];
        (* Suspects are attempt-local node ids; translate back. *)
        let orig = Array.of_list survivors in
        let excluded = List.map (fun i -> orig.(i)) exclude in
        attempt (k + 1) (List.filter (fun p -> not (List.mem p excluded)) survivors)
      in
      match sss.shares with
      | None when sss.report.suspects = [] ->
          Trace.end_span "phase.beta" ~args:[ ("excluded", 0) ];
          Trace.end_span "construct.attempt" ~args:[ ("attempt", k); ("providers", m') ];
          Failed
            ("SecSumShare stalled with no identified culprit", report ~survivors ~attempts:k)
      | None -> finish_attempt sss.report.suspects
      | Some shares -> begin
          let thresholds =
            Array.map
              (fun epsilon -> Countbelow.integer_threshold ~policy ~epsilon ~m:m')
              epsilons
          in
          let cb_outcome =
            match mpc_plan with
            | None ->
                (* No coordinator faults requested: the in-process engine is
                   exact and parallelizes on the pool. *)
                `Done
                  ( Countbelow.run ?network ~pool:the_pool ?strategy rng_mpc ~shares ~q
                      ~thresholds,
                    0 )
            | Some plan ->
                let plan' = remap_plan plan ~survivors ~nodes:c in
                let r =
                  Countbelow.run_reliable ?config ~plan:plan' ?reliability:mpc_reliability
                    rng_mpc ~shares ~q ~thresholds
                in
                mpc_retrans := !mpc_retrans + r.retransmissions;
                duplicates := !duplicates + r.duplicates;
                retried_rounds := !retried_rounds + r.retried_rounds;
                (match r.outcome with
                | `Done cb -> `Done (cb, r.retransmissions)
                | `Coordinators_failed dead -> `Dead dead)
          in
          match cb_outcome with
          | `Dead [] ->
              Trace.end_span "phase.beta" ~args:[ ("excluded", 0) ];
              Trace.end_span "construct.attempt" ~args:[ ("attempt", k); ("providers", m') ];
              Failed ("CountBelow stalled with no identified culprit", report ~survivors ~attempts:k)
          | `Dead dead -> finish_attempt dead
          | `Done (cb, _) ->
              Trace.end_span "phase.beta"
                ~args:
                  [
                    ("messages", sss.report.net.messages_sent + cb.comm.messages);
                    ("bytes", sss.report.net.bytes_sent + cb.comm.bytes);
                    ("sim_us", int_of_float ((sss.report.protocol_time +. cb.time) *. 1e6));
                  ];
              let index, betas, mixed, lambda, xi =
                release_and_publish ~rng_release ~rng_publish ~mixing ~policy ~epsilons
                  ~membership:sub ~m:m' ~cb
              in
              let publication_time = publication_cost ~n in
              let metrics =
                {
                  secsumshare_time = sss.report.protocol_time;
                  mpc_time = cb.time;
                  publication_time;
                  total_time = sss.report.protocol_time +. cb.time +. publication_time;
                  messages = sss.report.net.messages_sent + cb.comm.messages;
                  bytes = sss.report.net.bytes_sent + cb.comm.bytes;
                  circuit_stats = cb.circuit_stats;
                  mpc_comm = cb.comm;
                }
              in
              let result = { index; betas; common = cb.common; mixed; lambda; xi; metrics } in
              let rep = report ~survivors ~attempts:k in
              Trace.end_span "construct.attempt"
                ~args:
                  [
                    ("attempt", k);
                    ("providers", m');
                    ("sss_retransmissions", rep.sss_retransmissions);
                    ("mpc_retransmissions", rep.mpc_retransmissions);
                  ];
              if rep.excluded = [] then Complete (result, rep) else Degraded (result, rep)
        end
    end
  in
  attempt 1 all

let beta_phase_time_estimate ?(network = Cost.lan) ~m ~identities ~c () =
  if m < c || c < 2 then invalid_arg "beta_phase_time_estimate: need m >= c >= 2";
  (* SecSumShare: constant rounds; each provider sends c-1 share messages
     plus one super-share, so the per-provider latency path is short and the
     dominant term is serialization of the n-residue vectors. *)
  let message_bytes = float_of_int ((4 * identities) + 16) in
  let per_provider_traffic = float_of_int c *. message_bytes in
  let sss_time =
    (3.0 *. network.latency)
    +. (per_provider_traffic /. network.bandwidth)
    +. (2e-8 *. float_of_int (identities * c) *. 2.0)
  in
  (* CountBelow among c parties, circuit scaled per identity. *)
  let q = Modarith.to_int (modulus_for m) in
  let thresholds = Array.make identities ((q - 1) / 2) in
  let compiled = Eppi_sfdl.Compile.compile_source (Eppi_sfdl.Programs.count_below ~c ~q ~thresholds) in
  let stats = Circuit.stats compiled.circuit in
  let outputs = Array.length (Circuit.outputs compiled.circuit) in
  sss_time +. Cost.estimate ~network ~parties:c ~outputs stats
