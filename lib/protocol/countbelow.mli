(** The CountBelow stage: generic MPC among the c coordinators
    (paper Algorithm 2 and Section IV-B.2).

    The coordinators feed their SecSumShare output vectors into the compiled
    {!Eppi_sfdl.Programs.count_below} circuit, which reconstructs each
    identity's frequency {i inside the circuit}, compares it against a
    public per-identity threshold, and reveals only: the common bit, the
    frequency of non-common identities (deemed non-sensitive by the paper's
    threat model — high frequency is what makes an identity attackable), and
    the count of common identities for the λ computation.

    The integer thresholds are derived from the β policy so that
    "frequency >= threshold" is {i exactly} "β* >= 1": the protocol and the
    centralized reference classify identities identically (tested). *)

open Eppi_prelude

type result = {
  common : bool array;
  frequencies : int option array;  (** [Some f] for non-common identities. *)
  n_common : int;
  circuit_stats : Eppi_circuit.Circuit.stats;
  comm : Eppi_mpc.Gmw.comm_stats;
  time : float;
      (** Simulated MPC execution time: the cost model's estimate by
          default, or the emergent completion time when running over the
          simulated network (see [transport]). *)
}

(** How the MPC stage runs: [`Cost_model] executes the in-process engine
    and prices it with {!Eppi_mpc.Cost}; [`Simnet cfg] runs the protocol
    round-by-round over the simulated network ({!Mpcnet}) so the time
    emerges from message passing. *)
type transport = [ `Cost_model | `Simnet of Eppi_simnet.Simnet.config ]

(** How the count-below computation is organized:

    - [`Monolithic] — the paper-literal formulation: one circuit over all n
      identities, walked sequentially.  Always used under the [`Simnet]
      transport (the network simulation replays a single protocol instance).
    - [`Sharded] — the multicore pipeline (default under [`Cost_model]):
      one comparator circuit per identity, memo-compiled per distinct
      [(c, q, threshold)], evaluated on the domain pool with a per-shard
      {!Rng.split}.  Classification outputs are bit-identical to
      [`Monolithic] (GMW outputs are deterministic given the inputs); the
      reported [circuit_stats]/[comm] sum the shards, with the
      multiplicative depth taken as the max — shards batch into common
      broadcast rounds. *)
type strategy = [ `Monolithic | `Sharded ]

val integer_threshold : policy:Eppi.Policy.t -> epsilon:float -> m:int -> int
(** Smallest frequency count at which the policy's raw β reaches 1; [m + 1]
    when no frequency is common (ε = 0). *)

val run :
  ?network:Eppi_mpc.Cost.network ->
  ?transport:transport ->
  ?pool:Pool.t ->
  ?strategy:strategy ->
  Rng.t ->
  shares:int array array ->
  q:Modarith.modulus ->
  thresholds:int array ->
  result
(** [shares] is the c x n coordinator matrix from {!Secsumshare};
    [thresholds.(j)] is the count above which identity j is common (values
    above [q - 1] are clamped to [q - 1], which is unreachable by any sum of
    memberships since q > m).

    [pool] (default {!Pool.sequential}) supplies the domains the sharded
    strategy evaluates on; it is ignored by [`Monolithic] and [`Simnet]
    runs.  [strategy] defaults to [`Sharded] under [`Cost_model] and is
    forced to [`Monolithic] under [`Simnet].  Outputs ([common],
    [frequencies], [n_common]) are identical for every strategy and pool
    size.
    @raise Invalid_argument on shape violations or zero identities. *)

(** {1 Reliable path}

    Used by {!Construct.run_ft}: the monolithic circuit executed over
    {!Mpcnet.execute_reliable}, so coordinator crashes and message loss are
    survived or detected instead of hanging the round. *)

type reliable = {
  outcome : [ `Done of result | `Coordinators_failed of int list ];
      (** [`Done r]: all rounds completed; [r.common]/[r.frequencies] are
          bit-identical to {!run} on the same shares ([r.time] is the
          emergent protocol completion time).  [`Coordinators_failed dead]:
          the MPC stalled and the failure detector blamed [dead]. *)
  retransmissions : int;
  duplicates : int;
  retried_rounds : int;
  suspects : int list;  (** Every coordinator ever blamed (may be spurious on [`Done]). *)
}

val run_reliable :
  ?config:Eppi_simnet.Simnet.config ->
  ?plan:Eppi_simnet.Simnet.fault_plan ->
  ?reliability:Mpcnet.reliability ->
  Rng.t ->
  shares:int array array ->
  q:Modarith.modulus ->
  thresholds:int array ->
  reliable
(** @raise Invalid_argument on shape violations or zero identities. *)
