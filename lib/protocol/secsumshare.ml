open Eppi_prelude
module Simnet = Eppi_simnet.Simnet
module Additive = Eppi_secretshare.Additive

(* Data messages carry a key identifying them for acknowledgement and
   receiver-side deduplication: a provider sends at most one k-th share
   vector and one super-share vector. *)
type key = Kshares of { src : int; k : int } | Ksuper of { src : int }

type msg =
  | Shares of { k : int; values : int array }
  | Super of int array
  | Ack of key

type result = {
  coordinator_shares : int array array;
  net : Simnet.metrics;
  retransmissions : int;
}

type reliability = {
  ack_timeout : float;
  max_retries : int;
  backoff : float;
  max_timeout : float;
}

let default_reliability =
  { ack_timeout = 0.01; max_retries = 25; backoff = 2.0; max_timeout = 0.08 }

(* Rough wire size: 4 bytes per residue plus a small envelope. *)
let message_size n = (4 * n) + 16

let ack_size = 16

(* CPU charge per modular operation in the simulated time model. *)
let op_cost = 2e-8

let validate_inputs ~fn inputs ~c ~q =
  let m = Array.length inputs in
  if c < 2 then invalid_arg (fn ^ ": need c >= 2");
  if m < c then invalid_arg (fn ^ ": need at least c providers");
  let n = Array.length inputs.(0) in
  if n = 0 then invalid_arg (fn ^ ": empty input vectors");
  let qi = Modarith.to_int q in
  Array.iteri
    (fun i v ->
      if Array.length v <> n then invalid_arg (fn ^ ": ragged inputs");
      Array.iter
        (fun x ->
          if x < 0 || x >= qi then
            invalid_arg (Printf.sprintf "%s: provider %d input out of [0, q)" fn i))
        v)
    inputs;
  (m, n)

let run ?config ?reliability rng ~inputs ~c ~q =
  let m, n = validate_inputs ~fn:"Secsumshare.run" inputs ~c ~q in
  let net = Simnet.create ?config ~nodes:m () in
  (* Per-provider accumulator over the shares it holds (own 0-th + received). *)
  let acc = Array.init m (fun _ -> Array.make n 0) in
  let received = Array.make m 0 in
  let coordinator_shares = Array.init c (fun _ -> Array.make n 0) in
  let coord_expect = Array.make c 0 in
  for i = 0 to m - 1 do
    coord_expect.(i mod c) <- coord_expect.(i mod c) + 1
  done;
  let coord_received = Array.make c 0 in
  (* Reliability state: which keys were delivered (receiver side) and which
     were acknowledged (sender side). *)
  let seen : (key, unit) Hashtbl.t = Hashtbl.create 64 in
  let acked : (key, unit) Hashtbl.t = Hashtbl.create 64 in
  let retransmissions = ref 0 in
  (* Each provider derives its own randomness stream so message timing cannot
     perturb another provider's draws. *)
  let provider_rngs = Array.init m (fun _ -> Rng.split rng) in
  (* Send a data message, with retransmission when a reliability layer is
     configured. *)
  let send_data sim ~src ~dst ~size msg ~key =
    Simnet.send sim ~src ~dst ~size msg;
    match reliability with
    | None -> ()
    | Some { ack_timeout; max_retries; backoff; max_timeout } ->
        let rec arm attempt timeout =
          Simnet.at sim ~delay:timeout src (fun sim ->
              if not (Hashtbl.mem acked key) then
                if attempt < max_retries then begin
                  incr retransmissions;
                  Simnet.send sim ~src ~dst ~size msg;
                  arm (attempt + 1) (Float.min (timeout *. backoff) max_timeout)
                end)
        in
        arm 0 ack_timeout
  in
  let ack sim ~receiver ~sender key =
    match reliability with
    | None -> ()
    | Some _ -> Simnet.send sim ~src:receiver ~dst:sender ~size:ack_size (Ack key)
  in
  let finish_if_complete sim i =
    if received.(i) = c - 1 then begin
      (* Step 3-4: the accumulated vector is the super-share; ship it to the
         coordinator responsible for this provider. *)
      Simnet.work sim i (op_cost *. float_of_int n);
      send_data sim ~src:i ~dst:(i mod c) ~size:(message_size n) (Super acc.(i))
        ~key:(Ksuper { src = i })
    end
  in
  for i = 0 to m - 1 do
    Simnet.on_receive net i (fun sim ~src msg ->
        match msg with
        | Ack key -> Hashtbl.replace acked key ()
        | Shares { k; values } ->
            let key = Kshares { src; k } in
            ack sim ~receiver:i ~sender:src key;
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.replace seen key ();
              Simnet.work sim i (op_cost *. float_of_int n);
              for j = 0 to n - 1 do
                acc.(i).(j) <- Modarith.add q acc.(i).(j) values.(j)
              done;
              received.(i) <- received.(i) + 1;
              finish_if_complete sim i
            end
        | Super values ->
            let key = Ksuper { src } in
            ack sim ~receiver:i ~sender:src key;
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.replace seen key ();
              let r = i in
              Simnet.work sim i (op_cost *. float_of_int n);
              for j = 0 to n - 1 do
                coordinator_shares.(r).(j) <- Modarith.add q coordinator_shares.(r).(j) values.(j)
              done;
              coord_received.(r) <- coord_received.(r) + 1
            end);
    Simnet.at net ~delay:0.0 i (fun sim ->
        (* Steps 1-2: split every private value into c shares; keep share 0,
           send share k to the k-th successor. *)
        let my_rng = provider_rngs.(i) in
        Simnet.work sim i (op_cost *. float_of_int (n * c));
        let vectors = Array.init c (fun _ -> Array.make n 0) in
        for j = 0 to n - 1 do
          let shares = Additive.share my_rng ~q ~c inputs.(i).(j) in
          Array.iteri (fun k s -> vectors.(k).(j) <- s) shares
        done;
        for j = 0 to n - 1 do
          acc.(i).(j) <- Modarith.add q acc.(i).(j) vectors.(0).(j)
        done;
        for k = 1 to c - 1 do
          send_data sim ~src:i ~dst:((i + k) mod m) ~size:(message_size n) (Shares { k; values = vectors.(k) })
            ~key:(Kshares { src = i; k })
        done;
        finish_if_complete sim i)
  done;
  Simnet.run net;
  Array.iteri
    (fun r got ->
      if got <> coord_expect.(r) then
        failwith (Printf.sprintf "Secsumshare.run: coordinator %d got %d of %d super-shares" r got
                    coord_expect.(r)))
    coord_received;
  { coordinator_shares; net = Simnet.metrics net; retransmissions = !retransmissions }

(* --- Fault-tolerant variant: same protocol, but faults are survivable and
   failures are detected instead of raised. --- *)

type report = {
  suspects : int list;
  stalled : int list;
  retransmissions : int;
  duplicates : int;
  protocol_time : float;
  net : Simnet.metrics;
}

type ft_result = {
  shares : int array array option;
  report : report;
}

let run_ft ?config ?plan ?(reliability = default_reliability) ?(deadline = 0.25) rng
    ~inputs ~c ~q =
  let m, n = validate_inputs ~fn:"Secsumshare.run_ft" inputs ~c ~q in
  if deadline <= 0.0 then invalid_arg "Secsumshare.run_ft: deadline must be > 0";
  let net = Simnet.create ?config ?plan ~nodes:m () in
  let acc = Array.init m (fun _ -> Array.make n 0) in
  let received = Array.make m 0 in
  let coordinator_shares = Array.init c (fun _ -> Array.make n 0) in
  let coord_expect = Array.make c 0 in
  for i = 0 to m - 1 do
    coord_expect.(i mod c) <- coord_expect.(i mod c) + 1
  done;
  let coord_received = Array.make c 0 in
  let seen : (key, unit) Hashtbl.t = Hashtbl.create 64 in
  let acked : (key, unit) Hashtbl.t = Hashtbl.create 64 in
  (* Failure-detector state.  [blamed] holds direct evidence (retransmission
     budget exhausted toward a node, or a node's shares missing at a
     deadline).  [stalled] marks live victims: providers that could not emit
     their super-share because a predecessor failed — the coordinator must
     not mistake them for dead. *)
  let blamed : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let stalled = Array.make m false in
  let missing_super = Array.make m false in
  let retransmissions = ref 0 in
  let duplicates = ref 0 in
  let last_progress = ref 0.0 in
  let finish_time = ref 0.0 in
  let complete = ref false in
  let provider_rngs = Array.init m (fun _ -> Rng.split rng) in
  let send_data sim ~src ~dst ~size msg ~key =
    Simnet.send sim ~src ~dst ~size msg;
    let rec arm attempt timeout =
      Simnet.at sim ~delay:timeout src (fun sim ->
          if (not (Hashtbl.mem acked key)) && not !complete then
            if attempt < reliability.max_retries then begin
              incr retransmissions;
              Simnet.send sim ~src ~dst ~size msg;
              arm (attempt + 1) (Float.min (timeout *. reliability.backoff) reliability.max_timeout)
            end
            else Hashtbl.replace blamed dst ())
    in
    arm 0 reliability.ack_timeout
  in
  let progress sim =
    if Simnet.now sim > !last_progress then last_progress := Simnet.now sim
  in
  let finish_if_complete sim i =
    if received.(i) = c - 1 then begin
      Simnet.work sim i (op_cost *. float_of_int n);
      send_data sim ~src:i ~dst:(i mod c) ~size:(message_size n) (Super acc.(i))
        ~key:(Ksuper { src = i })
    end
  in
  for i = 0 to m - 1 do
    Simnet.on_receive net i (fun sim ~src msg ->
        match msg with
        | Ack key -> Hashtbl.replace acked key ()
        | Shares { k; values } ->
            let key = Kshares { src; k } in
            Simnet.send sim ~src:i ~dst:src ~size:ack_size (Ack key);
            if Hashtbl.mem seen key then incr duplicates
            else begin
              Hashtbl.replace seen key ();
              progress sim;
              Simnet.work sim i (op_cost *. float_of_int n);
              for j = 0 to n - 1 do
                acc.(i).(j) <- Modarith.add q acc.(i).(j) values.(j)
              done;
              received.(i) <- received.(i) + 1;
              finish_if_complete sim i
            end
        | Super values ->
            let key = Ksuper { src } in
            Simnet.send sim ~src:i ~dst:src ~size:ack_size (Ack key);
            if Hashtbl.mem seen key then incr duplicates
            else begin
              Hashtbl.replace seen key ();
              progress sim;
              let r = i in
              Simnet.work sim i (op_cost *. float_of_int n);
              for j = 0 to n - 1 do
                coordinator_shares.(r).(j) <- Modarith.add q coordinator_shares.(r).(j) values.(j)
              done;
              coord_received.(r) <- coord_received.(r) + 1;
              if coord_received.(r) = coord_expect.(r)
                 && Array.for_all2 ( = ) coord_received coord_expect
              then begin
                complete := true;
                finish_time := Simnet.now sim
              end
            end);
    Simnet.at net ~delay:0.0 i (fun sim ->
        let my_rng = provider_rngs.(i) in
        Simnet.work sim i (op_cost *. float_of_int (n * c));
        let vectors = Array.init c (fun _ -> Array.make n 0) in
        for j = 0 to n - 1 do
          let shares = Additive.share my_rng ~q ~c inputs.(i).(j) in
          Array.iteri (fun k s -> vectors.(k).(j) <- s) shares
        done;
        for j = 0 to n - 1 do
          acc.(i).(j) <- Modarith.add q acc.(i).(j) vectors.(0).(j)
        done;
        for k = 1 to c - 1 do
          send_data sim ~src:i ~dst:((i + k) mod m) ~size:(message_size n) (Shares { k; values = vectors.(k) })
            ~key:(Kshares { src = i; k })
        done;
        finish_if_complete sim i);
    (* Deadline: a provider still short of shares blames exactly the ring
       predecessors whose vectors are missing, and flags itself stalled. *)
    Simnet.at net ~delay:deadline i (fun _sim ->
        if received.(i) < c - 1 then begin
          stalled.(i) <- true;
          for k = 1 to c - 1 do
            let src = (((i - k) mod m) + m) mod m in
            if not (Hashtbl.mem seen (Kshares { src; k })) then Hashtbl.replace blamed src ()
          done
        end)
  done;
  (* Coordinators check for missing super-shares after the providers'
     deadline has had a chance to fire. *)
  for r = 0 to c - 1 do
    Simnet.at net ~delay:(2.0 *. deadline) r (fun _sim ->
        if coord_received.(r) < coord_expect.(r) then
          for i = 0 to m - 1 do
            if i mod c = r && not (Hashtbl.mem seen (Ksuper { src = i })) then
              missing_super.(i) <- true
          done)
  done;
  Simnet.run net;
  let stalled_list = List.filter (fun i -> stalled.(i)) (List.init m Fun.id) in
  let suspects =
    let direct = Hashtbl.fold (fun i () acc -> i :: acc) blamed [] in
    let missing =
      (* A stalled provider's super-share is missing because of someone
         else's failure; do not suspect it without direct evidence. *)
      List.filter (fun i -> missing_super.(i) && not stalled.(i)) (List.init m Fun.id)
    in
    List.sort_uniq compare (direct @ missing)
  in
  let report =
    {
      suspects;
      stalled = stalled_list;
      retransmissions = !retransmissions;
      duplicates = !duplicates;
      protocol_time = (if !complete then !finish_time else !last_progress);
      net = Simnet.metrics net;
    }
  in
  { shares = (if !complete then Some coordinator_shares else None); report }

let reconstruct ~q shares =
  match Array.length shares with
  | 0 -> [||]
  | _ ->
      let n = Array.length shares.(0) in
      Array.init n (fun j ->
          Array.fold_left (fun acc vec -> Modarith.add q acc vec.(j)) 0 shares)
