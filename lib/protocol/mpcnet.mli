(** GMW executed over the simulated network, round by round.

    {!Eppi_mpc.Gmw.execute} evaluates the protocol in-process and reports
    closed-form communication statistics; the Fig. 6 experiments then price
    those with the {!Eppi_mpc.Cost} model.  This module instead {i runs} the
    protocol on {!Eppi_simnet.Simnet}: each party is a network node holding
    XOR shares, every AND layer is a broadcast round of masked bits, and the
    execution time {i emerges} from the latency/bandwidth/compute model
    rather than being estimated.  The test suite uses it to validate both
    the functional agreement with the in-process engine and the cost
    model's round structure (measured rounds = AND depth + output round).

    Beaver triples are pre-distributed by the dealer before time zero, as
    in the in-process engine (the offline phase is out of scope).

    {!execute} assumes a perfect network and raises if the run stalls.
    {!execute_reliable} wraps every protocol message in a reliability
    sublayer — sequence numbers, acks, retransmission with exponential
    backoff — plus a timeout failure detector, and returns a typed outcome
    instead of raising.  Because the dealer draws all randomness before the
    network exists, a reliable run that completes produces outputs
    bit-identical to the lossless run with the same rng. *)

open Eppi_prelude
open Eppi_circuit

type result = {
  outputs : bool array;
  rounds : int;  (** Broadcast rounds: one per AND layer plus the output round. *)
  net : Eppi_simnet.Simnet.metrics;
}

val execute :
  ?config:Eppi_simnet.Simnet.config ->
  Rng.t ->
  Circuit.t ->
  inputs:bool array array ->
  result
(** @raise Invalid_argument on missing input bits or fewer than 2 parties. *)

(** {1 Reliable transport} *)

type reliability = {
  rto : float;  (** Initial retransmission timeout, seconds. *)
  backoff : float;  (** Multiplier applied to the rto after each retry. *)
  max_rto : float;  (** Cap on the backed-off rto. *)
  max_retries : int;
      (** Unacked after this many retransmissions => the destination is
          declared dead. *)
  round_deadline : float;
      (** A party that entered a round this long ago and is still missing
          contributions blames the missing parties. *)
}

val default_reliability : reliability
(** 5 ms initial rto, x2 backoff capped at 80 ms, 12 retries, 250 ms round
    deadline — sized for {!Eppi_simnet.Simnet.default_config} latency. *)

type outcome =
  | Outputs of bool array  (** All rounds completed; same value as {!execute}. *)
  | Parties_failed of int list
      (** The run stalled; the listed parties were blamed by the failure
          detector (retransmissions exhausted, or missing at a deadline). *)

type reliable_result = {
  outcome : outcome;
  rounds : int;
  retransmissions : int;  (** Data packets re-sent after an rto expiry. *)
  duplicates : int;  (** Received copies suppressed by sequence numbers. *)
  retried_rounds : int;  (** Rounds in which at least one retransmission happened. *)
  suspects : int list;
      (** Every party ever blamed.  May be non-empty even on [Outputs] —
          a deadline that fired late is a false alarm, not a failure. *)
  protocol_time : float;
      (** Sim time of the last fresh protocol progress (completion instant on
          success).  Unlike [net.completion_time] it excludes trailing
          retransmission timers, so it is comparable to {!execute}'s
          completion time. *)
  net : Eppi_simnet.Simnet.metrics;
}

val execute_reliable :
  ?config:Eppi_simnet.Simnet.config ->
  ?plan:Eppi_simnet.Simnet.fault_plan ->
  ?reliability:reliability ->
  Rng.t ->
  Circuit.t ->
  inputs:bool array array ->
  reliable_result
(** Run GMW under the given fault plan.  Completes (and matches the
    lossless outputs bit for bit) as long as every message eventually gets
    through; returns [Parties_failed] instead of raising when it cannot.
    @raise Invalid_argument on missing input bits or fewer than 2 parties. *)
