open Eppi_prelude
module Circuit = Eppi_circuit.Circuit
module Compile = Eppi_sfdl.Compile
module Programs = Eppi_sfdl.Programs
module Gmw = Eppi_mpc.Gmw
module Cost = Eppi_mpc.Cost
module Trace = Eppi_obs.Trace

type result = {
  common : bool array;
  frequencies : int option array;
  n_common : int;
  circuit_stats : Circuit.stats;
  comm : Gmw.comm_stats;
  time : float;
}

type transport = [ `Cost_model | `Simnet of Eppi_simnet.Simnet.config ]
type strategy = [ `Monolithic | `Sharded ]

let integer_threshold ~policy ~epsilon ~m =
  if epsilon <= 0.0 then m + 1
  else begin
    let common_at f =
      Eppi.Policy.is_common policy ~sigma:(float_of_int f /. float_of_int m) ~epsilon ~m
    in
    (* β* is monotone in the frequency: binary-search the first common count. *)
    if not (common_at m) then m + 1
    else begin
      let lo = ref 0 and hi = ref m in
      (* Invariant: common_at !hi, and !lo is below the first common count. *)
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if common_at mid then hi := mid else lo := mid
      done;
      if common_at !lo then !lo else !hi
    end
  end

let validate ~shares ~thresholds =
  let c = Array.length shares in
  if c < 2 then invalid_arg "Countbelow.run: need at least 2 coordinators";
  let n = Array.length shares.(0) in
  Array.iter
    (fun v -> if Array.length v <> n then invalid_arg "Countbelow.run: ragged share vectors")
    shares;
  if Array.length thresholds <> n then invalid_arg "Countbelow.run: thresholds length mismatch";
  (c, n)

(* Pull the typed common/freq/count outputs out of a raw output bit vector. *)
let decode_counts compiled raw_outputs =
  let outputs = Compile.decode_outputs compiled raw_outputs in
  let common =
    match Compile.lookup_output outputs "common" with
    | Compile.Dbools bs -> bs
    | _ -> failwith "Countbelow.run: bad common output shape"
  in
  let freqs =
    match Compile.lookup_output outputs "freq" with
    | Compile.Dints fs -> fs
    | _ -> failwith "Countbelow.run: bad freq output shape"
  in
  let count =
    match Compile.lookup_output outputs "count" with
    | Compile.Dint k -> k
    | _ -> failwith "Countbelow.run: bad count output shape"
  in
  (common, freqs, count)

(* ---------- monolithic path ---------- *)

(* One count_below circuit over all n identities, walked by a single GMW
   interpreter (optionally round-by-round over the simulated network).  This
   is the paper-literal formulation and the reference the sharded pipeline
   is tested against. *)
let run_monolithic ~network ~transport rng ~shares ~q ~c ~clamped =
  Trace.begin_span "countbelow.monolithic";
  let source = Programs.count_below ~c ~q:(Modarith.to_int q) ~thresholds:clamped in
  let compiled = Compile.compile_source source in
  let inputs =
    Compile.encode_inputs compiled
      (List.init c (fun i -> (Printf.sprintf "s%d" i, Compile.Dints shares.(i))))
  in
  let raw_outputs, comm, emergent_time =
    match transport with
    | `Cost_model ->
        let mpc = Gmw.execute rng compiled.circuit ~inputs in
        (mpc.outputs, mpc.comm, None)
    | `Simnet config ->
        let mpc = Mpcnet.execute ~config rng compiled.circuit ~inputs in
        let stats = Circuit.stats compiled.circuit in
        let estimate =
          Gmw.comm_estimate ~parties:(Array.length shares) stats
            ~outputs:(Array.length (Circuit.outputs compiled.circuit))
        in
        (mpc.outputs, estimate, Some mpc.net.completion_time)
  in
  let common, freqs, count = decode_counts compiled raw_outputs in
  let stats = Circuit.stats compiled.circuit in
  let outputs_bits = Array.length (Circuit.outputs compiled.circuit) in
  let time =
    match emergent_time with
    | Some t -> t
    | None -> Cost.estimate ~network ~parties:c ~outputs:outputs_bits stats
  in
  Trace.end_span "countbelow.monolithic"
    ~args:
      [
        ("identities", Array.length clamped);
        ("gates", stats.size);
        ("and_depth", stats.and_depth);
        ("messages", comm.messages);
        ("bytes", comm.bytes);
      ];
  {
    common;
    frequencies = Array.mapi (fun j f -> if common.(j) then None else Some f) freqs;
    n_common = count;
    circuit_stats = stats;
    comm;
    time;
  }

(* ---------- sharded pipeline ---------- *)

(* Per-identity comparator circuits share one process-wide memo cache: the
   generated source is a pure function of (c, q, threshold), so across a
   whole construction — and across repeated benchmark runs — each distinct
   threshold compiles exactly once. *)
let circuit_cache = Compile.create_cache ()

type shard_circuit = {
  compiled : Compile.compiled;
  stats : Circuit.stats;
  out_bits : int;
}

(* The per-identity comparator circuits are independent: evaluate them on
   the domain pool.  Results are index-addressed and each shard draws from
   its own pre-split rng, so outputs, stats and comm accounting are
   bit-identical at every pool size (and to the sequential fallback). *)
let run_sharded ~network ~pool rng ~shares ~q ~c ~n ~clamped =
  let qi = Modarith.to_int q in
  (* Compile (or fetch) the comparator for each distinct threshold up front,
     sequentially: the parallel phase then only reads. *)
  let by_threshold = Hashtbl.create 8 in
  Trace.span "countbelow.compile" (fun () ->
      Array.iter
        (fun t ->
          if not (Hashtbl.mem by_threshold t) then begin
            let compiled =
              Compile.compile_source_cached circuit_cache
                (Programs.count_below ~c ~q:qi ~thresholds:[| t |])
            in
            let stats = Circuit.stats compiled.circuit in
            let out_bits = Array.length (Circuit.outputs compiled.circuit) in
            Hashtbl.replace by_threshold t { compiled; stats; out_bits }
          end)
        clamped);
  (* One child rng per shard, split in shard order before entering the pool:
     the streams do not depend on the execution schedule. *)
  let shard_rngs = Array.init n (fun _ -> Rng.split rng) in
  let eval j =
    let sc = Hashtbl.find by_threshold clamped.(j) in
    (* One span per identity shard, on whichever domain evaluates it; the
       nested gmw.execute span carries the traffic accounting. *)
    Trace.span "countbelow.shard"
      ~args:
        [ ("identity", j); ("gates", sc.stats.size); ("and_depth", sc.stats.and_depth) ]
      (fun () ->
        let inputs =
          Compile.encode_inputs sc.compiled
            (List.init c (fun i -> (Printf.sprintf "s%d" i, Compile.Dints [| shares.(i).(j) |])))
        in
        let mpc = Gmw.execute shard_rngs.(j) sc.compiled.circuit ~inputs in
        let outputs = Compile.decode_outputs sc.compiled mpc.outputs in
        let is_common =
          match Compile.lookup_output outputs "common" with
          | Dbools [| b |] -> b
          | _ -> failwith "Countbelow.run: bad shard common output shape"
        in
        let freq =
          match Compile.lookup_output outputs "freq" with
          | Dints [| f |] -> f
          | _ -> failwith "Countbelow.run: bad shard freq output shape"
        in
        (is_common, freq))
  in
  let shard_results = Pool.parallel_map pool eval (Array.init n Fun.id) in
  let common = Array.map fst shard_results in
  let freqs = Array.map snd shard_results in
  let n_common = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 common in
  (* Aggregate circuit accounting.  Gate and input counts sum across shards;
     the multiplicative depth is the max — the coordinators batch every
     shard's And layer into one broadcast round, exactly like the layers of
     a single wide circuit. *)
  let agg, out_bits =
    Array.fold_left
      (fun ((acc : Circuit.stats), outs) t ->
        let { stats = s; out_bits; _ } = Hashtbl.find by_threshold t in
        ( {
            Circuit.size = acc.size + s.size;
            and_gates = acc.and_gates + s.and_gates;
            xor_gates = acc.xor_gates + s.xor_gates;
            not_gates = acc.not_gates + s.not_gates;
            inputs = acc.inputs + s.inputs;
            and_depth = max acc.and_depth s.and_depth;
          },
          outs + out_bits ))
      ( { Circuit.size = 0; and_gates = 0; xor_gates = 0; not_gates = 0; inputs = 0; and_depth = 0 },
        0 )
      clamped
  in
  let comm = Gmw.comm_estimate ~parties:c agg ~outputs:out_bits in
  let time = Cost.estimate ~network ~parties:c ~outputs:out_bits agg in
  {
    common;
    frequencies = Array.mapi (fun j f -> if common.(j) then None else Some f) freqs;
    n_common;
    circuit_stats = agg;
    comm;
    time;
  }

let run ?(network = Cost.lan) ?(transport = `Cost_model) ?(pool = Pool.sequential) ?strategy
    rng ~shares ~q ~thresholds =
  let c, n = validate ~shares ~thresholds in
  if n = 0 then invalid_arg "Countbelow.run: no identities";
  let qi = Modarith.to_int q in
  let clamped = Array.map (fun t -> max 0 (min t (qi - 1))) thresholds in
  let strategy =
    match (strategy, transport) with
    | Some s, `Cost_model -> s
    | None, `Cost_model -> `Sharded
    (* The network transport replays the protocol round-by-round over the
       simulated LAN; it always walks the single circuit. *)
    | _, `Simnet _ -> `Monolithic
  in
  match strategy with
  | `Monolithic -> run_monolithic ~network ~transport rng ~shares ~q ~c ~clamped
  | `Sharded -> run_sharded ~network ~pool rng ~shares ~q ~c ~n ~clamped

(* ---------- reliable path (fault-tolerant construction) ---------- *)

type reliable = {
  outcome : [ `Done of result | `Coordinators_failed of int list ];
  retransmissions : int;
  duplicates : int;
  retried_rounds : int;
  suspects : int list;
}

let run_reliable ?config ?plan ?reliability rng ~shares ~q ~thresholds =
  let c, n = validate ~shares ~thresholds in
  if n = 0 then invalid_arg "Countbelow.run: no identities";
  let qi = Modarith.to_int q in
  let clamped = Array.map (fun t -> max 0 (min t (qi - 1))) thresholds in
  Trace.begin_span "countbelow.reliable";
  let source = Programs.count_below ~c ~q:qi ~thresholds:clamped in
  let compiled = Compile.compile_source_cached circuit_cache source in
  let inputs =
    Compile.encode_inputs compiled
      (List.init c (fun i -> (Printf.sprintf "s%d" i, Compile.Dints shares.(i))))
  in
  let mpc = Mpcnet.execute_reliable ?config ?plan ?reliability rng compiled.circuit ~inputs in
  let stats = Circuit.stats compiled.circuit in
  let out_bits = Array.length (Circuit.outputs compiled.circuit) in
  Trace.end_span "countbelow.reliable"
    ~args:
      [
        ("identities", n);
        ("gates", stats.size);
        ("retransmissions", mpc.retransmissions);
        ("duplicates", mpc.duplicates);
        ("failed", match mpc.outcome with Mpcnet.Outputs _ -> 0 | _ -> 1);
      ];
  let outcome =
    match mpc.outcome with
    | Mpcnet.Parties_failed dead -> `Coordinators_failed dead
    | Mpcnet.Outputs raw ->
        let common, freqs, count = decode_counts compiled raw in
        `Done
          {
            common;
            frequencies = Array.mapi (fun j f -> if common.(j) then None else Some f) freqs;
            n_common = count;
            circuit_stats = stats;
            comm = Gmw.comm_estimate ~parties:c stats ~outputs:out_bits;
            time = mpc.protocol_time;
          }
  in
  {
    outcome;
    retransmissions = mpc.retransmissions;
    duplicates = mpc.duplicates;
    retried_rounds = mpc.retried_rounds;
    suspects = mpc.suspects;
  }
