(** The SecSumShare protocol (paper Section IV-B, Figure 3).

    Given m providers each holding a private vector of values in Z_q (the
    membership bits, one per identity), the protocol produces c share
    vectors, held by c coordinator providers, whose element-wise sum mod q
    equals the element-wise sum of all private inputs — without any party
    learning anything beyond its own inputs (collusion below c reveals
    nothing; Theorem 4.1).

    The four steps, run over the simulated network with all identities
    batched into one message per edge:

    + {b Generate}: provider i splits each private value into c additive
      shares;
    + {b Distribute}: the k-th share goes to the k-th ring successor
      p_((i+k) mod m); the 0-th stays local;
    + {b Sum}: each provider adds the shares it received into a
      super-share vector;
    + {b Aggregate}: provider i sends its super-shares to coordinator
      (i mod c); coordinator r accumulates them into the output vector
      s(r, ·).

    Requires m >= c >= 2.

    {!run} is the historical strict entry point: it raises if the run does
    not complete.  {!run_ft} is the fault-tolerant variant used by
    {!Eppi_protocol.Construct.run_ft}: it accepts a
    {!Eppi_simnet.Simnet.fault_plan}, always runs the reliability layer,
    and on failure reports which providers a timeout-based failure detector
    blames rather than raising. *)

open Eppi_prelude

type result = {
  coordinator_shares : int array array;  (** c x n: s(r, j). *)
  net : Eppi_simnet.Simnet.metrics;
  retransmissions : int;  (** Data messages resent by the reliability layer. *)
}

(** Loss handling for the share and super-share messages.  With a lossy
    {!Eppi_simnet.Simnet.config} the bare protocol cannot complete (a
    missing share silently corrupts the sum, so the run fails fast
    instead); [reliability] adds a stop-and-wait layer — every data message
    is acknowledged, deduplicated at the receiver, and resent after
    [ack_timeout], backing off exponentially, up to [max_retries] times. *)
type reliability = {
  ack_timeout : float;  (** Seconds before the first resend. *)
  max_retries : int;
  backoff : float;  (** Timeout multiplier per retry. *)
  max_timeout : float;  (** Cap on the backed-off timeout. *)
}

val default_reliability : reliability
(** 10 ms initial timeout, x2 backoff capped at 80 ms, 25 retries: survives
    heavy simulated loss on a LAN. *)

val run :
  ?config:Eppi_simnet.Simnet.config ->
  ?reliability:reliability ->
  Rng.t ->
  inputs:int array array ->
  c:int ->
  q:Modarith.modulus ->
  result
(** [inputs.(i).(j)] is provider i's private value for identity j (all
    providers must supply equally long vectors with values in [0, q)).
    @raise Invalid_argument on shape violations or [m < c] or [c < 2].
    @raise Failure if messages were lost and either no [reliability] layer
    was configured or its retry budget was exhausted. *)

(** {1 Fault-tolerant variant} *)

(** What the failure detector saw. *)
type report = {
  suspects : int list;
      (** Providers blamed with direct evidence: an exhausted
          retransmission budget toward them, their share vectors missing at
          a provider's deadline, or their super-share missing at a
          coordinator's deadline while they themselves were not stalled. *)
  stalled : int list;
      (** Live victims: providers that missed their deadline because a
          predecessor failed.  Never counted as suspects without direct
          evidence — excluding them would punish survivors. *)
  retransmissions : int;
  duplicates : int;  (** Received copies suppressed by deduplication. *)
  protocol_time : float;
      (** Sim time of the last fresh protocol progress (completion instant
          when complete); excludes trailing retransmission timers. *)
  net : Eppi_simnet.Simnet.metrics;
}

type ft_result = {
  shares : int array array option;
      (** [Some] iff every coordinator received every expected super-share;
          then the value equals what {!run} would return. *)
  report : report;
}

val run_ft :
  ?config:Eppi_simnet.Simnet.config ->
  ?plan:Eppi_simnet.Simnet.fault_plan ->
  ?reliability:reliability ->
  ?deadline:float ->
  Rng.t ->
  inputs:int array array ->
  c:int ->
  q:Modarith.modulus ->
  ft_result
(** Like {!run} under the given fault plan, with the reliability layer
    always on.  [deadline] (default 0.25 s) is the failure-detector
    horizon: providers check for missing shares at [deadline], coordinators
    for missing super-shares at [2 * deadline].
    @raise Invalid_argument on shape violations, [m < c], [c < 2], or a
    non-positive deadline. *)

val reconstruct : q:Modarith.modulus -> int array array -> int array
(** Element-wise sum of the coordinator share vectors — the plain sums the
    protocol secretly computes.  Exposed for tests and for the CountBelow
    stage's reference path. *)
