(** End-to-end distributed ε-PPI construction (paper Section IV).

    Orchestrates the two phases over the simulated network:

    + {b β calculation}: SecSumShare among all m providers (ring protocol,
      all identities batched) → CountBelow via generic MPC among the c
      coordinators → public release of λ and the final per-identity β
      (common and mixed identities at 1, others at the policy's β* computed
      from the released non-sensitive frequency);
    + {b Randomized publication}: every provider locally flips its negative
      bits at rate β_j.

    The result carries both the functional output (the published index,
    exactly distribution-equal to the centralized {!Eppi.Construct.run}) and
    the performance metrics the Fig. 6 experiments read: simulated
    start-to-end time, message/byte counts, and the MPC circuit size. *)

open Eppi_prelude

type metrics = {
  secsumshare_time : float;
  mpc_time : float;
  publication_time : float;
  total_time : float;  (** Start-to-end simulated seconds. *)
  messages : int;
  bytes : int;
  circuit_stats : Eppi_circuit.Circuit.stats;
  mpc_comm : Eppi_mpc.Gmw.comm_stats;
}

type result = {
  index : Eppi.Index.t;
  betas : float array;
  common : bool array;
  mixed : bool array;
  lambda : float;
  xi : float;
  metrics : metrics;
}

val modulus_for : int -> Modarith.modulus
(** Smallest prime above [m + 1]: large enough that no membership sum wraps
    and the "never common" threshold m+1 stays representable. *)

val run :
  ?config:Eppi_simnet.Simnet.config ->
  ?reliability:Secsumshare.reliability ->
  ?network:Eppi_mpc.Cost.network ->
  ?transport:Countbelow.transport ->
  ?pool:Pool.t ->
  ?strategy:Countbelow.strategy ->
  ?c:int ->
  ?mixing:Eppi.Mixing.mode ->
  Rng.t ->
  membership:Bitmatrix.t ->
  epsilons:float array ->
  policy:Eppi.Policy.t ->
  result
(** [c] defaults to 3 (the paper's configuration).  The matrix is
    owner-major.

    [pool] and [strategy] select the CountBelow execution pipeline (see
    {!Countbelow.run}); every phase draws from its own {!Rng.split} child
    stream, so for a fixed seed the construction output — [common],
    [betas], the published [index] — is bit-identical across strategies and
    pool sizes.
    @raise Invalid_argument on dimension mismatches, [c < 2] or [m < c]. *)

val beta_phase_time_estimate :
  ?network:Eppi_mpc.Cost.network -> m:int -> identities:int -> c:int -> unit -> float
(** Closed-form estimate of the β-calculation time (SecSumShare analytic
    cost + CountBelow cost model) used by the Fig. 6 sweeps at scales where
    running the full simulation per point would dominate the harness. *)
