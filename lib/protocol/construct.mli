(** End-to-end distributed ε-PPI construction (paper Section IV).

    Orchestrates the two phases over the simulated network:

    + {b β calculation}: SecSumShare among all m providers (ring protocol,
      all identities batched) → CountBelow via generic MPC among the c
      coordinators → public release of λ and the final per-identity β
      (common and mixed identities at 1, others at the policy's β* computed
      from the released non-sensitive frequency);
    + {b Randomized publication}: every provider locally flips its negative
      bits at rate β_j.

    The result carries both the functional output (the published index,
    exactly distribution-equal to the centralized {!Eppi.Construct.run}) and
    the performance metrics the Fig. 6 experiments read: simulated
    start-to-end time, message/byte counts, and the MPC circuit size. *)

open Eppi_prelude

type metrics = {
  secsumshare_time : float;
  mpc_time : float;
  publication_time : float;
  total_time : float;  (** Start-to-end simulated seconds. *)
  messages : int;
  bytes : int;
  circuit_stats : Eppi_circuit.Circuit.stats;
  mpc_comm : Eppi_mpc.Gmw.comm_stats;
}

type result = {
  index : Eppi.Index.t;
  betas : float array;
  common : bool array;
  mixed : bool array;
  lambda : float;
  xi : float;
  metrics : metrics;
}

val modulus_for : int -> Modarith.modulus
(** Smallest prime above [m + 1]: large enough that no membership sum wraps
    and the "never common" threshold m+1 stays representable. *)

val run :
  ?config:Eppi_simnet.Simnet.config ->
  ?reliability:Secsumshare.reliability ->
  ?network:Eppi_mpc.Cost.network ->
  ?transport:Countbelow.transport ->
  ?pool:Pool.t ->
  ?strategy:Countbelow.strategy ->
  ?c:int ->
  ?mixing:Eppi.Mixing.mode ->
  Rng.t ->
  membership:Bitmatrix.t ->
  epsilons:float array ->
  policy:Eppi.Policy.t ->
  result
(** [c] defaults to 3 (the paper's configuration).  The matrix is
    owner-major.

    [pool] and [strategy] select the CountBelow execution pipeline (see
    {!Countbelow.run}); every phase draws from its own {!Rng.split} child
    stream, so for a fixed seed the construction output — [common],
    [betas], the published [index] — is bit-identical across strategies and
    pool sizes.
    @raise Invalid_argument on dimension mismatches, [c < 2] or [m < c]. *)

(** {1 Fault-tolerant construction}

    {!run} assumes the fault-free network of the paper's experiments;
    {!run_ft} runs the same two phases under a
    {!Eppi_simnet.Simnet.fault_plan} with the reliability sublayer always
    on, and turns detected provider failures into graceful degradation:
    when the failure detector declares providers dead, the whole β phase is
    re-run over the surviving provider set (thresholds, modulus and σ all
    recomputed for m' = m - |excluded|), so every surviving owner's
    published row still satisfies its ε false-positive guarantee — over the
    survivors.  See docs/ROBUSTNESS.md. *)

(** What happened, accumulated across retry attempts. *)
type fault_report = {
  excluded : int list;  (** Original provider ids declared dead. *)
  survivors : int list;
      (** Original ids of the providers in the final run, in order: column k
          of the result's index belongs to provider [List.nth survivors k]. *)
  attempts : int;  (** β-phase attempts, counting the successful one. *)
  sss_retransmissions : int;
  mpc_retransmissions : int;
  duplicates : int;  (** Duplicate deliveries suppressed across both stages. *)
  retried_rounds : int;  (** MPC rounds that needed at least one retransmission. *)
}

type outcome =
  | Complete of result * fault_report
      (** No provider was excluded (loss, duplication and stragglers may
          still have been survived — see the report's counters).  The index
          spans all m providers. *)
  | Degraded of result * fault_report
      (** Some providers were excluded; the index spans the survivors'
          columns only, and β/ε guarantees hold over the survivor set. *)
  | Failed of string * fault_report
      (** The construction could not complete: attempts exhausted, fewer
          than c survivors, or a stall with no identifiable culprit. *)

val run_ft :
  ?config:Eppi_simnet.Simnet.config ->
  ?sss_plan:Eppi_simnet.Simnet.fault_plan ->
  ?mpc_plan:Eppi_simnet.Simnet.fault_plan ->
  ?reliability:Secsumshare.reliability ->
  ?mpc_reliability:Mpcnet.reliability ->
  ?deadline:float ->
  ?max_attempts:int ->
  ?network:Eppi_mpc.Cost.network ->
  ?pool:Pool.t ->
  ?strategy:Countbelow.strategy ->
  ?c:int ->
  ?mixing:Eppi.Mixing.mode ->
  Rng.t ->
  membership:Bitmatrix.t ->
  epsilons:float array ->
  policy:Eppi.Policy.t ->
  outcome
(** Both fault plans are expressed in {e original provider id} space:
    [sss_plan] drives the m-provider ring net, [mpc_plan] the c-coordinator
    MPC net (coordinator k is the k-th surviving provider; plan entries for
    other providers are ignored).  On each retry the plans are re-projected
    onto the survivor set, so a crashed provider's faults disappear with it.
    When [mpc_plan] is omitted the CountBelow stage runs on the in-process
    engine ([pool]/[strategy] as in {!run}); outputs are bit-identical
    either way.  Determinism: the outcome is a pure function of (rng seed,
    fault plans, inputs).  [max_attempts] defaults to 3, [deadline] is the
    SecSumShare failure-detector horizon (default 0.25 s).
    @raise Invalid_argument on dimension mismatches, [c < 2] or [m < c]. *)

val beta_phase_time_estimate :
  ?network:Eppi_mpc.Cost.network -> m:int -> identities:int -> c:int -> unit -> float
(** Closed-form estimate of the β-calculation time (SecSumShare analytic
    cost + CountBelow cost model) used by the Fig. 6 sweeps at scales where
    running the full simulation per point would dominate the harness. *)
