(** Read-optimized postings compiled from a published index.

    [Eppi.Index.query] scans a whole Bitmatrix row — O(m) per call no matter
    how sparse the row is.  The online serving path instead compiles the
    index once into two bit-packed posting arrays:

    - forward: owner -> the ascending provider ids of her published row
      (exactly [Eppi.Index.query], the QueryPPI contract);
    - inverse: provider -> the ascending owner ids published at it, opening
      the provider-side audit workload ("which identities does my column
      expose?") that a row-major matrix cannot answer efficiently.

    Each entry is packed at the minimal fixed bit width for its id space, so
    a query decodes only the entries that exist: O(result) instead of O(m),
    and the whole store is two flat buffers plus two offset tables — no
    per-query allocation beyond the result list. *)

type t

val of_index : Eppi.Index.t -> t
val of_matrix : Eppi_prelude.Bitmatrix.t -> t
(** Rows are owners, columns providers, as everywhere in the repo. *)

val owners : t -> int
val providers : t -> int

val query : t -> owner:int -> int list
(** Ascending provider ids; identical to [Eppi.Index.query] on the source
    index.  @raise Invalid_argument on an out-of-range owner. *)

val query_count : t -> owner:int -> int
(** O(1): the length of the owner's posting list. *)

val iter_query : t -> owner:int -> (int -> unit) -> unit
(** Allocation-free traversal of the owner's posting list, ascending. *)

val owners_of : t -> provider:int -> int list
(** The inverse postings: ascending owner ids whose published rows list
    [provider].  @raise Invalid_argument on an out-of-range provider. *)

val audit_count : t -> provider:int -> int
(** O(1): how many identities the provider's column exposes. *)

val entry_bits : t -> int * int
(** (forward, inverse) packed bit width per entry. *)

val memory_bytes : t -> int
(** Total bytes held by the packed buffers and offset tables. *)
