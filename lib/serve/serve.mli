(** The online locator query engine — QueryPPI as a service.

    Layered on a published {!Eppi.Index}: requests are routed by owner id to
    one of [shards] independent shard states, each holding its own result
    cache (LRU of materialized posting lists), negative cache of unknown
    owner ids, token bucket and metrics.  All shared data (the compiled
    {!Postings} store) is read-only, and each shard's mutable state has a
    single writer, so batch replay across an {!Eppi_prelude.Pool} of
    domains runs without locks or contention.

    The published store sits behind a generation-tagged atomic slot:
    {!republish} installs a freshly constructed index while the shards keep
    serving (no drain), and each shard invalidates its caches the first
    time it observes the new generation.  An optional
    {!Eppi_fuzzy.Resolver} rides in the same slot, so approximate-identity
    lookups ({!query_fuzzy}) always score against signatures of the same
    vintage as the postings they fan out into.

    Correctness contract: for every in-range owner, the engine's reply
    (cached or not) is exactly [Eppi.Index.query index ~owner]; every
    request is answered with an explicit {!reply} — shed requests are
    reported, never silently dropped. *)

open Eppi_prelude

type config = {
  shards : int;  (** Independent shard states (>= 1). *)
  cache_capacity : int;  (** Result-cache entries per shard; 0 disables. *)
  negative_capacity : int;  (** Negative-cache entries per shard; 0 disables. *)
  admission : Admission.config option;  (** [None]: admit everything. *)
  latency_sample_every : int;
      (** Record the latency of every k-th query per shard (1 = all).
          Sampling keeps the clock calls off the common path. *)
}

val default_config : config
(** 1 shard, 4096-entry cache, 1024-entry negative cache, no admission
    control, latency sampled every 16th query. *)

type reply =
  | Providers of int list  (** The QueryPPI answer, ascending provider ids. *)
  | Unknown_owner  (** The owner id is outside the published index. *)
  | Shed_rate_limit  (** Rejected by the shard's token bucket. *)
  | Shed_queue_full  (** Rejected by the bounded per-shard queue (batch). *)

type t

val create : ?config:config -> ?resolver:Eppi_fuzzy.Resolver.t -> Eppi.Index.t -> t
(** Compile the index into the read-optimized store and set up shard
    state.  [resolver], when given, enables {!query_fuzzy} against the
    roster it was built from.  @raise Invalid_argument on a non-positive
    shard count, negative capacities or a non-positive sample interval. *)

val of_postings : ?config:config -> ?resolver:Eppi_fuzzy.Resolver.t -> Postings.t -> t
(** Reuse an already-compiled store (e.g. shared across engines). *)

val postings : t -> Postings.t
(** The currently published store (the latest generation's). *)

val resolver : t -> Eppi_fuzzy.Resolver.t option
(** The currently published resolver, same generation as {!postings}. *)

val shards : t -> int

val generation : t -> int
(** The current index generation: 1 at {!create}, +1 per {!republish}. *)

val republish : ?resolver:Eppi_fuzzy.Resolver.t -> t -> Postings.t -> int
(** Atomically install a new published store without draining the shards
    and return its generation.  Requests already past their generation
    check complete against the index they started on; every later request
    (on any shard) serves from the new one.  Each shard drops its result
    and negative caches the first time it sees the new generation
    (counted in {!Metrics} as [swaps]).  The resolver swaps in the same
    atomic store as the postings; omitted, the currently installed one is
    carried over — either way readers see a consistent
    (postings, resolver) pair.  Safe to call from any domain while
    {!query}/{!run}/{!replay} execute. *)

val republish_index : ?resolver:Eppi_fuzzy.Resolver.t -> t -> Eppi.Index.t -> int
(** {!republish} after compiling the index ({!Postings.of_index}). *)

val query : ?now:float -> t -> owner:int -> reply
(** Serve one request.  [now] (seconds, default {!Clock.seconds}) drives the
    token bucket and latency measurement.  Concurrent callers must not share
    a shard; use {!run} for parallel replay. *)

val query_tagged : ?now:float -> t -> owner:int -> int * reply
(** Like {!query}, also naming the index generation the reply was computed
    from — the tag the RPC server stamps on every response so clients can
    tell pre- from post-swap answers. *)

type candidate = {
  owner : int;  (** Resolved owner id, valid in the reply's generation. *)
  score : float;  (** Weighted Dice match score in [0, 1], quantized to 1e-4. *)
  providers : int list;  (** The owner's ε-PPI row — {!reply} [Providers]. *)
}

type fuzzy_reply =
  | Candidates of candidate list
      (** Best matches first (score desc, owner asc), at most [k]; possibly
          empty when nothing cleared the resolver's threshold. *)
  | No_resolver  (** The published generation carries no resolver. *)
  | Probe_mismatch
      (** The probe's filter geometry (bits/hashes) differs from the
          resolver's — client and daemon disagree on linkage parameters. *)
  | Fuzzy_shed  (** Rejected by the routed shard's token bucket. *)

val fuzzy_shard : t -> Eppi_fuzzy.Probe.t -> int
(** The shard a probe's metrics and admission are accounted on — a stable
    function of the probe content ({!Eppi_fuzzy.Probe.routing_hash}). *)

val query_fuzzy : ?now:float -> ?k:int -> t -> Eppi_fuzzy.Probe.t -> int * fuzzy_reply
(** Resolve an approximate-identity probe against the published resolver,
    then fan each candidate out to its ε-PPI row — all against the single
    atomically published (postings, resolver) pair, whose generation tags
    the reply.  [k] (default 10) caps the candidate list.  Admission uses
    the {!fuzzy_shard} shard's token bucket; [now] as in {!query}.
    Concurrent callers must not share a shard.
    @raise Invalid_argument when [k <= 0]. *)

val audit : t -> provider:int -> int list option
(** Provider-side audit: the owners the published index lists at
    [provider]; [None] when the provider id is out of range. *)

type report = {
  replies : reply array;  (** One per request, in request order. *)
  wall_seconds : float;
}

val run : ?pool:Pool.t -> ?clock:(unit -> float) -> t -> int array -> report
(** Replay a workload (owner id per request).  Requests are partitioned by
    shard, preserving request order within each shard, and shards execute in
    parallel across the pool's domains; replies land at their request's
    position.  With admission control configured, each shard queues at most
    [queue_capacity] requests per batch — the overflow is answered
    [Shed_queue_full] — and its token bucket is consulted per request. *)

type tally = {
  served : int;
  unknown : int;
  shed_rate : int;
  shed_queue : int;
  providers_listed : int;  (** Sum of reply list lengths (response volume). *)
  tally_wall_seconds : float;
}

val replay : ?pool:Pool.t -> ?clock:(unit -> float) -> t -> int array -> tally
(** Like {!run}, but replies are consumed (counted) as they are produced
    instead of being retained — the streaming-server shape.  Use this for
    throughput measurement: {!run} keeps every materialized posting list
    live, which charges the measurement with the caller's retention, not
    the engine's work. *)

val metrics : t -> Metrics.snapshot
(** Merged view over all shards.  Reading while {!run} executes on other
    domains yields a consistent-enough approximation (plain int reads). *)
