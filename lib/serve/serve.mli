(** The online locator query engine — QueryPPI as a service.

    Layered on a published {!Eppi.Index}: requests are routed by owner id to
    one of [shards] independent shard states, each holding its own result
    cache (LRU of materialized posting lists), negative cache of unknown
    owner ids, token bucket and metrics.  All shared data (the compiled
    {!Postings} store) is read-only, and each shard's mutable state has a
    single writer, so batch replay across an {!Eppi_prelude.Pool} of
    domains runs without locks or contention.

    Correctness contract: for every in-range owner, the engine's reply
    (cached or not) is exactly [Eppi.Index.query index ~owner]; every
    request is answered with an explicit {!reply} — shed requests are
    reported, never silently dropped. *)

open Eppi_prelude

type config = {
  shards : int;  (** Independent shard states (>= 1). *)
  cache_capacity : int;  (** Result-cache entries per shard; 0 disables. *)
  negative_capacity : int;  (** Negative-cache entries per shard; 0 disables. *)
  admission : Admission.config option;  (** [None]: admit everything. *)
  latency_sample_every : int;
      (** Record the latency of every k-th query per shard (1 = all).
          Sampling keeps the clock calls off the common path. *)
}

val default_config : config
(** 1 shard, 4096-entry cache, 1024-entry negative cache, no admission
    control, latency sampled every 16th query. *)

type reply =
  | Providers of int list  (** The QueryPPI answer, ascending provider ids. *)
  | Unknown_owner  (** The owner id is outside the published index. *)
  | Shed_rate_limit  (** Rejected by the shard's token bucket. *)
  | Shed_queue_full  (** Rejected by the bounded per-shard queue (batch). *)

type t

val create : ?config:config -> Eppi.Index.t -> t
(** Compile the index into the read-optimized store and set up shard
    state.  @raise Invalid_argument on a non-positive shard count, negative
    capacities or a non-positive sample interval. *)

val of_postings : ?config:config -> Postings.t -> t
(** Reuse an already-compiled store (e.g. shared across engines). *)

val postings : t -> Postings.t
val shards : t -> int

val query : ?now:float -> t -> owner:int -> reply
(** Serve one request.  [now] (seconds, default {!Clock.seconds}) drives the
    token bucket and latency measurement.  Concurrent callers must not share
    a shard; use {!run} for parallel replay. *)

val audit : t -> provider:int -> int list option
(** Provider-side audit: the owners the published index lists at
    [provider]; [None] when the provider id is out of range. *)

type report = {
  replies : reply array;  (** One per request, in request order. *)
  wall_seconds : float;
}

val run : ?pool:Pool.t -> ?clock:(unit -> float) -> t -> int array -> report
(** Replay a workload (owner id per request).  Requests are partitioned by
    shard, preserving request order within each shard, and shards execute in
    parallel across the pool's domains; replies land at their request's
    position.  With admission control configured, each shard queues at most
    [queue_capacity] requests per batch — the overflow is answered
    [Shed_queue_full] — and its token bucket is consulted per request. *)

type tally = {
  served : int;
  unknown : int;
  shed_rate : int;
  shed_queue : int;
  providers_listed : int;  (** Sum of reply list lengths (response volume). *)
  tally_wall_seconds : float;
}

val replay : ?pool:Pool.t -> ?clock:(unit -> float) -> t -> int array -> tally
(** Like {!run}, but replies are consumed (counted) as they are produced
    instead of being retained — the streaming-server shape.  Use this for
    throughput measurement: {!run} keeps every materialized posting list
    live, which charges the measurement with the caller's retention, not
    the engine's work. *)

val metrics : t -> Metrics.snapshot
(** Merged view over all shards.  Reading while {!run} executes on other
    domains yields a consistent-enough approximation (plain int reads). *)
