type config = {
  rate : float;
  burst : int;
  queue_capacity : int;
}

let default_config = { rate = 50_000.0; burst = 1_000; queue_capacity = 100_000 }

type t = {
  cfg : config;
  mutable available : float;
  mutable last : float;  (* timestamp of the last refill; nan = never *)
}

let create cfg =
  if cfg.rate <= 0.0 then invalid_arg "Admission.create: rate must be positive";
  if cfg.burst < 1 then invalid_arg "Admission.create: burst must be >= 1";
  if cfg.queue_capacity < 1 then invalid_arg "Admission.create: queue_capacity must be >= 1";
  { cfg; available = float_of_int cfg.burst; last = Float.nan }

let config t = t.cfg

let try_admit t ~now =
  if not (Float.is_nan t.last) then begin
    let elapsed = Float.max 0.0 (now -. t.last) in
    t.available <-
      Float.min (float_of_int t.cfg.burst) (t.available +. (elapsed *. t.cfg.rate))
  end;
  t.last <- now;
  if t.available >= 1.0 then begin
    t.available <- t.available -. 1.0;
    true
  end
  else false

let tokens t = t.available
