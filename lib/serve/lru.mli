(** Fixed-capacity LRU map over int keys.

    The serving engine keeps one per shard for materialized query results
    and another as a negative cache of unknown owner ids.  All storage is
    preallocated at [create] (slot arrays linked by int indices), so steady
    state performs no allocation beyond hash-table internals.

    Not thread-safe: each instance must have a single writer — the serving
    engine guarantees this by owning one cache per shard and routing every
    shard to exactly one domain. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity 0] is a valid always-miss cache ([find] is [None], [put] a
    no-op) — how the engine disables caching without branching.
    @raise Invalid_argument on a negative capacity. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> int -> 'a option
(** Lookup; a hit promotes the entry to most-recently-used. *)

val mem : 'a t -> int -> bool
(** Membership test without promotion. *)

val put : 'a t -> int -> 'a -> unit
(** Insert or replace, promoting to most-recently-used; evicts the
    least-recently-used entry when full. *)

val clear : 'a t -> unit
(** Drop every entry (values are released) without reallocating the slot
    arrays — how the serving engine invalidates a shard's caches when a new
    index generation is published.  {!evictions} is cumulative and is not
    reset. *)

val evictions : 'a t -> int
(** Entries displaced by capacity pressure since [create]. *)
