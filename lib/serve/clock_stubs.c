/* Monotonic nanosecond clock for the serving engine's latency histograms.
   OCaml 5.1's Unix library exposes only gettimeofday (microsecond
   resolution), which cannot resolve a cache hit; CLOCK_MONOTONIC can.
   Returned as a tagged immediate (62 bits of nanoseconds covers ~146
   years of uptime), so the hot path never allocates. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value eppi_serve_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + ts.tv_nsec);
}
