(** Query workload generation for the serving bench and CLI.

    Real locator traffic is heavily skewed — a few identities (celebrities,
    common surnames) draw most lookups — so the reference workload draws
    owners from a Zipf distribution over [0, n): owner 0 is the hottest.
    Deterministic from the {!Eppi_prelude.Rng.t}, like everything else in
    the repo. *)

open Eppi_prelude

val zipf :
  ?exponent:float -> ?unknown_fraction:float -> Rng.t -> n:int -> count:int -> int array
(** [zipf rng ~n ~count] draws [count] owner ids Zipf-distributed over
    [0, n) with [exponent] (default 1.1).  A fraction [unknown_fraction]
    (default 0) of requests instead target ids in [n, 2n) — unknown owners,
    exercising the negative cache.
    @raise Invalid_argument on non-positive [n] or [count], a non-positive
    exponent, or an unknown fraction outside [0, 1]. *)

val uniform : ?unknown_fraction:float -> Rng.t -> n:int -> count:int -> int array
(** The unskewed control workload (worst case for caching). *)

val fuzzy :
  ?noise:Eppi_linkage.Demographic.noise ->
  ?exponent:float ->
  Rng.t ->
  roster:Eppi_linkage.Demographic.t array ->
  count:int ->
  (int * Eppi_linkage.Demographic.t) array
(** Typo/variant workload for the approximate-identity path: [count]
    pairs [(truth, observed)] where [truth] is a Zipf-drawn owner id in
    the roster and [observed] is that owner's demographics corrupted at
    [noise] rates ({!Eppi_linkage.Demographic.corrupt}, default
    {!Eppi_linkage.Demographic.default_noise}) — what a client who half
    remembers a name would type.  @raise Invalid_argument on an empty
    roster or invalid [count]/[exponent]. *)

(** {2 Trace-driven workloads}

    Next to the synthetic generators, a request log captured from a real
    deployment (or written by {!to_csv_log}) replays as-is — the workload
    realism the serving bench and the RPC replay driver
    ({!Eppi_net.Replay}) consume. *)

val of_csv_log : string -> int array
(** Parse a CSV request log: one request per line, the {e last}
    comma-separated field is the owner id (leading fields — a timestamp, a
    client tag — are ignored).  Blank lines and [#] comments are skipped;
    a non-numeric first line is treated as a column header.
    @raise Failure on any other unparsable line, naming it. *)

val of_jsonl_log : string -> int array
(** Parse a JSONL request log: one JSON object per line carrying an
    integer ["owner"] field (other fields are ignored).
    @raise Failure on a line without one, naming it. *)

val to_csv_log : int array -> string
(** Serialize a workload as a CSV request log ([of_csv_log]'s inverse,
    with an [owner] header line). *)
