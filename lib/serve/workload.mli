(** Query workload generation for the serving bench and CLI.

    Real locator traffic is heavily skewed — a few identities (celebrities,
    common surnames) draw most lookups — so the reference workload draws
    owners from a Zipf distribution over [0, n): owner 0 is the hottest.
    Deterministic from the {!Eppi_prelude.Rng.t}, like everything else in
    the repo. *)

open Eppi_prelude

val zipf :
  ?exponent:float -> ?unknown_fraction:float -> Rng.t -> n:int -> count:int -> int array
(** [zipf rng ~n ~count] draws [count] owner ids Zipf-distributed over
    [0, n) with [exponent] (default 1.1).  A fraction [unknown_fraction]
    (default 0) of requests instead target ids in [n, 2n) — unknown owners,
    exercising the negative cache.
    @raise Invalid_argument on non-positive [n] or [count], a non-positive
    exponent, or an unknown fraction outside [0, 1]. *)

val uniform : ?unknown_fraction:float -> Rng.t -> n:int -> count:int -> int array
(** The unskewed control workload (worst case for caching). *)
