(* Slots 0..capacity-1 hold the entries; [prev]/[next] link them into a
   recency list by index, with -1 as the null link.  [head] is the
   most-recently-used slot, [tail] the eviction candidate. *)
type 'a t = {
  cap : int;
  table : (int, int) Hashtbl.t;  (* key -> slot *)
  keys : int array;
  values : 'a option array;
  prev : int array;
  next : int array;
  mutable head : int;
  mutable tail : int;
  mutable len : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  {
    cap = capacity;
    table = Hashtbl.create (max 16 capacity);
    keys = Array.make capacity 0;
    values = Array.make capacity None;
    prev = Array.make capacity (-1);
    next = Array.make capacity (-1);
    head = -1;
    tail = -1;
    len = 0;
    evictions = 0;
  }

let capacity t = t.cap
let length t = t.len
let evictions t = t.evictions

let detach t slot =
  let p = t.prev.(slot) and n = t.next.(slot) in
  if p >= 0 then t.next.(p) <- n else t.head <- n;
  if n >= 0 then t.prev.(n) <- p else t.tail <- p

let push_front t slot =
  t.prev.(slot) <- -1;
  t.next.(slot) <- t.head;
  if t.head >= 0 then t.prev.(t.head) <- slot;
  t.head <- slot;
  if t.tail < 0 then t.tail <- slot

let promote t slot =
  if t.head <> slot then begin
    detach t slot;
    push_front t slot
  end

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some slot ->
      promote t slot;
      t.values.(slot)

let mem t key = Hashtbl.mem t.table key

let clear t =
  Hashtbl.reset t.table;
  Array.fill t.values 0 t.cap None;
  t.head <- -1;
  t.tail <- -1;
  t.len <- 0

let put t key value =
  if t.cap > 0 then
    match Hashtbl.find_opt t.table key with
    | Some slot ->
        t.values.(slot) <- Some value;
        promote t slot
    | None ->
        let slot =
          if t.len < t.cap then begin
            let s = t.len in
            t.len <- t.len + 1;
            s
          end
          else begin
            let s = t.tail in
            Hashtbl.remove t.table t.keys.(s);
            t.evictions <- t.evictions + 1;
            detach t s;
            s
          end
        in
        t.keys.(slot) <- key;
        t.values.(slot) <- Some value;
        push_front t slot;
        Hashtbl.replace t.table key slot
