open Eppi_prelude

let check ~n ~count ~unknown_fraction =
  if n <= 0 then invalid_arg "Workload: n must be positive";
  if count <= 0 then invalid_arg "Workload: count must be positive";
  if unknown_fraction < 0.0 || unknown_fraction > 1.0 then
    invalid_arg "Workload: unknown fraction out of [0, 1]"

let with_unknowns rng ~n ~unknown_fraction draw =
  if unknown_fraction > 0.0 && Rng.bernoulli rng unknown_fraction then n + Rng.int rng n
  else draw ()

let zipf ?(exponent = 1.1) ?(unknown_fraction = 0.0) rng ~n ~count =
  check ~n ~count ~unknown_fraction;
  if exponent <= 0.0 then invalid_arg "Workload.zipf: exponent must be positive";
  (* Cumulative weights 1/(k+1)^s; a draw is a binary search for the least
     rank whose cumulative weight covers the uniform sample. *)
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (k + 1)) exponent);
    cdf.(k) <- !acc
  done;
  let total = !acc in
  let draw () =
    let u = Rng.float rng total in
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  Array.init count (fun _ -> with_unknowns rng ~n ~unknown_fraction draw)

let uniform ?(unknown_fraction = 0.0) rng ~n ~count =
  check ~n ~count ~unknown_fraction;
  Array.init count (fun _ ->
      with_unknowns rng ~n ~unknown_fraction (fun () -> Rng.int rng n))
