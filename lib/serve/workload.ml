open Eppi_prelude

let check ~n ~count ~unknown_fraction =
  if n <= 0 then invalid_arg "Workload: n must be positive";
  if count <= 0 then invalid_arg "Workload: count must be positive";
  if unknown_fraction < 0.0 || unknown_fraction > 1.0 then
    invalid_arg "Workload: unknown fraction out of [0, 1]"

let with_unknowns rng ~n ~unknown_fraction draw =
  if unknown_fraction > 0.0 && Rng.bernoulli rng unknown_fraction then n + Rng.int rng n
  else draw ()

let zipf ?(exponent = 1.1) ?(unknown_fraction = 0.0) rng ~n ~count =
  check ~n ~count ~unknown_fraction;
  if exponent <= 0.0 then invalid_arg "Workload.zipf: exponent must be positive";
  (* Cumulative weights 1/(k+1)^s; a draw is a binary search for the least
     rank whose cumulative weight covers the uniform sample. *)
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (k + 1)) exponent);
    cdf.(k) <- !acc
  done;
  let total = !acc in
  let draw () =
    let u = Rng.float rng total in
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  Array.init count (fun _ -> with_unknowns rng ~n ~unknown_fraction draw)

let uniform ?(unknown_fraction = 0.0) rng ~n ~count =
  check ~n ~count ~unknown_fraction;
  Array.init count (fun _ ->
      with_unknowns rng ~n ~unknown_fraction (fun () -> Rng.int rng n))

let fuzzy ?noise ?(exponent = 1.1) rng ~roster ~count =
  if Array.length roster = 0 then invalid_arg "Workload.fuzzy: empty roster";
  let owners = zipf ~exponent rng ~n:(Array.length roster) ~count in
  Array.map
    (fun j -> (j, Eppi_linkage.Demographic.corrupt ?noise rng roster.(j)))
    owners

(* ---- trace-driven workloads: request-log readers ---- *)

let fail_line lineno what = failwith (Printf.sprintf "Workload: line %d: %s" lineno what)

let fold_lines text f =
  let acc = ref [] in
  let lineno = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun raw ->
         incr lineno;
         let line = String.trim raw in
         if line <> "" && line.[0] <> '#' then
           match f ~lineno:!lineno line with None -> () | Some owner -> acc := owner :: !acc);
  Array.of_list (List.rev !acc)

let of_csv_log text =
  fold_lines text (fun ~lineno line ->
      (* Last comma-separated field is the owner id; leading fields (a
         timestamp, a client tag) are carried by real request logs and
         ignored here.  An unparsable first line is a column header. *)
      let fields = String.split_on_char ',' line in
      let last = String.trim (List.nth fields (List.length fields - 1)) in
      match int_of_string_opt last with
      | Some owner -> Some owner
      | None -> if lineno = 1 then None else fail_line lineno (Printf.sprintf "bad owner %S" last))

let of_jsonl_log text =
  let find_owner ~lineno line =
    let key = "\"owner\"" in
    let klen = String.length key in
    let len = String.length line in
    let rec scan i =
      if i + klen > len then fail_line lineno "no \"owner\" key"
      else if String.sub line i klen = key then i + klen
      else scan (i + 1)
    in
    let pos = ref (scan 0) in
    let skip_ws () =
      while !pos < len && (line.[!pos] = ' ' || line.[!pos] = '\t') do
        incr pos
      done
    in
    skip_ws ();
    if !pos >= len || line.[!pos] <> ':' then fail_line lineno "expected ':' after \"owner\"";
    incr pos;
    skip_ws ();
    let start = !pos in
    if !pos < len && line.[!pos] = '-' then incr pos;
    while !pos < len && line.[!pos] >= '0' && line.[!pos] <= '9' do
      incr pos
    done;
    if !pos = start then fail_line lineno "\"owner\" is not an integer";
    int_of_string (String.sub line start (!pos - start))
  in
  fold_lines text (fun ~lineno line ->
      if line.[0] <> '{' then fail_line lineno "expected a JSON object"
      else Some (find_owner ~lineno line))

let to_csv_log owners =
  let b = Buffer.create (16 + (Array.length owners * 7)) in
  Buffer.add_string b "owner\n";
  Array.iter (fun owner -> Buffer.add_string b (string_of_int owner ^ "\n")) owners;
  Buffer.contents b
