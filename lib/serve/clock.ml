(* The monotonic clock moved to Eppi_prelude.Clock so the pool and the
   tracing layer can share it; this alias keeps Eppi_serve.Clock callers
   working unchanged. *)
include Eppi_prelude.Clock
