(** Re-export of {!Eppi_prelude.Clock}.

    The engine's latency histograms need to resolve cache hits (tens of
    nanoseconds); [Unix.gettimeofday] bottoms out at a microsecond, so the
    engine times itself with [clock_gettime(CLOCK_MONOTONIC)].  The
    implementation lives in the prelude (the pool and the tracing layer
    share it); this alias keeps existing [Eppi_serve.Clock] callers
    working. *)

val monotonic_ns : unit -> int
(** Nanoseconds from an arbitrary fixed origin; never goes backwards. *)

val seconds : unit -> float
(** {!monotonic_ns} scaled to seconds — the engine's default clock. *)
