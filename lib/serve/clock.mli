(** Monotonic wall clock, nanosecond resolution.

    The engine's latency histograms need to resolve cache hits (tens of
    nanoseconds); [Unix.gettimeofday] bottoms out at a microsecond, so this
    wraps [clock_gettime(CLOCK_MONOTONIC)] directly.  Allocation-free. *)

val monotonic_ns : unit -> int
(** Nanoseconds from an arbitrary fixed origin; never goes backwards. *)

val seconds : unit -> float
(** {!monotonic_ns} scaled to seconds — the engine's default clock. *)
