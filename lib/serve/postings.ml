open Eppi_prelude

(* One packed direction: [offsets.(i)] .. [offsets.(i+1)] - 1 are the entry
   slots of list [i]; entry [e] lives at bit position [e * width].  The data
   buffer is padded by 8 bytes so every entry can be read with a single
   unaligned 64-bit load (width <= 30 and a bit offset <= 7 keep the value
   inside the loaded word). *)
type side = {
  offsets : int array;
  data : Bytes.t;
  width : int;
}

type t = {
  fwd : side;
  inv : side;
  owners : int;
  providers : int;
}

let width_for bound =
  let rec go w = if 1 lsl w >= bound then w else go (w + 1) in
  max 1 (go 1)

let make_side ~width counts =
  let n = Array.length counts in
  let offsets = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    offsets.(i + 1) <- offsets.(i) + counts.(i)
  done;
  let entries = offsets.(n) in
  let data = Bytes.make (((entries * width) + 7) / 8 + 8) '\000' in
  { offsets; data; width }

let write_entry side ~slot v =
  let bitpos = slot * side.width in
  let byte = bitpos lsr 3 and shift = bitpos land 7 in
  let cur = Bytes.get_int64_le side.data byte in
  Bytes.set_int64_le side.data byte (Int64.logor cur (Int64.shift_left (Int64.of_int v) shift))

let read_entry side e =
  let bitpos = e * side.width in
  let byte = bitpos lsr 3 and shift = bitpos land 7 in
  Int64.to_int (Int64.shift_right_logical (Bytes.get_int64_le side.data byte) shift)
  land ((1 lsl side.width) - 1)

let of_matrix matrix =
  let owners = Bitmatrix.rows matrix and providers = Bitmatrix.cols matrix in
  let row_counts = Array.make owners 0 in
  let col_counts = Array.make providers 0 in
  for j = 0 to owners - 1 do
    Bitvec.iter_set
      (fun p ->
        row_counts.(j) <- row_counts.(j) + 1;
        col_counts.(p) <- col_counts.(p) + 1)
      (Bitmatrix.row matrix j)
  done;
  let fwd = make_side ~width:(width_for providers) row_counts in
  let inv = make_side ~width:(width_for owners) col_counts in
  let inv_cursor = Array.sub inv.offsets 0 providers in
  for j = 0 to owners - 1 do
    let slot = ref fwd.offsets.(j) in
    Bitvec.iter_set
      (fun p ->
        write_entry fwd ~slot:!slot p;
        incr slot;
        write_entry inv ~slot:inv_cursor.(p) j;
        inv_cursor.(p) <- inv_cursor.(p) + 1)
      (Bitmatrix.row matrix j)
  done;
  { fwd; inv; owners; providers }

let of_index index = of_matrix (Eppi.Index.matrix index)
let owners t = t.owners
let providers t = t.providers

let check_range what i bound =
  if i < 0 || i >= bound then invalid_arg (Printf.sprintf "Postings.%s: id out of range" what)

let side_list side i =
  let lo = side.offsets.(i) and hi = side.offsets.(i + 1) in
  let rec go e acc = if e < lo then acc else go (e - 1) (read_entry side e :: acc) in
  go (hi - 1) []

let query t ~owner =
  check_range "query" owner t.owners;
  side_list t.fwd owner

let query_count t ~owner =
  check_range "query_count" owner t.owners;
  t.fwd.offsets.(owner + 1) - t.fwd.offsets.(owner)

let iter_query t ~owner f =
  check_range "iter_query" owner t.owners;
  for e = t.fwd.offsets.(owner) to t.fwd.offsets.(owner + 1) - 1 do
    f (read_entry t.fwd e)
  done

let owners_of t ~provider =
  check_range "owners_of" provider t.providers;
  side_list t.inv provider

let audit_count t ~provider =
  check_range "audit_count" provider t.providers;
  t.inv.offsets.(provider + 1) - t.inv.offsets.(provider)

let entry_bits t = (t.fwd.width, t.inv.width)

let memory_bytes t =
  let side s = Bytes.length s.data + (8 * Array.length s.offsets) in
  side t.fwd + side t.inv
