(** Admission control for the serving engine: a token-bucket rate limiter.

    Each shard owns one bucket; a request either takes a token and proceeds
    or is shed with an explicit outcome (the engine reports every shed —
    nothing is silently dropped).  [queue_capacity] bounds the per-shard
    request queue in batch replay: requests beyond it are shed as queue
    overflow before they reach the bucket. *)

type config = {
  rate : float;  (** Token refill rate per second (> 0). *)
  burst : int;  (** Bucket capacity — the largest admissible burst (>= 1). *)
  queue_capacity : int;  (** Per-shard queue bound in batch replay (>= 1). *)
}

val default_config : config
(** 50k requests/s, burst 1000, queue 100k — permissive defaults sized for
    the bench workloads. *)

type t

val create : config -> t
(** A full bucket.  @raise Invalid_argument on a non-positive rate, burst or
    queue capacity. *)

val config : t -> config

val try_admit : t -> now:float -> bool
(** Refill from the elapsed time since the previous call (clamped at
    [burst]), then take one token if available.  [now] is an absolute
    timestamp in seconds; passing a manual clock makes tests deterministic.
    A [now] earlier than the previous call refills nothing. *)

val tokens : t -> float
(** Tokens currently available (before any refill). *)
