open Eppi_prelude
module Trace = Eppi_obs.Trace
module Probe = Eppi_fuzzy.Probe
module Resolver = Eppi_fuzzy.Resolver

type config = {
  shards : int;
  cache_capacity : int;
  negative_capacity : int;
  admission : Admission.config option;
  latency_sample_every : int;
}

let default_config =
  {
    shards = 1;
    cache_capacity = 4096;
    negative_capacity = 1024;
    admission = None;
    latency_sample_every = 16;
  }

type reply =
  | Providers of int list
  | Unknown_owner
  | Shed_rate_limit
  | Shed_queue_full

type shard = {
  cache : int list Lru.t;
  negative : unit Lru.t;
  bucket : Admission.t option;
  metrics : Metrics.t;
  mutable tick : int;
  mutable generation : int;  (* the generation the caches were filled from *)
}

(* The currently published index: one immutable record behind an atomic,
   so a republish is a single pointer swap — readers always see a
   consistent (generation, postings, resolver) and never a torn mix of
   two indexes, or a resolver naming identities of a different vintage
   than the postings it rides with. *)
type published = {
  generation : int;
  store : Postings.t;
  resolver : Resolver.t option;
}

type t = {
  published : published Atomic.t;
  shard_states : shard array;
  sample_every : int;
  queue_capacity : int;  (* max_int when admission is off *)
}

let of_postings ?(config = default_config) ?resolver postings =
  if config.shards < 1 then invalid_arg "Serve: shards must be >= 1";
  if config.cache_capacity < 0 || config.negative_capacity < 0 then
    invalid_arg "Serve: negative cache capacity";
  if config.latency_sample_every < 1 then
    invalid_arg "Serve: latency_sample_every must be >= 1";
  let shard_states =
    Array.init config.shards (fun _ ->
        {
          cache = Lru.create ~capacity:config.cache_capacity;
          negative = Lru.create ~capacity:config.negative_capacity;
          bucket = Option.map Admission.create config.admission;
          metrics = Metrics.create ();
          tick = 0;
          generation = 1;
        })
  in
  {
    published = Atomic.make { generation = 1; store = postings; resolver };
    shard_states;
    sample_every = config.latency_sample_every;
    queue_capacity =
      (match config.admission with Some a -> a.queue_capacity | None -> max_int);
  }

let create ?config ?resolver index = of_postings ?config ?resolver (Postings.of_index index)
let postings t = (Atomic.get t.published).store
let generation t = (Atomic.get t.published).generation
let resolver t = (Atomic.get t.published).resolver
let shards t = Array.length t.shard_states

let republish ?resolver t store =
  (* CAS loop: concurrent republishers each get a distinct generation.
     Shards pick the new index up lazily, on their next request.  The
     resolver swaps in the same CAS as the postings — omitted, the
     currently installed one is carried over, so (postings, resolver)
     stays a consistent pair either way. *)
  let rec install () =
    let old = Atomic.get t.published in
    let resolver = match resolver with Some _ -> resolver | None -> old.resolver in
    let next = { generation = old.generation + 1; store; resolver } in
    if Atomic.compare_and_set t.published old next then next.generation else install ()
  in
  install ()

let republish_index ?resolver t index = republish ?resolver t (Postings.of_index index)

let shard_of t owner =
  let n = Array.length t.shard_states in
  let s = owner mod n in
  if s < 0 then s + n else s

(* The cache/postings lookup, after admission.  [pub] is the published
   pair the caller fetched for this request. *)
let lookup pub sh ~owner =
  if owner < 0 || owner >= Postings.owners pub.store then begin
    Metrics.incr_unknown sh.metrics;
    (match Lru.find sh.negative owner with
    | Some () -> Metrics.incr_negative_hit sh.metrics
    | None -> Lru.put sh.negative owner ());
    Unknown_owner
  end
  else
    match Lru.find sh.cache owner with
    | Some providers ->
        Metrics.incr_cache_hit sh.metrics;
        Metrics.incr_served sh.metrics;
        Providers providers
    | None ->
        let providers = Postings.query pub.store ~owner in
        Metrics.incr_cache_miss sh.metrics;
        Metrics.incr_served sh.metrics;
        Lru.put sh.cache owner providers;
        Providers providers

(* On a generation change the shard's caches hold answers from the
   previous index — drop them before serving. *)
let sync_generation (sh : shard) (pub : published) =
  if pub.generation <> sh.generation then begin
    Lru.clear sh.cache;
    Lru.clear sh.negative;
    sh.generation <- pub.generation;
    Metrics.incr_swaps sh.metrics;
    Metrics.set_generation sh.metrics pub.generation
  end

let serve_one t sh ~clock ~now ~owner =
  Metrics.incr_queries sh.metrics;
  (* One atomic load per request pins the (generation, postings) pair this
     reply is computed from; a republish between two requests is picked up
     here, never mid-reply. *)
  let pub = Atomic.get t.published in
  sync_generation sh pub;
  let admitted =
    match sh.bucket with None -> true | Some b -> Admission.try_admit b ~now
  in
  if not admitted then begin
    Metrics.incr_shed_rate sh.metrics;
    Shed_rate_limit
  end
  else begin
    sh.tick <- sh.tick + 1;
    if sh.tick >= t.sample_every then begin
      sh.tick <- 0;
      let t0 = clock () in
      let reply = lookup pub sh ~owner in
      Metrics.record_latency sh.metrics (clock () -. t0);
      reply
    end
    else lookup pub sh ~owner
  end

let query ?now t ~owner =
  let now = match now with Some n -> n | None -> Clock.seconds () in
  serve_one t t.shard_states.(shard_of t owner) ~clock:Clock.seconds ~now ~owner

let query_tagged ?now t ~owner =
  let now = match now with Some n -> n | None -> Clock.seconds () in
  let sh = t.shard_states.(shard_of t owner) in
  let reply = serve_one t sh ~clock:Clock.seconds ~now ~owner in
  (* serve_one synced the shard to the generation it served from, and this
     caller is the shard's only writer, so the field still names it. *)
  (sh.generation, reply)

type candidate = {
  owner : int;
  score : float;
  providers : int list;
}

type fuzzy_reply =
  | Candidates of candidate list
  | No_resolver
  | Probe_mismatch
  | Fuzzy_shed

(* Fuzzy requests have no owner yet, so route on the probe content: the
   same probe always lands on the same shard (its metrics, its token
   bucket), and load spreads across shards.  [routing_hash] is
   non-negative by construction. *)
let fuzzy_shard t probe = Probe.routing_hash probe mod Array.length t.shard_states

let query_fuzzy ?now ?(k = 10) t probe =
  if k <= 0 then invalid_arg "Serve.query_fuzzy: k must be positive";
  let now = match now with Some n -> n | None -> Clock.seconds () in
  let sh = t.shard_states.(fuzzy_shard t probe) in
  Metrics.incr_fuzzy sh.metrics;
  let pub = Atomic.get t.published in
  sync_generation sh pub;
  let admitted =
    match sh.bucket with None -> true | Some b -> Admission.try_admit b ~now
  in
  if not admitted then begin
    Metrics.incr_fuzzy_shed sh.metrics;
    (pub.generation, Fuzzy_shed)
  end
  else
    match pub.resolver with
    | None ->
        Metrics.incr_fuzzy_rejected sh.metrics;
        (pub.generation, No_resolver)
    | Some r when not (Resolver.compatible r probe) ->
        Metrics.incr_fuzzy_rejected sh.metrics;
        (pub.generation, Probe_mismatch)
    | Some r ->
        let resolve () = Resolver.resolve r probe ~k in
        let outcome =
          if not (Trace.enabled ()) then resolve ()
          else begin
            Trace.begin_span "fuzzy.resolve";
            let o = resolve () in
            Trace.end_span "fuzzy.resolve"
              ~args:
                [
                  ("buckets", o.buckets_hit);
                  ("scanned", o.scanned);
                  ("candidates", List.length o.candidates);
                ];
            o
          end
        in
        Metrics.add_fuzzy_scanned sh.metrics outcome.scanned;
        (* Candidate row lookups read the pinned postings directly, not
           through the shard's LRU: the resolved owners rarely belong to
           this shard, and the immutable postings are safe to read from
           any domain. *)
        let owners = Postings.owners pub.store in
        let candidates =
          List.filter_map
            (fun (rv : Resolver.resolved) ->
              if rv.owner < 0 || rv.owner >= owners then None
              else
                Some
                  {
                    owner = rv.owner;
                    score = rv.score;
                    providers = Postings.query pub.store ~owner:rv.owner;
                  })
            outcome.candidates
        in
        (match candidates with
        | [] -> Metrics.incr_fuzzy_empty sh.metrics
        | _ :: _ -> Metrics.incr_fuzzy_resolved sh.metrics);
        (pub.generation, Candidates candidates)

let audit t ~provider =
  let store = (Atomic.get t.published).store in
  if provider < 0 || provider >= Postings.providers store then None
  else begin
    (* Audits are rare administrative reads; account them on shard 0. *)
    Metrics.incr_audits t.shard_states.(0).metrics;
    Some (Postings.owners_of store ~provider)
  end

type report = {
  replies : reply array;
  wall_seconds : float;
}

(* Partition request positions by shard, preserving request order within
   each shard, then run [work shard positions] for every shard — in
   parallel when a pool is given.  Each shard's state is touched by exactly
   one domain, so no locking is needed anywhere. *)
let dispatch ?pool ~clock t requests work =
  let nshards = Array.length t.shard_states in
  let counts = Array.make nshards 0 in
  Array.iter
    (fun owner ->
      let s = shard_of t owner in
      counts.(s) <- counts.(s) + 1)
    requests;
  let buckets = Array.map (fun c -> Array.make c 0) counts in
  let cursor = Array.make nshards 0 in
  Array.iteri
    (fun pos owner ->
      let s = shard_of t owner in
      buckets.(s).(cursor.(s)) <- pos;
      cursor.(s) <- cursor.(s) + 1)
    requests;
  let t0 = clock () in
  (match pool with
  | Some pool when nshards > 1 ->
      Pool.parallel_iter pool (fun s -> work s buckets.(s)) (Array.init nshards Fun.id)
  | _ ->
      for s = 0 to nshards - 1 do
        work s buckets.(s)
      done);
  clock () -. t0

(* Wrap one shard's batch in a span carrying the shard's metric deltas
   (via {!Metrics.diff}).  One tracing branch per shard batch — never per
   query — so the disabled path costs a single atomic load per batch. *)
let traced_shard sh ~shard ~requests body =
  if not (Trace.enabled ()) then body ()
  else begin
    let before = Metrics.snapshot [ sh.metrics ] in
    Trace.begin_span "serve.shard";
    body ();
    let d = Metrics.diff (Metrics.snapshot [ sh.metrics ]) before in
    Trace.end_span "serve.shard"
      ~args:
        [
          ("shard", shard);
          ("requests", requests);
          ("served", d.served);
          ("cache_hits", d.cache_hits);
          ("unknown", d.unknown);
          ("shed", d.shed_rate + d.shed_queue);
        ]
  end

let run ?pool ?(clock = Clock.seconds) t requests =
  let replies = Array.make (Array.length requests) Unknown_owner in
  let work s positions =
    let sh = t.shard_states.(s) in
    let len = Array.length positions in
    traced_shard sh ~shard:s ~requests:len (fun () ->
        (* The batch arrives at once; the shard's queue absorbs at most
           [queue_capacity] requests — the overflow is shed, explicitly. *)
        let admitted = min len t.queue_capacity in
        for k = 0 to admitted - 1 do
          let pos = positions.(k) in
          replies.(pos) <- serve_one t sh ~clock ~now:(clock ()) ~owner:requests.(pos)
        done;
        for k = admitted to len - 1 do
          Metrics.incr_queries sh.metrics;
          Metrics.incr_shed_queue sh.metrics;
          replies.(positions.(k)) <- Shed_queue_full
        done)
  in
  let wall_seconds = dispatch ?pool ~clock t requests work in
  { replies; wall_seconds }

type tally = {
  served : int;
  unknown : int;
  shed_rate : int;
  shed_queue : int;
  providers_listed : int;
  tally_wall_seconds : float;
}

let replay ?pool ?(clock = Clock.seconds) t requests =
  let nshards = Array.length t.shard_states in
  (* Per-shard counter blocks: served, unknown, shed_rate, shed_queue,
     providers_listed.  Single-writer, summed after the barrier. *)
  let tallies = Array.init nshards (fun _ -> Array.make 5 0) in
  let work s positions =
    let sh = t.shard_states.(s) in
    let tl = tallies.(s) in
    let len = Array.length positions in
    traced_shard sh ~shard:s ~requests:len (fun () ->
        let admitted = min len t.queue_capacity in
        for k = 0 to admitted - 1 do
          let pos = positions.(k) in
          match serve_one t sh ~clock ~now:(clock ()) ~owner:requests.(pos) with
          | Providers providers ->
              tl.(0) <- tl.(0) + 1;
              tl.(4) <- tl.(4) + List.length providers
          | Unknown_owner -> tl.(1) <- tl.(1) + 1
          | Shed_rate_limit -> tl.(2) <- tl.(2) + 1
          | Shed_queue_full -> tl.(3) <- tl.(3) + 1
        done;
        for _ = admitted to len - 1 do
          Metrics.incr_queries sh.metrics;
          Metrics.incr_shed_queue sh.metrics;
          tl.(3) <- tl.(3) + 1
        done)
  in
  let wall = dispatch ?pool ~clock t requests work in
  let sum i = Array.fold_left (fun acc tl -> acc + tl.(i)) 0 tallies in
  {
    served = sum 0;
    unknown = sum 1;
    shed_rate = sum 2;
    shed_queue = sum 3;
    providers_listed = sum 4;
    tally_wall_seconds = wall;
  }

let metrics t =
  (* Shards learn about a republish lazily, so the merged generation can
     lag the engine's; report the authoritative current one. *)
  {
    (Metrics.snapshot (Array.to_list (Array.map (fun sh -> sh.metrics) t.shard_states))) with
    generation = (Atomic.get t.published).generation;
  }
