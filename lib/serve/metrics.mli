(** Observability surface of the serving engine.

    Each shard owns one [t] and is its only writer (the engine routes a
    shard to exactly one domain), so the hot path is plain-int increments
    with no cross-core contention; a snapshot merges all shards.  Latencies
    go into a log2-scaled histogram ({!Eppi_prelude.Stats.Log2_histogram}),
    so p50/p95/p99 come out of a 64-int array, not a sample buffer. *)

type t

val create : unit -> t

val incr_queries : t -> unit
val incr_served : t -> unit
val incr_cache_hit : t -> unit
val incr_cache_miss : t -> unit
val incr_negative_hit : t -> unit
val incr_unknown : t -> unit
val incr_shed_rate : t -> unit
val incr_shed_queue : t -> unit
val incr_audits : t -> unit

val incr_swaps : t -> unit
(** One index hot-swap observed by this shard (its caches were dropped). *)

val set_generation : t -> int -> unit
(** The index generation this shard last served from (starts at 1). *)

val incr_fuzzy : t -> unit
(** One fuzzy (approximate-identity) request reached this shard.  The
    fuzzy counters obey their own conservation law:
    [fuzzy_queries = fuzzy_resolved + fuzzy_empty + fuzzy_rejected +
    fuzzy_shed]. *)

val incr_fuzzy_resolved : t -> unit
(** A fuzzy request answered with at least one candidate. *)

val incr_fuzzy_empty : t -> unit
(** A fuzzy request that resolved no candidate above the threshold. *)

val incr_fuzzy_rejected : t -> unit
(** A fuzzy request the engine could not score: no resolver published, or
    the probe's filter geometry differs from the resolver's. *)

val incr_fuzzy_shed : t -> unit
(** A fuzzy request shed by the shard's token bucket. *)

val add_fuzzy_scanned : t -> int -> unit
(** Candidate signatures scored for one resolve (padding included). *)

val record_latency : t -> float -> unit
(** Record one query's service time in seconds. *)

type snapshot = {
  queries : int;  (** Requests that reached the engine (including shed). *)
  served : int;  (** Requests answered with a provider list. *)
  cache_hits : int;
  cache_misses : int;
  negative_hits : int;  (** Unknown owners answered from the negative cache. *)
  unknown : int;  (** Requests for out-of-range owner ids. *)
  shed_rate : int;  (** Shed by the token bucket. *)
  shed_queue : int;  (** Shed by the bounded per-shard queue. *)
  audits : int;  (** Provider-side audit queries. *)
  generation : int;
      (** Highest index generation any shard has served from (1 until the
          first republish is observed; {!Serve.metrics} substitutes the
          engine's authoritative current generation). *)
  swaps : int;
      (** Hot-swap observations summed over shards: each shard counts the
          generation changes it noticed (and invalidated its caches for),
          so with [k] trafficked shards one republish contributes up to
          [k]. *)
  fuzzy_queries : int;  (** Fuzzy requests that reached the engine. *)
  fuzzy_resolved : int;  (** Fuzzy requests with >= 1 candidate returned. *)
  fuzzy_empty : int;  (** Fuzzy requests resolving nothing above threshold. *)
  fuzzy_rejected : int;  (** No resolver published / probe geometry mismatch. *)
  fuzzy_shed : int;  (** Fuzzy requests shed by the token bucket. *)
  fuzzy_scanned : int;  (** Candidate signatures scored, padding included. *)
  latency_count : int;  (** Latency samples recorded (sampling may skip). *)
  latency_mean : float;
  p50 : float;
  p95 : float;
  p99 : float;  (** Seconds; 0 when no samples were recorded. *)
}

val snapshot : t list -> snapshot
(** Merge per-shard metrics into one view. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff newer older] is the interval view between two snapshots of the
    same engine: every counter (including [latency_count] and [swaps])
    subtracts, so a long-running engine can report per-window rates; the
    latency distribution fields ([latency_mean], [p50], [p95], [p99]) and
    [generation] are taken from [newer] — histograms are cumulative and
    their difference has no defined percentiles, and a generation is a
    point-in-time label, not a rate. *)

val hit_rate : snapshot -> float
(** cache_hits / (cache_hits + cache_misses); 0 when no lookups ran. *)

val to_json : snapshot -> string
(** A single JSON object with every snapshot field. *)

val pp : Format.formatter -> snapshot -> unit
