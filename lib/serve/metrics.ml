open Eppi_prelude

type t = {
  mutable queries : int;
  mutable served : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable negative_hits : int;
  mutable unknown : int;
  mutable shed_rate : int;
  mutable shed_queue : int;
  mutable audits : int;
  mutable generation : int;
  mutable swaps : int;
  mutable fuzzy_queries : int;
  mutable fuzzy_resolved : int;
  mutable fuzzy_empty : int;
  mutable fuzzy_rejected : int;
  mutable fuzzy_shed : int;
  mutable fuzzy_scanned : int;
  latency : Stats.Log2_histogram.t;
}

let create () =
  {
    queries = 0;
    served = 0;
    cache_hits = 0;
    cache_misses = 0;
    negative_hits = 0;
    unknown = 0;
    shed_rate = 0;
    shed_queue = 0;
    audits = 0;
    generation = 1;
    swaps = 0;
    fuzzy_queries = 0;
    fuzzy_resolved = 0;
    fuzzy_empty = 0;
    fuzzy_rejected = 0;
    fuzzy_shed = 0;
    fuzzy_scanned = 0;
    latency = Stats.Log2_histogram.create ();
  }

let incr_queries t = t.queries <- t.queries + 1
let incr_served t = t.served <- t.served + 1
let incr_cache_hit t = t.cache_hits <- t.cache_hits + 1
let incr_cache_miss t = t.cache_misses <- t.cache_misses + 1
let incr_negative_hit t = t.negative_hits <- t.negative_hits + 1
let incr_unknown t = t.unknown <- t.unknown + 1
let incr_shed_rate t = t.shed_rate <- t.shed_rate + 1
let incr_shed_queue t = t.shed_queue <- t.shed_queue + 1
let incr_audits t = t.audits <- t.audits + 1
let incr_swaps t = t.swaps <- t.swaps + 1
let incr_fuzzy t = t.fuzzy_queries <- t.fuzzy_queries + 1
let incr_fuzzy_resolved t = t.fuzzy_resolved <- t.fuzzy_resolved + 1
let incr_fuzzy_empty t = t.fuzzy_empty <- t.fuzzy_empty + 1
let incr_fuzzy_rejected t = t.fuzzy_rejected <- t.fuzzy_rejected + 1
let incr_fuzzy_shed t = t.fuzzy_shed <- t.fuzzy_shed + 1
let add_fuzzy_scanned t n = t.fuzzy_scanned <- t.fuzzy_scanned + n
let set_generation t generation = t.generation <- generation
let record_latency t seconds = Stats.Log2_histogram.add t.latency seconds

type snapshot = {
  queries : int;
  served : int;
  cache_hits : int;
  cache_misses : int;
  negative_hits : int;
  unknown : int;
  shed_rate : int;
  shed_queue : int;
  audits : int;
  generation : int;
  swaps : int;
  fuzzy_queries : int;
  fuzzy_resolved : int;
  fuzzy_empty : int;
  fuzzy_rejected : int;
  fuzzy_shed : int;
  fuzzy_scanned : int;
  latency_count : int;
  latency_mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let snapshot shards =
  let sum f = List.fold_left (fun acc t -> acc + f t) 0 shards in
  let latency =
    match shards with
    | [] -> Stats.Log2_histogram.create ()
    | first :: rest ->
        List.fold_left
          (fun acc t -> Stats.Log2_histogram.merge acc t.latency)
          first.latency rest
  in
  {
    queries = sum (fun t -> t.queries);
    served = sum (fun t -> t.served);
    cache_hits = sum (fun t -> t.cache_hits);
    cache_misses = sum (fun t -> t.cache_misses);
    negative_hits = sum (fun t -> t.negative_hits);
    unknown = sum (fun t -> t.unknown);
    shed_rate = sum (fun t -> t.shed_rate);
    shed_queue = sum (fun t -> t.shed_queue);
    audits = sum (fun t -> t.audits);
    generation = List.fold_left (fun acc (m : t) -> max acc m.generation) 1 shards;
    swaps = sum (fun t -> t.swaps);
    fuzzy_queries = sum (fun t -> t.fuzzy_queries);
    fuzzy_resolved = sum (fun t -> t.fuzzy_resolved);
    fuzzy_empty = sum (fun t -> t.fuzzy_empty);
    fuzzy_rejected = sum (fun t -> t.fuzzy_rejected);
    fuzzy_shed = sum (fun t -> t.fuzzy_shed);
    fuzzy_scanned = sum (fun t -> t.fuzzy_scanned);
    latency_count = Stats.Log2_histogram.total latency;
    latency_mean = Stats.Log2_histogram.mean latency;
    p50 = Stats.Log2_histogram.quantile latency 0.5;
    p95 = Stats.Log2_histogram.quantile latency 0.95;
    p99 = Stats.Log2_histogram.quantile latency 0.99;
  }

(* Interval view: counters subtract (a long-running engine reports
   per-window rates from two snapshots); the latency distribution fields
   are not subtractable — a histogram difference has no defined
   percentiles — so they come from the newer snapshot. *)
let diff (newer : snapshot) (older : snapshot) =
  {
    queries = newer.queries - older.queries;
    served = newer.served - older.served;
    cache_hits = newer.cache_hits - older.cache_hits;
    cache_misses = newer.cache_misses - older.cache_misses;
    negative_hits = newer.negative_hits - older.negative_hits;
    unknown = newer.unknown - older.unknown;
    shed_rate = newer.shed_rate - older.shed_rate;
    shed_queue = newer.shed_queue - older.shed_queue;
    audits = newer.audits - older.audits;
    generation = newer.generation;
    swaps = newer.swaps - older.swaps;
    fuzzy_queries = newer.fuzzy_queries - older.fuzzy_queries;
    fuzzy_resolved = newer.fuzzy_resolved - older.fuzzy_resolved;
    fuzzy_empty = newer.fuzzy_empty - older.fuzzy_empty;
    fuzzy_rejected = newer.fuzzy_rejected - older.fuzzy_rejected;
    fuzzy_shed = newer.fuzzy_shed - older.fuzzy_shed;
    fuzzy_scanned = newer.fuzzy_scanned - older.fuzzy_scanned;
    latency_count = newer.latency_count - older.latency_count;
    latency_mean = newer.latency_mean;
    p50 = newer.p50;
    p95 = newer.p95;
    p99 = newer.p99;
  }

let hit_rate s =
  let lookups = s.cache_hits + s.cache_misses in
  if lookups = 0 then 0.0 else float_of_int s.cache_hits /. float_of_int lookups

let to_json s =
  Printf.sprintf
    "{ \"queries\": %d, \"served\": %d, \"cache_hits\": %d, \"cache_misses\": %d, \
     \"cache_hit_rate\": %.4f, \"negative_hits\": %d, \"unknown\": %d, \"shed_rate\": %d, \
     \"shed_queue\": %d, \"audits\": %d, \"generation\": %d, \"swaps\": %d, \
     \"fuzzy_queries\": %d, \"fuzzy_resolved\": %d, \"fuzzy_empty\": %d, \
     \"fuzzy_rejected\": %d, \"fuzzy_shed\": %d, \"fuzzy_scanned\": %d, \
     \"latency_count\": %d, \"latency_mean_s\": %.9f, \
     \"p50_s\": %.9f, \"p95_s\": %.9f, \"p99_s\": %.9f }"
    s.queries s.served s.cache_hits s.cache_misses (hit_rate s) s.negative_hits s.unknown
    s.shed_rate s.shed_queue s.audits s.generation s.swaps s.fuzzy_queries s.fuzzy_resolved
    s.fuzzy_empty s.fuzzy_rejected s.fuzzy_shed s.fuzzy_scanned s.latency_count s.latency_mean
    s.p50 s.p95 s.p99

let pp ppf s =
  Format.fprintf ppf
    "queries=%d served=%d hits=%d misses=%d hit_rate=%.3f negative=%d unknown=%d \
     shed_rate=%d shed_queue=%d audits=%d gen=%d swaps=%d fuzzy=%d/%d p50=%.2gs p95=%.2gs \
     p99=%.2gs"
    s.queries s.served s.cache_hits s.cache_misses (hit_rate s) s.negative_hits s.unknown
    s.shed_rate s.shed_queue s.audits s.generation s.swaps s.fuzzy_queries s.fuzzy_resolved
    s.p50 s.p95 s.p99
