(** Chrome trace-event JSON export.

    The output loads in Perfetto ({:https://ui.perfetto.dev}) and
    [chrome://tracing]: one thread track per recording domain, B/E span
    pairs, instant markers and counter tracks.  Timestamps are rebased so
    the earliest event sits at t = 0. *)

val escape : string -> string
(** JSON string-content escaping (quotes, backslashes, control chars). *)

val to_json : Trace.track list -> string
(** Render tracks (usually [Trace.tracks ()]) as one JSON document. *)

val write : string -> unit
(** [write path] exports the current session ([Trace.tracks ()]) to
    [path]. *)
