(** Aggregate table over a tracing session.

    Groups spans by name (count, total time, bytes, messages, allocation
    deltas), computes the session wall, and carries the last sample of
    every counter series — the "where did the time go" table the CLI
    prints after a traced run.  Parallel phases can legitimately exceed
    100% of wall: totals sum across domain tracks. *)

type row = {
  name : string;
  count : int;
  total_ns : int;  (** Summed across all tracks. *)
  bytes : int;  (** Sum of the spans' [bytes] args. *)
  messages : int;  (** Sum of the spans' [messages] args. *)
  minor_words : int;  (** Sum of the spans' GC minor-allocation deltas. *)
  major_words : int;
}

type t = {
  wall_ns : int;  (** Latest minus earliest event timestamp. *)
  track_count : int;
  dropped : int;  (** Events lost to buffer bounds, all tracks. *)
  rows : row list;  (** Sorted by total time, descending. *)
  counters : (string * int) list;  (** ["name.key"], last sample wins. *)
}

val compute : Trace.track list -> t

val pp : Format.formatter -> t -> unit
(** The bare table (no box); compose with surrounding vertical boxes. *)

val print : Format.formatter -> t -> unit
(** [pp] wrapped in its own vertical box with a trailing newline — what
    the CLI calls. *)

val counters_json : t -> string
(** A self-describing flat JSON object: [trace.wall_ns], [trace.tracks],
    [trace.dropped], then one key per counter series. *)
