(* Chrome trace-event JSON export (the "JSON Array Format" with a
   traceEvents envelope), loadable in Perfetto and chrome://tracing.

   Mapping: one process (pid 1), one thread track per recording domain
   (tid = domain id, named via a thread_name metadata event).  Spans
   become B/E pairs, instants "i" events, counters "C" events whose args
   render as stacked series.  Timestamps are microseconds relative to the
   earliest event in the session, so traces start at t=0 regardless of
   machine uptime. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_args b args =
  Buffer.add_string b "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (escape k) v))
    args;
  Buffer.add_string b "}"

let origin_of tracks =
  List.fold_left
    (fun acc (t : Trace.track) ->
      List.fold_left (fun acc (e : Trace.event) -> min acc e.ts) acc t.track_events)
    max_int tracks

let to_json tracks =
  let origin = origin_of tracks in
  let us ts = float_of_int (ts - origin) /. 1e3 in
  let b = Buffer.create 65_536 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let emit item =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b item
  in
  List.iter
    (fun (t : Trace.track) ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           t.track_domain (escape t.track_label));
      List.iter
        (fun (e : Trace.event) ->
          let common =
            Printf.sprintf "\"name\":\"%s\",\"cat\":\"eppi\",\"pid\":1,\"tid\":%d,\"ts\":%.3f"
              (escape e.name) t.track_domain (us e.ts)
          in
          let eb = Buffer.create 128 in
          Buffer.add_string eb "{";
          Buffer.add_string eb common;
          (match e.kind with
          | Trace.Span_begin -> Buffer.add_string eb ",\"ph\":\"B\""
          | Trace.Span_end -> Buffer.add_string eb ",\"ph\":\"E\""
          | Trace.Instant -> Buffer.add_string eb ",\"ph\":\"i\",\"s\":\"t\""
          | Trace.Counter -> Buffer.add_string eb ",\"ph\":\"C\"");
          if e.args <> [] then begin
            Buffer.add_string eb ",\"args\":";
            add_args eb e.args
          end;
          Buffer.add_string eb "}";
          emit (Buffer.contents eb))
        t.track_events)
    tracks;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let write path =
  let json = to_json (Trace.tracks ()) in
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc json)
