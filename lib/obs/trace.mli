(** Low-overhead structured tracing: spans, instants and counters.

    Every subsystem of the pipeline records into this layer — construction
    phases, per-shard MPC circuit evaluations, GMW interpreter runs, the
    simulated network's event loop, pool workers and serve shards — and
    the result exports as one Chrome trace-event file ({!Chrome}) or an
    aggregate table ({!Summary}).

    Discipline: each domain records into its own ring buffer held in
    domain-local storage (the same single-writer/no-lock scheme as the
    serve shards), so recording never contends across cores; in the
    exported trace each domain becomes its own track.  Tracing is globally
    off by default and every recording call starts with a single atomic
    load — the only cost hot loops pay when tracing is disabled.  Buffers
    are bounded: once a domain's buffer is full, further events are
    counted as dropped rather than recorded.

    Spans carry resource deltas: begin snapshots [Gc.quick_stat], end
    attaches [minor_words]/[major_words]/[promoted_words]/[minor_gcs]/
    [major_gcs] deltas to the closing event (on OCaml 5 these are
    process-wide counters, so treat them as attribution under a
    single-writer phase, not a per-domain truth).

    Not reentrant with respect to sessions: [enable]/[reset] while another
    domain is mid-record is a programming error (quiesce pools first). *)

type kind = Span_begin | Span_end | Instant | Counter

type event = {
  kind : kind;
  name : string;
  ts : int;  (** CLOCK_MONOTONIC nanoseconds. *)
  args : (string * int) list;
}

type track = {
  track_domain : int;  (** The recording domain's id. *)
  track_label : string;  (** ["main"] or ["domain-<id>"]. *)
  track_events : event list;  (** In recording order. *)
  track_dropped : int;  (** Events lost to the buffer bound. *)
}

val enabled : unit -> bool
(** One atomic load; the guard every instrumentation site checks first. *)

val enable : ?capacity_per_domain:int -> unit -> unit
(** Start a fresh tracing session (discarding any previous one).  Each
    domain that records gets its own buffer of [capacity_per_domain]
    events (default 65536).
    @raise Invalid_argument on a non-positive capacity. *)

val disable : unit -> unit
(** Stop recording; buffers are kept so the session can be exported. *)

val reset : unit -> unit
(** Stop recording and discard all buffers. *)

val span : ?args:(string * int) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a [name] span; [args] are attached to
    the closing event along with the GC deltas.  If [f] raises, the span
    is closed with a [raised] marker and the exception rethrown.  When
    tracing is disabled this is one atomic load plus a call to [f]. *)

val begin_span : string -> unit
(** Open a span manually (no closure).  Must be balanced by {!end_span}
    on the same domain; spans nest per-domain. *)

val end_span : ?args:(string * int) list -> string -> unit
(** Close the innermost open span.  An unbalanced end (e.g. tracing was
    enabled mid-span) is silently dropped. *)

val instant : ?args:(string * int) list -> string -> unit
(** A zero-duration marker event. *)

val counter : string -> (string * int) list -> unit
(** Sample a named counter track: each key becomes a series in that track
    (Chrome renders one stacked counter chart per distinct name). *)

val dropped_events : unit -> int
(** Total events lost to full buffers across every domain in the current
    session.  Safe to call while recording continues — the count is a
    monitoring-grade approximation, not a linearizable read.  0 when no
    session has recorded. *)

val tracks : unit -> track list
(** Snapshot of the current session, one track per recording domain,
    sorted by domain id.  Call with recording quiesced (after {!disable}
    or between pool jobs). *)
