(* Aggregate view of a tracing session: per-span-name totals (time, bytes,
   messages, allocation) against the session wall, plus the last sample of
   every counter series.  This is the table the CLI prints next to the
   Chrome export — the quick answer to "where did the time go" without
   opening Perfetto. *)

type row = {
  name : string;
  count : int;
  total_ns : int;
  bytes : int;
  messages : int;
  minor_words : int;
  major_words : int;
}

type t = {
  wall_ns : int;
  track_count : int;
  dropped : int;
  rows : row list;
  counters : (string * int) list;
}

let arg args key = match List.assoc_opt key args with Some v -> v | None -> 0

let compute tracks =
  let rows : (string, row) Hashtbl.t = Hashtbl.create 16 in
  let counters : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let counter_order = ref [] in
  let lo = ref max_int and hi = ref min_int and dropped = ref 0 in
  List.iter
    (fun (tr : Trace.track) ->
      dropped := !dropped + tr.track_dropped;
      (* Spans nest properly within a track (single writer, LIFO), so a
         plain stack pairs each end with its begin. *)
      let stack = ref [] in
      List.iter
        (fun (e : Trace.event) ->
          if e.ts < !lo then lo := e.ts;
          if e.ts > !hi then hi := e.ts;
          match e.kind with
          | Trace.Span_begin -> stack := e.ts :: !stack
          | Trace.Span_end -> (
              match !stack with
              | [] -> () (* unbalanced: begin fell off the ring *)
              | t0 :: rest ->
                  stack := rest;
                  let prev =
                    match Hashtbl.find_opt rows e.name with
                    | Some r -> r
                    | None ->
                        {
                          name = e.name;
                          count = 0;
                          total_ns = 0;
                          bytes = 0;
                          messages = 0;
                          minor_words = 0;
                          major_words = 0;
                        }
                  in
                  Hashtbl.replace rows e.name
                    {
                      prev with
                      count = prev.count + 1;
                      total_ns = prev.total_ns + (e.ts - t0);
                      bytes = prev.bytes + arg e.args "bytes";
                      messages = prev.messages + arg e.args "messages";
                      minor_words = prev.minor_words + arg e.args "minor_words";
                      major_words = prev.major_words + arg e.args "major_words";
                    })
          | Trace.Instant -> ()
          | Trace.Counter ->
              List.iter
                (fun (k, v) ->
                  let key = e.name ^ "." ^ k in
                  if not (Hashtbl.mem counters key) then
                    counter_order := key :: !counter_order;
                  Hashtbl.replace counters key v)
                e.args)
        tr.track_events)
    tracks;
  let rows =
    Hashtbl.fold (fun _ r acc -> r :: acc) rows []
    |> List.sort (fun a b -> compare b.total_ns a.total_ns)
  in
  {
    wall_ns = (if !hi >= !lo then !hi - !lo else 0);
    track_count = List.length tracks;
    dropped = !dropped;
    rows;
    counters =
      List.rev_map (fun key -> (key, Hashtbl.find counters key)) !counter_order;
  }

let ms ns = float_of_int ns /. 1e6

let pp ppf t =
  Format.fprintf ppf "trace summary: %d track%s, wall %.3f ms, %d event%s dropped@,"
    t.track_count
    (if t.track_count = 1 then "" else "s")
    (ms t.wall_ns) t.dropped
    (if t.dropped = 1 then "" else "s");
  if t.rows <> [] then begin
    Format.fprintf ppf "%-28s %8s %12s %7s %12s %12s@," "span" "count" "total(ms)"
      "%wall" "bytes" "minor(w)";
    List.iter
      (fun r ->
        let pct =
          if t.wall_ns = 0 then 0.0
          else 100.0 *. float_of_int r.total_ns /. float_of_int t.wall_ns
        in
        Format.fprintf ppf "%-28s %8d %12.3f %7.1f %12d %12d@," r.name r.count
          (ms r.total_ns) pct r.bytes r.minor_words)
      t.rows
  end;
  if t.counters <> [] then begin
    Format.fprintf ppf "counters (last sample):@,";
    List.iter
      (fun (k, v) ->
        (* A busy_us counter against the session wall is a utilization. *)
        if t.wall_ns > 0 && String.length k > 8 && Filename.check_suffix k ".busy_us"
        then
          Format.fprintf ppf "  %-32s = %d  (%.1f%% of wall)@," k v
            (100.0 *. float_of_int (v * 1000) /. float_of_int t.wall_ns)
        else Format.fprintf ppf "  %-32s = %d@," k v)
      t.counters
  end

let print ppf t = Format.fprintf ppf "@[<v>%a@]@." pp t

let counters_json t =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"trace.wall_ns\": %d,\n" t.wall_ns);
  Buffer.add_string b (Printf.sprintf "  \"trace.tracks\": %d,\n" t.track_count);
  Buffer.add_string b (Printf.sprintf "  \"trace.dropped\": %d" t.dropped);
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf ",\n  \"%s\": %d" (Chrome.escape k) v))
    t.counters;
  Buffer.add_string b "\n}\n";
  Buffer.contents b
