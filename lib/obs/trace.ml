open Eppi_prelude

type kind = Span_begin | Span_end | Instant | Counter
type event = { kind : kind; name : string; ts : int; args : (string * int) list }

(* The GC snapshot taken at span begin, so the matching end can attach
   allocation/collection deltas.  Words are floats in [Gc.quick_stat];
   deltas are reported as ints (a span never allocates 2^62 words). *)
type frame = {
  minor0 : float;
  major0 : float;
  promoted0 : float;
  minor_gcs0 : int;
  major_gcs0 : int;
}

type buffer = {
  domain : int;
  label : string;
  session : int;
  events : event array;
  mutable len : int;
  mutable dropped : int;
  mutable stack : frame list;
}

type track = {
  track_domain : int;
  track_label : string;
  track_events : event list;
  track_dropped : int;
}

let dummy_event = { kind = Instant; name = ""; ts = 0; args = [] }

(* Global tracing state.  [enabled_flag] is the single branch every
   disabled-path call pays; [session] invalidates the per-domain buffers
   cached in domain-local storage whenever tracing is (re)enabled or
   reset, so stale buffers from a previous session can never receive
   events.  The registry is only locked when a domain records its first
   event of a session — never on the per-event path. *)
let enabled_flag = Atomic.make false
let session = Atomic.make 0
let capacity = Atomic.make 65_536
let registry : buffer list ref = ref []
let registry_lock = Mutex.create ()

let dls_key : buffer option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let enabled () = Atomic.get enabled_flag

let enable ?(capacity_per_domain = 65_536) () =
  if capacity_per_domain < 1 then invalid_arg "Trace.enable: capacity must be >= 1";
  Mutex.lock registry_lock;
  registry := [];
  Mutex.unlock registry_lock;
  Atomic.set capacity capacity_per_domain;
  Atomic.incr session;
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let reset () =
  Atomic.set enabled_flag false;
  Mutex.lock registry_lock;
  registry := [];
  Mutex.unlock registry_lock;
  Atomic.incr session

(* The recording domain's buffer: cached in DLS, re-created (and
   re-registered) when the session moved on since it was cached.  Each
   buffer has exactly one writer — the domain that owns it — which is the
   same no-lock single-writer discipline the serve shards use. *)
let buffer_for_domain () =
  let slot = Domain.DLS.get dls_key in
  let current = Atomic.get session in
  match !slot with
  | Some b when b.session = current -> b
  | _ ->
      let domain = (Domain.self () :> int) in
      let b =
        {
          domain;
          label = (if domain = 0 then "main" else Printf.sprintf "domain-%d" domain);
          session = current;
          events = Array.make (Atomic.get capacity) dummy_event;
          len = 0;
          dropped = 0;
          stack = [];
        }
      in
      Mutex.lock registry_lock;
      registry := b :: !registry;
      Mutex.unlock registry_lock;
      slot := Some b;
      b

let record b ev =
  if b.len < Array.length b.events then begin
    b.events.(b.len) <- ev;
    b.len <- b.len + 1
  end
  else b.dropped <- b.dropped + 1

let begin_span name =
  if Atomic.get enabled_flag then begin
    let b = buffer_for_domain () in
    let s = Gc.quick_stat () in
    b.stack <-
      {
        minor0 = s.minor_words;
        major0 = s.major_words;
        promoted0 = s.promoted_words;
        minor_gcs0 = s.minor_collections;
        major_gcs0 = s.major_collections;
      }
      :: b.stack;
    record b { kind = Span_begin; name; ts = Clock.monotonic_ns (); args = [] }
  end

let end_span ?(args = []) name =
  if Atomic.get enabled_flag then begin
    let b = buffer_for_domain () in
    let ts = Clock.monotonic_ns () in
    match b.stack with
    | [] -> () (* unbalanced end: tracing was enabled mid-span; drop it *)
    | f :: rest ->
        b.stack <- rest;
        let s = Gc.quick_stat () in
        let gc_args =
          [
            ("minor_words", int_of_float (s.minor_words -. f.minor0));
            ("major_words", int_of_float (s.major_words -. f.major0));
            ("promoted_words", int_of_float (s.promoted_words -. f.promoted0));
            ("minor_gcs", s.minor_collections - f.minor_gcs0);
            ("major_gcs", s.major_collections - f.major_gcs0);
          ]
        in
        record b { kind = Span_end; name; ts; args = args @ gc_args }
  end

let span ?args name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    begin_span name;
    match f () with
    | v ->
        end_span ?args name;
        v
    | exception e ->
        end_span ~args:[ ("raised", 1) ] name;
        raise e
  end

let instant ?(args = []) name =
  if Atomic.get enabled_flag then begin
    let b = buffer_for_domain () in
    record b { kind = Instant; name; ts = Clock.monotonic_ns (); args }
  end

let counter name args =
  if Atomic.get enabled_flag then begin
    let b = buffer_for_domain () in
    record b { kind = Counter; name; ts = Clock.monotonic_ns (); args }
  end

let dropped_events () =
  Mutex.lock registry_lock;
  let buffers = !registry in
  Mutex.unlock registry_lock;
  (* [dropped] is a plain field owned by the recording domain; a live read
     here is a monitoring-grade approximation, same as the serve shard
     counters. *)
  List.fold_left (fun acc b -> acc + b.dropped) 0 buffers

let tracks () =
  Mutex.lock registry_lock;
  let buffers = !registry in
  Mutex.unlock registry_lock;
  buffers
  |> List.map (fun b ->
         {
           track_domain = b.domain;
           track_label = b.label;
           track_events = Array.to_list (Array.sub b.events 0 b.len);
           track_dropped = b.dropped;
         })
  |> List.sort (fun a b -> compare a.track_domain b.track_domain)
