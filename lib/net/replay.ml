module Workload = Eppi_serve.Workload
module Clock = Eppi_prelude.Clock

type summary = {
  requests : int;
  served : int;
  unknown : int;
  shed : int;
  providers_listed : int;
  first_generation : int;
  last_generation : int;
  wall_seconds : float;
}

let load path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let rec first_printable i =
    if i >= String.length text then ' '
    else match text.[i] with ' ' | '\t' | '\n' | '\r' -> first_printable (i + 1) | c -> c
  in
  if first_printable 0 = '{' then Workload.of_jsonl_log text else Workload.of_csv_log text

let run ?(depth = 32) client workload =
  if depth < 1 then invalid_arg "Replay.run: depth must be >= 1";
  let requests = Array.length workload in
  let served = ref 0
  and unknown = ref 0
  and shed = ref 0
  and listed = ref 0
  and first_generation = ref 0
  and last_generation = ref 0 in
  let t0 = Clock.seconds () in
  let pos = ref 0 in
  while !pos < requests do
    let window = min depth (requests - !pos) in
    let frames =
      List.init window (fun k -> Wire.Query { owner = workload.(!pos + k) })
    in
    List.iter
      (fun (response : Wire.response) ->
        match response with
        | Reply { generation; reply } ->
            if !first_generation = 0 then first_generation := generation;
            last_generation := generation;
            (match reply with
            | Providers providers ->
                incr served;
                listed := !listed + List.length providers
            | Unknown_owner -> incr unknown
            | Shed_rate_limit | Shed_queue_full -> incr shed)
        | other -> Client.unexpected "replay query" other)
      (Client.pipeline client frames);
    pos := !pos + window
  done;
  {
    requests;
    served = !served;
    unknown = !unknown;
    shed = !shed;
    providers_listed = !listed;
    first_generation = !first_generation;
    last_generation = !last_generation;
    wall_seconds = Clock.seconds () -. t0;
  }
