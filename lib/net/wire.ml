(* Frame layout:
     byte 0        magic 0xE5
     byte 1        version (1)
     byte 2        tag
     bytes 3..6    payload length, 32-bit big-endian
     bytes 7..     payload
   Request tags sit in 0x01..0x0F, response tags in 0x11..0x1F, so the two
   directions can never be confused by a misrouted frame. *)

type request =
  | Query of { owner : int }
  | Batch of int array
  | Audit of { provider : int }
  | Stats
  | Republish of { index_csv : string }
  | Ping
  | Shutdown
  | Republish_binary of { data : string }
  | Query_fuzzy of {
      probe : Eppi_fuzzy.Probe.t;
      k : int;
    }
      (* The probe carries only keyed blocking hashes, filter geometry and
         Bloom-encoded filters — never plaintext demographics.  The
         linkage seed itself stays off the wire: a probe keyed with the
         wrong seed scores as noise and resolves nothing. *)
  | Traced of {
      trace_id : int;
      request : request;
    }
      (* Trace-context envelope: any other request wrapped with the
         client's trace id, so client and daemon spans join in one
         exported trace.  Additive within version 1 — a peer that
         predates it rejects the tag as [Unknown_tag], so clients only
         wrap when the operator has turned tracing on.  Never nests. *)
  | Telemetry
  | Cluster_status

type cluster_status = {
  generation : int;
  swaps : int;
  peers : string list;
}

type response =
  | Reply of { generation : int; reply : Eppi_serve.Serve.reply }
  | Batch_reply of { generation : int; replies : Eppi_serve.Serve.reply array }
  | Audit_reply of { generation : int; owners : int list option }
  | Stats_json of string
  | Republished of { generation : int }
  | Pong
  | Shutting_down
  | Server_error of string
  | Fuzzy_reply of {
      generation : int;
      result : Eppi_serve.Serve.fuzzy_reply;
    }
  | Telemetry_json of string
  | Cluster_status_reply of cluster_status

type frame =
  | Request of request
  | Response of response

let magic = 0xE5
let version = 1
let header_bytes = 7
let default_max_payload = 1 lsl 26

let tag_query = 0x01
let tag_batch = 0x02
let tag_audit = 0x03
let tag_stats = 0x04
let tag_republish = 0x05
let tag_ping = 0x06
let tag_shutdown = 0x07
let tag_republish_binary = 0x08
let tag_query_fuzzy = 0x09
let tag_traced = 0x0A
let tag_telemetry = 0x0B
let tag_cluster_status = 0x0C
let tag_reply = 0x11
let tag_batch_reply = 0x12
let tag_audit_reply = 0x13
let tag_stats_json = 0x14
let tag_republished = 0x15
let tag_pong = 0x16
let tag_shutting_down = 0x17
let tag_server_error = 0x18
let tag_fuzzy_reply = 0x19
let tag_telemetry_json = 0x1A
let tag_cluster_status_reply = 0x1B

(* Probe limits: sane ceilings well above anything the CLI or bench
   generates, well below anything that could balloon a decode. *)
let max_fuzzy_k = 100_000
let max_probe_keys = 64
let max_probe_bits = 1 lsl 20
let max_probe_hashes = 1024

(* Replica-set bounds for Cluster_status replies: far above any sane
   deployment, small enough that a hostile peer list cannot balloon a
   decode. *)
let max_peers = 64
let max_peer_bytes = 256

type error =
  | Bad_magic of int
  | Bad_version of int
  | Unknown_tag of int
  | Oversized of {
      length : int;
      limit : int;
    }
  | Corrupt of string

let error_to_string = function
  | Bad_magic b -> Printf.sprintf "bad magic byte 0x%02X (expected 0x%02X)" b magic
  | Bad_version v -> Printf.sprintf "unknown protocol version %d (speak %d)" v version
  | Unknown_tag t -> Printf.sprintf "unknown frame tag 0x%02X" t
  | Oversized { length; limit } ->
      Printf.sprintf "payload of %d bytes exceeds the %d-byte bound" length limit
  | Corrupt msg -> Printf.sprintf "corrupt payload: %s" msg

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

(* ---- varints: zigzag LEB128 over OCaml's 63-bit ints ---- *)

(* Zigzag maps the int's bit pattern so small magnitudes of either sign
   encode short; [lsr] below is logical, so the loop terminates after at
   most 9 bytes (ceil 63/7) for any input. *)
let put_varint b n =
  let u = ref ((n lsl 1) lxor (n asr 62)) in
  let continue = ref true in
  while !continue do
    let byte = !u land 0x7F in
    u := !u lsr 7;
    if !u = 0 then begin
      Buffer.add_char b (Char.chr byte);
      continue := false
    end
    else Buffer.add_char b (Char.chr (byte lor 0x80))
  done

exception Corrupt_payload of string

(* A read cursor over one payload string. *)
type cursor = {
  payload : string;
  mutable pos : int;
}

let get_varint c =
  let u = ref 0 and shift = ref 0 and value = ref None in
  while !value = None do
    if c.pos >= String.length c.payload then raise (Corrupt_payload "truncated varint");
    if !shift > 56 then raise (Corrupt_payload "varint longer than 9 bytes");
    let byte = Char.code c.payload.[c.pos] in
    c.pos <- c.pos + 1;
    u := !u lor ((byte land 0x7F) lsl !shift);
    shift := !shift + 7;
    if byte land 0x80 = 0 then value := Some ((!u lsr 1) lxor (- (!u land 1)))
  done;
  Option.get !value

let get_count c ~what ~limit =
  let n = get_varint c in
  if n < 0 || n > limit then raise (Corrupt_payload (Printf.sprintf "%s count %d" what n));
  n

(* ---- payload encoders ---- *)

let put_int_list b ids =
  put_varint b (List.length ids);
  List.iter (put_varint b) ids

(* A filter travels as its set-bit indexes, ascending: Bloom filters on
   serving-grade parameters are sparse (a short field sets at most
   hashes * bigrams bits of 256+), so index varints beat raw bitmap bytes,
   and ascending order gives the decoder a strictness check for free. *)
let put_bitvec b bv =
  let indexes = Eppi_prelude.Bitvec.to_index_list bv in
  put_varint b (List.length indexes);
  List.iter (put_varint b) indexes

let put_probe b (probe : Eppi_fuzzy.Probe.t) =
  put_varint b (Array.length probe.keys);
  Array.iter (put_varint b) probe.keys;
  put_varint b probe.bits;
  put_varint b probe.hashes;
  put_bitvec b probe.first;
  put_bitvec b probe.last;
  put_bitvec b probe.dob;
  put_bitvec b probe.zip

let put_reply b (reply : Eppi_serve.Serve.reply) =
  match reply with
  | Providers providers ->
      Buffer.add_char b '\x00';
      put_int_list b providers
  | Unknown_owner -> Buffer.add_char b '\x01'
  | Shed_rate_limit -> Buffer.add_char b '\x02'
  | Shed_queue_full -> Buffer.add_char b '\x03'

let rec payload_of_request b = function
  | Query { owner } ->
      put_varint b owner;
      tag_query
  | Batch owners ->
      put_varint b (Array.length owners);
      Array.iter (put_varint b) owners;
      tag_batch
  | Audit { provider } ->
      put_varint b provider;
      tag_audit
  | Stats -> tag_stats
  | Republish { index_csv } ->
      Buffer.add_string b index_csv;
      tag_republish
  | Ping -> tag_ping
  | Shutdown -> tag_shutdown
  | Republish_binary { data } ->
      Buffer.add_string b data;
      tag_republish_binary
  | Query_fuzzy { probe; k } ->
      put_varint b k;
      put_probe b probe;
      tag_query_fuzzy
  | Traced { trace_id; request } ->
      (match request with
      | Traced _ -> invalid_arg "Wire: Traced frames do not nest"
      | _ -> ());
      if trace_id < 0 then invalid_arg "Wire: trace id must be non-negative";
      put_varint b trace_id;
      let inner = Buffer.create 32 in
      let inner_tag = payload_of_request inner request in
      Buffer.add_char b (Char.chr inner_tag);
      Buffer.add_buffer b inner;
      tag_traced
  | Telemetry -> tag_telemetry
  | Cluster_status -> tag_cluster_status

let payload_of_response b = function
  | Reply { generation; reply } ->
      put_varint b generation;
      put_reply b reply;
      tag_reply
  | Batch_reply { generation; replies } ->
      put_varint b generation;
      put_varint b (Array.length replies);
      Array.iter (put_reply b) replies;
      tag_batch_reply
  | Audit_reply { generation; owners } ->
      put_varint b generation;
      (match owners with
      | None -> Buffer.add_char b '\x00'
      | Some ids ->
          Buffer.add_char b '\x01';
          put_int_list b ids);
      tag_audit_reply
  | Stats_json json ->
      Buffer.add_string b json;
      tag_stats_json
  | Republished { generation } ->
      put_varint b generation;
      tag_republished
  | Pong -> tag_pong
  | Shutting_down -> tag_shutting_down
  | Server_error message ->
      Buffer.add_string b message;
      tag_server_error
  | Fuzzy_reply { generation; result } ->
      put_varint b generation;
      (match result with
      | Candidates candidates ->
          Buffer.add_char b '\x00';
          put_varint b (List.length candidates);
          List.iter
            (fun (cand : Eppi_serve.Serve.candidate) ->
              put_varint b cand.owner;
              (* Scores are quantized to 1e-4 at the resolver, so basis
                 points round-trip them bit-exactly. *)
              put_varint b (int_of_float (Float.round (cand.score *. 10000.)));
              put_int_list b cand.providers)
            candidates
      | No_resolver -> Buffer.add_char b '\x01'
      | Probe_mismatch -> Buffer.add_char b '\x02'
      | Fuzzy_shed -> Buffer.add_char b '\x03');
      tag_fuzzy_reply
  | Telemetry_json json ->
      Buffer.add_string b json;
      tag_telemetry_json
  | Cluster_status_reply { generation; swaps; peers } ->
      if List.length peers > max_peers then invalid_arg "Wire: too many peers";
      put_varint b generation;
      put_varint b swaps;
      put_varint b (List.length peers);
      List.iter
        (fun peer ->
          if String.length peer > max_peer_bytes then invalid_arg "Wire: peer address too long";
          put_varint b (String.length peer);
          Buffer.add_string b peer)
        peers;
      tag_cluster_status_reply

let add_frame b payload_of value =
  let body = Buffer.create 64 in
  let tag = payload_of body value in
  let len = Buffer.length body in
  Buffer.add_char b (Char.chr magic);
  Buffer.add_char b (Char.chr version);
  Buffer.add_char b (Char.chr tag);
  Buffer.add_char b (Char.chr ((len lsr 24) land 0xFF));
  Buffer.add_char b (Char.chr ((len lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((len lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (len land 0xFF));
  Buffer.add_buffer b body

let encode_request b request = add_frame b payload_of_request request
let encode_response b response = add_frame b payload_of_response response

let frame_to_string = function
  | Request request ->
      let b = Buffer.create 64 in
      encode_request b request;
      Buffer.contents b
  | Response response ->
      let b = Buffer.create 64 in
      encode_response b response;
      Buffer.contents b

(* ---- payload decoders ---- *)

let get_int_list c ~what =
  (* Each id costs at least one byte, so the count can never exceed the
     bytes that remain — reject early instead of allocating on a lie. *)
  let count = get_count c ~what ~limit:(String.length c.payload - c.pos) in
  List.init count (fun _ -> get_varint c)

let get_reply c : Eppi_serve.Serve.reply =
  if c.pos >= String.length c.payload then raise (Corrupt_payload "truncated reply");
  let kind = Char.code c.payload.[c.pos] in
  c.pos <- c.pos + 1;
  match kind with
  | 0 -> Providers (get_int_list c ~what:"provider")
  | 1 -> Unknown_owner
  | 2 -> Shed_rate_limit
  | 3 -> Shed_queue_full
  | k -> raise (Corrupt_payload (Printf.sprintf "unknown reply kind %d" k))

let get_bitvec c ~bits =
  (* Each index costs at least a byte; no filter sets more than [bits]. *)
  let limit = min bits (String.length c.payload - c.pos) in
  let count = get_count c ~what:"filter bit" ~limit in
  let prev = ref (-1) in
  let indexes =
    List.init count (fun _ ->
        let i = get_varint c in
        if i <= !prev || i >= bits then
          raise (Corrupt_payload (Printf.sprintf "filter index %d out of order or range" i));
        prev := i;
        i)
  in
  Eppi_prelude.Bitvec.of_index_list bits indexes

let get_probe c : Eppi_fuzzy.Probe.t =
  let key_count = get_count c ~what:"blocking key" ~limit:max_probe_keys in
  let keys = Array.init key_count (fun _ -> get_varint c) in
  let bits = get_varint c in
  if bits < 1 || bits > max_probe_bits then
    raise (Corrupt_payload (Printf.sprintf "filter bits %d" bits));
  let hashes = get_varint c in
  if hashes < 1 || hashes > max_probe_hashes then
    raise (Corrupt_payload (Printf.sprintf "filter hashes %d" hashes));
  let first = get_bitvec c ~bits in
  let last = get_bitvec c ~bits in
  let dob = get_bitvec c ~bits in
  let zip = get_bitvec c ~bits in
  { keys; bits; hashes; first; last; dob; zip }

let rest c =
  let s = String.sub c.payload c.pos (String.length c.payload - c.pos) in
  c.pos <- String.length c.payload;
  s

let rec parse_payload tag payload =
  let c = { payload; pos = 0 } in
  let frame =
    if tag = tag_query then Request (Query { owner = get_varint c })
    else if tag = tag_batch then begin
      let count = get_count c ~what:"batch" ~limit:(String.length payload - c.pos) in
      Request (Batch (Array.init count (fun _ -> get_varint c)))
    end
    else if tag = tag_audit then Request (Audit { provider = get_varint c })
    else if tag = tag_stats then Request Stats
    else if tag = tag_republish then Request (Republish { index_csv = rest c })
    else if tag = tag_ping then Request Ping
    else if tag = tag_shutdown then Request Shutdown
    else if tag = tag_republish_binary then Request (Republish_binary { data = rest c })
    else if tag = tag_query_fuzzy then begin
      let k = get_varint c in
      if k < 1 || k > max_fuzzy_k then
        raise (Corrupt_payload (Printf.sprintf "fuzzy k %d" k));
      Request (Query_fuzzy { probe = get_probe c; k })
    end
    else if tag = tag_traced then begin
      let trace_id = get_varint c in
      if trace_id < 0 then raise (Corrupt_payload (Printf.sprintf "trace id %d" trace_id));
      if c.pos >= String.length payload then raise (Corrupt_payload "truncated traced frame");
      let inner_tag = Char.code payload.[c.pos] in
      c.pos <- c.pos + 1;
      if inner_tag = tag_traced then raise (Corrupt_payload "nested traced frame");
      if not (inner_tag >= tag_query && inner_tag <= tag_cluster_status) then
        raise (Corrupt_payload (Printf.sprintf "traced frame wraps tag 0x%02X" inner_tag));
      match parse_payload inner_tag (rest c) with
      | Request request -> Request (Traced { trace_id; request })
      | Response _ -> assert false (* the inner tag range admits requests only *)
    end
    else if tag = tag_telemetry then Request Telemetry
    else if tag = tag_cluster_status then Request Cluster_status
    else if tag = tag_cluster_status_reply then begin
      let generation = get_varint c in
      let swaps = get_varint c in
      if swaps < 0 then raise (Corrupt_payload (Printf.sprintf "swap count %d" swaps));
      let count = get_count c ~what:"peer" ~limit:max_peers in
      let peers =
        List.init count (fun _ ->
            (* Each peer's bytes are all in this payload, so a length
               beyond the remaining bytes is a lie, not a short read. *)
            let len =
              get_count c ~what:"peer byte"
                ~limit:(min max_peer_bytes (String.length payload - c.pos))
            in
            let peer = String.sub c.payload c.pos len in
            c.pos <- c.pos + len;
            peer)
      in
      Response (Cluster_status_reply { generation; swaps; peers })
    end
    else if tag = tag_telemetry_json then Response (Telemetry_json (rest c))
    else if tag = tag_reply then begin
      let generation = get_varint c in
      Response (Reply { generation; reply = get_reply c })
    end
    else if tag = tag_batch_reply then begin
      let generation = get_varint c in
      let count = get_count c ~what:"batch reply" ~limit:(String.length payload - c.pos) in
      Response (Batch_reply { generation; replies = Array.init count (fun _ -> get_reply c) })
    end
    else if tag = tag_audit_reply then begin
      let generation = get_varint c in
      if c.pos >= String.length payload then raise (Corrupt_payload "truncated option");
      let present = Char.code payload.[c.pos] in
      c.pos <- c.pos + 1;
      match present with
      | 0 -> Response (Audit_reply { generation; owners = None })
      | 1 -> Response (Audit_reply { generation; owners = Some (get_int_list c ~what:"owner") })
      | k -> raise (Corrupt_payload (Printf.sprintf "unknown option tag %d" k))
    end
    else if tag = tag_stats_json then Response (Stats_json (rest c))
    else if tag = tag_republished then Response (Republished { generation = get_varint c })
    else if tag = tag_pong then Response Pong
    else if tag = tag_shutting_down then Response Shutting_down
    else if tag = tag_server_error then Response (Server_error (rest c))
    else if tag = tag_fuzzy_reply then begin
      let generation = get_varint c in
      if c.pos >= String.length payload then raise (Corrupt_payload "truncated fuzzy reply");
      let kind = Char.code payload.[c.pos] in
      c.pos <- c.pos + 1;
      let result : Eppi_serve.Serve.fuzzy_reply =
        match kind with
        | 0 ->
            (* A candidate costs at least three bytes (owner, score,
               provider count). *)
            let count =
              get_count c ~what:"candidate" ~limit:((String.length payload - c.pos) / 3 + 1)
            in
            Candidates
              (List.init count (fun _ ->
                   let owner = get_varint c in
                   let bp = get_varint c in
                   if bp < 0 || bp > 10_000 then
                     raise (Corrupt_payload (Printf.sprintf "score %d bp" bp));
                   let providers = get_int_list c ~what:"provider" in
                   ({ owner; score = float_of_int bp /. 10000.0; providers }
                     : Eppi_serve.Serve.candidate)))
        | 1 -> No_resolver
        | 2 -> Probe_mismatch
        | 3 -> Fuzzy_shed
        | k -> raise (Corrupt_payload (Printf.sprintf "unknown fuzzy reply kind %d" k))
      in
      Response (Fuzzy_reply { generation; result })
    end
    else assert false (* the decoder rejects unknown tags at the header *)
  in
  if c.pos <> String.length payload then
    raise (Corrupt_payload (Printf.sprintf "%d trailing bytes" (String.length payload - c.pos)));
  frame

let known_tag tag =
  (tag >= tag_query && tag <= tag_cluster_status)
  || (tag >= tag_reply && tag <= tag_cluster_status_reply)

(* ---- the incremental decoder ---- *)

module Decoder = struct
  type t = {
    mutable buf : Bytes.t;
    mutable off : int;  (* consumed prefix *)
    mutable len : int;  (* valid bytes (off <= len) *)
    max_payload : int;
    mutable poison : error option;
  }

  let create ?(max_payload = default_max_payload) () =
    if max_payload <= 0 then invalid_arg "Wire.Decoder.create: non-positive payload bound";
    { buf = Bytes.create 4096; off = 0; len = 0; max_payload; poison = None }

  let buffered t = t.len - t.off

  let feed t bytes ~off ~len =
    if off < 0 || len < 0 || off + len > Bytes.length bytes then
      invalid_arg "Wire.Decoder.feed: slice out of bounds";
    (* Reclaim the consumed prefix, then grow if the tail still lacks room. *)
    if t.off > 0 && t.len + len > Bytes.length t.buf then begin
      Bytes.blit t.buf t.off t.buf 0 (t.len - t.off);
      t.len <- t.len - t.off;
      t.off <- 0
    end;
    if t.len + len > Bytes.length t.buf then begin
      let capacity = ref (Bytes.length t.buf) in
      while t.len + len > !capacity do
        capacity := !capacity * 2
      done;
      let grown = Bytes.create !capacity in
      Bytes.blit t.buf 0 grown 0 t.len;
      t.buf <- grown
    end;
    Bytes.blit bytes off t.buf t.len len;
    t.len <- t.len + len

  let feed_string t s = feed t (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

  let byte t i = Char.code (Bytes.get t.buf (t.off + i))

  let fail t e =
    t.poison <- Some e;
    Error e

  let next t =
    match t.poison with
    | Some e -> Error e
    | None ->
        let available = buffered t in
        (* Validate the header prefix byte-by-byte so garbage is rejected
           as soon as it arrives, not once 7 bytes accumulate. *)
        if available >= 1 && byte t 0 <> magic then fail t (Bad_magic (byte t 0))
        else if available >= 2 && byte t 1 <> version then fail t (Bad_version (byte t 1))
        else if available >= 3 && not (known_tag (byte t 2)) then fail t (Unknown_tag (byte t 2))
        else if available < header_bytes then Ok None
        else begin
          let length = (byte t 3 lsl 24) lor (byte t 4 lsl 16) lor (byte t 5 lsl 8) lor byte t 6 in
          if length > t.max_payload then fail t (Oversized { length; limit = t.max_payload })
          else if available < header_bytes + length then Ok None
          else begin
            let payload = Bytes.sub_string t.buf (t.off + header_bytes) length in
            let tag = byte t 2 in
            t.off <- t.off + header_bytes + length;
            if t.off = t.len then begin
              t.off <- 0;
              t.len <- 0
            end;
            match parse_payload tag payload with
            | frame -> Ok (Some frame)
            | exception Corrupt_payload msg -> fail t (Corrupt msg)
          end
        end
end
