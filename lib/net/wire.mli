(** The locator daemon's binary wire protocol.

    Every frame is a fixed 7-byte header — magic byte, protocol version,
    frame tag, 32-bit big-endian payload length — followed by the payload.
    Integers inside payloads are zigzag LEB128 varints, so small ids cost
    one byte; posting lists are a varint count followed by the ids.

    The protocol is strictly request/response: the server sends exactly one
    response frame per request frame, in request order, which is what lets
    {!Client} pipeline N requests over one socket and match replies by
    position.  Request and response tags live in disjoint ranges, so one
    {!Decoder} serves both ends of the connection and a frame arriving on
    the wrong side is a typed protocol error, not a misparse.

    Decoding is incremental ({!Decoder}): feed whatever bytes the socket
    produced, get back complete frames; partial headers and split payloads
    reassemble across feeds.  Every malformed input is a typed {!error} —
    wrong magic, unknown version or tag, a payload longer than the
    configured bound, or a payload whose body does not parse.  A decoder
    that has reported an error is poisoned and keeps reporting it: the only
    safe continuation after a framing error is closing the connection. *)

type request =
  | Query of { owner : int }  (** QueryPPI for one owner id. *)
  | Batch of int array  (** QueryPPI for many owners in one frame. *)
  | Audit of { provider : int }  (** Provider-side audit (inverse postings). *)
  | Stats  (** The engine's merged metrics snapshot as JSON. *)
  | Republish of { index_csv : string }
      (** Hot-swap: install the index serialized as {!Eppi.Index.to_csv}. *)
  | Ping  (** Liveness probe. *)
  | Shutdown  (** Graceful stop: the server flushes replies and exits. *)
  | Republish_binary of { data : string }
      (** Hot-swap: install the index serialized with {!Index_codec} —
          the compact bit-packed payload ({!Index_codec.encode}), ~10x
          smaller than the CSV form on typical ε-PPI indexes.  The
          payload carries its own codec version byte. *)
  | Query_fuzzy of { probe : Eppi_fuzzy.Probe.t; k : int }
      (** Approximate-identity lookup: resolve the probe against the
          published resolver, return at most [k] candidates with their
          ε-PPI rows.  The payload carries {e only} keyed blocking hashes,
          the filter geometry, and Bloom-encoded field filters (set-bit
          indexes, ascending) — plaintext demographics never cross the
          wire, and neither does the linkage seed: a probe keyed with the
          wrong seed scores as noise. *)
  | Traced of { trace_id : int; request : request }
      (** Trace-context envelope: any other request wrapped with the
          client's trace id (non-negative varint), so the daemon can tag
          its server-side spans with the same id and the two processes'
          tracks join in one exported Chrome/Perfetto trace.  Additive
          within protocol version 1: a daemon that predates the tag
          rejects it as {!Unknown_tag}, so clients only wrap when tracing
          is enabled (see {!Client.connect}'s [trace_context]).  Envelopes
          never nest, and the inner frame must be a request. *)
  | Telemetry
      (** The daemon's live telemetry snapshot as JSON: rolling-window
          p50/p99/throughput per request class, per-stage pipeline
          histograms with their conservation check, slow-request ring,
          per-worker counters, generation/swap and trace-drop info. *)
  | Cluster_status
      (** Replication introspection: the daemon's current index
          generation, applied-swap count and configured replica set
          ({!Server.config.peers}) — the observables a republish fan-out
          driver compares across replicas to decide the cluster has
          converged. *)

type cluster_status = {
  generation : int;  (** The replica's current index generation. *)
  swaps : int;  (** Republish swaps its shards have observed so far. *)
  peers : string list;
      (** The replica set the daemon was started with ([serve --peers]),
          verbatim; empty for a standalone daemon. *)
}

type response =
  | Reply of { generation : int; reply : Eppi_serve.Serve.reply }
  | Batch_reply of { generation : int; replies : Eppi_serve.Serve.reply array }
  | Audit_reply of { generation : int; owners : int list option }
      (** [None]: the provider id is out of range. *)
  | Stats_json of string
  | Republished of { generation : int }  (** The freshly installed generation. *)
  | Pong
  | Shutting_down
  | Server_error of string
      (** The request was understood but could not be served (e.g. a
          republish payload that fails CSV validation). *)
  | Fuzzy_reply of { generation : int; result : Eppi_serve.Serve.fuzzy_reply }
      (** Candidate scores travel as basis-point varints (the resolver
          quantizes scores to 1e-4, so the encoding is lossless). *)
  | Telemetry_json of string  (** Reply to {!request.Telemetry}. *)
  | Cluster_status_reply of cluster_status
      (** Reply to {!request.Cluster_status}.  Peers travel as
          length-prefixed strings, bounded (64 peers of 256 bytes) so a
          hostile reply cannot balloon the decode. *)

type frame =
  | Request of request
  | Response of response

val version : int
(** Protocol version carried in every header (currently 1). *)

val header_bytes : int
(** Fixed header size: 7. *)

val default_max_payload : int
(** Decoder payload bound: 64 MiB — sized for republish frames carrying a
    full index CSV. *)

val encode_request : Buffer.t -> request -> unit
val encode_response : Buffer.t -> response -> unit

val frame_to_string : frame -> string
(** One whole frame (header + payload) as a string. *)

type error =
  | Bad_magic of int  (** First byte of a frame was not the magic. *)
  | Bad_version of int  (** Unknown protocol version. *)
  | Unknown_tag of int  (** Version understood, frame tag not. *)
  | Oversized of { length : int; limit : int }
      (** Declared payload length exceeds the decoder's bound. *)
  | Corrupt of string
      (** Header fine, payload body malformed (truncated varint, bad
          count, trailing bytes, …). *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

module Decoder : sig
  type t

  val create : ?max_payload:int -> unit -> t
  (** @raise Invalid_argument on a non-positive payload bound. *)

  val feed : t -> Bytes.t -> off:int -> len:int -> unit
  (** Append [len] bytes of [buf] starting at [off] (as read from a
      socket).  @raise Invalid_argument on an out-of-bounds slice. *)

  val feed_string : t -> string -> unit

  val next : t -> (frame option, error) result
  (** [Ok (Some frame)]: one complete frame was consumed from the buffer
      (call again — a single feed may contain several frames).
      [Ok None]: the buffered bytes are a valid prefix; feed more.
      [Error e]: the stream is broken at the current position; the decoder
      is poisoned and every subsequent call returns the same error. *)

  val buffered : t -> int
  (** Bytes fed but not yet consumed as frames. *)
end
