(** Server endpoints: a Unix-domain socket path or a TCP host/port.

    The locator daemon and its clients speak the same {!Wire} protocol over
    either transport; tests and single-host deployments use Unix sockets
    (no port allocation, file-permission access control), multi-host ones
    TCP. *)

type t =
  | Unix_socket of string  (** Filesystem path of the listening socket. *)
  | Tcp of string * int  (** Host (empty = loopback) and port. *)

type parse_error =
  | Empty_address  (** The empty string names nothing. *)
  | Bad_port of string
      (** The text after the last colon is not a number — includes the
          trailing-colon case ([Bad_port ""]). *)
  | Port_out_of_range of int  (** Numeric, but outside [1, 65535]. *)

val parse_error_to_string : parse_error -> string

val to_string : t -> string

val parse : string -> (t, parse_error) result
(** CLI syntax: anything containing a [/] is a Unix-socket path; otherwise
    [host:port] (or [:port], binding loopback) is TCP.  A bare name with no
    [/] and no [:] is a Unix-socket path in the current directory.
    Rejections are typed: the empty string, a trailing colon or
    non-numeric port ([Bad_port]), port 0 or above 65535
    ([Port_out_of_range]). *)

val of_string : string -> t
(** {!parse}, raising on rejection — for call sites that validated
    earlier.  @raise Invalid_argument naming the {!parse_error}. *)

val sockaddr : t -> Unix.sockaddr
(** Resolve to a connectable/bindable address.
    @raise Failure when a TCP hostname does not resolve. *)
