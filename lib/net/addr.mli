(** Server endpoints: a Unix-domain socket path or a TCP host/port.

    The locator daemon and its clients speak the same {!Wire} protocol over
    either transport; tests and single-host deployments use Unix sockets
    (no port allocation, file-permission access control), multi-host ones
    TCP. *)

type t =
  | Unix_socket of string  (** Filesystem path of the listening socket. *)
  | Tcp of string * int  (** Host (empty = loopback) and port. *)

val to_string : t -> string

val of_string : string -> t
(** CLI syntax: anything containing a [/] is a Unix-socket path; otherwise
    [host:port] (or [:port], binding loopback) is TCP.  A bare name with no
    [/] and no [:] is a Unix-socket path in the current directory.
    @raise Invalid_argument on an empty string or a non-numeric port. *)

val sockaddr : t -> Unix.sockaddr
(** Resolve to a connectable/bindable address.
    @raise Failure when a TCP hostname does not resolve. *)
