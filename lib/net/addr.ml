type t =
  | Unix_socket of string
  | Tcp of string * int

let to_string = function
  | Unix_socket path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" (if host = "" then "127.0.0.1" else host) port

let of_string s =
  if s = "" then invalid_arg "Addr.of_string: empty address";
  if String.contains s '/' then Unix_socket s
  else
    match String.rindex_opt s ':' with
    | None -> Unix_socket s
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some port when port > 0 && port < 65536 -> Tcp (host, port)
        | _ -> invalid_arg (Printf.sprintf "Addr.of_string: bad port in %S" s))

let sockaddr = function
  | Unix_socket path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let inet =
        if host = "" then Unix.inet_addr_loopback
        else
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.gethostbyname host with
            | { h_addr_list = [||]; _ } -> failwith (Printf.sprintf "no address for host %S" host)
            | { h_addr_list; _ } -> h_addr_list.(0)
            | exception Not_found -> failwith (Printf.sprintf "unknown host %S" host))
      in
      Unix.ADDR_INET (inet, port)
