type t =
  | Unix_socket of string
  | Tcp of string * int

type parse_error =
  | Empty_address
  | Bad_port of string
  | Port_out_of_range of int

let parse_error_to_string = function
  | Empty_address -> "empty address"
  | Bad_port "" -> "trailing colon with no port"
  | Bad_port s -> Printf.sprintf "non-numeric port %S" s
  | Port_out_of_range p -> Printf.sprintf "port %d outside [1, 65535]" p

let to_string = function
  | Unix_socket path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" (if host = "" then "127.0.0.1" else host) port

let parse s =
  if s = "" then Error Empty_address
  else if String.contains s '/' then Ok (Unix_socket s)
  else
    match String.rindex_opt s ':' with
    | None -> Ok (Unix_socket s)
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | None -> Error (Bad_port port)
        | Some p when p < 1 || p > 65535 -> Error (Port_out_of_range p)
        | Some p -> Ok (Tcp (host, p)))

let of_string s =
  match parse s with
  | Ok addr -> addr
  | Error e -> invalid_arg (Printf.sprintf "Addr.of_string: %s in %S" (parse_error_to_string e) s)

let sockaddr = function
  | Unix_socket path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let inet =
        if host = "" then Unix.inet_addr_loopback
        else
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.gethostbyname host with
            | { h_addr_list = [||]; _ } -> failwith (Printf.sprintf "no address for host %S" host)
            | { h_addr_list; _ } -> h_addr_list.(0)
            | exception Not_found -> failwith (Printf.sprintf "unknown host %S" host))
      in
      Unix.ADDR_INET (inet, port)
