(** Always-on request-stage telemetry for the daemon.

    One {!record} per decoded request, stamped at each pipeline hand-off:

    {v
    read ── decode ──► decoded ── dispatch ──► enqueued ── queue ──►
    worker start ── execute ──► done ── reorder ──► flushed ── flush ──►
    written
    v}

    The stages telescope, so [decode + dispatch + queue + execute +
    reorder + flush = total] holds exactly in integer nanoseconds, per
    request and therefore over the aggregated sums — the conservation law
    the tests and check.sh assert.  Aggregates are cumulative per-stage
    {!Eppi_prelude.Stats.Log2_histogram}s plus a rolling
    {!Eppi_prelude.Stats.Windowed} per request class (query, batch, fuzzy,
    audit, republish, admin) and a bounded worst-N slow-request ring with
    full stage breakdowns.

    Single-writer: the mux domain creates, flushes and finishes records;
    workers stamp [t_started]/[t_done] on records they execute, ordered
    before the mux's reads by the completion stack's release/acquire
    pair. *)

type record = {
  mutable kind : int;  (** [Server.request_code] of the unwrapped request. *)
  mutable trace_id : int;  (** Propagated trace context, -1 when absent. *)
  mutable t_read : int;
  mutable t_decoded : int;
  mutable t_dispatched : int;
  mutable t_started : int;
  mutable t_done : int;
  mutable t_flushed : int;
}

val make : kind:int -> trace_id:int -> t_read:int -> t_decoded:int -> record
(** A fresh record with every later stamp defaulted to [t_decoded], so an
    inline (no-worker) request that never crosses a queue reports zero
    queue/execute time until those stamps are set. *)

type t

val create : ?slow_slots:int -> ?window_slots:int -> ?window_slot_ns:int -> unit -> t
(** Defaults: a 16-entry slow ring and a 10 x 1 s rolling window.
    @raise Invalid_argument when [slow_slots < 1]. *)

val finish : t -> record -> t_written:int -> unit
(** Fold a completed request into every aggregate.  [t_written] is the
    monotonic stamp at which the last byte of the response reached the
    socket; it also drives window rotation. *)

val finished : t -> int
(** Requests folded in so far. *)

val stage_sum_ns : t -> int
(** Sum over all six per-stage sums — equals {!total_sum_ns} exactly. *)

val total_sum_ns : t -> int

val to_json : ?extra:string -> t -> now_ns:int -> string
(** The snapshot carried by the [Telemetry] wire reply: window summaries
    per class, per-stage histograms with integer sums, the conservation
    check, and the slow ring (slowest first).  [extra] is spliced in as
    additional top-level fields (the server adds worker, generation and
    trace info). *)

val class_of_kind : int -> int
(** Request-code → window-class index (see {!classes}). *)

val classes : string array
val stage_names : string array
val kind_name : int -> string
