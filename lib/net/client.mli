(** Blocking client for the locator daemon.

    One socket, strict request/response ordering (the server's guarantee),
    so {!pipeline} can keep N requests in flight and match replies by
    position — the throughput lever the [bench -- net] depth sweep
    measures.  Not thread-safe: one [t] per domain.

    Every returned generation is the index generation the server computed
    the reply from; after a {!republish} returns generation [g], every
    later reply on any connection carries a generation [>= g]. *)

type t

exception Protocol_error of string
(** The server broke the framing or answered with the wrong frame kind —
    or sent [Server_error] for a request that admits no typed failure. *)

val unexpected : string -> Wire.response -> 'a
(** [unexpected what response] raises {!Protocol_error} naming the frame
    kind [what] got instead of what it wanted — for callers matching raw
    {!pipeline} responses. *)

val connect : ?retries:int -> ?retry_delay:float -> ?max_payload:int -> Addr.t -> t
(** Connect, retrying a refused/absent endpoint [retries] times (default 0)
    with [retry_delay] seconds between attempts (default 0.05) — the
    just-started-daemon race.  @raise Unix.Unix_error once retries are
    exhausted. *)

val close : t -> unit
(** Idempotent. *)

val call : t -> Wire.request -> Wire.response
(** Send one request, block for its response. *)

val pipeline : t -> Wire.request list -> Wire.response list
(** Send every request over the socket while concurrently reading replies
    (interleaved with [select], so an arbitrarily long batch cannot
    deadlock against the server's backpressure), returning the responses
    in request order. *)

(* Typed wrappers; each raises {!Protocol_error} on a mismatched response. *)

val query : t -> owner:int -> int * Eppi_serve.Serve.reply
(** (generation, reply). *)

val batch : t -> int array -> int * Eppi_serve.Serve.reply array

val audit : t -> provider:int -> int * int list option

val stats_json : t -> string
(** The engine's merged {!Eppi_serve.Metrics} snapshot as JSON. *)

val republish : t -> index_csv:string -> (int, string) result
(** Install a new index on the server ({!Eppi.Index.to_csv} payload);
    [Ok generation] on success, [Error message] when the server rejects
    the CSV. *)

val ping : t -> unit

val shutdown : t -> unit
(** Ask the server to stop; returns once [Shutting_down] is acknowledged. *)
