(** Blocking client for the locator daemon.

    One socket, strict request/response ordering (the server's guarantee),
    so {!pipeline} can keep N requests in flight and match replies by
    position — the throughput lever the [bench -- net] depth sweep
    measures.  Not thread-safe: one [t] per domain.

    Every returned generation is the index generation the server computed
    the reply from; after a {!republish} returns generation [g], every
    later reply on any connection carries a generation [>= g]. *)

type t

type error =
  | Timed_out
      (** No response within [request_timeout].  The connection is kept (the
          response may still be in flight); the caller decides whether to
          retry or {!close}.  Never triggers a reconnect. *)
  | Connection_lost of string
      (** The transport died and — if reconnect was enabled — every
          re-dial attempt failed too. *)

exception Protocol_error of string
(** The server broke the framing or answered with the wrong frame kind —
    or sent [Server_error] for a request that admits no typed failure. *)

val unexpected : string -> Wire.response -> 'a
(** [unexpected what response] raises {!Protocol_error} naming the frame
    kind [what] got instead of what it wanted — for callers matching raw
    {!pipeline} responses. *)

val connect :
  ?retries:int ->
  ?retry_delay:float ->
  ?max_payload:int ->
  ?request_timeout:float ->
  ?reconnect:bool ->
  ?max_reconnects:int ->
  ?trace_context:bool ->
  ?backoff_seed:int ->
  Addr.t ->
  t
(** Connect, retrying a refused/absent endpoint [retries] times (default 0)
    with [retry_delay] seconds between attempts (default 0.05) — the
    just-started-daemon race.  SIGPIPE is set to ignore (once, globally) so
    a dead peer surfaces as [EPIPE] rather than killing the process.

    [request_timeout] bounds every subsequent request: a call whose response
    does not arrive within that many seconds returns {!Timed_out} (for
    {!pipeline} it is an inactivity bound — reset whenever the socket makes
    progress).  Default: wait forever.

    [reconnect] (default false) makes {!call_result}, {!call} and
    {!pipeline} transparently re-dial the same address when the connection
    drops mid-exchange, with jittered capped exponential backoff (see
    {!backoff_delay}) and at most [max_reconnects] (default 5) attempts,
    then re-send the unanswered request(s) on the fresh socket —
    at-least-once semantics: a request whose response was lost in flight is
    executed again.  [backoff_seed] seeds the jitter stream; the default
    mixes the pid with a process-global counter so clients that lost the
    same server never reconnect in lockstep.

    [trace_context] (default true): while {!Eppi_obs.Trace} tracing is
    enabled, {!call_result}/{!call} wrap each request in a [Wire.Traced]
    envelope carrying a fresh trace id and mirror that id on a
    [client.request] span, so the client's and the daemon's tracks join in
    one exported trace.  Set it to false when talking to a daemon that
    predates the envelope tag (it would reject the frame as an unknown
    tag); with tracing disabled the wire is byte-identical either way.
    {!pipeline} never wraps.  @raise Unix.Unix_error once connect retries
    are exhausted. *)

val backoff_delay : base:float -> attempt:int -> u:float -> float
(** The reconnect schedule, exposed pure so its bound is testable:
    attempt [k] (1-based) sleeps [min (base * 2^(k-1)) 2.0] scaled by
    [0.5 + u/2] with [u] uniform in [0, 1) — always within
    [[full/2, full)] of the capped exponential [full], so a fleet of
    clients spreads over half the window instead of reconnecting in
    lockstep, while a run of small draws can never collapse the delay to
    zero and hammer a recovering server.
    @raise Invalid_argument when [attempt < 1] or [u] is outside
    [[0, 1)]. *)

val close : t -> unit
(** Idempotent. *)

val call_result : t -> Wire.request -> (Wire.response, error) result
(** Send one request, block for its response; transport failures come back
    as [Error] instead of an exception.  Framing violations still raise
    {!Protocol_error}. *)

val call : t -> Wire.request -> Wire.response
(** Send one request, block for its response.  @raise Protocol_error on
    timeout ("request timed out") or connection loss, after any configured
    reconnect attempts. *)

val pipeline : t -> Wire.request list -> Wire.response list
(** Send every request over the socket while concurrently reading replies
    (interleaved with [select], so an arbitrarily long batch cannot
    deadlock against the server's backpressure), returning the responses
    in request order. *)

(* Typed wrappers; each raises {!Protocol_error} on a mismatched response. *)

val query : t -> owner:int -> int * Eppi_serve.Serve.reply
(** (generation, reply). *)

val query_fuzzy : ?k:int -> t -> Eppi_fuzzy.Probe.t -> int * Eppi_serve.Serve.fuzzy_reply
(** Approximate-identity lookup: at most [k] (default 10) candidates,
    each with its ε-PPI row, tagged with the generation of the
    (postings, resolver) pair that answered.  Build the probe locally
    with {!Eppi_fuzzy.Probe.of_demographic} under the shared linkage
    seed — only Bloom filters and keyed blocking hashes go on the
    wire. *)

val batch : t -> int array -> int * Eppi_serve.Serve.reply array

val audit : t -> provider:int -> int * int list option

val stats_json : t -> string
(** The engine's merged {!Eppi_serve.Metrics} snapshot as JSON, with the
    server's per-worker counters ([workers]) and trace-drop count
    ([trace_dropped]) spliced in. *)

val telemetry_json : t -> string
(** The daemon's live telemetry snapshot as JSON ({!Telemetry.to_json}):
    rolling-window p50/p99/throughput per request class, per-stage
    histograms with their conservation check, the slow-request ring,
    per-worker counters and generation/trace info. *)

val cluster_status : t -> Wire.cluster_status
(** The daemon's replication observables: current index generation,
    applied-swap count, and the replica set it was started with
    ({!Server.config.peers}).  Works against any daemon; a standalone one
    reports an empty peer list. *)

val republish : t -> index_csv:string -> (int, string) result
(** Install a new index on the server ({!Eppi.Index.to_csv} payload);
    [Ok generation] on success, [Error message] when the server rejects
    the CSV. *)

val republish_index : t -> Eppi.Index.t -> (int, string) result
(** {!republish} with the compact {!Index_codec} payload — an order of
    magnitude smaller on the wire than the CSV form, and decoded off the
    server's I/O loop.  Prefer this unless the peer predates the binary
    codec. *)

val ping : t -> unit

val shutdown : t -> unit
(** Ask the server to stop; returns once [Shutting_down] is acknowledged. *)
