module Trace = Eppi_obs.Trace
module Rng = Eppi_prelude.Rng

type t = {
  mutable fd : Unix.file_descr;
  mutable decoder : Wire.Decoder.t;
  readbuf : Bytes.t;
  mutable closed : bool;
  address : Addr.t;
  max_payload : int option;
  request_timeout : float option;
  reconnect : bool;
  max_reconnects : int;
  retry_delay : float;
  trace_context : bool;
  rng : Rng.t;  (* jitters the reconnect backoff; seeded per client *)
}

(* Trace ids need only be unique within a trace session; folding the pid
   in keeps ids from two processes tracing against one daemon distinct. *)
let trace_ids = Atomic.make 0

let next_trace_id () =
  ((Unix.getpid () land 0xFFFF) lsl 24) lor (Atomic.fetch_and_add trace_ids 1 land 0xFFFFFF)

type error = Timed_out | Connection_lost of string

exception Protocol_error of string

(* Raised internally when the transport dies mid-exchange; converted to
   [Connection_lost] or a reconnect at the call boundary. *)
exception Conn_lost of string

let backoff_cap = 2.0

(* The jittered reconnect schedule, pure so the bound is testable: the
   k-th delay is the capped exponential [min (base * 2^(k-1)) cap] scaled
   by [0.5 + u/2] with [u] uniform in [0, 1).  Full jitter would be
   [u] alone; the half-floor keeps the schedule's back-off property (a
   run of zeros cannot hammer a recovering server) while still spreading
   N failed-over clients across half the window instead of a lockstep
   thundering herd. *)
let backoff_delay ~base ~attempt ~u =
  if attempt < 1 then invalid_arg "Client.backoff_delay: attempt must be >= 1";
  if not (u >= 0.0 && u < 1.0) then invalid_arg "Client.backoff_delay: u outside [0, 1)";
  let full = Float.min (base *. (2.0 ** float_of_int (attempt - 1))) backoff_cap in
  full *. (0.5 +. (0.5 *. u))

(* Default backoff seeds: distinct per client within a process (the
   counter) and across processes (the pid), so a fleet of clients that
   lost the same server never shares a jitter stream. *)
let client_counter = Atomic.make 0

let default_backoff_seed () =
  (Unix.getpid () lsl 20) lxor Atomic.fetch_and_add client_counter 1

let ignore_sigpipe () =
  (* A server that dies between our write and its read turns the next write
     into SIGPIPE; we want EPIPE instead so the reconnect path can run.
     Unsupported on some platforms (e.g. Windows) — then writes already
     fail with an error, not a signal. *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let connect_fd ~retries ~retry_delay address =
  let sockaddr = Addr.sockaddr address in
  let domain = Unix.domain_of_sockaddr sockaddr in
  let rec attempt remaining =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | () -> fd
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) when remaining > 0 ->
        Unix.close fd;
        Unix.sleepf retry_delay;
        attempt (remaining - 1)
    | exception e ->
        Unix.close fd;
        raise e
  in
  attempt retries

let connect ?(retries = 0) ?(retry_delay = 0.05) ?max_payload ?request_timeout
    ?(reconnect = false) ?(max_reconnects = 5) ?(trace_context = true) ?backoff_seed address =
  ignore_sigpipe ();
  let fd = connect_fd ~retries ~retry_delay address in
  let seed = match backoff_seed with Some s -> s | None -> default_backoff_seed () in
  {
    fd;
    decoder = Wire.Decoder.create ?max_payload ();
    readbuf = Bytes.create 65536;
    closed = false;
    address;
    max_payload;
    request_timeout;
    reconnect;
    max_reconnects;
    retry_delay;
    trace_context;
    rng = Rng.create seed;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* Tear down the dead socket and dial the stored address again, with capped
   exponential backoff between attempts.  On success the decoder is replaced
   — any half-received frame from the old connection is garbage. *)
let reestablish t =
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  let rec attempt k =
    if k > t.max_reconnects then false
    else
      match connect_fd ~retries:0 ~retry_delay:t.retry_delay t.address with
      | fd ->
          t.fd <- fd;
          t.decoder <- Wire.Decoder.create ?max_payload:t.max_payload ();
          true
      | exception Unix.Unix_error _ ->
          Unix.sleepf (backoff_delay ~base:t.retry_delay ~attempt:k ~u:(Rng.float t.rng 1.0));
          attempt (k + 1)
  in
  attempt 1

let write_all fd bytes off len =
  let sent = ref off in
  while !sent < off + len do
    match Unix.write fd bytes !sent (off + len - !sent) with
    | n -> sent := !sent + n
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
        raise (Conn_lost "connection lost mid-request")
  done

(* Wait for the socket to become readable, or for [deadline] to pass.
   Returns false only on timeout; EINTR retries. *)
let rec wait_readable t deadline =
  let timeout =
    match deadline with
    | None -> -1.0
    | Some d -> Float.max 0.0 (d -. Unix.gettimeofday ())
  in
  match Unix.select [ t.fd ] [] [] timeout with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error (EINTR, _, _) -> wait_readable t deadline

(* Block until one response frame is decodable, honouring the per-request
   timeout. *)
let recv_result t =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) t.request_timeout in
  let rec next () =
    match Wire.Decoder.next t.decoder with
    | Ok (Some (Wire.Response response)) -> Ok response
    | Ok (Some (Wire.Request _)) -> raise (Protocol_error "server sent a request frame")
    | Error e -> raise (Protocol_error (Wire.error_to_string e))
    | Ok None ->
        if not (wait_readable t deadline) then Error Timed_out
        else begin
          match Unix.read t.fd t.readbuf 0 (Bytes.length t.readbuf) with
          | 0 -> raise (Conn_lost "connection closed mid-response")
          | n ->
              Wire.Decoder.feed t.decoder t.readbuf ~off:0 ~len:n;
              next ()
          | exception Unix.Unix_error (EINTR, _, _) -> next ()
          | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
              raise (Conn_lost "connection reset")
        end
  in
  next ()

let send_request t request =
  let b = Buffer.create 64 in
  Wire.encode_request b request;
  let bytes = Buffer.to_bytes b in
  write_all t.fd bytes 0 (Bytes.length bytes)

let call_result t request =
  (* Trace-context propagation: with tracing on (and the peer known to
     speak the [Traced] tag — [trace_context]), wrap the request with a
     fresh trace id and mirror it on a client-side span, so the client's
     and the daemon's tracks join in one exported trace. *)
  let request, trace_id =
    match request with
    | Wire.Traced { trace_id; _ } -> (request, trace_id)
    | _ when t.trace_context && Trace.enabled () ->
        let id = next_trace_id () in
        (Wire.Traced { trace_id = id; request }, id)
    | _ -> (request, -1)
  in
  let rec attempt reconnects_left =
    match
      send_request t request;
      recv_result t
    with
    | outcome -> outcome
    | exception Conn_lost msg ->
        if t.reconnect && reconnects_left > 0 && reestablish t then
          attempt (reconnects_left - 1)
        else Error (Connection_lost msg)
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) ->
        Error (Connection_lost "connection refused")
  in
  if trace_id >= 0 then
    Trace.span "client.request" ~args:[ ("trace_id", trace_id) ] (fun () ->
        attempt t.max_reconnects)
  else attempt t.max_reconnects

let call t request =
  match call_result t request with
  | Ok response -> response
  | Error Timed_out -> raise (Protocol_error "request timed out")
  | Error (Connection_lost msg) -> raise (Protocol_error msg)

let pipeline t requests =
  let expected = List.length requests in
  if expected = 0 then []
  else begin
    let reqs = Array.of_list requests in
    let responses = ref [] in
    let received = ref 0 in
    let reconnects = ref 0 in
    (* One pass over the not-yet-answered tail.  On connection loss with
       reconnect enabled, the tail is re-encoded from [!received] and the
       pass restarts on the fresh socket (requests whose responses were in
       flight are re-sent — same at-least-once semantics as call_result). *)
    let rec go () =
      let b = Buffer.create (64 * (expected - !received)) in
      for i = !received to expected - 1 do
        Wire.encode_request b reqs.(i)
      done;
      let bytes = Buffer.to_bytes b in
      let total = Bytes.length bytes in
      let sent = ref 0 in
      match
        Unix.set_nonblock t.fd;
        Fun.protect
          ~finally:(fun () -> try Unix.clear_nonblock t.fd with Unix.Unix_error _ -> ())
          (fun () ->
            while !received < expected do
              let drain () =
                let continue = ref true in
                while !continue do
                  match Wire.Decoder.next t.decoder with
                  | Ok (Some (Wire.Response response)) ->
                      responses := response :: !responses;
                      incr received
                  | Ok (Some (Wire.Request _)) ->
                      raise (Protocol_error "server sent a request frame")
                  | Error e -> raise (Protocol_error (Wire.error_to_string e))
                  | Ok None -> continue := false
                done
              in
              drain ();
              if !received < expected then begin
                let writes = if !sent < total then [ t.fd ] else [] in
                (* Interleave: keep pushing request bytes whenever the socket
                   accepts them, keep draining responses as they arrive.
                   Reading while still writing is what prevents the
                   distributed-buffer deadlock (client blocked in write,
                   server blocked in write, nobody reads).  The timeout is an
                   inactivity bound: it resets every time the socket makes
                   progress. *)
                let timeout =
                  match t.request_timeout with None -> -1.0 | Some s -> s
                in
                match Unix.select [ t.fd ] writes [] timeout with
                | exception Unix.Unix_error (EINTR, _, _) -> ()
                | [], [], _ -> raise (Protocol_error "pipeline timed out")
                | readable, writable, _ ->
                    if writable <> [] then begin
                      match Unix.write t.fd bytes !sent (total - !sent) with
                      | n -> sent := !sent + n
                      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _)
                        ->
                          ()
                      | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
                          raise (Conn_lost "connection lost mid-pipeline")
                    end;
                    if readable <> [] then begin
                      match Unix.read t.fd t.readbuf 0 (Bytes.length t.readbuf) with
                      | 0 -> raise (Conn_lost "connection closed mid-pipeline")
                      | n -> Wire.Decoder.feed t.decoder t.readbuf ~off:0 ~len:n
                      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _)
                        ->
                          ()
                      | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
                          raise (Conn_lost "connection reset")
                    end
              end
            done)
      with
      | () -> ()
      | exception Conn_lost msg ->
          if t.reconnect && !reconnects < t.max_reconnects && reestablish t then begin
            incr reconnects;
            go ()
          end
          else raise (Protocol_error msg)
    in
    go ();
    List.rev !responses
  end

(* ---- typed wrappers ---- *)

let unexpected what (response : Wire.response) =
  let kind =
    match response with
    | Reply _ -> "reply"
    | Batch_reply _ -> "batch reply"
    | Audit_reply _ -> "audit reply"
    | Stats_json _ -> "stats"
    | Republished _ -> "republished"
    | Pong -> "pong"
    | Shutting_down -> "shutting down"
    | Server_error msg -> Printf.sprintf "server error: %s" msg
    | Fuzzy_reply _ -> "fuzzy reply"
    | Telemetry_json _ -> "telemetry"
    | Cluster_status_reply _ -> "cluster status"
  in
  raise (Protocol_error (Printf.sprintf "%s answered with %s" what kind))

let query t ~owner =
  match call t (Wire.Query { owner }) with
  | Reply { generation; reply } -> (generation, reply)
  | other -> unexpected "query" other

let batch t owners =
  match call t (Wire.Batch owners) with
  | Batch_reply { generation; replies } ->
      if Array.length replies <> Array.length owners then
        raise (Protocol_error "batch reply length mismatch");
      (generation, replies)
  | other -> unexpected "batch" other

let query_fuzzy ?(k = 10) t probe =
  match call t (Wire.Query_fuzzy { probe; k }) with
  | Fuzzy_reply { generation; result } -> (generation, result)
  | other -> unexpected "fuzzy query" other

let audit t ~provider =
  match call t (Wire.Audit { provider }) with
  | Audit_reply { generation; owners } -> (generation, owners)
  | other -> unexpected "audit" other

let stats_json t =
  match call t Wire.Stats with
  | Stats_json json -> json
  | other -> unexpected "stats" other

let telemetry_json t =
  match call t Wire.Telemetry with
  | Telemetry_json json -> json
  | other -> unexpected "telemetry" other

let cluster_status t =
  match call t Wire.Cluster_status with
  | Cluster_status_reply status -> status
  | other -> unexpected "cluster status" other

let republish t ~index_csv =
  match call t (Wire.Republish { index_csv }) with
  | Republished { generation } -> Ok generation
  | Server_error msg -> Error msg
  | other -> unexpected "republish" other

let republish_index t index =
  match call t (Wire.Republish_binary { data = Index_codec.encode index }) with
  | Republished { generation } -> Ok generation
  | Server_error msg -> Error msg
  | other -> unexpected "republish" other

let ping t =
  match call t Wire.Ping with
  | Pong -> ()
  | other -> unexpected "ping" other

let shutdown t =
  match call t Wire.Shutdown with
  | Shutting_down -> ()
  | other -> unexpected "shutdown" other
