type t = {
  fd : Unix.file_descr;
  decoder : Wire.Decoder.t;
  readbuf : Bytes.t;
  mutable closed : bool;
}

exception Protocol_error of string

let connect ?(retries = 0) ?(retry_delay = 0.05) ?max_payload address =
  let sockaddr = Addr.sockaddr address in
  let domain = Unix.domain_of_sockaddr sockaddr in
  let rec attempt remaining =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | () -> fd
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) when remaining > 0 ->
        Unix.close fd;
        Unix.sleepf retry_delay;
        attempt (remaining - 1)
    | exception e ->
        Unix.close fd;
        raise e
  in
  let fd = attempt retries in
  { fd; decoder = Wire.Decoder.create ?max_payload (); readbuf = Bytes.create 65536; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let write_all fd bytes off len =
  let sent = ref off in
  while !sent < off + len do
    match Unix.write fd bytes !sent (off + len - !sent) with
    | n -> sent := !sent + n
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

(* Block until one response frame is decodable. *)
let recv t =
  let rec next () =
    match Wire.Decoder.next t.decoder with
    | Ok (Some (Wire.Response response)) -> response
    | Ok (Some (Wire.Request _)) -> raise (Protocol_error "server sent a request frame")
    | Error e -> raise (Protocol_error (Wire.error_to_string e))
    | Ok None -> (
        match Unix.read t.fd t.readbuf 0 (Bytes.length t.readbuf) with
        | 0 -> raise (Protocol_error "connection closed mid-response")
        | n ->
            Wire.Decoder.feed t.decoder t.readbuf ~off:0 ~len:n;
            next ()
        | exception Unix.Unix_error (EINTR, _, _) -> next ())
  in
  next ()

let call t request =
  let b = Buffer.create 64 in
  Wire.encode_request b request;
  let bytes = Buffer.to_bytes b in
  write_all t.fd bytes 0 (Bytes.length bytes);
  recv t

let pipeline t requests =
  let expected = List.length requests in
  if expected = 0 then []
  else begin
    let b = Buffer.create (64 * expected) in
    List.iter (Wire.encode_request b) requests;
    let bytes = Buffer.to_bytes b in
    let total = Bytes.length bytes in
    let sent = ref 0 in
    let responses = ref [] in
    let received = ref 0 in
    (* Interleave: keep pushing request bytes whenever the socket accepts
       them, keep draining responses as they arrive.  Reading while still
       writing is what prevents the distributed-buffer deadlock (client
       blocked in write, server blocked in write, nobody reads). *)
    Unix.set_nonblock t.fd;
    Fun.protect
      ~finally:(fun () -> try Unix.clear_nonblock t.fd with Unix.Unix_error _ -> ())
      (fun () ->
        while !received < expected do
          let drain () =
            let continue = ref true in
            while !continue do
              match Wire.Decoder.next t.decoder with
              | Ok (Some (Wire.Response response)) ->
                  responses := response :: !responses;
                  incr received
              | Ok (Some (Wire.Request _)) ->
                  raise (Protocol_error "server sent a request frame")
              | Error e -> raise (Protocol_error (Wire.error_to_string e))
              | Ok None -> continue := false
            done
          in
          drain ();
          if !received < expected then begin
            let writes = if !sent < total then [ t.fd ] else [] in
            match Unix.select [ t.fd ] writes [] (-1.0) with
            | exception Unix.Unix_error (EINTR, _, _) -> ()
            | readable, writable, _ ->
                if writable <> [] then begin
                  match Unix.write t.fd bytes !sent (total - !sent) with
                  | n -> sent := !sent + n
                  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
                end;
                if readable <> [] then begin
                  match Unix.read t.fd t.readbuf 0 (Bytes.length t.readbuf) with
                  | 0 -> raise (Protocol_error "connection closed mid-pipeline")
                  | n -> Wire.Decoder.feed t.decoder t.readbuf ~off:0 ~len:n
                  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
                end
          end
        done);
    List.rev !responses
  end

(* ---- typed wrappers ---- *)

let unexpected what (response : Wire.response) =
  let kind =
    match response with
    | Reply _ -> "reply"
    | Batch_reply _ -> "batch reply"
    | Audit_reply _ -> "audit reply"
    | Stats_json _ -> "stats"
    | Republished _ -> "republished"
    | Pong -> "pong"
    | Shutting_down -> "shutting down"
    | Server_error msg -> Printf.sprintf "server error: %s" msg
  in
  raise (Protocol_error (Printf.sprintf "%s answered with %s" what kind))

let query t ~owner =
  match call t (Wire.Query { owner }) with
  | Reply { generation; reply } -> (generation, reply)
  | other -> unexpected "query" other

let batch t owners =
  match call t (Wire.Batch owners) with
  | Batch_reply { generation; replies } ->
      if Array.length replies <> Array.length owners then
        raise (Protocol_error "batch reply length mismatch");
      (generation, replies)
  | other -> unexpected "batch" other

let audit t ~provider =
  match call t (Wire.Audit { provider }) with
  | Audit_reply { generation; owners } -> (generation, owners)
  | other -> unexpected "audit" other

let stats_json t =
  match call t Wire.Stats with
  | Stats_json json -> json
  | other -> unexpected "stats" other

let republish t ~index_csv =
  match call t (Wire.Republish { index_csv }) with
  | Republished { generation } -> Ok generation
  | Server_error msg -> Error msg
  | other -> unexpected "republish" other

let ping t =
  match call t Wire.Ping with
  | Pong -> ()
  | other -> unexpected "ping" other

let shutdown t =
  match call t Wire.Shutdown with
  | Shutting_down -> ()
  | other -> unexpected "shutdown" other
