(* Always-on request-stage telemetry for the daemon.

   Every request the mux decodes gets one {!record}; timestamps are
   stamped at each pipeline hand-off and the record is finished when the
   last byte of its response hits the socket.  The six stages telescope —
   each stage is the difference of adjacent stamps — so per request

     decode + dispatch + queue + execute + reorder + flush = total

   holds {e exactly} in integer nanoseconds, and therefore the aggregated
   sums satisfy the same conservation law.  That law is the telemetry's
   self-check: a stage the accounting misses would show up as a gap.

   Ownership: the store has a single writer, the mux domain — records are
   created, flushed and finished there.  Workers stamp [t_started]/[t_done]
   on the record itself; those plain writes are ordered before the mux's
   reads by the completion stack's CAS (release) / exchange (acquire) pair,
   the same discipline the reply frames already rely on. *)

module Stats = Eppi_prelude.Stats

type record = {
  mutable kind : int;  (* Server.request_code of the unwrapped request *)
  mutable trace_id : int;  (* propagated trace context, -1 = none *)
  mutable t_read : int;  (* decode began (bytes were buffered) *)
  mutable t_decoded : int;  (* frame parsed *)
  mutable t_dispatched : int;  (* enqueued to a worker / inline start *)
  mutable t_started : int;  (* worker dequeued it (worker writes this) *)
  mutable t_done : int;  (* response encoded (worker writes this) *)
  mutable t_flushed : int;  (* appended to the connection's write buffer *)
}

let make ~kind ~trace_id ~t_read ~t_decoded =
  {
    kind;
    trace_id;
    t_read;
    t_decoded;
    t_dispatched = t_decoded;
    t_started = t_decoded;
    t_done = t_decoded;
    t_flushed = t_decoded;
  }

let stages = 6
let stage_names = [| "decode"; "dispatch"; "queue"; "execute"; "reorder"; "flush" |]
let classes = [| "query"; "batch"; "fuzzy"; "audit"; "republish"; "admin" |]

(* Request-code → window class.  Codes mirror [Server.request_code]. *)
let class_of_kind = function
  | 1 -> 0 (* query *)
  | 2 -> 1 (* batch *)
  | 9 -> 2 (* fuzzy *)
  | 3 -> 3 (* audit *)
  | 5 | 8 -> 4 (* republish, csv or binary *)
  | _ -> 5 (* stats, ping, shutdown, telemetry *)

let kind_name = function
  | 1 -> "query"
  | 2 -> "batch"
  | 3 -> "audit"
  | 4 -> "stats"
  | 5 -> "republish"
  | 6 -> "ping"
  | 7 -> "shutdown"
  | 8 -> "republish_binary"
  | 9 -> "fuzzy"
  | 10 -> "telemetry"
  | 11 -> "cluster"
  | _ -> "other"

type slow = {
  s_kind : int;
  s_trace_id : int;
  s_total_ns : int;
  s_stages : int array;  (* length [stages] *)
}

type t = {
  stage_hist : Stats.Log2_histogram.t array;  (* seconds, one per stage *)
  stage_sum_ns : int array;  (* exact integer sums for the conservation law *)
  total_hist : Stats.Log2_histogram.t;
  mutable total_sum_ns : int;
  mutable finished : int;
  windows : Stats.Windowed.t array;  (* rolling window, one per class *)
  slow : slow option array;  (* worst-N ring, unordered *)
  mutable slow_filled : int;
  mutable slow_min_ns : int;  (* smallest total among filled slots *)
}

let create ?(slow_slots = 16) ?(window_slots = 10) ?(window_slot_ns = 1_000_000_000) () =
  if slow_slots < 1 then invalid_arg "Telemetry.create: slow_slots must be >= 1";
  {
    stage_hist = Array.init stages (fun _ -> Stats.Log2_histogram.create ());
    stage_sum_ns = Array.make stages 0;
    total_hist = Stats.Log2_histogram.create ();
    total_sum_ns = 0;
    finished = 0;
    windows =
      Array.init (Array.length classes) (fun _ ->
          Stats.Windowed.create ~slots:window_slots ~slot_ns:window_slot_ns ());
    slow = Array.make slow_slots None;
    slow_filled = 0;
    slow_min_ns = max_int;
  }

let ns_to_s ns = float_of_int ns /. 1e9

let note_slow t r ~total_ns ~stage_ns =
  let n = Array.length t.slow in
  if t.slow_filled >= n && total_ns <= t.slow_min_ns then ()
  else begin
    let entry =
      Some { s_kind = r.kind; s_trace_id = r.trace_id; s_total_ns = total_ns; s_stages = stage_ns }
    in
    if t.slow_filled < n then begin
      t.slow.(t.slow_filled) <- entry;
      t.slow_filled <- t.slow_filled + 1;
      if total_ns < t.slow_min_ns then t.slow_min_ns <- total_ns
    end
    else begin
      (* Evict the smallest; rescan for the new minimum (N is small). *)
      let min_i = ref 0 and min_v = ref max_int in
      Array.iteri
        (fun i e ->
          match e with
          | Some s when s.s_total_ns < !min_v ->
              min_i := i;
              min_v := s.s_total_ns
          | _ -> ())
        t.slow;
      t.slow.(!min_i) <- entry;
      let new_min = ref max_int in
      Array.iter
        (fun e -> match e with Some s when s.s_total_ns < !new_min -> new_min := s.s_total_ns | _ -> ())
        t.slow;
      t.slow_min_ns <- !new_min
    end
  end

let finish t r ~t_written =
  let stage_ns =
    [|
      r.t_decoded - r.t_read;
      r.t_dispatched - r.t_decoded;
      r.t_started - r.t_dispatched;
      r.t_done - r.t_started;
      r.t_flushed - r.t_done;
      t_written - r.t_flushed;
    |]
  in
  let total_ns = t_written - r.t_read in
  for i = 0 to stages - 1 do
    Stats.Log2_histogram.add t.stage_hist.(i) (ns_to_s stage_ns.(i));
    t.stage_sum_ns.(i) <- t.stage_sum_ns.(i) + stage_ns.(i)
  done;
  Stats.Log2_histogram.add t.total_hist (ns_to_s total_ns);
  t.total_sum_ns <- t.total_sum_ns + total_ns;
  t.finished <- t.finished + 1;
  Stats.Windowed.add t.windows.(class_of_kind r.kind) ~now_ns:t_written (ns_to_s total_ns);
  note_slow t r ~total_ns ~stage_ns

let stage_sum_ns t = Array.fold_left ( + ) 0 t.stage_sum_ns
let total_sum_ns t = t.total_sum_ns
let finished t = t.finished

(* ---- JSON rendering ---- *)

let add_hist b name h =
  Printf.bprintf b "\"%s\": {\"count\": %d, \"mean_s\": %.9f, \"p50_s\": %.9f, \"p99_s\": %.9f}"
    name
    (Stats.Log2_histogram.total h)
    (Stats.Log2_histogram.mean h)
    (Stats.Log2_histogram.quantile h 0.5)
    (Stats.Log2_histogram.quantile h 0.99)

let to_json ?(extra = "") t ~now_ns =
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\"requests\": %d" t.finished;
  (* Rolling window, one summary per request class. *)
  Printf.bprintf b ", \"window\": {\"span_s\": %.1f" (Stats.Windowed.span_s t.windows.(0));
  Array.iteri
    (fun i name ->
      let s = Stats.Windowed.snapshot t.windows.(i) ~now_ns in
      Printf.bprintf b
        ", \"%s\": {\"count\": %d, \"rate\": %.3f, \"mean_s\": %.9f, \"p50_s\": %.9f, \"p99_s\": %.9f}"
        name s.Stats.Windowed.count s.rate s.mean s.p50 s.p99)
    classes;
  Buffer.add_string b "}";
  (* Cumulative per-stage histograms with exact integer sums. *)
  Buffer.add_string b ", \"stages\": {";
  Array.iteri
    (fun i name ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b
        "\"%s\": {\"count\": %d, \"sum_ns\": %d, \"mean_s\": %.9f, \"p50_s\": %.9f, \"p99_s\": %.9f}"
        name
        (Stats.Log2_histogram.total t.stage_hist.(i))
        t.stage_sum_ns.(i)
        (Stats.Log2_histogram.mean t.stage_hist.(i))
        (Stats.Log2_histogram.quantile t.stage_hist.(i) 0.5)
        (Stats.Log2_histogram.quantile t.stage_hist.(i) 0.99))
    stage_names;
  Buffer.add_string b ", ";
  add_hist b "total" t.total_hist;
  Printf.bprintf b ", \"sum_ns\": %d}" t.total_sum_ns;
  let s = stage_sum_ns t in
  Printf.bprintf b
    ", \"conservation\": {\"stage_sum_ns\": %d, \"total_ns\": %d, \"exact\": %b}"
    s t.total_sum_ns (s = t.total_sum_ns);
  (* Worst-N ring, slowest first. *)
  let slow =
    Array.to_list t.slow
    |> List.filter_map Fun.id
    |> List.sort (fun a b -> compare b.s_total_ns a.s_total_ns)
  in
  Buffer.add_string b ", \"slow\": [";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "{\"kind\": \"%s\", \"trace_id\": %d, \"total_ns\": %d" (kind_name s.s_kind)
        s.s_trace_id s.s_total_ns;
      Array.iteri (fun j name -> Printf.bprintf b ", \"%s_ns\": %d" name s.s_stages.(j)) stage_names;
      Buffer.add_string b "}")
    slow;
  Buffer.add_string b "]";
  if extra <> "" then begin
    Buffer.add_string b ", ";
    Buffer.add_string b extra
  end;
  Buffer.add_string b "}";
  Buffer.contents b
