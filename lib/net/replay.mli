(** Trace-driven replay over the real socket path.

    Loads a request log ({!Eppi_serve.Workload.of_csv_log} /
    [of_jsonl_log] formats) and drives it through a {!Client} as pipelined
    [Query] frames — the workload source the [bench -- net] target and the
    CLI replay mode share. *)

type summary = {
  requests : int;
  served : int;  (** Replies carrying a provider list. *)
  unknown : int;
  shed : int;  (** Both shed classes summed. *)
  providers_listed : int;  (** Total response volume. *)
  first_generation : int;  (** Generation of the first reply. *)
  last_generation : int;  (** Generation of the last reply. *)
  wall_seconds : float;
}

val load : string -> int array
(** Read a request-log file; a first non-blank character of [{] selects
    the JSONL parser, anything else the CSV parser.
    @raise Sys_error on an unreadable path, [Failure] on a malformed log. *)

val run : ?depth:int -> Client.t -> int array -> summary
(** Replay the workload as windows of [depth] pipelined queries (default
    32).  Conservation holds by construction:
    [served + unknown + shed = requests] — every request is answered.
    @raise Invalid_argument on a non-positive depth;
    @raise Client.Protocol_error as {!Client.pipeline} does. *)
