module Trace = Eppi_obs.Trace
module Serve = Eppi_serve.Serve
module Clock = Eppi_prelude.Clock

type config = {
  max_connections : int;
  idle_timeout : float;
  max_payload : int;
  max_pending_bytes : int;
}

let default_config =
  {
    max_connections = 64;
    idle_timeout = 300.0;
    max_payload = Wire.default_max_payload;
    max_pending_bytes = 8 * 1024 * 1024;
  }

type t = {
  engine : Serve.t;
  config : config;
}

let create ?(config = default_config) engine =
  if config.max_connections < 1 then invalid_arg "Server: max_connections must be >= 1";
  if config.max_pending_bytes < 1 then invalid_arg "Server: max_pending_bytes must be >= 1";
  { engine; config }

let engine t = t.engine

(* ---- request handling (transport-independent) ---- *)

let request_code = function
  | Wire.Query _ -> 1
  | Wire.Batch _ -> 2
  | Wire.Audit _ -> 3
  | Wire.Stats -> 4
  | Wire.Republish _ -> 5
  | Wire.Ping -> 6
  | Wire.Shutdown -> 7

let handle_request t (request : Wire.request) : Wire.response =
  match request with
  | Query { owner } ->
      let generation, reply = Serve.query_tagged t.engine ~owner in
      Reply { generation; reply }
  | Batch owners ->
      (* One frame, many lookups; the tagged generation is the one the
         last lookup served from (a republish may land mid-batch). *)
      let generation = ref (Serve.generation t.engine) in
      let replies =
        Array.map
          (fun owner ->
            let g, reply = Serve.query_tagged t.engine ~owner in
            generation := g;
            reply)
          owners
      in
      Batch_reply { generation = !generation; replies }
  | Audit { provider } ->
      Audit_reply
        { generation = Serve.generation t.engine; owners = Serve.audit t.engine ~provider }
  | Stats -> Stats_json (Eppi_serve.Metrics.to_json (Serve.metrics t.engine))
  | Republish { index_csv } -> (
      match Eppi.Index.of_csv index_csv with
      | index -> Republished { generation = Serve.republish_index t.engine index }
      | exception Failure msg -> Server_error ("republish: " ^ msg))
  | Ping -> Pong
  | Shutdown -> Shutting_down

let handle t request =
  if not (Trace.enabled ()) then handle_request t request
  else Trace.span "net.request" ~args:[ ("tag", request_code request) ] (fun () -> handle_request t request)

(* ---- listening ---- *)

let listen address =
  (match address with
  | Addr.Unix_socket path when Sys.file_exists path -> (
      match (Unix.stat path).st_kind with
      | Unix.S_SOCK -> Unix.unlink path (* a dead server's leftover *)
      | _ -> failwith (Printf.sprintf "Server.listen: %s exists and is not a socket" path))
  | _ -> ());
  let domain = match address with Addr.Unix_socket _ -> Unix.PF_UNIX | Addr.Tcp _ -> Unix.PF_INET in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match address with
  | Addr.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Addr.Unix_socket _ -> ());
  (try
     Unix.bind fd (Addr.sockaddr address);
     Unix.listen fd 128
   with e ->
     Unix.close fd;
     raise e);
  fd

(* ---- the select loop ---- *)

type conn = {
  fd : Unix.file_descr;
  decoder : Wire.Decoder.t;
  out : Buffer.t;
  mutable out_off : int;
  mutable last_activity : float;
  mutable closing : bool;  (* no more reads; close once the buffer drains *)
  id : int;
}

let pending c = Buffer.length c.out - c.out_off

let instant_conn name c =
  if Trace.enabled () then Trace.instant name ~args:[ ("conn", c.id) ]

let run t listener =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Unix.set_nonblock listener;
  let conns = ref [] in
  let next_id = ref 0 in
  let shutting = ref false in
  let readbuf = Bytes.create 65536 in
  let close_conn c =
    instant_conn "net.close" c;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    conns := List.filter (fun c' -> c'.id <> c.id) !conns
  in
  let respond c response =
    Wire.encode_response c.out response;
    if response = Wire.Shutting_down then shutting := true
  in
  (* Drain every complete frame the connection has buffered.  A decode
     error answers [Server_error] and flags the connection for close; the
     error is sticky, so no further frame can be misread from the wreck. *)
  let drain c =
    let continue = ref true in
    while !continue && not c.closing do
      match Wire.Decoder.next c.decoder with
      | Ok None -> continue := false
      | Ok (Some (Wire.Request request)) -> respond c (handle t request)
      | Ok (Some (Wire.Response _)) ->
          respond c (Wire.Server_error "protocol: response frame sent to server");
          c.closing <- true
      | Error e ->
          respond c (Wire.Server_error (Wire.error_to_string e));
          c.closing <- true
    done
  in
  let read_from c =
    match Unix.read c.fd readbuf 0 (Bytes.length readbuf) with
    | 0 -> close_conn c
    | n ->
        c.last_activity <- Clock.seconds ();
        Wire.Decoder.feed c.decoder readbuf ~off:0 ~len:n;
        drain c
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> close_conn c
  in
  let write_to c =
    let bytes = Buffer.to_bytes c.out in
    match Unix.write c.fd bytes c.out_off (Bytes.length bytes - c.out_off) with
    | n ->
        c.out_off <- c.out_off + n;
        c.last_activity <- Clock.seconds ();
        if c.out_off = Bytes.length bytes then begin
          Buffer.clear c.out;
          c.out_off <- 0;
          if c.closing then close_conn c
        end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> close_conn c
  in
  let accept_one () =
    match Unix.accept listener with
    | fd, _ ->
        Unix.set_nonblock fd;
        incr next_id;
        let c =
          {
            fd;
            decoder = Wire.Decoder.create ~max_payload:t.config.max_payload ();
            out = Buffer.create 1024;
            out_off = 0;
            last_activity = Clock.seconds ();
            closing = false;
            id = !next_id;
          }
        in
        conns := c :: !conns;
        instant_conn "net.accept" c
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR | ECONNABORTED), _, _) -> ()
  in
  let finished () = !shutting && List.for_all (fun c -> pending c = 0) !conns in
  while not (finished ()) do
    let accepting = (not !shutting) && List.length !conns < t.config.max_connections in
    let reads =
      (if accepting then [ listener ] else [])
      @ List.filter_map
          (fun c ->
            if (not c.closing) && (not !shutting) && pending c < t.config.max_pending_bytes then
              Some c.fd
            else None)
          !conns
    in
    let writes = List.filter_map (fun c -> if pending c > 0 then Some c.fd else None) !conns in
    match Unix.select reads writes [] 0.5 with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | readable, writable, _ ->
        List.iter
          (fun c -> if List.memq c.fd writable then write_to c)
          !conns;
        List.iter
          (fun c -> if List.memq c.fd readable then read_from c)
          !conns;
        if accepting && List.memq listener readable then accept_one ();
        if t.config.idle_timeout > 0.0 && not !shutting then begin
          let now = Clock.seconds () in
          List.iter
            (fun c ->
              if pending c = 0 && now -. c.last_activity > t.config.idle_timeout then close_conn c)
            !conns
        end
  done;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns;
  conns := [];
  try Unix.close listener with Unix.Unix_error _ -> ()

let serve t address =
  let listener = listen address in
  let cleanup () =
    match address with
    | Addr.Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Addr.Tcp _ -> ()
  in
  Fun.protect ~finally:cleanup (fun () -> run t listener)

(* ---- stdio transport ---- *)

let write_all fd bytes =
  let len = Bytes.length bytes in
  let sent = ref 0 in
  while !sent < len do
    match Unix.write fd bytes !sent (len - !sent) with
    | n -> sent := !sent + n
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

let run_stdio t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let decoder = Wire.Decoder.create ~max_payload:t.config.max_payload () in
  let readbuf = Bytes.create 65536 in
  let out = Buffer.create 1024 in
  let running = ref true in
  while !running do
    (match Unix.read Unix.stdin readbuf 0 (Bytes.length readbuf) with
    | 0 -> running := false
    | n -> Wire.Decoder.feed decoder readbuf ~off:0 ~len:n
    | exception Unix.Unix_error (EINTR, _, _) -> ());
    let continue = ref !running in
    while !continue do
      match Wire.Decoder.next decoder with
      | Ok None -> continue := false
      | Ok (Some (Wire.Request request)) ->
          let response = handle t request in
          Wire.encode_response out response;
          if response = Wire.Shutting_down then begin
            running := false;
            continue := false
          end
      | Ok (Some (Wire.Response _)) ->
          Wire.encode_response out (Wire.Server_error "protocol: response frame sent to server");
          running := false;
          continue := false
      | Error e ->
          Wire.encode_response out (Wire.Server_error (Wire.error_to_string e));
          running := false;
          continue := false
    done;
    if Buffer.length out > 0 then begin
      write_all Unix.stdout (Buffer.to_bytes out);
      Buffer.clear out
    end
  done
