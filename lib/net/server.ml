module Trace = Eppi_obs.Trace
module Serve = Eppi_serve.Serve
module Clock = Eppi_prelude.Clock

type config = {
  max_connections : int;
  idle_timeout : float;
  max_payload : int;
  max_pending_bytes : int;
  workers : int;
  max_inflight : int;
  telemetry : bool;
  peers : string list;
}

let default_config =
  {
    max_connections = 64;
    idle_timeout = 300.0;
    max_payload = Wire.default_max_payload;
    max_pending_bytes = 8 * 1024 * 1024;
    workers = 1;
    max_inflight = 1024;
    telemetry = true;
    peers = [];
  }

type t = {
  engine : Serve.t;
  config : config;
  telemetry : Telemetry.t;
  (* (id, queue_depth, busy_ns, served) per worker domain; installed by
     [start_workers] so the stats/telemetry paths (which run before the
     workers type is even defined) can read the pool without a cycle. *)
  mutable worker_info : unit -> (int * int * int * int) list;
}

let create ?(config = default_config) engine =
  if config.max_connections < 1 then invalid_arg "Server: max_connections must be >= 1";
  if config.max_pending_bytes < 1 then invalid_arg "Server: max_pending_bytes must be >= 1";
  if config.workers < 1 then invalid_arg "Server: workers must be >= 1";
  if config.max_inflight < 1 then invalid_arg "Server: max_inflight must be >= 1";
  { engine; config; telemetry = Telemetry.create (); worker_info = (fun () -> []) }

let engine t = t.engine

(* ---- request handling (transport-independent) ---- *)

let rec request_code = function
  | Wire.Query _ -> 1
  | Wire.Batch _ -> 2
  | Wire.Audit _ -> 3
  | Wire.Stats -> 4
  | Wire.Republish _ -> 5
  | Wire.Ping -> 6
  | Wire.Shutdown -> 7
  | Wire.Republish_binary _ -> 8
  | Wire.Query_fuzzy _ -> 9
  | Wire.Telemetry -> 10
  | Wire.Cluster_status -> 11
  | Wire.Traced { request; _ } -> request_code request

(* Splice extra top-level fields into a flat JSON object string. *)
let splice_json json extra =
  match String.rindex_opt json '}' with
  | Some i -> String.sub json 0 i ^ ", " ^ extra ^ String.sub json i (String.length json - i)
  | None -> json

let workers_json t =
  let b = Buffer.create 64 in
  Buffer.add_char b '[';
  List.iteri
    (fun i (id, depth, busy_ns, served) ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "{\"id\": %d, \"queue_depth\": %d, \"busy_us\": %d, \"served\": %d}" id depth
        (busy_ns / 1000) served)
    (t.worker_info ());
  Buffer.add_char b ']';
  Buffer.contents b

(* The Stats reply: the engine's merged metrics plus the per-worker
   counters and the trace session's drop count, so backpressure is
   visible without a trace session. *)
let stats_json t =
  splice_json
    (Eppi_serve.Metrics.to_json (Serve.metrics t.engine))
    (Printf.sprintf "\"workers\": %s, \"trace_dropped\": %d" (workers_json t)
       (Trace.dropped_events ()))

let telemetry_json t =
  let m = Serve.metrics t.engine in
  let extra =
    Printf.sprintf
      "\"workers\": %s, \"generation\": %d, \"swaps\": %d, \"trace\": {\"enabled\": %b, \
       \"dropped\": %d}, \"telemetry_enabled\": %b"
      (workers_json t) m.Eppi_serve.Metrics.generation m.Eppi_serve.Metrics.swaps
      (Trace.enabled ()) (Trace.dropped_events ()) t.config.telemetry
  in
  Telemetry.to_json ~extra t.telemetry ~now_ns:(Clock.monotonic_ns ())

(* Reads only the published generation, merged metrics and static config —
   safe from any domain, which is why the multicore mux answers it inline. *)
let cluster_status t =
  Wire.Cluster_status_reply
    {
      generation = Serve.generation t.engine;
      swaps = (Serve.metrics t.engine).Eppi_serve.Metrics.swaps;
      peers = t.config.peers;
    }

let rec handle_request t (request : Wire.request) : Wire.response =
  match request with
  | Query { owner } ->
      let generation, reply = Serve.query_tagged t.engine ~owner in
      Reply { generation; reply }
  | Batch owners ->
      (* One frame, many lookups; the tagged generation is the one the
         last lookup served from (a republish may land mid-batch). *)
      let generation = ref (Serve.generation t.engine) in
      let replies =
        Array.map
          (fun owner ->
            let g, reply = Serve.query_tagged t.engine ~owner in
            generation := g;
            reply)
          owners
      in
      Batch_reply { generation = !generation; replies }
  | Audit { provider } ->
      Audit_reply
        { generation = Serve.generation t.engine; owners = Serve.audit t.engine ~provider }
  | Stats -> Stats_json (stats_json t)
  | Telemetry -> Telemetry_json (telemetry_json t)
  | Cluster_status -> cluster_status t
  | Traced { request; _ } -> handle_request t request
  | Republish { index_csv } -> (
      match Eppi.Index.of_csv index_csv with
      | index -> Republished { generation = Serve.republish_index t.engine index }
      | exception Failure msg -> Server_error ("republish: " ^ msg))
  | Republish_binary { data } -> (
      match Index_codec.decode data with
      | Ok index -> Republished { generation = Serve.republish_index t.engine index }
      | Error e -> Server_error ("republish: " ^ Index_codec.error_to_string e))
  | Query_fuzzy { probe; k } ->
      let generation, result = Serve.query_fuzzy ~k t.engine probe in
      Fuzzy_reply { generation; result }
  | Ping -> Pong
  | Shutdown -> Shutting_down

(* [trace_id] is the propagated client trace context (from a [Traced]
   envelope), attached to the server-side span so the client's and the
   daemon's tracks join in one exported trace. *)
let rec handle ?(trace_id = -1) t request =
  match request with
  | Wire.Traced { trace_id; request } -> handle ~trace_id t request
  | _ ->
      if not (Trace.enabled ()) then handle_request t request
      else begin
        let args = [ ("tag", request_code request) ] in
        let args = if trace_id >= 0 then ("trace_id", trace_id) :: args else args in
        Trace.span "net.request" ~args (fun () -> handle_request t request)
      end

(* ---- listening ---- *)

let listen address =
  (match address with
  | Addr.Unix_socket path when Sys.file_exists path -> (
      match (Unix.stat path).st_kind with
      | Unix.S_SOCK -> Unix.unlink path (* a dead server's leftover *)
      | _ -> failwith (Printf.sprintf "Server.listen: %s exists and is not a socket" path))
  | _ -> ());
  let domain = match address with Addr.Unix_socket _ -> Unix.PF_UNIX | Addr.Tcp _ -> Unix.PF_INET in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match address with
  | Addr.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Addr.Unix_socket _ -> ());
  (try
     Unix.bind fd (Addr.sockaddr address);
     Unix.listen fd 128
   with e ->
     Unix.close fd;
     raise e);
  fd

(* ---- worker domains ----

   The mux never calls the engine when [workers > 1]; it assigns each
   request a per-connection sequence number and hands it to a worker
   domain.  Shard-affine requests (Query, Audit) go to worker
   [shard mod workers], which preserves the engine's
   single-writer-per-shard contract: shard state is only ever touched
   from the one domain that owns it.  Republish decodes and installs on
   a worker too — the engine's generation slot is atomic, so any domain
   may CAS it — keeping index parsing off the I/O loop.  Batch frames
   split into one part per owning worker; the last part to finish
   assembles the reply.

   Workers push finished, pre-encoded response frames onto a lock-free
   Treiber stack and write one byte down a self-pipe so [select] wakes.
   The mux drains the stack, slots each frame into its connection's
   reorder buffer, and flushes in sequence order — so the wire keeps the
   strict one-response-per-request-in-order contract no matter how the
   domains interleave. *)

type batch_acc = {
  b_conn : int;
  b_seq : int;
  b_replies : Serve.reply array;
  b_generation : int Atomic.t;  (* max generation over all parts *)
  b_remaining : int Atomic.t;  (* parts still running *)
  b_error : string option Atomic.t;  (* first part failure, if any *)
  b_trace : int;  (* propagated trace id, -1 = none *)
  b_record : Telemetry.record option;
  b_started : int Atomic.t;  (* first part's dequeue stamp (CAS from 0) *)
}

type job =
  | Job of {
      conn_id : int;
      seq : int;
      request : Wire.request;
      trace_id : int;
      j_record : Telemetry.record option;
    }
  | Part of { acc : batch_acc; positions : int array; owners : int array }
      (* [owners.(k)] is the batch entry at index [positions.(k)]. *)
  | Stop

type completion = {
  c_conn : int;
  c_seq : int;
  frame : string;  (* the whole response frame, encoded on the worker *)
  c_record : Telemetry.record option;
}

type worker = {
  w_id : int;
  inbox : job Queue.t;  (* guarded by [w_lock] *)
  w_lock : Mutex.t;
  w_ready : Condition.t;
  w_depth : int Atomic.t;  (* inbox length, sampled for counters *)
  w_track : string;  (* counter track name, e.g. "net.worker-0" *)
  w_served : int Atomic.t;  (* atomics: the mux reads these for stats *)
  w_busy_ns : int Atomic.t;
}

type workers = {
  pool : worker array;
  completions : completion list Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable domains : unit Domain.t array;
  mutable rr : int;  (* round-robin cursor for shardless jobs (mux only) *)
}

let enqueue w job =
  Mutex.lock w.w_lock;
  Queue.push job w.inbox;
  Condition.signal w.w_ready;
  Mutex.unlock w.w_lock;
  Atomic.incr w.w_depth

let wake_byte = Bytes.make 1 '!'

let rec wake fd =
  match Unix.write fd wake_byte 0 1 with
  | _ -> ()
  | exception Unix.Unix_error (EINTR, _, _) -> wake fd
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
      (* Pipe full: a wakeup is already pending, which is all we need. *)
      ()

let push_completion ws comp =
  let rec push () =
    let old = Atomic.get ws.completions in
    if not (Atomic.compare_and_set ws.completions old (comp :: old)) then push ()
  in
  push ();
  wake ws.wake_w

let encode_frame response =
  let b = Buffer.create 128 in
  Wire.encode_response b response;
  Buffer.contents b

let rec store_max_generation a g =
  let old = Atomic.get a in
  if g > old && not (Atomic.compare_and_set a old g) then store_max_generation a g

let worker_counters w =
  if Trace.enabled () then
    Trace.counter w.w_track
      [
        ("queue_depth", Atomic.get w.w_depth);
        ("busy_us", Atomic.get w.w_busy_ns / 1000);
        ("served", Atomic.get w.w_served);
      ]

(* Exception barrier: nothing a job raises may escape the worker loop.
   An escaped exception would silently kill the domain at [Domain.join]
   time — every shard pinned to it stops answering, stalled connections
   never resume, and shutdown hangs.  Instead the failure becomes a
   [Server_error] completion so the sequence hole is filled and the
   connection keeps making progress. *)
let worker_failed w e =
  let msg = "worker: " ^ Printexc.to_string e in
  if Trace.enabled () then Trace.instant "net.worker_error" ~args:[ ("worker", w.w_id) ];
  msg

let worker_loop t ws w =
  let running = ref true in
  while !running do
    Mutex.lock w.w_lock;
    while Queue.is_empty w.inbox do
      Condition.wait w.w_ready w.w_lock
    done;
    let job = Queue.pop w.inbox in
    Mutex.unlock w.w_lock;
    Atomic.decr w.w_depth;
    (match job with
    | Stop -> running := false
    | Job { conn_id; seq; request; trace_id; j_record } ->
        let t0 = Clock.monotonic_ns () in
        (match j_record with Some r -> r.Telemetry.t_started <- t0 | None -> ());
        let frame =
          try encode_frame (handle ~trace_id t request)
          with e -> encode_frame (Wire.Server_error (worker_failed w e))
        in
        let t1 = Clock.monotonic_ns () in
        (match j_record with Some r -> r.Telemetry.t_done <- t1 | None -> ());
        push_completion ws { c_conn = conn_id; c_seq = seq; frame; c_record = j_record };
        Atomic.incr w.w_served;
        ignore (Atomic.fetch_and_add w.w_busy_ns (t1 - t0))
    | Part { acc; positions; owners } ->
        let t0 = Clock.monotonic_ns () in
        (* The record's queue-wait stage ends at the FIRST part's dequeue;
           only the winning CAS stamps it. *)
        (match acc.b_record with
        | Some _ -> ignore (Atomic.compare_and_set acc.b_started 0 t0)
        | None -> ());
        let work () =
          let generation = ref 0 in
          Array.iteri
            (fun k position ->
              let g, reply = Serve.query_tagged t.engine ~owner:owners.(k) in
              if g > !generation then generation := g;
              acc.b_replies.(position) <- reply)
            positions;
          store_max_generation acc.b_generation !generation
        in
        (try
           if Trace.enabled () then begin
             let args = [ ("requests", Array.length owners) ] in
             let args = if acc.b_trace >= 0 then ("trace_id", acc.b_trace) :: args else args in
             Trace.span "net.batch_part" ~args work
           end
           else work ()
         with e -> Atomic.set acc.b_error (Some (worker_failed w e)));
        (* The finisher observes every other part's plain writes to
           [b_replies]: each part's stores happen before its decrement,
           and all decrements precede the final fetch-and-add. *)
        if Atomic.fetch_and_add acc.b_remaining (-1) = 1 then begin
          (match acc.b_record with
          | Some r ->
              r.Telemetry.t_started <- Atomic.get acc.b_started;
              r.Telemetry.t_done <- Clock.monotonic_ns ()
          | None -> ());
          push_completion ws
            {
              c_conn = acc.b_conn;
              c_seq = acc.b_seq;
              frame =
                encode_frame
                  (match Atomic.get acc.b_error with
                  | Some msg -> Wire.Server_error msg
                  | None ->
                      Wire.Batch_reply
                        { generation = Atomic.get acc.b_generation; replies = acc.b_replies });
              c_record = acc.b_record;
            }
        end;
        Atomic.incr w.w_served;
        ignore (Atomic.fetch_and_add w.w_busy_ns (Clock.monotonic_ns () - t0)));
    worker_counters w
  done

let start_workers t n =
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let pool =
    Array.init n (fun i ->
        {
          w_id = i;
          inbox = Queue.create ();
          w_lock = Mutex.create ();
          w_ready = Condition.create ();
          w_depth = Atomic.make 0;
          w_track = Printf.sprintf "net.worker-%d" i;
          w_served = Atomic.make 0;
          w_busy_ns = Atomic.make 0;
        })
  in
  let ws = { pool; completions = Atomic.make []; wake_r; wake_w; domains = [||]; rr = 0 } in
  ws.domains <- Array.map (fun w -> Domain.spawn (fun () -> worker_loop t ws w)) pool;
  t.worker_info <-
    (fun () ->
      Array.to_list
        (Array.map
           (fun w ->
             (w.w_id, Atomic.get w.w_depth, Atomic.get w.w_busy_ns, Atomic.get w.w_served))
           pool));
  ws

let stop_workers ws =
  Array.iter (fun w -> enqueue w Stop) ws.pool;
  Array.iter Domain.join ws.domains;
  (try Unix.close ws.wake_r with Unix.Unix_error _ -> ());
  try Unix.close ws.wake_w with Unix.Unix_error _ -> ()

(* Mirror the engine's owner → shard mapping (owner mod shards, folded
   into range for negative ids), then pin shard i to worker i mod d. *)
let worker_for_owner engine ws owner =
  let shards = Serve.shards engine in
  let shard = owner mod shards in
  let shard = if shard < 0 then shard + shards else shard in
  ws.pool.(shard mod Array.length ws.pool)

let next_round_robin ws =
  let w = ws.pool.(ws.rr mod Array.length ws.pool) in
  ws.rr <- ws.rr + 1;
  w

(* ---- the select loop ---- *)

type conn = {
  fd : Unix.file_descr;
  decoder : Wire.Decoder.t;
  out : Buffer.t;
  mutable out_off : int;
  mutable last_activity : float;
  mutable closing : bool;  (* no more reads; close once the buffer drains *)
  id : int;
  mutable next_seq : int;  (* sequence assigned to the next request *)
  mutable next_flush : int;  (* next sequence to append to [out] *)
  replies : (int, string * Telemetry.record option) Hashtbl.t;
      (* completed frames awaiting flush, with their stage records *)
  mutable stall_seq : int;  (* seq of an in-flight republish, or -1 *)
  mutable appended : int;  (* bytes ever appended to [out] (monotone) *)
  mutable written : int;  (* bytes ever written to the socket (monotone) *)
  watch : (int * Telemetry.record) Queue.t;
      (* (appended watermark, record): the record's flush stage ends when
         [written] passes the watermark.  FIFO because [appended] only
         grows. *)
}

let pending c = Buffer.length c.out - c.out_off
let inflight c = c.next_seq - c.next_flush

let instant_conn name c =
  if Trace.enabled () then Trace.instant name ~args:[ ("conn", c.id) ]

let run t listener =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Unix.set_nonblock listener;
  let ws = if t.config.workers > 1 then Some (start_workers t t.config.workers) else None in
  let conns = ref [] in
  let conn_tbl : (int, conn) Hashtbl.t = Hashtbl.create 64 in
  let next_id = ref 0 in
  let shutting = ref false in
  let readbuf = Bytes.create 65536 in
  let close_conn c =
    instant_conn "net.close" c;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    Hashtbl.remove conn_tbl c.id;
    conns := List.filter (fun c' -> c'.id <> c.id) !conns
  in
  (* Append every frame whose turn has come.  Frames complete out of
     order across workers; the wire stays in request order.  Appending
     closes a record's reorder-dwell stage and opens its flush stage. *)
  let flush_replies c =
    let continue = ref true in
    let now = ref 0 in
    while !continue do
      match Hashtbl.find_opt c.replies c.next_flush with
      | None -> continue := false
      | Some (frame, record) ->
          Hashtbl.remove c.replies c.next_flush;
          c.next_flush <- c.next_flush + 1;
          Buffer.add_string c.out frame;
          c.appended <- c.appended + String.length frame;
          (match record with
          | Some r ->
              if !now = 0 then now := Clock.monotonic_ns ();
              r.Telemetry.t_flushed <- !now;
              Queue.push (c.appended, r) c.watch
          | None -> ())
    done
  in
  let complete c seq frame record =
    Hashtbl.replace c.replies seq (frame, record);
    flush_replies c
  in
  (* Route one decoded request.  Inline (workers = 1): call the engine
     here, exactly the pre-multicore daemon.  Otherwise dispatch to the
     worker that owns the request's shard.  [t_read]/[t_decoded] bound the
     decode stage (0 when telemetry is off); a [Traced] envelope is peeled
     here so routing sees the inner request and the record keeps the id. *)
  let route c request ~t_read ~t_decoded =
    let seq = c.next_seq in
    c.next_seq <- seq + 1;
    let trace_id, request =
      match request with
      | Wire.Traced { trace_id; request } -> (trace_id, request)
      | request -> (-1, request)
    in
    let record =
      if t.config.telemetry then
        Some (Telemetry.make ~kind:(request_code request) ~trace_id ~t_read ~t_decoded)
      else None
    in
    (* A request the mux answers itself: dispatch and queue-wait collapse
       to zero, execute covers the handler plus the frame encode. *)
    let inline response =
      (match record with
      | Some r ->
          let now = Clock.monotonic_ns () in
          r.Telemetry.t_dispatched <- now;
          r.Telemetry.t_started <- now
      | None -> ());
      if response = Wire.Shutting_down then shutting := true;
      let frame = encode_frame response in
      (match record with Some r -> r.Telemetry.t_done <- Clock.monotonic_ns () | None -> ());
      complete c seq frame record
    in
    let dispatched () =
      match record with
      | Some r -> r.Telemetry.t_dispatched <- Clock.monotonic_ns ()
      | None -> ()
    in
    match ws with
    | None -> inline (handle ~trace_id t request)
    | Some ws -> (
        match request with
        | Wire.Query { owner } ->
            dispatched ();
            enqueue (worker_for_owner t.engine ws owner)
              (Job { conn_id = c.id; seq; request; trace_id; j_record = record })
        | Wire.Query_fuzzy { probe; _ } ->
            (* Fuzzy metrics/admission land on Serve.fuzzy_shard's shard;
               route to that shard's worker so the single-writer contract
               holds for fuzzy exactly as for exact queries. *)
            let shard = Serve.fuzzy_shard t.engine probe in
            dispatched ();
            enqueue ws.pool.(shard mod Array.length ws.pool)
              (Job { conn_id = c.id; seq; request; trace_id; j_record = record })
        | Wire.Audit _ ->
            (* Audit walks every shard's postings but records its metrics
               on shard 0, so it must run on shard 0's worker. *)
            dispatched ();
            enqueue ws.pool.(0) (Job { conn_id = c.id; seq; request; trace_id; j_record = record })
        | Wire.Republish _ | Wire.Republish_binary _ ->
            (* Decode + install off the mux.  Stall this connection until
               the swap lands so a pipelined query behind it cannot answer
               from the old generation after the republish reply. *)
            c.stall_seq <- seq;
            dispatched ();
            enqueue (next_round_robin ws)
              (Job { conn_id = c.id; seq; request; trace_id; j_record = record })
        | Wire.Batch owners when Array.length owners > 0 ->
            let nworkers = Array.length ws.pool in
            let counts = Array.make nworkers 0 in
            Array.iter
              (fun owner ->
                let w = worker_for_owner t.engine ws owner in
                counts.(w.w_id) <- counts.(w.w_id) + 1)
              owners;
            let parts = Array.fold_left (fun acc n -> if n > 0 then acc + 1 else acc) 0 counts in
            let acc =
              {
                b_conn = c.id;
                b_seq = seq;
                b_replies = Array.make (Array.length owners) Serve.Unknown_owner;
                b_generation = Atomic.make 0;
                b_remaining = Atomic.make parts;
                b_error = Atomic.make None;
                b_trace = trace_id;
                b_record = record;
                b_started = Atomic.make 0;
              }
            in
            let positions = Array.map (fun n -> Array.make (max n 1) 0) counts in
            let part_owners = Array.map (fun n -> Array.make (max n 1) 0) counts in
            let fill = Array.make nworkers 0 in
            Array.iteri
              (fun position owner ->
                let w = (worker_for_owner t.engine ws owner).w_id in
                positions.(w).(fill.(w)) <- position;
                part_owners.(w).(fill.(w)) <- owner;
                fill.(w) <- fill.(w) + 1)
              owners;
            dispatched ();
            Array.iteri
              (fun w n ->
                if n > 0 then
                  enqueue ws.pool.(w)
                    (Part { acc; positions = positions.(w); owners = part_owners.(w) }))
              counts
        | Wire.Batch _ ->
            inline (Wire.Batch_reply { generation = Serve.generation t.engine; replies = [||] })
        | Wire.Stats ->
            (* Reads only merged metrics and atomics — safe from the mux. *)
            inline (Wire.Stats_json (stats_json t))
        | Wire.Telemetry ->
            (* The store's single writer is this domain, so the read is
               consistent by construction. *)
            inline (Wire.Telemetry_json (telemetry_json t))
        | Wire.Cluster_status -> inline (cluster_status t)
        | Wire.Ping -> inline Wire.Pong
        | Wire.Shutdown -> inline Wire.Shutting_down
        | Wire.Traced _ -> assert false (* peeled above; envelopes never nest *))
  in
  let respond_error c msg =
    let seq = c.next_seq in
    c.next_seq <- seq + 1;
    complete c seq (encode_frame (Wire.Server_error msg)) None;
    c.closing <- true
  in
  (* Drain every complete frame the connection has buffered.  A decode
     error answers [Server_error] and flags the connection for close; the
     error is sticky, so no further frame can be misread from the wreck.
     Draining pauses while a republish is in flight ([stall_seq]) or the
     connection has [max_inflight] unanswered requests — the bytes stay
     buffered in the decoder. *)
  let drain c =
    let continue = ref true in
    while
      !continue && (not c.closing) && c.stall_seq < 0 && inflight c < t.config.max_inflight
    do
      let t_read = if t.config.telemetry then Clock.monotonic_ns () else 0 in
      match Wire.Decoder.next c.decoder with
      | Ok None -> continue := false
      | Ok (Some (Wire.Request request)) ->
          let t_decoded = if t.config.telemetry then Clock.monotonic_ns () else 0 in
          route c request ~t_read ~t_decoded
      | Ok (Some (Wire.Response _)) -> respond_error c "protocol: response frame sent to server"
      | Error e -> respond_error c (Wire.error_to_string e)
    done
  in
  let read_from c =
    match Unix.read c.fd readbuf 0 (Bytes.length readbuf) with
    | 0 -> close_conn c
    | n ->
        c.last_activity <- Clock.seconds ();
        Wire.Decoder.feed c.decoder readbuf ~off:0 ~len:n;
        drain c
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> close_conn c
  in
  let write_to c =
    let bytes = Buffer.to_bytes c.out in
    match Unix.write c.fd bytes c.out_off (Bytes.length bytes - c.out_off) with
    | n ->
        c.out_off <- c.out_off + n;
        c.written <- c.written + n;
        c.last_activity <- Clock.seconds ();
        (* Every record whose frame is now fully on the socket is done:
           close its flush stage and fold it into the aggregates. *)
        if not (Queue.is_empty c.watch) then begin
          let t_written = Clock.monotonic_ns () in
          let continue = ref true in
          while !continue && not (Queue.is_empty c.watch) do
            let watermark, record = Queue.peek c.watch in
            if watermark <= c.written then begin
              ignore (Queue.pop c.watch);
              Telemetry.finish t.telemetry record ~t_written
            end
            else continue := false
          done
        end;
        if c.out_off = Bytes.length bytes then begin
          Buffer.clear c.out;
          c.out_off <- 0;
          if c.closing && inflight c = 0 then close_conn c
        end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> close_conn c
  in
  let process_completions ws =
    match Atomic.exchange ws.completions [] with
    | [] -> ()
    | batch ->
        List.iter
          (fun { c_conn; c_seq; frame; c_record } ->
            match Hashtbl.find_opt conn_tbl c_conn with
            | None -> () (* connection died while the job was in flight *)
            | Some c ->
                complete c c_seq frame c_record;
                if c.stall_seq = c_seq then c.stall_seq <- -1;
                (* Resume decoding: this completion may have cleared a
                   republish stall or dropped [inflight] back below the
                   cap while surplus frames sit buffered in the decoder.
                   [select] alone would never notice — it only fires on
                   NEW bytes — so a client that pipelines past the cap
                   and then waits would hang.  [drain] is a no-op when
                   the decoder holds nothing. *)
                if (not c.closing) && c.stall_seq < 0 && inflight c < t.config.max_inflight
                then drain c)
          batch
  in
  let drain_wake_pipe ws =
    let continue = ref true in
    while !continue do
      match Unix.read ws.wake_r readbuf 0 (Bytes.length readbuf) with
      | 0 -> continue := false
      | _ -> ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> continue := false
      | exception Unix.Unix_error (EINTR, _, _) -> ()
    done
  in
  let accept_one () =
    match Unix.accept listener with
    | fd, _ ->
        Unix.set_nonblock fd;
        incr next_id;
        let c =
          {
            fd;
            decoder = Wire.Decoder.create ~max_payload:t.config.max_payload ();
            out = Buffer.create 1024;
            out_off = 0;
            last_activity = Clock.seconds ();
            closing = false;
            id = !next_id;
            next_seq = 0;
            next_flush = 0;
            replies = Hashtbl.create 8;
            stall_seq = -1;
            appended = 0;
            written = 0;
            watch = Queue.create ();
          }
        in
        conns := c :: !conns;
        Hashtbl.replace conn_tbl c.id c;
        instant_conn "net.accept" c
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR | ECONNABORTED), _, _) -> ()
  in
  let stalled c =
    c.stall_seq >= 0 || inflight c >= t.config.max_inflight
    || pending c >= t.config.max_pending_bytes
  in
  let last_stalled = ref (-1) in
  let mux_counters () =
    if Trace.enabled () then begin
      let n = List.fold_left (fun acc c -> if stalled c then acc + 1 else acc) 0 !conns in
      if n <> !last_stalled then begin
        last_stalled := n;
        Trace.counter "net.mux" [ ("stalled_conns", n) ]
      end
    end
  in
  let finished () =
    !shutting && List.for_all (fun c -> pending c = 0 && inflight c = 0) !conns
  in
  while not (finished ()) do
    let accepting = (not !shutting) && List.length !conns < t.config.max_connections in
    let reads =
      (if accepting then [ listener ] else [])
      @ (match ws with Some ws -> [ ws.wake_r ] | None -> [])
      @ List.filter_map
          (fun c -> if (not c.closing) && (not !shutting) && not (stalled c) then Some c.fd else None)
          !conns
    in
    let writes = List.filter_map (fun c -> if pending c > 0 then Some c.fd else None) !conns in
    (match Unix.select reads writes [] 0.5 with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | readable, writable, _ ->
        (match ws with
        | Some ws ->
            if List.memq ws.wake_r readable then drain_wake_pipe ws;
            process_completions ws
        | None -> ());
        List.iter
          (fun c -> if List.memq c.fd writable then write_to c)
          !conns;
        List.iter
          (fun c -> if List.memq c.fd readable then read_from c)
          !conns;
        if accepting && List.memq listener readable then accept_one ();
        if t.config.idle_timeout > 0.0 && not !shutting then begin
          let now = Clock.seconds () in
          List.iter
            (fun c ->
              if pending c = 0 && inflight c = 0 && now -. c.last_activity > t.config.idle_timeout
              then close_conn c)
            !conns
        end);
    mux_counters ()
  done;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns;
  conns := [];
  Hashtbl.reset conn_tbl;
  (match ws with Some ws -> stop_workers ws | None -> ());
  try Unix.close listener with Unix.Unix_error _ -> ()

let serve t address =
  let listener = listen address in
  let cleanup () =
    match address with
    | Addr.Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Addr.Tcp _ -> ()
  in
  Fun.protect ~finally:cleanup (fun () -> run t listener)

(* ---- stdio transport ---- *)

let write_all fd bytes =
  let len = Bytes.length bytes in
  let sent = ref 0 in
  while !sent < len do
    match Unix.write fd bytes !sent (len - !sent) with
    | n -> sent := !sent + n
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

let run_stdio t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let decoder = Wire.Decoder.create ~max_payload:t.config.max_payload () in
  let readbuf = Bytes.create 65536 in
  let out = Buffer.create 1024 in
  let running = ref true in
  (* Stage records for the frames encoded this iteration; with one
     blocking transport the dispatch/queue/reorder stages are zero and
     the flush stage closes when [write_all] returns. *)
  let batch_records = ref [] in
  while !running do
    (match Unix.read Unix.stdin readbuf 0 (Bytes.length readbuf) with
    | 0 -> running := false
    | n -> Wire.Decoder.feed decoder readbuf ~off:0 ~len:n
    | exception Unix.Unix_error (EINTR, _, _) -> ());
    let continue = ref !running in
    while !continue do
      let t_read = if t.config.telemetry then Clock.monotonic_ns () else 0 in
      match Wire.Decoder.next decoder with
      | Ok None -> continue := false
      | Ok (Some (Wire.Request request)) ->
          let record =
            if t.config.telemetry then begin
              let t_decoded = Clock.monotonic_ns () in
              let trace_id, inner =
                match request with
                | Wire.Traced { trace_id; request } -> (trace_id, request)
                | request -> (-1, request)
              in
              let r =
                Telemetry.make ~kind:(request_code inner) ~trace_id ~t_read ~t_decoded
              in
              r.Telemetry.t_dispatched <- t_decoded;
              r.Telemetry.t_started <- t_decoded;
              Some r
            end
            else None
          in
          let response = handle t request in
          Wire.encode_response out response;
          (match record with
          | Some r ->
              let now = Clock.monotonic_ns () in
              r.Telemetry.t_done <- now;
              r.Telemetry.t_flushed <- now;
              batch_records := r :: !batch_records
          | None -> ());
          if response = Wire.Shutting_down then begin
            running := false;
            continue := false
          end
      | Ok (Some (Wire.Response _)) ->
          Wire.encode_response out (Wire.Server_error "protocol: response frame sent to server");
          running := false;
          continue := false
      | Error e ->
          Wire.encode_response out (Wire.Server_error (Wire.error_to_string e));
          running := false;
          continue := false
    done;
    if Buffer.length out > 0 then begin
      write_all Unix.stdout (Buffer.to_bytes out);
      Buffer.clear out;
      match !batch_records with
      | [] -> ()
      | records ->
          let t_written = Clock.monotonic_ns () in
          List.iter (fun r -> Telemetry.finish t.telemetry r ~t_written) (List.rev records);
          batch_records := []
    end
  done
