(** The locator daemon: a persistent RPC front-end over {!Eppi_serve.Serve}.

    One [Unix.select] loop owns the listening socket and every client
    connection; requests decode through {!Wire.Decoder}, route into the
    sharded engine, and their responses queue on bounded per-connection
    write buffers.  The loop is single-threaded — it is the sole caller
    into the engine, which satisfies {!Eppi_serve.Serve.query}'s
    single-writer-per-shard contract without locks.

    Flow control and hygiene:
    - a connection whose write buffer exceeds [max_pending_bytes] stops
      being read until the client drains it (backpressure, not buffering
      without bound);
    - connections idle longer than [idle_timeout] are closed;
    - a framing error poisons only its connection: the server replies
      [Server_error] and closes after flushing, other clients are
      untouched;
    - a [Republish] frame hot-swaps the engine's index generation
      ({!Eppi_serve.Serve.republish_index}) between requests — queries
      keep flowing, no drain, caches invalidate per shard;
    - a [Shutdown] frame stops accepting, flushes every pending reply,
      closes all connections and returns from {!run}.

    With tracing enabled ({!Eppi_obs.Trace}), every request is a
    [net.request] span tagged with its frame kind and accepted/closed
    connections are instant events. *)

type config = {
  max_connections : int;  (** Accepted clients beyond this are refused. *)
  idle_timeout : float;  (** Seconds; 0 disables the idle sweep. *)
  max_payload : int;  (** Per-frame payload bound fed to {!Wire.Decoder}. *)
  max_pending_bytes : int;
      (** Per-connection write-buffer bound before backpressure. *)
}

val default_config : config
(** 64 connections, 300 s idle timeout, {!Wire.default_max_payload},
    8 MiB pending bound. *)

type t

val create : ?config:config -> Eppi_serve.Serve.t -> t
(** Wrap an engine.  The server does not own the engine: it can be shared
    with in-process readers (e.g. a metrics poller). *)

val engine : t -> Eppi_serve.Serve.t

val listen : Addr.t -> Unix.file_descr
(** Bind and listen.  A stale Unix-socket file left by a dead server is
    removed first; a path occupied by a non-socket file is an error.
    The returned descriptor is ready for {!run} — clients may already
    connect (the backlog holds them), which is how tests and the CLI avoid
    start-up races.
    @raise Unix.Unix_error as [bind]/[listen] do;
    @raise Failure when a Unix-socket path exists and is not a socket. *)

val run : t -> Unix.file_descr -> unit
(** Serve until a [Shutdown] frame arrives, then flush and return.  Closes
    the listener and every connection; does not unlink socket files. *)

val serve : t -> Addr.t -> unit
(** {!listen} + {!run}, unlinking a Unix-socket path on the way out (also
    on exception) so no stray socket file survives the daemon. *)

val run_stdio : t -> unit
(** The [--stdio] transport: frames on stdin, responses on stdout, until
    EOF or a [Shutdown] frame.  For inetd-style supervision and tests
    without socket plumbing. *)
