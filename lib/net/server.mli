(** The locator daemon: a persistent RPC front-end over {!Eppi_serve.Serve}.

    One [Unix.select] loop owns the listening socket and every client
    connection.  With [workers = 1] it is also the sole engine caller —
    the pre-multicore daemon, no extra domains.  With [workers = d > 1]
    the loop becomes a pure I/O mux: it decodes frames, stamps each
    request with a per-connection sequence number, and routes it to one
    of [d] worker domains.  Shard-affine requests (Query, Audit) are
    pinned to worker [shard mod d], so every shard keeps exactly one
    writing domain and {!Eppi_serve.Serve.query}'s
    single-writer-per-shard contract holds without locks.  Batch frames
    split into per-worker parts served in parallel; Republish — CSV or
    the compact {!Index_codec} form — decodes and installs on a worker,
    off the I/O loop.  Workers return pre-encoded response frames over a
    lock-free queue with a self-pipe wakeup, and the mux flushes them in
    sequence order, preserving the wire contract of exactly one response
    per request, in request order, per connection.

    Flow control and hygiene:
    - a connection whose write buffer exceeds [max_pending_bytes] stops
      being read until the client drains it (backpressure, not buffering
      without bound); one with [max_inflight] unanswered requests stops
      being read until workers catch up;
    - connections idle longer than [idle_timeout] are closed;
    - a framing error poisons only its connection: the server replies
      [Server_error] and closes after flushing, other clients are
      untouched;
    - a [Republish]/[Republish_binary] frame hot-swaps the engine's index
      generation ({!Eppi_serve.Serve.republish_index}) — queries keep
      flowing, no drain, caches invalidate per shard.  Requests pipelined
      {e behind} a republish on the same connection wait for the swap, so
      a reply that follows a [Republished {generation}] on the wire never
      carries an older generation;
    - a [Shutdown] frame stops accepting, flushes every pending reply,
      closes all connections, joins the worker domains and returns from
      {!run}.

    With tracing enabled ({!Eppi_obs.Trace}), every request is a
    [net.request] span tagged with its frame kind, accepted/closed
    connections are instant events, each worker domain samples a
    [net.worker-<i>] counter track (queue depth, busy µs, requests
    served), and the mux samples [net.mux] stalled-connection counts.
    A request that arrived in a [Traced] envelope carries the client's
    trace id on its server-side spans, so both processes' tracks join in
    one exported trace.

    Telemetry ({!Telemetry}) is on by default and independent of tracing:
    every request is stamped through decode → dispatch → queue-wait →
    execute → reorder-dwell → write-flush, aggregated into per-stage
    histograms whose sums satisfy an exact conservation law, a rolling
    ~10 s window per request class, and a worst-N slow-request ring — all
    served by the [Telemetry] wire command.  The [Stats] reply carries the
    per-worker counters and the trace session's drop count on top of the
    engine metrics. *)

type config = {
  max_connections : int;  (** Accepted clients beyond this are refused. *)
  idle_timeout : float;  (** Seconds; 0 disables the idle sweep. *)
  max_payload : int;  (** Per-frame payload bound fed to {!Wire.Decoder}. *)
  max_pending_bytes : int;
      (** Per-connection write-buffer bound before backpressure. *)
  workers : int;
      (** Engine-calling domains. 1 = serve inline on the I/O loop (no
          domains spawned); d > 1 = mux + d worker domains with shard i
          pinned to worker i mod d. *)
  max_inflight : int;
      (** Per-connection bound on routed-but-unanswered requests before
          the mux stops reading that connection. *)
  telemetry : bool;
      (** Per-request stage timing ({!Telemetry}).  On by default; the
          cost is a handful of monotonic-clock reads per request.  The
          [Telemetry] wire command still answers when off (with empty
          aggregates) — the switch exists mainly so the bench can measure
          the instrumentation's own overhead. *)
  peers : string list;
      (** The replica set this daemon belongs to, as address strings
          ([serve --peers]).  Purely descriptive: the daemon never
          contacts its peers (fan-out is driven by the coordinator,
          {!Eppi_cluster}); the list is echoed in [Cluster_status]
          replies so clients and operators can discover the set from any
          one member.  Empty = standalone. *)
}

val default_config : config
(** 64 connections, 300 s idle timeout, {!Wire.default_max_payload},
    8 MiB pending bound, 1 worker (inline), 1024 in-flight requests,
    telemetry on, no peers. *)

type t

val create : ?config:config -> Eppi_serve.Serve.t -> t
(** Wrap an engine.  The server does not own the engine: it can be shared
    with in-process readers (e.g. a metrics poller).
    @raise Invalid_argument on a non-positive bound in [config]. *)

val engine : t -> Eppi_serve.Serve.t

val listen : Addr.t -> Unix.file_descr
(** Bind and listen.  A stale Unix-socket file left by a dead server is
    removed first; a path occupied by a non-socket file is an error.
    The returned descriptor is ready for {!run} — clients may already
    connect (the backlog holds them), which is how tests and the CLI avoid
    start-up races.
    @raise Unix.Unix_error as [bind]/[listen] do;
    @raise Failure when a Unix-socket path exists and is not a socket. *)

val run : t -> Unix.file_descr -> unit
(** Serve until a [Shutdown] frame arrives, then flush and return.  Closes
    the listener and every connection, and joins any worker domains; does
    not unlink socket files. *)

val serve : t -> Addr.t -> unit
(** {!listen} + {!run}, unlinking a Unix-socket path on the way out (also
    on exception) so no stray socket file survives the daemon. *)

val run_stdio : t -> unit
(** The [--stdio] transport: frames on stdin, responses on stdout, until
    EOF or a [Shutdown] frame.  Always inline (single-domain), regardless
    of [workers] — for inetd-style supervision and tests without socket
    plumbing. *)
