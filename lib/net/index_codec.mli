(** Compact binary serialization of a published {!Eppi.Index}.

    The republish hot path used to ship the index as CSV — one ASCII
    [j,p] line (~9 bytes) per published cell, parsed line by line on the
    daemon's I/O loop.  This codec is the replacement payload: rows are
    Rice-coded gap sequences (near the entropy of a sparse row, ~8 bits
    per cell at the bench's n=2000 x m=1024 scale) or raw bitmaps when
    dense, self-describing and versioned, and roughly an order of
    magnitude smaller than the CSV.

    Layout (codec version 1; varints are unsigned LEB128; the body is one
    continuous bit stream, LSB-first within each byte, zero-padded to a
    byte boundary only at the very end):

    {v
    byte 0        codec version (1)
    varint        owners  n  (>= 1)
    varint        providers m  (>= 1)
    n varints     row counts c_0 .. c_{n-1}, each in [0, m]
    bit stream    row bodies, concatenated.  Row j with c = c_j:
                    c = 0:         nothing
                    3c >= m:       m bits of bitmap (stream bit p = column p)
                    else:          c Rice-coded gaps g_0 = p_0,
                                   g_i = p_i - p_{i-1} - 1; each gap is
                                   ⌊g / 2^k⌋ 1-bits, a 0-bit, then the k
                                   low bits of g
    v}

    The Rice parameter [k] is derived identically on both sides from
    [(c, m)] — the nearest power of two to [ln 2 * (m - c)/(c + 1)], the
    mean gap rule — so the format spends no bits on it, and the per-row
    bitmap/gaps choice is the shared [3c >= m] density rule, so no
    per-row flag is spent either.  Encoding gaps rather than absolute ids
    makes strict ascent structural: any decoded row is sorted by
    construction.

    Decoding validates everything it reads: version, dimensions, counts,
    bit-population, ordering, range, padding, and exact payload length.
    Dimensions are bounded {e before} anything is allocated from them
    (the row-count array and the n x m matrix), so a small hostile
    header cannot demand a huge allocation.  Malformed input is a typed
    {!error}, never an exception — the daemon feeds this decoder bytes
    that arrived off the network. *)

val codec_version : int
(** The version byte leading every encoded index (currently 1). *)

type error =
  | Unsupported_version of int  (** First byte is not a known version. *)
  | Truncated of string  (** Input ended inside the named field. *)
  | Malformed of string  (** Structurally invalid (bad count, id out of
                             range, unsorted row, nonzero padding, …). *)

val error_to_string : error -> string

val encode : Eppi.Index.t -> string
(** Serialize the index.  Deterministic: equal matrices encode to equal
    strings. *)

val decode : string -> (Eppi.Index.t, error) result
(** Inverse of {!encode}.  Total: any input returns [Ok] or a typed
    [Error]; [decode (encode i)] is an index with the same matrix. *)

val encoded_bytes : Eppi.Index.t -> int
(** Size of {!encode}'s output without materializing it (exact). *)
