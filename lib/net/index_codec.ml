open Eppi_prelude

let codec_version = 1

type error =
  | Unsupported_version of int
  | Truncated of string
  | Malformed of string

let error_to_string = function
  | Unsupported_version v -> Printf.sprintf "unsupported index codec version %d" v
  | Truncated what -> Printf.sprintf "truncated input (%s)" what
  | Malformed msg -> Printf.sprintf "malformed index: %s" msg

(* floor(log2 x) for x >= 1 *)
let ilog2 x =
  let k = ref 0 and v = ref x in
  while !v > 1 do
    incr k;
    v := !v lsr 1
  done;
  !k

(* Rice parameter for a row of [c] ids out of [m] providers.  The gaps of a
   uniformly sparse row are near-geometric with mean mu = (m - c)/(c + 1);
   the classic rule 2^k ~ ln(2) * mu picks the parameter within a fraction
   of a bit of the Golomb optimum.  Computed in integer arithmetic (scaled
   by 1000, rounded to the nearest power of two in log space) so encoder
   and decoder derive the identical k from (c, m) alone — the format spends
   no bits on it. *)
let rice_k ~c ~m =
  let mu_scaled = 693 * (m - c) / (1000 * (c + 1)) in
  if mu_scaled <= 1 then 0
  else
    let k = ilog2 mu_scaled in
    if 2 * mu_scaled > 3 * (1 lsl k) then k + 1 else k

(* A row dense enough that Rice gaps would cost about as much as the raw
   m-bit bitmap (mean gap <= 2, so >= ~1/3 density) is stored as the
   bitmap.  Both sides apply this rule, so no per-row flag is spent. *)
let row_is_bitmap ~m count = 3 * count >= m

(* ---- unsigned LEB128 (byte-aligned header fields) ---- *)

let put_uvarint b n =
  let u = ref n in
  let continue = ref true in
  while !continue do
    let byte = !u land 0x7F in
    u := !u lsr 7;
    if !u = 0 then begin
      Buffer.add_char b (Char.chr byte);
      continue := false
    end
    else Buffer.add_char b (Char.chr (byte lor 0x80))
  done

let uvarint_bytes n =
  let rec go n acc = if n < 0x80 then acc else go (n lsr 7) (acc + 1) in
  go n 1

exception Fail of error

type cursor = { payload : string; mutable pos : int }

let get_uvarint c ~what =
  let u = ref 0 and shift = ref 0 and value = ref (-1) in
  while !value < 0 do
    if c.pos >= String.length c.payload then raise (Fail (Truncated what));
    if !shift > 56 then raise (Fail (Malformed (what ^ ": varint longer than 9 bytes")));
    let byte = Char.code c.payload.[c.pos] in
    c.pos <- c.pos + 1;
    u := !u lor ((byte land 0x7F) lsl !shift);
    shift := !shift + 7;
    if byte land 0x80 = 0 then value := !u
  done;
  !value

(* ---- bit stream (row bodies) ----

   Bits are appended LSB-first within each byte: stream bit i is
   [(byte i/8 lsr (i mod 8)) land 1].  The whole body is one continuous
   stream; only the final byte is padded (with zero bits), so per-row
   alignment costs nothing. *)

type bitwriter = { buf : Buffer.t; mutable acc : int; mutable nbits : int }

let writer buf = { buf; acc = 0; nbits = 0 }

let put_bit w bit =
  if bit then w.acc <- w.acc lor (1 lsl w.nbits);
  w.nbits <- w.nbits + 1;
  if w.nbits = 8 then begin
    Buffer.add_char w.buf (Char.chr w.acc);
    w.acc <- 0;
    w.nbits <- 0
  end

let put_bits w v n =
  for i = 0 to n - 1 do
    put_bit w ((v lsr i) land 1 = 1)
  done

let flush_writer w =
  if w.nbits > 0 then begin
    Buffer.add_char w.buf (Char.chr w.acc);
    w.acc <- 0;
    w.nbits <- 0
  end

type bitreader = { c : cursor; base : int; mutable bitpos : int }

let reader c = { c; base = c.pos; bitpos = 0 }

let get_bit r ~what =
  let byte = r.base + (r.bitpos lsr 3) in
  if byte >= String.length r.c.payload then raise (Fail (Truncated what));
  let bit = (Char.code r.c.payload.[byte] lsr (r.bitpos land 7)) land 1 in
  r.bitpos <- r.bitpos + 1;
  bit = 1

let get_bits r n ~what =
  let v = ref 0 in
  for i = 0 to n - 1 do
    if get_bit r ~what then v := !v lor (1 lsl i)
  done;
  !v

(* Close the body stream: zero pad bits to the byte boundary, exact length. *)
let finish_reader r =
  while r.bitpos land 7 <> 0 do
    if get_bit r ~what:"final padding" then raise (Fail (Malformed "nonzero padding bits"))
  done;
  r.c.pos <- r.base + (r.bitpos lsr 3)

(* ---- row bodies ---- *)

(* Gaps: g_0 = p_0 and g_i = p_i - p_{i-1} - 1, so strictly ascending rows
   are exactly the rows with all gaps >= 0 — ordering is free by
   construction on both sides.  Each gap is Rice-coded: quotient
   [g lsr k] in unary (that many 1-bits, then a 0), then the k low bits. *)

let rice_row_bits row ~c ~m =
  let k = rice_k ~c ~m in
  let bits = ref 0 and prev = ref (-1) in
  Bitvec.iter_set
    (fun p ->
      let g = p - !prev - 1 in
      prev := p;
      bits := !bits + (g lsr k) + 1 + k)
    row;
  !bits

let row_bits row ~c ~m = if row_is_bitmap ~m c then m else rice_row_bits row ~c ~m

let put_row w row ~c ~m =
  if row_is_bitmap ~m c then
    for p = 0 to m - 1 do
      put_bit w (Bitvec.get row p)
    done
  else begin
    let k = rice_k ~c ~m in
    let prev = ref (-1) in
    Bitvec.iter_set
      (fun p ->
        let g = p - !prev - 1 in
        prev := p;
        for _ = 1 to g lsr k do
          put_bit w true
        done;
        put_bit w false;
        put_bits w g k)
      row
  end

let get_row r matrix ~j ~c ~m =
  let what = Printf.sprintf "row %d" j in
  if row_is_bitmap ~m c then begin
    let set = ref 0 in
    for p = 0 to m - 1 do
      if get_bit r ~what then begin
        incr set;
        Bitmatrix.set matrix ~row:j ~col:p true
      end
    done;
    if !set <> c then
      raise (Fail (Malformed (Printf.sprintf "%s: bitmap population %d, declared count %d" what !set c)))
  end
  else begin
    let k = rice_k ~c ~m in
    let prev = ref (-1) in
    for _ = 1 to c do
      let q = ref 0 in
      while get_bit r ~what do
        incr q;
        (* A valid gap never exceeds m, so neither does its quotient. *)
        if !q lsl k > m then raise (Fail (Malformed (what ^ ": gap exceeds provider count")))
      done;
      let g = (!q lsl k) lor get_bits r k ~what in
      let p = !prev + 1 + g in
      if p >= m then
        raise (Fail (Malformed (Printf.sprintf "%s: provider %d >= %d" what p m)));
      prev := p;
      Bitmatrix.set matrix ~row:j ~col:p true
    done
  end

(* ---- encoding ---- *)

let row_counts matrix =
  Array.init (Bitmatrix.rows matrix) (fun j -> Bitmatrix.row_count matrix j)

let encoded_bytes index =
  let matrix = Eppi.Index.matrix index in
  let n = Bitmatrix.rows matrix and m = Bitmatrix.cols matrix in
  let counts = row_counts matrix in
  let header =
    Array.fold_left
      (fun acc c -> acc + uvarint_bytes c)
      (1 + uvarint_bytes n + uvarint_bytes m)
      counts
  in
  let body_bits = ref 0 in
  for j = 0 to n - 1 do
    body_bits := !body_bits + row_bits (Bitmatrix.row matrix j) ~c:counts.(j) ~m
  done;
  header + ((!body_bits + 7) / 8)

let encode index =
  let matrix = Eppi.Index.matrix index in
  let n = Bitmatrix.rows matrix and m = Bitmatrix.cols matrix in
  let counts = row_counts matrix in
  let b = Buffer.create (encoded_bytes index) in
  Buffer.add_char b (Char.chr codec_version);
  put_uvarint b n;
  put_uvarint b m;
  Array.iter (put_uvarint b) counts;
  let w = writer b in
  for j = 0 to n - 1 do
    put_row w (Bitmatrix.row matrix j) ~c:counts.(j) ~m
  done;
  flush_writer w;
  Buffer.contents b

(* ---- decoding ---- *)

let dims_limit = 1 lsl 30

(* The matrix materializes n*m bits no matter how sparse the payload is,
   so the header alone could demand an arbitrarily large allocation —
   attacker-controlled n and m must be bounded BEFORE anything is sized
   from them, not after.  [cells_limit] caps the product (2^33 bits =
   1 GiB of backing), far above any index this daemon serves but far
   below an allocation that would take the process down. *)
let cells_limit = 1 lsl 33

let decode_exn payload =
  let c = { payload; pos = 0 } in
  if String.length payload = 0 then raise (Fail (Truncated "version byte"));
  let v = Char.code payload.[0] in
  c.pos <- 1;
  if v <> codec_version then raise (Fail (Unsupported_version v));
  let n = get_uvarint c ~what:"owner count" in
  let m = get_uvarint c ~what:"provider count" in
  if n < 1 || n > dims_limit then raise (Fail (Malformed (Printf.sprintf "owner count %d" n)));
  if m < 1 || m > dims_limit then
    raise (Fail (Malformed (Printf.sprintf "provider count %d" m)));
  if n * m > cells_limit then
    raise (Fail (Malformed (Printf.sprintf "matrix %dx%d exceeds %d cells" n m cells_limit)));
  (* Every row count costs at least one byte, so a payload with fewer
     remaining bytes than rows is guaranteed truncated — reject before
     the counts array (n words) is allocated. *)
  if n > String.length payload - c.pos then raise (Fail (Truncated "row counts"));
  let counts =
    Array.init n (fun j ->
        let cnt = get_uvarint c ~what:(Printf.sprintf "count of row %d" j) in
        if cnt > m then
          raise (Fail (Malformed (Printf.sprintf "row %d count %d exceeds %d providers" j cnt m)));
        cnt)
  in
  let matrix = Bitmatrix.create ~rows:n ~cols:m in
  let r = reader c in
  for j = 0 to n - 1 do
    get_row r matrix ~j ~c:counts.(j) ~m
  done;
  finish_reader r;
  if c.pos <> String.length payload then
    raise
      (Fail (Malformed (Printf.sprintf "%d trailing bytes" (String.length payload - c.pos))));
  Eppi.Index.of_matrix matrix

let decode payload =
  match decode_exn payload with
  | index -> Ok index
  | exception Fail e -> Error e
  (* Defense in depth behind the dimension caps: the total Ok/Error
     contract must hold even if an allocation still fails — this decoder
     runs on daemon domains fed bytes off the network, and an escaped
     Out_of_memory would kill a worker (inline, the whole daemon). *)
  | exception Out_of_memory -> Error (Malformed "index too large to materialize")
  | exception Invalid_argument msg -> Error (Malformed msg)
