external monotonic_ns : unit -> int = "eppi_prelude_monotonic_ns" [@@noalloc]

let seconds () = float_of_int (monotonic_ns ()) *. 1e-9

let periodic ?(now = seconds) ~sleep ~interval ?iterations f =
  if interval <= 0.0 then invalid_arg "Clock.periodic: non-positive interval";
  (match iterations with
  | Some n when n < 1 -> invalid_arg "Clock.periodic: non-positive iterations"
  | _ -> ());
  let within tick = match iterations with None -> true | Some n -> tick <= n in
  let t0 = now () in
  let tick = ref 1 in
  let keep_going = ref true in
  while !keep_going && within !tick do
    keep_going := f !tick;
    incr tick;
    if !keep_going && within !tick then begin
      (* Absolute deadline from t0, not [sleep interval] after the work:
         each tick's cost is absorbed by its own sleep instead of
         accumulating as drift, and an overrunning tick skips the sleep
         entirely rather than pushing every later tick back. *)
      let deadline = t0 +. (float_of_int (!tick - 1) *. interval) in
      let remaining = deadline -. now () in
      if remaining > 0.0 then sleep remaining
    end
  done
