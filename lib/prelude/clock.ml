external monotonic_ns : unit -> int = "eppi_prelude_monotonic_ns" [@@noalloc]

let seconds () = float_of_int (monotonic_ns ()) *. 1e-9
