/* Monotonic nanosecond clock shared by the whole tree: latency histograms,
   the domain pool's busy accounting, and the tracing layer's span stamps.
   OCaml 5.1's Unix library exposes only gettimeofday (microsecond
   resolution, not monotonic), which cannot resolve a cache hit and can go
   backwards under NTP; CLOCK_MONOTONIC can and cannot.  Returned as a
   tagged immediate (62 bits of nanoseconds covers ~146 years of uptime),
   so the hot path never allocates. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value eppi_prelude_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + ts.tv_nsec);
}
