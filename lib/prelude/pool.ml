type worker_stat = { busy_ns : int; jobs : int }

type t = {
  size : int;
  mutable workers : unit Domain.t array;
  lock : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  (* The job all workers run for the current epoch; workers re-check the
     epoch so a job is executed exactly once per worker. *)
  mutable job : (unit -> unit) option;
  mutable epoch : int;
  mutable pending : int;
  mutable stopped : bool;
  (* Per-domain accounting, slot 0 = the calling domain, slot i = worker
     i.  Each slot has exactly one writer (the domain it describes), so
     the hot path is two clock reads and two plain-int adds; readers see
     exact values whenever the pool is quiescent. *)
  busy_ns : int array;
  jobs : int array;
}

let make_record size =
  {
    size;
    workers = [||];
    lock = Mutex.create ();
    work_ready = Condition.create ();
    work_done = Condition.create ();
    job = None;
    epoch = 0;
    pending = 0;
    stopped = false;
    busy_ns = Array.make size 0;
    jobs = Array.make size 0;
  }

let sequential = make_record 1

let charge t slot t0 =
  t.busy_ns.(slot) <- t.busy_ns.(slot) + (Clock.monotonic_ns () - t0);
  t.jobs.(slot) <- t.jobs.(slot) + 1

let rec worker_loop t slot seen =
  Mutex.lock t.lock;
  while (not t.stopped) && t.epoch = seen do
    Condition.wait t.work_ready t.lock
  done;
  if t.stopped then Mutex.unlock t.lock
  else begin
    let epoch = t.epoch in
    let job = match t.job with Some j -> j | None -> fun () -> () in
    Mutex.unlock t.lock;
    let t0 = Clock.monotonic_ns () in
    job ();
    charge t slot t0;
    Mutex.lock t.lock;
    t.pending <- t.pending - 1;
    if t.pending = 0 then Condition.broadcast t.work_done;
    Mutex.unlock t.lock;
    worker_loop t slot epoch
  end

let create ?size () =
  let size =
    match size with
    | Some s ->
        if s < 1 then invalid_arg "Pool.create: size must be >= 1";
        s
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let t = make_record size in
  if size > 1 then
    t.workers <-
      Array.init (size - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1) 0));
  t

let size t = t.size

let stats t =
  Array.init t.size (fun i : worker_stat -> { busy_ns = t.busy_ns.(i); jobs = t.jobs.(i) })

let shutdown t =
  if Array.length t.workers > 0 then begin
    Mutex.lock t.lock;
    t.stopped <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ?size f =
  let t = create ?size () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run [body] on every worker and on the caller; [body] must not raise. *)
let run_everywhere t body =
  if Array.length t.workers = 0 then begin
    let t0 = Clock.monotonic_ns () in
    body ();
    charge t 0 t0
  end
  else begin
    Mutex.lock t.lock;
    t.job <- Some body;
    t.epoch <- t.epoch + 1;
    t.pending <- Array.length t.workers;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.lock;
    let t0 = Clock.monotonic_ns () in
    body ();
    charge t 0 t0;
    Mutex.lock t.lock;
    while t.pending > 0 do
      Condition.wait t.work_done t.lock
    done;
    t.job <- None;
    Mutex.unlock t.lock
  end

(* Domains cooperatively grab index chunks from an atomic counter.  Chunk
   boundaries affect only the schedule, never the result: slot [i] always
   receives [f arr.(i)]. *)
let chunked_run t ~start ~stop work =
  let n = stop - start in
  let chunk = max 1 (n / (t.size * 4)) in
  let next = Atomic.make start in
  let err : exn option Atomic.t = Atomic.make None in
  let body () =
    try
      let continue_ = ref true in
      while !continue_ do
        let lo = Atomic.fetch_and_add next chunk in
        if lo >= stop || Atomic.get err <> None then continue_ := false
        else
          for i = lo to min stop (lo + chunk) - 1 do
            work i
          done
      done
    with e -> ignore (Atomic.compare_and_set err None (Some e))
  in
  run_everywhere t body;
  match Atomic.get err with Some e -> raise e | None -> ()

let sequential_run t f arr =
  let t0 = Clock.monotonic_ns () in
  let result = f arr in
  charge t 0 t0;
  result

let parallel_map t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if n = 1 || t.size = 1 || Array.length t.workers = 0 then
    sequential_run t (Array.map f) arr
  else begin
    (* Seed the result array with the first element (computed inline) so no
       dummy value is ever observable. *)
    let first = f arr.(0) in
    let results = Array.make n first in
    chunked_run t ~start:1 ~stop:n (fun i -> results.(i) <- f arr.(i));
    results
  end

let parallel_iter t f arr =
  let n = Array.length arr in
  if n = 0 then ()
  else if n = 1 || t.size = 1 || Array.length t.workers = 0 then
    sequential_run t (Array.iter f) arr
  else chunked_run t ~start:0 ~stop:n (fun i -> f arr.(i))
