let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty array";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.variance: empty array";
  if n = 1 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty array";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = quantile xs 0.5

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

let summary xs =
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = Array.fold_left Float.min xs.(0) xs;
    max = Array.fold_left Float.max xs.(0) xs;
    p50 = quantile xs 0.5;
    p95 = quantile xs 0.95;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4f sd=%.4f min=%.4f p50=%.4f p95=%.4f max=%.4f"
    s.n s.mean s.stddev s.min s.p50 s.p95 s.max

module Log2_histogram = struct
  type t = {
    lo : float;
    counts : int array;
    mutable total : int;
    mutable sum : float;
  }

  let create ?(lo = 1e-9) ?(buckets = 64) () =
    if lo <= 0.0 then invalid_arg "Log2_histogram.create: lo must be positive";
    if buckets <= 0 then invalid_arg "Log2_histogram.create: buckets must be positive";
    { lo; counts = Array.make buckets 0; total = 0; sum = 0.0 }

  let bucket_of t x =
    if x <= t.lo then 0
    else begin
      let i = int_of_float (Float.floor (Float.log2 (x /. t.lo))) in
      if i < 0 then 0 else min (Array.length t.counts - 1) i
    end

  let add t x =
    let i = bucket_of t x in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum +. x

  let total t = t.total
  let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total
  let counts t = Array.copy t.counts

  let merge a b =
    if a.lo <> b.lo || Array.length a.counts <> Array.length b.counts then
      invalid_arg "Log2_histogram.merge: incompatible histograms";
    let t = { a with counts = Array.copy a.counts } in
    Array.iteri (fun i c -> t.counts.(i) <- t.counts.(i) + c) b.counts;
    t.total <- a.total + b.total;
    t.sum <- a.sum +. b.sum;
    t

  let quantile t q =
    if q < 0.0 || q > 1.0 then invalid_arg "Log2_histogram.quantile: q out of [0,1]";
    if t.total = 0 then 0.0
    else begin
      (* Rank of the q-th sample, then the geometric midpoint of its bucket. *)
      let rank = int_of_float (Float.ceil (q *. float_of_int t.total)) in
      let rank = max 1 rank in
      let seen = ref 0 and bucket = ref (Array.length t.counts - 1) in
      (try
         Array.iteri
           (fun i c ->
             seen := !seen + c;
             if !seen >= rank then begin
               bucket := i;
               raise Exit
             end)
           t.counts
       with Exit -> ());
      t.lo *. Float.pow 2.0 (float_of_int !bucket +. 0.5)
    end
end

module Histogram = struct
  type t = { lo : float; hi : float; counts : int array }

  let create ~lo ~hi ~bins =
    if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
    if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
    { lo; hi; counts = Array.make bins 0 }

  let bin_of t x =
    let bins = Array.length t.counts in
    let raw = (x -. t.lo) /. (t.hi -. t.lo) *. float_of_int bins in
    let i = int_of_float (Float.floor raw) in
    if i < 0 then 0 else if i >= bins then bins - 1 else i

  let add t x =
    let i = bin_of t x in
    t.counts.(i) <- t.counts.(i) + 1

  let counts t = Array.copy t.counts
  let total t = Array.fold_left ( + ) 0 t.counts
end
