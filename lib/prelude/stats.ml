let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty array";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.variance: empty array";
  if n = 1 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty array";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = quantile xs 0.5

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

let summary xs =
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = Array.fold_left Float.min xs.(0) xs;
    max = Array.fold_left Float.max xs.(0) xs;
    p50 = quantile xs 0.5;
    p95 = quantile xs 0.95;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4f sd=%.4f min=%.4f p50=%.4f p95=%.4f max=%.4f"
    s.n s.mean s.stddev s.min s.p50 s.p95 s.max

module Log2_histogram = struct
  type t = {
    lo : float;
    counts : int array;
    mutable total : int;
    mutable sum : float;
  }

  let create ?(lo = 1e-9) ?(buckets = 64) () =
    if lo <= 0.0 then invalid_arg "Log2_histogram.create: lo must be positive";
    if buckets <= 0 then invalid_arg "Log2_histogram.create: buckets must be positive";
    { lo; counts = Array.make buckets 0; total = 0; sum = 0.0 }

  let bucket_of t x =
    if x <= t.lo then 0
    else begin
      let i = int_of_float (Float.floor (Float.log2 (x /. t.lo))) in
      if i < 0 then 0 else min (Array.length t.counts - 1) i
    end

  let add t x =
    let i = bucket_of t x in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum +. x

  let total t = t.total
  let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total
  let sum t = t.sum
  let counts t = Array.copy t.counts

  let clear t =
    Array.fill t.counts 0 (Array.length t.counts) 0;
    t.total <- 0;
    t.sum <- 0.0

  let merge a b =
    if a.lo <> b.lo || Array.length a.counts <> Array.length b.counts then
      invalid_arg "Log2_histogram.merge: incompatible histograms";
    let t = { a with counts = Array.copy a.counts } in
    Array.iteri (fun i c -> t.counts.(i) <- t.counts.(i) + c) b.counts;
    t.total <- a.total + b.total;
    t.sum <- a.sum +. b.sum;
    t

  let quantile t q =
    if q < 0.0 || q > 1.0 then invalid_arg "Log2_histogram.quantile: q out of [0,1]";
    if t.total = 0 then 0.0
    else begin
      (* Rank of the q-th sample, then the geometric midpoint of its bucket. *)
      let rank = int_of_float (Float.ceil (q *. float_of_int t.total)) in
      let rank = max 1 rank in
      let seen = ref 0 and bucket = ref (Array.length t.counts - 1) in
      (try
         Array.iteri
           (fun i c ->
             seen := !seen + c;
             if !seen >= rank then begin
               bucket := i;
               raise Exit
             end)
           t.counts
       with Exit -> ());
      t.lo *. Float.pow 2.0 (float_of_int !bucket +. 0.5)
    end
end

module Windowed = struct
  (* A rolling window of [slots] sub-histograms, each covering [slot_ns] of
     wall time.  [add]/[snapshot] take the caller's clock so rotation is
     deterministic under test.  Slot [e mod slots] holds epoch [e]; advancing
     past a slot clears it before reuse, so stale data never leaks into a
     snapshot.  A backwards clock step (epoch < current) discards the window
     rather than mixing samples from two timelines. *)
  type t = {
    slot_ns : int;
    slots : Log2_histogram.t array;
    mutable epoch : int;  (* now_ns / slot_ns of the most recent touch *)
    mutable touched : bool;  (* false until the first add after create/clear *)
  }

  type summary = {
    count : int;
    rate : float;  (* samples per second over the whole window span *)
    mean : float;
    p50 : float;
    p99 : float;
    span_s : float;
  }

  let create ?(lo = 1e-9) ?(hist_buckets = 64) ?(slots = 10) ?(slot_ns = 1_000_000_000) () =
    if slots <= 0 then invalid_arg "Windowed.create: slots must be positive";
    if slot_ns <= 0 then invalid_arg "Windowed.create: slot_ns must be positive";
    {
      slot_ns;
      slots = Array.init slots (fun _ -> Log2_histogram.create ~lo ~buckets:hist_buckets ());
      epoch = 0;
      touched = false;
    }

  let clear_all t =
    Array.iter Log2_histogram.clear t.slots;
    t.touched <- false

  let rotate t ~now_ns =
    let e = now_ns / t.slot_ns in
    if not t.touched then t.epoch <- e
    else if e < t.epoch then begin
      (* Clock stepped backwards: the window's timeline is gone. *)
      clear_all t;
      t.epoch <- e
    end
    else if e > t.epoch then begin
      let n = Array.length t.slots in
      let stale = e - t.epoch in
      if stale >= n then clear_all t
      else
        for k = t.epoch + 1 to e do
          Log2_histogram.clear t.slots.(k mod n)
        done;
      t.epoch <- e
    end

  let add t ~now_ns x =
    rotate t ~now_ns;
    t.touched <- true;
    Log2_histogram.add t.slots.(t.epoch mod Array.length t.slots) x

  let span_s t = float_of_int (Array.length t.slots * t.slot_ns) /. 1e9

  let snapshot t ~now_ns =
    rotate t ~now_ns;
    let merged =
      Array.fold_left
        (fun acc h -> Log2_histogram.merge acc h)
        (Log2_histogram.create
           ~lo:t.slots.(0).Log2_histogram.lo
           ~buckets:(Array.length t.slots.(0).Log2_histogram.counts)
           ())
        t.slots
    in
    let count = Log2_histogram.total merged in
    let span = span_s t in
    {
      count;
      rate = (if count = 0 then 0.0 else float_of_int count /. span);
      mean = Log2_histogram.mean merged;
      p50 = Log2_histogram.quantile merged 0.5;
      p99 = Log2_histogram.quantile merged 0.99;
      span_s = span;
    }
end

module Histogram = struct
  type t = { lo : float; hi : float; counts : int array }

  let create ~lo ~hi ~bins =
    if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
    if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
    { lo; hi; counts = Array.make bins 0 }

  let bin_of t x =
    let bins = Array.length t.counts in
    let raw = (x -. t.lo) /. (t.hi -. t.lo) *. float_of_int bins in
    let i = int_of_float (Float.floor raw) in
    if i < 0 then 0 else if i >= bins then bins - 1 else i

  let add t x =
    let i = bin_of t x in
    t.counts.(i) <- t.counts.(i) + 1

  let counts t = Array.copy t.counts
  let total t = Array.fold_left ( + ) 0 t.counts
end
