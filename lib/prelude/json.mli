(** Minimal JSON reader for the daemon's own replies.

    The wire protocol carries Stats/Telemetry payloads as JSON strings
    assembled by hand on the server; the CLI pulls them apart again to
    render `eppi top` and to diff counters for `eppi stats --watch`.
    Full grammar, zero dependencies, no performance ambitions — replies
    are a few KB. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> (t, string) result
(** Whole-string parse; trailing non-whitespace bytes are an error. *)

val parse_exn : string -> t
(** @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else. *)

val find : t -> string list -> t option
(** Nested lookup: [find v ["a"; "b"]] is [v.a.b]. *)

val num : t -> float option
val str : t -> string option
val list : t -> t list option
val obj : t -> (string * t) list option
val find_num : t -> string list -> float option
val find_str : t -> string list -> string option

val find_int : t -> string list -> int option
(** [find_num] rounded to the nearest integer. *)
