type t = { len : int; data : Bytes.t }

let popcount_table =
  lazy
    (Array.init 256 (fun b ->
         let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
         go b 0))

let create len =
  if len < 0 then invalid_arg "Bitvec.create: negative length";
  { len; data = Bytes.make ((len + 7) / 8) '\000' }

let length t = t.len

let check t i = if i < 0 || i >= t.len then invalid_arg "Bitvec: index out of bounds"

let get t i =
  check t i;
  Char.code (Bytes.unsafe_get t.data (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check t i;
  let b = i lsr 3 in
  Bytes.unsafe_set t.data b
    (Char.chr (Char.code (Bytes.unsafe_get t.data b) lor (1 lsl (i land 7))))

let clear t i =
  check t i;
  let b = i lsr 3 in
  Bytes.unsafe_set t.data b
    (Char.chr (Char.code (Bytes.unsafe_get t.data b) land lnot (1 lsl (i land 7)) land 0xff))

let assign t i v = if v then set t i else clear t i

let count t =
  let table = Lazy.force popcount_table in
  let acc = ref 0 in
  for b = 0 to Bytes.length t.data - 1 do
    acc := !acc + table.(Char.code (Bytes.unsafe_get t.data b))
  done;
  !acc

let copy t = { len = t.len; data = Bytes.copy t.data }
let equal a b = a.len = b.len && Bytes.equal a.data b.data

let fill t v =
  if not v then Bytes.fill t.data 0 (Bytes.length t.data) '\000'
  else begin
    Bytes.fill t.data 0 (Bytes.length t.data) '\255';
    (* Keep the padding bits of the final byte zero so [count] stays exact. *)
    let rem = t.len land 7 in
    if rem <> 0 && Bytes.length t.data > 0 then
      Bytes.set t.data
        (Bytes.length t.data - 1)
        (Char.chr ((1 lsl rem) - 1))
  end

let binop op a b =
  if a.len <> b.len then invalid_arg "Bitvec: length mismatch";
  let r = create a.len in
  for i = 0 to Bytes.length a.data - 1 do
    Bytes.unsafe_set r.data i
      (Char.chr (op (Char.code (Bytes.unsafe_get a.data i)) (Char.code (Bytes.unsafe_get b.data i))))
  done;
  r

let union = binop ( lor )
let inter = binop ( land )
let diff = binop (fun x y -> x land lnot y land 0xff)

(* Byte-at-a-time scans: all-zero bytes (the common case in sparse rows) are
   skipped in one comparison, and bit indexes are loop-controlled so no
   per-bit bounds check is needed.  The padding bits of the last byte are
   maintained zero by [set]/[clear]/[fill] and the byte-wise operators, so
   scanning whole bytes never yields an out-of-range index. *)
let iter_set f t =
  for b = 0 to Bytes.length t.data - 1 do
    let byte = Char.code (Bytes.unsafe_get t.data b) in
    if byte <> 0 then begin
      let base = b lsl 3 in
      for k = 0 to 7 do
        if byte land (1 lsl k) <> 0 then f (base + k)
      done
    end
  done

let to_index_list t =
  let acc = ref [] in
  for b = Bytes.length t.data - 1 downto 0 do
    let byte = Char.code (Bytes.unsafe_get t.data b) in
    if byte <> 0 then begin
      let base = b lsl 3 in
      for k = 7 downto 0 do
        if byte land (1 lsl k) <> 0 then acc := (base + k) :: !acc
      done
    end
  done;
  !acc

let of_index_list len idxs =
  let t = create len in
  List.iter (fun i -> set t i) idxs;
  t

let fold_set f init t =
  let acc = ref init in
  iter_set (fun i -> acc := f !acc i) t;
  !acc

let pp ppf t =
  for i = 0 to t.len - 1 do
    Format.pp_print_char ppf (if get t i then '1' else '0')
  done
