(* Minimal recursive-descent JSON reader.

   The daemon's Stats/Telemetry replies are JSON strings built by hand on
   the server side; the CLI needs to take them apart again (to render
   `eppi top` and to diff counters for `eppi stats --watch`) without
   pulling in an external dependency.  This covers the full JSON grammar
   but optimizes for nothing: replies are a few KB at most. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    &&
    match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> fail "expected '%c' at %d, found '%c'" ch c.pos x
  | None -> fail "expected '%c' at %d, found end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail "invalid literal at %d" c.pos

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.src then fail "unterminated string";
    let ch = c.src.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents b
    | '\\' ->
        (if c.pos >= String.length c.src then fail "unterminated escape";
         let e = c.src.[c.pos] in
         c.pos <- c.pos + 1;
         match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 't' -> Buffer.add_char b '\t'
         | 'r' -> Buffer.add_char b '\r'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
             if c.pos + 4 > String.length c.src then fail "truncated \\u escape";
             let hex = String.sub c.src c.pos 4 in
             c.pos <- c.pos + 4;
             let code =
               try int_of_string ("0x" ^ hex)
               with _ -> fail "bad \\u escape at %d" c.pos
             in
             (* UTF-8 encode the BMP code point; surrogate pairs are not
                needed for anything this repo emits. *)
             if code < 0x80 then Buffer.add_char b (Char.chr code)
             else if code < 0x800 then begin
               Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
               Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
             end
             else begin
               Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
               Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
               Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
             end
         | _ -> fail "bad escape '\\%c'" e);
        go ()
    | ch -> Buffer.add_char b ch; go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let numeric ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.src && numeric c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> fail "bad number %S at %d" s start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin c.pos <- c.pos + 1; Obj [] end
      else begin
        let rec members acc =
          skip_ws c;
          let key = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> c.pos <- c.pos + 1; members ((key, v) :: acc)
          | Some '}' -> c.pos <- c.pos + 1; Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}' at %d" c.pos
        in
        members []
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin c.pos <- c.pos + 1; List [] end
      else begin
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> c.pos <- c.pos + 1; elements (v :: acc)
          | Some ']' -> c.pos <- c.pos + 1; List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']' at %d" c.pos
        in
        elements []
      end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then Error (Printf.sprintf "trailing bytes at %d" c.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> raise (Parse_error msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let rec find v = function
  | [] -> Some v
  | key :: rest -> ( match member key v with Some v' -> find v' rest | None -> None)

let num = function Num f -> Some f | _ -> None
let str = function Str s -> Some s | _ -> None
let list = function List l -> Some l | _ -> None
let obj = function Obj l -> Some l | _ -> None

let find_num v path = Option.bind (find v path) num
let find_str v path = Option.bind (find v path) str

let find_int v path =
  Option.map (fun f -> int_of_float (Float.round f)) (find_num v path)
