(** Descriptive statistics used to aggregate experiment samples. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

val mean : float array -> float
(** Arithmetic mean.  @raise Invalid_argument on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for singletons. *)

val stddev : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [0,1], linear interpolation between order
    statistics.  Does not mutate its argument. *)

val median : float array -> float

val summary : float array -> summary
val pp_summary : Format.formatter -> summary -> unit

(** Log-scaled histogram for long-tailed positive samples (latencies).

    Bucket [i] covers [[lo * 2^i, lo * 2^{i+1})]; with the defaults (lo =
    1 ns, 64 buckets) the range spans nanoseconds to centuries, so a serving
    engine can record per-query latencies with one array increment and no
    per-sample allocation, then report p50/p95/p99 within a factor of
    [sqrt 2]. *)
module Log2_histogram : sig
  type t

  val create : ?lo:float -> ?buckets:int -> unit -> t
  (** [lo] defaults to 1e-9 (one nanosecond), [buckets] to 64.
      @raise Invalid_argument on a non-positive [lo] or bucket count. *)

  val add : t -> float -> unit
  (** Record a sample; values at or below [lo] land in bucket 0, values past
      the top bucket are clamped into it. *)

  val total : t -> int
  val mean : t -> float
  (** Exact mean of the recorded samples (0 when empty). *)

  val sum : t -> float
  (** Exact sum of the recorded samples. *)

  val counts : t -> int array

  val clear : t -> unit
  (** Forget every sample, keeping the shape (lo, bucket count). *)

  val merge : t -> t -> t
  (** Pointwise sum, for aggregating per-shard histograms into one snapshot.
      @raise Invalid_argument when the shapes differ. *)

  val quantile : t -> float -> float
  (** [quantile t q] is the geometric midpoint of the bucket holding the
      q-th sample — exact rank, bucket-resolution value.  0 when empty.
      @raise Invalid_argument for [q] outside [0, 1]. *)
end

(** Rolling-window histogram: a ring of {!Log2_histogram} slots, each
    covering a fixed span of wall time, so a live daemon can report
    "p99 over the last ~10 s" instead of since-boot aggregates.

    The caller supplies the clock ([now_ns]) on every operation, which keeps
    rotation deterministic under test.  Slots past the window are cleared
    lazily as the clock advances; a backwards clock step discards the whole
    window (two timelines must not mix); a forward jump larger than the
    window empties it. *)
module Windowed : sig
  type t

  type summary = {
    count : int;
    rate : float;  (** samples per second over the full window span *)
    mean : float;
    p50 : float;
    p99 : float;
    span_s : float;
  }

  val create :
    ?lo:float -> ?hist_buckets:int -> ?slots:int -> ?slot_ns:int -> unit -> t
  (** Defaults: 10 slots of 1 s each (a ~10 s rolling window), sample
      histograms shaped like {!Log2_histogram.create}'s defaults.
      @raise Invalid_argument on non-positive [slots] or [slot_ns]. *)

  val add : t -> now_ns:int -> float -> unit
  (** Record a sample at time [now_ns], rotating stale slots out first. *)

  val snapshot : t -> now_ns:int -> summary
  (** Aggregate over every live slot as of [now_ns]. *)

  val span_s : t -> float
  (** The window's full span in seconds (slots x slot width). *)
end

(** Fixed-bin histogram over a closed interval. *)
module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t

  val add : t -> float -> unit
  (** Out-of-range values are clamped into the edge bins. *)

  val counts : t -> int array
  val total : t -> int

  val bin_of : t -> float -> int
  (** Index of the bin a value falls into. *)
end
