(** A reusable fixed-size domain work pool (OCaml 5 multicore).

    The construction pipeline shards embarrassingly-parallel work — one GMW
    comparator evaluation per identity — across CPU cores.  This module owns
    the domains: a pool of [size - 1] worker domains plus the calling domain
    cooperatively drain an atomic chunk queue, so the same pool is reused
    across protocol stages without re-spawning domains.

    Determinism: [parallel_map] writes result [i] from input [i] regardless
    of which domain or chunk schedule computed it, so the output is
    bit-identical to the sequential [Array.map] at every pool size.  Work
    functions must therefore not share mutable state (give each item its own
    {!Rng.t} via {!Rng.split} before entering the pool).

    A pool of size 1 (and {!sequential}) spawns no domains and runs
    everything inline in the caller; this is also the fallback on
    single-core hosts where [Domain.recommended_domain_count () = 1].

    The pool is not reentrant: calling [parallel_map] from inside a work
    function deadlocks.  Shut pools down (or use {!with_pool}) so worker
    domains are joined before process exit. *)

type t

val sequential : t
(** The always-available size-1 pool: no domains, pure inline execution. *)

val create : ?size:int -> unit -> t
(** [create ~size ()] spawns [size - 1] worker domains.  [size] defaults to
    [Domain.recommended_domain_count ()].
    @raise Invalid_argument if [size < 1]. *)

val size : t -> int

type worker_stat = {
  busy_ns : int;  (** Cumulative nanoseconds spent inside pool jobs. *)
  jobs : int;  (** Pool jobs (epochs) this domain participated in. *)
}

val stats : t -> worker_stat array
(** Cumulative per-domain busy/job accounting: slot 0 is the calling
    domain, slot [i] is worker [i].  Each slot is written only by the
    domain it describes, so reads taken while the pool is quiescent (no
    [parallel_map]/[parallel_iter] in flight) are exact; utilization over a
    window is the delta of two snapshots divided by the window's wall
    time. *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map t f arr] is [Array.map f arr], evaluated cooperatively by
    the pool in deterministic index-addressed chunks.  The first exception
    raised by [f] (on any domain) is re-raised in the caller after all
    domains have quiesced; remaining chunks are abandoned. *)

val parallel_iter : t -> ('a -> unit) -> 'a array -> unit
(** [parallel_iter t f arr] is [Array.iter f arr] with the same contract as
    {!parallel_map}; [f] is called for side effects (each call must touch
    disjoint state). *)

val shutdown : t -> unit
(** Signal and join the worker domains.  Idempotent; after shutdown the pool
    degrades to inline sequential execution. *)

val with_pool : ?size:int -> (t -> 'a) -> 'a
(** [with_pool ~size f] runs [f] with a fresh pool and always shuts it down,
    including on exception. *)
