(** Monotonic wall clock, nanosecond resolution.

    Latency histograms need to resolve cache hits (tens of nanoseconds),
    span timestamps must never go backwards, and benchmark walls must not
    jump under NTP; [Unix.gettimeofday] fails all three, so this wraps
    [clock_gettime(CLOCK_MONOTONIC)] directly.  Allocation-free. *)

val monotonic_ns : unit -> int
(** Nanoseconds from an arbitrary fixed origin; never goes backwards. *)

val seconds : unit -> float
(** {!monotonic_ns} scaled to seconds — the default coarse clock. *)
