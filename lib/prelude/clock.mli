(** Monotonic wall clock, nanosecond resolution.

    Latency histograms need to resolve cache hits (tens of nanoseconds),
    span timestamps must never go backwards, and benchmark walls must not
    jump under NTP; [Unix.gettimeofday] fails all three, so this wraps
    [clock_gettime(CLOCK_MONOTONIC)] directly.  Allocation-free. *)

val monotonic_ns : unit -> int
(** Nanoseconds from an arbitrary fixed origin; never goes backwards. *)

val seconds : unit -> float
(** {!monotonic_ns} scaled to seconds — the default coarse clock. *)

val periodic :
  ?now:(unit -> float) ->
  sleep:(float -> unit) ->
  interval:float ->
  ?iterations:int ->
  (int -> bool) ->
  unit
(** [periodic ~sleep ~interval f] runs [f 1], [f 2], … on a drift-free
    cadence: tick [k] fires at absolute deadline [t0 + (k-1) * interval]
    (measured on [now], default {!seconds}), so the time [f] spends
    working is absorbed by that tick's own sleep instead of accumulating
    — a 0.3 s body on a 1 s interval sleeps 0.7 s, and a tick that
    overruns its slot just skips its sleep.  Stops when [f] returns
    [false] or after [iterations] ticks (default: forever).  [sleep] is a
    parameter (not [Unix.sleepf]) because this library does not link
    unix; pass [Unix.sleepf] from daemons, a fake from tests.
    @raise Invalid_argument on a non-positive [interval] or
    [iterations]. *)
