(** Compiler from mini-SFDL to Boolean circuits.

    Compilation model (the Fairplay lineage):
    - [for] loops are fully unrolled; the loop variable becomes a
      compile-time constant in each copy of the body;
    - [if] on a secret condition executes both branches and multiplexes every
      assignment; [if] on a public condition selects a branch statically;
    - array indexes must fold to constants after unrolling (checked here with
      bounds);
    - arithmetic grows widths ([+] by one bit, [*] to the sum of widths)
      instead of wrapping; an assignment truncates or zero-extends the value
      to the declared width of its target.  This diverges from Fairplay's
      wrap-around semantics on purpose: the secure-sum pipeline must not lose
      carries silently.

    Inputs are wired per party in declaration order; outputs are emitted in
    declaration order, each value LSB first. *)

type shape =
  | Sbool
  | Suint of int  (** width *)
  | Sarr_bool of int  (** length *)
  | Sarr_uint of int * int  (** length, element width *)

type compiled = {
  circuit : Eppi_circuit.Circuit.t;
  parties : string array;
  input_layout : (string * int * shape) list;
      (** (input name, owning party index, shape), declaration order. *)
  output_layout : (string * shape) list;
}

(** Concrete values for inputs and decoded outputs. *)
type data =
  | Dbool of bool
  | Dint of int
  | Dbools of bool array
  | Dints of int array

exception Error of string * Ast.position

val compile : Ast.program -> compiled
(** @raise Error on problems only visible after unrolling (width/bound
    values, array bounds). The program should have passed {!Typecheck.check}
    first; [compile] re-raises type-shaped problems as [Error] too. *)

val compile_source : string -> compiled
(** Parse, typecheck and compile.
    @raise Lexer.Error, Parser.Error, Typecheck.Error, or Error. *)

type cache
(** A memo table of compiled circuits keyed on the program source.  Safe to
    share across domains (a mutex guards the table); the compiled values are
    immutable once published and may be evaluated concurrently. *)

val create_cache : unit -> cache

val compile_source_cached : cache -> string -> compiled
(** Like {!compile_source}, but identical sources compile exactly once per
    cache.  The construction pipeline keys its per-identity comparator
    circuits this way: identities sharing a [(c, q, threshold)] triple
    generate byte-identical sources and reuse one circuit. *)

val cache_size : cache -> int
(** Number of distinct sources currently memoized. *)

val encode_inputs : compiled -> (string * data) list -> bool array array
(** Build the per-party input bit vectors expected by
    {!Eppi_circuit.Circuit.eval} and the MPC runtime.  Every declared input
    must be given a value whose shape matches its declaration.
    @raise Invalid_argument on missing or ill-shaped values. *)

val decode_outputs : compiled -> bool array -> (string * data) list
(** Interpret the raw output bits back into named values. *)

val lookup_output : (string * data) list -> string -> data
(** Convenience accessor. @raise Not_found *)
