open Ast
module Circuit = Eppi_circuit.Circuit
module B = Circuit.Builder
module Word = Eppi_circuit.Word

type shape =
  | Sbool
  | Suint of int
  | Sarr_bool of int
  | Sarr_uint of int * int

type compiled = {
  circuit : Circuit.t;
  parties : string array;
  input_layout : (string * int * shape) list;
  output_layout : (string * shape) list;
}

type data =
  | Dbool of bool
  | Dint of int
  | Dbools of bool array
  | Dints of int array

exception Error of string * Ast.position

let fail pos fmt = Printf.ksprintf (fun message -> raise (Error (message, pos))) fmt

(* Runtime (circuit-time) values. *)
type value = Vbool of Circuit.wire | Vword of Word.word

(* Resolved scalar type of a declared variable. *)
type rty = Rbool | Ruint of int

type slot = { rty : rty; cells : value array }
(* A scalar is a 1-cell slot; an array of length k has k cells. *)

type binding =
  | Kconst of int
  | Kconstarr of int array
  | Kloop of int
  | Kparty of int
  | Kslot of slot

type env = { table : (string, binding) Hashtbl.t; builder : B.t }

let lookup env pos name =
  match Hashtbl.find_opt env.table name with
  | Some b -> b
  | None -> fail pos "unknown identifier %s" name

(* Public (constant) evaluation; bools map to 0/1. *)
let rec eval_pub env e =
  match e.desc with
  | Int n -> n
  | Bool b -> if b then 1 else 0
  | Var name -> (
      match lookup env e.pos name with
      | Kconst v | Kloop v -> v
      | Kconstarr _ -> fail e.pos "constant array %s must be indexed" name
      | Kparty _ -> fail e.pos "%s is a party, not a value" name
      | Kslot _ -> fail e.pos "%s is not a public expression" name)
  | Index (name, idx) -> (
      let i = eval_pub env idx in
      match lookup env e.pos name with
      | Kconstarr a ->
          if i < 0 || i >= Array.length a then
            fail idx.pos "index %d out of bounds for %s (length %d)" i name (Array.length a);
          a.(i)
      | _ -> fail e.pos "%s is not a public array" name)
  | Unop (Neg, a) -> -eval_pub env a
  | Unop (Not, a) -> if eval_pub env a = 0 then 1 else 0
  | Binop (op, a, b) -> (
      let va = eval_pub env a and vb = eval_pub env b in
      let bool_of v = v <> 0 in
      match op with
      | Add -> va + vb
      | Sub -> va - vb
      | Mul -> va * vb
      | Div ->
          if vb = 0 then fail e.pos "division by zero in constant expression";
          va / vb
      | Mod ->
          if vb = 0 then fail e.pos "modulo by zero in constant expression";
          va mod vb
      | Lt -> if va < vb then 1 else 0
      | Le -> if va <= vb then 1 else 0
      | Gt -> if va > vb then 1 else 0
      | Ge -> if va >= vb then 1 else 0
      | Eq -> if va = vb then 1 else 0
      | Ne -> if va <> vb then 1 else 0
      | And -> va land vb
      | Or -> va lor vb
      | Xor -> va lxor vb
      | Land -> if bool_of va && bool_of vb then 1 else 0
      | Lor -> if bool_of va || bool_of vb then 1 else 0)
  | Cond (c, a, b) -> if eval_pub env c <> 0 then eval_pub env a else eval_pub env b

let rec is_public env e =
  match e.desc with
  | Int _ | Bool _ -> true
  | Var name -> (
      match Hashtbl.find_opt env.table name with
      | Some (Kconst _ | Kloop _ | Kconstarr _) -> true
      | _ -> false)
  | Index (name, idx) -> (
      match Hashtbl.find_opt env.table name with
      | Some (Kconstarr _) -> is_public env idx
      | _ -> false)
  | Binop (_, a, b) -> is_public env a && is_public env b
  | Unop (_, a) -> is_public env a
  | Cond (c, a, b) -> is_public env c && is_public env a && is_public env b

let resolve_scalar_ty env pos = function
  | Tbool -> Rbool
  | Tuint w ->
      let width = eval_pub env w in
      if width < 1 || width > 62 then fail pos "uint width %d out of range [1, 62]" width;
      Ruint width
  | Tarray _ -> fail pos "nested arrays are not supported"

(* (scalar type, length); length 1 plus [scalar=true] means a true scalar. *)
let resolve_ty env pos ty =
  match ty with
  | Tarray (elem, len_e) ->
      let len = eval_pub env len_e in
      if len < 1 then fail pos "array length %d must be positive" len;
      (resolve_scalar_ty env pos elem, len, false)
  | Tbool | Tuint _ -> (resolve_scalar_ty env pos ty, 1, true)

let shape_of rty len scalar =
  match (rty, scalar) with
  | Rbool, true -> Sbool
  | Ruint w, true -> Suint w
  | Rbool, false -> Sarr_bool len
  | Ruint w, false -> Sarr_uint (len, w)

let zero_value b = function
  | Rbool -> Vbool (B.const b false)
  | Ruint w -> Vword (Word.const_int b ~width:w 0)

let coerce b rty value pos =
  match (rty, value) with
  | Rbool, Vbool w -> Vbool w
  | Ruint width, Vword word ->
      if Array.length word > width then Vword (Array.sub word 0 width)
      else Vword (Word.zero_extend b word width)
  | Rbool, Vword _ -> fail pos "cannot assign an integer to a bool"
  | Ruint _, Vbool _ -> fail pos "cannot assign a bool to an integer"

let bool_mux b sel a c =
  (* c ^ (sel & (a ^ c)) *)
  B.xor_ b c (B.and_ b sel (B.xor_ b a c))

let rec compile_expr env e : value =
  let b = env.builder in
  if is_public env e then begin
    match e.desc with
    | Bool v -> Vbool (B.const b v)
    | _ ->
        let v = eval_pub env e in
        (* Comparisons and logical ops yield bools even when folded. *)
        (match e.desc with
        | Binop ((Lt | Le | Gt | Ge | Eq | Ne | Land | Lor), _, _) | Unop (Not, _) ->
            Vbool (B.const b (v <> 0))
        | _ ->
            if v < 0 then fail e.pos "negative constant %d cannot flow into the circuit" v;
            Vword (Word.const_int b ~width:(Word.bits_for v) v))
  end
  else
    match e.desc with
    | Int _ | Bool _ -> assert false (* public, handled above *)
    | Var name -> (
        match lookup env e.pos name with
        | Kslot { cells = [| v |]; _ } -> v
        | Kslot _ -> fail e.pos "array %s must be indexed" name
        | Kconst _ | Kconstarr _ | Kloop _ | Kparty _ -> assert false)
    | Index (name, idx) when is_public env idx -> (
        let i = eval_pub env idx in
        match lookup env e.pos name with
        | Kslot slot ->
            if i < 0 || i >= Array.length slot.cells then
              fail idx.pos "index %d out of bounds for %s (length %d)" i name
                (Array.length slot.cells);
            slot.cells.(i)
        | Kconstarr _ -> assert false (* public *)
        | Kconst _ | Kloop _ | Kparty _ -> fail e.pos "%s is not an array" name)
    | Index (name, idx) -> (
        (* Secret index: lower the read to a mux chain over all cells (the
           Fairplay approach).  An out-of-range index yields zero. *)
        let idx_word =
          match compile_expr env idx with
          | Vword w -> w
          | Vbool _ -> fail idx.pos "array index must be an integer"
        in
        let cells =
          match lookup env e.pos name with
          | Kslot slot -> Array.copy slot.cells
          | Kconstarr a ->
              Array.map
                (fun v ->
                  if v < 0 then
                    fail e.pos "negative constant %d cannot flow into the circuit" v;
                  Vword (Word.const_int b ~width:(Word.bits_for v) v))
                a
          | Kconst _ | Kloop _ | Kparty _ -> fail e.pos "%s is not an array" name
        in
        let zero =
          match cells.(0) with
          | Vbool _ -> Vbool (B.const b false)
          | Vword w -> Vword (Word.const_int b ~width:(Array.length w) 0)
        in
        let acc = ref zero in
        Array.iteri
          (fun k cell ->
            let k_word = Word.const_int b ~width:(Word.bits_for (max k 1)) k in
            let sel = Word.equal b idx_word k_word in
            acc :=
              (match (cell, !acc) with
              | Vbool x, Vbool y -> Vbool (bool_mux b sel x y)
              | Vword x, Vword y -> Vword (Word.mux b sel x y)
              | _ -> fail e.pos "internal: mixed cell types in %s" name))
          cells;
        !acc)
    | Unop (Not, a) -> (
        match compile_expr env a with
        | Vbool w -> Vbool (B.not_ b w)
        | Vword _ -> fail e.pos "operand of ! must be bool")
    | Unop (Neg, _) -> fail e.pos "unary minus on a secret value is not supported"
    | Cond (c, a, d) -> (
        let vc = compile_expr env c in
        let sel = match vc with Vbool w -> w | Vword _ -> fail c.pos "condition must be bool" in
        let va = compile_expr env a and vd = compile_expr env d in
        match (va, vd) with
        | Vbool x, Vbool y -> Vbool (bool_mux b sel x y)
        | Vword x, Vword y -> Vword (Word.mux b sel x y)
        | _ -> fail e.pos "branches of ?: must have the same type")
    | Binop (op, a, d) -> compile_binop env e.pos op a d

and compile_binop env pos op a d =
  let b = env.builder in
  let va = compile_expr env a and vd = compile_expr env d in
  let words () =
    match (va, vd) with
    | Vword x, Vword y -> (x, y)
    | _ -> fail pos "operands of %s must be integers" (binop_name op)
  in
  let bools () =
    match (va, vd) with
    | Vbool x, Vbool y -> (x, y)
    | _ -> fail pos "operands of %s must be bool" (binop_name op)
  in
  let bitwise f =
    match (va, vd) with
    | Vbool x, Vbool y -> Vbool (f x y)
    | Vword x, Vword y ->
        let width = max (Array.length x) (Array.length y) in
        let x = Word.zero_extend b x width and y = Word.zero_extend b y width in
        Vword (Array.init width (fun i -> f x.(i) y.(i)))
    | _ -> fail pos "operands of %s must both be bool or both integers" (binop_name op)
  in
  match op with
  | Add ->
      let x, y = words () in
      Vword (Word.add b x y)
  | Sub ->
      let x, y = words () in
      Vword (Word.sub b x y)
  | Mul ->
      let x, y = words () in
      Vword (Word.mul b x y)
  | Div ->
      let x, y = words () in
      Vword (fst (Word.divmod b x y))
  | Mod ->
      let x, y = words () in
      Vword (snd (Word.divmod b x y))
  | Lt ->
      let x, y = words () in
      Vbool (Word.lt b x y)
  | Le ->
      let x, y = words () in
      Vbool (B.not_ b (Word.lt b y x))
  | Gt ->
      let x, y = words () in
      Vbool (Word.lt b y x)
  | Ge ->
      let x, y = words () in
      Vbool (Word.ge b x y)
  | Eq -> (
      match (va, vd) with
      | Vword x, Vword y -> Vbool (Word.equal b x y)
      | Vbool x, Vbool y -> Vbool (B.not_ b (B.xor_ b x y))
      | _ -> fail pos "operands of == must have the same type")
  | Ne -> (
      match (va, vd) with
      | Vword x, Vword y -> Vbool (B.not_ b (Word.equal b x y))
      | Vbool x, Vbool y -> Vbool (B.xor_ b x y)
      | _ -> fail pos "operands of != must have the same type")
  | And -> bitwise (B.and_ b)
  | Or -> bitwise (B.or_ b)
  | Xor -> bitwise (B.xor_ b)
  | Land ->
      let x, y = bools () in
      Vbool (B.and_ b x y)
  | Lor ->
      let x, y = bools () in
      Vbool (B.or_ b x y)

(* Snapshot / merge machinery for secret [if]. *)
let snapshot slots = List.map (fun (_, slot) -> Array.copy slot.cells) slots

let restore slots saved =
  List.iter2 (fun (_, slot) cells -> Array.blit cells 0 slot.cells 0 (Array.length cells)) slots saved

let merge env sel slots then_state else_state =
  let b = env.builder in
  List.iteri
    (fun k (name, slot) ->
      ignore name;
      let tcells = List.nth then_state k and ecells = List.nth else_state k in
      Array.iteri
        (fun i _ ->
          if tcells.(i) != ecells.(i) then
            slot.cells.(i) <-
              (match (tcells.(i), ecells.(i)) with
              | Vbool x, Vbool y -> Vbool (bool_mux b sel x y)
              | Vword x, Vword y -> Vword (Word.mux b sel x y)
              | _ -> assert false))
        slot.cells)
    slots

let rec compile_stmt env slots stmt =
  let b = env.builder in
  match stmt.sdesc with
  | Assign (lv, rhs) -> (
      let v = compile_expr env rhs in
      match lv with
      | Lvar name -> (
          match lookup env stmt.spos name with
          | Kslot slot when Array.length slot.cells = 1 ->
              slot.cells.(0) <- coerce b slot.rty v stmt.spos
          | Kslot _ -> fail stmt.spos "cannot assign whole array %s" name
          | _ -> fail stmt.spos "cannot assign to %s" name)
      | Lindex (name, idx) -> (
          let i = eval_pub env idx in
          match lookup env stmt.spos name with
          | Kslot slot ->
              if i < 0 || i >= Array.length slot.cells then
                fail idx.pos "index %d out of bounds for %s (length %d)" i name
                  (Array.length slot.cells);
              slot.cells.(i) <- coerce b slot.rty v stmt.spos
          | _ -> fail stmt.spos "cannot assign to %s" name))
  | For (var, lo_e, hi_e, body) ->
      let lo = eval_pub env lo_e and hi = eval_pub env hi_e in
      for i = lo to hi do
        Hashtbl.add env.table var (Kloop i);
        List.iter (compile_stmt env slots) body;
        Hashtbl.remove env.table var
      done
  | If (cond, then_branch, else_branch) ->
      if is_public env cond then begin
        if eval_pub env cond <> 0 then List.iter (compile_stmt env slots) then_branch
        else List.iter (compile_stmt env slots) else_branch
      end
      else begin
        let sel =
          match compile_expr env cond with
          | Vbool w -> w
          | Vword _ -> fail cond.pos "if condition must be bool"
        in
        let saved = snapshot slots in
        List.iter (compile_stmt env slots) then_branch;
        let then_state = snapshot slots in
        restore slots saved;
        List.iter (compile_stmt env slots) else_branch;
        let else_state = snapshot slots in
        restore slots saved;
        merge env sel slots then_state else_state
      end

let compile program =
  let builder = B.create () in
  let env = { table = Hashtbl.create 16; builder } in
  let parties = ref [] in
  let input_layout = ref [] in
  let output_layout = ref [] in
  let output_slots = ref [] in
  let slots = ref [] in
  let declare pos name binding =
    if Hashtbl.mem env.table name then fail pos "duplicate declaration of %s" name;
    Hashtbl.add env.table name binding
  in
  List.iter
    (fun (decl, pos) ->
      match decl with
      | Dconst (name, Cscalar e) -> declare pos name (Kconst (eval_pub env e))
      | Dconst (name, Carray es) ->
          declare pos name (Kconstarr (Array.of_list (List.map (eval_pub env) es)))
      | Dparty name ->
          let idx = List.length !parties in
          parties := name :: !parties;
          declare pos name (Kparty idx)
      | Dinput (name, ty, owner) ->
          let party =
            match lookup env pos owner with
            | Kparty i -> i
            | _ -> fail pos "input %s: %s is not a party" name owner
          in
          let rty, len, scalar = resolve_ty env pos ty in
          let cells =
            Array.init len (fun _ ->
                match rty with
                | Rbool -> Vbool (B.input builder ~party)
                | Ruint w -> Vword (Word.input_word builder ~party ~width:w))
          in
          let slot = { rty; cells } in
          declare pos name (Kslot slot);
          slots := (name, slot) :: !slots;
          input_layout := (name, party, shape_of rty len scalar) :: !input_layout
      | Doutput (name, ty) ->
          let rty, len, scalar = resolve_ty env pos ty in
          let slot = { rty; cells = Array.init len (fun _ -> zero_value builder rty) } in
          declare pos name (Kslot slot);
          slots := (name, slot) :: !slots;
          output_slots := (name, slot) :: !output_slots;
          output_layout := (name, shape_of rty len scalar) :: !output_layout
      | Dvar (name, ty) ->
          let rty, len, _ = resolve_ty env pos ty in
          let slot = { rty; cells = Array.init len (fun _ -> zero_value builder rty) } in
          declare pos name (Kslot slot);
          slots := (name, slot) :: !slots)
    program.decls;
  let slots = List.rev !slots in
  List.iter (compile_stmt env slots) program.body;
  (* Emit outputs in declaration order, each cell LSB first. *)
  List.iter
    (fun (_, slot) ->
      Array.iter
        (fun cell ->
          match cell with
          | Vbool w -> B.output builder w
          | Vword word ->
              (* Normalize to the declared width. *)
              let word =
                match slot.rty with
                | Ruint w when Array.length word <> w ->
                    if Array.length word > w then Array.sub word 0 w
                    else Word.zero_extend builder word w
                | Ruint _ | Rbool -> word
              in
              Word.output_word builder word)
        slot.cells)
    (List.rev !output_slots);
  {
    circuit = B.finish builder;
    parties = Array.of_list (List.rev !parties);
    input_layout = List.rev !input_layout;
    output_layout = List.rev !output_layout;
  }

let compile_source src =
  let program = Parser.parse src in
  (match Typecheck.check_result program with
  | Ok () -> ()
  | Result.Error { message; pos } -> raise (Error (message, pos)));
  compile program

type cache = { lock : Mutex.t; table : (string, compiled) Hashtbl.t }

let create_cache () = { lock = Mutex.create (); table = Hashtbl.create 32 }

let compile_source_cached cache src =
  (* The lock is held across the compile so two racing callers never build
     the same circuit twice; generated sources are the key, so programs that
     differ only in a constant (e.g. per-identity thresholds) hash apart
     while the thousands of identities sharing a threshold compile once. *)
  Mutex.lock cache.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cache.lock)
    (fun () ->
      match Hashtbl.find_opt cache.table src with
      | Some compiled -> compiled
      | None ->
          let compiled = compile_source src in
          Hashtbl.replace cache.table src compiled;
          compiled)

let cache_size cache =
  Mutex.lock cache.lock;
  let n = Hashtbl.length cache.table in
  Mutex.unlock cache.lock;
  n

let shape_bits = function
  | Sbool -> 1
  | Suint w -> w
  | Sarr_bool len -> len
  | Sarr_uint (len, w) -> len * w

let int_bits v width = Array.init width (fun i -> (v lsr i) land 1 = 1)

let encode_inputs compiled values =
  let parties = Array.length compiled.parties in
  let buffers = Array.init parties (fun _ -> Buffer.create 16) in
  let push party bit = Buffer.add_char buffers.(party) (if bit then '1' else '0') in
  List.iter
    (fun (name, party, shape) ->
      let data =
        match List.assoc_opt name values with
        | Some d -> d
        | None -> invalid_arg (Printf.sprintf "encode_inputs: missing value for input %s" name)
      in
      match (shape, data) with
      | Sbool, Dbool v -> push party v
      | Suint w, Dint v ->
          if v < 0 || (w < 62 && v lsr w <> 0) then
            invalid_arg (Printf.sprintf "encode_inputs: %s=%d does not fit in %d bits" name v w);
          Array.iter (push party) (int_bits v w)
      | Sarr_bool len, Dbools vs ->
          if Array.length vs <> len then
            invalid_arg (Printf.sprintf "encode_inputs: %s expects %d bools" name len);
          Array.iter (push party) vs
      | Sarr_uint (len, w), Dints vs ->
          if Array.length vs <> len then
            invalid_arg (Printf.sprintf "encode_inputs: %s expects %d ints" name len);
          Array.iter
            (fun v ->
              if v < 0 || (w < 62 && v lsr w <> 0) then
                invalid_arg
                  (Printf.sprintf "encode_inputs: %s element %d does not fit in %d bits" name v w);
              Array.iter (push party) (int_bits v w))
            vs
      | _ -> invalid_arg (Printf.sprintf "encode_inputs: shape mismatch for %s" name))
    compiled.input_layout;
  Array.map
    (fun buf ->
      let s = Buffer.contents buf in
      Array.init (String.length s) (fun i -> s.[i] = '1'))
    buffers

let decode_outputs compiled bits =
  let cursor = ref 0 in
  let take_bit () =
    let b = bits.(!cursor) in
    incr cursor;
    b
  in
  let take_word w =
    let v = ref 0 in
    for i = 0 to w - 1 do
      if take_bit () then v := !v lor (1 lsl i)
    done;
    !v
  in
  let total = List.fold_left (fun acc (_, s) -> acc + shape_bits s) 0 compiled.output_layout in
  if Array.length bits <> total then
    invalid_arg
      (Printf.sprintf "decode_outputs: expected %d bits, got %d" total (Array.length bits));
  List.map
    (fun (name, shape) ->
      let data =
        match shape with
        | Sbool -> Dbool (take_bit ())
        | Suint w -> Dint (take_word w)
        | Sarr_bool len -> Dbools (Array.init len (fun _ -> take_bit ()))
        | Sarr_uint (len, w) -> Dints (Array.init len (fun _ -> take_word w))
      in
      (name, data))
    compiled.output_layout

let lookup_output outputs name =
  match List.assoc_opt name outputs with Some d -> d | None -> raise Not_found
