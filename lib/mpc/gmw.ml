open Eppi_prelude
open Eppi_circuit

type comm_stats = { rounds : int; messages : int; bytes : int }

type view = {
  party : int;
  wire_shares : Bitvec.t;
  opened : (bool * bool) array;
}

type result = {
  outputs : bool array;
  comm : comm_stats;
  views : view array;
}

let comm_estimate ~parties (stats : Circuit.stats) ~outputs =
  let p = parties in
  let pairs = p * (p - 1) in
  (* Input sharing: each input bit's owner sends one share to every other
     party.  And layer: every party broadcasts 2 masked bits per gate in the
     layer.  Output: every party broadcasts its output shares. *)
  let input_messages = stats.inputs * (p - 1) in
  let input_bytes = stats.inputs * (p - 1) in
  let and_messages = stats.and_depth * pairs in
  let and_bits = 2 * stats.and_gates * pairs in
  let output_messages = pairs in
  let output_bytes = pairs * ((outputs + 7) / 8) in
  {
    rounds = 1 + stats.and_depth + 1;
    messages = input_messages + and_messages + output_messages;
    bytes = input_bytes + ((and_bits + 7) / 8) + output_bytes;
  }

let execute rng circuit ~inputs =
  let p = Circuit.num_parties circuit in
  let gates = Circuit.gates circuit in
  let n_wires = Array.length gates in
  let stats = Circuit.stats circuit in
  let n_outputs = Array.length (Circuit.outputs circuit) in
  let comm = comm_estimate ~parties:p stats ~outputs:n_outputs in
  (* One span per interpreter run, carrying the circuit's round/traffic
     accounting; sharded CountBelow runs these on pool domains, so each
     evaluation lands on its executing domain's track. *)
  Eppi_obs.Trace.begin_span "gmw.execute";
  (* One bit-packed share row per party (Bytes-backed): 1 bit per wire
     instead of the word-per-bool of a [bool array], which keeps the whole
     working set cache-resident on wide circuits. *)
  let shares = Array.init p (fun _ -> Bitvec.create n_wires) in
  (* The opened (d, e) pairs are exactly one per And gate: preallocate. *)
  let opened = Array.make stats.and_gates (false, false) in
  let n_opened = ref 0 in
  (* Scratch share buffers reused across gates instead of three fresh
     allocations per And gate. *)
  let sa = Array.make p false in
  let sb = Array.make p false in
  let sc = Array.make p false in
  (* XOR-share a bit among p parties into [dst]: p-1 random shares, last
     fixes the parity.  Same draw order as the historical allocating
     version. *)
  let share_bit_into dst v =
    let parity = ref false in
    for i = 0 to p - 2 do
      let s = Rng.bool rng in
      dst.(i) <- s;
      parity := !parity <> s
    done;
    dst.(p - 1) <- !parity <> v
  in
  Array.iteri
    (fun w g ->
      match g with
      | Circuit.Input { party; index } ->
          if party >= Array.length inputs || index >= Array.length inputs.(party) then
            invalid_arg "Gmw.execute: missing input bit";
          share_bit_into sa inputs.(party).(index);
          for i = 0 to p - 1 do
            Bitvec.assign shares.(i) w sa.(i)
          done
      | Const b ->
          (* Public constant: party 0 holds it, everyone else holds zero. *)
          if b then Bitvec.set shares.(0) w
      | Not a ->
          for i = 0 to p - 1 do
            let s = Bitvec.get shares.(i) a in
            Bitvec.assign shares.(i) w (if i = 0 then not s else s)
          done
      | Xor (a, b) ->
          for i = 0 to p - 1 do
            let sh = shares.(i) in
            Bitvec.assign sh w (Bitvec.get sh a <> Bitvec.get sh b)
          done
      | And (a, b) ->
          (* Beaver triple (ta, tb, tc) with tc = ta && tb, dealt XOR-shared. *)
          let ta = Rng.bool rng and tb = Rng.bool rng in
          let tc = ta && tb in
          share_bit_into sa ta;
          share_bit_into sb tb;
          share_bit_into sc tc;
          (* Open d = x ^ ta and e = y ^ tb (each party broadcasts its share). *)
          let d = ref false and e = ref false in
          for i = 0 to p - 1 do
            let sh = shares.(i) in
            d := !d <> (Bitvec.get sh a <> sa.(i));
            e := !e <> (Bitvec.get sh b <> sb.(i))
          done;
          opened.(!n_opened) <- (!d, !e);
          incr n_opened;
          for i = 0 to p - 1 do
            let z =
              sc.(i)
              <> (!d && sb.(i))
              <> (!e && sa.(i))
              <> (i = 0 && !d && !e)
            in
            Bitvec.assign shares.(i) w z
          done)
    gates;
  let outputs =
    Array.map
      (fun w ->
        let v = ref false in
        for i = 0 to p - 1 do
          v := !v <> Bitvec.get shares.(i) w
        done;
        !v)
      (Circuit.outputs circuit)
  in
  let views =
    Array.init p (fun i -> { party = i; wire_shares = shares.(i); opened })
  in
  Eppi_obs.Trace.end_span "gmw.execute"
    ~args:
      [
        ("gates", stats.size);
        ("and_gates", stats.and_gates);
        ("and_depth", stats.and_depth);
        ("rounds", comm.rounds);
        ("messages", comm.messages);
        ("bytes", comm.bytes);
      ];
  { outputs; comm; views }
