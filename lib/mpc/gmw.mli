(** Semi-honest multi-party evaluation of Boolean circuits over XOR-shared
    bits (GMW style).

    This is the repository's stand-in for FairplayMP's generic MPC engine
    (see DESIGN.md for the substitution argument).  Every wire value is held
    as an XOR-sharing across the parties.  Not/Xor/Const gates are evaluated
    locally for free; each And gate consumes one Beaver multiplication triple
    and requires every party to broadcast two masked bits, so the
    communication cost is [2 * and_gates * p * (p-1)] bits spread over
    [and_depth] rounds.  Triples are produced by a trusted dealer — the
    simulation artefact standing in for FairplayMP's offline phase; the
    online protocol is the standard one.

    Correctness (output equals plaintext {!Eppi_circuit.Circuit.eval}) and
    secrecy (opened masked bits are uniform and carry no input information)
    are both checked by the test suite. *)

open Eppi_prelude
open Eppi_circuit

type comm_stats = {
  rounds : int;  (** Communication rounds: input + AND layers + output. *)
  messages : int;
  bytes : int;
}

(** What one party saw during the protocol: its own wire shares plus the
    publicly opened masked values.  Used by the secrecy tests.  Shares are
    bit-packed ({!Eppi_prelude.Bitvec}, one bit per wire) so a party's view
    of a wide circuit costs wires/8 bytes rather than a word per wire. *)
type view = {
  party : int;
  wire_shares : Bitvec.t;
  opened : (bool * bool) array;  (** (d, e) openings, one per And gate in gate order. *)
}

type result = {
  outputs : bool array;
  comm : comm_stats;
  views : view array;
}

val execute : Rng.t -> Circuit.t -> inputs:bool array array -> result
(** [execute rng circuit ~inputs] runs the protocol among
    [Circuit.num_parties circuit] parties; [inputs.(p)] holds party [p]'s
    private input bits.  The [rng] drives share and triple sampling only —
    outputs are deterministic given the inputs.
    @raise Invalid_argument if an input vector is shorter than the party's
    declared input width. *)

val comm_estimate : parties:int -> Circuit.stats -> outputs:int -> comm_stats
(** Closed-form communication accounting for a circuit of the given shape,
    identical to what {!execute} reports; usable without running the
    protocol (the benchmark harness extrapolates large instances this
    way). *)
