(** Deterministic discrete-event network simulator.

    Stands in for the paper's Emulab testbed and Netty transport: parties are
    nodes exchanging typed messages over links with a latency + bandwidth
    model, and each node owns a busy clock so local computation serializes
    with message handling.  The protocol experiments (Fig. 6) read their
    "execution time" from {!completion_time}: the instant the last node
    finishes its last event — the same start-to-end metric the paper uses.

    Determinism: event ties break by insertion order, and any randomness a
    protocol needs must come from its own seeded {!Eppi_prelude.Rng}.  Fault
    injection draws come from a third, dedicated stream seeded by
    {!fault_plan.fault_seed}, so the same plan perturbs the same messages no
    matter what the protocol itself draws. *)

type node_id = int

type 'msg t

type config = {
  latency : float;  (** Per-message propagation delay, seconds. *)
  bandwidth : float;  (** Bytes per second. *)
  drop_probability : float;  (** Uniform message loss rate (fault injection). *)
  seed : int;  (** Seed for loss draws only. *)
}

val default_config : config
(** LAN-like: 0.5 ms latency, 100 MB/s, no loss. *)

(** {1 Fault plans}

    A {!fault_plan} is a seeded, declarative description of everything that
    goes wrong during a run.  When a plan is supplied to {!create} it
    {e replaces} [config.drop_probability]: all loss, duplication and
    reordering draws come from the plan's own rng stream. *)

type link_fault = {
  drop : float;  (** Per-message loss probability on this link. *)
  duplicate : float;  (** Probability a message is delivered twice. *)
  reorder : float;
      (** Probability a message picks up extra delay in [0, jitter), letting
          later messages overtake it. *)
}

val perfect_link : link_fault
(** No loss, no duplication, no reordering. *)

type partition = {
  starts : float;  (** Partition begins (inclusive, sim time). *)
  stops : float;  (** Partition heals (exclusive). *)
  islands : node_id list list;
      (** Groups that can still talk among themselves.  Nodes listed in no
          island form one extra implicit island.  While the partition is
          active, any send crossing island boundaries is dropped. *)
}

type fault_plan = {
  fault_seed : int;  (** Seeds the dedicated fault rng. *)
  default_link : link_fault;  (** Applied to every link not in [links]. *)
  links : ((node_id * node_id) * link_fault) list;
      (** Per-directed-link overrides, keyed [(src, dst)]. *)
  crashes : (float * node_id) list;
      (** [(time, node)]: node fail-stops at [time].  From then on it
          receives nothing, its pending and future timers are cancelled, and
          {!work} charges it nothing.  Messages it sent before crashing are
          still delivered. *)
  partitions : partition list;
  slow : (node_id * float) list;
      (** Straggler multipliers: {!work} durations on the node are scaled by
          the factor (must be > 0). *)
  jitter : float;
      (** Max extra delay, seconds, added to reordered messages and
          duplicate copies. *)
}

val no_faults : fault_plan
(** Perfect links, no crashes, no partitions, no stragglers; [jitter] 2 ms. *)

val create : ?config:config -> ?plan:fault_plan -> nodes:int -> unit -> 'msg t
(** @raise Invalid_argument if the plan names a node outside
    [0 .. nodes-1], a negative crash time, or a slow factor <= 0. *)

val nodes : 'msg t -> int
val now : 'msg t -> float

val on_receive : 'msg t -> node_id -> ('msg t -> src:node_id -> 'msg -> unit) -> unit
(** Install the message handler of a node (replaces any previous one). *)

val send : 'msg t -> src:node_id -> dst:node_id -> size:int -> 'msg -> unit
(** Enqueue a message of [size] bytes; it is delivered at
    [now + latency + size/bandwidth], queued behind the destination's busy
    clock.  Self-sends are delivered with zero network delay. *)

val broadcast : 'msg t -> src:node_id -> size:int -> 'msg -> unit
(** Send to every node except [src]. *)

val at : 'msg t -> delay:float -> node_id -> ('msg t -> unit) -> unit
(** Schedule a local timer callback on a node.  The timer is silently
    cancelled if the node has crashed by the time it fires. *)

val work : 'msg t -> node_id -> float -> unit
(** Charge computation time to a node; subsequent events on that node are
    delayed accordingly.  Call from within a handler.  No-op on a crashed
    node; scaled by the node's straggler multiplier if the fault plan names
    one. *)

val crash : 'msg t -> node_id -> unit
(** Fail-stop the node now: it silently drops everything addressed to it,
    its pending timers are cancelled, and further {!work} is not charged. *)

val crash_at : 'msg t -> time:float -> node_id -> unit
(** Schedule a fail-stop at an absolute sim time (what
    {!fault_plan.crashes} uses internally). *)

val is_crashed : 'msg t -> node_id -> bool

val run : 'msg t -> unit
(** Process events until quiescence.
    @raise Failure if the event count exceeds a safety bound (runaway
    protocol). *)

(** Traffic and timing accounting. *)
type metrics = {
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
  messages_duplicated : int;  (** Extra copies injected by the fault plan. *)
  bytes_sent : int;
  completion_time : float;  (** When the last node went idle. *)
}

val metrics : 'msg t -> metrics
val node_busy_time : 'msg t -> node_id -> float
(** Total computation time charged to the node via {!work}. *)
