open Eppi_prelude

type node_id = int

type config = {
  latency : float;
  bandwidth : float;
  drop_probability : float;
  seed : int;
}

let default_config =
  { latency = 0.0005; bandwidth = 100_000_000.0; drop_probability = 0.0; seed = 1 }

type link_fault = { drop : float; duplicate : float; reorder : float }

let perfect_link = { drop = 0.0; duplicate = 0.0; reorder = 0.0 }

type partition = {
  starts : float;
  stops : float;
  islands : node_id list list;
}

type fault_plan = {
  fault_seed : int;
  default_link : link_fault;
  links : ((node_id * node_id) * link_fault) list;
  crashes : (float * node_id) list;
  partitions : partition list;
  slow : (node_id * float) list;
  jitter : float;
}

let no_faults =
  {
    fault_seed = 0;
    default_link = perfect_link;
    links = [];
    crashes = [];
    partitions = [];
    slow = [];
    jitter = 0.002;
  }

(* Compiled form of a fault plan: link overrides in a hashtable, partitions
   as node -> island maps, straggler factors as a dense array. *)
type faults = {
  frng : Rng.t;  (* dedicated stream: protocol rng draws never shift faults *)
  default_link : link_fault;
  flinks : (int, link_fault) Hashtbl.t;  (* keyed src * n + dst *)
  fpartitions : (float * float * int array) list;  (* starts, stops, island_of *)
  jitter : float;
}

type 'msg event =
  | Deliver of { src : node_id; dst : node_id; msg : 'msg }
  | Timer of { node : node_id; callback : 'msg t -> unit }
  | Crash of node_id

and 'msg t = {
  config : config;
  n : int;
  queue : 'msg event Heap.t;
  handlers : ('msg t -> src:node_id -> 'msg -> unit) option array;
  busy_until : float array;
  busy_total : float array;
  crashed : bool array;
  slow_factor : float array;
  rng : Rng.t;
  faults : faults option;
  mutable clock : float;
  mutable current_node : node_id;  (* node whose handler is running, -1 otherwise *)
  mutable messages_sent : int;
  mutable messages_delivered : int;
  mutable messages_dropped : int;
  mutable messages_duplicated : int;
  mutable bytes_sent : int;
  mutable completion_time : float;
}

let compile_plan plan ~nodes =
  let check id =
    if id < 0 || id >= nodes then invalid_arg "Simnet: fault plan names unknown node"
  in
  List.iter (fun ((s, d), _) -> check s; check d) plan.links;
  List.iter
    (fun (time, node) ->
      check node;
      if time < 0.0 then invalid_arg "Simnet: negative crash time")
    plan.crashes;
  List.iter
    (fun (node, factor) ->
      check node;
      if factor <= 0.0 then invalid_arg "Simnet: slow factor must be > 0")
    plan.slow;
  let flinks = Hashtbl.create 16 in
  List.iter (fun ((s, d), lf) -> Hashtbl.replace flinks ((s * nodes) + d) lf) plan.links;
  let fpartitions =
    List.map
      (fun p ->
        (* Nodes in no listed island share implicit island -1. *)
        let island_of = Array.make nodes (-1) in
        List.iteri
          (fun i members -> List.iter (fun node -> check node; island_of.(node) <- i) members)
          p.islands;
        (p.starts, p.stops, island_of))
      plan.partitions
  in
  {
    frng = Rng.create plan.fault_seed;
    default_link = plan.default_link;
    flinks;
    fpartitions;
    jitter = plan.jitter;
  }

let create ?(config = default_config) ?plan ~nodes () =
  if nodes <= 0 then invalid_arg "Simnet.create: need at least one node";
  let faults = Option.map (compile_plan ~nodes) plan in
  let slow_factor = Array.make nodes 1.0 in
  (match plan with
  | None -> ()
  | Some p -> List.iter (fun (node, factor) -> slow_factor.(node) <- factor) p.slow);
  let t =
    {
      config;
      n = nodes;
      queue = Heap.create ();
      handlers = Array.make nodes None;
      busy_until = Array.make nodes 0.0;
      busy_total = Array.make nodes 0.0;
      crashed = Array.make nodes false;
      slow_factor;
      rng = Rng.create config.seed;
      faults;
      clock = 0.0;
      current_node = -1;
      messages_sent = 0;
      messages_delivered = 0;
      messages_dropped = 0;
      messages_duplicated = 0;
      bytes_sent = 0;
      completion_time = 0.0;
    }
  in
  (match plan with
  | None -> ()
  | Some p ->
      List.iter (fun (time, node) -> Heap.push t.queue ~key:time (Crash node)) p.crashes);
  t

let nodes t = t.n
let now t = t.clock

let check_node t id = if id < 0 || id >= t.n then invalid_arg "Simnet: unknown node"

let on_receive t id handler =
  check_node t id;
  t.handlers.(id) <- Some handler

let partitioned f ~clock ~src ~dst =
  List.exists
    (fun (starts, stops, island_of) ->
      clock >= starts && clock < stops && island_of.(src) <> island_of.(dst))
    f.fpartitions

let link_fault f ~n ~src ~dst =
  match Hashtbl.find_opt f.flinks ((src * n) + dst) with
  | Some lf -> lf
  | None -> f.default_link

let send t ~src ~dst ~size msg =
  check_node t src;
  check_node t dst;
  if size < 0 then invalid_arg "Simnet.send: negative size";
  t.messages_sent <- t.messages_sent + 1;
  t.bytes_sent <- t.bytes_sent + size;
  match t.faults with
  | None ->
      (* Legacy path, byte-for-byte: loss draws come from [config.seed]. *)
      if Rng.bernoulli t.rng t.config.drop_probability then
        t.messages_dropped <- t.messages_dropped + 1
      else begin
        let delay =
          if src = dst then 0.0
          else t.config.latency +. (float_of_int size /. t.config.bandwidth)
        in
        Heap.push t.queue ~key:(t.clock +. delay) (Deliver { src; dst; msg })
      end
  | Some f ->
      if src <> dst && partitioned f ~clock:t.clock ~src ~dst then
        t.messages_dropped <- t.messages_dropped + 1
      else begin
        let lf = link_fault f ~n:t.n ~src ~dst in
        (* Draw order per message is fixed (drop, reorder, duplicate) so a
           plan's effect is a pure function of (fault_seed, send sequence). *)
        if Rng.bernoulli f.frng lf.drop then
          t.messages_dropped <- t.messages_dropped + 1
        else begin
          let base =
            if src = dst then 0.0
            else t.config.latency +. (float_of_int size /. t.config.bandwidth)
          in
          let extra =
            if Rng.bernoulli f.frng lf.reorder then Rng.float f.frng f.jitter else 0.0
          in
          Heap.push t.queue ~key:(t.clock +. base +. extra) (Deliver { src; dst; msg });
          if Rng.bernoulli f.frng lf.duplicate then begin
            t.messages_duplicated <- t.messages_duplicated + 1;
            let dup_extra = Rng.float f.frng f.jitter in
            Heap.push t.queue
              ~key:(t.clock +. base +. dup_extra)
              (Deliver { src; dst; msg })
          end
        end
      end

let broadcast t ~src ~size msg =
  for dst = 0 to t.n - 1 do
    if dst <> src then send t ~src ~dst ~size msg
  done

let at t ~delay node callback =
  check_node t node;
  if delay < 0.0 then invalid_arg "Simnet.at: negative delay";
  Heap.push t.queue ~key:(t.clock +. delay) (Timer { node; callback })

let work t node duration =
  check_node t node;
  if duration < 0.0 then invalid_arg "Simnet.work: negative duration";
  if not t.crashed.(node) then begin
    let duration = duration *. t.slow_factor.(node) in
    t.busy_total.(node) <- t.busy_total.(node) +. duration;
    t.busy_until.(node) <- max t.busy_until.(node) t.clock +. duration;
    if t.busy_until.(node) > t.completion_time then t.completion_time <- t.busy_until.(node)
  end

let crash t node =
  check_node t node;
  t.crashed.(node) <- true

let crash_at t ~time node =
  check_node t node;
  if time < 0.0 then invalid_arg "Simnet.crash_at: negative time";
  Heap.push t.queue ~key:time (Crash node)

let is_crashed t node =
  check_node t node;
  t.crashed.(node)

let max_events = 50_000_000

let dispatch t node fire =
  if not t.crashed.(node) then begin
    (* A node handles one event at a time: queue behind its busy clock. *)
    let start = max t.clock t.busy_until.(node) in
    t.clock <- start;
    t.busy_until.(node) <- start;
    t.current_node <- node;
    fire ();
    t.current_node <- -1;
    if t.busy_until.(node) > t.completion_time then t.completion_time <- t.busy_until.(node);
    if t.clock > t.completion_time then t.completion_time <- t.clock
  end

let run t =
  let count = ref 0 in
  let loop () =
    let continue = ref true in
    while !continue do
      match Heap.pop t.queue with
      | None -> continue := false
      | Some (time, event) ->
          incr count;
          if !count > max_events then
            failwith "Simnet.run: event budget exceeded (runaway protocol?)";
          (match event with
          | Crash node ->
              t.clock <- max t.clock time;
              t.crashed.(node) <- true
          (* Events addressed to a crashed node are cancelled without even
             advancing the clock: a dead node holds nothing open. *)
          | Deliver { dst; _ } when t.crashed.(dst) -> ()
          | Timer { node; _ } when t.crashed.(node) -> ()
          | Deliver { src; dst; msg } ->
              t.clock <- max t.clock time;
              dispatch t dst (fun () ->
                  match t.handlers.(dst) with
                  | Some handler ->
                      t.messages_delivered <- t.messages_delivered + 1;
                      handler t ~src msg
                  | None -> ())
          | Timer { node; callback } ->
              t.clock <- max t.clock time;
              dispatch t node (fun () -> callback t))
    done
  in
  (* The span times the harness's own event loop (wall ns); the simulated
     protocol clock travels separately in the [sim_us] arg. *)
  Eppi_obs.Trace.begin_span "simnet.run";
  (match loop () with
  | () -> ()
  | exception e ->
      Eppi_obs.Trace.end_span "simnet.run" ~args:[ ("events", !count); ("raised", 1) ];
      raise e);
  Eppi_obs.Trace.end_span "simnet.run"
    ~args:
      [
        ("events", !count);
        ("delivered", t.messages_delivered);
        ("dropped", t.messages_dropped);
        ("messages", t.messages_sent);
        ("bytes", t.bytes_sent);
        ("sim_us", int_of_float (t.completion_time *. 1e6));
      ]

type metrics = {
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
  messages_duplicated : int;
  bytes_sent : int;
  completion_time : float;
}

let metrics (t : _ t) =
  {
    messages_sent = t.messages_sent;
    messages_delivered = t.messages_delivered;
    messages_dropped = t.messages_dropped;
    messages_duplicated = t.messages_duplicated;
    bytes_sent = t.bytes_sent;
    completion_time = t.completion_time;
  }

let node_busy_time t node =
  check_node t node;
  t.busy_total.(node)
