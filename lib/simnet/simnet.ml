open Eppi_prelude

type node_id = int

type config = {
  latency : float;
  bandwidth : float;
  drop_probability : float;
  seed : int;
}

let default_config =
  { latency = 0.0005; bandwidth = 100_000_000.0; drop_probability = 0.0; seed = 1 }

type 'msg event =
  | Deliver of { src : node_id; dst : node_id; msg : 'msg }
  | Timer of { node : node_id; callback : 'msg t -> unit }

and 'msg t = {
  config : config;
  n : int;
  queue : 'msg event Heap.t;
  handlers : ('msg t -> src:node_id -> 'msg -> unit) option array;
  busy_until : float array;
  busy_total : float array;
  crashed : bool array;
  rng : Rng.t;
  mutable clock : float;
  mutable current_node : node_id;  (* node whose handler is running, -1 otherwise *)
  mutable messages_sent : int;
  mutable messages_delivered : int;
  mutable messages_dropped : int;
  mutable bytes_sent : int;
  mutable completion_time : float;
}

let create ?(config = default_config) ~nodes () =
  if nodes <= 0 then invalid_arg "Simnet.create: need at least one node";
  {
    config;
    n = nodes;
    queue = Heap.create ();
    handlers = Array.make nodes None;
    busy_until = Array.make nodes 0.0;
    busy_total = Array.make nodes 0.0;
    crashed = Array.make nodes false;
    rng = Rng.create config.seed;
    clock = 0.0;
    current_node = -1;
    messages_sent = 0;
    messages_delivered = 0;
    messages_dropped = 0;
    bytes_sent = 0;
    completion_time = 0.0;
  }

let nodes t = t.n
let now t = t.clock

let check_node t id = if id < 0 || id >= t.n then invalid_arg "Simnet: unknown node"

let on_receive t id handler =
  check_node t id;
  t.handlers.(id) <- Some handler

let send t ~src ~dst ~size msg =
  check_node t src;
  check_node t dst;
  if size < 0 then invalid_arg "Simnet.send: negative size";
  t.messages_sent <- t.messages_sent + 1;
  t.bytes_sent <- t.bytes_sent + size;
  if Rng.bernoulli t.rng t.config.drop_probability then
    t.messages_dropped <- t.messages_dropped + 1
  else begin
    let delay =
      if src = dst then 0.0
      else t.config.latency +. (float_of_int size /. t.config.bandwidth)
    in
    Heap.push t.queue ~key:(t.clock +. delay) (Deliver { src; dst; msg })
  end

let broadcast t ~src ~size msg =
  for dst = 0 to t.n - 1 do
    if dst <> src then send t ~src ~dst ~size msg
  done

let at t ~delay node callback =
  check_node t node;
  if delay < 0.0 then invalid_arg "Simnet.at: negative delay";
  Heap.push t.queue ~key:(t.clock +. delay) (Timer { node; callback })

let work t node duration =
  check_node t node;
  if duration < 0.0 then invalid_arg "Simnet.work: negative duration";
  t.busy_total.(node) <- t.busy_total.(node) +. duration;
  t.busy_until.(node) <- max t.busy_until.(node) t.clock +. duration;
  if t.busy_until.(node) > t.completion_time then t.completion_time <- t.busy_until.(node)

let crash t node =
  check_node t node;
  t.crashed.(node) <- true

let is_crashed t node =
  check_node t node;
  t.crashed.(node)

let max_events = 50_000_000

let dispatch t node fire =
  if not t.crashed.(node) then begin
    (* A node handles one event at a time: queue behind its busy clock. *)
    let start = max t.clock t.busy_until.(node) in
    t.clock <- start;
    t.busy_until.(node) <- start;
    t.current_node <- node;
    fire ();
    t.current_node <- -1;
    if t.busy_until.(node) > t.completion_time then t.completion_time <- t.busy_until.(node);
    if t.clock > t.completion_time then t.completion_time <- t.clock
  end

let run t =
  let count = ref 0 in
  let loop () =
    let continue = ref true in
    while !continue do
      match Heap.pop t.queue with
      | None -> continue := false
      | Some (time, event) ->
          incr count;
          if !count > max_events then
            failwith "Simnet.run: event budget exceeded (runaway protocol?)";
          t.clock <- max t.clock time;
          (match event with
          | Deliver { src; dst; msg } ->
              dispatch t dst (fun () ->
                  match t.handlers.(dst) with
                  | Some handler ->
                      t.messages_delivered <- t.messages_delivered + 1;
                      handler t ~src msg
                  | None -> ())
          | Timer { node; callback } -> dispatch t node (fun () -> callback t))
    done
  in
  (* The span times the harness's own event loop (wall ns); the simulated
     protocol clock travels separately in the [sim_us] arg. *)
  Eppi_obs.Trace.begin_span "simnet.run";
  (match loop () with
  | () -> ()
  | exception e ->
      Eppi_obs.Trace.end_span "simnet.run" ~args:[ ("events", !count); ("raised", 1) ];
      raise e);
  Eppi_obs.Trace.end_span "simnet.run"
    ~args:
      [
        ("events", !count);
        ("delivered", t.messages_delivered);
        ("dropped", t.messages_dropped);
        ("messages", t.messages_sent);
        ("bytes", t.bytes_sent);
        ("sim_us", int_of_float (t.completion_time *. 1e6));
      ]

type metrics = {
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
  bytes_sent : int;
  completion_time : float;
}

let metrics (t : _ t) =
  {
    messages_sent = t.messages_sent;
    messages_delivered = t.messages_delivered;
    messages_dropped = t.messages_dropped;
    bytes_sent = t.bytes_sent;
    completion_time = t.completion_time;
  }

let node_busy_time t node =
  check_node t node;
  t.busy_total.(node)
