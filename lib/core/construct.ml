open Eppi_prelude
module Trace = Eppi_obs.Trace

type result = {
  index : Index.t;
  betas : float array;
  raw_betas : float array;
  common : bool array;
  mixed : bool array;
  lambda : float;
  xi : float;
}

type result_betas = {
  final : float array;
  raw : float array;
  is_common : bool array;
  is_mixed : bool array;
  lam : float;
  xi_value : float;
}

let plan_betas ?(mixing = Mixing.Bernoulli) ~policy ~epsilons ~frequencies ~m rng =
  let n = Array.length epsilons in
  if Array.length frequencies <> n then
    invalid_arg "Construct.plan_betas: frequencies/epsilons length mismatch";
  if m <= 0 then invalid_arg "Construct.plan_betas: m must be positive";
  Array.iter
    (fun e -> if e < 0.0 || e > 1.0 then invalid_arg "Construct.plan_betas: epsilon out of [0, 1]")
    epsilons;
  let raw =
    Trace.span "phase.beta" ~args:[ ("owners", n) ] (fun () ->
        Array.init n (fun j ->
            let sigma = float_of_int frequencies.(j) /. float_of_int m in
            Policy.beta policy ~sigma ~epsilon:epsilons.(j) ~m))
  in
  Trace.begin_span "phase.mixing";
  let is_common = Array.map (fun b -> b >= 1.0) raw in
  let n_common = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 is_common in
  (* ξ: the strongest requirement among the identities that need mixing. *)
  let xi_value =
    let acc = ref 0.0 in
    Array.iteri (fun j c -> if c then acc := Float.max !acc epsilons.(j)) is_common;
    (* ξ = 1 would require infinitely many decoys; the strongest enforceable
       requirement leaves at least one true positive in the pool. *)
    Float.min !acc 0.999
  in
  let lam = Mixing.lambda ~xi:xi_value ~n_common ~n_total:n in
  let is_mixed = Array.make n false in
  let candidates =
    Array.of_list
      (List.filteri (fun j _ -> not is_common.(j)) (List.init n Fun.id))
  in
  let decoys = Mixing.select_decoys rng ~mode:mixing ~lambda:lam ~candidates in
  Array.iteri (fun slot j -> if decoys.(slot) then is_mixed.(j) <- true) candidates;
  let final =
    Array.init n (fun j -> if is_common.(j) || is_mixed.(j) then 1.0 else raw.(j))
  in
  Trace.end_span "phase.mixing" ~args:[ ("n_common", n_common) ];
  { final; raw; is_common; is_mixed; lam; xi_value }

let run ?(mixing = Mixing.Bernoulli) ?provider_floors rng ~membership ~epsilons ~policy =
  let n = Bitmatrix.rows membership in
  let m = Bitmatrix.cols membership in
  if Array.length epsilons <> n then invalid_arg "Construct.run: epsilons length mismatch";
  let frequencies = Array.init n (fun j -> Bitmatrix.row_count membership j) in
  let plan = plan_betas ~mixing ~policy ~epsilons ~frequencies ~m rng in
  let index =
    Trace.span "phase.publish" ~args:[ ("owners", n); ("providers", m) ] (fun () ->
        let published =
          match provider_floors with
          | None -> Publish.publish_matrix rng ~betas:plan.final membership
          | Some floors ->
              Publish.publish_matrix_with_floors rng ~betas:plan.final ~floors membership
        in
        Index.of_matrix published)
  in
  {
    index;
    betas = plan.final;
    raw_betas = plan.raw;
    common = plan.is_common;
    mixed = plan.is_mixed;
    lambda = plan.lam;
    xi = plan.xi_value;
  }

let extend rng ~previous ~membership ~epsilons ~policy =
  let old_n = Index.owners previous.index in
  let n = Bitmatrix.rows membership in
  let m = Bitmatrix.cols membership in
  if n < old_n then invalid_arg "Construct.extend: the population cannot shrink";
  if m <> Index.providers previous.index then
    invalid_arg "Construct.extend: the provider count changed";
  if Array.length epsilons <> n then invalid_arg "Construct.extend: epsilons length mismatch";
  let old_published = Index.matrix previous.index in
  (* An existing owner's memberships must be unchanged: her published row is
     immutable, so any new true positive would break the recall invariant. *)
  for j = 0 to old_n - 1 do
    let truth = Bitmatrix.row membership j in
    let published = Bitmatrix.row old_published j in
    if Bitvec.count (Bitvec.diff truth published) <> 0 then
      invalid_arg "Construct.extend: existing owner's memberships changed; rebuild instead"
  done;
  (* Price the appended owners. *)
  let raw =
    Array.init n (fun j ->
        if j < old_n then previous.raw_betas.(j)
        else
          Policy.beta policy
            ~sigma:(float_of_int (Bitmatrix.row_count membership j) /. float_of_int m)
            ~epsilon:epsilons.(j) ~m)
  in
  let common = Array.init n (fun j -> if j < old_n then previous.common.(j) else raw.(j) >= 1.0) in
  let n_common = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 common in
  let xi =
    let acc = ref 0.0 in
    Array.iteri (fun j c -> if c then acc := Float.max !acc epsilons.(j)) common;
    Float.min !acc 0.999
  in
  (* Decoys needed overall for the new xi, minus those already published;
     the deficit is spread over the appended non-common owners. *)
  let old_decoys =
    Array.fold_left (fun acc mixed -> if mixed then acc + 1 else acc) 0 previous.mixed
  in
  let required =
    if n_common = 0 then 0.0 else xi /. (1.0 -. xi) *. float_of_int n_common
  in
  let new_non_common = ref 0 in
  for j = old_n to n - 1 do
    if not common.(j) then incr new_non_common
  done;
  let lambda =
    if !new_non_common = 0 then 0.0
    else
      Float.min 1.0
        (Float.max 0.0 (required -. float_of_int old_decoys) /. float_of_int !new_non_common)
  in
  let mixed = Array.init n (fun j -> j < old_n && previous.mixed.(j)) in
  let betas =
    Array.init n (fun j ->
        if j < old_n then previous.betas.(j)
        else if common.(j) then 1.0
        else if Mixing.mix rng ~lambda then begin
          mixed.(j) <- true;
          1.0
        end
        else raw.(j))
  in
  (* Publish: old rows verbatim, new rows fresh. *)
  let published =
    Bitmatrix.map_rows
      (fun j row ->
        if j < old_n then Bitvec.copy (Bitmatrix.row old_published j)
        else Publish.publish_row rng ~beta:betas.(j) row)
      membership
  in
  {
    index = Index.of_matrix published;
    betas;
    raw_betas = raw;
    common;
    mixed;
    lambda;
    xi;
  }
