(** The published privacy-preserving index and its query operation.

    Once constructed, the PPI is a static matrix on the third-party locator
    server; QueryPPI(t_j) is a row lookup returning the obscured provider
    list (paper Section II-A). *)

open Eppi_prelude

type t

val of_matrix : Bitmatrix.t -> t
(** Rows are owners, columns providers. *)

val matrix : t -> Bitmatrix.t
val providers : t -> int
val owners : t -> int

val query : t -> owner:int -> int list
(** Provider ids that may hold the owner's records, ascending. *)

val query_count : t -> owner:int -> int
(** Size of the query result — the search-cost driver. *)

val apparent_frequency : t -> owner:int -> int
(** What an observer of the public index sees as the owner's frequency
    (identical to {!query_count}; named for the attack code's vocabulary). *)

val recall_ok : membership:Bitmatrix.t -> t -> owner:int -> bool
(** True iff every true-positive provider appears in the query result —
    the 100%-recall invariant of truthful publication. *)

val to_csv : t -> string
(** Persist the published matrix: a dimension header plus one
    [owner,provider] line per published positive. *)

val of_csv : string -> t
(** Inverse of {!to_csv}.  Input is validated: the dimension header must be
    complete and positive, every line must be an in-range [owner,provider]
    pair, and duplicate cells are rejected.
    @raise Failure on malformed input, naming the offending line. *)
