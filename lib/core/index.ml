open Eppi_prelude

type t = { matrix : Bitmatrix.t }

let of_matrix matrix = { matrix }
let matrix t = t.matrix
let providers t = Bitmatrix.cols t.matrix
let owners t = Bitmatrix.rows t.matrix

let query t ~owner = Bitvec.to_index_list (Bitmatrix.row t.matrix owner)
let query_count t ~owner = Bitmatrix.row_count t.matrix owner
let apparent_frequency = query_count

let recall_ok ~membership t ~owner =
  let true_row = Bitmatrix.row membership owner in
  let published_row = Bitmatrix.row t.matrix owner in
  Bitvec.count (Bitvec.diff true_row published_row) = 0

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "# eppi-index owners=%d providers=%d\n" (owners t) (providers t));
  for j = 0 to owners t - 1 do
    Bitvec.iter_set
      (fun p -> Buffer.add_string buf (Printf.sprintf "%d,%d\n" j p))
      (Bitmatrix.row t.matrix j)
  done;
  Buffer.contents buf

let of_csv text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | header :: rest ->
      let owners, providers =
        try
          Scanf.sscanf header "# eppi-index owners=%d providers=%d%!" (fun o p -> (o, p))
        with Scanf.Scan_failure _ | Failure _ | End_of_file ->
          failwith "Index.of_csv: bad header"
      in
      if owners <= 0 || providers <= 0 then failwith "Index.of_csv: bad dimensions";
      let matrix = Bitmatrix.create ~rows:owners ~cols:providers in
      List.iteri
        (fun lineno line ->
          if line <> "" then
            match String.split_on_char ',' line with
            | [ j; p ] -> (
                match (int_of_string_opt j, int_of_string_opt p) with
                | Some row, Some col ->
                    if row < 0 || row >= owners || col < 0 || col >= providers then
                      failwith
                        (Printf.sprintf "Index.of_csv: cell out of range at line %d"
                           (lineno + 2));
                    if Bitmatrix.get matrix ~row ~col then
                      failwith
                        (Printf.sprintf "Index.of_csv: duplicate cell at line %d" (lineno + 2));
                    Bitmatrix.set matrix ~row ~col true
                | _ -> failwith (Printf.sprintf "Index.of_csv: bad line %d" (lineno + 2)))
            | _ -> failwith (Printf.sprintf "Index.of_csv: bad line %d" (lineno + 2)))
        rest;
      { matrix }
  | [] -> failwith "Index.of_csv: empty input"
