#!/bin/sh
# Full repository check: build, tests, and a short multicore-scaling smoke.
# This is exactly what CI runs; run it locally before pushing.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

# A ~5 s smoke of the scaling bench: small n, 1 and 2 domains. Exercises the
# domain pool, the sharded CountBelow path, the circuit cache, and the
# bench's own cross-strategy output-equality check (it exits non-zero if the
# sharded construction ever diverges from the monolithic reference).
echo "== scaling smoke =="
SCALING_N=200 SCALING_M=6 SCALING_DOMAINS=1,2 dune exec bench/main.exe -- scaling
rm -f BENCH_construct.json

echo "== check.sh: all green =="
