#!/bin/sh
# Full repository check: build, tests, and a short multicore-scaling smoke.
# This is exactly what CI runs; run it locally before pushing.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

# A ~5 s smoke of the scaling bench: small n, 1 and 2 domains. Exercises the
# domain pool, the sharded CountBelow path, the circuit cache, and the
# bench's own cross-strategy output-equality check (it exits non-zero if the
# sharded construction ever diverges from the monolithic reference).
echo "== scaling smoke =="
SCALING_N=200 SCALING_M=6 SCALING_DOMAINS=1,2 dune exec bench/main.exe -- scaling
rm -f BENCH_construct.json

# A ~5 s smoke of the serving bench: tiny index, short replay, 1 and 2
# domains. Exercises the postings compiler, caches, admission control and
# the bench's reply-equality + shed-conservation assertions, then checks
# the emitted JSON is well-formed and carries the headline fields.
echo "== serve smoke =="
SERVE_N=120 SERVE_M=64 SERVE_QUERIES=4000 SERVE_DOMAINS=1,2 dune exec bench/main.exe -- serve
test -s BENCH_serve.json
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("BENCH_serve.json") as f:
    data = json.load(f)
for key in ("speedup_postings_vs_naive", "cache_hit_rate", "latency_s",
            "domain_runs", "admission", "metrics"):
    if key not in data:
        raise SystemExit(f"BENCH_serve.json missing {key!r}")
print("BENCH_serve.json well-formed")
EOF
fi
rm -f BENCH_serve.json

# A ~5 s smoke of the tracing layer (docs/OBSERVABILITY.md): trace a small
# secure 2-domain construction end to end, then check the emitted Chrome
# trace-event JSON parses and actually contains what the instrumentation
# promises — complete spans for all three construction phases, GMW spans
# with byte accounting, and one counter track per pool worker.
echo "== trace smoke =="
dune exec bin/eppi_cli.exe -- generate --owners 60 --providers 12 --seed 3 \
  -o /tmp/eppi_trace_dataset.csv >/dev/null
dune exec bin/eppi_cli.exe -- construct -d /tmp/eppi_trace_dataset.csv \
  --secure --domains 2 --trace /tmp/eppi_trace.json -o /tmp/eppi_trace_index.csv
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("/tmp/eppi_trace.json") as f:
    events = json.load(f)["traceEvents"]
def spans(name):
    b = sum(1 for e in events if e["name"] == name and e["ph"] == "B")
    e = sum(1 for e in events if e["name"] == name and e["ph"] == "E")
    return b, e
for phase in ("phase.beta", "phase.mixing", "phase.publish"):
    b, e = spans(phase)
    if b < 1 or b != e:
        raise SystemExit(f"trace: {phase} has {b} begins / {e} ends")
gb, ge = spans("gmw.execute")
if gb < 1 or gb != ge:
    raise SystemExit(f"trace: gmw.execute has {gb} begins / {ge} ends")
if not any(e["name"] == "gmw.execute" and e["ph"] == "E" and "bytes" in e.get("args", {})
           for e in events):
    raise SystemExit("trace: gmw.execute spans carry no bytes accounting")
workers = {e["name"] for e in events if e["ph"] == "C" and e["name"].startswith("pool/worker-")}
if len(workers) < 2:
    raise SystemExit(f"trace: expected counter tracks for 2 pool workers, got {sorted(workers)}")
print(f"trace ok: {len(events)} events, pool counters {sorted(workers)}")
EOF
fi
rm -f /tmp/eppi_trace_dataset.csv /tmp/eppi_trace_index.csv

echo "== check.sh: all green =="
