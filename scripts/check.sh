#!/bin/sh
# Full repository check: build, tests, and a short multicore-scaling smoke.
# This is exactly what CI runs; run it locally before pushing.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

# A ~5 s smoke of the scaling bench: small n, 1 and 2 domains. Exercises the
# domain pool, the sharded CountBelow path, the circuit cache, and the
# bench's own cross-strategy output-equality check (it exits non-zero if the
# sharded construction ever diverges from the monolithic reference).
echo "== scaling smoke =="
SCALING_N=200 SCALING_M=6 SCALING_DOMAINS=1,2 dune exec bench/main.exe -- scaling
rm -f BENCH_construct.json

# A ~5 s smoke of the serving bench: tiny index, short replay, 1 and 2
# domains. Exercises the postings compiler, caches, admission control and
# the bench's reply-equality + shed-conservation assertions, then checks
# the emitted JSON is well-formed and carries the headline fields.
echo "== serve smoke =="
SERVE_N=120 SERVE_M=64 SERVE_QUERIES=4000 SERVE_DOMAINS=1,2 dune exec bench/main.exe -- serve
test -s BENCH_serve.json
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("BENCH_serve.json") as f:
    data = json.load(f)
for key in ("speedup_postings_vs_naive", "cache_hit_rate", "latency_s",
            "domain_runs", "admission", "metrics"):
    if key not in data:
        raise SystemExit(f"BENCH_serve.json missing {key!r}")
print("BENCH_serve.json well-formed")
EOF
fi
rm -f BENCH_serve.json

echo "== check.sh: all green =="
