#!/bin/sh
# Full repository check: build, tests, and a short multicore-scaling smoke.
# This is exactly what CI runs; run it locally before pushing.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

# A ~5 s smoke of the scaling bench: small n, 1 and 2 domains. Exercises the
# domain pool, the sharded CountBelow path, the circuit cache, and the
# bench's own cross-strategy output-equality check (it exits non-zero if the
# sharded construction ever diverges from the monolithic reference).
echo "== scaling smoke =="
SCALING_N=200 SCALING_M=6 SCALING_DOMAINS=1,2 dune exec bench/main.exe -- scaling
rm -f BENCH_construct.json

# A ~5 s smoke of the serving bench: tiny index, short replay, 1 and 2
# domains. Exercises the postings compiler, caches, admission control and
# the bench's reply-equality + shed-conservation assertions, then checks
# the emitted JSON is well-formed and carries the headline fields.
echo "== serve smoke =="
SERVE_N=120 SERVE_M=64 SERVE_QUERIES=4000 SERVE_DOMAINS=1,2 \
  SERVE_TELEMETRY_QUERIES=2000 SERVE_TELEMETRY_DOMAINS=2 \
  dune exec bench/main.exe -- serve
test -s BENCH_serve.json
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("BENCH_serve.json") as f:
    data = json.load(f)
for key in ("speedup_postings_vs_naive", "cache_hit_rate", "latency_s",
            "domain_runs", "admission", "telemetry", "metrics"):
    if key not in data:
        raise SystemExit(f"BENCH_serve.json missing {key!r}")
if not data["telemetry"]["overhead_ok"]:
    raise SystemExit(f"BENCH_serve.json: telemetry overhead gate failed: {data['telemetry']}")
print("BENCH_serve.json well-formed")
EOF
fi
rm -f BENCH_serve.json

# A ~5 s smoke of the tracing layer (docs/OBSERVABILITY.md): trace a small
# secure 2-domain construction end to end, then check the emitted Chrome
# trace-event JSON parses and actually contains what the instrumentation
# promises — complete spans for all three construction phases, GMW spans
# with byte accounting, and one counter track per pool worker.
echo "== trace smoke =="
dune exec bin/eppi_cli.exe -- generate --owners 60 --providers 12 --seed 3 \
  -o /tmp/eppi_trace_dataset.csv >/dev/null
dune exec bin/eppi_cli.exe -- construct -d /tmp/eppi_trace_dataset.csv \
  --secure --domains 2 --trace /tmp/eppi_trace.json -o /tmp/eppi_trace_index.csv
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("/tmp/eppi_trace.json") as f:
    events = json.load(f)["traceEvents"]
def spans(name):
    b = sum(1 for e in events if e["name"] == name and e["ph"] == "B")
    e = sum(1 for e in events if e["name"] == name and e["ph"] == "E")
    return b, e
for phase in ("phase.beta", "phase.mixing", "phase.publish"):
    b, e = spans(phase)
    if b < 1 or b != e:
        raise SystemExit(f"trace: {phase} has {b} begins / {e} ends")
gb, ge = spans("gmw.execute")
if gb < 1 or gb != ge:
    raise SystemExit(f"trace: gmw.execute has {gb} begins / {ge} ends")
if not any(e["name"] == "gmw.execute" and e["ph"] == "E" and "bytes" in e.get("args", {})
           for e in events):
    raise SystemExit("trace: gmw.execute spans carry no bytes accounting")
workers = {e["name"] for e in events if e["ph"] == "C" and e["name"].startswith("pool/worker-")}
if len(workers) < 2:
    raise SystemExit(f"trace: expected counter tracks for 2 pool workers, got {sorted(workers)}")
print(f"trace ok: {len(events)} events, pool counters {sorted(workers)}")
EOF
fi
rm -f /tmp/eppi_trace_dataset.csv /tmp/eppi_trace_index.csv

# A ~5 s smoke of the network front-end (docs/SERVE.md): start the daemon
# on a Unix socket with 4 worker domains, drive 100 pipelined queries, a
# binary hot-swap republish and a CSV compat republish through
# `eppi query`/`eppi republish`, assert the metrics conserve every request
# and record the swaps, then shut down gracefully and check that the
# daemon exits 0 and leaves no socket file behind.
echo "== net smoke =="
EPPI=./_build/default/bin/eppi_cli.exe
NET_DIR=$(mktemp -d /tmp/eppi_net_smoke.XXXXXX)
NET_SOCK="$NET_DIR/eppi.sock"
trap 'rm -rf "$NET_DIR"' EXIT
"$EPPI" generate --owners 80 --providers 24 --seed 5 -o "$NET_DIR/net.csv" >/dev/null
"$EPPI" construct -d "$NET_DIR/net.csv" -o "$NET_DIR/index1.csv" 2>/dev/null
"$EPPI" construct -d "$NET_DIR/net.csv" --seed 9 --policy basic -o "$NET_DIR/index2.csv" 2>/dev/null
"$EPPI" serve -i "$NET_DIR/index1.csv" --listen "$NET_SOCK" --shards 2 --domains 4 \
  >"$NET_DIR/server.json" 2>"$NET_DIR/server.log" &
NET_PID=$!
# 100 queries: two rounds of 50, pipelined over one connection each, with a
# binary hot-swap republish in between (generation 1 -> 2, queries keep
# flowing), then a CSV-payload republish (generation 3) for compat.
seq 0 49 | sed 's/^/--owner /' | xargs "$EPPI" query --connect "$NET_SOCK" >"$NET_DIR/replies1.txt"
"$EPPI" republish --connect "$NET_SOCK" -i "$NET_DIR/index2.csv" | grep -q "generation 2"
seq 0 49 | sed 's/^/--owner /' | xargs "$EPPI" query --connect "$NET_SOCK" >"$NET_DIR/replies2.txt"
"$EPPI" republish --connect "$NET_SOCK" --csv -i "$NET_DIR/index1.csv" | grep -q "generation 3"
test "$(wc -l < "$NET_DIR/replies1.txt")" -eq 50
test "$(wc -l < "$NET_DIR/replies2.txt")" -eq 50
"$EPPI" stats --connect "$NET_SOCK" >"$NET_DIR/stats.json"
# Live telemetry (docs/OBSERVABILITY.md): the stage decomposition's
# conservation law must hold as an exact integer identity, the Stats
# reply must carry the per-worker counters, and both watch modes must
# produce bounded output.
"$EPPI" top --connect "$NET_SOCK" --json >"$NET_DIR/telemetry.json"
"$EPPI" stats --connect "$NET_SOCK" --watch 0.2 --iterations 2 >"$NET_DIR/watch.txt"
test "$(wc -l < "$NET_DIR/watch.txt")" -eq 2
grep -q "queries" "$NET_DIR/watch.txt"
if command -v python3 >/dev/null 2>&1; then
  NET_STATS="$NET_DIR/stats.json" NET_TELEMETRY="$NET_DIR/telemetry.json" python3 - <<'EOF'
import json, os
with open(os.environ["NET_STATS"]) as f:
    m = json.load(f)
if m["queries"] != m["served"] + m["unknown"] + m["shed_rate"] + m["shed_queue"]:
    raise SystemExit(f"net: request conservation violated: {m}")
if m["queries"] < 100:
    raise SystemExit(f"net: expected >= 100 queries, got {m['queries']}")
if m["generation"] != 3:
    raise SystemExit(f"net: expected generation 3 after republishes, got {m['generation']}")
if m["swaps"] < 1:
    raise SystemExit(f"net: republish recorded no swap: {m}")
if len(m.get("workers", [])) != 4:
    raise SystemExit(f"net: stats should list 4 worker domains: {m.get('workers')}")
if "trace_dropped" not in m:
    raise SystemExit("net: stats reply lacks trace_dropped")
with open(os.environ["NET_TELEMETRY"]) as f:
    t = json.load(f)
c = t["conservation"]
if not c["exact"] or c["stage_sum_ns"] != c["total_ns"]:
    raise SystemExit(f"net: telemetry stage conservation violated: {c}")
if t["requests"] < 100:
    raise SystemExit(f"net: telemetry saw {t['requests']} requests, expected >= 100")
if len(t["workers"]) != 4:
    raise SystemExit(f"net: telemetry should list 4 worker domains: {t['workers']}")
if t["stages"]["decode"]["count"] != t["stages"]["flush"]["count"]:
    raise SystemExit(f"net: stage counts disagree: {t['stages']}")
if not t["slow"]:
    raise SystemExit("net: slow-request ring is empty after load")
print(f"net stats ok: {m['queries']} queries conserved, generation {m['generation']}, "
      f"{m['swaps']} swap observation(s)")
print(f"net telemetry ok: {t['requests']} requests, stage sum {c['stage_sum_ns']} ns "
      f"== total {c['total_ns']} ns (exact)")
EOF
fi
"$EPPI" shutdown --connect "$NET_SOCK" 2>/dev/null
wait "$NET_PID"
test ! -e "$NET_SOCK"
rm -rf "$NET_DIR"
trap - EXIT

# A ~5 s smoke of the replication layer (docs/SERVE.md, "Replication"):
# three daemons sharing a --peers list form a replica set; a cluster
# republish fans the binary payload to all three, cluster-addressed
# queries keep answering through transparent failover while one replica
# is killed, a second fan-out with --require 2 succeeds on the
# survivors, and `top --json` over the set shows the survivors
# generation-converged with the dead replica reported down, not erroring.
echo "== cluster smoke =="
CLU_DIR=$(mktemp -d /tmp/eppi_cluster_smoke.XXXXXX)
trap 'rm -rf "$CLU_DIR"' EXIT
"$EPPI" generate --owners 80 --providers 24 --seed 5 -o "$CLU_DIR/net.csv" >/dev/null
"$EPPI" construct -d "$CLU_DIR/net.csv" -o "$CLU_DIR/index1.csv" 2>/dev/null
"$EPPI" construct -d "$CLU_DIR/net.csv" --seed 9 --policy basic -o "$CLU_DIR/index2.csv" 2>/dev/null
CLU_PEERS="$CLU_DIR/a.sock,$CLU_DIR/b.sock,$CLU_DIR/c.sock"
for r in a b c; do
  "$EPPI" serve -i "$CLU_DIR/index1.csv" --listen "$CLU_DIR/$r.sock" --shards 2 --domains 2 \
    --peers "$CLU_PEERS" >"$CLU_DIR/$r.json" 2>"$CLU_DIR/$r.log" &
done
for r in a b c; do
  i=0
  while [ ! -S "$CLU_DIR/$r.sock" ] && [ "$i" -lt 50 ]; do sleep 0.1; i=$((i + 1)); done
  test -S "$CLU_DIR/$r.sock"
done
"$EPPI" republish --cluster "$CLU_PEERS" -i "$CLU_DIR/index2.csv" >"$CLU_DIR/repub1.txt"
grep -q "republished 3/3 replicas at generation 2" "$CLU_DIR/repub1.txt"
seq 0 49 | sed 's/^/--owner /' | xargs "$EPPI" query --connect "$CLU_PEERS" >"$CLU_DIR/replies1.txt"
test "$(wc -l < "$CLU_DIR/replies1.txt")" -eq 50
"$EPPI" shutdown --connect "$CLU_DIR/a.sock" 2>/dev/null
# The replica set still lists the dead daemon: queries must fail over
# transparently and the fan-out must report honest partial success.
seq 0 49 | sed 's/^/--owner /' | xargs "$EPPI" query --connect "$CLU_PEERS" >"$CLU_DIR/replies2.txt"
test "$(wc -l < "$CLU_DIR/replies2.txt")" -eq 50
"$EPPI" republish --cluster "$CLU_PEERS" --require 2 -i "$CLU_DIR/index1.csv" >"$CLU_DIR/repub2.txt"
grep -q "republished 2/3 replicas at generation 3" "$CLU_DIR/repub2.txt"
"$EPPI" top --connect "$CLU_PEERS" --json >"$CLU_DIR/top.json"
if command -v python3 >/dev/null 2>&1; then
  CLU_TOP="$CLU_DIR/top.json" python3 - <<'EOF'
import json, os
with open(os.environ["CLU_TOP"]) as f:
    rows = json.load(f)
if len(rows) != 3:
    raise SystemExit(f"cluster: top --json should list 3 replicas, got {len(rows)}")
down = [r for r in rows if not r["up"]]
up = [r for r in rows if r["up"]]
if len(down) != 1 or not down[0]["addr"].endswith("a.sock"):
    raise SystemExit(f"cluster: expected exactly the killed replica down: {rows}")
gens = {r["generation"] for r in up}
if gens != {3}:
    raise SystemExit(f"cluster: survivors not generation-converged: {rows}")
if any(r["peers"] != 3 for r in up):
    raise SystemExit(f"cluster: replicas should echo a 3-member peer list: {rows}")
print(f"cluster top ok: 1 down, survivors converged at generation {gens.pop()}")
EOF
fi
"$EPPI" shutdown --connect "$CLU_DIR/b.sock" 2>/dev/null
"$EPPI" shutdown --connect "$CLU_DIR/c.sock" 2>/dev/null
wait
test ! -e "$CLU_DIR/b.sock"
test ! -e "$CLU_DIR/c.sock"
rm -rf "$CLU_DIR"
trap - EXIT

# A ~5 s smoke of the network bench: tiny index, short replay, two pipeline
# depths, a 1-vs-2 domain sweep (with its reply-equality check), CSV and
# binary republishes under load; then check the emitted JSON.
echo "== net bench smoke =="
NET_N=120 NET_M=64 NET_QUERIES=3000 NET_DEPTHS=1,8 NET_DOMAINS=1,2 NET_SWAPS=5 \
  dune exec bench/main.exe -- net
test -s BENCH_net.json
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("BENCH_net.json") as f:
    data = json.load(f)
for key in ("depth_runs", "domain_runs", "payload", "swap", "swap_csv", "cores",
            "replication", "metrics"):
    if key not in data:
        raise SystemExit(f"BENCH_net.json missing {key!r}")
if len(data["depth_runs"]) < 2:
    raise SystemExit("BENCH_net.json: depth sweep not populated")
if len(data["domain_runs"]) < 2:
    raise SystemExit("BENCH_net.json: domain sweep not populated")
if data["payload"]["ratio"] <= 1.0:
    raise SystemExit(f"BENCH_net.json: binary payload not smaller than CSV: {data['payload']}")
csv_swaps = data["swap_csv"]["count"]
if data["swap"]["final_generation"] != data["swap"]["count"] + csv_swaps + 1:
    raise SystemExit(f"BENCH_net.json: generation accounting off: {data['swap']}")
repl = data["replication"]
init = repl["initial_republish"]
if init["succeeded"] != repl["replicas"] or not init["converged_within_round"]:
    raise SystemExit(f"BENCH_net.json: initial fan-out incomplete: {init}")
kill = repl["kill"]
if kill["errors_after_settle"] != 0:
    raise SystemExit(f"BENCH_net.json: errors persisted after failover settled: {kill}")
if kill["failovers"] < 1:
    raise SystemExit(f"BENCH_net.json: replica kill produced no failover: {kill}")
for key in ("p99_baseline_s", "p99_kill_window_s", "failover_latency_s"):
    if kill[key] <= 0.0:
        raise SystemExit(f"BENCH_net.json: {key} not recorded: {kill}")
cr = repl["cluster_republish"]
if (cr["succeeded"] != repl["replicas"] - 1 or cr["failed"] != 1
        or not cr["converged_within_round"]):
    raise SystemExit(f"BENCH_net.json: post-kill fan-out off: {cr}")
print("BENCH_net.json well-formed (replication: converged, zero settled errors, "
      f"{kill['failovers']} failover(s))")
EOF
fi
rm -f BENCH_net.json

# A ~5 s smoke of the fuzzy lookup path (docs/FUZZY.md): generate a roster
# alongside the dataset, start the daemon with a resolver under an explicit
# linkage seed, resolve a planted owner through a clean probe and a typo'd
# one, assert a wrong seed resolves nothing, that --fuzzy without
# --linkage-seed is refused, and that the fuzzy metrics conserve; then shut
# down cleanly.
echo "== fuzzy smoke =="
FUZ_DIR=$(mktemp -d /tmp/eppi_fuzzy_smoke.XXXXXX)
FUZ_SOCK="$FUZ_DIR/eppi.sock"
trap 'rm -rf "$FUZ_DIR"' EXIT
"$EPPI" generate --owners 80 --providers 24 --seed 5 -o "$FUZ_DIR/net.csv" \
  --roster "$FUZ_DIR/roster.csv" >/dev/null
"$EPPI" construct -d "$FUZ_DIR/net.csv" -o "$FUZ_DIR/index.csv" 2>/dev/null
"$EPPI" serve -i "$FUZ_DIR/index.csv" --listen "$FUZ_SOCK" --shards 2 --domains 2 \
  --roster "$FUZ_DIR/roster.csv" --linkage-seed 4242 \
  >"$FUZ_DIR/server.json" 2>"$FUZ_DIR/server.log" &
FUZ_PID=$!
# Owner 0's roster row (line 1 is the header): query it back verbatim,
# then with a corrupted first name — both must resolve to owner 0.
ROW=$(sed -n '2p' "$FUZ_DIR/roster.csv")
FIRST=$(printf '%s' "$ROW" | cut -d, -f2)
LAST=$(printf '%s' "$ROW" | cut -d, -f3)
DOB=$(printf '%s' "$ROW" | cut -d, -f4)
ZIP=$(printf '%s' "$ROW" | cut -d, -f5)
"$EPPI" query --connect "$FUZ_SOCK" --fuzzy --linkage-seed 4242 \
  --first "$FIRST" --last "$LAST" --dob "$DOB" --zip "$ZIP" >"$FUZ_DIR/exact.txt"
head -n1 "$FUZ_DIR/exact.txt" | grep -q "^0 1.0000"
"$EPPI" query --connect "$FUZ_SOCK" --fuzzy --linkage-seed 4242 \
  --first "${FIRST%?}x" --last "$LAST" --dob "$DOB" >"$FUZ_DIR/typo.txt"
head -n1 "$FUZ_DIR/typo.txt" | grep -q "^0 "
if "$EPPI" query --connect "$FUZ_SOCK" --fuzzy --linkage-seed 9999 \
  --first "$FIRST" --last "$LAST" --dob "$DOB" >/dev/null 2>&1; then
  echo "fuzzy smoke: a probe under the wrong linkage seed must not resolve" >&2
  exit 1
fi
if "$EPPI" query --connect "$FUZ_SOCK" --fuzzy --first "$FIRST" >/dev/null 2>&1; then
  echo "fuzzy smoke: --fuzzy without --linkage-seed must be refused" >&2
  exit 1
fi
"$EPPI" stats --connect "$FUZ_SOCK" >"$FUZ_DIR/stats.json"
if command -v python3 >/dev/null 2>&1; then
  FUZ_STATS="$FUZ_DIR/stats.json" python3 - <<'EOF'
import json, os
with open(os.environ["FUZ_STATS"]) as f:
    m = json.load(f)
total = (m["fuzzy_resolved"] + m["fuzzy_empty"] + m["fuzzy_rejected"] + m["fuzzy_shed"])
if m["fuzzy_queries"] != total:
    raise SystemExit(f"fuzzy: request conservation violated: {m}")
if m["fuzzy_resolved"] < 2 or m["fuzzy_empty"] < 1:
    raise SystemExit(f"fuzzy: expected 2+ resolved and 1+ empty, got {m}")
print(f"fuzzy stats ok: {m['fuzzy_queries']} queries conserved, "
      f"{m['fuzzy_resolved']} resolved, {m['fuzzy_scanned']} signatures scanned")
EOF
fi
"$EPPI" shutdown --connect "$FUZ_SOCK" 2>/dev/null
wait "$FUZ_PID"
test ! -e "$FUZ_SOCK"
rm -rf "$FUZ_DIR"
trap - EXIT

# A ~5 s smoke of the fuzzy bench: small roster, short query stream.  The
# bench itself exits non-zero unless recall@10 >= 0.9 at default noise, no
# generated frame contains a plaintext demographic byte, and the
# disabled-tracing overhead stays under the bound; here we additionally
# check the emitted JSON carries the headline fields.
echo "== fuzzy bench smoke =="
FUZZY_N=300 FUZZY_M=64 FUZZY_QUERIES=600 dune exec bench/main.exe -- fuzzy
test -s BENCH_fuzzy.json
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("BENCH_fuzzy.json") as f:
    data = json.load(f)
for key in ("resolver_build_seconds", "no_plaintext_in_frames", "noise_runs",
            "recall_at_k_default_noise", "exact_latency_s", "trace", "metrics"):
    if key not in data:
        raise SystemExit(f"BENCH_fuzzy.json missing {key!r}")
if data["recall_at_k_default_noise"] < 0.9:
    raise SystemExit(f"BENCH_fuzzy.json: recall gate failed: {data['recall_at_k_default_noise']}")
if len(data["noise_runs"]) < 3:
    raise SystemExit("BENCH_fuzzy.json: noise sweep not populated")
print("BENCH_fuzzy.json well-formed")
EOF
fi
rm -f BENCH_fuzzy.json

# A ~5 s smoke of the fault-tolerant construction (docs/ROBUSTNESS.md):
# the chaos bench sweeps drop rates and crashes a provider mid-SecSumShare
# and a coordinator mid-MPC.  The bench itself exits non-zero unless every
# lossy run is bit-identical to the lossless baseline and every crash run
# comes back Degraded with the epsilon contract intact over the survivors;
# here we additionally check the emitted JSON records those verdicts.
echo "== chaos smoke =="
CHAOS_N=40 CHAOS_M=10 CHAOS_DROPS=0.05,0.1 dune exec bench/main.exe -- chaos
test -s BENCH_chaos.json
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("BENCH_chaos.json") as f:
    data = json.load(f)
if len(data["loss_sweep"]) < 2:
    raise SystemExit("BENCH_chaos.json: loss sweep not populated")
for run in data["loss_sweep"]:
    if not run["bit_identical"]:
        raise SystemExit(f"BENCH_chaos.json: lossy run diverged: {run}")
for key in ("provider_crash", "coordinator_crash"):
    crash = data[key]
    if crash["outcome"] != "degraded" or not crash["epsilon_contract"]:
        raise SystemExit(f"BENCH_chaos.json: {key} violated the contract: {crash}")
print("BENCH_chaos.json well-formed: loss masked, crashes degraded gracefully")
EOF
fi

echo "== check.sh: all green =="
