(* Tests for the approximate-identity resolver (lib/fuzzy): probe
   construction and blocking keys, roster CSV round-trips, resolution
   against a planted roster (exact self-match, corrupted variants,
   threshold, padding floor, determinism), and the serving engine's fuzzy
   path — reply shapes, metrics conservation, resolver hot-swap. *)

open Eppi_prelude
open Eppi_linkage
module Probe = Eppi_fuzzy.Probe
module Resolver = Eppi_fuzzy.Resolver
module Roster = Eppi_fuzzy.Roster
module Serve = Eppi_serve.Serve

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  if m = 0 then true else go 0

let seed = 0xBEEF
let config = Resolver.default_config ~seed

let roster n = Roster.generate (Rng.create 101) ~n

(* ---- probe ---- *)

let test_probe_shape () =
  let r = (roster 4).(0) in
  let p = Probe.of_demographic config.params r in
  check_int "bits" config.params.bits p.bits;
  check_int "hashes" config.params.hashes p.hashes;
  (* Full record: a birth-year key and a soundex key. *)
  check_int "blocking keys" 2 (Array.length p.keys);
  check_bool "first filter non-empty" true (Bitvec.count p.first > 0);
  check_bool "last filter non-empty" true (Bitvec.count p.last > 0);
  check_bool "dob filter non-empty" true (Bitvec.count p.dob > 0);
  check_bool "zip filter non-empty" true (Bitvec.count p.zip > 0);
  (* Partial record: missing fields encode empty, keys drop out. *)
  let partial = { r with first = ""; dob = (0, 0, 0) } in
  let pp = Probe.of_demographic config.params partial in
  check_int "partial keys (soundex only)" 1 (Array.length pp.keys);
  check_int "empty first filter" 0 (Bitvec.count pp.first);
  check_int "empty dob filter" 0 (Bitvec.count pp.dob);
  (* Same record, same probe — deterministic. *)
  let p2 = Probe.of_demographic config.params r in
  check_bool "deterministic" true (p = p2);
  (* Different seed, different filters. *)
  let other = Probe.of_demographic (Bloom.keyed ~seed:(seed + 1) ()) r in
  check_bool "seed changes filters" false (Bitvec.equal p.last other.last);
  check_bool "routing hash non-negative" true (Probe.routing_hash p >= 0);
  Alcotest.check_raises "bad params"
    (Invalid_argument "Probe.of_demographic: bad parameters") (fun () ->
      ignore (Probe.of_demographic { config.params with bits = 0 } r))

(* ---- roster csv ---- *)

let test_roster_roundtrip () =
  let people = roster 20 in
  let csv = Roster.to_csv people in
  let back = Roster.of_csv csv in
  check_int "length" (Array.length people) (Array.length back);
  Array.iteri
    (fun i (p : Demographic.t) -> check_bool (Printf.sprintf "person %d" i) true (p = back.(i)))
    people;
  (* Blank lines and the header tolerate re-parsing. *)
  let with_blanks = "\n" ^ csv ^ "\n\n" in
  check_int "blank lines skipped" 20 (Array.length (Roster.of_csv with_blanks))

let test_roster_malformed () =
  let expect_failure name text =
    match Roster.of_csv text with
    | _ -> Alcotest.failf "%s: expected Failure" name
    | exception Failure msg -> check_bool (name ^ ": names the line") true (contains msg "line")
  in
  expect_failure "missing fields" "owner,first,last,dob,zip,gender\n0,james,smith\n";
  expect_failure "bad owner order" "0,a,b,1950-01-01,12345,f\n2,c,d,1951-02-02,54321,m\n";
  expect_failure "bad dob" "0,a,b,1950-13-41,12345,f\n";
  expect_failure "bad gender" "0,a,b,1950-01-01,12345,x\n"

(* ---- resolver ---- *)

let test_resolve_exact_self () =
  let people = roster 50 in
  let r = Resolver.build config people in
  check_int "entries" 50 (Resolver.entries r);
  Array.iteri
    (fun owner person ->
      let probe = Probe.of_demographic config.params person in
      let outcome = Resolver.resolve r probe ~k:3 in
      match outcome.candidates with
      | top :: _ ->
          check_int (Printf.sprintf "owner %d self-match" owner) owner top.owner;
          check_bool "perfect score" true (top.score = 1.0)
      | [] -> Alcotest.failf "owner %d resolved nothing" owner)
    people

let test_resolve_corrupted () =
  let people = roster 200 in
  let r = Resolver.build config people in
  let rng = Rng.create 7 in
  let hits = ref 0 in
  let trials = 200 in
  for _ = 1 to trials do
    let truth = Rng.int rng 200 in
    let observed = Demographic.corrupt rng people.(truth) in
    let probe = Probe.of_demographic config.params observed in
    let outcome = Resolver.resolve r probe ~k:10 in
    if List.exists (fun (c : Resolver.resolved) -> c.owner = truth) outcome.candidates then
      incr hits
  done;
  check_bool
    (Printf.sprintf "recall %d/%d >= 0.9 under default noise" !hits trials)
    true
    (float_of_int !hits /. float_of_int trials >= 0.9)

let test_resolve_padding_floor () =
  let people = roster 300 in
  let r = Resolver.build config people in
  (* Any probe scans at least min_scan signatures — even one matching a
     rare (or absent) identity — so scan size does not leak rarity. *)
  let absent : Demographic.t =
    { first = "zzyzx"; last = "qwertyuiop"; dob = (1900, 1, 1); zip = "00000"; gender = Other }
  in
  let probe = Probe.of_demographic config.params absent in
  let outcome = Resolver.resolve r probe ~k:10 in
  check_bool "padding floor" true (outcome.scanned >= config.min_scan);
  let common = Probe.of_demographic config.params people.(0) in
  let outcome2 = Resolver.resolve r common ~k:10 in
  check_bool "padding floor (present identity)" true (outcome2.scanned >= config.min_scan);
  (* Small roster: the floor clamps to n. *)
  let small = Resolver.build config (roster 5) in
  let o = Resolver.resolve small probe ~k:10 in
  check_int "clamped to roster size" 5 o.scanned

let test_resolve_threshold_and_k () =
  let people = roster 100 in
  let strict = Resolver.build { config with match_threshold = 1.0 } people in
  let probe = Probe.of_demographic config.params people.(3) in
  let outcome = Resolver.resolve strict probe ~k:10 in
  (* Threshold 1.0: only the exact self-match survives. *)
  check_int "only self at threshold 1.0" 1 (List.length outcome.candidates);
  check_int "self" 3 (List.hd outcome.candidates).owner;
  let loose = Resolver.build { config with match_threshold = 0.0 } people in
  let o2 = Resolver.resolve loose probe ~k:4 in
  check_bool "k caps candidates" true (List.length o2.candidates <= 4);
  (* Sorted by score descending. *)
  let rec sorted = function
    | (a : Resolver.resolved) :: (b : Resolver.resolved) :: tl ->
        a.score >= b.score && sorted (b :: tl)
    | _ -> true
  in
  check_bool "sorted" true (sorted o2.candidates)

let test_resolve_deterministic_and_validation () =
  let people = roster 80 in
  let r = Resolver.build config people in
  let probe = Probe.of_demographic config.params people.(7) in
  let a = Resolver.resolve r probe ~k:10 and b = Resolver.resolve r probe ~k:10 in
  check_bool "deterministic outcome" true (a = b);
  check_bool "compatible" true (Resolver.compatible r probe);
  let alien = Probe.of_demographic (Bloom.keyed ~seed ~bits:128 ()) people.(7) in
  check_bool "incompatible geometry" false (Resolver.compatible r alien);
  Alcotest.check_raises "resolve rejects geometry"
    (Invalid_argument "Resolver.resolve: incompatible probe geometry") (fun () ->
      ignore (Resolver.resolve r alien ~k:10));
  Alcotest.check_raises "k must be positive"
    (Invalid_argument "Resolver.resolve: k must be positive") (fun () ->
      ignore (Resolver.resolve r probe ~k:0));
  Alcotest.check_raises "threshold validated"
    (Invalid_argument "Resolver.build: threshold out of [0, 1]") (fun () ->
      ignore (Resolver.build { config with match_threshold = 1.5 } people));
  (* Empty roster resolves nothing, scans nothing. *)
  let empty = Resolver.build config [||] in
  let o = Resolver.resolve empty probe ~k:10 in
  check_int "empty roster candidates" 0 (List.length o.candidates);
  check_int "empty roster scanned" 0 o.scanned

let test_partial_probe_renormalizes () =
  let people = roster 60 in
  let r = Resolver.build config people in
  (* A probe stating only the last name + dob still self-matches with
     score 1.0: weights renormalize over stated fields. *)
  let target = people.(11) in
  let partial = { target with first = ""; zip = "" } in
  let probe = Probe.of_demographic config.params partial in
  let outcome = Resolver.resolve r probe ~k:5 in
  match outcome.candidates with
  | top :: _ ->
      check_int "partial self-match" 11 top.owner;
      check_bool "renormalized score is 1.0" true (top.score = 1.0)
  | [] -> Alcotest.fail "partial probe resolved nothing"

(* ---- the engine's fuzzy path ---- *)

let test_index n m =
  let matrix = Bitmatrix.create ~rows:n ~cols:m in
  for j = 0 to n - 1 do
    for k = 0 to j mod 5 do
      Bitmatrix.set matrix ~row:j ~col:((j + (k * 7)) mod m) true
    done
  done;
  Eppi.Index.of_matrix matrix

let test_engine_fuzzy_reply () =
  let n = 40 in
  let people = roster n in
  let resolver = Resolver.build config people in
  let index = test_index n 16 in
  let engine = Serve.create ~resolver index in
  let probe = Probe.of_demographic config.params people.(5) in
  let generation, reply = Serve.query_fuzzy ~k:3 engine probe in
  check_int "generation" 1 generation;
  (match reply with
  | Serve.Candidates ((top : Serve.candidate) :: _) ->
      check_int "top owner" 5 top.owner;
      check_bool "row matches Index.query" true
        (top.providers = Eppi.Index.query index ~owner:5)
  | _ -> Alcotest.fail "expected candidates");
  (* No resolver: explicit reply, counted as rejected. *)
  let bare = Serve.create index in
  let _, r2 = Serve.query_fuzzy bare probe in
  check_bool "no resolver" true (r2 = Serve.No_resolver);
  (* Geometry mismatch. *)
  let alien = Probe.of_demographic (Bloom.keyed ~seed ~bits:128 ()) people.(5) in
  let _, r3 = Serve.query_fuzzy engine alien in
  check_bool "probe mismatch" true (r3 = Serve.Probe_mismatch);
  let snap = Serve.metrics engine in
  check_int "fuzzy conservation" snap.fuzzy_queries
    (snap.fuzzy_resolved + snap.fuzzy_empty + snap.fuzzy_rejected + snap.fuzzy_shed);
  Alcotest.check_raises "k validated" (Invalid_argument "Serve.query_fuzzy: k must be positive")
    (fun () -> ignore (Serve.query_fuzzy ~k:0 engine probe))

let test_engine_fuzzy_republish () =
  let n = 30 in
  let people = roster n in
  let resolver = Resolver.build config people in
  let index = test_index n 16 in
  let index2 = test_index n 24 in
  let engine = Serve.create ~resolver index in
  let probe = Probe.of_demographic config.params people.(2) in
  (* Republish without a resolver: the old one is carried over and keeps
     answering, now against the new postings. *)
  let gen2 = Serve.republish_index engine index2 in
  check_int "generation bumped" 2 gen2;
  check_bool "resolver carried over" true (Serve.resolver engine <> None);
  let generation, reply = Serve.query_fuzzy engine probe in
  check_int "answers from new generation" 2 generation;
  (match reply with
  | Serve.Candidates ((top : Serve.candidate) :: _) ->
      check_bool "row from new index" true (top.providers = Eppi.Index.query index2 ~owner:2)
  | _ -> Alcotest.fail "expected candidates after republish");
  (* Republish with a fresh resolver over a different roster: the pair
     swaps together. *)
  let people3 = Roster.generate (Rng.create 999) ~n in
  let resolver3 = Resolver.build config people3 in
  let gen3 = Serve.republish_index ~resolver:resolver3 engine (test_index n 16) in
  check_int "generation 3" 3 gen3;
  let probe3 = Probe.of_demographic config.params people3.(9) in
  let g, r = Serve.query_fuzzy engine probe3 in
  check_int "tagged with swap generation" 3 g;
  match r with
  | Serve.Candidates ((top : Serve.candidate) :: _) -> check_int "new roster resolves" 9 top.owner
  | _ -> Alcotest.fail "new resolver did not answer"

let test_engine_fuzzy_admission () =
  let n = 20 in
  let people = roster n in
  let resolver = Resolver.build config people in
  let admission = Some { Eppi_serve.Admission.rate = 1.0; burst = 2; queue_capacity = 10 } in
  let c = { Serve.default_config with admission } in
  let engine = Serve.create ~config:c ~resolver (test_index n 8) in
  let probe = Probe.of_demographic config.params people.(0) in
  (* Burst 2 at a frozen clock: two admitted, the third shed. *)
  let _, r1 = Serve.query_fuzzy ~now:0.0 engine probe in
  let _, r2 = Serve.query_fuzzy ~now:0.0 engine probe in
  let _, r3 = Serve.query_fuzzy ~now:0.0 engine probe in
  check_bool "first admitted" true (r1 <> Serve.Fuzzy_shed);
  check_bool "second admitted" true (r2 <> Serve.Fuzzy_shed);
  check_bool "third shed" true (r3 = Serve.Fuzzy_shed);
  let snap = Serve.metrics engine in
  check_int "shed counted" 1 snap.fuzzy_shed;
  check_int "conservation" snap.fuzzy_queries
    (snap.fuzzy_resolved + snap.fuzzy_empty + snap.fuzzy_rejected + snap.fuzzy_shed)

let test_workload_fuzzy () =
  let people = roster 50 in
  let w = Eppi_serve.Workload.fuzzy (Rng.create 3) ~roster:people ~count:200 in
  check_int "count" 200 (Array.length w);
  Array.iter
    (fun (truth, observed) ->
      check_bool "truth in range" true (truth >= 0 && truth < 50);
      (* corrupt never blanks a field, so the observed record stays a
         plausible registration of the truth. *)
      check_bool "observed non-empty" true
        (String.length observed.Demographic.first > 0 && String.length observed.last > 0))
    w;
  (* Zipf skew: owner 0 is hottest. *)
  let count0 = Array.fold_left (fun acc (t, _) -> if t = 0 then acc + 1 else acc) 0 w in
  check_bool "zipf head" true (count0 > 200 / 50);
  Alcotest.check_raises "empty roster" (Invalid_argument "Workload.fuzzy: empty roster")
    (fun () -> ignore (Eppi_serve.Workload.fuzzy (Rng.create 3) ~roster:[||] ~count:10))

let () =
  Alcotest.run "fuzzy"
    [
      ( "probe",
        [
          Alcotest.test_case "shape, determinism, keys" `Quick test_probe_shape;
        ] );
      ( "roster",
        [
          Alcotest.test_case "csv round-trip" `Quick test_roster_roundtrip;
          Alcotest.test_case "malformed csv" `Quick test_roster_malformed;
        ] );
      ( "resolver",
        [
          Alcotest.test_case "exact self-resolution" `Quick test_resolve_exact_self;
          Alcotest.test_case "corrupted variants recall" `Quick test_resolve_corrupted;
          Alcotest.test_case "candidate-set padding floor" `Quick test_resolve_padding_floor;
          Alcotest.test_case "threshold and k" `Quick test_resolve_threshold_and_k;
          Alcotest.test_case "determinism and validation" `Quick
            test_resolve_deterministic_and_validation;
          Alcotest.test_case "partial probe renormalizes" `Quick test_partial_probe_renormalizes;
        ] );
      ( "engine",
        [
          Alcotest.test_case "fuzzy reply shapes" `Quick test_engine_fuzzy_reply;
          Alcotest.test_case "resolver hot-swap" `Quick test_engine_fuzzy_republish;
          Alcotest.test_case "admission sheds" `Quick test_engine_fuzzy_admission;
          Alcotest.test_case "typo workload" `Quick test_workload_fuzzy;
        ] );
    ]
