(* Tests for the GMW runtime: agreement with plaintext evaluation (including
   randomized circuits), communication accounting, the secrecy of opened
   values, and the cost model's monotonicity. *)

open Eppi_prelude
open Eppi_circuit
open Eppi_mpc
module B = Circuit.Builder

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let millionaires_compiled width = Eppi_sfdl.Compile.compile_source (Eppi_sfdl.Programs.millionaires ~width)

let test_gmw_matches_plaintext_millionaires () =
  let compiled = millionaires_compiled 8 in
  let rng = Rng.create 1 in
  List.iter
    (fun (a, b) ->
      let inputs =
        Eppi_sfdl.Compile.encode_inputs compiled
          [ ("a", Eppi_sfdl.Compile.Dint a); ("b", Eppi_sfdl.Compile.Dint b) ]
      in
      let plain = Circuit.eval compiled.circuit ~inputs in
      let secure = Gmw.execute rng compiled.circuit ~inputs in
      Alcotest.(check (array bool)) (Printf.sprintf "outputs for (%d, %d)" a b) plain secure.outputs)
    [ (3, 7); (7, 3); (255, 255); (0, 0); (128, 127) ]

let test_gmw_three_party_sum () =
  let compiled = Eppi_sfdl.Compile.compile_source (Eppi_sfdl.Programs.sum3 ~width:8) in
  let rng = Rng.create 2 in
  let inputs =
    Eppi_sfdl.Compile.encode_inputs compiled
      [
        ("x0", Eppi_sfdl.Compile.Dint 11);
        ("x1", Eppi_sfdl.Compile.Dint 22);
        ("x2", Eppi_sfdl.Compile.Dint 33);
      ]
  in
  let secure = Gmw.execute rng compiled.circuit ~inputs in
  let outputs = Eppi_sfdl.Compile.decode_outputs compiled secure.outputs in
  (match Eppi_sfdl.Compile.lookup_output outputs "total" with
  | Eppi_sfdl.Compile.Dint v -> check_int "sum" 66 v
  | _ -> Alcotest.fail "bad shape")

let random_circuit rng ~parties ~gates =
  (* A random DAG of gates over a few input bits per party. *)
  let b = B.create ~n_parties:parties () in
  let wires = ref [] in
  for p = 0 to parties - 1 do
    for _ = 1 to 3 do
      wires := B.input b ~party:p :: !wires
    done
  done;
  let pick () =
    let l = !wires in
    List.nth l (Rng.int rng (List.length l))
  in
  for _ = 1 to gates do
    let w =
      match Rng.int rng 4 with
      | 0 -> B.and_ b (pick ()) (pick ())
      | 1 -> B.xor_ b (pick ()) (pick ())
      | 2 -> B.or_ b (pick ()) (pick ())
      | _ -> B.not_ b (pick ())
    in
    wires := w :: !wires
  done;
  List.iteri (fun i w -> if i < 8 then B.output b w) !wires;
  B.finish b

let test_gmw_random_circuits () =
  let rng = Rng.create 3 in
  for round = 1 to 25 do
    let parties = 2 + Rng.int rng 4 in
    let circuit = random_circuit rng ~parties ~gates:40 in
    let inputs = Array.init parties (fun _ -> Array.init 3 (fun _ -> Rng.bool rng)) in
    let plain = Circuit.eval circuit ~inputs in
    let secure = Gmw.execute rng circuit ~inputs in
    Alcotest.(check (array bool)) (Printf.sprintf "random circuit %d" round) plain secure.outputs
  done

let test_gmw_missing_input_rejected () =
  let compiled = millionaires_compiled 4 in
  let rng = Rng.create 4 in
  Alcotest.check_raises "short input" (Invalid_argument "Gmw.execute: missing input bit")
    (fun () -> ignore (Gmw.execute rng compiled.circuit ~inputs:[| [| true |]; [| true |] |]))

let test_gmw_comm_accounting () =
  let compiled = millionaires_compiled 8 in
  let rng = Rng.create 5 in
  let inputs =
    Eppi_sfdl.Compile.encode_inputs compiled
      [ ("a", Eppi_sfdl.Compile.Dint 5); ("b", Eppi_sfdl.Compile.Dint 9) ]
  in
  let result = Gmw.execute rng compiled.circuit ~inputs in
  let stats = Circuit.stats compiled.circuit in
  let estimate =
    Gmw.comm_estimate ~parties:2 stats ~outputs:(Array.length (Circuit.outputs compiled.circuit))
  in
  check_int "rounds agree" estimate.rounds result.comm.rounds;
  check_int "messages agree" estimate.messages result.comm.messages;
  check_int "bytes agree" estimate.bytes result.comm.bytes;
  check_int "rounds = input + layers + output" (stats.and_depth + 2) result.comm.rounds

let test_gmw_comm_scales_with_parties () =
  let stats =
    Circuit.stats
      (let b = B.create ~n_parties:2 () in
       let x = B.input b ~party:0 and y = B.input b ~party:1 in
       B.output b (B.and_ b x y);
       B.finish b)
  in
  let c2 = Gmw.comm_estimate ~parties:2 stats ~outputs:1 in
  let c8 = Gmw.comm_estimate ~parties:8 stats ~outputs:1 in
  check_bool "more parties, more messages" true (c8.messages > c2.messages);
  check_bool "more parties, more bytes" true (c8.bytes > c2.bytes)

let test_gmw_views_shapes () =
  let compiled = millionaires_compiled 4 in
  let rng = Rng.create 6 in
  let inputs =
    Eppi_sfdl.Compile.encode_inputs compiled
      [ ("a", Eppi_sfdl.Compile.Dint 3); ("b", Eppi_sfdl.Compile.Dint 12) ]
  in
  let result = Gmw.execute rng compiled.circuit ~inputs in
  check_int "one view per party" 2 (Array.length result.views);
  let stats = Circuit.stats compiled.circuit in
  Array.iter
    (fun (v : Gmw.view) ->
      check_int "view covers all wires" (Circuit.num_wires compiled.circuit)
        (Bitvec.length v.wire_shares);
      check_int "one opening pair per and gate" stats.and_gates (Array.length v.opened))
    result.views

let test_gmw_openings_secret_independent () =
  (* The opened (d, e) values are one-time-pad masked: their distribution
     must not depend on the inputs.  Compare the rate of 1s across two very
     different input settings over many runs. *)
  let compiled = millionaires_compiled 6 in
  let ones_rate value =
    let rng = Rng.create 777 in
    let inputs =
      Eppi_sfdl.Compile.encode_inputs compiled
        [ ("a", Eppi_sfdl.Compile.Dint value); ("b", Eppi_sfdl.Compile.Dint (63 - value)) ]
    in
    let total = ref 0 and ones = ref 0 in
    for _ = 1 to 400 do
      let result = Gmw.execute rng compiled.circuit ~inputs in
      Array.iter
        (fun (d, e) ->
          total := !total + 2;
          if d then incr ones;
          if e then incr ones)
        result.views.(0).opened
    done;
    float_of_int !ones /. float_of_int !total
  in
  let r0 = ones_rate 0 and r63 = ones_rate 63 in
  check_bool "opened bits ~uniform (all zeros input)" true (Float.abs (r0 -. 0.5) < 0.02);
  check_bool "opened bits ~uniform (all ones input)" true (Float.abs (r63 -. 0.5) < 0.02);
  check_bool "distributions agree across inputs" true (Float.abs (r0 -. r63) < 0.03)

let test_gmw_output_deterministic_across_randomness () =
  (* Different protocol randomness must never change the function value. *)
  let compiled = millionaires_compiled 8 in
  let inputs =
    Eppi_sfdl.Compile.encode_inputs compiled
      [ ("a", Eppi_sfdl.Compile.Dint 200); ("b", Eppi_sfdl.Compile.Dint 100) ]
  in
  let reference = (Gmw.execute (Rng.create 1) compiled.circuit ~inputs).outputs in
  for seed = 2 to 40 do
    let result = Gmw.execute (Rng.create seed) compiled.circuit ~inputs in
    Alcotest.(check (array bool)) (Printf.sprintf "seed %d" seed) reference result.outputs
  done

(* ---------- garbled circuits ---------- *)

let test_garbled_matches_plaintext () =
  let compiled = millionaires_compiled 8 in
  let rng = Rng.create 61 in
  List.iter
    (fun (a, b) ->
      let inputs =
        Eppi_sfdl.Compile.encode_inputs compiled
          [ ("a", Eppi_sfdl.Compile.Dint a); ("b", Eppi_sfdl.Compile.Dint b) ]
      in
      let plain = Circuit.eval compiled.circuit ~inputs in
      let garbled = Garbled.execute rng compiled.circuit ~inputs in
      Alcotest.(check (array bool)) (Printf.sprintf "(%d, %d)" a b) plain garbled.outputs)
    [ (3, 7); (7, 3); (255, 255); (0, 0); (128, 127); (1, 0) ]

let test_garbled_matches_gmw () =
  (* The two MPC backends must compute the same function. *)
  let compiled =
    Eppi_sfdl.Compile.compile_source
      (Eppi_sfdl.Programs.count_below ~c:2 ~q:13 ~thresholds:[| 5; 9; 1 |])
  in
  let rng = Rng.create 62 in
  let q = Eppi_prelude.Modarith.modulus 13 in
  for _ = 1 to 20 do
    let freqs = Array.init 3 (fun _ -> Rng.int rng 13) in
    let shares = Array.map (fun v -> Eppi_secretshare.Additive.share rng ~q ~c:2 v) freqs in
    let inputs =
      Eppi_sfdl.Compile.encode_inputs compiled
        [
          ("s0", Eppi_sfdl.Compile.Dints (Array.map (fun s -> s.(0)) shares));
          ("s1", Eppi_sfdl.Compile.Dints (Array.map (fun s -> s.(1)) shares));
        ]
    in
    let garbled = Garbled.execute rng compiled.circuit ~inputs in
    let gmw = Gmw.execute rng compiled.circuit ~inputs in
    Alcotest.(check (array bool)) "backends agree" gmw.outputs garbled.outputs
  done

let test_garbled_random_circuits () =
  let rng = Rng.create 63 in
  for round = 1 to 25 do
    let circuit = random_circuit rng ~parties:2 ~gates:40 in
    let inputs = Array.init 2 (fun _ -> Array.init 3 (fun _ -> Rng.bool rng)) in
    let plain = Circuit.eval circuit ~inputs in
    let garbled = Garbled.execute rng circuit ~inputs in
    Alcotest.(check (array bool)) (Printf.sprintf "random circuit %d" round) plain garbled.outputs
  done

let test_garbled_rejects_many_parties () =
  let compiled = Eppi_sfdl.Compile.compile_source (Eppi_sfdl.Programs.sum3 ~width:4) in
  let rng = Rng.create 64 in
  let inputs =
    Eppi_sfdl.Compile.encode_inputs compiled
      [
        ("x0", Eppi_sfdl.Compile.Dint 1);
        ("x1", Eppi_sfdl.Compile.Dint 2);
        ("x2", Eppi_sfdl.Compile.Dint 3);
      ]
  in
  Alcotest.check_raises "3 parties rejected"
    (Invalid_argument "Garbled.execute: at most two parties (garbler and evaluator)")
    (fun () -> ignore (Garbled.execute rng compiled.circuit ~inputs))

let test_garbled_comm_accounting () =
  let compiled = millionaires_compiled 8 in
  let rng = Rng.create 65 in
  let inputs =
    Eppi_sfdl.Compile.encode_inputs compiled
      [ ("a", Eppi_sfdl.Compile.Dint 3); ("b", Eppi_sfdl.Compile.Dint 5) ]
  in
  let r = Garbled.execute rng compiled.circuit ~inputs in
  let stats = Circuit.stats compiled.circuit in
  let estimate = Garbled.comm_estimate stats ~evaluator_inputs:8 in
  check_int "tables" estimate.garbled_tables_bytes r.comm.garbled_tables_bytes;
  check_int "labels" estimate.label_transfer_bytes r.comm.label_transfer_bytes;
  check_int "ot per evaluator bit" 8 r.comm.ot_count;
  check_int "4 rows per and gate" (4 * 8 * stats.and_gates) r.comm.garbled_tables_bytes

let test_garbled_labels_hide_garbler_input () =
  (* The evaluator's view (active labels) must be distributed independently
     of the garbler's input: compare the mean low-bit rate across two
     opposite garbler inputs over many garblings. *)
  let compiled = millionaires_compiled 6 in
  let rate a_value =
    let rng = Rng.create 777 in
    let inputs =
      Eppi_sfdl.Compile.encode_inputs compiled
        [ ("a", Eppi_sfdl.Compile.Dint a_value); ("b", Eppi_sfdl.Compile.Dint 21) ]
    in
    let ones = ref 0 and total = ref 0 in
    for _ = 1 to 300 do
      let r = Garbled.execute rng compiled.circuit ~inputs in
      Array.iter
        (fun label ->
          incr total;
          if Int64.logand label 1L = 1L then incr ones)
        r.evaluator_labels
    done;
    float_of_int !ones /. float_of_int !total
  in
  let r0 = rate 0 and r63 = rate 63 in
  check_bool "labels ~uniform" true (Float.abs (r0 -. 0.5) < 0.02);
  check_bool "distribution input-independent" true (Float.abs (r0 -. r63) < 0.03)

let test_garbled_deterministic_function () =
  (* Different garbling randomness never changes the computed outputs. *)
  let compiled = millionaires_compiled 8 in
  let inputs =
    Eppi_sfdl.Compile.encode_inputs compiled
      [ ("a", Eppi_sfdl.Compile.Dint 100); ("b", Eppi_sfdl.Compile.Dint 200) ]
  in
  let reference = (Garbled.execute (Rng.create 1) compiled.circuit ~inputs).outputs in
  for seed = 2 to 30 do
    let r = Garbled.execute (Rng.create seed) compiled.circuit ~inputs in
    Alcotest.(check (array bool)) (Printf.sprintf "seed %d" seed) reference r.outputs
  done

(* ---------- cost model ---------- *)

let count_below_stats ~c ~n =
  let thresholds = Array.make n 5 in
  let compiled =
    Eppi_sfdl.Compile.compile_source (Eppi_sfdl.Programs.count_below ~c ~q:11 ~thresholds)
  in
  ( Circuit.stats compiled.circuit,
    Array.length (Circuit.outputs compiled.circuit) )

let test_cost_monotone_in_parties () =
  let stats, outputs = count_below_stats ~c:3 ~n:4 in
  let t3 = Cost.estimate ~network:Cost.lan ~parties:3 ~outputs stats in
  let t9 = Cost.estimate ~network:Cost.lan ~parties:9 ~outputs stats in
  check_bool "positive" true (t3 > 0.0);
  check_bool "monotone in parties" true (t9 > t3)

let test_cost_monotone_in_circuit () =
  let s1, o1 = count_below_stats ~c:3 ~n:2 in
  let s2, o2 = count_below_stats ~c:3 ~n:40 in
  let t1 = Cost.estimate ~network:Cost.lan ~parties:3 ~outputs:o1 s1 in
  let t2 = Cost.estimate ~network:Cost.lan ~parties:3 ~outputs:o2 s2 in
  check_bool "bigger circuit costs more" true (t2 > t1)

let test_cost_network_sensitivity () =
  let stats, outputs = count_below_stats ~c:3 ~n:4 in
  let lan = Cost.estimate ~network:Cost.lan ~parties:3 ~outputs stats in
  let wan =
    Cost.estimate ~network:{ latency = 0.05; bandwidth = 1_000_000.0 } ~parties:3 ~outputs stats
  in
  check_bool "slower network costs more" true (wan > lan)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"gmw agrees with plaintext on random millionaires" ~count:60
      (triple small_int (int_range 0 255) (int_range 0 255))
      (fun (seed, a, b) ->
        let compiled = millionaires_compiled 8 in
        let inputs =
          Eppi_sfdl.Compile.encode_inputs compiled
            [ ("a", Eppi_sfdl.Compile.Dint a); ("b", Eppi_sfdl.Compile.Dint b) ]
        in
        let rng = Rng.create seed in
        (Gmw.execute rng compiled.circuit ~inputs).outputs
        = Circuit.eval compiled.circuit ~inputs);
  ]

let () =
  Alcotest.run "mpc"
    [
      ( "gmw",
        [
          Alcotest.test_case "matches plaintext (millionaires)" `Quick
            test_gmw_matches_plaintext_millionaires;
          Alcotest.test_case "three-party sum" `Quick test_gmw_three_party_sum;
          Alcotest.test_case "random circuits" `Quick test_gmw_random_circuits;
          Alcotest.test_case "missing input rejected" `Quick test_gmw_missing_input_rejected;
          Alcotest.test_case "comm accounting" `Quick test_gmw_comm_accounting;
          Alcotest.test_case "comm scales with parties" `Quick test_gmw_comm_scales_with_parties;
          Alcotest.test_case "views shapes" `Quick test_gmw_views_shapes;
          Alcotest.test_case "openings secret-independent" `Quick
            test_gmw_openings_secret_independent;
          Alcotest.test_case "output deterministic across randomness" `Quick
            test_gmw_output_deterministic_across_randomness;
        ] );
      ( "garbled",
        [
          Alcotest.test_case "matches plaintext" `Quick test_garbled_matches_plaintext;
          Alcotest.test_case "matches gmw" `Quick test_garbled_matches_gmw;
          Alcotest.test_case "random circuits" `Quick test_garbled_random_circuits;
          Alcotest.test_case "rejects many parties" `Quick test_garbled_rejects_many_parties;
          Alcotest.test_case "comm accounting" `Quick test_garbled_comm_accounting;
          Alcotest.test_case "labels hide garbler input" `Quick
            test_garbled_labels_hide_garbler_input;
          Alcotest.test_case "function deterministic" `Quick
            test_garbled_deterministic_function;
        ] );
      ( "cost",
        [
          Alcotest.test_case "monotone in parties" `Quick test_cost_monotone_in_parties;
          Alcotest.test_case "monotone in circuit size" `Quick test_cost_monotone_in_circuit;
          Alcotest.test_case "network sensitivity" `Quick test_cost_network_sensitivity;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
