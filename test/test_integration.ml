(* Cross-library integration tests: full pipelines from dataset generation
   through secure construction, attack evaluation, and search. *)

open Eppi_prelude

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* The full effectiveness pipeline at laptop scale: generate a network,
   construct with each policy, evaluate the paper's success-ratio metric. *)
let test_dataset_to_success_ratio () =
  let rng = Rng.create 1 in
  let dataset = Eppi_dataset.Dataset.generate rng ~providers:2000 ~owners:300 in
  let dataset = Eppi_dataset.Dataset.uniform_epsilons rng dataset in
  List.iter
    (fun (policy, minimum) ->
      let r =
        Eppi.Construct.run (Rng.create 2) ~membership:dataset.membership
          ~epsilons:dataset.epsilons ~policy
      in
      let ratio =
        Eppi.Metrics.success_ratio ~membership:dataset.membership
          ~published:(Eppi.Index.matrix r.index) ~epsilons:dataset.epsilons
      in
      check_bool
        (Printf.sprintf "%s ratio %f >= %f" (Eppi.Policy.name policy) ratio minimum)
        true (ratio >= minimum))
    [ (Eppi.Policy.Chernoff 0.9, 0.9); (Eppi.Policy.Inc_exp 0.01, 0.5) ]

(* Non-grouping beats grouping on the same dataset (the Fig. 4 claim). *)
let test_eppi_beats_grouping () =
  let rng = Rng.create 3 in
  let dataset = Eppi_dataset.Dataset.generate rng ~providers:1000 ~owners:200 in
  let dataset = Eppi_dataset.Dataset.constant_epsilons dataset 0.8 in
  let eppi =
    Eppi.Construct.run (Rng.create 4) ~membership:dataset.membership
      ~epsilons:dataset.epsilons ~policy:(Eppi.Policy.Chernoff 0.9)
  in
  let eppi_ratio =
    Eppi.Metrics.success_ratio ~membership:dataset.membership
      ~published:(Eppi.Index.matrix eppi.index) ~epsilons:dataset.epsilons
  in
  let _, grouping_index =
    Eppi_grouping.Grouping.construct (Rng.create 5) ~membership:dataset.membership ~groups:200
  in
  let grouping_ratio =
    Eppi.Metrics.success_ratio ~membership:dataset.membership
      ~published:(Eppi.Index.matrix grouping_index) ~epsilons:dataset.epsilons
  in
  check_bool
    (Printf.sprintf "eppi %f > grouping %f" eppi_ratio grouping_ratio)
    true (eppi_ratio > grouping_ratio)

(* Distributed construction produces an index with the same statistical
   privacy as the centralized one. *)
let test_secure_path_statistical_agreement () =
  let m = 40 and n = 20 in
  let rng = Rng.create 6 in
  let membership = Bitmatrix.create ~rows:n ~cols:m in
  for j = 0 to n - 1 do
    let f = 1 + Rng.int rng 10 in
    let chosen = Rng.sample_without_replacement rng ~k:f ~n:m in
    Array.iter (fun p -> Bitmatrix.set membership ~row:j ~col:p true) chosen
  done;
  let epsilons = Array.init n (fun _ -> Rng.float rng 0.8) in
  let policy = Eppi.Policy.Chernoff 0.9 in
  let secure = Eppi_protocol.Construct.run (Rng.create 7) ~membership ~epsilons ~policy in
  let central = Eppi.Construct.run (Rng.create 8) ~membership ~epsilons ~policy in
  Alcotest.(check (array bool)) "same common sets" central.common secure.common;
  for j = 0 to n - 1 do
    check_bool "secure recall" true (Eppi.Index.recall_ok ~membership secure.index ~owner:j);
    check_bool "central recall" true (Eppi.Index.recall_ok ~membership central.index ~owner:j)
  done

(* Common-identity attack end-to-end: e-PPI with mixing bounds the
   attacker's confidence; a frequency-revealing baseline does not. *)
let test_common_identity_attack_end_to_end () =
  let m = 40 in
  let n_rare = 200 in
  let membership = Bitmatrix.create ~rows:(n_rare + 1) ~cols:m in
  for p = 0 to m - 1 do
    Bitmatrix.set membership ~row:0 ~col:p true
  done;
  let rng = Rng.create 9 in
  for j = 1 to n_rare do
    Bitmatrix.set membership ~row:j ~col:(Rng.int rng m) true
  done;
  let epsilons = Array.make (n_rare + 1) 0.75 in
  let r =
    Eppi.Construct.run (Rng.create 10) ~membership ~epsilons ~policy:Eppi.Policy.Basic
  in
  let threshold = Eppi.Policy.sigma_threshold Eppi.Policy.Basic ~epsilon:0.75 ~m in
  let attack =
    Eppi.Attack.common_identity_attack ~membership
      ~published:(Eppi.Index.matrix r.index) ~sigma_threshold:threshold
  in
  (* Mixing targets attacker confidence <= 1 - xi = 0.25; allow statistical
     slack since lambda draws are random. *)
  check_bool
    (Printf.sprintf "confidence %f bounded" attack.confidence)
    true (attack.confidence <= 0.45);
  check_bool "suspects include decoys" true (List.length attack.suspected > 1)

(* The full HIE story: locator service over a generated network, search with
   authorization, 100% recall, bounded attacker confidence. *)
let test_locator_end_to_end () =
  let providers = 30 and owners = 10 in
  let t = Eppi_locator.Locator.create ~providers ~owners in
  let rng = Rng.create 11 in
  let truth = Array.make_matrix owners providers false in
  for owner = 0 to owners - 1 do
    let visits = 1 + Rng.int rng 4 in
    let chosen = Rng.sample_without_replacement rng ~k:visits ~n:providers in
    Array.iter
      (fun p ->
        truth.(owner).(p) <- true;
        Eppi_locator.Locator.delegate t ~owner ~epsilon:0.6 ~provider:p
          ~body:(Printf.sprintf "owner%d@provider%d" owner p))
      chosen
  done;
  Eppi_locator.Locator.construct_ppi t ~policy:(Eppi.Policy.Chernoff 0.9);
  for owner = 0 to owners - 1 do
    let outcome =
      Eppi_locator.Locator.search t ~searcher:(Printf.sprintf "owner:%d" owner) ~owner
    in
    let found = List.map fst outcome.records |> List.sort compare in
    let expected =
      List.init providers Fun.id |> List.filter (fun p -> truth.(owner).(p))
    in
    Alcotest.(check (list int)) (Printf.sprintf "owner %d finds all records" owner) expected found
  done

(* MPC stack consistency: the SFDL-compiled CountBelow evaluated under GMW
   inside the protocol equals a direct plaintext computation of the same
   classification. *)
let test_mpc_stack_consistency () =
  let m = 15 and n = 8 in
  let rng = Rng.create 12 in
  let membership = Bitmatrix.create ~rows:n ~cols:m in
  for j = 0 to n - 1 do
    let f = Rng.int rng (m + 1) in
    let chosen = Rng.sample_without_replacement rng ~k:f ~n:m in
    Array.iter (fun p -> Bitmatrix.set membership ~row:j ~col:p true) chosen
  done;
  let epsilons = Array.init n (fun j -> 0.1 +. (0.8 *. float_of_int j /. float_of_int n)) in
  let policy = Eppi.Policy.Inc_exp 0.02 in
  let secure = Eppi_protocol.Construct.run (Rng.create 13) ~membership ~epsilons ~policy in
  for j = 0 to n - 1 do
    let f = Bitmatrix.row_count membership j in
    let expected =
      Eppi.Policy.is_common policy
        ~sigma:(float_of_int f /. float_of_int m)
        ~epsilon:epsilons.(j) ~m
    in
    check_bool (Printf.sprintf "identity %d classified correctly" j) expected secure.common.(j)
  done

(* Search-cost growth with epsilon (the tech-report experiment, in vitro). *)
let test_search_cost_grows_with_epsilon () =
  let cost epsilon =
    let t = Eppi_locator.Locator.create ~providers:400 ~owners:1 in
    Eppi_locator.Locator.delegate t ~owner:0 ~epsilon ~provider:3 ~body:"r";
    Eppi_locator.Locator.construct_ppi ~seed:21 t ~policy:(Eppi.Policy.Chernoff 0.9);
    match Eppi_locator.Locator.query_ppi_result t ~owner:0 with
    | Ok providers -> List.length providers
    | Error Eppi_locator.Locator.No_index -> Alcotest.fail "index just constructed"
  in
  let c_low = cost 0.1 and c_high = cost 0.9 in
  check_bool (Printf.sprintf "cost %d < %d" c_low c_high) true (c_low < c_high)

(* Dataset CSV roundtrip feeding construction: persistence workflow. *)
let test_persistence_workflow () =
  let rng = Rng.create 14 in
  let dataset = Eppi_dataset.Dataset.generate rng ~providers:100 ~owners:50 in
  let dataset = Eppi_dataset.Dataset.uniform_epsilons rng dataset in
  let csv = Eppi_dataset.Dataset.to_csv dataset in
  let reloaded = Eppi_dataset.Dataset.of_csv csv in
  let a =
    Eppi.Construct.run (Rng.create 15) ~membership:dataset.membership
      ~epsilons:dataset.epsilons ~policy:Eppi.Policy.Basic
  in
  let b =
    Eppi.Construct.run (Rng.create 15) ~membership:reloaded.membership
      ~epsilons:reloaded.epsilons ~policy:Eppi.Policy.Basic
  in
  check_bool "identical construction after roundtrip" true
    (Bitmatrix.equal (Eppi.Index.matrix a.index) (Eppi.Index.matrix b.index));
  check_int "same commons"
    (Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 a.common)
    (Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 b.common)

(* End-to-end secure construction over a LOSSY network: the reliability
   layer keeps the index correct. *)
let test_secure_construction_over_lossy_network () =
  let m = 15 and n = 6 in
  let rng = Rng.create 20 in
  let membership = Bitmatrix.create ~rows:n ~cols:m in
  for j = 0 to n - 1 do
    let f = 1 + Rng.int rng 6 in
    let chosen = Rng.sample_without_replacement rng ~k:f ~n:m in
    Array.iter (fun p -> Bitmatrix.set membership ~row:j ~col:p true) chosen
  done;
  let epsilons = Array.make n 0.5 in
  let config =
    { Eppi_simnet.Simnet.default_config with drop_probability = 0.25; seed = 11 }
  in
  let r =
    Eppi_protocol.Construct.run ~config
      ~reliability:Eppi_protocol.Secsumshare.default_reliability (Rng.create 21) ~membership
      ~epsilons ~policy:Eppi.Policy.Basic
  in
  for j = 0 to n - 1 do
    check_bool "recall despite loss" true (Eppi.Index.recall_ok ~membership r.index ~owner:j);
    let f = Bitmatrix.row_count membership j in
    let expected =
      Eppi.Policy.is_common Eppi.Policy.Basic
        ~sigma:(float_of_int f /. float_of_int m)
        ~epsilon:0.5 ~m
    in
    check_bool "classification exact despite loss" true (r.common.(j) = expected)
  done

(* PIR via SFDL secret indexing, executed under the garbled-circuit backend:
   the full front-to-back stack for a two-party private lookup. *)
let test_garbled_pir_roundtrip () =
  let pir_src =
    {|program pir;
party server;
party client;
input table : uint<8>[8] of server;
input want : uint<4> of client;
output value : uint<8>;
main { value = table[want]; }
|}
  in
  let compiled = Eppi_sfdl.Compile.compile_source pir_src in
  let table = Array.init 8 (fun i -> (i * 31) mod 256) in
  for want = 0 to 9 do
    let values =
      [ ("table", Eppi_sfdl.Compile.Dints table); ("want", Eppi_sfdl.Compile.Dint want) ]
    in
    let inputs = Eppi_sfdl.Compile.encode_inputs compiled values in
    let garbled = Eppi_mpc.Garbled.execute (Rng.create (want + 1)) compiled.circuit ~inputs in
    let interp = Eppi_sfdl.Interp.run_source pir_src ~inputs:values in
    (match
       ( Eppi_sfdl.Compile.decode_outputs compiled garbled.outputs,
         Eppi_sfdl.Compile.lookup_output interp "value" )
     with
    | [ ("value", Eppi_sfdl.Compile.Dint got) ], Eppi_sfdl.Compile.Dint expected ->
        check_int (Printf.sprintf "pir[%d]" want) expected got;
        check_int "semantics" (if want < 8 then table.(want) else 0) got
    | _ -> Alcotest.fail "bad shapes")
  done

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "dataset to success ratio" `Slow test_dataset_to_success_ratio;
          Alcotest.test_case "eppi beats grouping" `Slow test_eppi_beats_grouping;
          Alcotest.test_case "secure path agreement" `Quick
            test_secure_path_statistical_agreement;
          Alcotest.test_case "common-identity attack end to end" `Quick
            test_common_identity_attack_end_to_end;
          Alcotest.test_case "locator end to end" `Quick test_locator_end_to_end;
          Alcotest.test_case "mpc stack consistency" `Quick test_mpc_stack_consistency;
          Alcotest.test_case "search cost grows with epsilon" `Quick
            test_search_cost_grows_with_epsilon;
          Alcotest.test_case "persistence workflow" `Quick test_persistence_workflow;
          Alcotest.test_case "secure construction over lossy network" `Quick
            test_secure_construction_over_lossy_network;
          Alcotest.test_case "garbled PIR roundtrip" `Quick test_garbled_pir_roundtrip;
        ] );
    ]
