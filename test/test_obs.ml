(* Tests for the tracing layer (lib/obs): disabled-path no-ops, span
   pairing and GC deltas, per-domain tracks, ring-buffer bounds, the
   Chrome trace-event export and the summary aggregation.

   Tracing state is global to the process, so every test runs under
   [with_session] (or explicitly resets), leaving the layer disabled and
   empty for the next test. *)

open Eppi_prelude
module Trace = Eppi_obs.Trace
module Chrome = Eppi_obs.Chrome
module Summary = Eppi_obs.Summary

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_session ?capacity_per_domain f =
  Trace.enable ?capacity_per_domain ();
  Fun.protect ~finally:Trace.reset f

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec find i = i + nl <= hl && (String.sub haystack i nl = needle || find (i + 1)) in
  find 0

let check_contains name haystack needle =
  check_bool (Printf.sprintf "%s: output contains %S" name needle) true
    (contains haystack needle)

(* ---------- enable / disable ---------- *)

let test_disabled_records_nothing () =
  check_bool "disabled by default" false (Trace.enabled ());
  Trace.span "ghost" (fun () -> ());
  Trace.begin_span "ghost2";
  Trace.end_span "ghost2";
  Trace.instant "ghost3";
  Trace.counter "ghost4" [ ("x", 1) ];
  check_int "no tracks" 0 (List.length (Trace.tracks ()));
  (* Enabling afterwards starts empty: nothing leaked from the disabled
     calls. *)
  with_session (fun () -> check_int "fresh session is empty" 0 (List.length (Trace.tracks ())))

let test_span_returns_value_and_reraises () =
  (* Both with tracing off... *)
  check_int "value (disabled)" 42 (Trace.span "s" (fun () -> 42));
  (match Trace.span "s" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure m -> check_bool "reraise (disabled)" true (m = "boom"));
  (* ...and with tracing on, where the raising span must still close. *)
  with_session (fun () ->
      check_int "value (enabled)" 42 (Trace.span "s" (fun () -> 42));
      (match Trace.span "s" (fun () -> failwith "boom") with
      | _ -> Alcotest.fail "expected failure"
      | exception Failure m -> check_bool "reraise (enabled)" true (m = "boom"));
      match Trace.tracks () with
      | [ tr ] ->
          let begins, ends =
            List.partition (fun (e : Trace.event) -> e.kind = Trace.Span_begin) tr.track_events
          in
          check_int "two begins" 2 (List.length begins);
          check_int "two ends" 2 (List.length ends);
          let raised =
            List.filter (fun (e : Trace.event) -> List.mem_assoc "raised" e.args) ends
          in
          check_int "raising span marked" 1 (List.length raised)
      | tracks -> Alcotest.failf "expected 1 track, got %d" (List.length tracks))

let test_session_restart_discards () =
  with_session (fun () ->
      Trace.span "old" (fun () -> ());
      Trace.enable ();
      (* A fresh enable is a fresh session: the "old" span is gone. *)
      Trace.span "new" (fun () -> ());
      match Trace.tracks () with
      | [ tr ] ->
          check_int "one begin + one end" 2 (List.length tr.track_events);
          List.iter
            (fun (e : Trace.event) -> check_bool "only the new span" true (e.name = "new"))
            tr.track_events
      | tracks -> Alcotest.failf "expected 1 track, got %d" (List.length tracks))

(* ---------- spans, nesting, GC deltas ---------- *)

let test_nested_spans_pair_up () =
  with_session (fun () ->
      Trace.span "outer" (fun () ->
          Trace.span "inner" (fun () -> Trace.instant "tick");
          Trace.span "inner" (fun () -> ()));
      match Trace.tracks () with
      | [ tr ] ->
          check_int "domain 0 records" 0 tr.track_domain;
          check_bool "main label" true (tr.track_label = "main");
          check_int "nothing dropped" 0 tr.track_dropped;
          let names = List.map (fun (e : Trace.event) -> e.name) tr.track_events in
          Alcotest.(check (list string))
            "recording order"
            [ "outer"; "inner"; "tick"; "inner"; "inner"; "inner"; "outer" ]
            names;
          (* Timestamps are monotone within a track. *)
          let ts = List.map (fun (e : Trace.event) -> e.ts) tr.track_events in
          check_bool "monotone timestamps" true (List.sort compare ts = ts)
      | tracks -> Alcotest.failf "expected 1 track, got %d" (List.length tracks))

let test_span_gc_args () =
  with_session (fun () ->
      Trace.span "alloc" ~args:[ ("items", 3) ] (fun () ->
          ignore (Sys.opaque_identity (Array.init 50_000 (fun i -> (i, i)))));
      match Trace.tracks () with
      | [ tr ] -> (
          match
            List.find_opt (fun (e : Trace.event) -> e.kind = Trace.Span_end) tr.track_events
          with
          | None -> Alcotest.fail "no span end"
          | Some e ->
              check_int "user arg kept" 3 (List.assoc "items" e.args);
              List.iter
                (fun key ->
                  check_bool (Printf.sprintf "gc key %s present" key) true
                    (List.mem_assoc key e.args))
                [ "minor_words"; "major_words"; "promoted_words"; "minor_gcs"; "major_gcs" ];
              check_bool "allocation attributed" true (List.assoc "minor_words" e.args > 0))
      | tracks -> Alcotest.failf "expected 1 track, got %d" (List.length tracks))

let test_unbalanced_end_dropped () =
  with_session (fun () ->
      Trace.end_span "never-opened";
      (match Trace.tracks () with
      | [] -> ()
      | [ tr ] -> check_int "no events from unbalanced end" 0 (List.length tr.track_events)
      | _ -> Alcotest.fail "unexpected tracks");
      (* And the layer still works afterwards. *)
      Trace.span "after" (fun () -> ());
      match Trace.tracks () with
      | [ tr ] -> check_int "span recorded after unbalanced end" 2 (List.length tr.track_events)
      | tracks -> Alcotest.failf "expected 1 track, got %d" (List.length tracks))

(* ---------- per-domain tracks and buffer bounds ---------- *)

let test_domains_get_own_tracks () =
  with_session (fun () ->
      Trace.span "caller" (fun () -> ());
      (* Two spawned domains record deterministically into their own
         tracks; a pool run on top exercises the same path under the
         chunked scheduler. *)
      let spawned =
        List.init 2 (fun k ->
            Domain.spawn (fun () -> Trace.span "spawned" ~args:[ ("k", k) ] (fun () -> ())))
      in
      List.iter Domain.join spawned;
      Pool.with_pool ~size:3 (fun pool ->
          Pool.parallel_iter pool
            (fun i -> Trace.span "work" ~args:[ ("i", i) ] (fun () -> ()))
            (Array.init 64 Fun.id));
      let tracks = Trace.tracks () in
      check_bool "at least three tracks" true (List.length tracks >= 3);
      let domains = List.map (fun (tr : Trace.track) -> tr.track_domain) tracks in
      check_bool "sorted by domain id" true (List.sort compare domains = domains);
      check_bool "exactly one main" true
        (List.length (List.filter (fun (tr : Trace.track) -> tr.track_label = "main") tracks) = 1);
      (* Every "work" span landed somewhere, each begin on the same track
         as its end. *)
      let total_work =
        List.fold_left
          (fun acc (tr : Trace.track) ->
            let b =
              List.length
                (List.filter
                   (fun (e : Trace.event) -> e.name = "work" && e.kind = Trace.Span_begin)
                   tr.track_events)
            and e =
              List.length
                (List.filter
                   (fun (e : Trace.event) -> e.name = "work" && e.kind = Trace.Span_end)
                   tr.track_events)
            in
            check_int (Printf.sprintf "track %d balanced" tr.track_domain) b e;
            acc + b)
          0 tracks
      in
      check_int "all 64 spans recorded" 64 total_work)

let test_ring_buffer_bounds () =
  with_session ~capacity_per_domain:16 (fun () ->
      for i = 0 to 99 do
        Trace.instant "tick" ~args:[ ("i", i) ]
      done;
      match Trace.tracks () with
      | [ tr ] ->
          check_int "kept exactly the capacity" 16 (List.length tr.track_events);
          check_int "rest counted as dropped" 84 tr.track_dropped;
          (* The buffer keeps the head of the session, not a rolling tail:
             the first events survive so phase starts are never lost. *)
          (match tr.track_events with
          | first :: _ -> check_int "first event kept" 0 (List.assoc "i" first.args)
          | [] -> Alcotest.fail "empty track")
      | tracks -> Alcotest.failf "expected 1 track, got %d" (List.length tracks));
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Trace.enable: capacity must be >= 1") (fun () ->
      Trace.enable ~capacity_per_domain:0 ());
  Trace.reset ()

(* The drop counter the daemon's ops replies expose: zero without a
   session, zero while the buffer still has room, and exactly the
   overflow once it fills — readable mid-recording. *)
let test_dropped_events_counter () =
  check_int "no session, no drops" 0 (Trace.dropped_events ());
  with_session ~capacity_per_domain:16 (fun () ->
      for _ = 1 to 10 do
        Trace.instant "tick"
      done;
      check_int "under capacity, no drops" 0 (Trace.dropped_events ());
      for _ = 1 to 90 do
        Trace.instant "tick"
      done;
      check_int "overflow counted live" 84 (Trace.dropped_events ()));
  check_int "reset clears the count" 0 (Trace.dropped_events ())

(* ---------- Chrome export ---------- *)

let test_chrome_export () =
  with_session (fun () ->
      Trace.span "phase.test" ~args:[ ("bytes", 123) ] (fun () -> Trace.instant "marker");
      Trace.counter "pool/worker-0" [ ("busy_us", 7); ("jobs", 2) ];
      let json = Chrome.to_json (Trace.tracks ()) in
      check_contains "envelope" json "\"traceEvents\"";
      check_contains "span name" json "\"name\":\"phase.test\"";
      check_contains "span begin" json "\"ph\":\"B\"";
      check_contains "span end" json "\"ph\":\"E\"";
      check_contains "span arg" json "\"bytes\":123";
      check_contains "instant" json "\"ph\":\"i\"";
      check_contains "counter phase" json "\"ph\":\"C\"";
      check_contains "counter name" json "\"name\":\"pool/worker-0\"";
      check_contains "counter series" json "\"busy_us\":7";
      check_contains "thread name metadata" json "\"thread_name\"";
      check_contains "main track label" json "\"name\":\"main\"";
      (* Timestamps are rebased: the earliest event sits at t = 0. *)
      check_contains "rebased timestamps" json "\"ts\":0.000")

let test_chrome_escape () =
  Alcotest.(check string) "plain" "abc" (Chrome.escape "abc");
  Alcotest.(check string) "quote" "a\\\"b" (Chrome.escape "a\"b");
  Alcotest.(check string) "backslash" "a\\\\b" (Chrome.escape "a\\b");
  Alcotest.(check string) "newline" "a\\nb" (Chrome.escape "a\nb");
  Alcotest.(check string) "control" "a\\u0001b" (Chrome.escape "a\001b")

(* ---------- Summary ---------- *)

let test_summary_aggregates () =
  with_session (fun () ->
      Trace.span "phase.a" ~args:[ ("bytes", 100); ("messages", 4) ] (fun () -> ());
      Trace.span "phase.a" ~args:[ ("bytes", 50); ("messages", 1) ] (fun () -> ());
      Trace.span "phase.b" (fun () -> ());
      Trace.counter "pool/worker-0" [ ("jobs", 1) ];
      Trace.counter "pool/worker-0" [ ("jobs", 5) ];
      let s = Summary.compute (Trace.tracks ()) in
      check_int "tracks" 1 s.track_count;
      check_int "dropped" 0 s.dropped;
      check_bool "wall positive" true (s.wall_ns > 0);
      let row name = List.find (fun (r : Summary.row) -> r.name = name) s.rows in
      let a = row "phase.a" in
      check_int "phase.a count" 2 a.count;
      check_int "phase.a bytes summed" 150 a.bytes;
      check_int "phase.a messages summed" 5 a.messages;
      check_bool "phase.a time positive" true (a.total_ns > 0);
      check_int "phase.b count" 1 (row "phase.b").count;
      (* Counter series keep the last sample. *)
      check_int "counter last sample" 5 (List.assoc "pool/worker-0.jobs" s.counters);
      (* Rows are sorted by total time, descending. *)
      let totals = List.map (fun (r : Summary.row) -> r.total_ns) s.rows in
      check_bool "rows sorted" true (List.sort (fun x y -> compare y x) totals = totals);
      let json = Summary.counters_json s in
      check_contains "counters json wall" json "\"trace.wall_ns\"";
      check_contains "counters json series" json "\"pool/worker-0.jobs\": 5")

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
          Alcotest.test_case "span returns and reraises" `Quick
            test_span_returns_value_and_reraises;
          Alcotest.test_case "session restart discards" `Quick test_session_restart_discards;
          Alcotest.test_case "nested spans pair up" `Quick test_nested_spans_pair_up;
          Alcotest.test_case "span carries GC deltas" `Quick test_span_gc_args;
          Alcotest.test_case "unbalanced end dropped" `Quick test_unbalanced_end_dropped;
          Alcotest.test_case "one track per domain" `Quick test_domains_get_own_tracks;
          Alcotest.test_case "ring buffer bounds" `Quick test_ring_buffer_bounds;
          Alcotest.test_case "dropped-events counter" `Quick test_dropped_events_counter;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace events" `Quick test_chrome_export;
          Alcotest.test_case "json escaping" `Quick test_chrome_escape;
          Alcotest.test_case "summary aggregates" `Quick test_summary_aggregates;
        ] );
    ]
