(* Tests for the record-linkage subsystem: text primitives, Bloom-filter
   encodings, the generator, and end-to-end linkage quality. *)

open Eppi_prelude
open Eppi_linkage

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_close ?(tol = 1e-9) name a b =
  check_bool (Printf.sprintf "%s: |%g - %g| <= %g" name a b tol) true (Float.abs (a -. b) <= tol)

(* ---------- text primitives ---------- *)

let test_normalize () =
  Alcotest.(check string) "lower + strip" "oconnor3" (Text.normalize "O'Connor 3!");
  Alcotest.(check string) "empty" "" (Text.normalize "--- ---")

let test_soundex_known_values () =
  (* Classic reference values. *)
  List.iter
    (fun (name, code) -> Alcotest.(check string) name code (Text.soundex name))
    [
      ("Robert", "R163");
      ("Rupert", "R163");
      ("Ashcraft", "A261");
      ("Tymczak", "T522");
      ("Pfister", "P236");
      ("Honeyman", "H555");
    ]

let test_soundex_degenerate () =
  Alcotest.(check string) "no letters" "0000" (Text.soundex "12345");
  Alcotest.(check string) "single letter" "A000" (Text.soundex "a")

let test_soundex_matches_typos () =
  check_bool "smith ~ smyth" true (Text.soundex "smith" = Text.soundex "smyth")

let test_levenshtein () =
  check_int "identity" 0 (Text.levenshtein "kitten" "kitten");
  check_int "classic" 3 (Text.levenshtein "kitten" "sitting");
  check_int "empty" 5 (Text.levenshtein "" "hello");
  check_close "similarity" (1.0 -. (3.0 /. 7.0)) (Text.levenshtein_similarity "kitten" "sitting")

let test_bigrams_dice () =
  Alcotest.(check (list string)) "padded bigrams" [ "_a"; "an"; "nn"; "n_" ] (Text.bigrams "ann");
  check_close "self dice" 1.0 (Text.dice "johnson" "johnson");
  check_bool "typo stays close" true (Text.dice "johnson" "jonson" > 0.6);
  check_bool "different names far" true (Text.dice "johnson" "garcia" < 0.3);
  check_close "both empty" 1.0 (Text.dice "" "")

(* ---------- bloom encodings ---------- *)

let test_bloom_deterministic () =
  let p = Bloom.default_params in
  let a = Bloom.encode p "patricia" and b = Bloom.encode p "patricia" in
  check_close "same field, same filter" 1.0 (Bloom.dice a b);
  check_bool "nonempty" true (Bloom.bit_count a > 0)

let test_bloom_seed_matters () =
  let a = Bloom.encode Bloom.default_params "patricia" in
  let b = Bloom.encode { Bloom.default_params with seed = 99 } "patricia" in
  Alcotest.check_raises "different keys incompatible"
    (Invalid_argument "Bloom.dice: incompatible parameters") (fun () -> ignore (Bloom.dice a b))

let test_bloom_approximates_dice () =
  (* Bloom Dice tracks plaintext bigram Dice within a modest error. *)
  let p = { Bloom.bits = 256; hashes = 4; seed = 11 } in
  let pairs =
    [ ("johnson", "jonson"); ("garcia", "garzia"); ("smith", "lee"); ("martinez", "martinez") ]
  in
  List.iter
    (fun (a, b) ->
      let plain = Text.dice a b in
      let encoded = Bloom.dice (Bloom.encode p a) (Bloom.encode p b) in
      check_bool
        (Printf.sprintf "%s/%s: |%f - %f| < 0.2" a b plain encoded)
        true
        (Float.abs (plain -. encoded) < 0.2))
    pairs

(* ---------- generator ---------- *)

let test_population_shape () =
  let rng = Rng.create 1 in
  let regs = Demographic.population rng ~persons:50 ~providers:10 ~max_registrations:4 in
  check_bool "at least one registration per person" true (Array.length regs >= 50);
  Array.iter
    (fun (r : Demographic.registration) ->
      check_bool "provider valid" true (r.provider >= 0 && r.provider < 10);
      check_bool "truth valid" true (r.truth >= 0 && r.truth < 50))
    regs;
  (* A person never registers twice at the same provider. *)
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun (r : Demographic.registration) ->
      check_bool "distinct providers per person" false (Hashtbl.mem seen (r.truth, r.provider));
      Hashtbl.add seen (r.truth, r.provider) ())
    regs

let test_corrupt_preserves_most () =
  let rng = Rng.create 2 in
  let person = Demographic.random_person rng in
  let unchanged = ref 0 in
  for _ = 1 to 200 do
    let c = Demographic.corrupt rng person in
    if c = person then incr unchanged
  done;
  (* Default noise: most copies survive unchanged-ish but not all. *)
  check_bool "some registrations identical" true (!unchanged > 50);
  check_bool "some registrations corrupted" true (!unchanged < 200)

(* ---------- linkage ---------- *)

let test_field_score_extremes () =
  let rng = Rng.create 3 in
  let a = Demographic.random_person rng in
  check_close "identity scores 1" 1.0 (Linkage.field_score Linkage.default_config a a);
  let b = Demographic.random_person rng in
  (* Random strangers usually score low. *)
  check_bool "strangers score below threshold" true
    (Linkage.field_score Linkage.default_config a b < 0.82)

let quality_of config seed =
  let rng = Rng.create seed in
  let regs = Demographic.population rng ~persons:120 ~providers:15 ~max_registrations:4 in
  let linked = Linkage.link config regs in
  (linked, Linkage.evaluate linked regs, regs)

let test_link_plaintext_quality () =
  let _, q, _ = quality_of Linkage.default_config 4 in
  check_bool (Printf.sprintf "precision %f" q.precision) true (q.precision > 0.9);
  check_bool (Printf.sprintf "recall %f" q.recall) true (q.recall > 0.75);
  check_bool (Printf.sprintf "f1 %f" q.f1) true (q.f1 > 0.85)

let test_link_bloom_quality () =
  let config =
    { Linkage.mode = Linkage.Bloom { Bloom.bits = 256; hashes = 4; seed = 5 };
      match_threshold = 0.82 }
  in
  let _, q, _ = quality_of config 4 in
  (* The privacy-preserving mode must stay close to plaintext quality. *)
  check_bool (Printf.sprintf "bloom precision %f" q.precision) true (q.precision > 0.85);
  check_bool (Printf.sprintf "bloom recall %f" q.recall) true (q.recall > 0.7)

let test_link_no_noise_perfect_recall () =
  let noise = { Demographic.typo_rate = 0.0; dob_error_rate = 0.0; zip_error_rate = 0.0 } in
  let rng = Rng.create 6 in
  let regs = Demographic.population ~noise rng ~persons:60 ~providers:10 ~max_registrations:3 in
  let linked = Linkage.link Linkage.default_config regs in
  let q = Linkage.evaluate linked regs in
  check_close "perfect recall without noise" 1.0 q.recall

let test_link_blocking_reduces_work () =
  let rng = Rng.create 7 in
  let regs = Demographic.population rng ~persons:120 ~providers:15 ~max_registrations:4 in
  let linked = Linkage.link Linkage.default_config regs in
  let n = Array.length regs in
  let all_pairs = n * (n - 1) / 2 in
  check_bool
    (Printf.sprintf "blocking: %d of %d pairs" linked.candidate_pairs all_pairs)
    true
    (linked.candidate_pairs < all_pairs / 2)

let test_to_membership () =
  let rng = Rng.create 8 in
  let regs = Demographic.population rng ~persons:40 ~providers:8 ~max_registrations:3 in
  let linked = Linkage.link Linkage.default_config regs in
  let membership = Linkage.to_membership linked regs ~providers:8 in
  check_int "rows = entities" linked.entities (Bitmatrix.rows membership);
  check_int "cols = providers" 8 (Bitmatrix.cols membership);
  (* Every registration is reflected. *)
  Array.iteri
    (fun i (r : Demographic.registration) ->
      check_bool "membership set" true
        (Bitmatrix.get membership ~row:linked.assignment.(i) ~col:r.provider))
    regs

let test_end_to_end_with_eppi () =
  (* The paper's federated-search story: link first, then index the linked
     identities with e-PPI; recall of the whole pipeline is 100% over the
     linked entities. *)
  let rng = Rng.create 9 in
  let providers = 12 in
  let regs = Demographic.population rng ~persons:80 ~providers ~max_registrations:4 in
  let linked = Linkage.link Linkage.default_config regs in
  let membership = Linkage.to_membership linked regs ~providers in
  let epsilons = Array.make linked.entities 0.6 in
  let r =
    Eppi.Construct.run (Rng.create 10) ~membership ~epsilons
      ~policy:(Eppi.Policy.Chernoff 0.9)
  in
  for e = 0 to linked.entities - 1 do
    check_bool "recall" true (Eppi.Index.recall_ok ~membership r.index ~owner:e)
  done

let qcheck_tests =
  let open QCheck in
  let name_gen = Gen.oneofl [ "smith"; "smyth"; "johnson"; "jonson"; "garcia"; "chen"; "lee" ] in
  [
    Test.make ~name:"levenshtein is a metric (symmetry + identity)" ~count:300
      (pair (make name_gen) (make name_gen))
      (fun (a, b) ->
        Text.levenshtein a b = Text.levenshtein b a && Text.levenshtein a a = 0);
    Test.make ~name:"levenshtein triangle inequality" ~count:200
      (triple (make name_gen) (make name_gen) (make name_gen))
      (fun (a, b, c) -> Text.levenshtein a c <= Text.levenshtein a b + Text.levenshtein b c);
    Test.make ~name:"dice within [0, 1]" ~count:300
      (pair (make name_gen) (make name_gen))
      (fun (a, b) ->
        let d = Text.dice a b in
        d >= 0.0 && d <= 1.0);
    Test.make ~name:"bloom dice within [0, 1] and reflexive" ~count:200 (make name_gen)
      (fun a ->
        let p = Bloom.default_params in
        let f = Bloom.encode p a in
        Bloom.dice f f = 1.0);
    (* The PRL guarantee the fuzzy resolver rides on: on generous filter
       parameters (few collisions) the Bloom-filter Dice approximates the
       plaintext bigram Dice within a bounded error.  0.15 is loose for
       2048 bits but stable across the whole name pool. *)
    Test.make ~name:"bloom dice approximates plaintext dice" ~count:200
      (pair (make name_gen) (make name_gen))
      (fun (a, b) ->
        let p = Bloom.keyed ~seed:17 ~bits:2048 ~hashes:2 () in
        let approx = Bloom.dice (Bloom.encode p a) (Bloom.encode p b) in
        Float.abs (approx -. Text.dice a b) <= 0.15);
  ]

(* Incompatible parameters must raise, and the empty-string edge is
   defined: "" has no bigrams, its filter is empty, and two empty filters
   score 1.0 (vacuous agreement) while empty-vs-nonempty scores 0.0. *)
let test_bloom_incompatible_and_empty () =
  let p = Bloom.keyed ~seed:3 () in
  let f = Bloom.encode p "smith" in
  let wrong_bits = Bloom.encode (Bloom.keyed ~seed:3 ~bits:128 ()) "smith" in
  let wrong_seed = Bloom.encode (Bloom.keyed ~seed:4 ()) "smith" in
  Alcotest.check_raises "bits mismatch raises"
    (Invalid_argument "Bloom.dice: incompatible parameters") (fun () ->
      ignore (Bloom.dice f wrong_bits));
  Alcotest.check_raises "seed mismatch raises"
    (Invalid_argument "Bloom.dice: incompatible parameters") (fun () ->
      ignore (Bloom.dice f wrong_seed));
  let empty = Bloom.encode p "" in
  check_int "empty filter sets no bits" 0 (Bloom.bit_count empty);
  check_bool "empty vs empty" true (Bloom.dice empty (Bloom.encode p "") = 1.0);
  check_bool "empty vs non-empty" true (Bloom.dice empty f = 0.0)

let () =
  Alcotest.run "linkage"
    [
      ( "text",
        [
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "soundex known values" `Quick test_soundex_known_values;
          Alcotest.test_case "soundex degenerate" `Quick test_soundex_degenerate;
          Alcotest.test_case "soundex matches typos" `Quick test_soundex_matches_typos;
          Alcotest.test_case "levenshtein" `Quick test_levenshtein;
          Alcotest.test_case "bigrams and dice" `Quick test_bigrams_dice;
        ] );
      ( "bloom",
        [
          Alcotest.test_case "deterministic" `Quick test_bloom_deterministic;
          Alcotest.test_case "seed matters" `Quick test_bloom_seed_matters;
          Alcotest.test_case "approximates dice" `Quick test_bloom_approximates_dice;
          Alcotest.test_case "incompatible params and empty fields" `Quick
            test_bloom_incompatible_and_empty;
        ] );
      ( "generator",
        [
          Alcotest.test_case "population shape" `Quick test_population_shape;
          Alcotest.test_case "corruption rates" `Quick test_corrupt_preserves_most;
        ] );
      ( "linkage",
        [
          Alcotest.test_case "field score extremes" `Quick test_field_score_extremes;
          Alcotest.test_case "plaintext quality" `Quick test_link_plaintext_quality;
          Alcotest.test_case "bloom quality" `Quick test_link_bloom_quality;
          Alcotest.test_case "no noise, perfect recall" `Quick test_link_no_noise_perfect_recall;
          Alcotest.test_case "blocking reduces work" `Quick test_link_blocking_reduces_work;
          Alcotest.test_case "to membership" `Quick test_to_membership;
          Alcotest.test_case "end to end with e-PPI" `Quick test_end_to_end_with_eppi;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
