(* Tests for the discrete-event network simulator and its heap. *)

open Eppi_simnet

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- heap ---------- *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun (k, v) -> Heap.push h ~key:k v) [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  let pop () = match Heap.pop h with Some (_, v) -> v | None -> "?" in
  (* Explicit sequencing: list-literal evaluation order is unspecified. *)
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ first; second; third ];
  check_bool "empty after" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~key:5.0 v) [ 1; 2; 3; 4 ];
  let order = List.init 4 (fun _ -> match Heap.pop h with Some (_, v) -> v | None -> -1) in
  Alcotest.(check (list int)) "insertion order on ties" [ 1; 2; 3; 4 ] order

let test_heap_interleaved () =
  let h = Heap.create () in
  for i = 0 to 99 do
    Heap.push h ~key:(float_of_int ((i * 37) mod 100)) i
  done;
  let prev = ref neg_infinity in
  for _ = 0 to 99 do
    match Heap.pop h with
    | Some (k, _) ->
        check_bool "non-decreasing" true (k >= !prev);
        prev := k
    | None -> Alcotest.fail "ran out early"
  done;
  check_int "size" 0 (Heap.size h)

let test_heap_peek () =
  let h = Heap.create () in
  Alcotest.(check (option (float 0.0))) "empty peek" None (Heap.peek_key h);
  Heap.push h ~key:7.5 ();
  Alcotest.(check (option (float 0.0))) "peek" (Some 7.5) (Heap.peek_key h)

(* ---------- simnet ---------- *)

let test_simple_delivery () =
  let net = Simnet.create ~nodes:2 () in
  let got = ref [] in
  Simnet.on_receive net 1 (fun _ ~src msg -> got := (src, msg) :: !got);
  Simnet.at net ~delay:0.0 0 (fun sim -> Simnet.send sim ~src:0 ~dst:1 ~size:100 "hello");
  Simnet.run net;
  Alcotest.(check (list (pair int string))) "delivered" [ (0, "hello") ] !got

let test_latency_model () =
  let config = { Simnet.default_config with latency = 0.1; bandwidth = 1000.0 } in
  let net = Simnet.create ~config ~nodes:2 () in
  let arrival = ref 0.0 in
  Simnet.on_receive net 1 (fun sim ~src:_ _ -> arrival := Simnet.now sim);
  Simnet.at net ~delay:0.0 0 (fun sim -> Simnet.send sim ~src:0 ~dst:1 ~size:500 ());
  Simnet.run net;
  (* 0.1 s latency + 500 bytes / 1000 B/s = 0.6 s. *)
  Alcotest.(check (float 1e-9)) "latency + serialization" 0.6 !arrival

let test_broadcast () =
  let net = Simnet.create ~nodes:5 () in
  let received = Array.make 5 0 in
  for i = 0 to 4 do
    Simnet.on_receive net i (fun _ ~src:_ _ -> received.(i) <- received.(i) + 1)
  done;
  Simnet.at net ~delay:0.0 2 (fun sim -> Simnet.broadcast sim ~src:2 ~size:10 ());
  Simnet.run net;
  Alcotest.(check (array int)) "everyone but source" [| 1; 1; 0; 1; 1 |] received

let test_work_serializes_node () =
  (* A busy node delays its next event; the completion time reflects it. *)
  let net = Simnet.create ~nodes:2 () in
  let timestamps = ref [] in
  Simnet.on_receive net 1 (fun sim ~src:_ () ->
      timestamps := Simnet.now sim :: !timestamps;
      Simnet.work sim 1 1.0);
  Simnet.at net ~delay:0.0 0 (fun sim ->
      Simnet.send sim ~src:0 ~dst:1 ~size:0 ();
      Simnet.send sim ~src:0 ~dst:1 ~size:0 ());
  Simnet.run net;
  (match List.rev !timestamps with
  | [ t1; t2 ] ->
      check_bool "second event waits for busy node" true (t2 -. t1 >= 1.0 -. 1e-9)
  | _ -> Alcotest.fail "expected two deliveries");
  let m = Simnet.metrics net in
  check_bool "completion includes work" true (m.completion_time >= 2.0);
  Alcotest.(check (float 1e-9)) "busy time accumulated" 2.0 (Simnet.node_busy_time net 1)

let test_metrics_counts () =
  let net = Simnet.create ~nodes:3 () in
  for i = 0 to 2 do
    Simnet.on_receive net i (fun _ ~src:_ _ -> ())
  done;
  Simnet.at net ~delay:0.0 0 (fun sim ->
      Simnet.send sim ~src:0 ~dst:1 ~size:100 ();
      Simnet.send sim ~src:0 ~dst:2 ~size:50 ());
  Simnet.run net;
  let m = Simnet.metrics net in
  check_int "sent" 2 m.messages_sent;
  check_int "delivered" 2 m.messages_delivered;
  check_int "dropped" 0 m.messages_dropped;
  check_int "bytes" 150 m.bytes_sent

let test_drop_injection () =
  let config = { Simnet.default_config with drop_probability = 1.0 } in
  let net = Simnet.create ~config ~nodes:2 () in
  let got = ref 0 in
  Simnet.on_receive net 1 (fun _ ~src:_ _ -> incr got);
  Simnet.at net ~delay:0.0 0 (fun sim -> Simnet.send sim ~src:0 ~dst:1 ~size:10 ());
  Simnet.run net;
  check_int "nothing delivered" 0 !got;
  check_int "drop counted" 1 (Simnet.metrics net).messages_dropped

let test_partial_drop_rate () =
  let config = { Simnet.default_config with drop_probability = 0.3; seed = 9 } in
  let net = Simnet.create ~config ~nodes:2 () in
  let got = ref 0 in
  Simnet.on_receive net 1 (fun _ ~src:_ _ -> incr got);
  Simnet.at net ~delay:0.0 0 (fun sim ->
      for _ = 1 to 2000 do
        Simnet.send sim ~src:0 ~dst:1 ~size:1 ()
      done);
  Simnet.run net;
  let rate = 1.0 -. (float_of_int !got /. 2000.0) in
  check_bool "drop rate near 0.3" true (Float.abs (rate -. 0.3) < 0.05)

let test_crash_silences_node () =
  let net = Simnet.create ~nodes:2 () in
  let got = ref 0 in
  Simnet.on_receive net 1 (fun _ ~src:_ _ -> incr got);
  Simnet.at net ~delay:0.0 0 (fun sim ->
      Simnet.crash sim 1;
      Simnet.send sim ~src:0 ~dst:1 ~size:10 ());
  Simnet.run net;
  check_int "crashed node drops" 0 !got;
  check_bool "flag" true (Simnet.is_crashed net 1)

let test_deterministic_replay () =
  let run_once () =
    let net = Simnet.create ~nodes:4 () in
    let log = ref [] in
    for i = 0 to 3 do
      Simnet.on_receive net i (fun sim ~src msg ->
          log := (Simnet.now sim, src, i, msg) :: !log;
          if msg < 3 then Simnet.broadcast sim ~src:i ~size:20 (msg + 1))
    done;
    Simnet.at net ~delay:0.0 0 (fun sim -> Simnet.broadcast sim ~src:0 ~size:20 0);
    Simnet.run net;
    !log
  in
  check_bool "identical event logs" true (run_once () = run_once ())

let test_validation () =
  let net = Simnet.create ~nodes:2 () in
  Alcotest.check_raises "bad node" (Invalid_argument "Simnet: unknown node") (fun () ->
      Simnet.send net ~src:0 ~dst:7 ~size:1 ());
  Alcotest.check_raises "negative size" (Invalid_argument "Simnet.send: negative size")
    (fun () -> Simnet.send net ~src:0 ~dst:1 ~size:(-1) ());
  Alcotest.check_raises "no nodes" (Invalid_argument "Simnet.create: need at least one node")
    (fun () -> ignore (Simnet.create ~nodes:0 () : unit Simnet.t))

(* ---------- fault plans ---------- *)

let test_per_link_fault () =
  (* Link 0->1 always drops; 0->2 is untouched by the default. *)
  let plan =
    { Simnet.no_faults with links = [ ((0, 1), { Simnet.perfect_link with drop = 1.0 }) ] }
  in
  let net = Simnet.create ~plan ~nodes:3 () in
  let got = Array.make 3 0 in
  for i = 0 to 2 do
    Simnet.on_receive net i (fun _ ~src:_ _ -> got.(i) <- got.(i) + 1)
  done;
  Simnet.at net ~delay:0.0 0 (fun sim ->
      Simnet.send sim ~src:0 ~dst:1 ~size:10 ();
      Simnet.send sim ~src:0 ~dst:2 ~size:10 ());
  Simnet.run net;
  Alcotest.(check (array int)) "only the faulty link loses" [| 0; 0; 1 |] got;
  check_int "drop counted" 1 (Simnet.metrics net).messages_dropped

let test_duplication () =
  let plan =
    { Simnet.no_faults with default_link = { Simnet.perfect_link with duplicate = 1.0 } }
  in
  let net = Simnet.create ~plan ~nodes:2 () in
  let got = ref 0 in
  Simnet.on_receive net 1 (fun _ ~src:_ _ -> incr got);
  Simnet.at net ~delay:0.0 0 (fun sim -> Simnet.send sim ~src:0 ~dst:1 ~size:10 ());
  Simnet.run net;
  check_int "delivered twice" 2 !got;
  check_int "duplicate counted" 1 (Simnet.metrics net).messages_duplicated;
  check_int "sent counted once" 1 (Simnet.metrics net).messages_sent

let test_partition_window () =
  (* Nodes {0} | {1} are partitioned during [0, 1); a message sent inside
     the window is dropped, one sent after it heals is delivered. *)
  let plan =
    {
      Simnet.no_faults with
      partitions = [ { Simnet.starts = 0.0; stops = 1.0; islands = [ [ 0 ]; [ 1 ] ] } ];
    }
  in
  let net = Simnet.create ~plan ~nodes:2 () in
  let got = ref 0 in
  Simnet.on_receive net 1 (fun _ ~src:_ _ -> incr got);
  Simnet.at net ~delay:0.5 0 (fun sim -> Simnet.send sim ~src:0 ~dst:1 ~size:10 ());
  Simnet.at net ~delay:1.5 0 (fun sim -> Simnet.send sim ~src:0 ~dst:1 ~size:10 ());
  Simnet.run net;
  check_int "only the post-heal message" 1 !got;
  check_int "partition drop counted" 1 (Simnet.metrics net).messages_dropped

let test_partition_implicit_island () =
  (* Unlisted nodes form one implicit island: 1 and 2 can still talk while
     cut off from 0. *)
  let plan =
    {
      Simnet.no_faults with
      partitions = [ { Simnet.starts = 0.0; stops = 10.0; islands = [ [ 0 ] ] } ];
    }
  in
  let net = Simnet.create ~plan ~nodes:3 () in
  let got = Array.make 3 0 in
  for i = 0 to 2 do
    Simnet.on_receive net i (fun _ ~src:_ _ -> got.(i) <- got.(i) + 1)
  done;
  Simnet.at net ~delay:0.0 1 (fun sim ->
      Simnet.send sim ~src:1 ~dst:2 ~size:10 ();
      Simnet.send sim ~src:1 ~dst:0 ~size:10 ());
  Simnet.run net;
  Alcotest.(check (array int)) "peer island delivers, cut island drops" [| 0; 0; 1 |] got

let test_crash_schedule () =
  (* Node 1 fail-stops at t = 1: the first message lands, the second is
     cancelled. *)
  let plan = { Simnet.no_faults with crashes = [ (1.0, 1) ] } in
  let net = Simnet.create ~plan ~nodes:2 () in
  let got = ref 0 in
  Simnet.on_receive net 1 (fun _ ~src:_ _ -> incr got);
  Simnet.at net ~delay:0.0 0 (fun sim -> Simnet.send sim ~src:0 ~dst:1 ~size:10 ());
  Simnet.at net ~delay:2.0 0 (fun sim -> Simnet.send sim ~src:0 ~dst:1 ~size:10 ());
  Simnet.run net;
  check_int "pre-crash delivery only" 1 !got;
  check_bool "flag set by schedule" true (Simnet.is_crashed net 1)

let test_crash_cancels_timers_and_work () =
  (* Regression pin for crash semantics: a crashed node's pending timers
     never fire, and work charged to it is a no-op — so the crash cannot
     extend the completion time. *)
  let net = Simnet.create ~nodes:2 () in
  let fired = ref false in
  Simnet.on_receive net 1 (fun _ ~src:_ _ -> ());
  Simnet.at net ~delay:5.0 1 (fun _ -> fired := true);
  Simnet.at net ~delay:0.1 0 (fun sim ->
      Simnet.crash sim 1;
      Simnet.work sim 1 100.0;
      Simnet.work sim 0 0.2);
  Simnet.run net;
  check_bool "pending timer cancelled" false !fired;
  Alcotest.(check (float 1e-9)) "no work charged to the dead" 0.0 (Simnet.node_busy_time net 1);
  let m = Simnet.metrics net in
  check_bool "completion unaffected by the dead node"
    true
    (m.completion_time < 1.0 && m.completion_time >= 0.3 -. 1e-9)

let test_slow_node_multiplier () =
  let plan = { Simnet.no_faults with slow = [ (1, 4.0) ] } in
  let net = Simnet.create ~plan ~nodes:2 () in
  Simnet.on_receive net 1 (fun sim ~src:_ _ -> Simnet.work sim 1 1.0);
  Simnet.at net ~delay:0.0 0 (fun sim -> Simnet.send sim ~src:0 ~dst:1 ~size:0 ());
  Simnet.run net;
  Alcotest.(check (float 1e-9)) "straggler charged 4x" 4.0 (Simnet.node_busy_time net 1)

let test_fault_plan_deterministic () =
  (* Same fault seed => identical drop/duplicate pattern; a different fault
     seed perturbs it. *)
  let run_with seed =
    let plan =
      {
        Simnet.no_faults with
        fault_seed = seed;
        default_link = { drop = 0.3; duplicate = 0.2; reorder = 0.2 };
      }
    in
    let net = Simnet.create ~plan ~nodes:2 () in
    let got = ref 0 in
    Simnet.on_receive net 1 (fun _ ~src:_ _ -> incr got);
    Simnet.at net ~delay:0.0 0 (fun sim ->
        for _ = 1 to 500 do
          Simnet.send sim ~src:0 ~dst:1 ~size:1 ()
        done);
    Simnet.run net;
    let m = Simnet.metrics net in
    (!got, m.messages_dropped, m.messages_duplicated)
  in
  check_bool "same seed, same faults" true (run_with 7 = run_with 7);
  check_bool "different seed, different faults" true (run_with 7 <> run_with 8)

let test_fault_plan_validation () =
  Alcotest.check_raises "unknown node in crash schedule"
    (Invalid_argument "Simnet: fault plan names unknown node") (fun () ->
      ignore
        (Simnet.create
           ~plan:{ Simnet.no_faults with crashes = [ (0.0, 9) ] }
           ~nodes:2 ()
          : unit Simnet.t));
  Alcotest.check_raises "non-positive slow factor"
    (Invalid_argument "Simnet: slow factor must be > 0") (fun () ->
      ignore
        (Simnet.create ~plan:{ Simnet.no_faults with slow = [ (0, 0.0) ] } ~nodes:2 ()
          : unit Simnet.t))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"heap pops sorted" ~count:200
      (list_of_size (Gen.int_range 0 50) (float_range 0.0 1000.0))
      (fun keys ->
        let h = Heap.create () in
        List.iter (fun k -> Heap.push h ~key:k ()) keys;
        let rec drain prev =
          match Heap.pop h with
          | None -> true
          | Some (k, ()) -> k >= prev && drain k
        in
        drain neg_infinity);
  ]

let () =
  Alcotest.run "simnet"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
          Alcotest.test_case "peek" `Quick test_heap_peek;
        ] );
      ( "network",
        [
          Alcotest.test_case "simple delivery" `Quick test_simple_delivery;
          Alcotest.test_case "latency model" `Quick test_latency_model;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "work serializes node" `Quick test_work_serializes_node;
          Alcotest.test_case "metrics counts" `Quick test_metrics_counts;
          Alcotest.test_case "drop injection" `Quick test_drop_injection;
          Alcotest.test_case "partial drop rate" `Quick test_partial_drop_rate;
          Alcotest.test_case "crash silences node" `Quick test_crash_silences_node;
          Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "faults",
        [
          Alcotest.test_case "per-link fault" `Quick test_per_link_fault;
          Alcotest.test_case "duplication" `Quick test_duplication;
          Alcotest.test_case "partition window" `Quick test_partition_window;
          Alcotest.test_case "implicit island" `Quick test_partition_implicit_island;
          Alcotest.test_case "crash schedule" `Quick test_crash_schedule;
          Alcotest.test_case "crash cancels timers and work" `Quick
            test_crash_cancels_timers_and_work;
          Alcotest.test_case "slow node multiplier" `Quick test_slow_node_multiplier;
          Alcotest.test_case "fault plan determinism" `Quick test_fault_plan_deterministic;
          Alcotest.test_case "fault plan validation" `Quick test_fault_plan_validation;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
