(* Tests for the ε-PPI core: β policies (Eqs. 3-5), identity mixing
   (Eqs. 6-7), randomized publication (Eq. 2), the privacy metrics, the
   attacks, and the centralized construction's end-to-end guarantees. *)

open Eppi_prelude
open Eppi

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_close ?(tol = 1e-9) name a b =
  check_bool (Printf.sprintf "%s: |%g - %g| <= %g" name a b tol) true (Float.abs (a -. b) <= tol)

(* ---------- Policy ---------- *)

let test_beta_basic_formula () =
  (* Eq. 3 by hand: sigma = 0.1, eps = 0.5 -> 1/((10-1)(2-1)) = 1/9. *)
  check_close "eq3 value" (1.0 /. 9.0) (Policy.beta_basic ~sigma:0.1 ~epsilon:0.5);
  (* sigma = 0.5, eps = 0.8 -> 1/((2-1)(1.25-1)) = 4. *)
  check_close "eq3 common case" 4.0 (Policy.beta_basic ~sigma:0.5 ~epsilon:0.8)

let test_beta_basic_edges () =
  check_close "eps 0 means no noise" 0.0 (Policy.beta_basic ~sigma:0.3 ~epsilon:0.0);
  check_close "sigma 0 means no noise needed" 0.0 (Policy.beta_basic ~sigma:0.0 ~epsilon:0.7);
  check_bool "sigma 1 diverges" true (Policy.beta_basic ~sigma:1.0 ~epsilon:0.5 = infinity);
  check_bool "eps 1 diverges" true (Policy.beta_basic ~sigma:0.5 ~epsilon:1.0 = infinity);
  Alcotest.check_raises "sigma out of range" (Invalid_argument "Policy: sigma out of [0, 1]")
    (fun () -> ignore (Policy.beta_basic ~sigma:1.5 ~epsilon:0.5))

let test_beta_policies_ordering () =
  (* Chernoff and inc-exp both dominate basic on any non-trivial point. *)
  let sigma = 0.05 and epsilon = 0.5 and m = 10_000 in
  let bb = Policy.beta Policy.Basic ~sigma ~epsilon ~m in
  let bd = Policy.beta (Policy.Inc_exp 0.02) ~sigma ~epsilon ~m in
  let bc = Policy.beta (Policy.Chernoff 0.9) ~sigma ~epsilon ~m in
  check_bool "basic positive" true (bb > 0.0);
  check_close "inc-exp adds delta" (bb +. 0.02) bd;
  check_bool "chernoff above basic" true (bc > bb)

let test_beta_chernoff_formula () =
  (* Spot-check Eq. 5 against a hand-computed value. *)
  let sigma = 0.1 and epsilon = 0.5 and m = 1000 and gamma = 0.9 in
  let bb = 1.0 /. 9.0 in
  let g = log (1.0 /. 0.1) /. (0.9 *. 1000.0) in
  let expected = bb +. g +. sqrt ((g *. g) +. (2.0 *. bb *. g)) in
  check_close ~tol:1e-12 "eq5" expected
    (Policy.beta (Policy.Chernoff gamma) ~sigma ~epsilon ~m)

let test_beta_monotone_in_sigma () =
  let m = 1000 in
  List.iter
    (fun policy ->
      let prev = ref (-1.0) in
      for f = 0 to 20 do
        let sigma = float_of_int f /. 20.0 in
        let b = Policy.beta policy ~sigma ~epsilon:0.6 ~m in
        check_bool (Printf.sprintf "%s nondecreasing at %f" (Policy.name policy) sigma) true
          (b >= !prev);
        prev := b
      done)
    [ Policy.Basic; Policy.Inc_exp 0.01; Policy.Chernoff 0.9 ]

let test_beta_monotone_in_epsilon () =
  let m = 1000 in
  let prev = ref (-1.0) in
  for e = 0 to 19 do
    let epsilon = float_of_int e /. 20.0 in
    let b = Policy.beta Policy.Basic ~sigma:0.1 ~epsilon ~m in
    check_bool "higher privacy needs more noise" true (b >= !prev);
    prev := b
  done

let test_sigma_threshold_basic_closed_form () =
  List.iter
    (fun eps ->
      check_close ~tol:1e-9
        (Printf.sprintf "basic threshold at eps %f" eps)
        (1.0 -. eps)
        (Policy.sigma_threshold Policy.Basic ~epsilon:eps ~m:1000))
    [ 0.1; 0.5; 0.8 ]

let test_sigma_threshold_consistent_with_beta () =
  let m = 1000 in
  List.iter
    (fun policy ->
      List.iter
        (fun epsilon ->
          let thr = Policy.sigma_threshold policy ~epsilon ~m in
          if thr > 0.001 && thr < 0.999 then begin
            check_bool "just below not common" false
              (Policy.is_common policy ~sigma:(thr -. 0.001) ~epsilon ~m);
            check_bool "just above common" true
              (Policy.is_common policy ~sigma:(thr +. 0.001) ~epsilon ~m)
          end)
        [ 0.2; 0.5; 0.9 ])
    [ Policy.Basic; Policy.Inc_exp 0.05; Policy.Chernoff 0.9 ]

let test_sigma_threshold_eps_zero () =
  check_close "never common" 1.0 (Policy.sigma_threshold Policy.Basic ~epsilon:0.0 ~m:100)

let test_analytic_success_bound () =
  let sigma = 0.05 and epsilon = 0.5 and m = 10_000 in
  let bc = Policy.beta (Policy.Chernoff 0.9) ~sigma ~epsilon ~m in
  let bound = Policy.analytic_success_bound ~beta:bc ~sigma ~epsilon ~m in
  (* Theorem 3.1: the Chernoff beta guarantees at least gamma. *)
  check_bool "bound at least gamma" true (bound >= 0.9 -. 1e-9);
  check_close "below basic gives 0" 0.0
    (Policy.analytic_success_bound ~beta:0.001 ~sigma ~epsilon ~m);
  check_close "beta 1 trivially succeeds" 1.0
    (Policy.analytic_success_bound ~beta:1.0 ~sigma ~epsilon ~m)

let test_policy_names () =
  Alcotest.(check string) "basic" "basic" (Policy.name Policy.Basic);
  Alcotest.(check string) "inc-exp" "inc-exp(0.02)" (Policy.name (Policy.Inc_exp 0.02));
  Alcotest.(check string) "chernoff" "chernoff(0.90)" (Policy.name (Policy.Chernoff 0.9))

(* ---------- Mixing ---------- *)

let test_lambda_formula () =
  (* Eq. 7: xi=0.5, C=10, n=110 -> lambda >= 1 * 10/100 = 0.1. *)
  check_close "eq7" 0.1 (Mixing.lambda ~xi:0.5 ~n_common:10 ~n_total:110);
  check_close "no commons no mixing" 0.0 (Mixing.lambda ~xi:0.9 ~n_common:0 ~n_total:100);
  check_close "all common saturates" 1.0 (Mixing.lambda ~xi:0.5 ~n_common:10 ~n_total:10);
  check_close "clamped at 1" 1.0 (Mixing.lambda ~xi:0.99 ~n_common:50 ~n_total:51)

let test_lambda_validation () =
  Alcotest.check_raises "xi = 1 rejected" (Invalid_argument "Mixing.lambda: xi out of [0, 1)")
    (fun () -> ignore (Mixing.lambda ~xi:1.0 ~n_common:1 ~n_total:2));
  Alcotest.check_raises "bad counts" (Invalid_argument "Mixing.lambda: bad counts") (fun () ->
      ignore (Mixing.lambda ~xi:0.5 ~n_common:5 ~n_total:2))

let test_lambda_achieves_decoy_fraction () =
  (* The defining property: a lambda from Eq. 7 yields an expected decoy
     fraction of at least xi. *)
  List.iter
    (fun (xi, n_common, n_total) ->
      let lambda = Mixing.lambda ~xi ~n_common ~n_total in
      if lambda < 1.0 then begin
        let fraction = Mixing.decoy_fraction ~lambda ~n_common ~n_total in
        check_bool
          (Printf.sprintf "decoys >= xi (%f, %d, %d)" xi n_common n_total)
          true
          (fraction >= xi -. 1e-9)
      end)
    [ (0.5, 10, 1000); (0.8, 3, 500); (0.2, 50, 10_000); (0.9, 1, 100) ]

let test_select_decoys_modes () =
  let rng = Rng.create 55 in
  let candidates = Array.init 100 Fun.id in
  (* Exact mode: exactly ceil(lambda * n) decoys, every time. *)
  for _ = 1 to 20 do
    let mask = Mixing.select_decoys rng ~mode:Mixing.Exact_count ~lambda:0.13 ~candidates in
    let count = Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 mask in
    check_int "exactly ceil(13)" 13 count
  done;
  (* Bernoulli mode: right rate on average. *)
  let total = ref 0 in
  for _ = 1 to 300 do
    let mask = Mixing.select_decoys rng ~mode:Mixing.Bernoulli ~lambda:0.13 ~candidates in
    total := !total + Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 mask
  done;
  check_close ~tol:1.5 "bernoulli mean" 13.0 (float_of_int !total /. 300.0);
  (* Lambda 1 saturates both. *)
  let all = Mixing.select_decoys rng ~mode:Mixing.Exact_count ~lambda:1.0 ~candidates in
  check_bool "lambda 1 mixes everyone" true (Array.for_all Fun.id all)

let make_matrix' ~m ~freqs =
  let membership = Bitmatrix.create ~rows:(Array.length freqs) ~cols:m in
  let rng = Rng.create 4321 in
  Array.iteri
    (fun j f ->
      let chosen = Rng.sample_without_replacement rng ~k:f ~n:m in
      Array.iter (fun p -> Bitmatrix.set membership ~row:j ~col:p true) chosen)
    freqs;
  membership

let test_construct_exact_count_mixing () =
  (* With exact-count mixing the decoy fraction bound holds on every draw. *)
  let m = 100 in
  let membership = make_matrix' ~m ~freqs:(Array.append [| 100 |] (Array.make 199 1)) in
  let epsilons = Array.make 200 0.6 in
  for seed = 1 to 10 do
    let r =
      Construct.run ~mixing:Mixing.Exact_count (Rng.create seed) ~membership ~epsilons
        ~policy:Policy.Basic
    in
    let decoys = Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 r.mixed in
    let fraction = float_of_int decoys /. float_of_int (decoys + 1) in
    check_bool
      (Printf.sprintf "seed %d: decoy fraction %f >= xi" seed fraction)
      true
      (fraction >= r.xi -. 1e-9)
  done

let test_mix_rate () =
  let rng = Rng.create 21 in
  let hits = ref 0 in
  for _ = 1 to 50_000 do
    if Mixing.mix rng ~lambda:0.25 then incr hits
  done;
  check_close ~tol:0.01 "mixing rate" 0.25 (float_of_int !hits /. 50_000.0)

(* ---------- Publish ---------- *)

let row_of_indices m idxs = Bitvec.of_index_list m idxs

let test_publish_truthful () =
  (* 1 -> 1 always: every true positive survives at any beta. *)
  let rng = Rng.create 22 in
  let row = row_of_indices 100 [ 3; 50; 99 ] in
  List.iter
    (fun beta ->
      let out = Publish.publish_row rng ~beta row in
      List.iter
        (fun p -> check_bool (Printf.sprintf "beta %f keeps %d" beta p) true (Bitvec.get out p))
        [ 3; 50; 99 ])
    [ 0.0; 0.3; 1.0 ]

let test_publish_beta_zero_exact () =
  let rng = Rng.create 23 in
  let row = row_of_indices 50 [ 1; 2 ] in
  check_bool "no noise at beta 0" true (Bitvec.equal row (Publish.publish_row rng ~beta:0.0 row))

let test_publish_beta_one_full () =
  let rng = Rng.create 24 in
  let row = row_of_indices 50 [ 1 ] in
  check_int "all providers at beta 1" 50 (Bitvec.count (Publish.publish_row rng ~beta:1.0 row))

let test_publish_noise_rate () =
  let rng = Rng.create 25 in
  let m = 2000 in
  let row = row_of_indices m [ 0 ] in
  let out = Publish.publish_row rng ~beta:0.2 row in
  let noise = Bitvec.count out - 1 in
  let expected = 0.2 *. float_of_int (m - 1) in
  check_bool "noise near beta * negatives" true
    (Float.abs (float_of_int noise -. expected) < 5.0 *. sqrt expected)

let test_publish_matrix_per_row_betas () =
  let rng = Rng.create 26 in
  let membership = Bitmatrix.create ~rows:2 ~cols:100 in
  Bitmatrix.set membership ~row:0 ~col:0 true;
  Bitmatrix.set membership ~row:1 ~col:0 true;
  let published = Publish.publish_matrix rng ~betas:[| 0.0; 1.0 |] membership in
  check_int "row 0 untouched" 1 (Bitmatrix.row_count published 0);
  check_int "row 1 full" 100 (Bitmatrix.row_count published 1);
  Alcotest.check_raises "betas length" (Invalid_argument "Publish.publish_matrix: betas length mismatch")
    (fun () -> ignore (Publish.publish_matrix rng ~betas:[| 0.1 |] membership))

let test_publish_with_floors () =
  let rng = Rng.create 57 in
  let m = 1000 in
  let membership = Bitmatrix.create ~rows:2 ~cols:m in
  Bitmatrix.set membership ~row:0 ~col:0 true;
  Bitmatrix.set membership ~row:1 ~col:1 true;
  (* Providers 0..99 are sensitive with floor 0.9; betas are tiny. *)
  let floors = Array.init m (fun p -> if p < 100 then 0.9 else 0.0) in
  let published =
    Publish.publish_matrix_with_floors rng ~betas:[| 0.01; 0.01 |] ~floors membership
  in
  (* Truthfulness holds. *)
  check_bool "true positive kept" true (Bitmatrix.get published ~row:0 ~col:0);
  (* Sensitive columns carry ~90% noise; others ~1%. *)
  let count_in row lo hi =
    let acc = ref 0 in
    for p = lo to hi do
      if Bitmatrix.get published ~row ~col:p then incr acc
    done;
    !acc
  in
  let sensitive = count_in 0 1 99 in
  let normal = count_in 0 100 999 in
  check_bool (Printf.sprintf "sensitive noisy (%d/99)" sensitive) true (sensitive > 75);
  check_bool (Printf.sprintf "normal quiet (%d/900)" normal) true (normal < 30);
  Alcotest.check_raises "bad floor"
    (Invalid_argument "Publish.publish_matrix_with_floors: floor out of [0, 1]") (fun () ->
      ignore
        (Publish.publish_matrix_with_floors rng ~betas:[| 0.1; 0.1 |]
           ~floors:(Array.make m 1.5) membership))

let test_construct_with_floors_keeps_guarantee () =
  (* Floors only add noise: fp rates still clear epsilon at the Chernoff
     ratio. *)
  let m = 1000 in
  let membership = make_matrix' ~m ~freqs:(Array.make 50 10) in
  let epsilons = Array.make 50 0.5 in
  let floors = Array.init m (fun p -> if p mod 10 = 0 then 0.5 else 0.0) in
  let r =
    Construct.run ~provider_floors:floors (Rng.create 58) ~membership ~epsilons
      ~policy:(Policy.Chernoff 0.9)
  in
  let ratio =
    Metrics.success_ratio ~membership ~published:(Index.matrix r.index) ~epsilons
  in
  check_bool (Printf.sprintf "ratio %f >= 0.9" ratio) true (ratio >= 0.9);
  for j = 0 to 49 do
    check_bool "recall" true (Index.recall_ok ~membership r.index ~owner:j)
  done

let test_false_positives_distribution () =
  let rng = Rng.create 27 in
  let samples =
    Array.init 5_000 (fun _ ->
        float_of_int (Publish.false_positives rng ~beta:0.3 ~negatives:500))
  in
  check_close ~tol:2.0 "mean 150" 150.0 (Stats.mean samples)

(* ---------- Index / Metrics ---------- *)

let tiny_scenario () =
  (* 1 owner, 10 providers: true at 0 and 1; noise at 2, 3. *)
  let membership = Bitmatrix.create ~rows:1 ~cols:10 in
  Bitmatrix.set membership ~row:0 ~col:0 true;
  Bitmatrix.set membership ~row:0 ~col:1 true;
  let published = Bitmatrix.copy membership in
  Bitmatrix.set published ~row:0 ~col:2 true;
  Bitmatrix.set published ~row:0 ~col:3 true;
  (membership, published)

let test_index_query () =
  let _, published = tiny_scenario () in
  let index = Index.of_matrix published in
  Alcotest.(check (list int)) "query" [ 0; 1; 2; 3 ] (Index.query index ~owner:0);
  check_int "count" 4 (Index.query_count index ~owner:0);
  check_int "apparent frequency" 4 (Index.apparent_frequency index ~owner:0);
  check_int "providers" 10 (Index.providers index);
  check_int "owners" 1 (Index.owners index)

let test_index_recall () =
  let membership, published = tiny_scenario () in
  let index = Index.of_matrix published in
  check_bool "recall ok" true (Index.recall_ok ~membership index ~owner:0);
  (* Drop a true positive: recall broken. *)
  let broken = Bitmatrix.copy published in
  Bitmatrix.set broken ~row:0 ~col:1 false;
  check_bool "recall broken" false (Index.recall_ok ~membership (Index.of_matrix broken) ~owner:0)

let test_index_csv_round_trip () =
  let rng = Rng.create 41 in
  let matrix = Bitmatrix.create ~rows:17 ~cols:29 in
  for row = 0 to 16 do
    for col = 0 to 28 do
      if Rng.float rng 1.0 < 0.2 then Bitmatrix.set matrix ~row ~col true
    done
  done;
  let index = Index.of_matrix matrix in
  let reloaded = Index.of_csv (Index.to_csv index) in
  check_int "owners survive" (Index.owners index) (Index.owners reloaded);
  check_int "providers survive" (Index.providers index) (Index.providers reloaded);
  for owner = 0 to 16 do
    Alcotest.(check (list int))
      (Printf.sprintf "row %d survives" owner)
      (Index.query index ~owner)
      (Index.query reloaded ~owner)
  done;
  (* The serialization itself is also a fixed point. *)
  Alcotest.(check string) "csv idempotent" (Index.to_csv index) (Index.to_csv reloaded)

let test_index_csv_malformed () =
  let reject name text error =
    Alcotest.check_raises name (Failure error) (fun () -> ignore (Index.of_csv text))
  in
  reject "empty input" "" "Index.of_csv: bad header";
  reject "alien header" "not an index\n0,0\n" "Index.of_csv: bad header";
  reject "truncated header" "# eppi-index owners=3\n" "Index.of_csv: bad header";
  reject "trailing junk in header" "# eppi-index owners=3 providers=4 x\n"
    "Index.of_csv: bad header";
  reject "zero dimension" "# eppi-index owners=0 providers=4\n" "Index.of_csv: bad dimensions";
  reject "non-numeric line" "# eppi-index owners=3 providers=4\na,b\n" "Index.of_csv: bad line 2";
  reject "missing column" "# eppi-index owners=3 providers=4\n1\n" "Index.of_csv: bad line 2";
  reject "extra column" "# eppi-index owners=3 providers=4\n1,2,3\n" "Index.of_csv: bad line 2";
  reject "owner out of range" "# eppi-index owners=3 providers=4\n3,0\n"
    "Index.of_csv: cell out of range at line 2";
  reject "provider out of range" "# eppi-index owners=3 providers=4\n0,4\n"
    "Index.of_csv: cell out of range at line 2";
  reject "negative cell" "# eppi-index owners=3 providers=4\n-1,0\n"
    "Index.of_csv: cell out of range at line 2";
  reject "duplicate cell" "# eppi-index owners=3 providers=4\n1,2\n1,2\n"
    "Index.of_csv: duplicate cell at line 3";
  (* Blank lines are tolerated (to_csv ends with a newline). *)
  let index = Index.of_csv "# eppi-index owners=2 providers=3\n\n1,2\n\n" in
  Alcotest.(check (list int)) "parsed around blanks" [ 2 ] (Index.query index ~owner:1)

let test_metrics_fp_rate () =
  let membership, published = tiny_scenario () in
  check_close "fp = 2/4" 0.5 (Metrics.false_positive_rate ~membership ~published ~owner:0);
  check_close "confidence = 1/2" 0.5 (Metrics.attacker_confidence ~membership ~published ~owner:0);
  check_bool "succeeds at eps 0.5" true
    (Metrics.owner_success ~membership ~published ~epsilon:0.5 ~owner:0);
  check_bool "fails at eps 0.6" false
    (Metrics.owner_success ~membership ~published ~epsilon:0.6 ~owner:0)

let test_metrics_empty_row () =
  let membership = Bitmatrix.create ~rows:1 ~cols:5 in
  let published = Bitmatrix.create ~rows:1 ~cols:5 in
  check_close "empty row is private" 1.0
    (Metrics.false_positive_rate ~membership ~published ~owner:0)

let test_metrics_success_ratio () =
  let membership = Bitmatrix.create ~rows:2 ~cols:10 in
  Bitmatrix.set membership ~row:0 ~col:0 true;
  Bitmatrix.set membership ~row:1 ~col:0 true;
  let published = Bitmatrix.copy membership in
  (* Row 0 gets plenty of noise, row 1 none. *)
  for p = 1 to 9 do
    Bitmatrix.set published ~row:0 ~col:p true
  done;
  check_close "half succeed" 0.5
    (Metrics.success_ratio ~membership ~published ~epsilons:[| 0.8; 0.8 |]);
  check_close "subset" 1.0
    (Metrics.success_ratio_for ~membership ~published ~epsilons:[| 0.8; 0.8 |] ~owners:[ 0 ])

(* ---------- Attack ---------- *)

let test_primary_attack_simulation () =
  let membership, published = tiny_scenario () in
  let rng = Rng.create 28 in
  let rate = Attack.simulate_primary rng ~membership ~published ~owner:0 ~trials:20_000 in
  (* 2 true among 4 published: expected confidence 0.5. *)
  check_close ~tol:0.02 "empirical confidence" 0.5 rate;
  check_close "exact confidence" 0.5
    (Attack.primary_confidence ~membership ~published ~owner:0)

let test_primary_attack_empty_row () =
  let membership = Bitmatrix.create ~rows:1 ~cols:4 in
  let published = Bitmatrix.create ~rows:1 ~cols:4 in
  let rng = Rng.create 29 in
  check_close "nothing to attack" 0.0
    (Attack.simulate_primary rng ~membership ~published ~owner:0 ~trials:100)

let test_common_identity_attack_unprotected () =
  (* Without mixing, the published frequencies expose the one common owner. *)
  let m = 20 in
  let membership = Bitmatrix.create ~rows:3 ~cols:m in
  for p = 0 to m - 1 do
    Bitmatrix.set membership ~row:0 ~col:p true
  done;
  Bitmatrix.set membership ~row:1 ~col:0 true;
  Bitmatrix.set membership ~row:2 ~col:1 true;
  let published = Bitmatrix.copy membership in
  let r = Attack.common_identity_attack ~membership ~published ~sigma_threshold:0.9 in
  Alcotest.(check (list int)) "suspect set" [ 0 ] r.suspected;
  check_int "truly common" 1 r.truly_common;
  check_close "certain attack" 1.0 r.confidence

let test_common_identity_attack_with_decoys () =
  (* Mixing publishes decoy rows at full frequency: confidence drops. *)
  let m = 20 in
  let membership = Bitmatrix.create ~rows:4 ~cols:m in
  for p = 0 to m - 1 do
    Bitmatrix.set membership ~row:0 ~col:p true
  done;
  for j = 1 to 3 do
    Bitmatrix.set membership ~row:j ~col:j true
  done;
  let published = Bitmatrix.copy membership in
  (* Decoys: rows 1 and 2 exaggerated to full. *)
  for p = 0 to m - 1 do
    Bitmatrix.set published ~row:1 ~col:p true;
    Bitmatrix.set published ~row:2 ~col:p true
  done;
  let r = Attack.common_identity_attack ~membership ~published ~sigma_threshold:0.9 in
  check_int "three suspects" 3 (List.length r.suspected);
  check_close "confidence bounded to 1/3" (1.0 /. 3.0) r.confidence

let test_colluding_attack () =
  let membership, published = tiny_scenario () in
  (* Published positives 0,1,2,3; true at 0,1.  Colluder 2 is a known false
     positive: confidence rises from 2/4 to 2/3. *)
  check_close "no colluders = primary" 0.5
    (Attack.colluding_confidence ~membership ~published ~owner:0 ~colluders:[]);
  check_close "colluding false positive discounts noise" (2.0 /. 3.0)
    (Attack.colluding_confidence ~membership ~published ~owner:0 ~colluders:[ 2 ]);
  (* Colluder 0 is a true positive: remaining pool is 1 true of 3. *)
  check_close "colluding true positive" (1.0 /. 3.0)
    (Attack.colluding_confidence ~membership ~published ~owner:0 ~colluders:[ 0 ]);
  (* Everyone colludes: nothing left to attack. *)
  check_close "full collusion leaves nothing" 0.0
    (Attack.colluding_confidence ~membership ~published ~owner:0 ~colluders:[ 0; 1; 2; 3 ]);
  Alcotest.check_raises "bad provider"
    (Invalid_argument "Attack.colluding_confidence: bad provider id") (fun () ->
      ignore (Attack.colluding_confidence ~membership ~published ~owner:0 ~colluders:[ 99 ]))

let test_colluding_never_below_primary () =
  (* Collusion can only help the attacker (on rows extending beyond the
     colluding set). *)
  let rng = Rng.create 91 in
  for _ = 1 to 30 do
    let m = 40 in
    let membership = Bitmatrix.create ~rows:1 ~cols:m in
    let chosen = Rng.sample_without_replacement rng ~k:5 ~n:m in
    Array.iter (fun p -> Bitmatrix.set membership ~row:0 ~col:p true) chosen;
    let published = Publish.publish_matrix rng ~betas:[| 0.4 |] membership in
    let colluders = Array.to_list (Rng.sample_without_replacement rng ~k:8 ~n:m) in
    let base = Attack.primary_confidence ~membership ~published ~owner:0 in
    let with_collusion =
      Attack.colluding_confidence ~membership ~published ~owner:0 ~colluders
    in
    (* Exception: if every remaining positive is noise the confidence can
       drop to 0 only when no true positives remain outside the set. *)
    let outside_truth =
      List.for_all (fun p -> not (Bitmatrix.get membership ~row:0 ~col:p)) colluders
    in
    if outside_truth then
      check_bool "collusion helps or ties" true (with_collusion >= base -. 1e-9)
  done

let test_intersection_attack () =
  let m = 300 in
  let rng = Rng.create 92 in
  let membership = Bitmatrix.create ~rows:1 ~cols:m in
  let chosen = Rng.sample_without_replacement rng ~k:5 ~n:m in
  Array.iter (fun p -> Bitmatrix.set membership ~row:0 ~col:p true) chosen;
  let publish () = Publish.publish_matrix rng ~betas:[| 0.3 |] membership in
  let one = publish () in
  let conf1 = Attack.intersection_attack ~membership ~published_list:[ one ] ~owner:0 in
  check_close ~tol:1e-9 "single version = primary confidence"
    (Attack.primary_confidence ~membership ~published:one ~owner:0)
    conf1;
  (* Fresh noise every rebuild: intersecting strips it. *)
  let many = List.init 6 (fun _ -> publish ()) in
  let conf6 = Attack.intersection_attack ~membership ~published_list:many ~owner:0 in
  check_bool
    (Printf.sprintf "six rebuilds break privacy (%f -> %f)" conf1 conf6)
    true
    (conf6 > conf1 && conf6 > 0.9);
  (* The static index (same version repeated) discloses nothing extra. *)
  let conf_static =
    Attack.intersection_attack ~membership ~published_list:[ one; one; one ] ~owner:0
  in
  check_close ~tol:1e-9 "static index resists repetition" conf1 conf_static

let test_classification () =
  check_bool "e-private" true
    (Attack.classify ~guarantee:(Some 0.3) ~worst_confidence:0.3 ~epsilon:0.7 = Attack.E_private);
  check_bool "guarantee too weak" true
    (Attack.classify ~guarantee:(Some 0.9) ~worst_confidence:0.9 ~epsilon:0.7
    = Attack.No_guarantee);
  check_bool "no protect" true
    (Attack.classify ~guarantee:None ~worst_confidence:1.0 ~epsilon:0.5 = Attack.No_protect);
  check_bool "no guarantee" true
    (Attack.classify ~guarantee:None ~worst_confidence:0.6 ~epsilon:0.5 = Attack.No_guarantee);
  Alcotest.(check string) "level name" "e-PRIVATE" (Attack.level_name Attack.E_private)

(* ---------- Construct ---------- *)

let make_matrix ~m ~freqs =
  let membership = Bitmatrix.create ~rows:(Array.length freqs) ~cols:m in
  let rng = Rng.create 1234 in
  Array.iteri
    (fun j f ->
      let chosen = Rng.sample_without_replacement rng ~k:f ~n:m in
      Array.iter (fun p -> Bitmatrix.set membership ~row:j ~col:p true) chosen)
    freqs;
  membership

let test_construct_recall_invariant () =
  let membership = make_matrix ~m:200 ~freqs:[| 5; 20; 100; 199; 1 |] in
  let rng = Rng.create 30 in
  let r =
    Construct.run rng ~membership ~epsilons:[| 0.5; 0.9; 0.2; 0.8; 0.99 |]
      ~policy:(Policy.Chernoff 0.9)
  in
  for j = 0 to 4 do
    check_bool (Printf.sprintf "recall owner %d" j) true
      (Index.recall_ok ~membership r.index ~owner:j)
  done

let test_construct_common_flags () =
  let m = 100 in
  (* sigma = 0.95 with eps = 0.5: basic threshold 0.5 -> common. *)
  let membership = make_matrix ~m ~freqs:[| 95; 5 |] in
  let rng = Rng.create 31 in
  let r = Construct.run rng ~membership ~epsilons:[| 0.5; 0.5 |] ~policy:Policy.Basic in
  check_bool "common flagged" true r.common.(0);
  check_bool "rare not common" false r.common.(1);
  check_close "common beta is 1" 1.0 r.betas.(0);
  check_int "common row published everywhere" m
    (Index.query_count r.index ~owner:0)

let test_construct_xi_lambda () =
  let m = 100 in
  let membership = make_matrix ~m ~freqs:(Array.append [| 95 |] (Array.make 99 2)) in
  let epsilons = Array.make 100 0.6 in
  let rng = Rng.create 32 in
  let r = Construct.run rng ~membership ~epsilons ~policy:Policy.Basic in
  check_close "xi is max eps over commons" 0.6 r.xi;
  (* Eq. 7: lambda >= 0.6/0.4 * 1/99. *)
  check_close ~tol:1e-9 "lambda" (0.6 /. 0.4 /. 99.0) r.lambda;
  check_bool "mixed only non-common" true
    (Array.for_all2 (fun mixed common -> not (mixed && common)) r.mixed r.common)

let test_construct_no_commons_no_mixing () =
  let membership = make_matrix ~m:1000 ~freqs:[| 3; 7; 12 |] in
  let rng = Rng.create 33 in
  let r =
    Construct.run rng ~membership ~epsilons:[| 0.5; 0.5; 0.5 |] ~policy:(Policy.Chernoff 0.9)
  in
  check_close "lambda 0" 0.0 r.lambda;
  check_bool "nothing mixed" true (Array.for_all not r.mixed);
  check_bool "nothing common" true (Array.for_all not r.common)

let test_construct_success_ratio_chernoff () =
  (* The headline guarantee: with gamma = 0.9 the success ratio must clear
     0.9 (here statistically, over 300 identities of mixed frequency). *)
  let m = 2000 in
  let rng = Rng.create 34 in
  let freqs = Array.init 300 (fun _ -> 1 + Rng.int rng 100) in
  let membership = make_matrix ~m ~freqs in
  let epsilons = Array.init 300 (fun _ -> Rng.float rng 0.9) in
  let r = Construct.run rng ~membership ~epsilons ~policy:(Policy.Chernoff 0.9) in
  let ratio =
    Metrics.success_ratio ~membership ~published:(Index.matrix r.index) ~epsilons
  in
  check_bool (Printf.sprintf "success ratio %f >= 0.9" ratio) true (ratio >= 0.9)

let test_construct_basic_about_half () =
  (* The basic policy hits its target only ~half the time (the paper's
     critique).  Use a single frequency class for a clean expectation. *)
  let m = 2000 in
  let freqs = Array.make 400 50 in
  let membership = make_matrix ~m ~freqs in
  let epsilons = Array.make 400 0.5 in
  let rng = Rng.create 35 in
  let r = Construct.run rng ~membership ~epsilons ~policy:Policy.Basic in
  let ratio =
    Metrics.success_ratio ~membership ~published:(Index.matrix r.index) ~epsilons
  in
  check_bool (Printf.sprintf "basic ratio %f in (0.3, 0.7)" ratio) true
    (ratio > 0.3 && ratio < 0.7)

let test_extend_keeps_old_rows_static () =
  let m = 100 in
  let freqs_old = [| 5; 20; 95 |] in
  let membership_old = make_matrix' ~m ~freqs:freqs_old in
  let epsilons_old = [| 0.5; 0.7; 0.5 |] in
  let previous =
    Construct.run (Rng.create 71) ~membership:membership_old ~epsilons:epsilons_old
      ~policy:Policy.Basic
  in
  (* Grow the population by two owners. *)
  let membership = Bitmatrix.create ~rows:5 ~cols:m in
  for j = 0 to 2 do
    Bitvec.iter_set
      (fun p -> Bitmatrix.set membership ~row:j ~col:p true)
      (Bitmatrix.row membership_old j)
  done;
  let rng = Rng.create 72 in
  Array.iter (fun p -> Bitmatrix.set membership ~row:3 ~col:p true)
    (Rng.sample_without_replacement rng ~k:7 ~n:m);
  Array.iter (fun p -> Bitmatrix.set membership ~row:4 ~col:p true)
    (Rng.sample_without_replacement rng ~k:90 ~n:m);
  let epsilons = [| 0.5; 0.7; 0.5; 0.6; 0.6 |] in
  let extended =
    Construct.extend (Rng.create 73) ~previous ~membership ~epsilons ~policy:Policy.Basic
  in
  (* Old rows are bit-for-bit the previous publication. *)
  for j = 0 to 2 do
    check_bool (Printf.sprintf "old row %d unchanged" j) true
      (Bitvec.equal
         (Bitmatrix.row (Index.matrix previous.index) j)
         (Bitmatrix.row (Index.matrix extended.index) j))
  done;
  (* ... so intersecting the two versions gains nothing on old owners. *)
  for j = 0 to 2 do
    check_close
      (Printf.sprintf "no intersection gain on %d" j)
      (Attack.intersection_attack ~membership:membership_old
         ~published_list:[ Index.matrix previous.index ] ~owner:j)
      (Attack.intersection_attack ~membership:membership_old
         ~published_list:[ Index.matrix previous.index; Index.matrix extended.index ]
         ~owner:j)
  done;
  (* New rows are live: recall + classification. *)
  check_bool "new rare owner not common" false extended.common.(3);
  check_bool "new ubiquitous owner common" true extended.common.(4);
  for j = 3 to 4 do
    check_bool (Printf.sprintf "recall on new owner %d" j) true
      (Index.recall_ok ~membership extended.index ~owner:j)
  done

let test_extend_rejects_changed_history () =
  let m = 50 in
  let membership_old = make_matrix' ~m ~freqs:[| 5 |] in
  let previous =
    Construct.run (Rng.create 74) ~membership:membership_old ~epsilons:[| 0.5 |]
      ~policy:Policy.Basic
  in
  (* Same owner acquires a record at a provider her published row may miss:
     find one outside the published row. *)
  let published = Bitmatrix.row (Index.matrix previous.index) 0 in
  let outside = ref (-1) in
  for p = m - 1 downto 0 do
    if not (Bitvec.get published p) then outside := p
  done;
  if !outside >= 0 then begin
    let membership = Bitmatrix.copy membership_old in
    Bitmatrix.set membership ~row:0 ~col:!outside true;
    Alcotest.check_raises "changed history rejected"
      (Invalid_argument "Construct.extend: existing owner's memberships changed; rebuild instead")
      (fun () ->
        ignore
          (Construct.extend (Rng.create 75) ~previous ~membership ~epsilons:[| 0.5 |]
             ~policy:Policy.Basic))
  end

let test_extend_validation () =
  let m = 30 in
  let membership = make_matrix' ~m ~freqs:[| 3; 4 |] in
  let previous =
    Construct.run (Rng.create 76) ~membership ~epsilons:[| 0.5; 0.5 |] ~policy:Policy.Basic
  in
  let smaller = Bitmatrix.create ~rows:1 ~cols:m in
  Alcotest.check_raises "shrinking rejected"
    (Invalid_argument "Construct.extend: the population cannot shrink") (fun () ->
      ignore
        (Construct.extend (Rng.create 77) ~previous ~membership:smaller ~epsilons:[| 0.5 |]
           ~policy:Policy.Basic));
  let wider = Bitmatrix.create ~rows:2 ~cols:(m + 1) in
  Alcotest.check_raises "provider change rejected"
    (Invalid_argument "Construct.extend: the provider count changed") (fun () ->
      ignore
        (Construct.extend (Rng.create 78) ~previous ~membership:wider
           ~epsilons:[| 0.5; 0.5 |] ~policy:Policy.Basic))

let test_plan_betas_matches_run () =
  let membership = make_matrix ~m:500 ~freqs:[| 5; 50; 495 |] in
  let epsilons = [| 0.4; 0.7; 0.9 |] in
  let frequencies = Array.init 3 (fun j -> Bitmatrix.row_count membership j) in
  let plan =
    Construct.plan_betas ~policy:(Policy.Chernoff 0.9) ~epsilons ~frequencies ~m:500
      (Rng.create 77)
  in
  let r =
    Construct.run (Rng.create 77) ~membership ~epsilons ~policy:(Policy.Chernoff 0.9)
  in
  Alcotest.(check (array bool)) "same commons" plan.is_common r.common;
  Alcotest.(check (array (float 1e-12))) "same betas" plan.final r.betas

(* ---------- Analysis ---------- *)

let test_analysis_matches_matrix_path () =
  (* The binomial fast path and the full matrix construction must agree on
     the success probability of a frequency class. *)
  let m = 1000 and frequency = 20 and epsilon = 0.5 in
  let policy = Policy.Inc_exp 0.01 in
  let fast =
    Analysis.empirical_success (Rng.create 40) ~policy ~frequency ~epsilon ~m ~trials:3000
  in
  let matrix_trials = 600 in
  let rng = Rng.create 41 in
  let beta =
    Policy.beta policy ~sigma:(float_of_int frequency /. float_of_int m) ~epsilon ~m
  in
  let ok = ref 0 in
  for _ = 1 to matrix_trials do
    let membership = Bitmatrix.create ~rows:1 ~cols:m in
    let chosen = Rng.sample_without_replacement rng ~k:frequency ~n:m in
    Array.iter (fun p -> Bitmatrix.set membership ~row:0 ~col:p true) chosen;
    let published = Publish.publish_matrix rng ~betas:[| beta |] membership in
    if Metrics.owner_success ~membership ~published ~epsilon ~owner:0 then incr ok
  done;
  let slow = float_of_int !ok /. float_of_int matrix_trials in
  check_bool
    (Printf.sprintf "fast %f vs matrix %f" fast slow)
    true
    (Float.abs (fast -. slow) < 0.08)

let test_analysis_chernoff_meets_gamma () =
  let m = 10_000 in
  List.iter
    (fun frequency ->
      let rate =
        Analysis.empirical_success (Rng.create 42) ~policy:(Policy.Chernoff 0.9) ~frequency
          ~epsilon:0.5 ~m ~trials:2000
      in
      check_bool (Printf.sprintf "freq %d: %f >= 0.9" frequency rate) true (rate >= 0.88))
    [ 10; 100; 500 ]

let test_analysis_exact_success_matches_empirical () =
  let m = 2000 in
  List.iter
    (fun (frequency, epsilon, policy) ->
      let beta =
        Policy.beta policy ~sigma:(float_of_int frequency /. float_of_int m) ~epsilon ~m
      in
      let exact = Analysis.exact_success ~beta ~frequency ~epsilon ~m in
      let empirical =
        Analysis.empirical_success_with_beta (Rng.create 59) ~beta ~frequency ~epsilon ~m
          ~trials:4000
      in
      check_bool
        (Printf.sprintf "f=%d eps=%.2f: exact %f vs empirical %f" frequency epsilon exact
           empirical)
        true
        (Float.abs (exact -. empirical) < 0.03))
    [
      (20, 0.5, Policy.Basic);
      (20, 0.5, Policy.Chernoff 0.9);
      (100, 0.7, Policy.Inc_exp 0.02);
      (5, 0.3, Policy.Basic);
    ]

let test_analysis_exact_dominates_chernoff_bound () =
  (* Theorem 3.1's bound must lower-bound the exact tail probability. *)
  let m = 5000 in
  List.iter
    (fun (frequency, epsilon) ->
      let sigma = float_of_int frequency /. float_of_int m in
      let beta = Policy.beta (Policy.Chernoff 0.9) ~sigma ~epsilon ~m in
      let bound = Policy.analytic_success_bound ~beta ~sigma ~epsilon ~m in
      let exact = Analysis.exact_success ~beta ~frequency ~epsilon ~m in
      check_bool
        (Printf.sprintf "f=%d eps=%.2f: exact %f >= bound %f" frequency epsilon exact bound)
        true
        (exact >= bound -. 1e-9);
      check_bool "and clears gamma" true (exact >= 0.9))
    [ (10, 0.5); (100, 0.5); (500, 0.8); (50, 0.2) ]

let test_analysis_exact_edges () =
  check_close "empty row" 1.0 (Analysis.exact_success ~beta:0.5 ~frequency:0 ~epsilon:0.9 ~m:100);
  check_close "eps 0 trivial" 1.0 (Analysis.exact_success ~beta:0.0 ~frequency:5 ~epsilon:0.0 ~m:100);
  check_close "eps 1 impossible" 0.0
    (Analysis.exact_success ~beta:0.9 ~frequency:5 ~epsilon:1.0 ~m:100);
  check_close "beta 0 fails" 0.0 (Analysis.exact_success ~beta:0.0 ~frequency:5 ~epsilon:0.5 ~m:100);
  check_close "beta 1 fp is 1 - sigma" 1.0
    (Analysis.exact_success ~beta:1.0 ~frequency:5 ~epsilon:0.5 ~m:100)

let test_analysis_expected_values () =
  check_close "expected fp rate" (0.5 *. 900.0 /. ((0.5 *. 900.0) +. 100.0))
    (Analysis.expected_false_positive_rate ~beta:0.5 ~frequency:100 ~m:1000);
  check_close "expected query cost" (100.0 +. 450.0)
    (Analysis.expected_query_cost ~beta:0.5 ~frequency:100 ~m:1000);
  check_close "beta above 1 clamps" 1000.0
    (Analysis.expected_query_cost ~beta:5.0 ~frequency:100 ~m:1000)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"exact_success within [0,1] and monotone in beta" ~count:300
      (quad (int_range 1 50) (float_range 0.05 0.95) (float_range 0.0 0.5) (float_range 0.0 0.5))
      (fun (frequency, epsilon, b1, b2) ->
        let m = 200 in
        let lo = Float.min b1 b2 and hi = Float.max b1 b2 in
        let s_lo = Analysis.exact_success ~beta:lo ~frequency ~epsilon ~m in
        let s_hi = Analysis.exact_success ~beta:hi ~frequency ~epsilon ~m in
        s_lo >= 0.0 && s_hi <= 1.0 && s_hi >= s_lo -. 1e-9);
    Test.make ~name:"beta_basic in [0, inf) and 0 iff trivial" ~count:500
      (pair (float_range 0.0 1.0) (float_range 0.0 1.0))
      (fun (sigma, epsilon) ->
        let b = Policy.beta_basic ~sigma ~epsilon in
        b >= 0.0 && ((b > 0.0) = (sigma > 0.0 && epsilon > 0.0)));
    Test.make ~name:"published row always superset" ~count:200
      (pair small_int (float_range 0.0 1.0))
      (fun (seed, beta) ->
        let rng = Rng.create seed in
        let row = Bitvec.create 64 in
        for i = 0 to 63 do
          if Rng.bool rng then Bitvec.set row i
        done;
        let out = Publish.publish_row rng ~beta row in
        Bitvec.count (Bitvec.diff row out) = 0);
    Test.make ~name:"lambda within [0, 1]" ~count:500
      (triple (float_range 0.0 0.99) (int_range 0 100) (int_range 0 100))
      (fun (xi, a, b) ->
        let n_common = min a b and n_total = max a b in
        let l = Mixing.lambda ~xi ~n_common ~n_total in
        l >= 0.0 && l <= 1.0);
    Test.make ~name:"fp rate within [0, 1]" ~count:200
      (pair small_int (int_range 1 50))
      (fun (seed, f) ->
        let m = 100 in
        let rng = Rng.create seed in
        let membership = Bitmatrix.create ~rows:1 ~cols:m in
        let chosen = Rng.sample_without_replacement rng ~k:f ~n:m in
        Array.iter (fun p -> Bitmatrix.set membership ~row:0 ~col:p true) chosen;
        let published = Publish.publish_matrix rng ~betas:[| 0.4 |] membership in
        let fp = Metrics.false_positive_rate ~membership ~published ~owner:0 in
        fp >= 0.0 && fp <= 1.0);
  ]

let () =
  Alcotest.run "core"
    [
      ( "policy",
        [
          Alcotest.test_case "eq3 formula" `Quick test_beta_basic_formula;
          Alcotest.test_case "eq3 edges" `Quick test_beta_basic_edges;
          Alcotest.test_case "policy ordering" `Quick test_beta_policies_ordering;
          Alcotest.test_case "eq5 formula" `Quick test_beta_chernoff_formula;
          Alcotest.test_case "monotone in sigma" `Quick test_beta_monotone_in_sigma;
          Alcotest.test_case "monotone in epsilon" `Quick test_beta_monotone_in_epsilon;
          Alcotest.test_case "basic threshold closed form" `Quick
            test_sigma_threshold_basic_closed_form;
          Alcotest.test_case "threshold consistent with beta" `Quick
            test_sigma_threshold_consistent_with_beta;
          Alcotest.test_case "threshold at eps 0" `Quick test_sigma_threshold_eps_zero;
          Alcotest.test_case "analytic success bound" `Quick test_analytic_success_bound;
          Alcotest.test_case "names" `Quick test_policy_names;
        ] );
      ( "mixing",
        [
          Alcotest.test_case "eq7 formula" `Quick test_lambda_formula;
          Alcotest.test_case "validation" `Quick test_lambda_validation;
          Alcotest.test_case "achieves decoy fraction" `Quick test_lambda_achieves_decoy_fraction;
          Alcotest.test_case "select decoys modes" `Quick test_select_decoys_modes;
          Alcotest.test_case "exact-count mixing holds bound" `Quick
            test_construct_exact_count_mixing;
          Alcotest.test_case "mix rate" `Quick test_mix_rate;
        ] );
      ( "publish",
        [
          Alcotest.test_case "truthful 1 -> 1" `Quick test_publish_truthful;
          Alcotest.test_case "beta 0 exact" `Quick test_publish_beta_zero_exact;
          Alcotest.test_case "beta 1 full" `Quick test_publish_beta_one_full;
          Alcotest.test_case "noise rate" `Quick test_publish_noise_rate;
          Alcotest.test_case "matrix per-row betas" `Quick test_publish_matrix_per_row_betas;
          Alcotest.test_case "provider floors" `Quick test_publish_with_floors;
          Alcotest.test_case "floors keep the guarantee" `Quick
            test_construct_with_floors_keeps_guarantee;
          Alcotest.test_case "false positives distribution" `Quick
            test_false_positives_distribution;
        ] );
      ( "index+metrics",
        [
          Alcotest.test_case "query" `Quick test_index_query;
          Alcotest.test_case "recall" `Quick test_index_recall;
          Alcotest.test_case "csv round trip" `Quick test_index_csv_round_trip;
          Alcotest.test_case "csv malformed input" `Quick test_index_csv_malformed;
          Alcotest.test_case "fp rate" `Quick test_metrics_fp_rate;
          Alcotest.test_case "empty row" `Quick test_metrics_empty_row;
          Alcotest.test_case "success ratio" `Quick test_metrics_success_ratio;
        ] );
      ( "attack",
        [
          Alcotest.test_case "primary simulation" `Quick test_primary_attack_simulation;
          Alcotest.test_case "primary empty row" `Quick test_primary_attack_empty_row;
          Alcotest.test_case "common-identity unprotected" `Quick
            test_common_identity_attack_unprotected;
          Alcotest.test_case "common-identity with decoys" `Quick
            test_common_identity_attack_with_decoys;
          Alcotest.test_case "colluding providers" `Quick test_colluding_attack;
          Alcotest.test_case "collusion never helps the defender" `Quick
            test_colluding_never_below_primary;
          Alcotest.test_case "intersection across rebuilds" `Quick test_intersection_attack;
          Alcotest.test_case "classification" `Quick test_classification;
        ] );
      ( "construct",
        [
          Alcotest.test_case "recall invariant" `Quick test_construct_recall_invariant;
          Alcotest.test_case "common flags" `Quick test_construct_common_flags;
          Alcotest.test_case "xi and lambda" `Quick test_construct_xi_lambda;
          Alcotest.test_case "no commons, no mixing" `Quick test_construct_no_commons_no_mixing;
          Alcotest.test_case "chernoff success ratio" `Quick test_construct_success_ratio_chernoff;
          Alcotest.test_case "basic about half" `Quick test_construct_basic_about_half;
          Alcotest.test_case "plan matches run" `Quick test_plan_betas_matches_run;
          Alcotest.test_case "extend keeps old rows static" `Quick
            test_extend_keeps_old_rows_static;
          Alcotest.test_case "extend rejects changed history" `Quick
            test_extend_rejects_changed_history;
          Alcotest.test_case "extend validation" `Quick test_extend_validation;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "fast path matches matrix path" `Quick
            test_analysis_matches_matrix_path;
          Alcotest.test_case "chernoff meets gamma" `Quick test_analysis_chernoff_meets_gamma;
          Alcotest.test_case "exact matches empirical" `Quick
            test_analysis_exact_success_matches_empirical;
          Alcotest.test_case "exact dominates chernoff bound" `Quick
            test_analysis_exact_dominates_chernoff_bound;
          Alcotest.test_case "exact edges" `Quick test_analysis_exact_edges;
          Alcotest.test_case "expected values" `Quick test_analysis_expected_values;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
