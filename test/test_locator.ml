(* Tests for the locator-service application layer: delegation, access
   control, the two-phase search and its cost accounting. *)

open Eppi_locator

(* Unwrap [query_ppi_result] where the test has already constructed the
   index, so assertions can speak in plain provider lists. *)
let query_exn t ~owner =
  match Locator.query_ppi_result t ~owner with
  | Ok providers -> providers
  | Error Locator.No_index -> Alcotest.fail "no index constructed yet"

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_network () =
  let t = Locator.create ~providers:10 ~owners:5 in
  (* Owner 0 at providers 0 and 1; owner 1 at provider 2. *)
  Locator.delegate t ~owner:0 ~epsilon:0.5 ~provider:0 ~body:"records-a";
  Locator.delegate t ~owner:0 ~epsilon:0.5 ~provider:1 ~body:"records-b";
  Locator.delegate t ~owner:1 ~epsilon:0.9 ~provider:2 ~body:"records-c";
  t

let test_create_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Locator.create: empty network") (fun () ->
      ignore (Locator.create ~providers:0 ~owners:1))

let test_delegate_records_membership () =
  let t = small_network () in
  let m = Locator.membership t in
  check_bool "owner 0 at provider 0" true (Eppi_prelude.Bitmatrix.get m ~row:0 ~col:0);
  check_bool "owner 0 at provider 1" true (Eppi_prelude.Bitmatrix.get m ~row:0 ~col:1);
  check_bool "owner 1 at provider 2" true (Eppi_prelude.Bitmatrix.get m ~row:1 ~col:2);
  check_bool "no stray membership" false (Eppi_prelude.Bitmatrix.get m ~row:0 ~col:2)

let test_delegate_sets_epsilon () =
  let t = small_network () in
  Alcotest.(check (float 0.0)) "epsilon stored" 0.9 (Locator.epsilon_of t ~owner:1);
  Alcotest.check_raises "bad epsilon"
    (Invalid_argument "Locator.delegate: epsilon out of [0, 1]") (fun () ->
      Locator.delegate t ~owner:0 ~epsilon:2.0 ~provider:0 ~body:"x")

let test_query_requires_index () =
  let t = small_network () in
  check_bool "no index yet" true (Locator.query_ppi_result t ~owner:0 = Error Locator.No_index);
  check_bool "index initially absent" true (Locator.index t = None)

let test_query_ppi_result_variants () =
  let t = small_network () in
  (* Typed error before construction, where the legacy wrapper raises. *)
  check_bool "Error No_index before construction" true
    (Locator.query_ppi_result t ~owner:0 = Error Locator.No_index);
  Locator.construct_ppi t ~policy:(Eppi.Policy.Chernoff 0.9);
  (match Locator.query_ppi_result t ~owner:0 with
  | Ok providers ->
      check_bool "Ok lists the true providers" true (List.mem 0 providers && List.mem 1 providers)
  | Error Locator.No_index -> Alcotest.fail "index exists, expected Ok");
  (* Both surfaces validate the owner id the same way. *)
  Alcotest.check_raises "result validates owner" (Invalid_argument "Locator: unknown owner")
    (fun () -> ignore (Locator.query_ppi_result t ~owner:99))

let test_serve_engine_over_locator () =
  let t = small_network () in
  check_bool "no engine before construction" true (Locator.serve_engine t = Error Locator.No_index);
  Locator.construct_ppi t ~policy:(Eppi.Policy.Chernoff 0.9);
  match Locator.serve_engine t with
  | Error Locator.No_index -> Alcotest.fail "index exists, expected an engine"
  | Ok engine ->
      for owner = 0 to 4 do
        match Eppi_serve.Serve.query engine ~owner with
        | Eppi_serve.Serve.Providers providers ->
            Alcotest.(check (list int))
              (Printf.sprintf "engine equals query_ppi for owner %d" owner)
              (query_exn t ~owner) providers
        | _ -> Alcotest.fail "engine failed to serve a delegated owner"
      done

let test_query_recall () =
  let t = small_network () in
  Locator.construct_ppi t ~policy:(Eppi.Policy.Chernoff 0.9);
  let result = query_exn t ~owner:0 in
  check_bool "true positives included" true (List.mem 0 result && List.mem 1 result)

let test_owner_can_search_own_records () =
  let t = small_network () in
  Locator.construct_ppi t ~policy:Eppi.Policy.Basic;
  (* Delegation grants the owner herself access. *)
  let outcome = Locator.search t ~searcher:"owner:0" ~owner:0 in
  check_int "both providers found" 2 (List.length outcome.records);
  let providers = List.map fst outcome.records in
  check_bool "providers 0 and 1" true (List.mem 0 providers && List.mem 1 providers)

let test_unauthorized_searcher_denied () =
  let t = small_network () in
  Locator.construct_ppi t ~policy:Eppi.Policy.Basic;
  let outcome = Locator.search t ~searcher:"stranger" ~owner:0 in
  check_int "nothing found" 0 (List.length outcome.records);
  check_bool "denials recorded" true (outcome.denied > 0)

let test_grant_enables_search () =
  let t = small_network () in
  Locator.grant t ~provider:0 ~searcher:"dr-lee" ~owner:0;
  Locator.grant t ~provider:1 ~searcher:"dr-lee" ~owner:0;
  Locator.construct_ppi t ~policy:Eppi.Policy.Basic;
  let outcome = Locator.search t ~searcher:"dr-lee" ~owner:0 in
  check_int "found at both" 2 (List.length outcome.records);
  (* Partial grants only reveal the granted provider. *)
  let t2 = small_network () in
  Locator.grant t2 ~provider:0 ~searcher:"dr-kim" ~owner:0;
  Locator.construct_ppi t2 ~policy:Eppi.Policy.Basic;
  let outcome2 = Locator.search t2 ~searcher:"dr-kim" ~owner:0 in
  check_int "found at one" 1 (List.length outcome2.records)

let test_search_cost_accounting () =
  let t = small_network () in
  (* Beta = 1 everywhere: the query returns all 10 providers. *)
  let eps = 1.0 in
  Locator.delegate t ~owner:0 ~epsilon:eps ~provider:0 ~body:"more";
  Locator.construct_ppi t ~policy:Eppi.Policy.Basic;
  Locator.grant t ~provider:0 ~searcher:"s" ~owner:0;
  Locator.grant t ~provider:1 ~searcher:"s" ~owner:0;
  for p = 2 to 9 do
    Locator.grant t ~provider:p ~searcher:"s" ~owner:0
  done;
  let outcome = Locator.search t ~searcher:"s" ~owner:0 in
  check_int "contacted everyone" 10 outcome.contacted;
  check_int "records at 2" 2 (List.length outcome.records);
  check_int "eight wasted contacts" 8 outcome.wasted;
  check_int "no denials" 0 outcome.denied

let test_multiple_records_per_provider () =
  let t = Locator.create ~providers:2 ~owners:1 in
  Locator.delegate t ~owner:0 ~epsilon:0.0 ~provider:0 ~body:"visit-1";
  Locator.delegate t ~owner:0 ~epsilon:0.0 ~provider:0 ~body:"visit-2";
  Locator.construct_ppi t ~policy:Eppi.Policy.Basic;
  let outcome = Locator.search t ~searcher:"owner:0" ~owner:0 in
  (match outcome.records with
  | [ (0, records) ] ->
      check_int "both visits" 2 (List.length records);
      Alcotest.(check (list string))
        "record bodies in delegation order"
        [ "visit-1"; "visit-2" ]
        (List.map (fun (r : Locator.record) -> r.body) records)
  | _ -> Alcotest.fail "expected both records at provider 0")

let test_epsilon_zero_returns_exact_providers () =
  let t = Locator.create ~providers:50 ~owners:1 in
  Locator.delegate t ~owner:0 ~epsilon:0.0 ~provider:7 ~body:"r";
  Locator.construct_ppi t ~policy:Eppi.Policy.Basic;
  Alcotest.(check (list int)) "no noise at eps 0" [ 7 ] (query_exn t ~owner:0)

let test_high_epsilon_adds_noise () =
  let t = Locator.create ~providers:200 ~owners:1 in
  Locator.delegate t ~owner:0 ~epsilon:0.9 ~provider:7 ~body:"r";
  Locator.construct_ppi t ~policy:(Eppi.Policy.Chernoff 0.9);
  let result = query_exn t ~owner:0 in
  check_bool "noise providers present" true (List.length result > 5);
  check_bool "true provider present" true (List.mem 7 result)

let test_provider_sensitivity_floor () =
  (* A sensitive clinic gets cover noise in everyone's rows. *)
  let t = Locator.create ~providers:300 ~owners:40 in
  for owner = 0 to 39 do
    Locator.delegate t ~owner ~epsilon:0.1 ~provider:(owner mod 7) ~body:"r"
  done;
  Locator.set_provider_sensitivity t ~provider:299 ~floor:0.95;
  Locator.construct_ppi ~seed:5 t ~policy:Eppi.Policy.Basic;
  let index = Option.get (Locator.index t) in
  (* Provider 299 holds nobody, yet appears in most rows. *)
  let hits = ref 0 in
  for owner = 0 to 39 do
    if List.mem 299 (Eppi.Index.query index ~owner) then incr hits
  done;
  check_bool (Printf.sprintf "sensitive provider covered (%d/40)" !hits) true (!hits > 30);
  Alcotest.check_raises "bad floor"
    (Invalid_argument "Locator.set_provider_sensitivity: floor out of [0, 1]") (fun () ->
      Locator.set_provider_sensitivity t ~provider:0 ~floor:(-0.1))

let test_reconstruct_after_new_delegation () =
  let t = small_network () in
  Locator.construct_ppi t ~policy:Eppi.Policy.Basic;
  let before = List.length (query_exn t ~owner:2) in
  check_int "owner 2 unknown before" 0 before;
  Locator.delegate t ~owner:2 ~epsilon:0.0 ~provider:5 ~body:"new";
  Locator.construct_ppi t ~policy:Eppi.Policy.Basic;
  Alcotest.(check (list int)) "visible after rebuild" [ 5 ] (query_exn t ~owner:2)

(* ---------- searcher anonymity (Crowds layer) ---------- *)

open Eppi_prelude

let crowd = { Anonymity.members = 20; forward_probability = 0.75 }

let test_anonymity_path_structure () =
  let rng = Rng.create 1 in
  for _ = 1 to 50 do
    let outcome = Anonymity.simulate_query rng crowd ~initiator:3 in
    (match outcome.path with
    | first :: _ -> check_int "path starts at initiator" 3 first
    | [] -> Alcotest.fail "empty path");
    check_bool "submitter on path" true (List.mem outcome.submitted_by outcome.path);
    check_bool "members valid" true
      (List.for_all (fun p -> p >= 0 && p < 20) outcome.path);
    check_bool "latency positive" true (outcome.latency > 0.0);
    check_int "hops = path length" (List.length outcome.path) outcome.hops
  done

let test_anonymity_path_length () =
  let rng = Rng.create 2 in
  let trials = 4000 in
  let total = ref 0 in
  for _ = 1 to trials do
    let outcome = Anonymity.simulate_query rng crowd ~initiator:0 in
    total := !total + outcome.hops
  done;
  let mean = float_of_int !total /. float_of_int trials in
  let expected = Anonymity.expected_path_length ~forward_probability:0.75 in
  check_bool
    (Printf.sprintf "mean path %f near %f" mean expected)
    true
    (Float.abs (mean -. expected) < 0.2)

let test_anonymity_probable_innocence_condition () =
  (* Reiter-Rubin: n >= pf/(pf - 1/2) (c+1). *)
  check_bool "holds" true
    (Anonymity.probable_innocence ~members:20 ~forward_probability:0.75 ~colluders:3);
  check_bool "fails for big collusion" false
    (Anonymity.probable_innocence ~members:20 ~forward_probability:0.75 ~colluders:10);
  check_bool "never holds at pf <= 1/2" false
    (Anonymity.probable_innocence ~members:1000 ~forward_probability:0.5 ~colluders:1)

let test_anonymity_predecessor_attack_bounded () =
  (* With probable innocence satisfied, the observed predecessor is the
     initiator at most half the time. *)
  let rng = Rng.create 3 in
  let conf = Anonymity.predecessor_confidence rng crowd ~colluders:3 ~trials:2000 in
  check_bool (Printf.sprintf "confidence %f > 0" conf) true (conf > 0.0);
  check_bool (Printf.sprintf "probable innocence: %f <= 0.55" conf) true (conf <= 0.55)

let test_anonymity_no_forwarding_exposes () =
  (* pf = 0: the first member contacted is always the submitter and the
     predecessor is always the initiator: no anonymity. *)
  let rng = Rng.create 4 in
  let direct = { Anonymity.members = 10; forward_probability = 0.0 } in
  let conf = Anonymity.predecessor_confidence rng direct ~colluders:2 ~trials:1000 in
  check_bool (Printf.sprintf "exposed (%f)" conf) true (conf > 0.99)

let test_anonymity_expected_path_length_empirical () =
  (* The closed form 1/(1-pf) + 1 against the simulated mean at several
     forwarding probabilities; pf = 0 must give exactly 2 hops per query. *)
  let rng = Rng.create 12 in
  let direct = { Anonymity.members = 10; forward_probability = 0.0 } in
  Alcotest.(check (float 1e-9)) "pf 0 closed form" 2.0
    (Anonymity.expected_path_length ~forward_probability:0.0);
  for _ = 1 to 50 do
    let outcome = Anonymity.simulate_query rng direct ~initiator:0 in
    check_int "pf 0: always exactly 2 hops" 2 outcome.hops
  done;
  List.iter
    (fun pf ->
      let config = { Anonymity.members = 15; forward_probability = pf } in
      let trials = 4000 in
      let total = ref 0 in
      for _ = 1 to trials do
        total := !total + (Anonymity.simulate_query rng config ~initiator:1).hops
      done;
      let mean = float_of_int !total /. float_of_int trials in
      let expected = Anonymity.expected_path_length ~forward_probability:pf in
      check_bool
        (Printf.sprintf "pf %.2f: mean %f near %f" pf mean expected)
        true
        (Float.abs (mean -. expected) < 0.15))
    [ 0.25; 0.5 ]

let test_anonymity_predecessor_degenerate () =
  (* No colluders: nobody observes anything, confidence is exactly 0. *)
  let rng = Rng.create 13 in
  Alcotest.(check (float 0.0)) "0 colluders" 0.0
    (Anonymity.predecessor_confidence rng crowd ~colluders:0 ~trials:200);
  (* The whole crowd colluding leaves no honest initiator to attack. *)
  Alcotest.check_raises "colluders = members"
    (Invalid_argument "Anonymity.predecessor_confidence: bad colluder count") (fun () ->
      ignore (Anonymity.predecessor_confidence rng crowd ~colluders:20 ~trials:10));
  Alcotest.check_raises "negative colluders"
    (Invalid_argument "Anonymity.predecessor_confidence: bad colluder count") (fun () ->
      ignore (Anonymity.predecessor_confidence rng crowd ~colluders:(-1) ~trials:10));
  Alcotest.check_raises "no trials"
    (Invalid_argument "Anonymity.predecessor_confidence: trials must be positive") (fun () ->
      ignore (Anonymity.predecessor_confidence rng crowd ~colluders:2 ~trials:0))

let test_anonymity_validation () =
  let rng = Rng.create 5 in
  Alcotest.check_raises "bad pf"
    (Invalid_argument "Anonymity: forward probability must be in [0, 1)") (fun () ->
      ignore
        (Anonymity.simulate_query rng { Anonymity.members = 5; forward_probability = 1.0 }
           ~initiator:0));
  Alcotest.check_raises "bad initiator"
    (Invalid_argument "Anonymity.simulate_query: bad initiator") (fun () ->
      ignore (Anonymity.simulate_query rng crowd ~initiator:99))

let () =
  Alcotest.run "locator"
    [
      ( "setup",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "delegate membership" `Quick test_delegate_records_membership;
          Alcotest.test_case "delegate epsilon" `Quick test_delegate_sets_epsilon;
        ] );
      ( "search",
        [
          Alcotest.test_case "query requires index" `Quick test_query_requires_index;
          Alcotest.test_case "typed query result" `Quick test_query_ppi_result_variants;
          Alcotest.test_case "serve engine over locator" `Quick test_serve_engine_over_locator;
          Alcotest.test_case "query recall" `Quick test_query_recall;
          Alcotest.test_case "owner self-search" `Quick test_owner_can_search_own_records;
          Alcotest.test_case "unauthorized denied" `Quick test_unauthorized_searcher_denied;
          Alcotest.test_case "grants enable search" `Quick test_grant_enables_search;
          Alcotest.test_case "cost accounting" `Quick test_search_cost_accounting;
          Alcotest.test_case "multiple records" `Quick test_multiple_records_per_provider;
        ] );
      ( "privacy knob",
        [
          Alcotest.test_case "epsilon 0 exact" `Quick test_epsilon_zero_returns_exact_providers;
          Alcotest.test_case "high epsilon noisy" `Quick test_high_epsilon_adds_noise;
          Alcotest.test_case "provider sensitivity floor" `Quick
            test_provider_sensitivity_floor;
          Alcotest.test_case "rebuild after delegation" `Quick
            test_reconstruct_after_new_delegation;
        ] );
      ( "anonymity",
        [
          Alcotest.test_case "path structure" `Quick test_anonymity_path_structure;
          Alcotest.test_case "path length" `Quick test_anonymity_path_length;
          Alcotest.test_case "expected path length empirical" `Quick
            test_anonymity_expected_path_length_empirical;
          Alcotest.test_case "predecessor degenerate cases" `Quick
            test_anonymity_predecessor_degenerate;
          Alcotest.test_case "probable innocence condition" `Quick
            test_anonymity_probable_innocence_condition;
          Alcotest.test_case "predecessor attack bounded" `Quick
            test_anonymity_predecessor_attack_bounded;
          Alcotest.test_case "no forwarding exposes" `Quick
            test_anonymity_no_forwarding_exposes;
          Alcotest.test_case "validation" `Quick test_anonymity_validation;
        ] );
    ]
