(* Tests for the prelude substrate: RNG, sampling, stats, bit structures,
   modular arithmetic and table rendering. *)

open Eppi_prelude

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check_bool "different seeds diverge" true (!same < 4)

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  (* The child's stream must not merely replay the parent's. *)
  let overlap = ref 0 in
  let parent_vals = Array.init 32 (fun _ -> Rng.bits64 parent) in
  let child_vals = Array.init 32 (fun _ -> Rng.bits64 child) in
  Array.iter (fun v -> if Array.exists (Int64.equal v) parent_vals then incr overlap) child_vals;
  check_bool "split stream is fresh" true (!overlap = 0)

let test_rng_copy () =
  let a = Rng.create 5 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copies share state" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    check_bool "in [0, 7)" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_uniform () =
  let rng = Rng.create 3 in
  let counts = Array.make 5 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    let v = Rng.int rng 5 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = float_of_int trials /. 5.0 in
      check_bool
        (Printf.sprintf "bucket %d near uniform (%d)" i c)
        true
        (Float.abs (float_of_int c -. expected) < 5.0 *. sqrt expected))
    counts

let test_rng_int_in () =
  let rng = Rng.create 13 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-3) 3 in
    check_bool "in [-3, 3]" true (v >= -3 && v <= 3)
  done

let test_rng_float_range () =
  let rng = Rng.create 17 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    check_bool "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_bernoulli_edges () =
  let rng = Rng.create 19 in
  for _ = 1 to 100 do
    check_bool "p=0 never" false (Rng.bernoulli rng 0.0);
    check_bool "p=1 always" true (Rng.bernoulli rng 1.0)
  done

let test_rng_bernoulli_rate () =
  let rng = Rng.create 23 in
  let hits = ref 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  check_bool "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.01)

let test_shuffle_permutation () =
  let rng = Rng.create 29 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = Rng.create 31 in
  let s = Rng.sample_without_replacement rng ~k:10 ~n:20 in
  check_int "size" 10 (Array.length s);
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun v ->
      check_bool "in range" true (v >= 0 && v < 20);
      check_bool "distinct" false (Hashtbl.mem seen v);
      Hashtbl.add seen v ())
    s;
  Alcotest.check_raises "k > n rejected" (Invalid_argument "Rng.sample_without_replacement")
    (fun () -> ignore (Rng.sample_without_replacement rng ~k:5 ~n:3))

let test_sample_full () =
  let rng = Rng.create 37 in
  let s = Rng.sample_without_replacement rng ~k:5 ~n:5 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "k = n is a permutation" [| 0; 1; 2; 3; 4 |] sorted

(* ---------- Sampling ---------- *)

let test_binomial_edges () =
  let rng = Rng.create 41 in
  check_int "n=0" 0 (Sampling.binomial rng ~n:0 ~p:0.5);
  check_int "p=0" 0 (Sampling.binomial rng ~n:100 ~p:0.0);
  check_int "p=1" 100 (Sampling.binomial rng ~n:100 ~p:1.0)

let test_binomial_range () =
  let rng = Rng.create 43 in
  for _ = 1 to 1000 do
    let v = Sampling.binomial rng ~n:50 ~p:0.37 in
    check_bool "in [0, 50]" true (v >= 0 && v <= 50)
  done

let binomial_moments ~n ~p ~draw =
  let rng = Rng.create 47 in
  let trials = 20_000 in
  let samples = Array.init trials (fun _ -> float_of_int (draw rng ~n ~p)) in
  (Stats.mean samples, Stats.variance samples)

let test_binomial_moments_small_mean () =
  let n = 10_000 and p = 0.001 in
  let mean, var = binomial_moments ~n ~p ~draw:(fun rng ~n ~p -> Sampling.binomial rng ~n ~p) in
  check_bool "mean near np" true (Float.abs (mean -. 10.0) < 0.3);
  check_bool "variance near npq" true (Float.abs (var -. 9.99) < 1.0)

let test_binomial_moments_large_mean () =
  let n = 10_000 and p = 0.3 in
  let mean, var = binomial_moments ~n ~p ~draw:(fun rng ~n ~p -> Sampling.binomial rng ~n ~p) in
  check_bool "mean near np" true (Float.abs (mean -. 3000.0) < 10.0);
  check_bool "variance near npq" true (Float.abs (var -. 2100.0) < 150.0)

let test_binomial_matches_exact () =
  (* The fast sampler and the flip-by-flip reference must agree in
     distribution; compare means over many draws. *)
  let rng = Rng.create 53 in
  let trials = 5_000 in
  let fast = Array.init trials (fun _ -> float_of_int (Sampling.binomial rng ~n:200 ~p:0.1)) in
  let exact = Array.init trials (fun _ -> float_of_int (Sampling.binomial_exact rng ~n:200 ~p:0.1)) in
  check_bool "means agree" true (Float.abs (Stats.mean fast -. Stats.mean exact) < 0.5)

let test_geometric () =
  let rng = Rng.create 59 in
  check_int "p=1 is 0" 0 (Sampling.geometric rng ~p:1.0);
  let trials = 20_000 in
  let samples = Array.init trials (fun _ -> float_of_int (Sampling.geometric rng ~p:0.25)) in
  (* E[failures before success] = (1-p)/p = 3. *)
  check_bool "mean near 3" true (Float.abs (Stats.mean samples -. 3.0) < 0.15)

let test_poisson () =
  let rng = Rng.create 61 in
  check_int "lambda=0" 0 (Sampling.poisson rng ~lambda:0.0);
  let samples = Array.init 20_000 (fun _ -> float_of_int (Sampling.poisson rng ~lambda:4.0)) in
  check_bool "mean near 4" true (Float.abs (Stats.mean samples -. 4.0) < 0.1)

let test_zipf_basics () =
  let z = Sampling.Zipf.create ~n:100 ~s:1.0 in
  let rng = Rng.create 67 in
  for _ = 1 to 1000 do
    let r = Sampling.Zipf.sample z rng in
    check_bool "rank in [1, 100]" true (r >= 1 && r <= 100)
  done;
  let total = ref 0.0 in
  for rank = 1 to 100 do
    total := !total +. Sampling.Zipf.prob z rank
  done;
  check_float "probabilities sum to 1" 1.0 !total

let test_zipf_skew () =
  let z = Sampling.Zipf.create ~n:1000 ~s:1.2 in
  check_bool "rank 1 most probable" true
    (Sampling.Zipf.prob z 1 > Sampling.Zipf.prob z 2
    && Sampling.Zipf.prob z 2 > Sampling.Zipf.prob z 10)

let test_zipf_empirical () =
  let z = Sampling.Zipf.create ~n:50 ~s:1.0 in
  let rng = Rng.create 71 in
  let counts = Array.make 50 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    let r = Sampling.Zipf.sample z rng in
    counts.(r - 1) <- counts.(r - 1) + 1
  done;
  let expected1 = Sampling.Zipf.prob z 1 *. float_of_int trials in
  check_bool "rank-1 frequency matches pmf" true
    (Float.abs (float_of_int counts.(0) -. expected1) < 5.0 *. sqrt expected1)

(* ---------- Stats ---------- *)

let test_stats_mean_var () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean xs);
  check_float "variance" (5.0 /. 3.0) (Stats.variance xs);
  check_float "singleton variance" 0.0 (Stats.variance [| 5.0 |])

let test_stats_quantiles () =
  let xs = [| 4.0; 1.0; 3.0; 2.0 |] in
  check_float "median" 2.5 (Stats.median xs);
  check_float "q0" 1.0 (Stats.quantile xs 0.0);
  check_float "q1" 4.0 (Stats.quantile xs 1.0);
  (* quantile must not mutate *)
  Alcotest.(check (array (float 0.0))) "input unchanged" [| 4.0; 1.0; 3.0; 2.0 |] xs

let test_stats_summary () =
  let s = Stats.summary [| 1.0; 2.0; 3.0 |] in
  check_int "n" 3 s.n;
  check_float "mean" 2.0 s.mean;
  check_float "min" 1.0 s.min;
  check_float "max" 3.0 s.max

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  Stats.Histogram.add h 0.5;
  Stats.Histogram.add h 9.9;
  Stats.Histogram.add h (-4.0);
  (* clamped low *)
  Stats.Histogram.add h 42.0;
  (* clamped high *)
  check_int "total" 4 (Stats.Histogram.total h);
  let counts = Stats.Histogram.counts h in
  check_int "low bin" 2 counts.(0);
  check_int "high bin" 2 counts.(4)

let test_log2_histogram_sum_and_clear () =
  let h = Stats.Log2_histogram.create () in
  List.iter (Stats.Log2_histogram.add h) [ 0.5; 1.5; 2.0 ];
  check_int "total" 3 (Stats.Log2_histogram.total h);
  check_float "sum is exact" 4.0 (Stats.Log2_histogram.sum h);
  Stats.Log2_histogram.clear h;
  check_int "cleared total" 0 (Stats.Log2_histogram.total h);
  check_float "cleared sum" 0.0 (Stats.Log2_histogram.sum h);
  check_float "cleared quantile" 0.0 (Stats.Log2_histogram.quantile h 0.5);
  (* Reusable after clear: the buckets themselves were reset. *)
  Stats.Log2_histogram.add h 8.0;
  check_int "refilled total" 1 (Stats.Log2_histogram.total h);
  check_float "refilled sum" 8.0 (Stats.Log2_histogram.sum h)

(* ---------- Stats.Windowed ---------- *)

let s_ns = 1_000_000_000

(* A fresh window reports zeros, not NaNs. *)
let test_windowed_empty () =
  let w = Stats.Windowed.create () in
  let s = Stats.Windowed.snapshot w ~now_ns:(5 * s_ns) in
  check_int "empty count" 0 s.Stats.Windowed.count;
  check_float "empty rate" 0.0 s.rate;
  check_float "empty mean" 0.0 s.mean;
  check_float "empty p50" 0.0 s.p50;
  check_float "span" 10.0 s.span_s

let test_windowed_rotation () =
  let w = Stats.Windowed.create ~slots:4 ~slot_ns:s_ns () in
  check_float "span from config" 4.0 (Stats.Windowed.span_s w);
  (* Four samples in slot 0; they age out one slot-width at a time. *)
  Stats.Windowed.add w ~now_ns:100 1.0;
  Stats.Windowed.add w ~now_ns:200 1.0;
  let s = Stats.Windowed.snapshot w ~now_ns:300 in
  check_int "fresh samples counted" 2 s.Stats.Windowed.count;
  check_float "rate over full span" 0.5 s.rate;
  (* 3 slots later they are still (barely) inside the window... *)
  Stats.Windowed.add w ~now_ns:(3 * s_ns) 2.0;
  let s = Stats.Windowed.snapshot w ~now_ns:(3 * s_ns) in
  check_int "old slot still live" 3 s.Stats.Windowed.count;
  (* ...one more slot evicts the slot-0 samples but keeps the slot-3 one. *)
  let s = Stats.Windowed.snapshot w ~now_ns:(4 * s_ns) in
  check_int "slot 0 rotated out" 1 s.Stats.Windowed.count;
  check_float "survivor's mean" 2.0 s.mean

let test_windowed_clock_jumps () =
  let w = Stats.Windowed.create ~slots:4 ~slot_ns:s_ns () in
  Stats.Windowed.add w ~now_ns:(10 * s_ns) 1.0;
  (* A forward jump of at least the window span clears everything. *)
  let s = Stats.Windowed.snapshot w ~now_ns:(100 * s_ns) in
  check_int "stale window empty after forward jump" 0 s.Stats.Windowed.count;
  Stats.Windowed.add w ~now_ns:(100 * s_ns) 1.0;
  (* A backward step (clock went wrong) drops the data rather than
     reporting samples from the future. *)
  let s = Stats.Windowed.snapshot w ~now_ns:(50 * s_ns) in
  check_int "backward step clears" 0 s.Stats.Windowed.count;
  (* And the window keeps working at the stepped-back epoch. *)
  Stats.Windowed.add w ~now_ns:(50 * s_ns) 3.0;
  let s = Stats.Windowed.snapshot w ~now_ns:(50 * s_ns) in
  check_int "usable after step" 1 s.Stats.Windowed.count

let test_windowed_wrap () =
  let w = Stats.Windowed.create ~slots:3 ~slot_ns:s_ns () in
  (* Keep one sample per slot while sliding over many multiples of the
     slot count: the ring indices wrap, the counts must not. *)
  for i = 0 to 29 do
    Stats.Windowed.add w ~now_ns:(i * s_ns) (float_of_int i)
  done;
  let s = Stats.Windowed.snapshot w ~now_ns:(29 * s_ns) in
  check_int "exactly one live sample per slot" 3 s.Stats.Windowed.count;
  check_float "window mean of last three" 28.0 s.mean

(* ---------- Json ---------- *)

let test_json_values () =
  let ok s v = check_bool ("parse " ^ s) true (Json.parse s = Ok v) in
  ok "null" Json.Null;
  ok "true" (Json.Bool true);
  ok " -12.5e2 " (Json.Num (-1250.0));
  ok "\"a\\n\\\"b\\\"\"" (Json.Str "a\n\"b\"");
  ok "[1, []]" (Json.List [ Json.Num 1.0; Json.List [] ]);
  ok "{\"a\": {\"b\": [true]}}" (Json.Obj [ ("a", Json.Obj [ ("b", Json.List [ Json.Bool true ]) ]) ]);
  (* \u escapes decode to UTF-8. *)
  ok "\"\\u00e9\"" (Json.Str "\xc3\xa9")

let test_json_errors () =
  let bad s = check_bool ("reject " ^ s) true (Result.is_error (Json.parse s)) in
  List.iter bad
    [ ""; "tru"; "{"; "[1,"; "[1 2]"; "{\"a\" 1}"; "\"unterminated"; "01x"; "nan"; "{} trailing" ]

let test_json_lookup () =
  let v = Json.parse_exn "{\"a\": {\"b\": 3, \"s\": \"x\"}, \"l\": [1, 2]}" in
  check_bool "find num" true (Json.find_num v [ "a"; "b" ] = Some 3.0);
  check_bool "find int" true (Json.find_int v [ "a"; "b" ] = Some 3);
  check_bool "find str" true (Json.find_str v [ "a"; "s" ] = Some "x");
  check_bool "missing is None" true (Json.find v [ "a"; "zz" ] = None);
  check_bool "non-object path is None" true (Json.find v [ "l"; "x" ] = None);
  check_bool "list access" true
    (match Json.find v [ "l" ] with Some (Json.List [ _; _ ]) -> true | _ -> false)

(* ---------- Bitvec ---------- *)

let test_bitvec_basics () =
  let v = Bitvec.create 20 in
  check_int "initially empty" 0 (Bitvec.count v);
  Bitvec.set v 0;
  Bitvec.set v 7;
  Bitvec.set v 8;
  Bitvec.set v 19;
  check_int "count" 4 (Bitvec.count v);
  check_bool "get 7" true (Bitvec.get v 7);
  check_bool "get 6" false (Bitvec.get v 6);
  Bitvec.clear v 7;
  check_bool "cleared" false (Bitvec.get v 7);
  check_int "count after clear" 3 (Bitvec.count v)

let test_bitvec_bounds () =
  let v = Bitvec.create 8 in
  Alcotest.check_raises "oob get" (Invalid_argument "Bitvec: index out of bounds") (fun () ->
      ignore (Bitvec.get v 8));
  Alcotest.check_raises "negative set" (Invalid_argument "Bitvec: index out of bounds") (fun () ->
      Bitvec.set v (-1))

let test_bitvec_fill () =
  let v = Bitvec.create 13 in
  Bitvec.fill v true;
  check_int "all ones, padding excluded" 13 (Bitvec.count v);
  Bitvec.fill v false;
  check_int "all zero" 0 (Bitvec.count v)

let test_bitvec_setops () =
  let a = Bitvec.of_index_list 10 [ 1; 3; 5 ] in
  let b = Bitvec.of_index_list 10 [ 3; 5; 7 ] in
  Alcotest.(check (list int)) "union" [ 1; 3; 5; 7 ] (Bitvec.to_index_list (Bitvec.union a b));
  Alcotest.(check (list int)) "inter" [ 3; 5 ] (Bitvec.to_index_list (Bitvec.inter a b));
  Alcotest.(check (list int)) "diff" [ 1 ] (Bitvec.to_index_list (Bitvec.diff a b))

let test_bitvec_roundtrip () =
  let v = Bitvec.of_index_list 64 [ 0; 31; 32; 63 ] in
  Alcotest.(check (list int)) "roundtrip" [ 0; 31; 32; 63 ] (Bitvec.to_index_list v);
  let copy = Bitvec.copy v in
  Bitvec.clear copy 0;
  check_bool "copy is independent" true (Bitvec.get v 0)

let test_bitvec_fold () =
  let v = Bitvec.of_index_list 10 [ 2; 4; 6 ] in
  check_int "fold sum" 12 (Bitvec.fold_set ( + ) 0 v)

(* ---------- Bitmatrix ---------- *)

let test_bitmatrix_basics () =
  let m = Bitmatrix.create ~rows:3 ~cols:5 in
  Bitmatrix.set m ~row:1 ~col:4 true;
  Bitmatrix.set m ~row:2 ~col:4 true;
  check_bool "get" true (Bitmatrix.get m ~row:1 ~col:4);
  check_int "row count" 1 (Bitmatrix.row_count m 1);
  check_int "col count" 2 (Bitmatrix.col_count m 4);
  check_int "empty col" 0 (Bitmatrix.col_count m 0)

let test_bitmatrix_copy_equal () =
  let m = Bitmatrix.create ~rows:2 ~cols:2 in
  Bitmatrix.set m ~row:0 ~col:1 true;
  let c = Bitmatrix.copy m in
  check_bool "copies equal" true (Bitmatrix.equal m c);
  Bitmatrix.set c ~row:1 ~col:0 true;
  check_bool "copies independent" false (Bitmatrix.equal m c)

let test_bitmatrix_map_rows () =
  let m = Bitmatrix.create ~rows:2 ~cols:4 in
  Bitmatrix.set m ~row:0 ~col:0 true;
  let flipped =
    Bitmatrix.map_rows
      (fun _ row ->
        let out = Bitvec.copy row in
        Bitvec.set out 3;
        out)
      m
  in
  check_bool "original untouched" false (Bitmatrix.get m ~row:0 ~col:3);
  check_bool "mapped" true (Bitmatrix.get flipped ~row:0 ~col:3);
  Alcotest.check_raises "length change rejected"
    (Invalid_argument "Bitmatrix.map_rows: row length changed") (fun () ->
      ignore (Bitmatrix.map_rows (fun _ _ -> Bitvec.create 5) m))

(* ---------- Modarith ---------- *)

let test_modarith_basics () =
  let q = Modarith.modulus 7 in
  check_int "reduce negative" 5 (Modarith.reduce q (-2));
  check_int "add" 3 (Modarith.add q 5 5);
  check_int "sub" 5 (Modarith.sub q 2 4);
  check_int "mul" 1 (Modarith.mul q 3 5);
  check_int "neg" 4 (Modarith.neg q 3);
  check_int "pow" 2 (Modarith.pow q 3 2)

let test_modarith_inverse () =
  let q = Modarith.modulus 101 in
  for a = 1 to 100 do
    check_int (Printf.sprintf "inv %d" a) 1 (Modarith.mul q a (Modarith.inv q a))
  done;
  Alcotest.check_raises "zero not invertible"
    (Invalid_argument "Modarith.inv: zero is not invertible") (fun () ->
      ignore (Modarith.inv q 0))

let test_modarith_primes () =
  check_bool "2 prime" true (Modarith.is_prime 2);
  check_bool "1 not prime" false (Modarith.is_prime 1);
  check_bool "91 not prime" false (Modarith.is_prime 91);
  check_bool "97 prime" true (Modarith.is_prime 97);
  check_int "next prime of 10000" 10007 (Modarith.next_prime 10000)

let test_modarith_validation () =
  Alcotest.check_raises "modulus 1 rejected"
    (Invalid_argument "Modarith.modulus: need 2 <= q < 2^31") (fun () ->
      ignore (Modarith.modulus 1))

(* ---------- Table ---------- *)

let test_table_render () =
  let t = Table.create ~header:[ "x"; "value" ] in
  Table.add_row t [ "1"; "10.5" ];
  Table.add_row t [ "200"; "3" ];
  let s = Table.to_string t in
  check_bool "contains header" true (String.length s > 0);
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Table.add_row: row width differs from header") (fun () ->
      Table.add_row t [ "only-one" ])

let contains_sub ~affix s =
  let la = String.length affix and ls = String.length s in
  let rec go i = i + la <= ls && (String.sub s i la = affix || go (i + 1)) in
  go 0

let test_table_csv () =
  let t = Table.create ~header:[ "a"; "b" ] in
  Table.add_row t [ "x,y"; "plain" ];
  let csv = Table.to_csv t in
  check_bool "quoted comma cell" true (contains_sub ~affix:"\"x,y\"" csv)

(* ---------- qcheck properties ---------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"rng int always in bounds" ~count:500
      (pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let rng = Rng.create seed in
        let v = Rng.int rng bound in
        v >= 0 && v < bound);
    Test.make ~name:"binomial within [0, n]" ~count:500
      (triple small_int (int_range 0 500) (float_range 0.0 1.0))
      (fun (seed, n, p) ->
        let rng = Rng.create seed in
        let v = Sampling.binomial rng ~n ~p in
        v >= 0 && v <= n);
    Test.make ~name:"bitvec of/to index list roundtrip" ~count:500
      (list_of_size (Gen.int_range 0 30) (int_range 0 99))
      (fun idxs ->
        let uniq = List.sort_uniq compare idxs in
        let v = Bitvec.of_index_list 100 uniq in
        Bitvec.to_index_list v = uniq && Bitvec.count v = List.length uniq);
    Test.make ~name:"modarith add/sub inverse" ~count:500
      (triple (int_range 2 10_000) int int)
      (fun (q, a, b) ->
        let q = Modarith.modulus q in
        Modarith.sub q (Modarith.add q a b) b = Modarith.reduce q a);
    Test.make ~name:"quantile monotone" ~count:200
      (list_of_size (Gen.int_range 1 50) (float_range (-100.) 100.))
      (fun xs ->
        let a = Array.of_list xs in
        Stats.quantile a 0.25 <= Stats.quantile a 0.75);
  ]

(* ---------- Clock.periodic ---------- *)

(* A fake clock drives everything: [sleep] advances time exactly, the
   body charges its own work, and the recorded (tick, start) pairs expose
   the cadence.  Work and interval are chosen dyadic so the arithmetic is
   exact in floating point. *)
let fake_clock () =
  let t = ref 0.0 in
  let sleeps = ref [] in
  let now () = !t in
  let sleep d =
    sleeps := d :: !sleeps;
    t := !t +. d
  in
  (t, now, sleep, fun () -> List.rev !sleeps)

let test_periodic_absorbs_work () =
  let t, now, sleep, sleeps = fake_clock () in
  let starts = ref [] in
  Clock.periodic ~now ~sleep ~interval:1.0 ~iterations:4 (fun tick ->
      starts := (tick, !t) :: !starts;
      t := !t +. 0.25;
      true);
  check_bool "ticks fire on the absolute grid" true
    (List.rev !starts = [ (1, 0.0); (2, 1.0); (3, 2.0); (4, 3.0) ]);
  check_bool "each sleep is only the residual" true (sleeps () = [ 0.75; 0.75; 0.75 ])

let test_periodic_overrun_skips_sleep () =
  let t, now, sleep, sleeps = fake_clock () in
  let starts = ref [] in
  Clock.periodic ~now ~sleep ~interval:1.0 ~iterations:3 (fun tick ->
      starts := (tick, !t) :: !starts;
      t := !t +. 1.5;
      true);
  check_bool "overrunning ticks fire back to back" true
    (List.rev !starts = [ (1, 0.0); (2, 1.5); (3, 3.0) ]);
  check_bool "no sleeps past the deadline" true (sleeps () = [])

let test_periodic_reconverges_after_overrun () =
  let t, now, sleep, sleeps = fake_clock () in
  let work = [| 1.25; 0.25; 0.25 |] in
  let starts = ref [] in
  Clock.periodic ~now ~sleep ~interval:1.0 ~iterations:3 (fun tick ->
      starts := (tick, !t) :: !starts;
      t := !t +. work.(tick - 1);
      true);
  (* One slow tick delays its successor but the deficit does not
     accumulate: tick 3 is back on the absolute grid. *)
  check_bool "cadence reconverges" true
    (List.rev !starts = [ (1, 0.0); (2, 1.25); (3, 2.0) ]);
  check_bool "single catch-up residual" true (sleeps () = [ 0.5 ])

let test_periodic_stops_and_bounds () =
  let _, now, sleep, sleeps = fake_clock () in
  let calls = ref 0 in
  Clock.periodic ~now ~sleep ~interval:1.0 (fun tick ->
      incr calls;
      tick < 2);
  check_int "stops when the body declines" 2 !calls;
  check_bool "no sleep after the last tick" true (sleeps () = [ 1.0 ]);
  let _, now, sleep, sleeps = fake_clock () in
  let calls = ref 0 in
  Clock.periodic ~now ~sleep ~interval:1.0 ~iterations:1 (fun _ ->
      incr calls;
      true);
  check_int "iterations bound the ticks" 1 !calls;
  check_bool "a single tick never sleeps" true (sleeps () = []);
  Alcotest.check_raises "zero interval" (Invalid_argument "Clock.periodic: non-positive interval")
    (fun () -> Clock.periodic ~now ~sleep ~interval:0.0 (fun _ -> false));
  Alcotest.check_raises "zero iterations"
    (Invalid_argument "Clock.periodic: non-positive iterations") (fun () ->
      Clock.periodic ~now ~sleep ~interval:1.0 ~iterations:0 (fun _ -> false))

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "prelude"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int uniform" `Quick test_rng_int_uniform;
          Alcotest.test_case "int_in" `Quick test_rng_int_in;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "bernoulli edges" `Quick test_rng_bernoulli_edges;
          Alcotest.test_case "bernoulli rate" `Quick test_rng_bernoulli_rate;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
          Alcotest.test_case "sample full" `Quick test_sample_full;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "binomial edges" `Quick test_binomial_edges;
          Alcotest.test_case "binomial range" `Quick test_binomial_range;
          Alcotest.test_case "binomial moments small mean" `Quick test_binomial_moments_small_mean;
          Alcotest.test_case "binomial moments large mean" `Quick test_binomial_moments_large_mean;
          Alcotest.test_case "binomial matches exact" `Quick test_binomial_matches_exact;
          Alcotest.test_case "geometric" `Quick test_geometric;
          Alcotest.test_case "poisson" `Quick test_poisson;
          Alcotest.test_case "zipf basics" `Quick test_zipf_basics;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "zipf empirical" `Quick test_zipf_empirical;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean and variance" `Quick test_stats_mean_var;
          Alcotest.test_case "quantiles" `Quick test_stats_quantiles;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "log2 histogram sum and clear" `Quick
            test_log2_histogram_sum_and_clear;
          Alcotest.test_case "windowed empty" `Quick test_windowed_empty;
          Alcotest.test_case "windowed rotation" `Quick test_windowed_rotation;
          Alcotest.test_case "windowed clock jumps" `Quick test_windowed_clock_jumps;
          Alcotest.test_case "windowed ring wrap" `Quick test_windowed_wrap;
        ] );
      ( "bitvec",
        [
          Alcotest.test_case "basics" `Quick test_bitvec_basics;
          Alcotest.test_case "bounds" `Quick test_bitvec_bounds;
          Alcotest.test_case "fill" `Quick test_bitvec_fill;
          Alcotest.test_case "set operations" `Quick test_bitvec_setops;
          Alcotest.test_case "roundtrip" `Quick test_bitvec_roundtrip;
          Alcotest.test_case "fold" `Quick test_bitvec_fold;
        ] );
      ( "bitmatrix",
        [
          Alcotest.test_case "basics" `Quick test_bitmatrix_basics;
          Alcotest.test_case "copy/equal" `Quick test_bitmatrix_copy_equal;
          Alcotest.test_case "map_rows" `Quick test_bitmatrix_map_rows;
        ] );
      ( "modarith",
        [
          Alcotest.test_case "basics" `Quick test_modarith_basics;
          Alcotest.test_case "inverse" `Quick test_modarith_inverse;
          Alcotest.test_case "primes" `Quick test_modarith_primes;
          Alcotest.test_case "validation" `Quick test_modarith_validation;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "csv" `Quick test_table_csv;
        ] );
      ( "json",
        [
          Alcotest.test_case "values" `Quick test_json_values;
          Alcotest.test_case "malformed rejected" `Quick test_json_errors;
          Alcotest.test_case "path lookup" `Quick test_json_lookup;
        ] );
      ( "clock",
        [
          Alcotest.test_case "periodic absorbs work time" `Quick test_periodic_absorbs_work;
          Alcotest.test_case "periodic overrun skips sleep" `Quick
            test_periodic_overrun_skips_sleep;
          Alcotest.test_case "periodic reconverges after overrun" `Quick
            test_periodic_reconverges_after_overrun;
          Alcotest.test_case "periodic stop and bounds" `Quick test_periodic_stops_and_bounds;
        ] );
      ("properties", qsuite);
    ]
