(* Tests for the domain work pool and for the determinism contract of the
   multicore construction pipeline: every pool size — and the sharded vs.
   monolithic CountBelow strategies — must produce bit-identical protocol
   output. *)

open Eppi_prelude
open Eppi_protocol

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Pool.parallel_map / parallel_iter ---------- *)

let test_map_matches_sequential () =
  List.iter
    (fun size ->
      Pool.with_pool ~size (fun pool ->
          List.iter
            (fun n ->
              let rng = Rng.create (size + (1000 * n)) in
              let arr = Array.init n (fun _ -> Rng.int rng 1_000_000) in
              let f x = (x * 31) lxor (x lsr 3) in
              Alcotest.(check (array int))
                (Printf.sprintf "size %d, n %d" size n)
                (Array.map f arr)
                (Pool.parallel_map pool f arr))
            [ 0; 1; 2; 7; 64; 1001 ]))
    [ 1; 2; 3; 4 ]

let test_map_heterogeneous_cost () =
  (* Uneven per-item work exercises chunk stealing; results must still be
     index-exact. *)
  Pool.with_pool ~size:4 (fun pool ->
      let arr = Array.init 200 (fun i -> i) in
      let f i =
        let acc = ref 0 in
        for k = 0 to (i mod 17) * 100 do
          acc := !acc + (k land i)
        done;
        !acc
      in
      Alcotest.(check (array int)) "heterogeneous" (Array.map f arr) (Pool.parallel_map pool f arr))

let test_iter_covers_all_indices () =
  List.iter
    (fun size ->
      Pool.with_pool ~size (fun pool ->
          let n = 500 in
          let hits = Array.make n 0 in
          (* Each index is written by exactly one chunk, so no two domains
             ever touch the same slot. *)
          Pool.parallel_iter pool (fun i -> hits.(i) <- hits.(i) + 1) (Array.init n Fun.id);
          Array.iteri (fun i h -> check_int (Printf.sprintf "index %d hit once" i) 1 h) hits))
    [ 1; 2; 4 ]

let test_exception_propagates () =
  List.iter
    (fun size ->
      Pool.with_pool ~size (fun pool ->
          match
            Pool.parallel_map pool
              (fun i -> if i = 37 then failwith "boom" else i)
              (Array.init 100 Fun.id)
          with
          | _ -> Alcotest.fail "expected failure"
          | exception Failure m -> check_bool "message" true (m = "boom")))
    [ 1; 4 ]

let test_pool_reuse_and_shutdown () =
  let pool = Pool.create ~size:3 () in
  check_int "size" 3 (Pool.size pool);
  let a = Pool.parallel_map pool (fun x -> x + 1) (Array.init 50 Fun.id) in
  let b = Pool.parallel_map pool (fun x -> x * 2) (Array.init 50 Fun.id) in
  Alcotest.(check (array int)) "first job" (Array.init 50 (fun i -> i + 1)) a;
  Alcotest.(check (array int)) "second job" (Array.init 50 (fun i -> i * 2)) b;
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* After shutdown the pool degrades to inline execution. *)
  let c = Pool.parallel_map pool (fun x -> x - 1) (Array.init 10 Fun.id) in
  Alcotest.(check (array int)) "after shutdown" (Array.init 10 (fun i -> i - 1)) c

let test_exception_leaves_pool_reusable () =
  (* A raising job must leave every worker parked and the pool fully
     usable: the error is latched in the chunk loop, all domains drain
     their remaining chunks, and only then does the caller re-raise. *)
  Pool.with_pool ~size:4 (fun pool ->
      for round = 1 to 3 do
        (match
           Pool.parallel_map pool
             (fun i -> if i mod 13 = 5 then failwith "boom" else i)
             (Array.init 300 Fun.id)
         with
        | _ -> Alcotest.fail "expected failure"
        | exception Failure m -> check_bool "message" true (m = "boom"));
        (* The very next job on the same pool must run to completion. *)
        let expect = Array.init 200 (fun i -> i * round) in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d reuse" round)
          expect
          (Pool.parallel_map pool (fun x -> x * round) (Array.init 200 Fun.id))
      done;
      (* parallel_iter's exception path too. *)
      (match
         Pool.parallel_iter pool (fun i -> if i = 77 then failwith "iter-boom")
           (Array.init 200 Fun.id)
       with
      | () -> Alcotest.fail "expected iter failure"
      | exception Failure m -> check_bool "iter message" true (m = "iter-boom"));
      Alcotest.(check (array int))
        "reuse after iter failure"
        (Array.init 50 (fun i -> i + 9))
        (Pool.parallel_map pool (fun x -> x + 9) (Array.init 50 Fun.id)))

let test_stats_accounting () =
  (* One slot per domain (slot 0 = caller); jobs and busy time only grow,
     and parallel work must be visible in at least one worker slot. *)
  Pool.with_pool ~size:3 (fun pool ->
      let s0 = Pool.stats pool in
      check_int "slot count" 3 (Array.length s0);
      Array.iter
        (fun (st : Pool.worker_stat) ->
          check_int "fresh jobs" 0 st.jobs;
          check_int "fresh busy" 0 st.busy_ns)
        s0;
      let work x =
        let acc = ref x in
        for k = 1 to 20_000 do
          acc := (!acc * 31) lxor k
        done;
        !acc
      in
      ignore (Pool.parallel_map pool work (Array.init 4000 Fun.id));
      let s1 = Pool.stats pool in
      let total_jobs = Array.fold_left (fun acc (st : Pool.worker_stat) -> acc + st.jobs) 0 s1 in
      check_int "one charged job per domain" 3 total_jobs;
      check_bool "caller slot charged" true (s1.(0).jobs = 1 && s1.(0).busy_ns >= 0);
      Array.iteri
        (fun i (st : Pool.worker_stat) ->
          check_bool (Printf.sprintf "slot %d monotone" i) true
            (st.jobs >= s0.(i).jobs && st.busy_ns >= s0.(i).busy_ns))
        s1;
      ignore (Pool.parallel_map pool work (Array.init 4000 Fun.id));
      let s2 = Pool.stats pool in
      Array.iteri
        (fun i (st : Pool.worker_stat) ->
          check_int (Printf.sprintf "slot %d second job" i) (s1.(i).jobs + 1) st.jobs)
        s2);
  (* The sequential fallback (size 1, or tiny input) charges slot 0. *)
  Pool.with_pool ~size:1 (fun pool ->
      ignore (Pool.parallel_map pool (fun x -> x + 1) (Array.init 100 Fun.id));
      let s = Pool.stats pool in
      check_int "sequential slots" 1 (Array.length s);
      check_int "sequential job count" 1 s.(0).jobs)

let test_create_rejects_zero () =
  Alcotest.check_raises "size 0" (Invalid_argument "Pool.create: size must be >= 1") (fun () ->
      ignore (Pool.create ~size:0 ()))

(* ---------- CountBelow determinism across strategies and pool sizes ---------- *)

let make_shares rng ~c ~q ~freqs =
  let n = Array.length freqs in
  let shares = Array.init c (fun _ -> Array.make n 0) in
  Array.iteri
    (fun j f ->
      let s = Eppi_secretshare.Additive.share rng ~q ~c f in
      Array.iteri (fun k v -> shares.(k).(j) <- v) s)
    freqs;
  shares

let countbelow_result = Alcotest.testable (fun ppf (r : Countbelow.result) ->
    Format.fprintf ppf "n_common=%d" r.n_common)
    (fun a b ->
      a.common = b.common && a.frequencies = b.frequencies && a.n_common = b.n_common)

let test_countbelow_strategies_agree () =
  let rng = Rng.create 301 in
  let m = 60 in
  let q = Construct.modulus_for m in
  let n = 40 in
  let freqs = Array.init n (fun _ -> Rng.int rng (m + 1)) in
  let thresholds = Array.init n (fun _ -> Rng.int rng (m + 2)) in
  let shares = make_shares rng ~c:3 ~q ~freqs in
  let mono =
    Countbelow.run ~strategy:`Monolithic (Rng.create 302) ~shares ~q ~thresholds
  in
  let seq = Countbelow.run ~strategy:`Sharded (Rng.create 302) ~shares ~q ~thresholds in
  let par =
    Pool.with_pool ~size:4 (fun pool ->
        Countbelow.run ~pool ~strategy:`Sharded (Rng.create 302) ~shares ~q ~thresholds)
  in
  Alcotest.check countbelow_result "sharded(1 domain) = monolithic" mono seq;
  Alcotest.check countbelow_result "sharded(4 domains) = sharded(1 domain)" seq par;
  (* The sharded accounting must be self-identical across pool sizes. *)
  check_bool "same aggregated stats" true (seq.circuit_stats = par.circuit_stats);
  check_bool "same comm accounting" true (seq.comm = par.comm);
  check_bool "same cost-model time" true (seq.time = par.time)

let test_countbelow_classification_reference () =
  (* Against the plain integer reference: common iff frequency >= threshold. *)
  let rng = Rng.create 303 in
  let m = 30 in
  let q = Construct.modulus_for m in
  let n = 25 in
  let freqs = Array.init n (fun _ -> Rng.int rng (m + 1)) in
  let thresholds = Array.init n (fun _ -> Rng.int rng (m + 2)) in
  let shares = make_shares rng ~c:3 ~q ~freqs in
  let r =
    Pool.with_pool ~size:2 (fun pool -> Countbelow.run ~pool (Rng.create 304) ~shares ~q ~thresholds)
  in
  Array.iteri
    (fun j f ->
      let qi = Modarith.to_int q in
      let t = max 0 (min thresholds.(j) (qi - 1)) in
      check_bool (Printf.sprintf "identity %d" j) (f >= t) r.common.(j);
      match r.frequencies.(j) with
      | Some released -> check_int (Printf.sprintf "freq %d" j) f released
      | None -> check_bool (Printf.sprintf "freq %d withheld iff common" j) true r.common.(j))
    freqs

(* ---------- full Construct.run determinism ---------- *)

let make_matrix ~m ~freqs =
  let membership = Bitmatrix.create ~rows:(Array.length freqs) ~cols:m in
  let rng = Rng.create 777 in
  Array.iteri
    (fun j f ->
      let chosen = Rng.sample_without_replacement rng ~k:f ~n:m in
      Array.iter (fun p -> Bitmatrix.set membership ~row:j ~col:p true) chosen)
    freqs;
  membership

let construct_equal (a : Construct.result) (b : Construct.result) =
  a.common = b.common && a.mixed = b.mixed && a.betas = b.betas
  && a.lambda = b.lambda && a.xi = b.xi
  && Bitmatrix.equal (Eppi.Index.matrix a.index) (Eppi.Index.matrix b.index)

let test_construct_identical_across_domains () =
  let m = 35 in
  let rng = Rng.create 305 in
  let n = 30 in
  let freqs = Array.init n (fun _ -> 1 + Rng.int rng m) in
  let membership = make_matrix ~m ~freqs in
  let epsilons = Array.init n (fun _ -> Rng.float rng 1.0) in
  let policy = Eppi.Policy.Chernoff 0.9 in
  let run ?pool ?strategy () =
    Construct.run ?pool ?strategy (Rng.create 306) ~membership ~epsilons ~policy
  in
  let mono = run ~strategy:`Monolithic () in
  let seq = run () in
  let par2 = Pool.with_pool ~size:2 (fun pool -> run ~pool ()) in
  let par4 = Pool.with_pool ~size:4 (fun pool -> run ~pool ()) in
  check_bool "sharded(1) = pre-shard monolithic" true (construct_equal mono seq);
  check_bool "2 domains = 1 domain" true (construct_equal seq par2);
  check_bool "4 domains = 1 domain" true (construct_equal seq par4)

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick test_map_matches_sequential;
          Alcotest.test_case "heterogeneous cost" `Quick test_map_heterogeneous_cost;
          Alcotest.test_case "iter covers all indices" `Quick test_iter_covers_all_indices;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "exception leaves pool reusable" `Quick
            test_exception_leaves_pool_reusable;
          Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
          Alcotest.test_case "reuse and shutdown" `Quick test_pool_reuse_and_shutdown;
          Alcotest.test_case "rejects size 0" `Quick test_create_rejects_zero;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "countbelow strategies agree" `Quick
            test_countbelow_strategies_agree;
          Alcotest.test_case "countbelow matches integer reference" `Quick
            test_countbelow_classification_reference;
          Alcotest.test_case "construct identical across domains" `Quick
            test_construct_identical_across_domains;
        ] );
    ]
