(* Tests for the online serving engine (lib/serve): the bit-packed postings
   store against Index.query, the slot-array LRU, the token-bucket admission
   control under a manual clock, the log2 latency histogram, workload
   generation, and the engine's end-to-end contract — every reply equals
   Index.query, every shed request is reported. *)

open Eppi_prelude
open Eppi_serve

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_list = Alcotest.(check (list int))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  if m = 0 then true else go 0

let check_close ?(tol = 1e-9) name a b =
  check_bool (Printf.sprintf "%s: |%g - %g| <= %g" name a b tol) true (Float.abs (a -. b) <= tol)

(* A published index with controlled sparsity: row j holds 1 + (j mod 5)
   providers at deterministic positions. *)
let test_index ~n ~m =
  let matrix = Bitmatrix.create ~rows:n ~cols:m in
  for j = 0 to n - 1 do
    for k = 0 to j mod 5 do
      Bitmatrix.set matrix ~row:j ~col:((j + (k * 7)) mod m) true
    done
  done;
  Eppi.Index.of_matrix matrix

let random_index rng ~n ~m ~density =
  let matrix = Bitmatrix.create ~rows:n ~cols:m in
  for j = 0 to n - 1 do
    for p = 0 to m - 1 do
      if Rng.float rng 1.0 < density then Bitmatrix.set matrix ~row:j ~col:p true
    done
  done;
  Eppi.Index.of_matrix matrix

(* ---------- Postings ---------- *)

let test_postings_matches_index () =
  let index = test_index ~n:37 ~m:23 in
  let postings = Postings.of_index index in
  check_int "owners" 37 (Postings.owners postings);
  check_int "providers" 23 (Postings.providers postings);
  for owner = 0 to 36 do
    check_list
      (Printf.sprintf "owner %d" owner)
      (Eppi.Index.query index ~owner)
      (Postings.query postings ~owner);
    check_int
      (Printf.sprintf "count %d" owner)
      (Eppi.Index.query_count index ~owner)
      (Postings.query_count postings ~owner)
  done

let test_postings_inverse () =
  let index = test_index ~n:37 ~m:23 in
  let matrix = Eppi.Index.matrix index in
  let postings = Postings.of_index index in
  for provider = 0 to 22 do
    let expected =
      List.filter
        (fun owner -> Bitmatrix.get matrix ~row:owner ~col:provider)
        (List.init 37 Fun.id)
    in
    check_list (Printf.sprintf "provider %d" provider) expected
      (Postings.owners_of postings ~provider);
    check_int
      (Printf.sprintf "audit count %d" provider)
      (List.length expected)
      (Postings.audit_count postings ~provider)
  done

let test_postings_iter_and_bounds () =
  let index = test_index ~n:10 ~m:8 in
  let postings = Postings.of_index index in
  let acc = ref [] in
  Postings.iter_query postings ~owner:7 (fun p -> acc := p :: !acc);
  check_list "iter matches query" (Postings.query postings ~owner:7) (List.rev !acc);
  Alcotest.check_raises "owner out of range" (Invalid_argument "Postings.query: id out of range")
    (fun () -> ignore (Postings.query postings ~owner:10));
  Alcotest.check_raises "provider out of range"
    (Invalid_argument "Postings.owners_of: id out of range") (fun () ->
      ignore (Postings.owners_of postings ~provider:8));
  let fwd_bits, inv_bits = Postings.entry_bits postings in
  check_int "fwd width: 8 providers need 3 bits" 3 fwd_bits;
  check_int "inv width: 10 owners need 4 bits" 4 inv_bits;
  check_bool "memory accounted" true (Postings.memory_bytes postings > 0)

let test_postings_empty_and_full_rows () =
  let matrix = Bitmatrix.create ~rows:3 ~cols:70 in
  for p = 0 to 69 do
    Bitmatrix.set matrix ~row:1 ~col:p true
  done;
  let postings = Postings.of_matrix matrix in
  check_list "empty row" [] (Postings.query postings ~owner:0);
  check_list "full row" (List.init 70 Fun.id) (Postings.query postings ~owner:1);
  check_list "empty row again" [] (Postings.query postings ~owner:2);
  check_list "untouched provider audits empty owner set" [ 1 ]
    (Postings.owners_of postings ~provider:69)

(* ---------- Lru ---------- *)

let test_lru_basic () =
  let lru = Lru.create ~capacity:2 in
  check_int "empty" 0 (Lru.length lru);
  Lru.put lru 1 "a";
  Lru.put lru 2 "b";
  Alcotest.(check (option string)) "find 1" (Some "a") (Lru.find lru 1);
  (* 1 was promoted, so inserting 3 evicts 2. *)
  Lru.put lru 3 "c";
  Alcotest.(check (option string)) "2 evicted" None (Lru.find lru 2);
  Alcotest.(check (option string)) "1 kept" (Some "a") (Lru.find lru 1);
  Alcotest.(check (option string)) "3 kept" (Some "c") (Lru.find lru 3);
  check_int "one eviction" 1 (Lru.evictions lru);
  check_int "length capped" 2 (Lru.length lru)

let test_lru_replace_and_mem () =
  let lru = Lru.create ~capacity:2 in
  Lru.put lru 5 10;
  Lru.put lru 5 20;
  check_int "replace keeps one entry" 1 (Lru.length lru);
  Alcotest.(check (option int)) "replaced value" (Some 20) (Lru.find lru 5);
  check_bool "mem does not promote" true (Lru.mem lru 5);
  Lru.put lru 6 30;
  Lru.put lru 7 40;
  (* mem 5 above must not have promoted it past 6. *)
  check_bool "5 evicted" false (Lru.mem lru 5);
  check_int "no spurious evictions" 1 (Lru.evictions lru)

let test_lru_zero_capacity () =
  let lru = Lru.create ~capacity:0 in
  Lru.put lru 1 "x";
  Alcotest.(check (option string)) "always miss" None (Lru.find lru 1);
  check_int "never grows" 0 (Lru.length lru);
  Alcotest.check_raises "negative capacity" (Invalid_argument "Lru.create: negative capacity")
    (fun () -> ignore (Lru.create ~capacity:(-1) : unit Lru.t))

let test_lru_churn_against_model () =
  (* Drive an LRU against a naive list model under random ops. *)
  let capacity = 8 in
  let lru = Lru.create ~capacity in
  let model = ref [] in (* most-recent first, (key, value) *)
  let model_find k =
    match List.assoc_opt k !model with
    | None -> None
    | Some v ->
        model := (k, v) :: List.remove_assoc k !model;
        Some v
  in
  let model_put k v =
    model := (k, v) :: List.remove_assoc k !model;
    if List.length !model > capacity then
      model := List.filteri (fun i _ -> i < capacity) !model
  in
  let rng = Rng.create 99 in
  for step = 0 to 2000 do
    let k = Rng.int rng 20 in
    if Rng.float rng 1.0 < 0.5 then begin
      let expected = model_find k in
      Alcotest.(check (option int)) (Printf.sprintf "find at %d" step) expected (Lru.find lru k)
    end
    else begin
      model_put k step;
      Lru.put lru k step
    end
  done;
  check_int "final length" (List.length !model) (Lru.length lru)

(* ---------- Admission ---------- *)

let test_admission_bucket () =
  let bucket = Admission.create { rate = 10.0; burst = 3; queue_capacity = 5 } in
  check_close "starts full" 3.0 (Admission.tokens bucket);
  (* Burst drains the bucket; the 4th request at the same instant is shed. *)
  check_bool "1" true (Admission.try_admit bucket ~now:100.0);
  check_bool "2" true (Admission.try_admit bucket ~now:100.0);
  check_bool "3" true (Admission.try_admit bucket ~now:100.0);
  check_bool "4 shed" false (Admission.try_admit bucket ~now:100.0);
  (* 0.125 s at 10 tokens/s refills 1.25 tokens (exact in binary). *)
  check_bool "refilled one" true (Admission.try_admit bucket ~now:100.125);
  check_bool "only one" false (Admission.try_admit bucket ~now:100.125);
  (* A long gap refills to burst, never past it. *)
  check_bool "a" true (Admission.try_admit bucket ~now:200.0);
  check_bool "b" true (Admission.try_admit bucket ~now:200.0);
  check_bool "c" true (Admission.try_admit bucket ~now:200.0);
  check_bool "d capped at burst" false (Admission.try_admit bucket ~now:200.0)

let test_admission_clock_skew_and_validation () =
  let bucket = Admission.create { rate = 1000.0; burst = 1; queue_capacity = 1 } in
  check_bool "first" true (Admission.try_admit bucket ~now:50.0);
  (* Time going backwards must refill nothing, not explode. *)
  check_bool "backwards no refill" false (Admission.try_admit bucket ~now:49.0);
  check_bool "forward refills" true (Admission.try_admit bucket ~now:50.1);
  Alcotest.check_raises "bad rate" (Invalid_argument "Admission.create: rate must be positive")
    (fun () -> ignore (Admission.create { rate = 0.0; burst = 1; queue_capacity = 1 }));
  Alcotest.check_raises "bad burst" (Invalid_argument "Admission.create: burst must be >= 1")
    (fun () -> ignore (Admission.create { rate = 1.0; burst = 0; queue_capacity = 1 }))

(* ---------- Histogram + metrics ---------- *)

let test_log2_histogram () =
  let h = Stats.Log2_histogram.create ~lo:1.0 ~buckets:8 () in
  List.iter (Stats.Log2_histogram.add h) [ 1.5; 3.0; 3.5; 100.0 ];
  check_int "total" 4 (Stats.Log2_histogram.total h);
  check_close "mean is exact" 27.0 (Stats.Log2_histogram.mean h);
  (* 1.5 -> bucket 0 [1,2); 3.0, 3.5 -> bucket 1 [2,4); 100 -> bucket 6. *)
  let counts = Stats.Log2_histogram.counts h in
  check_int "bucket 0" 1 counts.(0);
  check_int "bucket 1" 2 counts.(1);
  check_int "bucket 6" 1 counts.(6);
  (* Median rank 2 lands in bucket 1; geometric midpoint 2^1.5. *)
  check_close "p50" (Float.pow 2.0 1.5) (Stats.Log2_histogram.quantile h 0.5);
  check_close "p100 in the top occupied bucket" (Float.pow 2.0 6.5)
    (Stats.Log2_histogram.quantile h 1.0);
  let h2 = Stats.Log2_histogram.create ~lo:1.0 ~buckets:8 () in
  Stats.Log2_histogram.add h2 1.5;
  let merged = Stats.Log2_histogram.merge h h2 in
  check_int "merge total" 5 (Stats.Log2_histogram.total merged);
  Alcotest.check_raises "merge shape"
    (Invalid_argument "Log2_histogram.merge: incompatible histograms") (fun () ->
      ignore (Stats.Log2_histogram.merge h (Stats.Log2_histogram.create ~lo:1.0 ~buckets:4 ())))

let test_log2_histogram_edges () =
  (* Defaults: lo = 1 ns, 64 buckets.  Degenerate samples must clamp into
     the edge buckets, never crash or land out of range. *)
  let h = Stats.Log2_histogram.create () in
  (* Empty histogram: every statistic is defined and zero. *)
  check_int "empty total" 0 (Stats.Log2_histogram.total h);
  check_close "empty mean" 0.0 (Stats.Log2_histogram.mean h);
  check_close "empty p50" 0.0 (Stats.Log2_histogram.quantile h 0.5);
  check_close "empty p0" 0.0 (Stats.Log2_histogram.quantile h 0.0);
  check_close "empty p100" 0.0 (Stats.Log2_histogram.quantile h 1.0);
  (* Zero, negative and sub-nanosecond samples clamp into bucket 0. *)
  List.iter (Stats.Log2_histogram.add h) [ 0.0; -3.0; 1e-12 ];
  let counts = Stats.Log2_histogram.counts h in
  check_int "degenerate samples in bucket 0" 3 counts.(0);
  check_int "degenerate total" 3 (Stats.Log2_histogram.total h);
  check_close "bucket-0 quantile is the bottom midpoint" (1e-9 *. Float.pow 2.0 0.5)
    (Stats.Log2_histogram.quantile h 0.5);
  (* A sample past 2^63 ns (≈ 292 years) clamps into the top bucket. *)
  Stats.Log2_histogram.add h 1e30;
  let counts = Stats.Log2_histogram.counts h in
  check_int "huge sample in top bucket" 1 counts.(Array.length counts - 1);
  check_close "top-bucket quantile is the top midpoint" (1e-9 *. Float.pow 2.0 63.5)
    (Stats.Log2_histogram.quantile h 1.0);
  (* The mean stays exact even when buckets saturate. *)
  check_close ~tol:1e15 "mean exact under clamping" (((-3.0) +. 1e-12 +. 1e30) /. 4.0)
    (Stats.Log2_histogram.mean h);
  (* q = 0 on a non-empty histogram is the first occupied bucket. *)
  check_close "p0 non-empty" (1e-9 *. Float.pow 2.0 0.5) (Stats.Log2_histogram.quantile h 0.0);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Log2_histogram.quantile: q out of [0,1]") (fun () ->
      ignore (Stats.Log2_histogram.quantile h 1.5))

let test_metrics_snapshot_merges_shards () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr_queries a;
  Metrics.incr_queries a;
  Metrics.incr_served a;
  Metrics.incr_cache_hit a;
  Metrics.record_latency a 1e-6;
  Metrics.incr_queries b;
  Metrics.incr_shed_rate b;
  Metrics.record_latency b 1e-3;
  let snap = Metrics.snapshot [ a; b ] in
  check_int "queries" 3 snap.queries;
  check_int "served" 1 snap.served;
  check_int "shed_rate" 1 snap.shed_rate;
  check_int "latency samples" 2 snap.latency_count;
  check_bool "p95 sees the slow shard" true (snap.p95 > 1e-4);
  check_close "hit rate counts hits only" 1.0 (Metrics.hit_rate snap);
  (* to_json must be parseable enough to contain every counter. *)
  let json = Metrics.to_json snap in
  List.iter
    (fun key ->
      check_bool (Printf.sprintf "json has %s" key) true
        (let re = Printf.sprintf "\"%s\"" key in
         let rec find i =
           if i + String.length re > String.length json then false
           else if String.sub json i (String.length re) = re then true
           else find (i + 1)
         in
         find 0))
    [ "queries"; "served"; "cache_hits"; "shed_queue"; "p99_s" ]

let test_metrics_diff () =
  let m = Metrics.create () in
  Metrics.incr_queries m;
  Metrics.incr_served m;
  Metrics.incr_cache_miss m;
  Metrics.record_latency m 1e-6;
  let older = Metrics.snapshot [ m ] in
  Metrics.incr_queries m;
  Metrics.incr_queries m;
  Metrics.incr_served m;
  Metrics.incr_cache_hit m;
  Metrics.incr_unknown m;
  Metrics.incr_shed_queue m;
  Metrics.record_latency m 1e-3;
  let newer = Metrics.snapshot [ m ] in
  let d = Metrics.diff newer older in
  (* Counters are the interval's increments... *)
  check_int "queries" 2 d.queries;
  check_int "served" 1 d.served;
  check_int "cache_hits" 1 d.cache_hits;
  check_int "cache_misses" 0 d.cache_misses;
  check_int "unknown" 1 d.unknown;
  check_int "shed_queue" 1 d.shed_queue;
  check_int "latency_count" 1 d.latency_count;
  (* ...while the distribution fields come from the newer snapshot (the
     cumulative histogram's difference has no defined percentiles). *)
  check_close "p99 from newer" newer.p99 d.p99;
  check_close "mean from newer" newer.latency_mean d.latency_mean;
  (* diff s s zeroes every counter. *)
  let z = Metrics.diff newer newer in
  check_int "self-diff queries" 0 z.queries;
  check_int "self-diff latency_count" 0 z.latency_count

(* ---------- Workload ---------- *)

let test_workload_zipf () =
  let n = 100 in
  let w = Workload.zipf (Rng.create 5) ~n ~count:20_000 in
  check_int "count" 20_000 (Array.length w);
  Array.iter (fun owner -> check_bool "in range" true (owner >= 0 && owner < n)) w;
  let hits_0 = Array.fold_left (fun acc o -> if o = 0 then acc + 1 else acc) 0 w in
  let hits_99 = Array.fold_left (fun acc o -> if o = 99 then acc + 1 else acc) 0 w in
  check_bool "zipf head much hotter than tail" true (hits_0 > 10 * (hits_99 + 1));
  let w2 = Workload.zipf (Rng.create 5) ~n ~count:20_000 in
  check_bool "deterministic from seed" true (w = w2)

let test_workload_unknowns () =
  let n = 50 in
  let w = Workload.zipf ~unknown_fraction:0.3 (Rng.create 6) ~n ~count:10_000 in
  let unknowns = Array.fold_left (fun acc o -> if o >= n then acc + 1 else acc) 0 w in
  Array.iter (fun o -> check_bool "unknowns in [n, 2n)" true (o >= 0 && o < 2 * n)) w;
  check_close ~tol:0.05 "unknown fraction" 0.3 (float_of_int unknowns /. 10_000.0);
  Alcotest.check_raises "bad fraction" (Invalid_argument "Workload: unknown fraction out of [0, 1]")
    (fun () -> ignore (Workload.uniform ~unknown_fraction:1.5 (Rng.create 1) ~n:10 ~count:10))

(* ---------- Engine ---------- *)

let test_engine_matches_index () =
  let rng = Rng.create 21 in
  let index = random_index rng ~n:64 ~m:48 ~density:0.1 in
  List.iter
    (fun (shards, cache) ->
      let config = { Serve.default_config with shards; cache_capacity = cache } in
      let engine = Serve.create ~config index in
      for owner = 0 to 63 do
        for _pass = 0 to 1 do
          match Serve.query engine ~owner with
          | Serve.Providers providers ->
              check_list
                (Printf.sprintf "shards %d cache %d owner %d" shards cache owner)
                (Eppi.Index.query index ~owner)
                providers
          | _ -> Alcotest.fail "in-range owner not served"
        done
      done)
    [ (1, 0); (1, 16); (3, 0); (3, 4096) ]

let test_engine_unknown_and_negative_cache () =
  let index = test_index ~n:10 ~m:8 in
  let engine = Serve.create ~config:{ Serve.default_config with negative_capacity = 4 } index in
  (match Serve.query engine ~owner:10 with
  | Serve.Unknown_owner -> ()
  | _ -> Alcotest.fail "out-of-range owner must be Unknown_owner");
  (match Serve.query engine ~owner:10 with
  | Serve.Unknown_owner -> ()
  | _ -> Alcotest.fail "second miss still Unknown_owner");
  (match Serve.query engine ~owner:(-3) with
  | Serve.Unknown_owner -> ()
  | _ -> Alcotest.fail "negative owner must be Unknown_owner");
  let snap = Serve.metrics engine in
  check_int "unknown counted" 3 snap.unknown;
  check_int "second lookup hit the negative cache" 1 snap.negative_hits;
  check_int "nothing served" 0 snap.served

let test_engine_run_replay_agree () =
  let index = test_index ~n:40 ~m:32 in
  let workload = Workload.zipf ~unknown_fraction:0.1 (Rng.create 8) ~n:40 ~count:5_000 in
  let make () = Serve.create ~config:{ Serve.default_config with shards = 4 } index in
  let report = Serve.run (make ()) workload in
  let tally = Serve.replay (make ()) workload in
  let count f = Array.fold_left (fun acc r -> if f r then acc + 1 else acc) 0 report.replies in
  check_int "served agree" (count (function Serve.Providers _ -> true | _ -> false)) tally.served;
  check_int "unknown agree" (count (( = ) Serve.Unknown_owner)) tally.unknown;
  let volume =
    Array.fold_left
      (fun acc r -> match r with Serve.Providers ps -> acc + List.length ps | _ -> acc)
      0 report.replies
  in
  check_int "volume agree" volume tally.providers_listed;
  (* And both must agree with the index itself, position by position. *)
  Array.iteri
    (fun i reply ->
      let owner = workload.(i) in
      match reply with
      | Serve.Providers providers ->
          check_bool "in range" true (owner < 40);
          check_list (Printf.sprintf "request %d" i) (Eppi.Index.query index ~owner) providers
      | Serve.Unknown_owner -> check_bool "really unknown" true (owner >= 40)
      | _ -> Alcotest.fail "no admission control configured, nothing may be shed")
    report.replies

let test_engine_pool_equals_sequential () =
  let index = test_index ~n:30 ~m:24 in
  let workload = Workload.zipf (Rng.create 9) ~n:30 ~count:3_000 in
  let config = { Serve.default_config with shards = 3 } in
  let seq = Serve.run (Serve.create ~config index) workload in
  let par =
    Pool.with_pool ~size:2 (fun pool -> Serve.run ~pool (Serve.create ~config index) workload)
  in
  check_bool "parallel replies equal sequential" true (par.replies = seq.replies)

let test_engine_queue_shedding_accounted () =
  let index = test_index ~n:20 ~m:16 in
  let queries = 1_000 in
  let admission = Some { Admission.rate = 1e9; burst = 1_000_000; queue_capacity = 100 } in
  let config = { Serve.default_config with shards = 2; admission } in
  let engine = Serve.create ~config index in
  let workload = Workload.uniform (Rng.create 10) ~n:20 ~count:queries in
  let report = Serve.run engine workload in
  let snap = Serve.metrics engine in
  check_int "every request accounted" queries snap.queries;
  check_int "conservation" queries (snap.served + snap.unknown + snap.shed_rate + snap.shed_queue);
  (* 2 shards x 100 queue slots, generous bucket: exactly queries - 200 shed. *)
  check_int "queue bound enforced" (queries - 200) snap.shed_queue;
  let shed_replies =
    Array.fold_left
      (fun acc r -> if r = Serve.Shed_queue_full then acc + 1 else acc)
      0 report.replies
  in
  check_int "shed visible in replies" snap.shed_queue shed_replies

let test_engine_rate_shedding_with_manual_clock () =
  let index = test_index ~n:20 ~m:16 in
  let admission = Some { Admission.rate = 1.0; burst = 10; queue_capacity = 1_000_000 } in
  let config = { Serve.default_config with admission } in
  let engine = Serve.create ~config index in
  let workload = Workload.uniform (Rng.create 11) ~n:20 ~count:100 in
  (* A frozen clock: no refill ever happens, so exactly burst are admitted. *)
  let report = Serve.run ~clock:(fun () -> 1000.0) engine workload in
  let snap = Serve.metrics engine in
  check_int "burst admitted" 10 snap.served;
  check_int "rest shed by rate" 90 snap.shed_rate;
  check_int "replies agree" 90
    (Array.fold_left
       (fun acc r -> if r = Serve.Shed_rate_limit then acc + 1 else acc)
       0 report.replies)

let test_engine_audit () =
  let index = test_index ~n:12 ~m:9 in
  let engine = Serve.create index in
  let postings = Serve.postings engine in
  (match Serve.audit engine ~provider:3 with
  | Some owners -> check_list "audit equals inverse postings" (Postings.owners_of postings ~provider:3) owners
  | None -> Alcotest.fail "in-range provider must audit");
  check_bool "out of range audit" true (Serve.audit engine ~provider:9 = None);
  check_int "audits counted" 1 (Serve.metrics engine).audits

let test_engine_config_validation () =
  let index = test_index ~n:4 ~m:4 in
  Alcotest.check_raises "shards" (Invalid_argument "Serve: shards must be >= 1") (fun () ->
      ignore (Serve.create ~config:{ Serve.default_config with shards = 0 } index));
  Alcotest.check_raises "sample" (Invalid_argument "Serve: latency_sample_every must be >= 1")
    (fun () ->
      ignore (Serve.create ~config:{ Serve.default_config with latency_sample_every = 0 } index))

(* ---------- Hot swap ---------- *)

let test_lru_clear () =
  let lru = Lru.create ~capacity:3 in
  Lru.put lru 1 "a";
  Lru.put lru 2 "b";
  Lru.put lru 3 "c";
  Lru.put lru 4 "d";
  Lru.clear lru;
  check_int "empty after clear" 0 (Lru.length lru);
  check_int "capacity preserved" 3 (Lru.capacity lru);
  check_bool "entries gone" true (Lru.find lru 2 = None && Lru.find lru 4 = None);
  check_int "evictions stay cumulative" 1 (Lru.evictions lru);
  Lru.put lru 7 "e";
  Alcotest.(check (option string)) "usable after clear" (Some "e") (Lru.find lru 7);
  check_int "length after reuse" 1 (Lru.length lru)

let test_metrics_generation_and_swaps () =
  let a = Metrics.create () and b = Metrics.create () in
  let base = Metrics.snapshot [ a; b ] in
  check_int "initial generation" 1 base.generation;
  check_int "initial swaps" 0 base.swaps;
  Metrics.incr_swaps a;
  Metrics.set_generation a 2;
  let snap = Metrics.snapshot [ a; b ] in
  check_int "generation is the max over shards" 2 snap.generation;
  check_int "swaps sum over shards" 1 snap.swaps;
  Metrics.incr_swaps b;
  Metrics.set_generation b 2;
  let newer = Metrics.snapshot [ a; b ] in
  let d = Metrics.diff newer snap in
  check_int "diff swaps" 1 d.swaps;
  check_int "diff generation from newer" 2 d.generation;
  check_bool "json carries generation" true (contains (Metrics.to_json newer) "\"generation\": 2");
  check_bool "json carries swaps" true (contains (Metrics.to_json newer) "\"swaps\": 2")

let test_workload_request_logs () =
  let w = [| 3; 1; 4; 1; 5 |] in
  check_bool "csv round-trip" true (Workload.of_csv_log (Workload.to_csv_log w) = w);
  let csv = "ts,client,owner\n# comment\n10,a,3\n\n11,b,7\n" in
  check_bool "timestamped csv with header and comment" true (Workload.of_csv_log csv = [| 3; 7 |]);
  (match Workload.of_csv_log "owner\n1\nnope\n" with
  | exception Failure msg -> check_bool "csv error names the line" true (contains msg "line 3")
  | _ -> Alcotest.fail "bad csv line must fail");
  let jsonl = "{\"ts\": 10, \"owner\": 3}\n{\"owner\":7}\n" in
  check_bool "jsonl" true (Workload.of_jsonl_log jsonl = [| 3; 7 |]);
  match Workload.of_jsonl_log "{\"owner\": 1}\n{\"no\": 2}\n" with
  | exception Failure msg -> check_bool "jsonl error names the line" true (contains msg "line 2")
  | _ -> Alcotest.fail "jsonl without owner must fail"

(* Two capture files from different daemons, each timestamped: replaying
   the union means merging rows by timestamp, and the reader's last-field
   rule lets the merged file parse without stripping the leading columns. *)
let test_workload_merged_logs () =
  let log_a = "ts,client,owner\n10,a,3\n14,a,1\n18,a,4\n" in
  let log_b = "ts,client,owner\n11,b,7\n13,b,2\n19,b,9\n" in
  check_bool "log a alone" true (Workload.of_csv_log log_a = [| 3; 1; 4 |]);
  check_bool "log b alone" true (Workload.of_csv_log log_b = [| 7; 2; 9 |]);
  let rows text =
    String.split_on_char '\n' text
    |> List.filteri (fun i _ -> i > 0)
    |> List.filter (fun l -> String.trim l <> "")
  in
  let ts row = int_of_string (List.hd (String.split_on_char ',' row)) in
  let merged_rows =
    List.stable_sort (fun x y -> compare (ts x) (ts y)) (rows log_a @ rows log_b)
  in
  let merged = "ts,client,owner\n" ^ String.concat "\n" merged_rows ^ "\n" in
  check_bool "merged by timestamp" true
    (Workload.of_csv_log merged = [| 3; 7; 2; 1; 4; 9 |]);
  (* Recovery: blanks and comments a merge tool interleaves are skipped
     without aborting the replay... *)
  let noisy = "ts,client,owner\n10,a,3\n# daemon b joins here\n\n11,b,7\n" in
  check_bool "comments and blanks skipped" true (Workload.of_csv_log noisy = [| 3; 7 |]);
  (* ...but a truly garbled row aborts, naming the merged file's line and
     the offending field, so the capture can be fixed at the source. *)
  match Workload.of_csv_log "ts,client,owner\n10,a,3\n11,b,oops\n12,a,4\n" with
  | exception Failure msg ->
      check_bool "bad row names the merged line" true (contains msg "line 3");
      check_bool "bad row names the field" true (contains msg "oops")
  | _ -> Alcotest.fail "garbled merged row must fail"

let test_engine_republish () =
  let index1 = test_index ~n:20 ~m:12 in
  (* Bigger replacement: owner 22 exists only after the swap. *)
  let index2 = random_index (Rng.create 77) ~n:24 ~m:12 ~density:0.3 in
  let engine = Serve.create index1 in
  check_int "initial generation" 1 (Serve.generation engine);
  (match Serve.query_tagged engine ~owner:5 with
  | 1, Serve.Providers p -> check_list "pre-swap reply" (Eppi.Index.query index1 ~owner:5) p
  | _ -> Alcotest.fail "pre-swap query");
  ignore (Serve.query engine ~owner:5);
  check_bool "second query hit the cache" true ((Serve.metrics engine).cache_hits >= 1);
  check_bool "owner 22 unknown before swap" true (Serve.query engine ~owner:22 = Serve.Unknown_owner);
  let generation = Serve.republish_index engine index2 in
  check_int "republish bumps the generation" 2 generation;
  check_int "engine generation" 2 (Serve.generation engine);
  (match Serve.query_tagged engine ~owner:5 with
  | 2, Serve.Providers p ->
      (* The generation check runs before the cache lookup, so the stale
         cached answer for owner 5 can never leak across the swap. *)
      check_list "post-swap reply from the new index" (Eppi.Index.query index2 ~owner:5) p
  | _ -> Alcotest.fail "post-swap query");
  check_bool "negative cache invalidated too" true
    (Serve.query engine ~owner:22 = Serve.Providers (Eppi.Index.query index2 ~owner:22));
  let snap = Serve.metrics engine in
  check_int "snapshot generation" 2 snap.generation;
  check_bool "swap observation counted" true (snap.swaps >= 1)

let test_engine_hot_swap_concurrent () =
  let n = 32 and m = 12 in
  let index1 = test_index ~n ~m in
  let index2 = random_index (Rng.create 99) ~n ~m ~density:0.3 in
  let truth1 = Array.init n (fun owner -> Eppi.Index.query index1 ~owner) in
  let truth2 = Array.init n (fun owner -> Eppi.Index.query index2 ~owner) in
  let config = { Serve.default_config with shards = 4 } in
  let engine = Serve.create ~config index1 in
  let workload = Workload.uniform (Rng.create 3) ~n ~count:200_000 in
  let swapper =
    Domain.spawn (fun () ->
        Unix.sleepf 0.002;
        Serve.republish_index engine index2)
  in
  let report = Pool.with_pool ~size:4 (fun pool -> Serve.run ~pool engine workload) in
  check_int "swap installed generation 2" 2 (Domain.join swapper);
  (* Every reply must be the truth of one of the two generations — a swap
     mid-run may answer from either, but never from a mixture or a stale
     cache entry. *)
  Array.iteri
    (fun i reply ->
      let owner = workload.(i) in
      check_bool
        (Printf.sprintf "request %d owner %d matches a generation" i owner)
        true
        (reply = Serve.Providers truth1.(owner) || reply = Serve.Providers truth2.(owner)))
    report.replies;
  for owner = 0 to n - 1 do
    check_bool "post-swap queries serve the new index" true
      (Serve.query engine ~owner = Serve.Providers truth2.(owner))
  done;
  let snap = Serve.metrics engine in
  check_int "conservation across the swap" snap.queries
    (snap.served + snap.unknown + snap.shed_rate + snap.shed_queue)

(* ---------- Properties ---------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"postings query equals Index.query for every owner" ~count:60
      (triple small_int (int_range 1 40) (int_range 1 40))
      (fun (seed, n, m) ->
        let rng = Rng.create seed in
        let index = random_index rng ~n ~m ~density:0.25 in
        let postings = Postings.of_index index in
        List.for_all
          (fun owner -> Postings.query postings ~owner = Eppi.Index.query index ~owner)
          (List.init n Fun.id));
    Test.make ~name:"inverse postings transpose the forward postings" ~count:60
      (triple small_int (int_range 1 40) (int_range 1 40))
      (fun (seed, n, m) ->
        let rng = Rng.create seed in
        let index = random_index rng ~n ~m ~density:0.25 in
        let postings = Postings.of_index index in
        List.for_all
          (fun provider ->
            Postings.owners_of postings ~provider
            = List.filter
                (fun owner -> List.mem provider (Postings.query postings ~owner))
                (List.init n Fun.id))
          (List.init m Fun.id));
    Test.make ~name:"engine replies equal Index.query under any shard/cache config" ~count:40
      (quad small_int (int_range 1 30) (int_range 1 6) (int_range 0 64))
      (fun (seed, n, shards, cache) ->
        let rng = Rng.create seed in
        let index = random_index rng ~n ~m:20 ~density:0.2 in
        let config = { Serve.default_config with shards; cache_capacity = cache } in
        let engine = Serve.create ~config index in
        let workload = Workload.zipf (Rng.create (seed + 1)) ~n ~count:300 in
        let report = Serve.run engine workload in
        Array.for_all2
          (fun owner reply -> reply = Serve.Providers (Eppi.Index.query index ~owner))
          workload report.replies);
  ]

let () =
  Alcotest.run "serve"
    [
      ( "postings",
        [
          Alcotest.test_case "matches Index.query" `Quick test_postings_matches_index;
          Alcotest.test_case "inverse postings" `Quick test_postings_inverse;
          Alcotest.test_case "iter and bounds" `Quick test_postings_iter_and_bounds;
          Alcotest.test_case "empty and full rows" `Quick test_postings_empty_and_full_rows;
        ] );
      ( "lru",
        [
          Alcotest.test_case "basic eviction order" `Quick test_lru_basic;
          Alcotest.test_case "replace and mem" `Quick test_lru_replace_and_mem;
          Alcotest.test_case "zero capacity" `Quick test_lru_zero_capacity;
          Alcotest.test_case "churn against model" `Quick test_lru_churn_against_model;
          Alcotest.test_case "clear" `Quick test_lru_clear;
        ] );
      ( "admission",
        [
          Alcotest.test_case "token bucket" `Quick test_admission_bucket;
          Alcotest.test_case "clock skew and validation" `Quick
            test_admission_clock_skew_and_validation;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "log2 histogram" `Quick test_log2_histogram;
          Alcotest.test_case "log2 histogram edge cases" `Quick test_log2_histogram_edges;
          Alcotest.test_case "snapshot merges shards" `Quick test_metrics_snapshot_merges_shards;
          Alcotest.test_case "diff" `Quick test_metrics_diff;
          Alcotest.test_case "generation and swaps" `Quick test_metrics_generation_and_swaps;
        ] );
      ( "workload",
        [
          Alcotest.test_case "zipf shape" `Quick test_workload_zipf;
          Alcotest.test_case "unknown fraction" `Quick test_workload_unknowns;
          Alcotest.test_case "request logs" `Quick test_workload_request_logs;
          Alcotest.test_case "merged timestamped logs" `Quick test_workload_merged_logs;
        ] );
      ( "engine",
        [
          Alcotest.test_case "matches index" `Quick test_engine_matches_index;
          Alcotest.test_case "unknown + negative cache" `Quick
            test_engine_unknown_and_negative_cache;
          Alcotest.test_case "run and replay agree" `Quick test_engine_run_replay_agree;
          Alcotest.test_case "pool equals sequential" `Quick test_engine_pool_equals_sequential;
          Alcotest.test_case "queue shedding accounted" `Quick
            test_engine_queue_shedding_accounted;
          Alcotest.test_case "rate shedding, manual clock" `Quick
            test_engine_rate_shedding_with_manual_clock;
          Alcotest.test_case "audit" `Quick test_engine_audit;
          Alcotest.test_case "config validation" `Quick test_engine_config_validation;
          Alcotest.test_case "republish hot swap" `Quick test_engine_republish;
          Alcotest.test_case "hot swap under concurrent run" `Quick
            test_engine_hot_swap_concurrent;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
