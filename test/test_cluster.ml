(* Tests for the replication layer (lib/cluster): replica-set parsing,
   the pure pick policies, coordinator fan-out against a partially dead
   replica set with the convergence check, and the cluster client —
   transparent failover when a replica dies mid-run, the typed
   stale-generation guard, and replay conservation. *)

open Eppi_prelude
module Serve = Eppi_serve.Serve
module Server = Eppi_net.Server
module Net_client = Eppi_net.Client
module Wire = Eppi_net.Wire
module Addr = Eppi_net.Addr
module Replica_set = Eppi_cluster.Replica_set
module Fanout = Eppi_cluster.Fanout
module Cluster = Eppi_cluster.Client

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  if m = 0 then true else go 0

(* Same deterministic index shapes as test_net. *)
let test_index ~n ~m =
  let matrix = Bitmatrix.create ~rows:n ~cols:m in
  for j = 0 to n - 1 do
    for k = 0 to j mod 5 do
      Bitmatrix.set matrix ~row:j ~col:((j + (k * 7)) mod m) true
    done
  done;
  Eppi.Index.of_matrix matrix

let test_index_v2 ~n ~m =
  let matrix = Bitmatrix.create ~rows:n ~cols:m in
  for j = 0 to n - 1 do
    for k = 0 to (j + 2) mod 4 do
      Bitmatrix.set matrix ~row:j ~col:((j + 3 + (k * 5)) mod m) true
    done
  done;
  Eppi.Index.of_matrix matrix

(* ---------- Replica sets ---------- *)

let test_replica_set () =
  (match Replica_set.parse " /tmp/a.sock, host:9001 ,:9002" with
  | Ok set ->
      check_int "three members" 3 (Replica_set.size set);
      check_bool "order preserved" true
        (Replica_set.addrs set
        = [
            Addr.Unix_socket "/tmp/a.sock";
            Addr.Tcp ("host", 9001);
            Addr.Tcp ("", 9002);
          ]);
      let canonical = Replica_set.to_string set in
      (* Canonical form is stable under re-parsing (loopback is spelled
         out, so compare strings rather than constructors). *)
      check_bool "round-trips" true
        (match Replica_set.parse canonical with
        | Ok again -> Replica_set.to_string again = canonical
        | Error _ -> false)
  | Error msg -> Alcotest.fail msg);
  let reject what s expect =
    match Replica_set.parse s with
    | Ok _ -> Alcotest.fail (what ^ ": must be rejected")
    | Error msg ->
        check_bool (what ^ ": error names the problem") true (contains msg expect)
  in
  reject "empty string" "" "empty";
  reject "empty element" "a.sock,,b.sock" "empty";
  reject "bad port" "a.sock,host:70000" "host:70000";
  reject "trailing colon" "host:" "trailing colon";
  reject "duplicate replica" "a.sock, a.sock" "duplicate";
  (match Replica_set.of_addrs [ Addr.Unix_socket "/x" ] with
  | set -> check_int "singleton set" 1 (Replica_set.size set));
  (try
     ignore (Replica_set.of_addrs []);
     Alcotest.fail "empty of_addrs must raise"
   with Invalid_argument _ -> ());
  try
    ignore (Replica_set.of_string "host:");
    Alcotest.fail "of_string must raise on rejection"
  with Invalid_argument _ -> ()

(* ---------- Pick policies, pure ---------- *)

let test_select () =
  let rr = Cluster.Round_robin and li = Cluster.Least_inflight in
  let case name policy ~rr:cursor slots expect =
    check_bool name true (Cluster.select policy ~rr:cursor slots = expect)
  in
  case "rr empty" rr ~rr:0 [||] None;
  case "rr picks at cursor" rr ~rr:1 [| (true, 0); (true, 0); (true, 0) |] (Some 1);
  case "rr wraps modulo" rr ~rr:5 [| (true, 0); (true, 0); (true, 0) |] (Some 2);
  case "rr negative cursor normalized" rr ~rr:(-1)
    [| (true, 0); (true, 0); (true, 0) |]
    (Some 2);
  case "rr skips unselectable" rr ~rr:1 [| (true, 0); (false, 0); (false, 0) |] (Some 0);
  case "rr all down" rr ~rr:0 [| (false, 0); (false, 0) |] None;
  case "li empty" li ~rr:0 [||] None;
  case "li picks minimal inflight" li ~rr:0
    [| (true, 3); (true, 1); (true, 2) |]
    (Some 1);
  case "li tie breaks to lowest index" li ~rr:0
    [| (true, 2); (false, 0); (true, 2) |]
    (Some 0);
  case "li ignores cursor" li ~rr:7 [| (true, 0); (true, 0) |] (Some 0);
  case "li only selectable wins despite load" li ~rr:0
    [| (false, 0); (true, 99) |]
    (Some 1);
  case "li all down" li ~rr:0 [| (false, 1); (false, 2) |] None

(* ---------- Convergence check, pure ---------- *)

let test_converged () =
  let a = Addr.Unix_socket "/a" and b = Addr.Unix_socket "/b" in
  let ok g = Ok { Wire.generation = g; swaps = 0; peers = [] } in
  check_bool "empty list" true (Fanout.converged [] = None);
  check_bool "agreement" true (Fanout.converged [ (a, ok 3); (b, ok 3) ] = Some 3);
  check_bool "single replica" true (Fanout.converged [ (a, ok 1) ] = Some 1);
  check_bool "disagreement" true (Fanout.converged [ (a, ok 3); (b, ok 2) ] = None);
  check_bool "any error spoils it" true
    (Fanout.converged [ (a, ok 3); (b, Error "unreachable") ] = None)

(* ---------- Live daemons ---------- *)

let sock_counter = ref 0

let sock_path () =
  incr sock_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "eppi-cluster-test-%d-%d.sock" (Unix.getpid ()) !sock_counter)

type daemon = {
  d_addr : Addr.t;
  d_path : string;
  d_domain : unit Domain.t;
  mutable d_alive : bool;
}

let start_daemon index =
  let path = sock_path () in
  let addr = Addr.Unix_socket path in
  let engine = Serve.create ~config:{ Serve.default_config with shards = 1 } index in
  let server = Server.create ~config:{ Server.default_config with workers = 1 } engine in
  let listener = Server.listen addr in
  let domain = Domain.spawn (fun () -> Server.run server listener) in
  { d_addr = addr; d_path = path; d_domain = domain; d_alive = true }

let kill_daemon d =
  if d.d_alive then begin
    d.d_alive <- false;
    (try
       let c = Net_client.connect ~retries:0 ~reconnect:false d.d_addr in
       (try Net_client.shutdown c with _ -> ());
       Net_client.close c
     with _ -> ());
    Domain.join d.d_domain;
    try Sys.remove d.d_path with Sys_error _ -> ()
  end

let with_daemons n index f =
  let daemons = List.init n (fun _ -> start_daemon index) in
  Fun.protect ~finally:(fun () -> List.iter kill_daemon daemons) (fun () -> f daemons)

(* Fan-out over 2 live replicas and 1 that never existed: the dead one
   must not block the others or poison the report, and the survivors
   converge at the new generation within the round. *)
let test_fanout_partial () =
  let index1 = test_index ~n:20 ~m:9 in
  let index2 = test_index_v2 ~n:25 ~m:9 in
  with_daemons 2 index1 (fun daemons ->
      let live = List.map (fun d -> d.d_addr) daemons in
      let dead = Addr.Unix_socket (sock_path ()) in
      let set = Replica_set.of_addrs (live @ [ dead ]) in
      let report =
        Fanout.republish ~retries:1 ~retry_delay:0.01 ~request_timeout:5.0 ~seed:7 set
          index2
      in
      check_int "two succeeded" 2 report.succeeded;
      check_int "one failed" 1 report.failed;
      check_bool "successes agree on generation" true (report.generation = Some 2);
      check_int "results in set order" 3 (List.length report.results);
      List.iteri
        (fun i (r : Fanout.replica_result) ->
          check_bool "result order matches set order" true
            (r.addr = List.nth (Replica_set.addrs set) i);
          check_bool "attempts counted" true (r.attempts >= 1))
        report.results;
      let dead_result = List.nth report.results 2 in
      check_bool "dead replica reports an error" true (Result.is_error dead_result.outcome);
      check_int "dead replica exhausted its retries" 2 dead_result.attempts;
      (* Convergence: survivors agree; the full set (dead included) does not. *)
      let survivors = Replica_set.of_addrs live in
      check_bool "survivors converged" true
        (Fanout.converged (Fanout.status ~request_timeout:5.0 survivors) = Some 2);
      check_bool "dead replica spoils convergence" true
        (Fanout.converged (Fanout.status ~request_timeout:5.0 set) = None))

(* Kill the replica carrying the traffic mid-run: the next window fails
   over transparently, every query still gets an answer, and the client
   records exactly what happened. *)
let test_client_failover () =
  let n = 20 in
  let index = test_index ~n ~m:9 in
  with_daemons 2 index (fun daemons ->
      let set = Replica_set.of_addrs (List.map (fun d -> d.d_addr) daemons) in
      (* Least_inflight with sequential windows always picks the first
         replica — killing it guarantees the failover path runs. *)
      let c =
        Cluster.create ~policy:Least_inflight ~request_timeout:5.0 ~cooldown:30.0
          ~seed:11 set
      in
      Fun.protect
        ~finally:(fun () -> Cluster.close c)
        (fun () ->
          for owner = 0 to 9 do
            let generation, reply = Cluster.query c ~owner in
            check_int "pre-kill generation" 1 generation;
            check_bool "pre-kill reply" true
              (reply = Serve.Providers (Eppi.Index.query index ~owner))
          done;
          kill_daemon (List.hd daemons);
          for owner = 0 to n - 1 do
            let generation, reply = Cluster.query c ~owner in
            check_int "post-kill generation" 1 generation;
            check_bool "post-kill reply" true
              (reply = Serve.Providers (Eppi.Index.query index ~owner))
          done;
          let stats = Cluster.stats c in
          check_int "one failover" 1 stats.failovers;
          check_int "dead replica marked down once" 1 stats.failures.(0);
          check_int "survivor never failed" 0 stats.failures.(1);
          check_bool "failover latency recorded" true
            (match stats.failover_seconds with [ s ] -> s >= 0.0 | _ -> false);
          check_bool "survivor carried the tail" true (stats.answered.(1) >= n);
          (* Requests stranded on the dead socket were re-issued; its
             accounting was reset so nothing counts as forever-inflight. *)
          check_int "no phantom inflight on the dead replica" stats.dispatched.(0)
            stats.answered.(0)))

(* Replica 0 is republished, replica 1 is not; round-robin alternates, so
   the second query answers from behind the observed floor and must raise
   the typed guard, after which the retry lands on the fresh replica. *)
let test_stale_generation () =
  let index1 = test_index ~n:20 ~m:9 in
  let index2 = test_index_v2 ~n:25 ~m:9 in
  with_daemons 2 index1 (fun daemons ->
      let fresh = List.hd daemons in
      let nc = Net_client.connect ~retries:0 ~reconnect:false fresh.d_addr in
      (match
         Fun.protect
           ~finally:(fun () -> Net_client.close nc)
           (fun () -> Net_client.republish nc ~index_csv:(Eppi.Index.to_csv index2))
       with
      | Ok generation -> check_int "fresh replica at generation" 2 generation
      | Error e -> Alcotest.fail e);
      let set = Replica_set.of_addrs (List.map (fun d -> d.d_addr) daemons) in
      let c =
        Cluster.create ~policy:Round_robin ~request_timeout:5.0 ~cooldown:30.0 ~seed:3
          set
      in
      Fun.protect
        ~finally:(fun () -> Cluster.close c)
        (fun () ->
          let generation, _ = Cluster.query c ~owner:4 in
          check_int "first answer from the fresh replica" 2 generation;
          (match Cluster.query c ~owner:4 with
          | exception Cluster.Stale_generation { newest; got } ->
              check_int "newest is the observed floor" 2 newest;
              check_int "got the laggard's generation" 1 got
          | _ -> Alcotest.fail "stale reply must raise");
          (* The laggard is cooling down, so the retry is served fresh. *)
          let generation, reply = Cluster.query c ~owner:4 in
          check_int "retry lands fresh" 2 generation;
          check_bool "retry answers from the new index" true
            (reply = Serve.Providers (Eppi.Index.query index2 ~owner:4));
          let stats = Cluster.stats c in
          check_int "staleness floor" 2 stats.max_generation;
          check_int "cooldown is not a failover" 0 stats.failovers))

(* Replay conservation through the cluster: served + unknown + shed
   covers every request, windows split exactly. *)
let test_replay_conservation () =
  let n = 20 in
  let index = test_index ~n ~m:9 in
  with_daemons 2 index (fun daemons ->
      let set = Replica_set.of_addrs (List.map (fun d -> d.d_addr) daemons) in
      let c = Cluster.create ~request_timeout:5.0 ~seed:17 set in
      Fun.protect
        ~finally:(fun () -> Cluster.close c)
        (fun () ->
          (* 101 requests over depth 8: 13 windows, the last ragged; every
             3rd owner is out of range to exercise the unknown path. *)
          let workload =
            Array.init 101 (fun i -> if i mod 3 = 0 then n + i else i mod n)
          in
          let summary = Cluster.replay ~depth:8 c workload in
          check_int "every request accounted" summary.requests
            (summary.served + summary.unknown + summary.shed);
          check_int "requests" 101 summary.requests;
          check_int "unknowns counted" 34 summary.unknown;
          check_bool "providers listed" true (summary.providers_listed > 0);
          check_int "no failovers on a healthy cluster" 0 summary.failovers;
          let stats = Cluster.stats c in
          let total = Array.fold_left ( + ) 0 stats.dispatched in
          check_int "round-robin spread the windows" 101 total;
          check_bool "both replicas served" true
            (stats.dispatched.(0) > 0 && stats.dispatched.(1) > 0)))

(* Every replica down: the typed cluster-level error, not a hang or a
   raw Unix error. *)
let test_no_replica () =
  let dead = Replica_set.of_string (sock_path () ^ "," ^ sock_path ()) in
  let c = Cluster.create ~request_timeout:5.0 ~cooldown:30.0 ~seed:5 dead in
  Fun.protect
    ~finally:(fun () -> Cluster.close c)
    (fun () ->
      match Cluster.query c ~owner:0 with
      | exception Cluster.No_replica _ -> ()
      | _ -> Alcotest.fail "dead cluster must raise No_replica")

let () =
  Alcotest.run "cluster"
    [
      ( "replica set",
        [ Alcotest.test_case "parse, print, reject" `Quick test_replica_set ] );
      ( "policies",
        [
          Alcotest.test_case "pick table" `Quick test_select;
          Alcotest.test_case "convergence check" `Quick test_converged;
        ] );
      ( "fanout",
        [ Alcotest.test_case "partial success and convergence" `Quick test_fanout_partial ]
      );
      ( "client",
        [
          Alcotest.test_case "transparent failover on kill" `Quick test_client_failover;
          Alcotest.test_case "stale generation guard" `Quick test_stale_generation;
          Alcotest.test_case "replay conservation" `Quick test_replay_conservation;
          Alcotest.test_case "no replica left" `Quick test_no_replica;
        ] );
    ]
