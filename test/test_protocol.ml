(* Tests for the distributed construction protocol: SecSumShare correctness
   and traffic shape, the CountBelow MPC stage, the pure-MPC baseline's
   fixed-point pipeline, and agreement between the secure path and the
   centralized reference. *)

open Eppi_prelude
open Eppi_protocol
module Simnet = Eppi_simnet.Simnet

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let q97 = Modarith.modulus 97

let random_inputs rng ~m ~n ~max =
  Array.init m (fun _ -> Array.init n (fun _ -> Rng.int rng max))

(* ---------- SecSumShare ---------- *)

let test_secsumshare_sums () =
  let rng = Rng.create 1 in
  let m = 12 and n = 7 in
  let inputs = random_inputs rng ~m ~n ~max:2 in
  let r = Secsumshare.run rng ~inputs ~c:3 ~q:q97 in
  check_int "three share vectors" 3 (Array.length r.coordinator_shares);
  let sums = Secsumshare.reconstruct ~q:q97 r.coordinator_shares in
  for j = 0 to n - 1 do
    let expected = Array.fold_left (fun acc row -> acc + row.(j)) 0 inputs in
    check_int (Printf.sprintf "identity %d" j) expected sums.(j)
  done

let test_secsumshare_figure3_scale () =
  (* The paper's worked example: 5 providers, c = 3, q = 5, one identity
     with bits 0,1,1,0,0 -> frequency 2. *)
  let rng = Rng.create 2 in
  let inputs = [| [| 0 |]; [| 1 |]; [| 1 |]; [| 0 |]; [| 0 |] |] in
  let r = Secsumshare.run rng ~inputs ~c:3 ~q:(Modarith.modulus 5) in
  let sums = Secsumshare.reconstruct ~q:(Modarith.modulus 5) r.coordinator_shares in
  check_int "frequency 2" 2 sums.(0)

let test_secsumshare_share_ranges () =
  let rng = Rng.create 3 in
  let inputs = random_inputs rng ~m:8 ~n:4 ~max:2 in
  let r = Secsumshare.run rng ~inputs ~c:4 ~q:q97 in
  Array.iter
    (Array.iter (fun s -> check_bool "canonical residue" true (s >= 0 && s < 97)))
    r.coordinator_shares

let test_secsumshare_message_count () =
  (* Each provider sends c-1 share messages plus one super-share. *)
  let rng = Rng.create 4 in
  let m = 10 and c = 3 in
  let inputs = random_inputs rng ~m ~n:5 ~max:2 in
  let r = Secsumshare.run rng ~inputs ~c ~q:q97 in
  check_int "messages = m * c" (m * c) r.net.messages_sent;
  check_bool "nonzero completion time" true (r.net.completion_time > 0.0)

let test_secsumshare_constant_rounds_scaling () =
  (* Completion time must grow slowly (not linearly) with m: the protocol
     runs in constant rounds. *)
  let time m =
    let rng = Rng.create 5 in
    let inputs = random_inputs rng ~m ~n:3 ~max:2 in
    (Secsumshare.run rng ~inputs ~c:3 ~q:q97).net.completion_time
  in
  let t10 = time 10 and t100 = time 100 in
  check_bool
    (Printf.sprintf "t100 %f < 3 * t10 %f" t100 t10)
    true
    (t100 < 3.0 *. t10)

let test_secsumshare_coordinator_shares_look_random () =
  (* A single coordinator's shares must carry no information about the sums:
     rerunning with different protocol randomness decorrelates them, and
     their empirical distribution is near-uniform over Z_q. *)
  let q = Modarith.modulus 11 in
  let inputs = [| [| 1 |]; [| 1 |]; [| 1 |]; [| 0 |]; [| 0 |] |] in
  let counts = Array.make 11 0 in
  let runs = 4000 in
  for seed = 1 to runs do
    let rng = Rng.create seed in
    let r = Secsumshare.run rng ~inputs ~c:3 ~q in
    counts.(r.coordinator_shares.(0).(0)) <- counts.(r.coordinator_shares.(0).(0)) + 1
  done;
  let expected = float_of_int runs /. 11.0 in
  Array.iteri
    (fun v c ->
      check_bool
        (Printf.sprintf "share value %d near uniform (%d)" v c)
        true
        (Float.abs (float_of_int c -. expected) < 6.0 *. sqrt expected))
    counts

let test_secsumshare_lossy_fails_fast () =
  (* Without a reliability layer, a lossy network must fail loudly, never
     return a corrupted sum. *)
  let config = { Simnet.default_config with drop_probability = 0.4; seed = 5 } in
  let rng = Rng.create 50 in
  let inputs = random_inputs rng ~m:10 ~n:4 ~max:2 in
  match Secsumshare.run ~config rng ~inputs ~c:3 ~q:q97 with
  | _ -> Alcotest.fail "expected a failure on a lossy network"
  | exception Failure _ -> ()

let test_secsumshare_reliable_on_lossy_network () =
  (* With acks + retransmission the sums are exact despite 30% loss. *)
  let config = { Simnet.default_config with drop_probability = 0.3; seed = 7 } in
  let rng = Rng.create 51 in
  let m = 12 and n = 6 in
  let inputs = random_inputs rng ~m ~n ~max:2 in
  let r =
    Secsumshare.run ~config ~reliability:Secsumshare.default_reliability rng ~inputs ~c:3
      ~q:q97
  in
  let sums = Secsumshare.reconstruct ~q:q97 r.coordinator_shares in
  for j = 0 to n - 1 do
    let expected = Array.fold_left (fun acc row -> acc + row.(j)) 0 inputs in
    check_int (Printf.sprintf "identity %d survives loss" j) expected sums.(j)
  done;
  check_bool "retransmissions happened" true (r.retransmissions > 0)

let test_secsumshare_reliable_no_loss_no_retransmit () =
  let rng = Rng.create 52 in
  let inputs = random_inputs rng ~m:9 ~n:3 ~max:2 in
  let r =
    Secsumshare.run ~reliability:Secsumshare.default_reliability rng ~inputs ~c:3 ~q:q97
  in
  check_int "no retransmissions on a clean network" 0 r.retransmissions

let test_secsumshare_reliable_across_seeds () =
  (* Determinized stress: several loss seeds, all must converge exactly. *)
  for seed = 1 to 10 do
    let config = { Simnet.default_config with drop_probability = 0.25; seed } in
    let rng = Rng.create (100 + seed) in
    let m = 8 and n = 3 in
    let inputs = random_inputs rng ~m ~n ~max:2 in
    let r =
      Secsumshare.run ~config ~reliability:Secsumshare.default_reliability rng ~inputs ~c:3
        ~q:q97
    in
    let sums = Secsumshare.reconstruct ~q:q97 r.coordinator_shares in
    for j = 0 to n - 1 do
      let expected = Array.fold_left (fun acc row -> acc + row.(j)) 0 inputs in
      check_int (Printf.sprintf "seed %d identity %d" seed j) expected sums.(j)
    done
  done

let test_secsumshare_crashed_provider_fails_fast () =
  (* A crashed provider never contributes: the protocol must fail loudly
     rather than deliver a silently-wrong sum. *)
  let rng = Rng.create 53 in
  let inputs = random_inputs rng ~m:8 ~n:3 ~max:2 in
  let config = { Simnet.default_config with drop_probability = 0.0 } in
  (* Crash node 5 before anything runs by injecting 100% loss toward it via
     a wrapper: simplest faithful injection is a config with loss and no
     reliability; the dedicated crash API is tested at the simnet level, so
     here we emulate a dead provider with certain loss. *)
  ignore config;
  let lossy = { Simnet.default_config with drop_probability = 0.9; seed = 3 } in
  match Secsumshare.run ~config:lossy rng ~inputs ~c:3 ~q:q97 with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure _ -> ()

let test_secsumshare_validation () =
  let rng = Rng.create 6 in
  Alcotest.check_raises "m < c" (Invalid_argument "Secsumshare.run: need at least c providers")
    (fun () -> ignore (Secsumshare.run rng ~inputs:[| [| 1 |]; [| 0 |] |] ~c:3 ~q:q97));
  Alcotest.check_raises "value out of range"
    (Invalid_argument "Secsumshare.run: provider 0 input out of [0, q)") (fun () ->
      ignore (Secsumshare.run rng ~inputs:[| [| 97 |]; [| 0 |]; [| 0 |] |] ~c:2 ~q:q97))

(* ---------- CountBelow ---------- *)

let test_integer_threshold_exact () =
  let m = 1000 in
  List.iter
    (fun (policy, epsilon) ->
      let t = Countbelow.integer_threshold ~policy ~epsilon ~m in
      if t <= m then begin
        check_bool "t is common" true
          (Eppi.Policy.is_common policy ~sigma:(float_of_int t /. float_of_int m) ~epsilon ~m);
        if t > 0 then
          check_bool "t-1 is not" false
            (Eppi.Policy.is_common policy
               ~sigma:(float_of_int (t - 1) /. float_of_int m)
               ~epsilon ~m)
      end)
    [
      (Eppi.Policy.Basic, 0.5);
      (Eppi.Policy.Basic, 0.9);
      (Eppi.Policy.Inc_exp 0.02, 0.5);
      (Eppi.Policy.Chernoff 0.9, 0.5);
      (Eppi.Policy.Chernoff 0.9, 0.8);
    ]

let test_integer_threshold_eps_zero () =
  check_int "never common" 101 (Countbelow.integer_threshold ~policy:Eppi.Policy.Basic ~epsilon:0.0 ~m:100)

let test_countbelow_classification () =
  let rng = Rng.create 7 in
  let m = 50 in
  let q = Construct.modulus_for m in
  let freqs = [| 0; 10; 45; 25; 50 |] in
  let thresholds = [| 5; 11; 40; 25; 51 |] in
  let shares =
    Array.init 3 (fun _ -> Array.make 5 0)
  in
  Array.iteri
    (fun j f ->
      let s = Eppi_secretshare.Additive.share rng ~q ~c:3 f in
      Array.iteri (fun k v -> shares.(k).(j) <- v) s)
    freqs;
  let r = Countbelow.run rng ~shares ~q ~thresholds in
  Alcotest.(check (array bool)) "commons" [| false; false; true; true; false |] r.common;
  check_int "count" 2 r.n_common;
  (* Frequencies released only for non-common identities. *)
  Alcotest.(check (array (option int)))
    "frequencies"
    [| Some 0; Some 10; None; None; Some 50 |]
    r.frequencies;
  check_bool "positive simulated time" true (r.time > 0.0);
  check_bool "nonzero circuit" true (r.circuit_stats.size > 0)

(* ---------- network-executed GMW ---------- *)

let test_mpcnet_matches_inprocess () =
  let compiled =
    Eppi_sfdl.Compile.compile_source (Eppi_sfdl.Programs.millionaires ~width:8)
  in
  List.iter
    (fun (a, b) ->
      let inputs =
        Eppi_sfdl.Compile.encode_inputs compiled
          [ ("a", Eppi_sfdl.Compile.Dint a); ("b", Eppi_sfdl.Compile.Dint b) ]
      in
      let plain = Eppi_circuit.Circuit.eval compiled.circuit ~inputs in
      let networked = Mpcnet.execute (Rng.create 70) compiled.circuit ~inputs in
      let inprocess = Eppi_mpc.Gmw.execute (Rng.create 71) compiled.circuit ~inputs in
      Alcotest.(check (array bool)) "net = plain" plain networked.outputs;
      Alcotest.(check (array bool)) "net = in-process" inprocess.outputs networked.outputs)
    [ (5, 9); (9, 5); (200, 200); (0, 255) ]

let test_mpcnet_countbelow () =
  let q = 13 in
  let compiled =
    Eppi_sfdl.Compile.compile_source
      (Eppi_sfdl.Programs.count_below ~c:3 ~q ~thresholds:[| 5; 9 |])
  in
  let rng = Rng.create 72 in
  let qm = Modarith.modulus q in
  let freqs = [| 7; 3 |] in
  let shares = Array.map (fun v -> Eppi_secretshare.Additive.share rng ~q:qm ~c:3 v) freqs in
  let inputs =
    Eppi_sfdl.Compile.encode_inputs compiled
      (List.init 3 (fun k ->
           (Printf.sprintf "s%d" k, Eppi_sfdl.Compile.Dints (Array.map (fun s -> s.(k)) shares))))
  in
  let r = Mpcnet.execute rng compiled.circuit ~inputs in
  match Eppi_sfdl.Compile.lookup_output (Eppi_sfdl.Compile.decode_outputs compiled r.outputs) "common" with
  | Dbools cs -> Alcotest.(check (array bool)) "classification" [| true; false |] cs
  | _ -> Alcotest.fail "bad shape"

let test_mpcnet_round_structure () =
  let compiled =
    Eppi_sfdl.Compile.compile_source (Eppi_sfdl.Programs.millionaires ~width:8)
  in
  let inputs =
    Eppi_sfdl.Compile.encode_inputs compiled
      [ ("a", Eppi_sfdl.Compile.Dint 1); ("b", Eppi_sfdl.Compile.Dint 2) ]
  in
  let stats = Eppi_circuit.Circuit.stats compiled.circuit in
  let r = Mpcnet.execute (Rng.create 73) compiled.circuit ~inputs in
  check_int "rounds = and depth + output" (stats.and_depth + 1) r.rounds;
  (* Broadcast traffic: p(p-1) messages per round (p = 2 here). *)
  check_int "messages" (r.rounds * 2 * 1) r.net.messages_sent;
  check_bool "emergent time positive" true (r.net.completion_time > 0.0)

let test_mpcnet_time_tracks_cost_model () =
  (* The emergent simulated time and the closed-form estimate must agree
     within an order of magnitude (the model is calibrated, not fitted). *)
  let compiled =
    Eppi_sfdl.Compile.compile_source
      (Eppi_sfdl.Programs.count_below ~c:3 ~q:1031 ~thresholds:(Array.make 4 500))
  in
  let rng = Rng.create 74 in
  let qm = Modarith.modulus 1031 in
  let shares =
    Array.init 4 (fun _ -> Eppi_secretshare.Additive.share rng ~q:qm ~c:3 (Rng.int rng 1031))
  in
  let inputs =
    Eppi_sfdl.Compile.encode_inputs compiled
      (List.init 3 (fun k ->
           ( Printf.sprintf "s%d" k,
             Eppi_sfdl.Compile.Dints (Array.map (fun s -> s.(k)) shares) )))
  in
  let r = Mpcnet.execute rng compiled.circuit ~inputs in
  let stats = Eppi_circuit.Circuit.stats compiled.circuit in
  let outputs = Array.length (Eppi_circuit.Circuit.outputs compiled.circuit) in
  let estimate = Eppi_mpc.Cost.estimate ~network:Eppi_mpc.Cost.lan ~parties:3 ~outputs stats in
  let ratio = estimate /. r.net.completion_time in
  check_bool
    (Printf.sprintf "estimate %f vs emergent %f (ratio %f)" estimate r.net.completion_time ratio)
    true
    (ratio > 0.1 && ratio < 20.0)

let test_countbelow_simnet_transport () =
  (* The network transport must classify identically to the cost-model
     transport and report an emergent (smaller, setup-free) time. *)
  let rng = Rng.create 80 in
  let m = 20 in
  let q = Construct.modulus_for m in
  let freqs = [| 3; 18; 9 |] in
  let thresholds = [| 5; 10; 20 |] in
  let shares = Array.init 3 (fun _ -> Array.make 3 0) in
  Array.iteri
    (fun j f ->
      let s = Eppi_secretshare.Additive.share rng ~q ~c:3 f in
      Array.iteri (fun k v -> shares.(k).(j) <- v) s)
    freqs;
  let model = Countbelow.run (Rng.create 81) ~shares ~q ~thresholds in
  let networked =
    Countbelow.run ~transport:(`Simnet Simnet.default_config) (Rng.create 82) ~shares ~q
      ~thresholds
  in
  Alcotest.(check (array bool)) "same classification" model.common networked.common;
  Alcotest.(check (array (option int))) "same released frequencies" model.frequencies
    networked.frequencies;
  check_bool "both times positive" true (model.time > 0.0 && networked.time > 0.0)

(* ---------- Pure MPC baseline ---------- *)

let test_purempc_matches_reference () =
  let rng = Rng.create 8 in
  let m = 12 in
  List.iter
    (fun count ->
      let bits = Array.init m (fun i -> i < count) in
      let r = Purempc.run rng ~bits ~epsilon:0.5 ~gamma:0.9 in
      let reference = Purempc.reference_beta ~m ~count ~epsilon:0.5 ~gamma:0.9 in
      if reference < 1.0 then begin
        check_bool
          (Printf.sprintf "count %d: circuit %f vs float %f" count r.beta reference)
          true
          (Float.abs (r.beta -. reference) < 0.05);
        check_bool "not common" false r.common
      end
      else check_bool (Printf.sprintf "count %d common" count) true r.common)
    [ 1; 3; 6; 11 ]

let test_purempc_sigma_zero () =
  (* No member anywhere: division saturates but the identity must not be
     classified common. *)
  let rng = Rng.create 9 in
  let r = Purempc.run rng ~bits:(Array.make 8 false) ~epsilon:0.5 ~gamma:0.9 in
  check_bool "zero frequency not common" false r.common

let test_purempc_circuit_grows_with_m () =
  let s8 = Purempc.stats_for ~m:8 ~identities:1 ~epsilon:0.5 ~gamma:0.9 in
  let s32 = Purempc.stats_for ~m:32 ~identities:1 ~epsilon:0.5 ~gamma:0.9 in
  check_bool "more providers, more gates" true (s32.size > s8.size)

let test_purempc_much_bigger_than_countbelow () =
  (* The whole point of the paper's design: the per-identity pure-MPC
     circuit dwarfs the CountBelow circuit. *)
  let pure = Purempc.stats_for ~m:9 ~identities:1 ~epsilon:0.5 ~gamma:0.9 in
  let thresholds = [| 5 |] in
  let compiled =
    Eppi_sfdl.Compile.compile_source (Eppi_sfdl.Programs.count_below ~c:3 ~q:11 ~thresholds)
  in
  let reduced = Eppi_circuit.Circuit.stats compiled.circuit in
  check_bool
    (Printf.sprintf "pure %d >> reduced %d" pure.and_gates reduced.and_gates)
    true
    (pure.and_gates > 5 * reduced.and_gates)

let test_purempc_time_scales_superlinearly () =
  let t3 = Purempc.estimate_time ~m:3 ~identities:1 ~epsilon:0.5 ~gamma:0.9 () in
  let t9 = Purempc.estimate_time ~m:9 ~identities:1 ~epsilon:0.5 ~gamma:0.9 () in
  check_bool "superlinear growth" true (t9 > 3.0 *. t3)

let test_purempc_identity_scaling () =
  let t1 = Purempc.estimate_time ~m:3 ~identities:1 ~epsilon:0.5 ~gamma:0.9 () in
  let t100 = Purempc.estimate_time ~m:3 ~identities:100 ~epsilon:0.5 ~gamma:0.9 () in
  check_bool "identities scale cost" true (t100 > 50.0 *. t1)

(* ---------- End-to-end distributed construction ---------- *)

let make_matrix ~m ~freqs =
  let membership = Bitmatrix.create ~rows:(Array.length freqs) ~cols:m in
  let rng = Rng.create 999 in
  Array.iteri
    (fun j f ->
      let chosen = Rng.sample_without_replacement rng ~k:f ~n:m in
      Array.iter (fun p -> Bitmatrix.set membership ~row:j ~col:p true) chosen)
    freqs;
  membership

let test_construct_agrees_with_centralized () =
  let m = 30 in
  let freqs = [| 2; 28; 9; 15; 1 |] in
  let epsilons = [| 0.5; 0.6; 0.3; 0.8; 0.9 |] in
  let membership = make_matrix ~m ~freqs in
  let policy = Eppi.Policy.Chernoff 0.9 in
  let secure = Construct.run (Rng.create 10) ~membership ~epsilons ~policy in
  let reference =
    Eppi.Construct.plan_betas ~policy ~epsilons ~frequencies:freqs ~m (Rng.create 11)
  in
  Alcotest.(check (array bool)) "same common classification" reference.is_common secure.common;
  (* Non-common, non-mixed betas must agree exactly (same released
     frequency, same float computation). *)
  Array.iteri
    (fun j common ->
      if (not common) && (not secure.mixed.(j)) && not reference.is_mixed.(j) then
        Alcotest.(check (float 1e-12))
          (Printf.sprintf "beta %d" j)
          reference.final.(j) secure.betas.(j))
    secure.common

let test_construct_recall () =
  let m = 25 in
  let membership = make_matrix ~m ~freqs:[| 3; 12; 24 |] in
  let r =
    Construct.run (Rng.create 12) ~membership ~epsilons:[| 0.5; 0.5; 0.5 |]
      ~policy:Eppi.Policy.Basic
  in
  for j = 0 to 2 do
    check_bool (Printf.sprintf "recall %d" j) true
      (Eppi.Index.recall_ok ~membership r.index ~owner:j)
  done

let test_construct_metrics_populated () =
  let m = 20 in
  let membership = make_matrix ~m ~freqs:[| 5; 10 |] in
  let r =
    Construct.run (Rng.create 13) ~membership ~epsilons:[| 0.5; 0.5 |]
      ~policy:(Eppi.Policy.Chernoff 0.9)
  in
  let mt = r.metrics in
  check_bool "secsumshare time" true (mt.secsumshare_time > 0.0);
  check_bool "mpc time" true (mt.mpc_time > 0.0);
  check_bool "total covers parts" true
    (mt.total_time >= mt.secsumshare_time +. mt.mpc_time);
  check_bool "messages counted" true (mt.messages > 0);
  check_bool "bytes counted" true (mt.bytes > 0);
  check_bool "circuit stats" true (mt.circuit_stats.size > 0)

let test_construct_common_handling_end_to_end () =
  (* One ubiquitous identity: it must be flagged common and published
     everywhere; lambda must be positive so decoys are possible. *)
  let m = 20 in
  let membership = make_matrix ~m ~freqs:(Array.append [| 20 |] (Array.make 30 1)) in
  let epsilons = Array.make 31 0.5 in
  let r = Construct.run (Rng.create 14) ~membership ~epsilons ~policy:Eppi.Policy.Basic in
  check_bool "flagged common" true r.common.(0);
  check_int "published everywhere" m (Eppi.Index.query_count r.index ~owner:0);
  check_bool "lambda positive" true (r.lambda > 0.0)

let test_construct_epsilon_grid_consistency () =
  (* The protocol's integer thresholds must classify exactly like the
     centralized path across an epsilon grid. *)
  let m = 40 in
  List.iter
    (fun epsilon ->
      List.iter
        (fun f ->
          let membership = make_matrix ~m ~freqs:[| f |] in
          let secure =
            Construct.run (Rng.create 15) ~membership ~epsilons:[| epsilon |]
              ~policy:Eppi.Policy.Basic
          in
          let expected =
            Eppi.Policy.is_common Eppi.Policy.Basic
              ~sigma:(float_of_int f /. float_of_int m)
              ~epsilon ~m
          in
          check_bool (Printf.sprintf "eps %.2f freq %d" epsilon f) expected secure.common.(0))
        [ 1; 10; 20; 30; 39 ])
    [ 0.2; 0.5; 0.8 ]

let test_beta_phase_estimate_monotone () =
  let t_small = Construct.beta_phase_time_estimate ~m:10 ~identities:5 ~c:3 () in
  let t_many_ids = Construct.beta_phase_time_estimate ~m:10 ~identities:50 ~c:3 () in
  check_bool "identities increase cost" true (t_many_ids > t_small);
  check_bool "positive" true (t_small > 0.0)

(* ---------- Fault tolerance: reliable transport + degradation ---------- *)

let drop_plan ?(seed = 21) drop =
  { Simnet.no_faults with fault_seed = seed; default_link = { Simnet.perfect_link with drop } }

let countbelow_fixture seed =
  (* A small count_below instance shared by the mpcnet reliability tests. *)
  let q = 13 in
  let compiled =
    Eppi_sfdl.Compile.compile_source
      (Eppi_sfdl.Programs.count_below ~c:3 ~q ~thresholds:[| 5; 9 |])
  in
  let rng = Rng.create seed in
  let qm = Modarith.modulus q in
  let shares =
    Array.map (fun v -> Eppi_secretshare.Additive.share rng ~q:qm ~c:3 v) [| 7; 3 |]
  in
  let inputs =
    Eppi_sfdl.Compile.encode_inputs compiled
      (List.init 3 (fun k ->
           (Printf.sprintf "s%d" k, Eppi_sfdl.Compile.Dints (Array.map (fun s -> s.(k)) shares))))
  in
  (compiled, inputs, rng)

let test_mpcnet_reliable_matches_lossless () =
  (* 10% loss on every link: the run must complete with outputs bit-identical
     to the lossless engine, paid for in retransmissions. *)
  let compiled, inputs, rng = countbelow_fixture 72 in
  let lossless = Mpcnet.execute rng compiled.circuit ~inputs in
  let _, inputs2, rng2 = countbelow_fixture 72 in
  let r = Mpcnet.execute_reliable ~plan:(drop_plan 0.1) rng2 compiled.circuit ~inputs:inputs2 in
  (match r.outcome with
  | Mpcnet.Outputs outs ->
      Alcotest.(check (array bool)) "bit-identical outputs" lossless.outputs outs
  | Mpcnet.Parties_failed dead ->
      Alcotest.failf "stalled, blamed %s" (String.concat "," (List.map string_of_int dead)));
  check_bool "paid in retransmissions" true (r.retransmissions > 0);
  check_bool "some rounds retried" true (r.retried_rounds > 0)

let test_mpcnet_reliable_crash_detected () =
  let compiled, inputs, rng = countbelow_fixture 72 in
  let plan = { Simnet.no_faults with crashes = [ (0.001, 1) ] } in
  let r = Mpcnet.execute_reliable ~plan rng compiled.circuit ~inputs in
  match r.outcome with
  | Mpcnet.Outputs _ -> Alcotest.fail "completed despite a crashed party"
  | Mpcnet.Parties_failed dead -> Alcotest.(check (list int)) "blames exactly party 1" [ 1 ] dead

let test_mpcnet_reliable_duplicates_suppressed () =
  let compiled, inputs, rng = countbelow_fixture 72 in
  let lossless = Mpcnet.execute rng compiled.circuit ~inputs in
  let _, inputs2, rng2 = countbelow_fixture 72 in
  let plan =
    { Simnet.no_faults with
      fault_seed = 5;
      default_link = { Simnet.perfect_link with duplicate = 0.5; reorder = 0.3 };
    }
  in
  let r = Mpcnet.execute_reliable ~plan rng2 compiled.circuit ~inputs:inputs2 in
  (match r.outcome with
  | Mpcnet.Outputs outs -> Alcotest.(check (array bool)) "unperturbed" lossless.outputs outs
  | Mpcnet.Parties_failed _ -> Alcotest.fail "duplication must not stall the run");
  check_bool "duplicates suppressed" true (r.duplicates > 0)

let test_mpcnet_reliable_deterministic () =
  (* Same fault-plan seed => identical traffic, retransmission schedule and
     outputs, event for event. *)
  let go () =
    let compiled, inputs, rng = countbelow_fixture 72 in
    Mpcnet.execute_reliable ~plan:(drop_plan ~seed:9 0.15) rng compiled.circuit ~inputs
  in
  let a = go () and b = go () in
  check_int "same retransmissions" a.retransmissions b.retransmissions;
  check_int "same duplicates" a.duplicates b.duplicates;
  check_int "same messages" a.net.messages_sent b.net.messages_sent;
  check_int "same drops" a.net.messages_dropped b.net.messages_dropped;
  Alcotest.(check (float 0.0)) "same protocol time" a.protocol_time b.protocol_time;
  match (a.outcome, b.outcome) with
  | Mpcnet.Outputs oa, Mpcnet.Outputs ob -> Alcotest.(check (array bool)) "same outputs" oa ob
  | _ -> Alcotest.fail "expected both runs to complete"

let test_secsumshare_ft_complete_under_loss () =
  let rng = Rng.create 31 in
  let m = 10 and n = 6 in
  let inputs = random_inputs rng ~m ~n ~max:2 in
  let r = Secsumshare.run_ft ~plan:(drop_plan 0.1) rng ~inputs ~c:3 ~q:q97 in
  match r.shares with
  | None -> Alcotest.fail "10% loss must be survivable"
  | Some shares ->
      let sums = Secsumshare.reconstruct ~q:q97 shares in
      for j = 0 to n - 1 do
        let expected = Array.fold_left (fun acc row -> acc + row.(j)) 0 inputs in
        check_int (Printf.sprintf "identity %d" j) expected sums.(j)
      done;
      check_bool "retransmitted" true (r.report.retransmissions > 0);
      Alcotest.(check (list int)) "no suspects" [] r.report.suspects

let test_secsumshare_ft_crash_blames_only_the_dead () =
  (* Provider 4 dead from the start: its ring successors (5 and 6 at c = 3)
     stall for lack of its shares.  The detector must blame exactly 4 and
     must NOT suspect the stalled victims. *)
  let rng = Rng.create 32 in
  let m = 8 and n = 4 in
  let inputs = random_inputs rng ~m ~n ~max:2 in
  let plan = { Simnet.no_faults with crashes = [ (0.0, 4) ] } in
  let r = Secsumshare.run_ft ~plan rng ~inputs ~c:3 ~q:q97 in
  check_bool "incomplete" true (r.shares = None);
  Alcotest.(check (list int)) "blames exactly provider 4" [ 4 ] r.report.suspects;
  Alcotest.(check (list int)) "successors stalled, not suspected" [ 5; 6 ] r.report.stalled

let ft_epsilons = [| 0.5; 0.6; 0.3; 0.8; 0.9 |]
let ft_freqs = [| 2; 28; 9; 15; 1 |]

let test_construct_ft_clean_is_complete () =
  let m = 30 in
  let membership = make_matrix ~m ~freqs:ft_freqs in
  let policy = Eppi.Policy.Chernoff 0.9 in
  match Construct.run_ft (Rng.create 40) ~membership ~epsilons:ft_epsilons ~policy with
  | Construct.Degraded _ -> Alcotest.fail "no faults, no degradation"
  | Construct.Failed (reason, _) -> Alcotest.failf "failed: %s" reason
  | Construct.Complete (r, rep) ->
      check_int "one attempt" 1 rep.attempts;
      Alcotest.(check (list int)) "nobody excluded" [] rep.excluded;
      check_int "all providers" m (Eppi.Index.providers r.index);
      (* Classification agrees with the centralized reference. *)
      let reference =
        Eppi.Construct.plan_betas ~policy ~epsilons:ft_epsilons ~frequencies:ft_freqs ~m
          (Rng.create 41)
      in
      Alcotest.(check (array bool)) "same common classification" reference.is_common r.common

let test_construct_ft_loss_bit_identical () =
  (* The acceptance invariant: 10% loss in both phases, same construction
     seed => the published index is bit-identical to the fault-free run. *)
  let m = 12 in
  let membership = make_matrix ~m ~freqs:[| 2; 10; 5 |] in
  let epsilons = [| 0.5; 0.4; 0.7 |] in
  let policy = Eppi.Policy.Basic in
  let clean = Construct.run_ft (Rng.create 42) ~membership ~epsilons ~policy in
  let lossy =
    Construct.run_ft ~sss_plan:(drop_plan 0.1) ~mpc_plan:(drop_plan ~seed:23 0.1)
      (Rng.create 42) ~membership ~epsilons ~policy
  in
  match (clean, lossy) with
  | Construct.Complete (a, _), Construct.Complete (b, rep) ->
      check_bool "loss was injected and survived"
        true (rep.sss_retransmissions > 0 || rep.mpc_retransmissions > 0);
      Alcotest.(check (array (float 0.0))) "same betas" a.betas b.betas;
      check_bool "bit-identical index" true
        (Bitmatrix.equal (Eppi.Index.matrix a.index) (Eppi.Index.matrix b.index))
  | _ -> Alcotest.fail "both runs must complete"

let test_construct_ft_crash_degrades () =
  (* Provider 7 crashes before sending anything: the construction must
     return Degraded, exclude exactly 7, and republish over the 9
     survivors with thresholds recomputed for m' = 9. *)
  let m = 10 in
  let membership = make_matrix ~m ~freqs:[| 3; 9; 6 |] in
  let epsilons = [| 0.5; 0.4; 0.7 |] in
  let policy = Eppi.Policy.Basic in
  let sss_plan = { Simnet.no_faults with crashes = [ (0.0, 7) ] } in
  match Construct.run_ft ~sss_plan (Rng.create 43) ~membership ~epsilons ~policy with
  | Construct.Complete _ -> Alcotest.fail "a crash must degrade the outcome"
  | Construct.Failed (reason, _) -> Alcotest.failf "failed: %s" reason
  | Construct.Degraded (r, rep) ->
      Alcotest.(check (list int)) "excludes exactly provider 7" [ 7 ] rep.excluded;
      check_int "two attempts" 2 rep.attempts;
      check_int "index spans survivors" (m - 1) (Eppi.Index.providers r.index);
      (* The survivor-set classification matches the centralized reference
         over m' = 9 with the survivors' frequencies. *)
      let m' = m - 1 in
      let freqs' =
        Array.init 3 (fun j ->
            Bitmatrix.row_count membership j
            - if Bitmatrix.get membership ~row:j ~col:7 then 1 else 0)
      in
      Array.iteri
        (fun j expected_f ->
          let expected =
            Eppi.Policy.is_common policy
              ~sigma:(float_of_int expected_f /. float_of_int m')
              ~epsilon:epsilons.(j) ~m:m'
          in
          check_bool (Printf.sprintf "common %d over survivors" j) expected r.common.(j))
        freqs';
      (* Recall against the survivor submatrix: every surviving true
         positive is published. *)
      let sub = Bitmatrix.create ~rows:3 ~cols:m' in
      List.iteri
        (fun k p ->
          for j = 0 to 2 do
            if Bitmatrix.get membership ~row:j ~col:p then Bitmatrix.set sub ~row:j ~col:k true
          done)
        rep.survivors;
      for j = 0 to 2 do
        check_bool (Printf.sprintf "recall %d" j) true
          (Eppi.Index.recall_ok ~membership:sub r.index ~owner:j)
      done

let test_construct_ft_mpc_crash_degrades () =
  (* A coordinator dies mid-GMW: the failure detector catches it, the
     retry excludes it, and the remaining providers finish. *)
  let m = 10 in
  let membership = make_matrix ~m ~freqs:[| 3; 9 |] in
  let epsilons = [| 0.5; 0.4 |] in
  let mpc_plan = { Simnet.no_faults with crashes = [ (0.002, 1) ] } in
  match
    Construct.run_ft ~mpc_plan (Rng.create 44) ~membership ~epsilons ~policy:Eppi.Policy.Basic
  with
  | Construct.Complete _ -> Alcotest.fail "a coordinator crash must degrade the outcome"
  | Construct.Failed (reason, _) -> Alcotest.failf "failed: %s" reason
  | Construct.Degraded (r, rep) ->
      Alcotest.(check (list int)) "excludes the dead coordinator" [ 1 ] rep.excluded;
      check_int "index spans survivors" (m - 1) (Eppi.Index.providers r.index)

let test_construct_ft_too_few_survivors_fails () =
  let m = 4 in
  let membership = make_matrix ~m ~freqs:[| 2; 3 |] in
  let epsilons = [| 0.5; 0.5 |] in
  let sss_plan = { Simnet.no_faults with crashes = [ (0.0, 0); (0.0, 2) ] } in
  match
    Construct.run_ft ~sss_plan (Rng.create 45) ~membership ~epsilons ~policy:Eppi.Policy.Basic
  with
  | Construct.Failed (_, rep) ->
      check_bool "both dead providers excluded" true
        (List.mem 0 rep.excluded && List.mem 2 rep.excluded)
  | _ -> Alcotest.fail "2 of 4 providers dead cannot sustain c = 3"

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"secure and centralized paths classify identically" ~count:40
      (triple (int_range 1 1000) (int_range 5 25) (int_range 1 8))
      (fun (seed, m, n) ->
        let rng = Rng.create seed in
        let membership = Bitmatrix.create ~rows:n ~cols:m in
        for j = 0 to n - 1 do
          let f = 1 + Rng.int rng m in
          let chosen = Rng.sample_without_replacement rng ~k:f ~n:m in
          Array.iter (fun p -> Bitmatrix.set membership ~row:j ~col:p true) chosen
        done;
        let epsilons = Array.init n (fun _ -> Rng.float rng 1.0) in
        let policy = Eppi.Policy.Basic in
        let secure =
          Construct.run (Rng.create (seed + 1)) ~membership ~epsilons ~policy
        in
        let expected =
          Array.init n (fun j ->
              Eppi.Policy.is_common policy
                ~sigma:(float_of_int (Bitmatrix.row_count membership j) /. float_of_int m)
                ~epsilon:epsilons.(j) ~m)
        in
        secure.common = expected);
    Test.make ~name:"secure path preserves recall" ~count:30
      (pair (int_range 1 1000) (int_range 5 20))
      (fun (seed, m) ->
        let rng = Rng.create seed in
        let n = 5 in
        let membership = Bitmatrix.create ~rows:n ~cols:m in
        for j = 0 to n - 1 do
          let f = 1 + Rng.int rng m in
          let chosen = Rng.sample_without_replacement rng ~k:f ~n:m in
          Array.iter (fun p -> Bitmatrix.set membership ~row:j ~col:p true) chosen
        done;
        let epsilons = Array.make n 0.5 in
        let r =
          Construct.run (Rng.create (seed * 3)) ~membership ~epsilons
            ~policy:(Eppi.Policy.Chernoff 0.9)
        in
        List.for_all
          (fun j -> Eppi.Index.recall_ok ~membership r.index ~owner:j)
          (List.init n Fun.id));
  ]

let () =
  Alcotest.run "protocol"
    [
      ( "secsumshare",
        [
          Alcotest.test_case "sums" `Quick test_secsumshare_sums;
          Alcotest.test_case "figure 3 example" `Quick test_secsumshare_figure3_scale;
          Alcotest.test_case "share ranges" `Quick test_secsumshare_share_ranges;
          Alcotest.test_case "message count" `Quick test_secsumshare_message_count;
          Alcotest.test_case "constant rounds scaling" `Quick
            test_secsumshare_constant_rounds_scaling;
          Alcotest.test_case "coordinator shares look random" `Quick
            test_secsumshare_coordinator_shares_look_random;
          Alcotest.test_case "lossy network fails fast" `Quick
            test_secsumshare_lossy_fails_fast;
          Alcotest.test_case "reliable over lossy network" `Quick
            test_secsumshare_reliable_on_lossy_network;
          Alcotest.test_case "no loss, no retransmit" `Quick
            test_secsumshare_reliable_no_loss_no_retransmit;
          Alcotest.test_case "reliable across seeds" `Quick
            test_secsumshare_reliable_across_seeds;
          Alcotest.test_case "dead provider fails fast" `Quick
            test_secsumshare_crashed_provider_fails_fast;
          Alcotest.test_case "validation" `Quick test_secsumshare_validation;
        ] );
      ( "countbelow",
        [
          Alcotest.test_case "integer threshold exact" `Quick test_integer_threshold_exact;
          Alcotest.test_case "threshold at eps 0" `Quick test_integer_threshold_eps_zero;
          Alcotest.test_case "classification" `Quick test_countbelow_classification;
          Alcotest.test_case "simnet transport" `Quick test_countbelow_simnet_transport;
        ] );
      ( "mpcnet",
        [
          Alcotest.test_case "matches in-process engine" `Quick test_mpcnet_matches_inprocess;
          Alcotest.test_case "count_below over the network" `Quick test_mpcnet_countbelow;
          Alcotest.test_case "round structure" `Quick test_mpcnet_round_structure;
          Alcotest.test_case "time tracks cost model" `Quick test_mpcnet_time_tracks_cost_model;
        ] );
      ( "purempc",
        [
          Alcotest.test_case "matches float reference" `Quick test_purempc_matches_reference;
          Alcotest.test_case "sigma zero" `Quick test_purempc_sigma_zero;
          Alcotest.test_case "circuit grows with m" `Quick test_purempc_circuit_grows_with_m;
          Alcotest.test_case "dwarfs countbelow" `Quick test_purempc_much_bigger_than_countbelow;
          Alcotest.test_case "superlinear time" `Quick test_purempc_time_scales_superlinearly;
          Alcotest.test_case "identity scaling" `Quick test_purempc_identity_scaling;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
      ( "construct",
        [
          Alcotest.test_case "agrees with centralized" `Quick
            test_construct_agrees_with_centralized;
          Alcotest.test_case "recall" `Quick test_construct_recall;
          Alcotest.test_case "metrics populated" `Quick test_construct_metrics_populated;
          Alcotest.test_case "common handling end to end" `Quick
            test_construct_common_handling_end_to_end;
          Alcotest.test_case "epsilon grid consistency" `Quick
            test_construct_epsilon_grid_consistency;
          Alcotest.test_case "phase estimate monotone" `Quick test_beta_phase_estimate_monotone;
        ] );
      ( "fault tolerance",
        [
          Alcotest.test_case "mpcnet reliable matches lossless at 10% drop" `Quick
            test_mpcnet_reliable_matches_lossless;
          Alcotest.test_case "mpcnet detects a crashed party" `Quick
            test_mpcnet_reliable_crash_detected;
          Alcotest.test_case "mpcnet suppresses duplicates" `Quick
            test_mpcnet_reliable_duplicates_suppressed;
          Alcotest.test_case "mpcnet retransmit schedule deterministic" `Quick
            test_mpcnet_reliable_deterministic;
          Alcotest.test_case "secsumshare ft survives loss" `Quick
            test_secsumshare_ft_complete_under_loss;
          Alcotest.test_case "secsumshare ft blames only the dead" `Quick
            test_secsumshare_ft_crash_blames_only_the_dead;
          Alcotest.test_case "construct ft clean run is Complete" `Quick
            test_construct_ft_clean_is_complete;
          Alcotest.test_case "construct ft loss is bit-identical" `Quick
            test_construct_ft_loss_bit_identical;
          Alcotest.test_case "construct ft crash degrades" `Quick
            test_construct_ft_crash_degrades;
          Alcotest.test_case "construct ft coordinator crash degrades" `Quick
            test_construct_ft_mpc_crash_degrades;
          Alcotest.test_case "construct ft too few survivors fails" `Quick
            test_construct_ft_too_few_survivors_fails;
        ] );
    ]
