(* Tests for the network front-end (lib/net): wire-codec round-trips for
   every frame type, typed decode errors on garbage, split-read
   reassembly, the address parser, and the live daemon — a select loop in
   a spawned domain answering pipelined queries concurrently with a
   hot-swap republish. *)

open Eppi_prelude
open Eppi_net
module Serve = Eppi_serve.Serve
module Workload = Eppi_serve.Workload
module Probe = Eppi_fuzzy.Probe
module Resolver = Eppi_fuzzy.Resolver
module Roster = Eppi_fuzzy.Roster
module Bloom = Eppi_linkage.Bloom
module Demographic = Eppi_linkage.Demographic

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  if m = 0 then true else go 0

(* Same deterministic index shape as test_serve: row j holds 1 + (j mod 5)
   providers at deterministic positions. *)
let test_index ~n ~m =
  let matrix = Bitmatrix.create ~rows:n ~cols:m in
  for j = 0 to n - 1 do
    for k = 0 to j mod 5 do
      Bitmatrix.set matrix ~row:j ~col:((j + (k * 7)) mod m) true
    done
  done;
  Eppi.Index.of_matrix matrix

(* A second index over the same dimensions with different postings, so a
   hot swap visibly changes the answers. *)
let test_index_v2 ~n ~m =
  let matrix = Bitmatrix.create ~rows:n ~cols:m in
  for j = 0 to n - 1 do
    for k = 0 to (j + 2) mod 4 do
      Bitmatrix.set matrix ~row:j ~col:((j + 3 + (k * 5)) mod m) true
    done
  done;
  Eppi.Index.of_matrix matrix

(* ---------- Wire codec ---------- *)

(* Fuzzy-probe samples built with the real encoder, so the frames carry
   realistic sparse filters; the partial probe has empty fields and no
   blocking keys. *)
let sample_params = (Resolver.default_config ~seed:0x5EED).Resolver.params

let sample_probe =
  Probe.of_demographic sample_params
    { Demographic.first = "maria"; last = "garcia"; dob = (1961, 4, 18); zip = "60614"; gender = Female }

let partial_probe =
  Probe.of_demographic sample_params
    { Demographic.first = "jo"; last = ""; dob = (0, 0, 0); zip = ""; gender = Other }

let sample_frames =
  let open Wire in
  List.map
    (fun r -> Request r)
    [
      Query { owner = 0 };
      Query { owner = 1 };
      Query { owner = -5 };
      Query { owner = max_int };
      Query { owner = min_int };
      Batch [||];
      Batch [| 0; 1; 300; 70_000; max_int |];
      Audit { provider = 12 };
      Stats;
      Republish { index_csv = "3,4\n0,1,0,1\n" };
      Republish { index_csv = "" };
      Republish_binary { data = "" };
      Republish_binary { data = "\x01\x02\x03\xFF\x00binary payload" };
      Query_fuzzy { probe = sample_probe; k = 1 };
      Query_fuzzy { probe = partial_probe; k = 10_000 };
      Ping;
      Shutdown;
      Telemetry;
      Cluster_status;
      (* Trace envelopes: ids at both ends of the varint range, wrapping
         payload-free and payload-heavy inner requests alike. *)
      Traced { trace_id = 0; request = Query { owner = 42 } };
      Traced { trace_id = 0x7FFF_FFFF; request = Batch [| 1; 2; 300 |] };
      Traced { trace_id = 1; request = Query_fuzzy { probe = sample_probe; k = 3 } };
      Traced { trace_id = 9; request = Telemetry };
      Traced { trace_id = 2; request = Cluster_status };
    ]
  @ List.map
      (fun r -> Response r)
      [
        Reply { generation = 1; reply = Serve.Providers [] };
        Reply { generation = 7; reply = Serve.Providers [ 0; 3; 9; 1024 ] };
        Reply { generation = 2; reply = Serve.Unknown_owner };
        Reply { generation = 3; reply = Serve.Shed_rate_limit };
        Reply { generation = 4; reply = Serve.Shed_queue_full };
        Batch_reply { generation = 1; replies = [||] };
        Batch_reply
          {
            generation = 9;
            replies =
              [| Serve.Providers [ 1 ]; Serve.Unknown_owner; Serve.Shed_queue_full; Serve.Providers [] |];
          };
        Audit_reply { generation = 1; owners = None };
        Audit_reply { generation = 2; owners = Some [] };
        Audit_reply { generation = 3; owners = Some [ 0; 5; 6 ] };
        Stats_json "{\"queries\": 0}";
        Stats_json "";
        Republished { generation = 2 };
        (* Candidate scores are quantized to 1e-4 by the resolver, so the
           basis-point wire encoding must round-trip them bit-exactly. *)
        Fuzzy_reply
          {
            generation = 9;
            result =
              Serve.Candidates
                [
                  { Serve.owner = 0; score = 1.0; providers = [ 0; 3; 9 ] };
                  { Serve.owner = 31; score = 9148. /. 10000.; providers = [] };
                  { Serve.owner = 7; score = 0.0; providers = [ 2 ] };
                ];
          };
        Fuzzy_reply { generation = 4; result = Serve.Candidates [] };
        Fuzzy_reply { generation = 1; result = Serve.No_resolver };
        Fuzzy_reply { generation = 2; result = Serve.Probe_mismatch };
        Fuzzy_reply { generation = 3; result = Serve.Fuzzy_shed };
        Telemetry_json "{\"requests\": 12, \"conservation\": {\"exact\": true}}";
        Telemetry_json "";
        Cluster_status_reply { generation = 1; swaps = 0; peers = [] };
        Cluster_status_reply
          { generation = 42; swaps = 17; peers = [ "/tmp/a.sock"; "host:9001"; ":9002" ] };
        Cluster_status_reply { generation = 0; swaps = 0; peers = [ "" ] };
        Pong;
        Shutting_down;
        Server_error "republish: bad csv";
      ]

(* Feed [s] to a fresh decoder in [chunk]-byte pieces, draining frames
   after every feed. *)
let decode_chunked ~chunk s =
  let d = Wire.Decoder.create () in
  let frames = ref [] in
  let failed = ref None in
  let pos = ref 0 in
  while !failed = None && !pos < String.length s do
    let len = min chunk (String.length s - !pos) in
    Wire.Decoder.feed_string d (String.sub s !pos len);
    let continue = ref true in
    while !continue do
      match Wire.Decoder.next d with
      | Ok (Some frame) -> frames := frame :: !frames
      | Ok None -> continue := false
      | Error e ->
          failed := Some e;
          continue := false
    done;
    pos := !pos + len
  done;
  match !failed with
  | Some e -> Error e
  | None -> Ok (List.rev !frames, Wire.Decoder.buffered d)

let test_codec_roundtrip () =
  List.iteri
    (fun i frame ->
      check_bool
        (Printf.sprintf "frame %d round-trips" i)
        true
        (decode_chunked ~chunk:4096 (Wire.frame_to_string frame) = Ok ([ frame ], 0)))
    sample_frames

let test_codec_split_reads () =
  let stream = String.concat "" (List.map Wire.frame_to_string sample_frames) in
  List.iter
    (fun chunk ->
      check_bool
        (Printf.sprintf "chunk size %d reassembles" chunk)
        true
        (decode_chunked ~chunk stream = Ok (sample_frames, 0)))
    [ 1; 2; 3; 7; 64; String.length stream ]

let test_codec_partial_frame () =
  let d = Wire.Decoder.create () in
  check_bool "empty decoder wants bytes" true (Wire.Decoder.next d = Ok None);
  let s = Wire.frame_to_string (Wire.Request (Wire.Query { owner = 12345 })) in
  Wire.Decoder.feed_string d (String.sub s 0 (String.length s - 1));
  check_bool "partial frame wants bytes" true (Wire.Decoder.next d = Ok None);
  Wire.Decoder.feed_string d (String.sub s (String.length s - 1) 1);
  check_bool "completed frame decodes" true
    (Wire.Decoder.next d = Ok (Some (Wire.Request (Wire.Query { owner = 12345 }))));
  check_int "nothing buffered" 0 (Wire.Decoder.buffered d)

(* Hand-rolled frame header: magic, version, tag, 32-bit BE length. *)
let header ~tag ~len =
  let b = Buffer.create 7 in
  Buffer.add_char b '\xE5';
  Buffer.add_char b '\x01';
  Buffer.add_char b (Char.chr tag);
  List.iter (fun sh -> Buffer.add_char b (Char.chr ((len lsr sh) land 0xFF))) [ 24; 16; 8; 0 ];
  Buffer.contents b

let expect_error name ?(max_payload = 64) s matches =
  let d = Wire.Decoder.create ~max_payload () in
  Wire.Decoder.feed_string d s;
  match Wire.Decoder.next d with
  | Error e -> check_bool name true (matches e)
  | Ok _ -> Alcotest.fail (name ^ ": expected a decode error")

let test_codec_errors () =
  expect_error "bad magic" "\x00garbage" (function Wire.Bad_magic 0 -> true | _ -> false);
  expect_error "bad version" "\xE5\x07" (function Wire.Bad_version 7 -> true | _ -> false);
  expect_error "unknown tag" "\xE5\x01\x7F" (function
    | Wire.Unknown_tag 0x7F -> true
    | _ -> false);
  expect_error "response-range hole is unknown" "\xE5\x01\x1F" (function
    | Wire.Unknown_tag 0x1F -> true
    | _ -> false);
  expect_error "oversized payload"
    (header ~tag:0x01 ~len:65)
    (function Wire.Oversized { length = 65; limit = 64 } -> true | _ -> false);
  expect_error "truncated varint"
    (header ~tag:0x01 ~len:1 ^ "\x80")
    (function Wire.Corrupt _ -> true | _ -> false);
  expect_error "trailing bytes"
    (header ~tag:0x01 ~len:2 ^ "\x00\x00")
    (function Wire.Corrupt msg -> contains msg "trailing" | _ -> false);
  expect_error "negative batch count"
    (header ~tag:0x02 ~len:1 ^ "\x03")
    (function Wire.Corrupt msg -> contains msg "count" | _ -> false);
  expect_error "batch count exceeding payload"
    (header ~tag:0x02 ~len:1 ^ "\x50")
    (function Wire.Corrupt msg -> contains msg "count" | _ -> false);
  expect_error "unknown reply kind"
    (header ~tag:0x11 ~len:2 ^ "\x02\x09")
    (function Wire.Corrupt msg -> contains msg "reply kind" | _ -> false);
  (* The cluster-status tags sit at the top of each range; the next tag
     up must still be unknown. *)
  expect_error "request-range hole is unknown" "\xE5\x01\x0D" (function
    | Wire.Unknown_tag 0x0D -> true
    | _ -> false);
  (* Traced (0x0A) envelopes: zigzag varint trace id, one inner tag byte,
     then the inner request's payload — each constraint has a hostile
     probe. *)
  expect_error "traced frame truncated before inner tag"
    (header ~tag:0x0A ~len:1 ^ "\x02")
    (function Wire.Corrupt msg -> contains msg "truncated traced" | _ -> false);
  expect_error "negative trace id"
    (header ~tag:0x0A ~len:2 ^ "\x01\x01")
    (function Wire.Corrupt msg -> contains msg "trace id" | _ -> false);
  expect_error "nested traced frame"
    (header ~tag:0x0A ~len:2 ^ "\x02\x0A")
    (function Wire.Corrupt msg -> contains msg "nested" | _ -> false);
  expect_error "traced frame wrapping a response tag"
    (header ~tag:0x0A ~len:2 ^ "\x02\x11")
    (function Wire.Corrupt msg -> contains msg "wraps tag" | _ -> false);
  expect_error "traced frame wrapping tag zero"
    (header ~tag:0x0A ~len:2 ^ "\x02\x00")
    (function Wire.Corrupt msg -> contains msg "wraps tag" | _ -> false);
  expect_error "traced frame with truncated inner payload"
    (header ~tag:0x0A ~len:2 ^ "\x02\x01")
    (function Wire.Corrupt _ -> true | _ -> false);
  (* The inner frame runs the full strict parse: a Ping that carries a
     payload byte is rejected inside the envelope too. *)
  expect_error "traced frame with trailing inner bytes"
    (header ~tag:0x0A ~len:3 ^ "\x02\x06\x00")
    (function Wire.Corrupt msg -> contains msg "trailing" | _ -> false);
  expect_error "telemetry request with a payload"
    (header ~tag:0x0B ~len:1 ^ "\x00")
    (function Wire.Corrupt msg -> contains msg "trailing" | _ -> false);
  (* Fuzzy request (0x09) payloads are zigzag varints: k, blocking-key
     count + keys, bits, hashes, then four filters as ascending set-bit
     index lists. *)
  expect_error "fuzzy k zero"
    (header ~tag:0x09 ~len:1 ^ "\x00")
    (function Wire.Corrupt msg -> contains msg "fuzzy k" | _ -> false);
  expect_error "truncated probe"
    (header ~tag:0x09 ~len:1 ^ "\x02")
    (function Wire.Corrupt msg -> contains msg "truncated" | _ -> false);
  expect_error "probe key count over limit"
    (header ~tag:0x09 ~len:3 ^ "\x02\x82\x01")
    (function Wire.Corrupt msg -> contains msg "blocking key" | _ -> false);
  expect_error "probe bits zero"
    (header ~tag:0x09 ~len:3 ^ "\x02\x00\x00")
    (function Wire.Corrupt msg -> contains msg "filter bits" | _ -> false);
  expect_error "probe hashes zero"
    (header ~tag:0x09 ~len:4 ^ "\x02\x00\x02\x00")
    (function Wire.Corrupt msg -> contains msg "filter hashes" | _ -> false);
  (* bits = 8, filter declares indexes 3 then 1: descending order. *)
  expect_error "filter index out of order"
    (header ~tag:0x09 ~len:7 ^ "\x02\x00\x10\x02\x04\x06\x02")
    (function Wire.Corrupt msg -> contains msg "out of order" | _ -> false);
  (* bits = 8, filter declares index 8: one past the geometry. *)
  expect_error "filter index out of range"
    (header ~tag:0x09 ~len:6 ^ "\x02\x00\x10\x02\x02\x10")
    (function Wire.Corrupt msg -> contains msg "out of order or range" | _ -> false);
  expect_error "truncated fuzzy reply"
    (header ~tag:0x19 ~len:1 ^ "\x02")
    (function Wire.Corrupt msg -> contains msg "truncated fuzzy reply" | _ -> false);
  expect_error "unknown fuzzy reply kind"
    (header ~tag:0x19 ~len:2 ^ "\x02\x09")
    (function Wire.Corrupt msg -> contains msg "fuzzy reply kind" | _ -> false);
  expect_error "candidate count exceeding payload"
    (header ~tag:0x19 ~len:3 ^ "\x02\x00\x7E")
    (function Wire.Corrupt msg -> contains msg "candidate count" | _ -> false);
  (* A candidate claiming 10001 basis points: scores live in [0, 1]. *)
  expect_error "candidate score over one"
    (header ~tag:0x19 ~len:7 ^ "\x02\x00\x02\x00\xA2\x9C\x01")
    (function Wire.Corrupt msg -> contains msg "score" | _ -> false);
  (* Cluster status (0x0C request, 0x1B reply): the request is
     payload-free, the reply is generation, swaps, then length-prefixed
     peers — negative counters and ballooned peer lists are lies. *)
  expect_error "cluster status request with a payload"
    (header ~tag:0x0C ~len:1 ^ "\x00")
    (function Wire.Corrupt msg -> contains msg "trailing" | _ -> false);
  expect_error "negative swap count"
    (header ~tag:0x1B ~len:2 ^ "\x02\x01")
    (function Wire.Corrupt msg -> contains msg "swap" | _ -> false);
  (* 65 peers declared: one past the bound. *)
  expect_error "peer count over limit"
    (header ~tag:0x1B ~len:4 ^ "\x02\x00\x82\x01")
    (function Wire.Corrupt msg -> contains msg "peer count" | _ -> false);
  (* One peer of declared length 10 with zero bytes behind it. *)
  expect_error "peer length exceeding payload"
    (header ~tag:0x1B ~len:4 ^ "\x02\x00\x02\x14")
    (function Wire.Corrupt msg -> contains msg "peer byte" | _ -> false)

let test_codec_poisoned_decoder () =
  let d = Wire.Decoder.create () in
  Wire.Decoder.feed_string d "\x00";
  check_bool "first error" true (Wire.Decoder.next d = Error (Wire.Bad_magic 0));
  Wire.Decoder.feed_string d (Wire.frame_to_string (Wire.Request Wire.Ping));
  check_bool "poison is sticky" true (Wire.Decoder.next d = Error (Wire.Bad_magic 0))

let test_addr () =
  (* Accepted syntax, table-driven: input -> parsed form. *)
  List.iter
    (fun (input, expected) ->
      match Addr.parse input with
      | Ok addr -> check_bool (Printf.sprintf "parse %S" input) true (addr = expected)
      | Error e ->
          Alcotest.fail
            (Printf.sprintf "parse %S rejected: %s" input (Addr.parse_error_to_string e)))
    [
      ("/tmp/x.sock", Addr.Unix_socket "/tmp/x.sock");
      ("eppi.sock", Addr.Unix_socket "eppi.sock");
      ("127.0.0.1:8080", Addr.Tcp ("127.0.0.1", 8080));
      ("example.com:1", Addr.Tcp ("example.com", 1));
      ("host:65535", Addr.Tcp ("host", 65535));
      (":9000", Addr.Tcp ("", 9000));
      (* A slash anywhere wins: this is a path even though it has a colon. *)
      ("/run/eppi:9000", Addr.Unix_socket "/run/eppi:9000");
    ];
  (* Rejections are typed, not stringly: each row names its error. *)
  List.iter
    (fun (input, expected) ->
      match Addr.parse input with
      | Error e -> check_bool (Printf.sprintf "reject %S" input) true (e = expected)
      | Ok _ -> Alcotest.fail (Printf.sprintf "parse %S must be rejected" input))
    [
      ("", Addr.Empty_address);
      ("host:", Addr.Bad_port "");
      ("host:http", Addr.Bad_port "http");
      ("host:12x", Addr.Bad_port "12x");
      ("host:0", Addr.Port_out_of_range 0);
      ("host:-1", Addr.Port_out_of_range (-1));
      ("host:65536", Addr.Port_out_of_range 65536);
      ("host:999999", Addr.Port_out_of_range 999999);
    ];
  Alcotest.(check string) "default host printed" "127.0.0.1:9000" (Addr.to_string (Addr.Tcp ("", 9000)));
  Alcotest.(check string) "path printed" "/a/b.sock" (Addr.to_string (Addr.Unix_socket "/a/b.sock"));
  (* of_string is parse-or-raise, naming the typed error. *)
  check_bool "of_string accepts" true (Addr.of_string ":9000" = Addr.Tcp ("", 9000));
  (match Addr.of_string "host:0" with
  | exception Invalid_argument msg -> check_bool "raise names range" true (contains msg "65535")
  | _ -> Alcotest.fail "port 0 must be rejected");
  match Addr.of_string "" with
  | exception Invalid_argument msg -> check_bool "raise names empty" true (contains msg "empty")
  | _ -> Alcotest.fail "empty address must be rejected"

(* The reconnect schedule (exposed pure): jitter must stay inside
   [full/2, full) of the capped exponential, monotone in [u], and capped
   at 2 s however deep the attempt count goes. *)
let test_backoff_delay () =
  let cap = 2.0 in
  let full ~base ~attempt = Float.min (base *. (2.0 ** float_of_int (attempt - 1))) cap in
  List.iter
    (fun (base, attempt, u) ->
      let d = Client.backoff_delay ~base ~attempt ~u in
      let f = full ~base ~attempt in
      check_bool
        (Printf.sprintf "base %g attempt %d u %g in [full/2, full)" base attempt u)
        true
        (d >= (f /. 2.0) -. 1e-12 && d < f))
    [
      (0.05, 1, 0.0);
      (0.05, 1, 0.999);
      (0.05, 3, 0.5);
      (0.05, 10, 0.0);
      (0.05, 10, 0.999);
      (1.5, 2, 0.25);
      (0.001, 7, 0.75);
    ];
  (* Deterministic endpoints: u = 0 is exactly half the full delay. *)
  check_bool "u=0 is half" true (Client.backoff_delay ~base:0.1 ~attempt:1 ~u:0.0 = 0.05);
  (* Deep attempts saturate at the cap: delay lives in [1, 2). *)
  let deep = Client.backoff_delay ~base:0.05 ~attempt:60 ~u:0.999 in
  check_bool "deep attempt capped below 2 s" true (deep < cap);
  check_bool "deep attempt at least cap/2" true (deep >= cap /. 2.0);
  (match Client.backoff_delay ~base:0.05 ~attempt:0 ~u:0.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "attempt 0 must be rejected");
  match Client.backoff_delay ~base:0.05 ~attempt:1 ~u:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "u = 1 must be rejected"


(* ---------- Index codec ---------- *)

(* Decode must be total: typed errors on any input, never an exception. *)
let decode_total name payload =
  match Index_codec.decode payload with
  | Ok _ | Error _ -> ()
  | exception e ->
      Alcotest.fail (Printf.sprintf "%s: decode raised %s" name (Printexc.to_string e))

let matrices_equal a b = Bitmatrix.equal (Eppi.Index.matrix a) (Eppi.Index.matrix b)

let test_index_codec_roundtrip () =
  let shapes = [ (1, 1); (5, 3); (20, 9); (40, 11); (7, 64); (3, 200); (25, 9) ] in
  List.iter
    (fun (n, m) ->
      let index = test_index ~n ~m in
      let encoded = Index_codec.encode index in
      check_int
        (Printf.sprintf "encoded_bytes exact for %dx%d" n m)
        (String.length encoded)
        (Index_codec.encoded_bytes index);
      check_bool
        (Printf.sprintf "encode deterministic for %dx%d" n m)
        true
        (String.equal encoded (Index_codec.encode index));
      match Index_codec.decode encoded with
      | Ok decoded ->
          check_bool (Printf.sprintf "round-trip %dx%d" n m) true (matrices_equal index decoded)
      | Error e -> Alcotest.fail (Index_codec.error_to_string e))
    shapes;
  (* A full matrix exercises the bitmap rows, an empty one the zero-count
     packed rows; both must survive the trip. *)
  let full = Bitmatrix.create ~rows:6 ~cols:40 in
  for j = 0 to 5 do
    for p = 0 to 39 do
      Bitmatrix.set full ~row:j ~col:p true
    done
  done;
  let full = Eppi.Index.of_matrix full in
  check_bool "dense round-trip" true
    (match Index_codec.decode (Index_codec.encode full) with
    | Ok d -> matrices_equal full d
    | Error _ -> false);
  let empty = Eppi.Index.of_matrix (Bitmatrix.create ~rows:4 ~cols:16) in
  check_bool "empty round-trip" true
    (match Index_codec.decode (Index_codec.encode empty) with
    | Ok d -> matrices_equal empty d
    | Error _ -> false)

let test_index_codec_truncation () =
  let index = test_index ~n:20 ~m:9 in
  let encoded = Index_codec.encode index in
  for len = 0 to String.length encoded - 1 do
    let prefix = String.sub encoded 0 len in
    decode_total "prefix" prefix;
    match Index_codec.decode prefix with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "prefix of %d/%d bytes decoded" len (String.length encoded))
  done

let test_index_codec_wrong_version () =
  let index = test_index ~n:5 ~m:7 in
  let encoded = Bytes.of_string (Index_codec.encode index) in
  Bytes.set encoded 0 '\x02';
  (match Index_codec.decode (Bytes.to_string encoded) with
  | Error (Index_codec.Unsupported_version 2) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Index_codec.error_to_string e)
  | Ok _ -> Alcotest.fail "future version must not decode");
  match Index_codec.decode "" with
  | Error (Index_codec.Truncated _) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Index_codec.error_to_string e)
  | Ok _ -> Alcotest.fail "empty payload must not decode"

(* Hand-built payloads hitting each validator: the header is
   version, owners n, providers m, then the row counts and bodies. *)
let test_index_codec_malformed () =
  let reject name payload expect =
    decode_total name payload;
    match Index_codec.decode payload with
    | Error (Index_codec.Malformed msg) when contains msg expect -> ()
    | Error e ->
        Alcotest.fail (Printf.sprintf "%s: wrong error %s" name (Index_codec.error_to_string e))
    | Ok _ -> Alcotest.fail (name ^ ": must be rejected")
  in
  reject "zero owners" "\x01\x00\x01" "owner count";
  reject "zero providers" "\x01\x01\x00" "provider count";
  reject "count exceeds providers" "\x01\x01\x01\x02" "exceeds";
  (* m=5, count 1 (Rice branch, k=0): body byte 0x81 decodes gap 1 in its
     low bits, but its top bit lands in the final padding. *)
  reject "nonzero padding after gaps" "\x01\x01\x05\x01\x81" "padding";
  (* m=5, count 1, body 0x1F: unary quotient 5 with k=0 is gap 5, so the
     decoded provider id is 5 — out of range for m=5. *)
  reject "gap lands out of range" "\x01\x01\x05\x01\x1F" "provider 5 >= 5";
  (* m=5, count 1, body 0xFF: the unary run alone exceeds any gap a 5-wide
     row could hold — rejected before scanning further. *)
  reject "gap exceeds provider count" "\x01\x01\x05\x01\xFF" "gap exceeds";
  (* m=2: bitmap declares 2 set bits but populates 1. *)
  reject "bitmap population mismatch" "\x01\x01\x02\x02\x01" "population";
  (* m=2, count 1, body 0x05: bitmap bits (1, 0) match the count, but
     bit 2 sits in the final padding. *)
  reject "nonzero padding after bitmap" "\x01\x01\x02\x01\x05" "padding";
  let valid = Index_codec.encode (test_index ~n:3 ~m:5) in
  reject "trailing bytes" (valid ^ "\x00") "trailing"

(* A header may declare dimensions far larger than anything the payload
   could back; decode must reject them before sizing any allocation from
   them.  (A ~20-byte payload once forced a multi-GiB matrix attempt —
   Out_of_memory off the wire, escaping the typed-error contract.) *)
let test_index_codec_hostile_dims () =
  (* n=16, m=2^30: each dimension is within bounds but the product blows
     the cells cap, rejected before the counts are even read. *)
  let payload = "\x01\x10\x80\x80\x80\x80\x04" in
  decode_total "oversized matrix" payload;
  (match Index_codec.decode payload with
  | Error (Index_codec.Malformed msg) ->
      check_bool "names the cells cap" true (contains msg "cells")
  | Error e -> Alcotest.fail ("wrong error: " ^ Index_codec.error_to_string e)
  | Ok _ -> Alcotest.fail "oversized matrix must be rejected");
  (* n=2^20 rows declared by a 5-byte payload: fewer bytes remain than
     rows, so it is truncated before the counts array is allocated. *)
  let payload = "\x01\x80\x80\x40\x05" in
  decode_total "overdeclared rows" payload;
  match Index_codec.decode payload with
  | Error (Index_codec.Truncated _) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Index_codec.error_to_string e)
  | Ok _ -> Alcotest.fail "overdeclared rows must be rejected"

let test_index_codec_mutation_fuzz () =
  (* Every single-byte corruption of a valid payload must decode to a
     typed result — never an exception.  (Some mutations remain valid
     payloads for a different matrix; that is fine, the wire checksum is
     the transport's business.) *)
  let index = test_index ~n:12 ~m:17 in
  let encoded = Index_codec.encode index in
  for i = 0 to String.length encoded - 1 do
    List.iter
      (fun delta ->
        let b = Bytes.of_string encoded in
        Bytes.set b i (Char.chr (Char.code encoded.[i] lxor delta));
        decode_total (Printf.sprintf "byte %d xor %d" i delta) (Bytes.to_string b))
      [ 0x01; 0x80; 0xFF ]
  done

(* ---------- Live daemon ---------- *)

let sock_counter = ref 0

let sock_path () =
  incr sock_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "eppi-net-test-%d-%d.sock" (Unix.getpid ()) !sock_counter)

(* Start a daemon over [index] in its own domain, run [f addr engine]
   against it, then shut it down (if [f] has not already) and join. *)
let with_server ?(shards = 1) ?(workers = 1)
    ?(max_inflight = Server.default_config.max_inflight) ?(peers = []) ?resolver index f =
  let path = sock_path () in
  let addr = Addr.Unix_socket path in
  let engine = Serve.create ~config:{ Serve.default_config with shards } ?resolver index in
  let server =
    Server.create ~config:{ Server.default_config with workers; max_inflight; peers } engine
  in
  let listener = Server.listen addr in
  let daemon = Domain.spawn (fun () -> Server.run server listener) in
  let stop () =
    (try
       let c = Client.connect addr in
       (try Client.shutdown c with _ -> ());
       Client.close c
     with _ -> ());
    Domain.join daemon;
    try Sys.remove path with Sys_error _ -> ()
  in
  Fun.protect ~finally:stop (fun () -> f addr engine)

let daemon_basics ~shards ~workers () =
  let n = 20 and m = 9 in
  let index = test_index ~n ~m in
  with_server ~shards ~workers index (fun addr engine ->
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Client.ping c;
          for owner = 0 to n - 1 do
            let generation, reply = Client.query c ~owner in
            check_int "generation" 1 generation;
            check_bool
              (Printf.sprintf "owner %d served" owner)
              true
              (reply = Serve.Providers (Eppi.Index.query index ~owner))
          done;
          let _, unknown = Client.query c ~owner:(n + 5) in
          check_bool "unknown owner" true (unknown = Serve.Unknown_owner);
          let generation, replies = Client.batch c [| 0; 1; n + 5; 2 |] in
          check_int "batch generation" 1 generation;
          check_int "batch size" 4 (Array.length replies);
          check_bool "batch known" true
            (replies.(0) = Serve.Providers (Eppi.Index.query index ~owner:0));
          check_bool "batch unknown" true (replies.(2) = Serve.Unknown_owner);
          let _, owners = Client.audit c ~provider:3 in
          check_bool "audit equals engine audit" true (owners = Serve.audit engine ~provider:3);
          let _, out_of_range = Client.audit c ~provider:(m + 1) in
          check_bool "audit out of range" true (out_of_range = None);
          let json = Client.stats_json c in
          check_bool "stats is json" true (String.length json > 0 && json.[0] = '{');
          check_bool "stats counts queries" true (contains json "\"queries\"");
          (* A batch wider than the worker pool splits across every
             domain and must reassemble in order. *)
          let owners = Array.init 64 (fun i -> i mod (n + 4)) in
          let generation, replies = Client.batch c owners in
          check_int "wide batch generation" 1 generation;
          check_int "wide batch size" 64 (Array.length replies);
          Array.iteri
            (fun i owner ->
              let expected =
                if owner < n then Serve.Providers (Eppi.Index.query index ~owner)
                else Serve.Unknown_owner
              in
              check_bool (Printf.sprintf "wide batch entry %d" i) true (replies.(i) = expected))
            owners))

let test_daemon_republish () =
  let n = 20 and m = 9 in
  let index1 = test_index ~n ~m in
  (* The new index is bigger: owner 22 exists only after the swap. *)
  let index2 = test_index_v2 ~n:25 ~m in
  with_server index1 (fun addr engine ->
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let generation, reply = Client.query c ~owner:4 in
          check_int "pre-swap generation" 1 generation;
          check_bool "pre-swap reply" true
            (reply = Serve.Providers (Eppi.Index.query index1 ~owner:4));
          let _, beyond = Client.query c ~owner:22 in
          check_bool "owner beyond old index" true (beyond = Serve.Unknown_owner);
          (match Client.republish c ~index_csv:(Eppi.Index.to_csv index2) with
          | Ok generation -> check_int "republish returns new generation" 2 generation
          | Error e -> Alcotest.fail e);
          let generation, reply = Client.query c ~owner:4 in
          check_int "post-swap generation" 2 generation;
          check_bool "post-swap reply" true
            (reply = Serve.Providers (Eppi.Index.query index2 ~owner:4));
          let generation, beyond = Client.query c ~owner:22 in
          check_int "new owner generation" 2 generation;
          check_bool "owner known after swap" true
            (beyond = Serve.Providers (Eppi.Index.query index2 ~owner:22));
          check_int "engine generation" 2 (Serve.generation engine);
          (match Client.republish c ~index_csv:"definitely,not,an index" with
          | Ok _ -> Alcotest.fail "bad csv must be rejected"
          | Error msg -> check_bool "error names republish" true (contains msg "republish"));
          check_int "failed republish keeps generation" 2 (Serve.generation engine);
          let json = Client.stats_json c in
          check_bool "stats carries generation" true (contains json "\"generation\": 2");
          check_bool "stats counts swaps" true (contains json "\"swaps\"")))

(* Cluster_status is answered inline by the mux: generation tracks the
   number of applied republishes, swaps counts them, and peers echoes the
   daemon's configured replica set verbatim. *)
let test_daemon_cluster_status () =
  let n = 20 and m = 9 in
  let index1 = test_index ~n ~m in
  let index2 = test_index_v2 ~n:25 ~m in
  let peers = [ "/tmp/a.sock"; "other:9001" ] in
  with_server ~peers index1 (fun addr _engine ->
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let status = Client.cluster_status c in
          check_int "initial generation" 1 status.Wire.generation;
          check_int "no swaps yet" 0 status.Wire.swaps;
          check_bool "peers echoed" true (status.Wire.peers = peers);
          (match Client.republish c ~index_csv:(Eppi.Index.to_csv index2) with
          | Ok generation -> check_int "republish generation" 2 generation
          | Error e -> Alcotest.fail e);
          (* The shard records the swap when it next serves, not at publish. *)
          ignore (Client.query c ~owner:4);
          let status = Client.cluster_status c in
          check_int "post-swap generation" 2 status.Wire.generation;
          check_int "one swap recorded" 1 status.Wire.swaps;
          check_bool "peers stable across swap" true (status.Wire.peers = peers)))

let daemon_pipeline ~shards ~workers () =
  let n = 30 and m = 9 in
  let index = test_index ~n ~m in
  with_server ~shards ~workers index (fun addr _engine ->
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let requests =
            List.init 300 (fun i ->
                match i mod 5 with
                | 0 | 1 | 2 -> Wire.Query { owner = i mod (2 * n) }
                | 3 -> Wire.Audit { provider = i mod (m + 3) }
                | _ -> Wire.Ping)
          in
          let responses = Client.pipeline c requests in
          check_int "every request answered" 300 (List.length responses);
          List.iter2
            (fun request response ->
              match (request, response) with
              | Wire.Query { owner }, Wire.Reply { generation = 1; reply } ->
                  let expected =
                    if owner < n then Serve.Providers (Eppi.Index.query index ~owner)
                    else Serve.Unknown_owner
                  in
                  check_bool (Printf.sprintf "pipelined owner %d" owner) true (reply = expected)
              | Wire.Audit { provider }, Wire.Audit_reply { generation = 1; owners } ->
                  check_bool
                    (Printf.sprintf "pipelined audit %d" provider)
                    true
                    (if provider < m then owners <> None else owners = None)
              | Wire.Ping, Wire.Pong -> ()
              | _, other -> Client.unexpected "pipelined response" other)
            requests responses))

(* Regression: a client that pipelines more requests than [max_inflight]
   and then waits for replies must still get every one.  The mux pauses
   decoding at the cap with the surplus frames buffered in the decoder;
   each completion must resume the drain — [select] alone never would,
   it only fires when the client sends MORE bytes. *)
let daemon_pipeline_past_inflight_cap ~workers () =
  let n = 30 and m = 9 in
  let index = test_index ~n ~m in
  with_server ~shards:4 ~workers ~max_inflight:8 index (fun addr _engine ->
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let requests = List.init 100 (fun i -> Wire.Query { owner = i mod n }) in
          let responses = Client.pipeline c requests in
          check_int "every request answered" 100 (List.length responses);
          List.iter2
            (fun request response ->
              match (request, response) with
              | Wire.Query { owner }, Wire.Reply { reply; _ } ->
                  check_bool
                    (Printf.sprintf "capped pipeline owner %d" owner)
                    true
                    (reply = Serve.Providers (Eppi.Index.query index ~owner))
              | _, other -> Client.unexpected "capped pipeline" other)
            requests responses))

let test_daemon_republish_binary () =
  let n = 20 and m = 9 in
  let index1 = test_index ~n ~m in
  let index2 = test_index_v2 ~n:25 ~m in
  with_server ~shards:4 ~workers:4 index1 (fun addr engine ->
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (match Client.republish_index c index2 with
          | Ok generation -> check_int "binary republish generation" 2 generation
          | Error e -> Alcotest.fail e);
          let generation, reply = Client.query c ~owner:22 in
          check_int "post-swap generation" 2 generation;
          check_bool "post-swap reply" true
            (reply = Serve.Providers (Eppi.Index.query index2 ~owner:22));
          (* A payload the codec rejects must bounce as a Server_error,
             leaving the installed generation alone. *)
          (match Client.call c (Wire.Republish_binary { data = "garbage bytes" }) with
          | Wire.Server_error msg -> check_bool "error names republish" true (contains msg "republish")
          | other -> Client.unexpected "corrupt binary republish" other);
          (match Client.call c (Wire.Republish_binary { data = "" }) with
          | Wire.Server_error _ -> ()
          | other -> Client.unexpected "empty binary republish" other);
          check_int "failed republish keeps generation" 2 (Serve.generation engine)))

(* Requests pipelined behind a republish on one connection must answer
   from the new generation: the mux stalls the connection until the swap
   lands, so the wire never shows [Republished {g}] followed by a reply
   from a generation < g. *)
let test_multicore_republish_ordering () =
  let n = 20 and m = 9 in
  let index1 = test_index ~n ~m in
  let index2 = test_index_v2 ~n ~m in
  with_server ~shards:4 ~workers:4 index1 (fun addr _engine ->
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let requests =
            [
              Wire.Query { owner = 0 };
              Wire.Query { owner = 1 };
              Wire.Republish_binary { data = Index_codec.encode index2 };
              Wire.Query { owner = 0 };
              Wire.Query { owner = 1 };
              Wire.Ping;
              Wire.Query { owner = 2 };
            ]
          in
          match Client.pipeline c requests with
          | [ a; b; Wire.Republished { generation = 2 }; d; e; Wire.Pong; g ] ->
              (* Replies routed before the republish may land either side
                 of the swap; their generation tag says which index. *)
              List.iter
                (fun (owner, response) ->
                  match response with
                  | Wire.Reply { generation; reply } ->
                      let index = if generation = 1 then index1 else index2 in
                      check_bool
                        (Printf.sprintf "pre-swap owner %d consistent" owner)
                        true
                        (generation <= 2 && reply = Serve.Providers (Eppi.Index.query index ~owner))
                  | other -> Client.unexpected "pre-swap reply" other)
                [ (0, a); (1, b) ];
              (* Replies behind the republish must be the new index, exactly. *)
              List.iter
                (fun (owner, response) ->
                  match response with
                  | Wire.Reply { generation; reply } ->
                      check_int (Printf.sprintf "post-swap owner %d generation" owner) 2 generation;
                      check_bool
                        (Printf.sprintf "post-swap owner %d reply" owner)
                        true
                        (reply = Serve.Providers (Eppi.Index.query index2 ~owner))
                  | other -> Client.unexpected "post-swap reply" other)
                [ (0, d); (1, e); (2, g) ]
          | responses ->
              Alcotest.fail
                (Printf.sprintf "unexpected response shape (%d frames)" (List.length responses))))

(* The acceptance test from the issue: queries keep flowing while the index
   hot-swaps underneath them; every reply must match the generation it is
   tagged with, none may be dropped. *)
let daemon_hot_swap_under_load ~workers ~binary () =
  let n = 40 and m = 11 in
  let index1 = test_index ~n ~m in
  let index2 = test_index_v2 ~n ~m in
  let truth1 = Array.init n (fun owner -> Eppi.Index.query index1 ~owner) in
  let truth2 = Array.init n (fun owner -> Eppi.Index.query index2 ~owner) in
  with_server ~shards:4 ~workers index1 (fun addr engine ->
      let worker =
        Domain.spawn (fun () ->
            let c = Client.connect ~retries:20 addr in
            let rng = Rng.create 7 in
            let results = ref [] in
            let rounds = ref 0 and rounds_after_swap = ref 0 in
            while !rounds_after_swap < 5 && !rounds < 4000 do
              incr rounds;
              let owners = Array.init 25 (fun _ -> Rng.int rng n) in
              let requests = Array.to_list (Array.map (fun owner -> Wire.Query { owner }) owners) in
              let seen_swap = ref (!rounds_after_swap > 0) in
              List.iteri
                (fun i response ->
                  match response with
                  | Wire.Reply { generation; reply } ->
                      if generation >= 2 then seen_swap := true;
                      results := (owners.(i), generation, reply) :: !results
                  | other -> Client.unexpected "hot-swap query" other)
                (Client.pipeline c requests);
              if !seen_swap then incr rounds_after_swap
            done;
            Client.close c;
            (!rounds, !results))
      in
      let admin = Client.connect addr in
      Unix.sleepf 0.02;
      let swap =
        if binary then Client.republish_index admin index2
        else Client.republish admin ~index_csv:(Eppi.Index.to_csv index2)
      in
      (match swap with
      | Ok generation -> check_int "swap generation" 2 generation
      | Error e -> Alcotest.fail e);
      let generation, reply = Client.query admin ~owner:0 in
      check_int "admin post-swap generation" 2 generation;
      check_bool "admin post-swap reply" true (reply = Serve.Providers truth2.(0));
      Client.close admin;
      let rounds, results = Domain.join worker in
      check_bool "worker observed the swap" true (rounds < 4000);
      check_int "no dropped replies" (rounds * 25) (List.length results);
      List.iter
        (fun (owner, generation, reply) ->
          let expected =
            match generation with
            | 1 -> truth1.(owner)
            | 2 -> truth2.(owner)
            | g -> Alcotest.fail (Printf.sprintf "impossible generation %d" g)
          in
          check_bool
            (Printf.sprintf "owner %d at generation %d" owner generation)
            true
            (reply = Serve.Providers expected))
        results;
      let metrics = Serve.metrics engine in
      check_int "metrics generation" 2 metrics.generation;
      check_bool "swap observations counted" true (metrics.swaps >= 1);
      check_int "conservation" metrics.queries
        (metrics.served + metrics.unknown + metrics.shed_rate + metrics.shed_queue))

(* Fuzzy lookups over the wire: a daemon started with a resolver answers
   Bloom-probe queries end-to-end — candidates resolve to the planted
   owner and fan out to that owner's postings row — and a probe under the
   wrong filter geometry comes back as a typed mismatch. *)
let daemon_fuzzy ~shards ~workers () =
  let n = 30 and m = 9 in
  let index = test_index ~n ~m in
  let config = Resolver.default_config ~seed:0x5EED in
  let roster = Roster.generate (Rng.create 5) ~n in
  let resolver = Resolver.build config roster in
  with_server ~shards ~workers ~resolver index (fun addr engine ->
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (* Exact probes resolve their own owner at score 1.0, providers
             straight from the postings row. *)
          for owner = 0 to n - 1 do
            let probe = Probe.of_demographic config.Resolver.params roster.(owner) in
            let generation, result = Client.query_fuzzy ~k:3 c probe in
            check_int "fuzzy generation" 1 generation;
            match result with
            | Serve.Candidates (top :: _) ->
                check_int (Printf.sprintf "owner %d resolves itself" owner) owner top.Serve.owner;
                check_bool "exact probe scores 1.0" true (top.Serve.score = 1.0);
                check_bool
                  (Printf.sprintf "owner %d providers are the postings row" owner)
                  true
                  (top.Serve.providers = Eppi.Index.query index ~owner)
            | _ -> Alcotest.fail (Printf.sprintf "owner %d did not resolve" owner)
          done;
          (* Typo-corrupted probes still mostly land on the planted owner
             — the bench pins exact recall; here we only need the wire
             path to carry realistic noisy probes. *)
          let trials = Workload.fuzzy (Rng.create 23) ~roster ~count:40 in
          let hits = ref 0 in
          Array.iter
            (fun (truth, record) ->
              let probe = Probe.of_demographic config.Resolver.params record in
              match Client.query_fuzzy ~k:5 c probe with
              | _, Serve.Candidates (top :: _) when top.Serve.owner = truth -> incr hits
              | _ -> ())
            trials;
          check_bool (Printf.sprintf "noisy probes mostly resolve (%d/40)" !hits) true (!hits >= 30);
          let alien = Bloom.keyed ~seed:0x5EED ~bits:128 () in
          let _, mismatch = Client.query_fuzzy c (Probe.of_demographic alien roster.(0)) in
          check_bool "wrong geometry is a typed mismatch" true (mismatch = Serve.Probe_mismatch);
          let json = Client.stats_json c in
          check_bool "stats counts fuzzy queries" true (contains json "\"fuzzy_queries\"");
          let metrics = Serve.metrics engine in
          check_int "fuzzy conservation" metrics.fuzzy_queries
            (metrics.fuzzy_resolved + metrics.fuzzy_empty + metrics.fuzzy_rejected
           + metrics.fuzzy_shed)))

let test_daemon_fuzzy_no_resolver () =
  let index = test_index ~n:8 ~m:5 in
  with_server index (fun addr _engine ->
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let generation, result = Client.query_fuzzy c sample_probe in
          check_int "generation still tagged" 1 generation;
          check_bool "typed no-resolver answer" true (result = Serve.No_resolver)))

(* The fuzzy half of the hot-swap acceptance test: probes keep resolving
   while the postings republish underneath them, and every reply must be
   internally consistent — the providers fanned out for the resolved
   owner are exactly the row of the index generation the reply is tagged
   with, never a mix of one generation's resolver and the other's
   postings. *)
let test_daemon_fuzzy_hot_swap () =
  let n = 40 and m = 11 in
  let index1 = test_index ~n ~m in
  let index2 = test_index_v2 ~n ~m in
  let truth1 = Array.init n (fun owner -> Eppi.Index.query index1 ~owner) in
  let truth2 = Array.init n (fun owner -> Eppi.Index.query index2 ~owner) in
  let config = Resolver.default_config ~seed:0xF0DA in
  let roster = Roster.generate (Rng.create 41) ~n in
  let resolver = Resolver.build config roster in
  let probes = Array.map (Probe.of_demographic config.Resolver.params) roster in
  with_server ~shards:4 ~workers:4 ~resolver index1 (fun addr engine ->
      let worker =
        Domain.spawn (fun () ->
            let c = Client.connect ~retries:20 addr in
            let rng = Rng.create 7 in
            let results = ref [] in
            let rounds = ref 0 and rounds_after_swap = ref 0 in
            while !rounds_after_swap < 5 && !rounds < 4000 do
              incr rounds;
              let owners = Array.init 10 (fun _ -> Rng.int rng n) in
              let requests =
                Array.to_list
                  (Array.map
                     (fun owner -> Wire.Query_fuzzy { probe = probes.(owner); k = 3 })
                     owners)
              in
              let seen_swap = ref (!rounds_after_swap > 0) in
              List.iteri
                (fun i response ->
                  match response with
                  | Wire.Fuzzy_reply { generation; result } ->
                      if generation >= 2 then seen_swap := true;
                      results := (owners.(i), generation, result) :: !results
                  | other -> Client.unexpected "hot-swap fuzzy query" other)
                (Client.pipeline c requests);
              if !seen_swap then incr rounds_after_swap
            done;
            Client.close c;
            (!rounds, !results))
      in
      let admin = Client.connect addr in
      Unix.sleepf 0.02;
      (match Client.republish_index admin index2 with
      | Ok generation -> check_int "swap generation" 2 generation
      | Error e -> Alcotest.fail e);
      Client.close admin;
      let rounds, results = Domain.join worker in
      check_bool "worker observed the swap" true (rounds < 4000);
      check_int "no dropped replies" (rounds * 10) (List.length results);
      List.iter
        (fun (owner, generation, result) ->
          let truth =
            match generation with
            | 1 -> truth1
            | 2 -> truth2
            | g -> Alcotest.fail (Printf.sprintf "impossible generation %d" g)
          in
          match result with
          | Serve.Candidates (top :: _) ->
              check_int
                (Printf.sprintf "owner %d resolved at generation %d" owner generation)
                owner top.Serve.owner;
              check_bool
                (Printf.sprintf "owner %d providers consistent with generation %d" owner generation)
                true
                (top.Serve.providers = truth.(owner))
          | _ -> Alcotest.fail (Printf.sprintf "owner %d dropped to a non-candidate reply" owner))
        results;
      let metrics = Serve.metrics engine in
      check_int "metrics generation" 2 metrics.generation;
      check_int "fuzzy conservation" metrics.fuzzy_queries
        (metrics.fuzzy_resolved + metrics.fuzzy_empty + metrics.fuzzy_rejected + metrics.fuzzy_shed))

let test_daemon_replay () =
  let n = 30 and m = 9 in
  let index = test_index ~n ~m in
  with_server index (fun addr _engine ->
      let workload = Workload.zipf ~unknown_fraction:0.25 (Rng.create 11) ~n ~count:400 in
      let path = Filename.temp_file "eppi-replay" ".csv" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let oc = open_out path in
          output_string oc (Workload.to_csv_log workload);
          close_out oc;
          let loaded = Replay.load path in
          check_bool "log round-trips" true (loaded = workload);
          let c = Client.connect addr in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              let summary = Replay.run ~depth:7 c loaded in
              check_int "requests" 400 summary.requests;
              check_int "conservation" 400 (summary.served + summary.unknown + summary.shed);
              let expected_unknown =
                Array.fold_left (fun acc o -> if o >= n then acc + 1 else acc) 0 workload
              in
              check_int "unknown count" expected_unknown summary.unknown;
              check_int "nothing shed" 0 summary.shed;
              check_int "first generation" 1 summary.first_generation;
              check_int "last generation" 1 summary.last_generation;
              check_bool "wall clock sane" true (summary.wall_seconds >= 0.0))))

let test_replay_load_jsonl () =
  let path = Filename.temp_file "eppi-replay" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"ts\": 1, \"owner\": 4}\n\n{\"owner\": -2, \"tag\": \"x\"}\n";
      close_out oc;
      check_bool "jsonl log loads" true (Replay.load path = [| 4; -2 |]))

let test_daemon_shutdown () =
  let index = test_index ~n:8 ~m:5 in
  with_server index (fun addr _engine ->
      let c = Client.connect addr in
      Client.ping c;
      Client.shutdown c;
      Client.close c;
      let rec wait_dead attempts =
        if attempts = 0 then Alcotest.fail "server still accepting after shutdown"
        else
          match Client.connect addr with
          | c2 ->
              Client.close c2;
              Unix.sleepf 0.01;
              wait_dead (attempts - 1)
          | exception Unix.Unix_error _ -> ()
      in
      wait_dead 200)

let test_listen_stale_and_occupied () =
  let path = sock_path () in
  let l1 = Server.listen (Addr.Unix_socket path) in
  Unix.close l1;
  (* The socket file survives a dead server; a new listen reclaims it. *)
  check_bool "stale socket file exists" true (Sys.file_exists path);
  let l2 = Server.listen (Addr.Unix_socket path) in
  Unix.close l2;
  Sys.remove path;
  let oc = open_out path in
  output_string oc "not a socket";
  close_out oc;
  (match Server.listen (Addr.Unix_socket path) with
  | exception Failure _ -> ()
  | fd ->
      Unix.close fd;
      Alcotest.fail "listening over a regular file must fail");
  Sys.remove path

(* ---------- Client robustness ---------- *)

let test_client_request_timeout () =
  (* A listener that accepts the connection (the kernel does that for us via
     the backlog) but never reads or responds: the call must come back as
     Timed_out instead of hanging, and the connection must survive. *)
  let path = sock_path () in
  let listener = Server.listen (Addr.Unix_socket path) in
  Fun.protect
    ~finally:(fun () ->
      Unix.close listener;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let c = Client.connect ~request_timeout:0.2 (Addr.Unix_socket path) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let t0 = Unix.gettimeofday () in
          (match Client.call_result c Wire.Ping with
          | Error Client.Timed_out -> ()
          | Ok _ -> Alcotest.fail "silent server must not answer"
          | Error (Client.Connection_lost m) -> Alcotest.fail ("lost, not timed out: " ^ m));
          let elapsed = Unix.gettimeofday () -. t0 in
          check_bool "timed out promptly" true (elapsed >= 0.19 && elapsed < 5.0);
          match Client.call c Wire.Ping with
          | exception Client.Protocol_error msg ->
              check_bool "call surfaces the timeout" true (contains msg "timed out")
          | _ -> Alcotest.fail "call must also time out"))

let test_client_reconnects_across_restart () =
  (* Kill the daemon under an established client, start a fresh one on the
     same socket path: with [reconnect] the next call must transparently
     land on the new server. *)
  let index = test_index ~n:8 ~m:5 in
  let path = sock_path () in
  let addr = Addr.Unix_socket path in
  let start () =
    let engine = Serve.create index in
    let server = Server.create engine in
    let listener = Server.listen addr in
    Domain.spawn (fun () -> Server.run server listener)
  in
  let stop daemon =
    (try
       let c = Client.connect addr in
       (try Client.shutdown c with _ -> ());
       Client.close c
     with _ -> ());
    Domain.join daemon
  in
  let daemon1 = start () in
  let c = Client.connect ~reconnect:true ~max_reconnects:40 ~retry_delay:0.02 addr in
  Fun.protect
    ~finally:(fun () ->
      Client.close c;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Client.ping c;
      stop daemon1;
      let daemon2 = start () in
      Fun.protect
        ~finally:(fun () -> stop daemon2)
        (fun () ->
          (* The old socket is dead; the client must notice mid-call and
             re-dial. *)
          Client.ping c;
          let generation, reply = Client.query c ~owner:3 in
          check_int "served by the restarted daemon" 1 generation;
          check_bool "reply intact after reconnect" true
            (reply = Serve.Providers (Eppi.Index.query index ~owner:3))))

let test_client_connection_lost_when_gone_for_good () =
  (* Server dies and never comes back: reconnect attempts must exhaust and
     surface a typed Connection_lost, not spin forever. *)
  let index = test_index ~n:8 ~m:5 in
  let path = sock_path () in
  let addr = Addr.Unix_socket path in
  let engine = Serve.create index in
  let server = Server.create engine in
  let listener = Server.listen addr in
  let daemon = Domain.spawn (fun () -> Server.run server listener) in
  let c = Client.connect ~reconnect:true ~max_reconnects:2 ~retry_delay:0.01 addr in
  Fun.protect
    ~finally:(fun () ->
      Client.close c;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Client.ping c;
      Client.shutdown c;
      Domain.join daemon;
      (try Sys.remove path with Sys_error _ -> ());
      match Client.call_result c Wire.Ping with
      | Error (Client.Connection_lost _) -> ()
      | Ok _ -> Alcotest.fail "dead server must not answer"
      | Error Client.Timed_out -> Alcotest.fail "expected connection loss, got timeout")

(* ---------- Properties ---------- *)

(* ---- live telemetry ---- *)

(* Drive a mixed load through the daemon, then take it apart via the
   Telemetry wire command: the stage decomposition must conserve exactly
   (stages are telescoping differences of one clock, so the integer sums
   are equal, not merely close), the rolling window must have seen the
   load, and both ops replies must carry the per-worker counters. *)
let daemon_telemetry ~shards ~workers () =
  let n = 20 and m = 9 in
  let index = test_index ~n ~m in
  with_server ~shards ~workers index (fun addr _engine ->
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          for owner = 0 to n - 1 do
            ignore (Client.query c ~owner)
          done;
          ignore (Client.batch c [| 0; 1; 2; 3; 4; 5; 6; 7 |]);
          ignore (Client.audit c ~provider:2);
          Client.ping c;
          let raw = Client.telemetry_json c in
          let v =
            match Json.parse raw with
            | Ok v -> v
            | Error e -> Alcotest.fail ("telemetry reply is not JSON: " ^ e)
          in
          let geti path =
            match Json.find_int v path with
            | Some x -> x
            | None -> Alcotest.fail ("telemetry reply lacks " ^ String.concat "." path)
          in
          check_bool "requests recorded" true (geti [ "requests" ] >= n + 3);
          check_int "conservation is exact"
            (geti [ "conservation"; "total_ns" ])
            (geti [ "conservation"; "stage_sum_ns" ]);
          check_bool "conservation flagged exact" true
            (Json.find v [ "conservation"; "exact" ] = Some (Json.Bool true));
          check_bool "window saw the queries" true (geti [ "window"; "query"; "count" ] >= n);
          check_bool "window saw the batch" true (geti [ "window"; "batch"; "count" ] >= 1);
          check_bool "window query rate positive" true
            (match Json.find_num v [ "window"; "query"; "rate" ] with
            | Some r -> r > 0.0
            | None -> false);
          let finished = geti [ "stages"; "total"; "count" ] in
          check_bool "stage totals populated" true (finished >= n + 3);
          (* Every finished request passes through every stage exactly
             once — the per-stage counts all agree. *)
          List.iter
            (fun st ->
              check_int (st ^ " counts every request") finished (geti [ "stages"; st; "count" ]))
            [ "decode"; "dispatch"; "queue"; "execute"; "reorder"; "flush" ];
          (match Json.find v [ "workers" ] with
          | Some (Json.List ws) ->
              check_int "one entry per worker domain" (if workers > 1 then workers else 0)
                (List.length ws)
          | _ -> Alcotest.fail "telemetry reply lacks workers");
          (match Json.find v [ "slow" ] with
          | Some (Json.List (s :: _)) ->
              check_bool "slow entry conserves too" true
                (match Json.find_int s [ "total_ns" ] with
                | Some total ->
                    total
                    = List.fold_left
                        (fun acc k ->
                          acc + Option.value ~default:0 (Json.find_int s [ k ^ "_ns" ]))
                        0
                        [ "decode"; "dispatch"; "queue"; "execute"; "reorder"; "flush" ]
                | None -> false)
          | _ -> Alcotest.fail "slow ring is empty after load");
          (* The Stats reply carries the worker counters and the trace
             session's drop count on top of the engine metrics. *)
          let stats =
            match Json.parse (Client.stats_json c) with
            | Ok v -> v
            | Error e -> Alcotest.fail ("stats reply is not JSON: " ^ e)
          in
          check_bool "stats still counts queries" true
            (Json.find_int stats [ "queries" ] <> None);
          check_bool "stats carries trace_dropped" true
            (Json.find_int stats [ "trace_dropped" ] = Some 0);
          match Json.find stats [ "workers" ] with
          | Some (Json.List ws) ->
              check_int "stats workers match pool" (if workers > 1 then workers else 0)
                (List.length ws);
              if workers > 1 then
                check_bool "workers served the load" true
                  (List.fold_left
                     (fun acc w -> acc + Option.value ~default:0 (Json.find_int w [ "served" ]))
                     0 ws
                  > 0)
          | _ -> Alcotest.fail "stats reply lacks workers"))

(* A trace id minted by the client must label spans on BOTH sides of the
   socket: the client's [client.request] span and the daemon's
   [net.request] span (recorded on a different domain, hence a different
   track) carry the same id, and the Chrome export contains both. *)
let test_trace_propagation () =
  let index = test_index ~n:10 ~m:5 in
  Eppi_obs.Trace.enable ();
  Fun.protect
    ~finally:(fun () -> Eppi_obs.Trace.reset ())
    (fun () ->
      with_server ~shards:2 ~workers:2 index (fun addr _engine ->
          let c = Client.connect addr in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () -> ignore (Client.query c ~owner:3)));
      Eppi_obs.Trace.disable ();
      let tracks = Eppi_obs.Trace.tracks () in
      let ends_named name =
        List.concat_map
          (fun tr ->
            List.filter_map
              (fun (e : Eppi_obs.Trace.event) ->
                if e.kind = Eppi_obs.Trace.Span_end && e.name = name then
                  match List.assoc_opt "trace_id" e.args with
                  | Some id -> Some (tr.Eppi_obs.Trace.track_label, id)
                  | None -> None
                else None)
              tr.Eppi_obs.Trace.track_events)
          tracks
      in
      let client_spans = ends_named "client.request" in
      let server_spans = ends_named "net.request" in
      check_bool "client recorded a traced span" true (client_spans <> []);
      check_bool "server recorded a traced span" true (server_spans <> []);
      let _, id = List.hd client_spans in
      check_bool "trace id is non-negative" true (id >= 0);
      check_bool "same id on a server span" true (List.exists (fun (_, i) -> i = id) server_spans);
      check_bool "client and server spans sit on different tracks" true
        (List.exists
           (fun (server_track, i) ->
             i = id && List.for_all (fun (client_track, _) -> client_track <> server_track) client_spans)
           server_spans);
      (* And the joined trace survives the Chrome export. *)
      let tmp = Filename.temp_file "eppi-trace" ".json" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
        (fun () ->
          Eppi_obs.Chrome.write tmp;
          let ic = open_in_bin tmp in
          let body =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          check_bool "export has the client span" true (contains body "client.request");
          check_bool "export has the server span" true (contains body "net.request");
          check_bool "export carries the id twice" true
            (let needle = Printf.sprintf "\"trace_id\":%d" id in
             let rec count i acc =
               if i + String.length needle > String.length body then acc
               else if String.sub body i (String.length needle) = needle then
                 count (i + 1) (acc + 1)
               else count (i + 1) acc
             in
             count 0 0 >= 2)))

let qcheck_tests =
  let open QCheck in
  let gen_owner =
    Gen.oneof [ Gen.small_nat; Gen.int; Gen.map (fun k -> -k) Gen.small_nat ]
  in
  let gen_reply =
    Gen.oneof
      [
        Gen.map (fun ids -> Serve.Providers ids) (Gen.small_list Gen.nat);
        Gen.return Serve.Unknown_owner;
        Gen.return Serve.Shed_rate_limit;
        Gen.return Serve.Shed_queue_full;
      ]
  in
  (* Fuzzy probes are generated through the real encoder over random
     demographics and filter geometries, so every generated probe is
     wire-legal by construction (ascending sparse indexes within bits). *)
  let gen_demographic =
    let open Gen in
    let name = string_size ~gen:printable (int_range 0 8) in
    let dob =
      oneof
        [
          return (0, 0, 0);
          map
            (fun (y, m, d) -> (1900 + y, 1 + m, 1 + d))
            (triple (int_range 0 120) (int_range 0 11) (int_range 0 27));
        ]
    in
    map
      (fun (first, last, dob, zip) -> { Demographic.first; last; dob; zip; gender = Other })
      (quad name name dob name)
  in
  let gen_probe =
    Gen.map
      (fun (seed, bits, hashes, person) ->
        Probe.of_demographic (Bloom.keyed ~seed ~bits ~hashes ()) person)
      Gen.(quad nat (int_range 8 512) (int_range 1 8) gen_demographic)
  in
  let gen_plain_request =
    Gen.oneof
      [
        Gen.map (fun owner -> Wire.Query { owner }) gen_owner;
        Gen.map (fun l -> Wire.Batch (Array.of_list l)) (Gen.small_list gen_owner);
        Gen.map (fun provider -> Wire.Audit { provider }) Gen.nat;
        Gen.return Wire.Stats;
        Gen.map (fun s -> Wire.Republish { index_csv = s }) Gen.(small_string ~gen:printable);
        Gen.map (fun s -> Wire.Republish_binary { data = s }) Gen.(small_string ~gen:char);
        Gen.map2 (fun probe k -> Wire.Query_fuzzy { probe; k }) gen_probe (Gen.int_range 1 2000);
        Gen.return Wire.Ping;
        Gen.return Wire.Shutdown;
        Gen.return Wire.Telemetry;
        Gen.return Wire.Cluster_status;
      ]
  in
  (* Any plain request may arrive inside a trace envelope; the envelope
     never nests, which the generator respects by construction. *)
  let gen_request =
    Gen.oneof
      [
        gen_plain_request;
        Gen.map2 (fun trace_id request -> Wire.Traced { trace_id; request }) Gen.nat
          gen_plain_request;
      ]
  in
  (* Scores on the wire are basis points; quantized floats round-trip
     bit-exactly. *)
  let gen_candidate =
    Gen.map
      (fun (owner, bp, providers) ->
        { Serve.owner; score = float_of_int bp /. 10000.0; providers })
      Gen.(triple nat (int_range 0 10_000) (small_list nat))
  in
  let gen_fuzzy_result =
    Gen.oneof
      [
        Gen.map (fun cs -> Serve.Candidates cs) (Gen.small_list gen_candidate);
        Gen.return Serve.No_resolver;
        Gen.return Serve.Probe_mismatch;
        Gen.return Serve.Fuzzy_shed;
      ]
  in
  let gen_response =
    Gen.oneof
      [
        Gen.map2 (fun generation reply -> Wire.Reply { generation; reply }) Gen.nat gen_reply;
        Gen.map2
          (fun generation rs -> Wire.Batch_reply { generation; replies = Array.of_list rs })
          Gen.nat (Gen.small_list gen_reply);
        Gen.map2
          (fun generation owners -> Wire.Audit_reply { generation; owners })
          Gen.nat
          (Gen.option (Gen.small_list Gen.nat));
        Gen.map (fun s -> Wire.Stats_json s) Gen.(small_string ~gen:printable);
        Gen.map (fun generation -> Wire.Republished { generation }) Gen.nat;
        Gen.map2
          (fun generation result -> Wire.Fuzzy_reply { generation; result })
          Gen.nat gen_fuzzy_result;
        Gen.return Wire.Pong;
        Gen.return Wire.Shutting_down;
        Gen.map (fun s -> Wire.Server_error s) Gen.(small_string ~gen:printable);
        Gen.map
          (fun (generation, swaps, peers) ->
            Wire.Cluster_status_reply { generation; swaps; peers })
          Gen.(
            triple nat nat
              (list_size (int_range 0 8) (small_string ~gen:printable)));
      ]
  in
  let gen_frame =
    Gen.oneof
      [ Gen.map (fun r -> Wire.Request r) gen_request; Gen.map (fun r -> Wire.Response r) gen_response ]
  in
  [
    Test.make ~name:"any frame stream round-trips under any chunking" ~count:200
      (make Gen.(pair (list_size (int_range 0 5) gen_frame) (int_range 1 17)))
      (fun (frames, chunk) ->
        let stream = String.concat "" (List.map Wire.frame_to_string frames) in
        decode_chunked ~chunk stream = Ok (frames, 0));
    Test.make ~name:"index codec round-trips any matrix" ~count:200
      (make Gen.(quad (int_range 1 30) (int_range 1 50) (int_range 0 100) (int_range 0 10000)))
      (fun (n, m, density, seed) ->
        let rng = Rng.create seed in
        let matrix = Bitmatrix.create ~rows:n ~cols:m in
        for j = 0 to n - 1 do
          for p = 0 to m - 1 do
            if Rng.int rng 100 < density then Bitmatrix.set matrix ~row:j ~col:p true
          done
        done;
        let index = Eppi.Index.of_matrix matrix in
        match Index_codec.decode (Index_codec.encode index) with
        | Ok decoded -> matrices_equal index decoded
        | Error _ -> false);
    Test.make ~name:"index codec decode is total on junk" ~count:500
      (make Gen.(small_string ~gen:char))
      (fun junk ->
        (* Version-byte prefix steers the fuzz past the cheapest reject. *)
        List.for_all
          (fun payload -> match Index_codec.decode payload with Ok _ | Error _ -> true)
          [ junk; "\x01" ^ junk ]);
  ]

let () =
  Alcotest.run "net"
    [
      ( "wire",
        [
          Alcotest.test_case "round-trips every frame type" `Quick test_codec_roundtrip;
          Alcotest.test_case "split-read reassembly" `Quick test_codec_split_reads;
          Alcotest.test_case "partial frame wants more bytes" `Quick test_codec_partial_frame;
          Alcotest.test_case "typed decode errors" `Quick test_codec_errors;
          Alcotest.test_case "poisoned decoder stays poisoned" `Quick test_codec_poisoned_decoder;
        ] );
      ("addr", [ Alcotest.test_case "parse and print" `Quick test_addr ]);
      ( "index codec",
        [
          Alcotest.test_case "round-trips" `Quick test_index_codec_roundtrip;
          Alcotest.test_case "every truncation rejected" `Quick test_index_codec_truncation;
          Alcotest.test_case "wrong version rejected" `Quick test_index_codec_wrong_version;
          Alcotest.test_case "malformed payloads rejected" `Quick test_index_codec_malformed;
          Alcotest.test_case "hostile dimensions rejected before allocation" `Quick
            test_index_codec_hostile_dims;
          Alcotest.test_case "single-byte mutations never crash" `Quick
            test_index_codec_mutation_fuzz;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "query, batch, audit, stats" `Quick
            (daemon_basics ~shards:1 ~workers:1);
          Alcotest.test_case "hot-swap republish" `Quick test_daemon_republish;
          Alcotest.test_case "cluster status over the wire" `Quick
            test_daemon_cluster_status;
          Alcotest.test_case "pipelined mixed requests" `Quick
            (daemon_pipeline ~shards:1 ~workers:1);
          Alcotest.test_case "hot swap under concurrent load" `Quick
            (daemon_hot_swap_under_load ~workers:1 ~binary:false);
          Alcotest.test_case "fuzzy lookups end-to-end" `Quick (daemon_fuzzy ~shards:1 ~workers:1);
          Alcotest.test_case "fuzzy without a resolver" `Quick test_daemon_fuzzy_no_resolver;
          Alcotest.test_case "trace-driven replay" `Quick test_daemon_replay;
          Alcotest.test_case "replay loads jsonl" `Quick test_replay_load_jsonl;
          Alcotest.test_case "clean shutdown" `Quick test_daemon_shutdown;
          Alcotest.test_case "listen hygiene" `Quick test_listen_stale_and_occupied;
        ] );
      ( "multicore daemon",
        [
          Alcotest.test_case "query, batch, audit, stats (4 domains)" `Quick
            (daemon_basics ~shards:4 ~workers:4);
          Alcotest.test_case "pipelined mixed requests (4 domains)" `Quick
            (daemon_pipeline ~shards:4 ~workers:4);
          Alcotest.test_case "more shards than workers" `Quick
            (daemon_basics ~shards:8 ~workers:3);
          Alcotest.test_case "pipeline past the inflight cap (4 domains)" `Quick
            (daemon_pipeline_past_inflight_cap ~workers:4);
          Alcotest.test_case "binary republish" `Quick test_daemon_republish_binary;
          Alcotest.test_case "pipelined republish ordering" `Quick
            test_multicore_republish_ordering;
          Alcotest.test_case "hot swap under concurrent load (4 domains, binary)" `Quick
            (daemon_hot_swap_under_load ~workers:4 ~binary:true);
          Alcotest.test_case "fuzzy lookups end-to-end (4 domains)" `Quick
            (daemon_fuzzy ~shards:4 ~workers:4);
          Alcotest.test_case "fuzzy hot swap stays generation-consistent" `Quick
            test_daemon_fuzzy_hot_swap;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "stage conservation, inline daemon" `Quick
            (daemon_telemetry ~shards:1 ~workers:1);
          Alcotest.test_case "stage conservation (4 domains)" `Quick
            (daemon_telemetry ~shards:4 ~workers:4);
          Alcotest.test_case "trace id joins client and server tracks" `Quick
            test_trace_propagation;
        ] );
      ( "client robustness",
        [
          Alcotest.test_case "backoff jitter stays in bound" `Quick test_backoff_delay;
          Alcotest.test_case "request timeout" `Quick test_client_request_timeout;
          Alcotest.test_case "transparent reconnect across restart" `Quick
            test_client_reconnects_across_restart;
          Alcotest.test_case "connection lost after retries" `Quick
            test_client_connection_lost_when_gone_for_good;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
