examples/attack_demo.ml: Array Bitmatrix Eppi Eppi_grouping Eppi_prelude Float List Printf Rng
