examples/mpc_demo.ml: Array Bitmatrix Eppi Eppi_circuit Eppi_mpc Eppi_prelude Eppi_protocol Eppi_secretshare Eppi_sfdl Format List Modarith Printf Rng String
