examples/hie_network.ml: Array Eppi Eppi_locator List Locator Option Printf String
