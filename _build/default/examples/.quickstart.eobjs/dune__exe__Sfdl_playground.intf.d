examples/sfdl_playground.mli:
