examples/hie_network.mli:
