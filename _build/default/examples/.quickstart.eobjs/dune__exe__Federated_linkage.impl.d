examples/federated_linkage.ml: Array Bitmatrix Bloom Demographic Eppi Eppi_linkage Eppi_prelude Format Linkage Printf Rng
