examples/mpc_demo.mli:
