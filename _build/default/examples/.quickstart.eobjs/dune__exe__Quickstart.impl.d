examples/quickstart.ml: Array Bitmatrix Eppi Eppi_prelude List Printf Rng String
