examples/federated_linkage.mli:
