examples/quickstart.mli:
