examples/sfdl_playground.ml: Compile Eppi_circuit Eppi_mpc Eppi_prelude Eppi_sfdl Format Interp List Printf Programs Rng String
