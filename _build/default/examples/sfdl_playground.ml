(* A tour of the mini-SFDL language and its three execution paths:
   plaintext circuit evaluation, the reference interpreter, multi-party GMW
   and two-party garbled circuits.

   Two programs:
   - a Vickrey (second-price) auction among four bidders;
   - a tiny private information retrieval: the client's secret index selects
     a cell of the server's table via the mux-chain lowering of xs[i] —
     the server never learns which record was fetched (connects to the
     paper's "searcher anonymity" goal).

   Run with: dune exec examples/sfdl_playground.exe *)

open Eppi_prelude
open Eppi_sfdl

let () =
  print_endline "=== SFDL playground ===\n";

  (* --- Vickrey auction --- *)
  let src = Programs.vickrey_auction ~width:8 ~bidders:4 in
  print_endline "[1] Vickrey auction (4 bidders, bids stay private):";
  let compiled = Compile.compile_source src in
  let stats = Eppi_circuit.Circuit.stats compiled.circuit in
  Format.printf "    compiled to %a@." Eppi_circuit.Circuit.pp_stats stats;
  let values =
    [
      ("bid0", Compile.Dint 120);
      ("bid1", Compile.Dint 245);
      ("bid2", Compile.Dint 180);
      ("bid3", Compile.Dint 99);
    ]
  in
  let inputs = Compile.encode_inputs compiled values in
  let mpc = Eppi_mpc.Gmw.execute (Rng.create 1) compiled.circuit ~inputs in
  (match Compile.decode_outputs compiled mpc.outputs with
  | outs ->
      let get n = match Compile.lookup_output outs n with Compile.Dint v -> v | _ -> -1 in
      Printf.printf "    GMW (4 parties): winner = bidder %d, pays second price %d\n"
        (get "winner") (get "price"));
  let interp_outs = Interp.run_source src ~inputs:values in
  (match Compile.lookup_output interp_outs "price" with
  | Compile.Dint p -> Printf.printf "    reference interpreter agrees: price %d\n\n" p
  | _ -> ());

  (* --- PIR via secret indexing --- *)
  print_endline "[2] private information retrieval (secret index, mux-chain lowering):";
  let pir_src =
    {|program pir;
party server;
party client;
input table : uint<8>[8] of server;
input want : uint<3> of client;
output value : uint<8>;
main {
  value = table[want];
}
|}
  in
  print_string (String.concat "\n" (List.map (fun l -> "    | " ^ l)
    (String.split_on_char '\n' (String.trim pir_src))));
  print_newline ();
  let pir = Compile.compile_source pir_src in
  let pir_stats = Eppi_circuit.Circuit.stats pir.circuit in
  Format.printf "    compiled to %a@." Eppi_circuit.Circuit.pp_stats pir_stats;
  let table = [| 11; 22; 33; 44; 55; 66; 77; 88 |] in
  List.iter
    (fun want ->
      let values = [ ("table", Compile.Dints table); ("want", Compile.Dint want) ] in
      let inputs = Compile.encode_inputs pir values in
      (* Two parties: run it under garbled circuits, Fairplay style. *)
      let r = Eppi_mpc.Garbled.execute (Rng.create (want + 5)) pir.circuit ~inputs in
      match Compile.decode_outputs pir r.outputs with
      | [ ("value", Compile.Dint v) ] ->
          Printf.printf
            "    client asks for cell %d -> %d  (garbled: %d table bytes, %d OTs)\n" want v
            r.comm.garbled_tables_bytes r.comm.ot_count
      | _ -> print_endline "    unexpected shape")
    [ 0; 3; 7 ];
  print_endline
    "\n    the server learns nothing about `want`; the client learns only her cell"
