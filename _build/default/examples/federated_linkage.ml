(* Federated patient search = record linkage + e-PPI (paper Section VI-B).

   Hospitals register the same patient under messy demographics.  A
   privacy-preserving record-linkage pass (Bloom-filter field encodings, as
   in the Master-Patient-Index line of work the paper cites) clusters the
   registrations into patient identities, and the resulting
   identity-to-provider membership is exactly what ConstructPPI indexes.

   Run with: dune exec examples/federated_linkage.exe *)

open Eppi_prelude
open Eppi_linkage

let () =
  print_endline "=== Federated linkage + e-PPI demo ===\n";
  let providers = 12 in
  let rng = Rng.create 2026 in
  let registrations =
    Demographic.population rng ~persons:100 ~providers ~max_registrations:4
  in
  Printf.printf "%d registrations across %d hospitals (100 true patients, with typos)\n"
    (Array.length registrations) providers;
  (match registrations.(0) with
  | { record; provider; _ } ->
      Format.printf "  e.g. hospital %d registered: %a@." provider Demographic.pp record);

  (* Privacy-preserving linkage: hospitals exchange only keyed Bloom
     filters of the demographic fields, never plaintext. *)
  let config =
    {
      Linkage.mode = Linkage.Bloom { Bloom.bits = 256; hashes = 4; seed = 1234 };
      match_threshold = 0.82;
    }
  in
  let linked = Linkage.link config registrations in
  let quality = Linkage.evaluate linked registrations in
  Printf.printf
    "\nBloom-mode linkage: %d entities found (truth: 100); precision %.3f, recall %.3f, f1 %.3f\n"
    linked.entities quality.precision quality.recall quality.f1;
  Printf.printf "blocking kept %d candidate pairs out of %d possible\n" linked.candidate_pairs
    (Array.length registrations * (Array.length registrations - 1) / 2);

  (* Compare with the non-private plaintext matcher. *)
  let plain = Linkage.link Linkage.default_config registrations in
  let plain_quality = Linkage.evaluate plain registrations in
  Printf.printf "plaintext linkage for reference: precision %.3f, recall %.3f\n"
    plain_quality.precision plain_quality.recall;

  (* Feed the linked identities into the e-PPI. *)
  let membership = Linkage.to_membership linked registrations ~providers in
  let epsilons = Array.make linked.entities 0.6 in
  let index_result =
    Eppi.Construct.run (Rng.create 7) ~membership ~epsilons ~policy:(Eppi.Policy.Chernoff 0.9)
  in
  let entity = linked.assignment.(0) in
  let truth = Bitmatrix.row_count membership entity in
  let returned = Eppi.Index.query_count index_result.index ~owner:entity in
  Printf.printf
    "\ne-PPI over the linked identities: entity %d truly at %d hospitals, QueryPPI returns %d\n"
    entity truth returned;
  Printf.printf "recall holds: %b; attacker confidence %.3f (requested <= 0.4)\n"
    (Eppi.Index.recall_ok ~membership index_result.index ~owner:entity)
    (Eppi.Attack.primary_confidence ~membership
       ~published:(Eppi.Index.matrix index_result.index) ~owner:entity)
