(* The secure construction machinery, end to end and piece by piece:

   1. SecSumShare over the simulated provider network (Figure 3's example);
   2. the CountBelow SFDL program, compiled and run under multi-party GMW;
   3. the full distributed e-PPI construction with its performance metrics;
   4. the pure-MPC baseline for contrast.

   Run with: dune exec examples/mpc_demo.exe *)

open Eppi_prelude

let () =
  print_endline "=== Secure construction demo ===\n";

  (* --- 1. SecSumShare: the paper's Figure 3 worked example. --- *)
  print_endline "[1] SecSumShare (5 providers, c = 3, q = 5, one identity)";
  let q5 = Modarith.modulus 5 in
  let inputs = [| [| 0 |]; [| 1 |]; [| 1 |]; [| 0 |]; [| 0 |] |] in
  let sss = Eppi_protocol.Secsumshare.run (Rng.create 42) ~inputs ~c:3 ~q:q5 in
  Array.iteri
    (fun r vec -> Printf.printf "    coordinator %d holds share vector [%d]\n" r vec.(0))
    sss.coordinator_shares;
  let sums = Eppi_protocol.Secsumshare.reconstruct ~q:q5 sss.coordinator_shares in
  Printf.printf "    reconstructed frequency: %d (true: 2)\n" sums.(0);
  Printf.printf "    network: %d messages, %d bytes, %.2f ms simulated\n\n"
    sss.net.messages_sent sss.net.bytes_sent (sss.net.completion_time *. 1000.0);

  (* --- 2. CountBelow in SFDL, compiled to a circuit, run under GMW. --- *)
  print_endline "[2] CountBelow: SFDL source -> Boolean circuit -> GMW MPC";
  let src = Eppi_sfdl.Programs.count_below ~c:3 ~q:11 ~thresholds:[| 5; 2; 9 |] in
  print_string (String.concat "\n" (List.map (fun l -> "    | " ^ l)
    (String.split_on_char '\n' (String.trim src))));
  print_newline ();
  let compiled = Eppi_sfdl.Compile.compile_source src in
  let stats = Eppi_circuit.Circuit.stats compiled.circuit in
  Format.printf "    compiled: %a@." Eppi_circuit.Circuit.pp_stats stats;
  (* Share three secret frequencies among the coordinators and evaluate. *)
  let rng = Rng.create 7 in
  let q11 = Modarith.modulus 11 in
  let freqs = [| 7; 1; 9 |] in
  let shares = Array.map (fun v -> Eppi_secretshare.Additive.share rng ~q:q11 ~c:3 v) freqs in
  let svec k = Array.map (fun sh -> sh.(k)) shares in
  let mpc_inputs =
    Eppi_sfdl.Compile.encode_inputs compiled
      [
        ("s0", Eppi_sfdl.Compile.Dints (svec 0));
        ("s1", Eppi_sfdl.Compile.Dints (svec 1));
        ("s2", Eppi_sfdl.Compile.Dints (svec 2));
      ]
  in
  let mpc = Eppi_mpc.Gmw.execute rng compiled.circuit ~inputs:mpc_inputs in
  Printf.printf "    GMW: %d rounds, %d messages, %d bytes\n" mpc.comm.rounds mpc.comm.messages
    mpc.comm.bytes;
  (match Eppi_sfdl.Compile.decode_outputs compiled mpc.outputs with
  | [ ("common", Dbools cs); ("freq", Dints fs); ("count", Dint k) ] ->
      Array.iteri
        (fun j c ->
          Printf.printf "    identity %d: true freq %d, threshold %d -> common=%b, released=%d\n"
            j freqs.(j) [| 5; 2; 9 |].(j) c fs.(j))
        cs;
      Printf.printf "    common count (drives lambda): %d\n\n" k
  | _ -> print_endline "    unexpected output shape");

  (* --- 3. Full distributed construction over the simulated network. --- *)
  print_endline "[3] full distributed e-PPI construction (20 providers, 12 identities)";
  let m = 20 and n = 12 in
  let rng = Rng.create 13 in
  let membership = Bitmatrix.create ~rows:n ~cols:m in
  for j = 0 to n - 1 do
    let f = if j = 0 then m else 1 + Rng.int rng 5 in
    let chosen = Rng.sample_without_replacement rng ~k:f ~n:m in
    Array.iter (fun p -> Bitmatrix.set membership ~row:j ~col:p true) chosen
  done;
  let epsilons = Array.make n 0.5 in
  let r =
    Eppi_protocol.Construct.run (Rng.create 17) ~membership ~epsilons
      ~policy:(Eppi.Policy.Chernoff 0.9)
  in
  Printf.printf "    identity 0 (ubiquitous) flagged common: %b\n" r.common.(0);
  Printf.printf "    lambda = %.4f, xi = %.2f\n" r.lambda r.xi;
  let mt = r.metrics in
  Printf.printf
    "    simulated time: SecSumShare %.4fs + MPC %.4fs + publication %.6fs = %.4fs\n"
    mt.secsumshare_time mt.mpc_time mt.publication_time mt.total_time;
  Printf.printf "    traffic: %d messages, %d bytes; MPC circuit size %d\n\n" mt.messages
    mt.bytes mt.circuit_stats.size;

  (* --- 4. The pure-MPC baseline for contrast. --- *)
  print_endline "[4] pure-MPC baseline (whole beta pipeline inside the circuit)";
  let bits = Array.init 9 (fun i -> i < 3) in
  let pure = Eppi_protocol.Purempc.run (Rng.create 19) ~bits ~epsilon:0.5 ~gamma:0.9 in
  Printf.printf "    9 providers, frequency 3: circuit beta = %.4f (float reference %.4f)\n"
    pure.beta
    (Eppi_protocol.Purempc.reference_beta ~m:9 ~count:3 ~epsilon:0.5 ~gamma:0.9);
  Printf.printf "    per-identity circuit: %d gates (%d AND) vs CountBelow's %d (%d AND)\n"
    pure.circuit_stats.size pure.circuit_stats.and_gates stats.size stats.and_gates;
  Printf.printf "    estimated time at 9 parties: %.2fs vs e-PPI's %.2fs\n"
    (Eppi_protocol.Purempc.estimate_time ~m:9 ~identities:1 ~epsilon:0.5 ~gamma:0.9 ())
    (Eppi_protocol.Construct.beta_phase_time_estimate ~m:9 ~identities:1 ~c:3 ())
