(* Quickstart: build an ε-PPI over a small information network and query it.

   Run with: dune exec examples/quickstart.exe *)

open Eppi_prelude

let () =
  print_endline "=== e-PPI quickstart ===\n";
  (* A network of 100 providers and 8 owners.  Owner 0 is privacy-sensitive
     (epsilon = 0.9); the others are average (epsilon = 0.4). *)
  let m = 100 in
  let owners = 8 in
  let rng = Rng.create 2024 in
  let membership = Bitmatrix.create ~rows:owners ~cols:m in
  Array.iteri
    (fun owner visits ->
      let chosen = Rng.sample_without_replacement rng ~k:visits ~n:m in
      Array.iter (fun p -> Bitmatrix.set membership ~row:owner ~col:p true) chosen)
    [| 3; 2; 5; 1; 4; 2; 6; 1 |];
  let epsilons = Array.init owners (fun j -> if j = 0 then 0.9 else 0.4) in

  (* Construct the index with the Chernoff policy: each owner's false
     positive rate reaches her epsilon with probability >= 0.9. *)
  let result =
    Eppi.Construct.run (Rng.create 7) ~membership ~epsilons ~policy:(Eppi.Policy.Chernoff 0.9)
  in

  Printf.printf "constructed an e-PPI over %d providers, %d owners\n" m owners;
  Printf.printf "lambda (mixing ratio) = %.4f, common identities = %d\n\n" result.lambda
    (Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 result.common);

  (* Query: where might owner 0's records be? *)
  Array.iteri
    (fun owner epsilon ->
      let truth = Bitmatrix.row_count membership owner in
      let returned = Eppi.Index.query_count result.index ~owner in
      let fp =
        Eppi.Metrics.false_positive_rate ~membership
          ~published:(Eppi.Index.matrix result.index) ~owner
      in
      Printf.printf
        "owner %d: eps=%.1f  true providers=%d  query returns=%d  fp-rate=%.2f  recall=%b\n"
        owner epsilon truth returned fp
        (Eppi.Index.recall_ok ~membership result.index ~owner))
    epsilons;

  print_newline ();
  let searcher_view = Eppi.Index.query result.index ~owner:0 in
  Printf.printf "QueryPPI(owner 0) -> %d candidate providers (first few: %s ...)\n"
    (List.length searcher_view)
    (String.concat ", "
       (List.filteri (fun i _ -> i < 6) searcher_view |> List.map string_of_int));
  print_endline
    "\nAn attacker picking any candidate has bounded confidence that the\n\
     owner's records are really there: that is the per-owner epsilon knob."
