(* The common-identity attack (paper Section II-B) demonstrated against a
   conventional frequency-revealing PPI, against SS-PPI's construction-time
   leak, and against ε-PPI's identity mixing.

   Run with: dune exec examples/attack_demo.exe *)

open Eppi_prelude

let m = 50 (* providers *)
let rare_owners = 300

(* One ubiquitous owner (at every provider) among a tail of rare owners. *)
let build_membership rng =
  let membership = Bitmatrix.create ~rows:(rare_owners + 1) ~cols:m in
  for p = 0 to m - 1 do
    Bitmatrix.set membership ~row:0 ~col:p true
  done;
  for j = 1 to rare_owners do
    Bitmatrix.set membership ~row:j ~col:(Rng.int rng m) true
  done;
  membership

let () =
  print_endline "=== Common-identity attack demo ===\n";
  let rng = Rng.create 99 in
  let membership = build_membership rng in
  let epsilon = 0.75 in
  let epsilons = Array.make (rare_owners + 1) epsilon in
  let threshold = Eppi.Policy.sigma_threshold Eppi.Policy.Basic ~epsilon ~m in
  Printf.printf
    "network: %d providers, %d owners; owner 0 is common (records everywhere)\n\
     all owners request epsilon = %.2f; common threshold sigma' = %.2f\n\n"
    m (rare_owners + 1) epsilon threshold;

  (* 1. Conventional PPI that publishes per-provider bits without mixing:
     the attacker reads apparent frequencies straight off the index. *)
  print_endline "[1] conventional PPI (no mixing: betas from Eq. 3, commons published as-is)";
  let betas =
    Array.init (rare_owners + 1) (fun j ->
        let sigma = float_of_int (Bitmatrix.row_count membership j) /. float_of_int m in
        Float.min 1.0 (Eppi.Policy.beta Eppi.Policy.Basic ~sigma ~epsilon ~m))
  in
  let published_plain = Eppi.Publish.publish_matrix (Rng.create 1) ~betas membership in
  let attack =
    Eppi.Attack.common_identity_attack ~membership ~published:published_plain
      ~sigma_threshold:threshold
  in
  Printf.printf "    suspects: %d, truly common: %d -> attacker confidence %.2f  (%s)\n\n"
    (List.length attack.suspected) attack.truly_common attack.confidence
    (Eppi.Attack.level_name
       (Eppi.Attack.classify ~guarantee:None ~worst_confidence:attack.confidence ~epsilon));

  (* 2. SS-PPI: the construction itself leaks true frequencies to colluding
     providers - the attacker needs no index analysis at all. *)
  print_endline "[2] SS-PPI (true frequencies leaked during construction)";
  let ss_conf =
    Eppi_grouping.Grouping.ss_ppi_common_attack_confidence ~membership ~sigma_threshold:threshold
  in
  Printf.printf "    attacker confidence %.2f  (%s)\n\n" ss_conf
    (Eppi.Attack.level_name
       (Eppi.Attack.classify ~guarantee:None ~worst_confidence:ss_conf ~epsilon));

  (* 3. e-PPI with identity mixing: decoy rows published at full frequency
     make apparently-common identities ambiguous. *)
  print_endline "[3] e-PPI (identity mixing, Eqs. 6-7)";
  let r =
    Eppi.Construct.run (Rng.create 2) ~membership ~epsilons ~policy:(Eppi.Policy.Chernoff 0.9)
  in
  let attack_eppi =
    Eppi.Attack.common_identity_attack ~membership
      ~published:(Eppi.Index.matrix r.index) ~sigma_threshold:threshold
  in
  let mixed_count = Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 r.mixed in
  Printf.printf "    lambda = %.4f -> %d decoy identities published as common\n" r.lambda
    mixed_count;
  Printf.printf "    suspects: %d, truly common: %d -> attacker confidence %.2f  (%s)\n"
    (List.length attack_eppi.suspected) attack_eppi.truly_common attack_eppi.confidence
    (Eppi.Attack.level_name
       (Eppi.Attack.classify ~guarantee:(Some (1.0 -. r.xi))
          ~worst_confidence:attack_eppi.confidence ~epsilon));
  Printf.printf
    "    guarantee: confidence <= 1 - xi = %.2f in expectation over the mixing draws\n\n"
    (1.0 -. r.xi);

  (* Primary attack comparison on a rare owner, for completeness. *)
  print_endline "[bonus] primary attack on a rare owner under e-PPI";
  let owner = 5 in
  let conf =
    Eppi.Attack.simulate_primary (Rng.create 3) ~membership
      ~published:(Eppi.Index.matrix r.index) ~owner ~trials:20_000
  in
  Printf.printf "    empirical confidence %.3f vs bound %.3f (Chernoff holds w.p. >= 0.9)\n" conf
    (1.0 -. epsilon)
