open Eppi_prelude
module Circuit = Eppi_circuit.Circuit
module Compile = Eppi_sfdl.Compile
module Programs = Eppi_sfdl.Programs
module Gmw = Eppi_mpc.Gmw
module Cost = Eppi_mpc.Cost

type result = {
  common : bool array;
  frequencies : int option array;
  n_common : int;
  circuit_stats : Circuit.stats;
  comm : Gmw.comm_stats;
  time : float;
}

type transport = [ `Cost_model | `Simnet of Eppi_simnet.Simnet.config ]

let integer_threshold ~policy ~epsilon ~m =
  if epsilon <= 0.0 then m + 1
  else begin
    let common_at f =
      Eppi.Policy.is_common policy ~sigma:(float_of_int f /. float_of_int m) ~epsilon ~m
    in
    (* β* is monotone in the frequency: binary-search the first common count. *)
    if not (common_at m) then m + 1
    else begin
      let lo = ref 0 and hi = ref m in
      (* Invariant: common_at !hi, and !lo is below the first common count. *)
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if common_at mid then hi := mid else lo := mid
      done;
      if common_at !lo then !lo else !hi
    end
  end

let run ?(network = Cost.lan) ?(transport = `Cost_model) rng ~shares ~q ~thresholds =
  let c = Array.length shares in
  if c < 2 then invalid_arg "Countbelow.run: need at least 2 coordinators";
  let n = Array.length shares.(0) in
  Array.iter
    (fun v -> if Array.length v <> n then invalid_arg "Countbelow.run: ragged share vectors")
    shares;
  if Array.length thresholds <> n then invalid_arg "Countbelow.run: thresholds length mismatch";
  let qi = Modarith.to_int q in
  let clamped = Array.map (fun t -> max 0 (min t (qi - 1))) thresholds in
  let source = Programs.count_below ~c ~q:qi ~thresholds:clamped in
  let compiled = Compile.compile_source source in
  let inputs =
    Compile.encode_inputs compiled
      (List.init c (fun i -> (Printf.sprintf "s%d" i, Compile.Dints shares.(i))))
  in
  let raw_outputs, comm, emergent_time =
    match transport with
    | `Cost_model ->
        let mpc = Gmw.execute rng compiled.circuit ~inputs in
        (mpc.outputs, mpc.comm, None)
    | `Simnet config ->
        let mpc = Mpcnet.execute ~config rng compiled.circuit ~inputs in
        let stats = Circuit.stats compiled.circuit in
        let estimate =
          Gmw.comm_estimate ~parties:(Array.length shares) stats
            ~outputs:(Array.length (Circuit.outputs compiled.circuit))
        in
        (mpc.outputs, estimate, Some mpc.net.completion_time)
  in
  let outputs = Compile.decode_outputs compiled raw_outputs in
  let common =
    match Compile.lookup_output outputs "common" with
    | Dbools bs -> bs
    | _ -> failwith "Countbelow.run: bad common output shape"
  in
  let freqs =
    match Compile.lookup_output outputs "freq" with
    | Dints fs -> fs
    | _ -> failwith "Countbelow.run: bad freq output shape"
  in
  let count =
    match Compile.lookup_output outputs "count" with
    | Dint k -> k
    | _ -> failwith "Countbelow.run: bad count output shape"
  in
  let stats = Circuit.stats compiled.circuit in
  let outputs_bits = Array.length (Circuit.outputs compiled.circuit) in
  let time =
    match emergent_time with
    | Some t -> t
    | None -> Cost.estimate ~network ~parties:c ~outputs:outputs_bits stats
  in
  {
    common;
    frequencies = Array.mapi (fun j f -> if common.(j) then None else Some f) freqs;
    n_common = count;
    circuit_stats = stats;
    comm;
    time;
  }
