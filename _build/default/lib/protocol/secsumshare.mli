(** The SecSumShare protocol (paper Section IV-B, Figure 3).

    Given m providers each holding a private vector of values in Z_q (the
    membership bits, one per identity), the protocol produces c share
    vectors, held by c coordinator providers, whose element-wise sum mod q
    equals the element-wise sum of all private inputs — without any party
    learning anything beyond its own inputs (collusion below c reveals
    nothing; Theorem 4.1).

    The four steps, run over the simulated network with all identities
    batched into one message per edge:

    + {b Generate}: provider i splits each private value into c additive
      shares;
    + {b Distribute}: the k-th share goes to the k-th ring successor
      p_((i+k) mod m); the 0-th stays local;
    + {b Sum}: each provider adds the shares it received into a
      super-share vector;
    + {b Aggregate}: provider i sends its super-shares to coordinator
      (i mod c); coordinator r accumulates them into the output vector
      s(r, ·).

    Requires m >= c >= 2. *)

open Eppi_prelude

type result = {
  coordinator_shares : int array array;  (** c x n: s(r, j). *)
  net : Eppi_simnet.Simnet.metrics;
  retransmissions : int;  (** Data messages resent by the reliability layer. *)
}

(** Loss handling for the share and super-share messages.  With a lossy
    {!Eppi_simnet.Simnet.config} the bare protocol cannot complete (a
    missing share silently corrupts the sum, so the run fails fast
    instead); [reliability] adds a stop-and-wait layer — every data message
    is acknowledged, deduplicated at the receiver, and resent after
    [ack_timeout] up to [max_retries] times. *)
type reliability = {
  ack_timeout : float;  (** Seconds before a resend. *)
  max_retries : int;
}

val default_reliability : reliability
(** 10 ms timeout, 25 retries: survives heavy simulated loss on a LAN. *)

val run :
  ?config:Eppi_simnet.Simnet.config ->
  ?reliability:reliability ->
  Rng.t ->
  inputs:int array array ->
  c:int ->
  q:Modarith.modulus ->
  result
(** [inputs.(i).(j)] is provider i's private value for identity j (all
    providers must supply equally long vectors with values in [0, q)).
    @raise Invalid_argument on shape violations or [m < c] or [c < 2].
    @raise Failure if messages were lost and either no [reliability] layer
    was configured or its retry budget was exhausted. *)

val reconstruct : q:Modarith.modulus -> int array array -> int array
(** Element-wise sum of the coordinator share vectors — the plain sums the
    protocol secretly computes.  Exposed for tests and for the CountBelow
    stage's reference path. *)
